package caribou

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/core"
	"caribou/internal/dag"
	"caribou/internal/executor"
	"caribou/internal/manager"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/trace"
	"caribou/internal/workloads"
)

// Priority is the developer's optimization objective.
type Priority int

// Optimization priorities (§8).
const (
	OptimizeCarbon Priority = iota
	OptimizeCost
	OptimizeLatency
)

// InputClass selects the request payload class for an invocation.
type InputClass string

// Input classes.
const (
	SmallInput InputClass = "small"
	LargeInput InputClass = "large"
)

// TransmissionScenario selects the transmission-carbon accounting model.
type TransmissionScenario int

// The paper's bracketing scenarios (§7.1): best case charges
// 0.001 kWh/GB for any transmission; worst case charges 0.005 kWh/GB
// inter-region and nothing intra-region.
const (
	BestCaseTransmission TransmissionScenario = iota
	WorstCaseTransmission
)

// ClientConfig configures the simulated environment a client manages.
type ClientConfig struct {
	// Seed makes the entire run reproducible. 0 means 1.
	Seed int64
	// Start and End bound the experiment window; defaults cover the
	// paper's evaluation week, 2023-10-15 through 2023-10-21.
	Start, End time.Time
	// Regions restricts the available catalogue; defaults to the four
	// evaluation regions (us-east-1, us-west-1, us-west-2,
	// ca-central-1).
	Regions []string
}

// Client owns one simulated multi-region cloud and the workflows deployed
// onto it.
type Client struct {
	env  *core.Env
	apps []*App
}

// DefaultEvaluationStart is the first instant of the paper's carbon-data
// window.
var DefaultEvaluationStart = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

// NewClient builds a client and its simulated environment.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Start.IsZero() {
		cfg.Start = DefaultEvaluationStart
	}
	if cfg.End.IsZero() {
		cfg.End = cfg.Start.Add(7 * 24 * time.Hour)
	}
	regions := region.EvaluationFour()
	if len(cfg.Regions) > 0 {
		regions = regions[:0]
		for _, r := range cfg.Regions {
			regions = append(regions, region.ID(r))
		}
	}
	env, err := core.NewEnv(core.EnvConfig{
		Seed: cfg.Seed, Start: cfg.Start, End: cfg.End, Regions: regions,
	})
	if err != nil {
		return nil, err
	}
	return &Client{env: env}, nil
}

// Now reports the current virtual time.
func (c *Client) Now() time.Time { return c.env.Sched.Now() }

// End reports the end of the experiment window.
func (c *Client) End() time.Time { return c.env.End }

// Regions lists the available region IDs.
func (c *Client) Regions() []string {
	var out []string
	for _, id := range c.env.Cat.IDs() {
		out = append(out, string(id))
	}
	return out
}

// Run drives the simulation to the end of the window, executing every
// scheduled invocation and Deployment Manager check.
func (c *Client) Run() { c.env.Run() }

// RunUntil drives the simulation to t.
func (c *Client) RunUntil(t time.Time) { c.env.RunUntil(t) }

// DeploymentConfig is the deployment manifest (§8 config.yml): home
// region, optimization priority, tolerances, workflow-level compliance,
// and whether the adaptive Deployment Manager controls re-deployment.
type DeploymentConfig struct {
	HomeRegion string
	Priority   Priority
	// LatencyTolerancePct bounds the p95 end-to-end service time at
	// home-p95 × (1 + pct/100). Zero means unconstrained; use a small
	// positive value (e.g. 0.01) for a near-strict bound.
	LatencyTolerancePct float64
	// CostTolerancePct bounds p95 cost per invocation analogously; zero
	// means unconstrained.
	CostTolerancePct float64
	// AllowedRegions / DisallowedRegions / AllowedCountries are
	// workflow-level compliance constraints; function-level
	// configurations supersede them.
	AllowedRegions    []string
	DisallowedRegions []string
	AllowedCountries  []string
	// Adaptive enables the token-bucket Deployment Manager (§5.2); when
	// false the application stays at home until Solve/Apply are called.
	Adaptive bool
	// PlanningScenario selects the transmission-carbon model the solver
	// optimizes under (default best case).
	PlanningScenario TransmissionScenario
}

// App is one deployed workflow.
type App struct {
	client *Client
	inner  *core.App
	wl     *workloads.Workload
	// lastPlans holds the most recent manually solved plan set.
	lastPlans *dag.HourlyPlans
}

// Deploy compiles the workflow, deploys it to its home region, and wires
// the control loop. With cfg.Adaptive set, Deployment Manager checks run
// hourly for the rest of the window.
func (c *Client) Deploy(w *Workflow, cfg DeploymentConfig) (*App, error) {
	wl, err := w.compile()
	if err != nil {
		return nil, err
	}
	if cfg.HomeRegion == "" {
		cfg.HomeRegion = string(region.USEast1)
	}
	tol := solver.Tolerances{}
	if cfg.LatencyTolerancePct > 0 {
		tol.Latency = solver.Tol(cfg.LatencyTolerancePct)
	}
	if cfg.CostTolerancePct > 0 {
		tol.Cost = solver.Tol(cfg.CostTolerancePct)
	}
	cons := region.Constraint{AllowedCountries: cfg.AllowedCountries}
	for _, r := range cfg.AllowedRegions {
		cons.AllowedRegions = append(cons.AllowedRegions, region.ID(r))
	}
	for _, r := range cfg.DisallowedRegions {
		cons.DisallowedRegions = append(cons.DisallowedRegions, region.ID(r))
	}
	tx := carbon.BestCase()
	if cfg.PlanningScenario == WorstCaseTransmission {
		tx = carbon.WorstCase()
	}
	app, err := c.env.NewApp(core.AppConfig{
		Workload:   wl,
		Home:       region.ID(cfg.HomeRegion),
		Mode:       executor.ModeCaribou,
		Objective:  solver.Objective{Priority: solver.Priority(cfg.Priority), Tolerances: tol},
		Constraint: cons,
		Tx:         tx,
		Adaptive:   cfg.Adaptive,
		Manager:    manager.Config{},
	})
	if err != nil {
		return nil, err
	}
	a := &App{client: c, inner: app, wl: wl}
	if cfg.Adaptive {
		app.ScheduleManagerTicks(time.Hour)
	}
	c.apps = append(c.apps, a)
	return a, nil
}

// Invoke schedules a single invocation at the current virtual time.
func (a *App) Invoke(class InputClass) error {
	_, err := a.inner.Engine.Invoke(workloads.InputClass(class))
	return err
}

// InvokeAt schedules an invocation at a future virtual time.
func (a *App) InvokeAt(t time.Time, class InputClass) {
	a.inner.Engine.InvokeAt(t, workloads.InputClass(class), func(error) { a.inner.InvokeErrors++ })
}

// InvokeEvery schedules n invocations spaced by gap from the current
// virtual time.
func (a *App) InvokeEvery(gap time.Duration, n int, class InputClass) {
	a.inner.ScheduleUniform(a.client.Now(), n, gap, workloads.InputClass(class))
}

// InvokeTrace schedules invocations following the synthetic Azure-style
// trace profile between the current time and the window end.
func (a *App) InvokeTrace(dailyInvocations float64) error {
	p := trace.AzureP5()
	if dailyInvocations > 0 {
		p.DailyInvocations = dailyInvocations
	}
	events, err := trace.Generate(p, a.client.Now(), a.client.End(), a.client.env.Seed)
	if err != nil {
		return err
	}
	a.inner.ScheduleTrace(events)
	return nil
}

// Solve computes 24 hourly deployment plans for the day starting at the
// current virtual time and applies them (manual alternative to Adaptive).
func (a *App) Solve() error {
	now := a.client.Now()
	if err := a.inner.Metrics.RefreshForecasts(now); err != nil {
		return err
	}
	plans, _, err := a.inner.Solver.SolveHourly(now, now)
	if err != nil {
		return err
	}
	if _, err := a.inner.DeployPlanRegions(plans); err != nil {
		return err
	}
	a.inner.SetStaticPlans(plans)
	a.lastPlans = &plans
	return nil
}

// DOT renders the workflow DAG in Graphviz format. When hourly plans have
// been solved, stages are clustered by the region the given hour's plan
// assigns them to; pass a negative hour (or call before Solve) for an
// unclustered graph.
func (a *App) DOT(hour int) string {
	if a.lastPlans != nil && hour >= 0 && hour < 24 {
		return a.wl.DAG.ToDOT(a.lastPlans[hour])
	}
	return a.wl.DAG.ToDOT(nil)
}

// Plans renders the hourly deployment plans produced by the most recent
// Solve call, one string per hour of day ("stage→region, ..."). It
// returns zero values before any solve.
func (a *App) Plans() [24]string {
	var out [24]string
	if a.lastPlans == nil {
		return out
	}
	for h, p := range a.lastPlans {
		out[h] = p.String()
	}
	return out
}

// Report summarizes all completed invocations under the chosen
// transmission-carbon scenario.
func (a *App) Report(scenario TransmissionScenario) (Report, error) {
	tx := carbon.BestCase()
	if scenario == WorstCaseTransmission {
		tx = carbon.WorstCase()
	}
	if len(a.inner.Records) == 0 {
		return Report{}, fmt.Errorf("caribou: no completed invocations for %s", a.wl.Name)
	}
	sum, err := a.client.env.Summarize(a.inner.Records, tx)
	if err != nil {
		return Report{}, err
	}
	if a.inner.Manager != nil {
		sum.AddOverhead(a.inner.Manager.OverheadGrams)
	}
	r := Report{
		Workflow:             a.wl.Name,
		Invocations:          sum.Invocations,
		Succeeded:            sum.Succeeded,
		MeanCarbonGrams:      sum.MeanCarbonG,
		ExecCarbonGrams:      sum.MeanExecCarbonG,
		TxCarbonGrams:        sum.MeanTxCarbonG,
		OverheadCarbonGrams:  sum.OverheadCarbonG,
		MeanCostUSD:          sum.MeanCostUSD,
		MeanServiceSeconds:   sum.MeanServiceSec,
		P95ServiceSeconds:    sum.P95ServiceSec,
		RegionsUsed:          a.regionsUsed(),
		DeploymentPlanSolves: a.solves(),
	}
	return r, nil
}

func (a *App) regionsUsed() []string {
	set := map[string]bool{}
	for _, rec := range a.inner.Records {
		for _, r := range rec.RegionsUsed() {
			set[string(r)] = true
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

func (a *App) solves() int {
	if a.inner.Manager == nil {
		return 0
	}
	return a.inner.Manager.Solves()
}

// Report summarizes an application's run.
type Report struct {
	Workflow             string
	Invocations          int
	Succeeded            int
	MeanCarbonGrams      float64 // per invocation, incl. amortized overhead
	ExecCarbonGrams      float64 // execution component, per invocation
	TxCarbonGrams        float64 // transmission component, per invocation
	OverheadCarbonGrams  float64 // total framework overhead
	MeanCostUSD          float64
	MeanServiceSeconds   float64
	P95ServiceSeconds    float64
	RegionsUsed          []string
	DeploymentPlanSolves int
}

// String renders the report for terminals.
func (r Report) String() string {
	return fmt.Sprintf(
		"%s: %d/%d invocations ok | carbon %.4f g/inv (exec %.4f, tx %.4f, overhead total %.2f g) | cost $%.6f/inv | service mean %.2fs p95 %.2fs | regions %v | solves %d",
		r.Workflow, r.Succeeded, r.Invocations,
		r.MeanCarbonGrams, r.ExecCarbonGrams, r.TxCarbonGrams, r.OverheadCarbonGrams,
		r.MeanCostUSD, r.MeanServiceSeconds, r.P95ServiceSeconds, r.RegionsUsed, r.DeploymentPlanSolves)
}

// WriteRecords streams every completed invocation record as JSON Lines —
// one InvocationRecord per line — for offline analysis or external
// plotting. The record schema is the platform's raw event log: per-stage
// executions, per-edge transfers, and billable service counts.
func (a *App) WriteRecords(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range a.inner.Records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("caribou: encode record %d: %w", r.ID, err)
		}
	}
	return nil
}
