package caribou_test

import (
	"fmt"
	"strings"
	"time"

	caribou "caribou"
)

// ExampleClient_Deploy deploys a two-stage workflow, runs a day of
// traffic, and prints how many invocations completed. Because the whole
// substrate is a seeded simulation, the output is exactly reproducible.
func ExampleClient_Deploy() {
	wf := caribou.NewWorkflow("pipeline", "1.0")
	wf.Function("prepare", caribou.FunctionConfig{
		Work: caribou.Work{SmallSeconds: 0.5},
	})
	wf.Function("process", caribou.FunctionConfig{
		Work: caribou.Work{SmallSeconds: 2.0, OutputSmallBytes: 1e4},
	})
	wf.Edge("prepare", "process", caribou.Payload{SmallBytes: 1e5})

	client, err := caribou.NewClient(caribou.ClientConfig{
		Seed: 1,
		End:  caribou.DefaultEvaluationStart.Add(24 * time.Hour),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	app, err := client.Deploy(wf, caribou.DeploymentConfig{
		HomeRegion: "aws:us-east-1",
		Priority:   caribou.OptimizeCarbon,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	app.InvokeEvery(time.Hour, 24, caribou.SmallInput)
	client.Run()

	rep, err := app.Report(caribou.BestCaseTransmission)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d/%d invocations completed in %v\n", rep.Succeeded, rep.Invocations, rep.RegionsUsed)
	// Output: 24/24 invocations completed in [aws:us-east-1]
}

// ExampleLoadManifest parses a deployment manifest, the analogue of the
// paper's config.yml.
func ExampleLoadManifest() {
	manifest := `{
		"home_region": "aws:us-east-1",
		"priority": "carbon",
		"latency_tolerance_pct": 10,
		"allowed_countries": ["US", "CA"]
	}`
	cfg, err := caribou.LoadManifest(strings.NewReader(manifest))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(cfg.HomeRegion, cfg.LatencyTolerancePct, cfg.AllowedCountries)
	// Output: aws:us-east-1 10 [US CA]
}
