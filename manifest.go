package caribou

import (
	"encoding/json"
	"fmt"
	"io"
)

// Manifest is the JSON deployment manifest, the analogue of the paper's
// config.yml (§8): workflow-level objectives, tolerances, the home region,
// and compliance constraints. Function-level constraints live on the
// workflow declaration and supersede these.
//
// Example:
//
//	{
//	  "home_region": "aws:us-east-1",
//	  "priority": "carbon",
//	  "latency_tolerance_pct": 10,
//	  "allowed_countries": ["US"],
//	  "adaptive": true
//	}
type Manifest struct {
	HomeRegion          string   `json:"home_region"`
	Priority            string   `json:"priority"`
	LatencyTolerancePct float64  `json:"latency_tolerance_pct"`
	CostTolerancePct    float64  `json:"cost_tolerance_pct"`
	AllowedRegions      []string `json:"allowed_regions"`
	DisallowedRegions   []string `json:"disallowed_regions"`
	AllowedCountries    []string `json:"allowed_countries"`
	Adaptive            bool     `json:"adaptive"`
	PlanningScenario    string   `json:"planning_scenario"` // "best" or "worst"
}

// LoadManifest parses a JSON deployment manifest into a DeploymentConfig.
func LoadManifest(r io.Reader) (DeploymentConfig, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return DeploymentConfig{}, fmt.Errorf("caribou: parse manifest: %w", err)
	}
	return m.Config()
}

// Config validates the manifest and converts it.
func (m Manifest) Config() (DeploymentConfig, error) {
	cfg := DeploymentConfig{
		HomeRegion:          m.HomeRegion,
		LatencyTolerancePct: m.LatencyTolerancePct,
		CostTolerancePct:    m.CostTolerancePct,
		AllowedRegions:      m.AllowedRegions,
		DisallowedRegions:   m.DisallowedRegions,
		AllowedCountries:    m.AllowedCountries,
		Adaptive:            m.Adaptive,
	}
	switch m.Priority {
	case "", "carbon":
		cfg.Priority = OptimizeCarbon
	case "cost":
		cfg.Priority = OptimizeCost
	case "latency":
		cfg.Priority = OptimizeLatency
	default:
		return cfg, fmt.Errorf("caribou: unknown priority %q (want carbon, cost, or latency)", m.Priority)
	}
	switch m.PlanningScenario {
	case "", "best":
		cfg.PlanningScenario = BestCaseTransmission
	case "worst":
		cfg.PlanningScenario = WorstCaseTransmission
	default:
		return cfg, fmt.Errorf("caribou: unknown planning scenario %q (want best or worst)", m.PlanningScenario)
	}
	if m.LatencyTolerancePct < 0 || m.CostTolerancePct < 0 {
		return cfg, fmt.Errorf("caribou: tolerances must be non-negative")
	}
	return cfg, nil
}
