// Package caribou is a framework for carbon-aware, fine-grained geospatial
// shifting of serverless workflows, reproducing "Caribou: Fine-Grained
// Geospatial Shifting of Serverless Applications for Sustainability"
// (SOSP 2024).
//
// Caribou deploys each stage of a serverless workflow DAG to the cloud
// region where it emits the least operational carbon, subject to
// end-to-end latency and cost tolerances and data-residency constraints,
// and re-deploys stages as grid carbon intensity shifts through the day.
// It requires no change to application logic: routing happens in the
// function wrapper via pub/sub topics, synchronization nodes coordinate
// through a distributed key-value store, and a token-bucket Deployment
// Manager ensures the framework's own overhead stays below the savings it
// produces.
//
// This implementation runs against a deterministic simulated multi-region
// cloud (see DESIGN.md for the substitution map from the paper's AWS
// deployment), making week-long experiments reproducible in milliseconds.
//
// # Declaring a workflow
//
// The Go builder mirrors the paper's Python API: registering a function
// corresponds to the @workflow.serverless_function decorator, Edge to
// invoke_serverless_function, ConditionalEdge to its conditional form, and
// a stage with multiple incoming edges is a synchronization node that
// retrieves predecessor data (get_predecessor_data):
//
//	wf := caribou.NewWorkflow("example", "0.1")
//	wf.Function("validate", caribou.FunctionConfig{
//		MemoryMB:       512,
//		AllowedRegions: []string{"aws:us-east-1"}, // compliance pin
//		Work:           caribou.Work{SmallSeconds: 0.3, LargeSeconds: 0.7},
//	})
//	wf.Function("speak", caribou.FunctionConfig{
//		MemoryMB: 3008,
//		Work:     caribou.Work{SmallSeconds: 4.2, LargeSeconds: 15.5},
//	})
//	wf.Edge("validate", "speak",
//		caribou.Payload{SmallBytes: 1e3, LargeBytes: 12e3})
//
// # Deploying and running
//
//	client, err := caribou.NewClient(caribou.ClientConfig{})
//	app, err := client.Deploy(wf, caribou.DeploymentConfig{
//		HomeRegion:          "aws:us-east-1",
//		Priority:            caribou.OptimizeCarbon,
//		LatencyTolerancePct: 10,
//		Adaptive:            true,
//	})
//	app.InvokeEvery(30*time.Minute, 48, caribou.SmallInput)
//	client.Run()
//	report, err := app.Report(caribou.BestCaseTransmission)
//
// The report carries per-invocation carbon (execution and transmission
// components), cost, and service-time statistics, plus the deployment
// decisions the framework made.
package caribou
