GO ?= go

.PHONY: all build test race vet bench verify eval-output

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The solver, montecarlo, eval, and carbon packages fan work across
# goroutines; run them under the race detector in addition to the plain
# suite. The eval pass includes the worker-pool determinism tests
# (bit-identical figures at Workers=1 vs Workers=8), the telemetry
# inertness tests (bit-identical figures with the recorder on vs off),
# and the shared trace-cache concurrency tests.
race:
	$(GO) test -race ./internal/solver/... ./internal/montecarlo/... ./internal/telemetry/...
	$(GO) test -race -run 'TestPool|TestFig7|TestCoarse|TestRunAll|TestDo|TestSharedSource|TestTelemetry' ./internal/eval/... ./internal/carbon/...

vet:
	$(GO) vet ./...

# bench is a short smoke pass (one iteration per benchmark) so the whole
# suite stays in CI budget; use `go test -bench . -benchtime Nx .` for
# stable timings.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .

# verify is the pre-merge gate: full build + full suite + race-checked
# solver/montecarlo/telemetry/eval-pool + vet.
verify: build test race vet
	@echo "verify: ok"

# eval-output regenerates the quick-mode sample of every experiment. The
# artifact is gitignored — regenerate locally instead of versioning it.
eval-output:
	$(GO) run ./cmd/caribou-eval -quick all > eval_output.txt
