GO ?= go

.PHONY: all build test race vet lint bench bench-json bench-json-pr8 bench-json-pr9 bench-json-pr10 sweep-clean verify eval-output

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The solver, montecarlo, eval, and carbon packages fan work across
# goroutines; run them under the race detector in addition to the plain
# suite. The eval pass includes the worker-pool determinism tests
# (bit-identical figures at Workers=1 vs Workers=8), the telemetry
# inertness tests (bit-identical figures with the recorder on vs off),
# and the shared trace-cache concurrency tests.
race:
	$(GO) test -race ./internal/solver/... ./internal/montecarlo/... ./internal/telemetry/...
	$(GO) test -race ./internal/controlplane/... ./internal/manager/... ./internal/runstore/...
	$(GO) test -race -run 'TestPool|TestFig7|TestCoarse|TestRunAll|TestDo|TestSharedSource|TestTelemetry' ./internal/eval/... ./internal/carbon/...

# vet runs with the same build tags as the build (none today; set
# VET_TAGS if that changes) and pins GOFLAGS=-mod=mod so local runs and
# CI agree even when a parent environment sets -mod=readonly or vendor.
# CI runs the identical invocation (see .github/workflows/ci.yml).
VET_TAGS ?=
vet:
	GOFLAGS=-mod=mod $(GO) vet -tags '$(VET_TAGS)' ./...

# lint runs the in-repo determinism & telemetry analyzer suite
# (internal/analysis, driven by cmd/caribou-lint): wallclock (no
# time.Now/Since/Sleep outside telemetry), globalrand (no math/rand
# outside simclock), maporder (no observable output from unsorted map
# iteration), hotsprintf (no Sprintf/concat in montecarlo/solver/stats
# loops), goroutines (go statements only in the approved concurrency
# packages), taperecord (no tapeStep/tapeEdge AoS literals outside
# internal/montecarlo), dettaint (no exported solver/montecarlo/eval/
# controlplane function may transitively reach a wallclock or
# global-rand sink — the chain is printed), hotalloc (no closure
# literals, interface boxing, fmt calls, or grow-in-loop appends in the
# montecarlo tape/delta/batch/bounds and solver HBSS hot files), and
# atomicpub (values published via atomic.Pointer.Store are
# write-complete at publish; shard-owned controlplane state mutates
# only inside its owning worker). Suppress an individual finding with
# //caribou:allow <check> <reason> — the reason is mandatory and a
# suppression that no longer matches a finding is itself a diagnostic.
# Results are cached under .caribou-cache/lint/ keyed by source and
# import hashes, so warm runs are sub-second and byte-identical to cold
# runs; -cache off disables, -cache DIR relocates. See DESIGN.md
# "Static analysis" and "Static analysis v2".
lint:
	$(GO) run ./cmd/caribou-lint ./...

# bench is a short smoke pass (one iteration per benchmark) so the whole
# suite stays in CI budget; use `go test -bench . -benchtime Nx .` for
# stable timings. The control-plane load generator runs a small
# in-process population as part of the same pass (benchmark lines on
# stdout; see cmd/caribou-load).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .
	$(GO) run ./cmd/caribou-load -tenants 64 -deltas 2 -queries 3 -workers 16

# bench-json times the tracked solver/tape benchmarks and merges the
# ns/op numbers into BENCH_PR7.json under $(LABEL) (see cmd/benchjson;
# existing labels such as "baseline" are preserved). Run on an otherwise
# idle machine for stable numbers. Compare the two sections afterwards
# with `go run ./cmd/benchjson -compare BENCH_PR7.json BENCH_PR7.json`,
# which flags any >5% regression and exits non-zero.
LABEL ?= after
BENCHES = BenchmarkSolver24Hourly$$|BenchmarkSolver24HourlyUntaped$$|BenchmarkSolver24HourlyNoBatch$$|BenchmarkFig7Parallel$$|BenchmarkSnapshotEstimateTaped$$|BenchmarkSnapshotEstimateUntaped$$|BenchmarkSnapshotEstimateBatch$$
bench-json:
	$(GO) test -run xxx -bench '$(BENCHES)' -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -out BENCH_PR7.json -label $(LABEL)

# bench-json-pr8 measures the control plane end-to-end: it builds
# caribou-server and caribou-load, starts the server in -sim mode on
# PR8_ADDR, drives 10k concurrent tenants over real HTTP, and merges the
# resulting benchmark lines (p99 plan-query latency, ns-per-solve
# throughput, admission-rejection count) into BENCH_PR8.json. Numbers are
# host-dependent; re-run on an idle machine before comparing.
PR8_ADDR ?= localhost:8456
bench-json-pr8:
	@mkdir -p .bench
	$(GO) build -o .bench/caribou-server ./cmd/caribou-server
	$(GO) build -o .bench/caribou-load ./cmd/caribou-load
	@.bench/caribou-server -sim -addr $(PR8_ADDR) -shards 8 -queue-depth 256 & \
	SERVER=$$!; sleep 1; \
	.bench/caribou-load -addr http://$(PR8_ADDR) -tenants 10000 -deltas 3 -queries 5 -workers 128 \
		| $(GO) run ./cmd/benchjson -out BENCH_PR8.json -label $(LABEL); \
	STATUS=$$?; kill $$SERVER 2>/dev/null; exit $$STATUS

# bench-json-pr9 measures the durable sweep engine end-to-end: a cold
# quick fig7-fig10 sweep into a fresh store, a warm re-sweep of the same
# store (served entirely from disk — zero solver executions), the same
# cold sweep split across two concurrent sharded processes, and the
# heavy-tail pruning bench (whose pruned/op metric must be nonzero; see
# BenchmarkSolver24HourlyHeavyTail). Everything merges into
# BENCH_PR9.json. Numbers are host-dependent; re-run on an idle machine.
PR9_CACHE = .bench/pr9-cache
PR9_FIGS = fig7,fig8,fig9,fig10
bench-json-pr9:
	@mkdir -p .bench
	$(GO) build -o .bench/caribou-sweep ./cmd/caribou-sweep
	rm -rf $(PR9_CACHE) $(PR9_CACHE)-sharded
	.bench/caribou-sweep submit -cache-dir $(PR9_CACHE) -name pr9 -figures $(PR9_FIGS) -quick
	.bench/caribou-sweep run -cache-dir $(PR9_CACHE) -name pr9 -bench SweepColdQuick \
		| $(GO) run ./cmd/benchjson -out BENCH_PR9.json -label $(LABEL)
	.bench/caribou-sweep submit -cache-dir $(PR9_CACHE) -name pr9-warm -figures $(PR9_FIGS) -quick
	.bench/caribou-sweep run -cache-dir $(PR9_CACHE) -name pr9-warm -bench SweepWarmQuick \
		| $(GO) run ./cmd/benchjson -out BENCH_PR9.json -label $(LABEL)
	.bench/caribou-sweep submit -cache-dir $(PR9_CACHE)-sharded -name pr9 -figures $(PR9_FIGS) -quick -shards 2
	@.bench/caribou-sweep run -cache-dir $(PR9_CACHE)-sharded -name pr9 -owner p1 -bench SweepShard1of2 > .bench/pr9-shard1.out & \
	P1=$$!; \
	.bench/caribou-sweep run -cache-dir $(PR9_CACHE)-sharded -name pr9 -owner p2 -bench SweepShard2of2 > .bench/pr9-shard2.out; \
	wait $$P1; \
	cat .bench/pr9-shard1.out .bench/pr9-shard2.out | $(GO) run ./cmd/benchjson -out BENCH_PR9.json -label $(LABEL)
	$(GO) test -run xxx -bench 'BenchmarkSolver24HourlyHeavyTail$$' -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -out BENCH_PR9.json -label $(LABEL)

# bench-json-pr10 times the lint driver's cache: caribou-lint -bench
# wipes a scratch cache, runs the full module cold (type-checking every
# package), re-runs it warm (every package served from the on-disk
# summary cache, zero type-checks), asserts the two outputs are
# byte-identical, and prints both timings as benchmark lines, which
# merge into BENCH_PR10.json. The warm run must be >=3x faster than the
# cold run; in practice it is two orders of magnitude faster. Numbers
# are host-dependent; re-run on an idle machine before comparing.
bench-json-pr10:
	@mkdir -p .bench
	$(GO) run ./cmd/caribou-lint -bench -cache .bench/pr10-lint-cache . \
		| $(GO) run ./cmd/benchjson -out BENCH_PR10.json -label $(LABEL)

# sweep-clean removes the durable run caches: the default store
# caribou-eval -cache-dir and caribou-sweep write to, plus the scratch
# stores bench-json-pr9 leaves under .bench/.
sweep-clean:
	rm -rf .caribou-cache $(PR9_CACHE) $(PR9_CACHE)-sharded

# verify is the pre-merge gate: full build + full suite + race-checked
# solver/montecarlo/telemetry/eval-pool + vet + the determinism lint.
verify: build test race vet lint
	@echo "verify: ok"

# eval-output regenerates the quick-mode sample of every experiment. The
# artifact is gitignored — regenerate locally instead of versioning it.
eval-output:
	$(GO) run ./cmd/caribou-eval -quick all > eval_output.txt
