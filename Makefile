GO ?= go

.PHONY: all build test race vet bench verify

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The solver, montecarlo, eval, and carbon packages fan work across
# goroutines; run them under the race detector in addition to the plain
# suite. The eval pass includes the worker-pool determinism tests
# (bit-identical figures at Workers=1 vs Workers=8) and the shared
# trace-cache concurrency tests.
race:
	$(GO) test -race ./internal/solver/... ./internal/montecarlo/...
	$(GO) test -race -run 'TestPool|TestFig7|TestCoarse|TestRunAll|TestDo|TestSharedSource' ./internal/eval/... ./internal/carbon/...

vet:
	$(GO) vet ./...

# bench is a short smoke pass (one iteration per benchmark) so the whole
# suite stays in CI budget; use `go test -bench . -benchtime Nx .` for
# stable timings.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem .

# verify is the pre-merge gate: full build + full suite + race-checked
# solver/montecarlo/eval-pool + vet.
verify: build test race vet
	@echo "verify: ok"
