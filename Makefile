GO ?= go

.PHONY: all build test race vet bench verify

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The solver and montecarlo packages fan work across goroutines; run them
# under the race detector in addition to the plain suite.
race:
	$(GO) test -race ./internal/solver/... ./internal/montecarlo/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# verify is the pre-merge gate: full build + full suite + race-checked
# solver/montecarlo + vet.
verify: build test race vet
	@echo "verify: ok"
