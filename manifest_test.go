package caribou

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestLoadManifest(t *testing.T) {
	in := `{
		"home_region": "aws:us-east-1",
		"priority": "carbon",
		"latency_tolerance_pct": 10,
		"allowed_countries": ["US"],
		"adaptive": true,
		"planning_scenario": "worst"
	}`
	cfg, err := LoadManifest(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HomeRegion != "aws:us-east-1" || cfg.Priority != OptimizeCarbon {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.LatencyTolerancePct != 10 || !cfg.Adaptive {
		t.Errorf("cfg = %+v", cfg)
	}
	if len(cfg.AllowedCountries) != 1 || cfg.AllowedCountries[0] != "US" {
		t.Errorf("countries = %v", cfg.AllowedCountries)
	}
	if cfg.PlanningScenario != WorstCaseTransmission {
		t.Errorf("scenario = %v", cfg.PlanningScenario)
	}
}

func TestLoadManifestDefaults(t *testing.T) {
	cfg, err := LoadManifest(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Priority != OptimizeCarbon || cfg.PlanningScenario != BestCaseTransmission {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestLoadManifestErrors(t *testing.T) {
	cases := []string{
		`{"priority": "speed"}`,
		`{"planning_scenario": "median"}`,
		`{"latency_tolerance_pct": -5}`,
		`{"unknown_field": 1}`,
		`{not json`,
	}
	for _, in := range cases {
		if _, err := LoadManifest(strings.NewReader(in)); err == nil {
			t.Errorf("manifest %q accepted", in)
		}
	}
}

func TestManifestDeploysEndToEnd(t *testing.T) {
	cfg, err := LoadManifest(strings.NewReader(`{
		"priority": "cost",
		"latency_tolerance_pct": 5
	}`))
	if err != nil {
		t.Fatal(err)
	}
	c := newTestClient(t, 1)
	app, err := c.Deploy(simpleWorkflow(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Invoke(SmallInput); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if _, err := app.Report(BestCaseTransmission); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRecordsJSONL(t *testing.T) {
	c := newTestClient(t, 1)
	app, err := c.Deploy(simpleWorkflow(), DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	app.InvokeEvery(time.Hour, 5, SmallInput)
	c.Run()

	var sb strings.Builder
	if err := app.WriteRecords(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if rec["Workflow"] != "simple" {
		t.Errorf("workflow field = %v", rec["Workflow"])
	}
	if _, ok := rec["Executions"]; !ok {
		t.Error("executions missing from record")
	}
}
