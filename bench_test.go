package caribou

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark per exhibit, reduced-scale configurations so a
// full -bench=. pass completes in minutes) plus component and ablation
// micro-benchmarks for the design choices called out in DESIGN.md. Run the
// full-scale experiments with cmd/caribou-eval.

import (
	"io"
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/eval"
	"caribou/internal/executor"
	"caribou/internal/forecast"
	"caribou/internal/kvstore"
	"caribou/internal/metrics"
	"caribou/internal/montecarlo"
	"caribou/internal/netmodel"
	"caribou/internal/platform"
	"caribou/internal/pricing"
	"caribou/internal/pubsub"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/solver"
	"caribou/internal/telemetry"
	"caribou/internal/trace"
	"caribou/internal/workloads"
)

// quickWLs is the reduced workload set used by the macro benches.
func quickWLs() []*workloads.Workload {
	return []*workloads.Workload{workloads.Text2SpeechCensoring(), workloads.ImageProcessing()}
}

// --- One benchmark per table and figure ---

func BenchmarkFig2CarbonTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := eval.Fig2(eval.Fig2Options{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatalf("want 4 regions, got %d", len(series))
		}
	}
}

func BenchmarkTable1Workflows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := eval.Table1()
		if len(rows) != 5 {
			b.Fatalf("want 5 benchmarks, got %d", len(rows))
		}
	}
}

func BenchmarkFig7GeoShifting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Fig7(eval.Fig7Options{
			Workloads: quickWLs(),
			Classes:   []workloads.InputClass{workloads.Small},
			PerDay:    96,
			Seed:      int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		eval.PrintFig7(io.Discard, rows)
	}
}

// BenchmarkFig7Serial and BenchmarkFig7Parallel bracket the worker-pool
// speedup on the same reduced-scale Fig 7. On multi-core hosts the
// parallel variant approaches serial/(cores) wall time; on a single-core
// host the two coincide (the pool adds only scheduling noise). Fresh pools
// per iteration keep the memo cold so only concurrency is measured.
func BenchmarkFig7Serial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Fig7(eval.Fig7Options{
			Workloads: quickWLs(),
			Classes:   []workloads.InputClass{workloads.Small},
			PerDay:    96,
			Seed:      int64(i + 1),
			Pool:      eval.NewPool(1),
		})
		if err != nil {
			b.Fatal(err)
		}
		eval.PrintFig7(io.Discard, rows)
	}
}

func BenchmarkFig7Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Fig7(eval.Fig7Options{
			Workloads: quickWLs(),
			Classes:   []workloads.InputClass{workloads.Small},
			PerDay:    96,
			Seed:      int64(i + 1),
			Pool:      eval.NewPool(0), // GOMAXPROCS workers
		})
		if err != nil {
			b.Fatal(err)
		}
		eval.PrintFig7(io.Discard, rows)
	}
}

// BenchmarkPoolMemoSweep measures the cross-figure memo: Figs 7-10 at
// reduced scale share one pool, so the coarse home baselines and the
// best-case fine(all) runs execute once and every later figure re-accounts
// them. Reports the memo hit rate alongside wall time.
func BenchmarkPoolMemoSweep(b *testing.B) {
	var hitRate float64
	for i := 0; i < b.N; i++ {
		pool := eval.NewPool(0)
		seed := int64(i + 1)
		wls := quickWLs()
		classes := []workloads.InputClass{workloads.Small}
		if _, err := eval.Fig7(eval.Fig7Options{Workloads: wls, Classes: classes, PerDay: 96, Seed: seed, Pool: pool}); err != nil {
			b.Fatal(err)
		}
		if _, err := eval.Fig8(eval.Fig8Options{Workloads: wls, Classes: classes, PerDay: 96, Seed: seed, Pool: pool}); err != nil {
			b.Fatal(err)
		}
		if _, err := eval.Fig9(eval.Fig9Options{Workloads: wls, Classes: classes, Factors: []float64{1e-4, 1e-3, 1e-2}, PerDay: 96, Seed: seed, Pool: pool}); err != nil {
			b.Fatal(err)
		}
		if _, err := eval.Fig10(eval.Fig10Options{Workloads: wls, Tolerances: []float64{0, 5, 10}, PerDay: 96, Seed: seed, Pool: pool}); err != nil {
			b.Fatal(err)
		}
		st := pool.Stats()
		hitRate = float64(st.Hits) / float64(st.Submitted)
	}
	b.ReportMetric(hitRate*100, "memo-hit-%")
}

func BenchmarkFig8ComputeTxRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := eval.Fig8(eval.Fig8Options{
			Workloads: quickWLs(),
			Classes:   []workloads.InputClass{workloads.Small},
			PerDay:    96,
			Seed:      int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		eval.PrintFig8(io.Discard, points)
	}
}

func BenchmarkFig9EnergyFactorSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := eval.Fig9(eval.Fig9Options{
			Workloads: quickWLs(),
			Classes:   []workloads.InputClass{workloads.Small},
			Factors:   []float64{1e-4, 1e-3, 1e-2},
			PerDay:    96,
			Seed:      int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		eval.PrintFig9(io.Discard, points)
	}
}

func BenchmarkFig10ToleranceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := eval.Fig10(eval.Fig10Options{
			Tolerances: []float64{0, 5, 10},
			PerDay:     96,
			Seed:       int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		eval.PrintFig10(io.Discard, points)
	}
}

func BenchmarkFig11AdaptiveWeek(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := eval.Fig11(eval.Fig11Options{
			Days:   3,
			PerDay: 250,
			Seed:   int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		eval.PrintFig11(io.Discard, results)
	}
}

func BenchmarkFig12OrchestratorOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Fig12(eval.Fig12Options{
			Workloads:   quickWLs(),
			Invocations: 40,
			Seed:        int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		eval.PrintFig12(io.Discard, rows)
	}
}

func BenchmarkFig13SolveFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, bb, err := eval.Fig13(eval.Fig13Options{
			Frequencies: []int{1, 7},
			PerDay:      300,
			Days:        7,
			Seed:        int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		eval.PrintFig13(io.Discard, a, bb)
	}
}

func BenchmarkTable2Taxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eval.PrintTable2(io.Discard, eval.Table2())
	}
}

// --- Component micro-benchmarks ---

var benchStart = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

// benchInputs assembles a Metric Manager with a day of learned data for
// the Text2Speech workflow.
func benchInputs(b *testing.B) (*metrics.Manager, *montecarlo.Estimator) {
	return benchInputsFor(b, workloads.Text2SpeechCensoring())
}

// benchInputsFor is benchInputs for an arbitrary workload.
func benchInputsFor(b *testing.B, wl *workloads.Workload) (*metrics.Manager, *montecarlo.Estimator) {
	return benchInputsHome(b, wl, region.USEast1)
}

// benchInputsHome is benchInputs for an arbitrary workload and home
// region.
func benchInputsHome(b *testing.B, wl *workloads.Workload, home region.ID) (*metrics.Manager, *montecarlo.Estimator) {
	b.Helper()
	cat, err := region.NorthAmerica().Subset(region.EvaluationFour())
	if err != nil {
		b.Fatal(err)
	}
	src, err := carbon.NewSyntheticSource(1, benchStart.Add(-8*24*time.Hour), benchStart.Add(2*24*time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	net := netmodel.New(cat)
	mm := metrics.New(wl.DAG, home, cat, net, src, pricing.DefaultBook())

	sched := simclock.New(benchStart)
	p, err := platform.New(platform.Options{Sched: sched, Catalogue: cat, Net: net, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := executor.New(executor.Options{
		Platform: p, Workload: wl, Home: home, Seed: 1,
		OnComplete: func(r *platform.InvocationRecord) { mm.Ingest(r) },
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.DeployHome(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		eng.InvokeAt(benchStart.Add(time.Duration(i)*5*time.Minute), workloads.Small, nil)
	}
	sched.Run()
	if err := mm.RefreshForecasts(benchStart.Add(24 * time.Hour)); err != nil {
		b.Fatal(err)
	}
	return mm, montecarlo.New(mm, carbon.BestCase(), 1)
}

func BenchmarkMonteCarloEstimate(b *testing.B) {
	mm, est := benchInputs(b)
	plan := dag.NewHomePlan(mm.DAG(), region.USEast1)
	at := benchStart.Add(25 * time.Hour)
	now := benchStart.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(plan, at, now); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchSolver(b *testing.B, mm *metrics.Manager, est *montecarlo.Estimator) *solver.Solver {
	return newBenchSolverWorkers(b, mm, est, 0)
}

func newBenchSolverWorkers(b *testing.B, mm *metrics.Manager, est *montecarlo.Estimator, workers int) *solver.Solver {
	b.Helper()
	s, err := solver.New(solver.Config{
		Inputs: mm, Estimator: est,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
		Seed:    1,
		Workers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSolverHBSS measures one single-hour HBSS solve — the §9.7 unit
// whose 24x repetition forms a full DP generation.
func BenchmarkSolverHBSS(b *testing.B) {
	mm, est := benchInputs(b)
	s := newBenchSolver(b, mm, est)
	at := benchStart.Add(25 * time.Hour)
	now := benchStart.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SolveOne(at, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverCoarse is the O(|R|) single-region ablation baseline.
func BenchmarkSolverCoarse(b *testing.B) {
	mm, est := benchInputs(b)
	s := newBenchSolver(b, mm, est)
	at := benchStart.Add(25 * time.Hour)
	now := benchStart.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SolveCoarse(at, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver24Hourly is the full daily plan generation (24 solves),
// the unit the paper reports at ~276 s with its Go Monte Carlo engine.
func BenchmarkSolver24Hourly(b *testing.B) {
	mm, est := benchInputs(b)
	s := newBenchSolver(b, mm, est)
	now := benchStart.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SolveHourly(now, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver24HourlyUntaped is the same daily plan generation with
// sample tapes disabled: every plan evaluation re-draws its Monte Carlo
// samples from scratch. The gap to BenchmarkSolver24Hourly is the
// common-random-number speedup (results are bit-identical either way; see
// the solver tape parity tests).
func BenchmarkSolver24HourlyUntaped(b *testing.B) {
	mm, est := benchInputs(b)
	s, err := solver.New(solver.Config{
		Inputs: mm, Estimator: est,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
		Seed:             1,
		UntapedEstimates: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	now := benchStart.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SolveHourly(now, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver24HourlyNoBatch is the daily plan generation with the
// batched sweep and exact pruning disabled: candidates evaluate one at a
// time (still taped, still delta-resumed). The gap to
// BenchmarkSolver24Hourly is the batching + pruning speedup; results are
// bit-identical either way (see TestSolveDeterministicAcrossEvalModes).
func BenchmarkSolver24HourlyNoBatch(b *testing.B) {
	mm, est := benchInputs(b)
	s, err := solver.New(solver.Config{
		Inputs: mm, Estimator: est,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
		Seed:        1,
		NoBatchEval: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	now := benchStart.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SolveHourly(now, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver24HourlyHeavyTail is the daily plan generation on the
// synthetic heavy-tail workload (not in Table 1), homed in the clean
// ca-central-1 grid: per-draw durations spread over a ~2.5x coefficient
// of variation, so Monte Carlo lanes are still unconverged at batch
// boundaries, and candidates shifting the dominant stages into the
// ~10x-dirtier US grids accumulate sample sums whose exact lower bound
// overshoots the home incumbent — the solver's bound-based pruning
// abandons them mid-evaluation. Reports pruned lanes per solve alongside
// wall time; the pruned/op metric must be nonzero or the pruning path
// has regressed to dead code on realistic inputs.
func BenchmarkSolver24HourlyHeavyTail(b *testing.B) {
	rec := telemetry.Enable(telemetry.Options{})
	defer telemetry.Disable()
	mm, est := benchInputsHome(b, workloads.HeavyTailAnalytics(), region.CACentral1)
	s := newBenchSolver(b, mm, est)
	now := benchStart.Add(24 * time.Hour)
	pruned := rec.Counter("montecarlo.pruned_candidates")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SolveHourly(now, now); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pruned.Value())/float64(b.N), "pruned/op")
}

// benchSnapshotAssign compiles a 24-hour snapshot of the learned inputs
// and returns it with the home assignment, for the estimate micro-pair.
func benchSnapshotAssign(b *testing.B) (*montecarlo.Snapshot, []int) {
	b.Helper()
	_, est := benchInputs(b)
	now := benchStart.Add(24 * time.Hour)
	hours := make([]time.Time, 24)
	for h := range hours {
		hours[h] = now.Add(time.Duration(h) * time.Hour)
	}
	snap, err := est.Compile(nil, hours, now)
	if err != nil {
		b.Fatal(err)
	}
	return snap, snap.HomeAssign()
}

// BenchmarkSnapshotEstimateTaped measures the steady-state cost of one
// plan evaluation replaying an already-compiled sample tape; the warm-up
// call pays the one-time tape compile so the loop times replay only.
func BenchmarkSnapshotEstimateTaped(b *testing.B) {
	snap, assign := benchSnapshotAssign(b)
	if _, err := snap.Estimate(assign, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.Estimate(assign, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEstimateUntaped is the reference draw-per-sample
// evaluation on the same snapshot — the per-estimate cost the tape
// amortizes away. The warm-up call mirrors the taped bench so the loop
// measures the steady state (scratch and accumulator pools populated),
// not first-call allocation.
func BenchmarkSnapshotEstimateUntaped(b *testing.B) {
	snap, assign := benchSnapshotAssign(b)
	if _, err := snap.EstimateUntaped(assign, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.EstimateUntaped(assign, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// batchBenchAssigns perturbs the home assignment into k distinct
// candidate plans — the shape of one HBSS evaluation round.
func batchBenchAssigns(snap *montecarlo.Snapshot, home []int, k int) [][]int {
	assigns := make([][]int, k)
	for i := range assigns {
		a := append([]int(nil), home...)
		a[i%len(a)] = (a[i%len(a)] + 1 + i/len(a)) % snap.Regions()
		assigns[i] = a
	}
	return assigns
}

// BenchmarkSnapshotEstimateBatch measures one shared sweep over 16
// candidate plans (the HBSS round size): per-plan cost should land well
// under BenchmarkSnapshotEstimateTaped because plan-independent column
// loads are fetched once and reused across all lanes.
func BenchmarkSnapshotEstimateBatch(b *testing.B) {
	snap, home := benchSnapshotAssign(b)
	assigns := batchBenchAssigns(snap, home, 16)
	if _, err := snap.EstimateBatch(assigns, 0, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.EstimateBatch(assigns, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveHourlySerial pins the daily solve to one worker — the
// baseline the parallel bench is compared against (the two must produce
// identical plans; see the solver determinism tests).
func BenchmarkSolveHourlySerial(b *testing.B) {
	mm, est := benchInputs(b)
	s := newBenchSolverWorkers(b, mm, est, 1)
	now := benchStart.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SolveHourly(now, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveHourlyParallel runs the same solve with the default
// worker pool (GOMAXPROCS): hourly solves and HBSS rounds fan out over
// the shared evaluation semaphore.
func BenchmarkSolveHourlyParallel(b *testing.B) {
	mm, est := benchInputs(b)
	s := newBenchSolverWorkers(b, mm, est, 0)
	now := benchStart.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SolveHourly(now, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotCompile measures flattening the Inputs interface into
// a 24-hour evaluation snapshot — the fixed cost a solve pays once before
// the (much larger) search reads only dense slices.
func BenchmarkSnapshotCompile(b *testing.B) {
	_, est := benchInputs(b)
	now := benchStart.Add(24 * time.Hour)
	hours := make([]time.Time, 24)
	for h := range hours {
		hours[h] = now.Add(time.Duration(h) * time.Hour)
	}
	cat, err := region.NorthAmerica().Subset(region.EvaluationFour())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Compile(cat.IDs(), hours, now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorInvocation(b *testing.B) {
	wl := workloads.Text2SpeechCensoring()
	cat := region.NorthAmerica()
	sched := simclock.New(benchStart)
	p, err := platform.New(platform.Options{Sched: sched, Catalogue: cat, Net: netmodel.New(cat), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	done := 0
	eng, err := executor.New(executor.Options{
		Platform: p, Workload: wl, Home: region.USEast1, Seed: 1,
		OnComplete: func(*platform.InvocationRecord) { done++ },
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.DeployHome(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.InvokeAt(sched.Now().Add(time.Minute), workloads.Small, nil)
		sched.Run()
	}
	if done != b.N {
		b.Fatalf("completed %d of %d", done, b.N)
	}
}

func BenchmarkHoltWintersFit(b *testing.B) {
	src, err := carbon.NewSyntheticSource(1, benchStart.Add(-8*24*time.Hour), benchStart)
	if err != nil {
		b.Fatal(err)
	}
	series, err := src.Hourly("US-CAL-CISO", benchStart.Add(-7*24*time.Hour), benchStart)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forecast.Fit(series, 24); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVStoreUpdate(b *testing.B) {
	kv := kvstore.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.Update("sync/bench", func(cur []byte, exists bool) ([]byte, bool) {
			return append(cur[:0], 'x'), true
		})
	}
}

func BenchmarkPubSubRoundTrip(b *testing.B) {
	sched := simclock.New(benchStart)
	broker := pubsub.NewBroker(sched, nil, pubsub.Config{}, simclock.NewRand(1))
	got := 0
	broker.Subscribe("t", func(pubsub.Message) error { got++; return nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := broker.Publish("t", []byte("x")); err != nil {
			b.Fatal(err)
		}
		sched.Run()
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(trace.AzureP5(), benchStart, benchStart.Add(24*time.Hour), int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCarbonAccounting(b *testing.B) {
	mm, _ := benchInputs(b)
	recs := mm.Records()
	if len(recs) == 0 {
		b.Fatal("no records")
	}
	cat, err := region.NorthAmerica().Subset(region.EvaluationFour())
	if err != nil {
		b.Fatal(err)
	}
	src, err := carbon.NewSyntheticSource(1, benchStart.Add(-8*24*time.Hour), benchStart.Add(2*24*time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	tx := carbon.WorstCase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		if _, _, err := r.CarbonGrams(src, cat, tx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension and ablation benches ---

func BenchmarkExtGlobalShifting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.ExtGlobal(nil, quickWLs(), int64(i+1), 96)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkExtTemporalShifting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.ExtTemporal(nil, quickWLs(), int64(i+1), 96)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkAblationSolverStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.AblationSolver(nil, int64(i+1), 96)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkAblationForecastStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.AblationForecast(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkMarginalCarbonSignal(b *testing.B) {
	src, err := carbon.NewSyntheticSource(1, benchStart, benchStart.Add(24*time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	mci := carbon.NewMarginalSource(src, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mci.At("US-MIDA-PJM", benchStart.Add(time.Duration(i%24)*time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}
