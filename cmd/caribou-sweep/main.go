// Command caribou-sweep is the durable sweep engine's job-queue CLI: it
// expands a sweep specification into a manifest of content-addressed run
// keys, lets any number of processes claim shards of that manifest via
// O_EXCL lock files, and exports deterministic per-run summaries from
// the shared on-disk store.
//
// Usage:
//
//	caribou-sweep submit -name NAME [-cache-dir DIR] [-figures fig7,...] [-quick] [-seed N] [-shards N] [-spec FILE]
//	caribou-sweep run    -name NAME [-cache-dir DIR] [-owner ID] [-workers N] [-lease DUR] [-bench LABEL]
//	caribou-sweep resume -name NAME ...   (alias of run)
//	caribou-sweep status [-name NAME] [-cache-dir DIR]
//	caribou-sweep export -name NAME [-cache-dir DIR]
//
// A sweep is defined once by submit; run processes started on any number
// of machines sharing the cache directory each claim the next unleased
// shard, execute its runs through the eval pool (publishing every result
// to the store), and mark it done. Because results are content-addressed
// and bit-reproducible, the merged result set is byte-identical no
// matter how many processes participated — export output never depends
// on the sharding. Runs the store already holds are served from disk, so
// re-running a warm sweep executes zero solver work.
//
// Diagnostics go to stderr; stdout carries only deterministic output
// (export summaries, and the benchmark line printed by -bench).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"caribou/internal/eval"
	"caribou/internal/runstore"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	verb := os.Args[1]

	fs := flag.NewFlagSet("caribou-sweep "+verb, flag.ExitOnError)
	cacheDir := fs.String("cache-dir", ".caribou-cache", "content-addressed store directory shared by all processes")
	name := fs.String("name", "", "sweep name")
	figures := fs.String("figures", "", "comma-separated figure presets (fig7,fig8,fig9,fig10)")
	quick := fs.Bool("quick", false, "mirror caribou-eval -quick: reduced workload set and parameter lists")
	seed := fs.Int64("seed", 17, "experiment seed for preset and grid runs")
	shards := fs.Int("shards", 1, "number of shards the manifest is dealt into")
	specFile := fs.String("spec", "", "JSON SweepSpec file (combined with -figures/-quick/-seed)")
	owner := fs.String("owner", "", "lease owner identity (default: pid-<pid>)")
	workers := fs.Int("workers", 0, "concurrent runs per claimed shard (0 = GOMAXPROCS)")
	lease := fs.Duration("lease", 15*time.Minute, "shard lease duration; expired leases are stolen by other runners")
	bench := fs.String("bench", "", "print a 'Benchmark<LABEL> 1 <ns> ns/op' line for the run verb's wall time")
	fs.Usage = usage
	fs.Parse(os.Args[2:])

	// The wall clock enters the sweep machinery only here, feeding the
	// shard-lease protocol through the runstore.Clock seam; blob content
	// and export output are clock-free.
	clk := runstore.ClockFunc(time.Now) //caribou:allow wallclock lease expiry needs real time across processes; injected via the runstore clock seam, never in blob or export content

	store, err := runstore.Open(*cacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou-sweep: %v\n", err)
		return 1
	}

	switch verb {
	case "submit":
		err = submit(store, clk, *name, *figures, *quick, *seed, *shards, *specFile)
	case "run", "resume":
		err = runSweep(store, clk, *name, *owner, *workers, *lease, *bench)
	case "status":
		err = status(store, clk, *name)
	case "export":
		err = export(store, clk, *name)
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou-sweep %s: %v\n", verb, err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: caribou-sweep <verb> [flags]

verbs:
  submit  expand a sweep spec into a sharded manifest of run keys
  run     claim shards and execute their runs into the shared store
  resume  alias of run (done shards are skipped, stale leases stolen)
  status  per-shard progress of a sweep (or list sweeps without -name)
  export  deterministic per-run summaries in manifest order

flags (per verb):
  -cache-dir DIR   store directory (default .caribou-cache)
  -name NAME       sweep name (submit/run/export require it)
  -figures LIST    submit: comma-separated presets fig7,fig8,fig9,fig10
  -quick           submit: mirror caribou-eval -quick reductions
  -seed N          submit: experiment seed (default 17)
  -shards N        submit: number of shards (default 1)
  -spec FILE       submit: JSON SweepSpec file
  -owner ID        run: lease owner identity (default pid-<pid>)
  -workers N       run: concurrent runs per shard (0 = GOMAXPROCS)
  -lease DUR       run: shard lease duration (default 15m)
  -bench LABEL     run: print a benchmark line with the verb's wall time
`)
}

// submit expands the spec sources into a manifest and writes it.
func submit(store *runstore.Store, clk runstore.Clock, name, figures string, quick bool, seed int64, shards int, specFile string) error {
	if name == "" {
		return fmt.Errorf("submit needs -name")
	}
	var spec eval.SweepSpec
	if specFile != "" {
		buf, err := os.ReadFile(specFile)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(buf, &spec); err != nil {
			return fmt.Errorf("spec %s: %w", specFile, err)
		}
	}
	if figures != "" {
		spec.Figures = append(spec.Figures, strings.Split(figures, ",")...)
	}
	if quick {
		spec.Quick = true
	}
	if spec.Seed == 0 {
		spec.Seed = seed
	}
	runs, err := eval.ExpandSweep(spec)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return fmt.Errorf("spec expands to zero runs (give -figures, -spec, or both)")
	}
	man := &runstore.Manifest{Name: name, Schema: eval.ResultSchema, Shards: shards}
	for _, r := range runs {
		cfg, err := json.Marshal(eval.SpecOf(r.Cfg))
		if err != nil {
			return err
		}
		man.Entries = append(man.Entries, runstore.ManifestEntry{
			Key:    runstore.KeyOf(r.Name),
			Name:   r.Name,
			Config: cfg,
		})
	}
	sw, err := runstore.CreateSweep(store, man, clk)
	if err != nil {
		return err
	}
	cached := 0
	for _, e := range man.Entries {
		if store.Has(e.Key) {
			cached++
		}
	}
	fmt.Fprintf(os.Stderr, "[submitted sweep %q: %d runs in %d shards, %d already cached]\n",
		name, len(man.Entries), sw.Manifest().Shards, cached)
	return nil
}

// runSweep claims shards until none are available, executing each
// shard's runs through a store-attached eval pool.
func runSweep(store *runstore.Store, clk runstore.Clock, name, owner string, workers int, lease time.Duration, bench string) error {
	if name == "" {
		return fmt.Errorf("run needs -name")
	}
	if owner == "" {
		owner = fmt.Sprintf("pid-%d", os.Getpid())
	}
	sw, err := runstore.OpenSweep(store, name, clk)
	if err != nil {
		return err
	}
	pool := eval.NewPool(workers)
	pool.AttachStore(store)
	started := clk.Now()

	man := sw.Manifest()
	for {
		shard, ok, err := sw.Claim(owner, lease)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		idxs := man.ShardEntries(shard)
		fmt.Fprintf(os.Stderr, "[%s claimed shard %d: %d runs]\n", owner, shard, len(idxs))
		// Chunk the shard so the lease is renewed between batches: a
		// shard larger than one lease window stays owned as long as this
		// process keeps making progress.
		chunk := 4 * pool.Workers()
		for len(idxs) > 0 {
			n := chunk
			if n > len(idxs) {
				n = len(idxs)
			}
			var cfgs []eval.RunConfig
			for _, ei := range idxs[:n] {
				var rs eval.RunSpec
				if err := json.Unmarshal(man.Entries[ei].Config, &rs); err != nil {
					return fmt.Errorf("shard %d entry %d: %w", shard, ei, err)
				}
				cfg, err := rs.Config()
				if err != nil {
					return fmt.Errorf("shard %d entry %d: %w", shard, ei, err)
				}
				cfgs = append(cfgs, cfg)
			}
			if _, err := pool.RunAll(cfgs); err != nil {
				return fmt.Errorf("shard %d: %w", shard, err)
			}
			idxs = idxs[n:]
			if len(idxs) > 0 {
				if err := sw.Renew(shard, owner, lease); err != nil {
					return fmt.Errorf("shard %d: %w", shard, err)
				}
			}
		}
		if err := sw.MarkDone(shard); err != nil {
			return err
		}
	}

	ps, ss := pool.Stats(), store.Stats()
	fmt.Fprintf(os.Stderr, "[%s done: submitted=%d executed=%d memo=%d disk=%d writes=%d store-corrupt=%d]\n",
		owner, ps.Submitted, ps.Executed, ps.Hits, ps.DiskHits, ps.DiskWrites, ss.Corrupt)
	if bench != "" {
		elapsed := clk.Now().Sub(started)
		fmt.Printf("Benchmark%s 1 %d ns/op\n", bench, elapsed.Nanoseconds())
	}
	return nil
}

// status prints per-shard progress, or the sweep list without -name.
func status(store *runstore.Store, clk runstore.Clock, name string) error {
	if name == "" {
		names, err := runstore.ListSweeps(store)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}
	sw, err := runstore.OpenSweep(store, name, clk)
	if err != nil {
		return err
	}
	fmt.Printf("sweep %s: %d runs in %d shards\n", name, len(sw.Manifest().Entries), sw.Manifest().Shards)
	fmt.Printf("%-6s %8s %8s %-6s %-20s %s\n", "shard", "runs", "cached", "done", "owner", "lease")
	for _, st := range sw.Status() {
		leaseState := ""
		if st.Owner != "" {
			leaseState = "live"
			if st.Expired {
				leaseState = "expired"
			}
		}
		done := "-"
		if st.Done {
			done = "done"
		}
		fmt.Printf("%-6d %8d %8d %-6s %-20s %s\n", st.Shard, st.Total, st.Present, done, st.Owner, leaseState)
	}
	return nil
}

// export prints one deterministic summary block per manifest entry, in
// manifest order, accounting each cached result under both transmission
// scenarios. Output depends only on the manifest and the blobs — never
// on which process produced them.
func export(store *runstore.Store, clk runstore.Clock, name string) error {
	sw, err := runstore.OpenSweep(store, name, clk)
	if err != nil {
		return err
	}
	man := sw.Manifest()
	fmt.Printf("sweep %s: %d runs\n", name, len(man.Entries))
	for i, e := range man.Entries {
		var rs eval.RunSpec
		if err := json.Unmarshal(e.Config, &rs); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
		cfg, err := rs.Config()
		if err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
		payload, ok, err := store.Get(e.Key, man.Schema)
		if err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
		if !ok {
			fmt.Printf("%s\n  MISSING\n", e.Name)
			continue
		}
		res, err := eval.DecodeResult(cfg, payload)
		if err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
		fmt.Printf("%s\n", e.Name)
		for _, sc := range eval.Scenarios() {
			sum, err := res.Summarize(sc.Tx)
			if err != nil {
				return fmt.Errorf("entry %d (%s): %w", i, sc.Name, err)
			}
			fmt.Printf("  %-5s carbon=%.6f g/inv cost=%.8f $/inv p95=%.3f s (n=%d)\n",
				sc.Name, sum.MeanCarbonG, sum.MeanCostUSD, sum.P95ServiceSec, sum.Invocations)
		}
	}
	return nil
}
