// Command benchjson merges `go test -bench` output from stdin into a
// JSON file mapping benchmark name → ns/op under a top-level label, e.g.
//
//	go test -run '^$' -bench 'Solver24Hourly$' -benchtime 3x . \
//	    | go run ./cmd/benchjson -out BENCH_PR4.json -label after
//
// Existing labels in the output file are preserved, so a "baseline"
// section captured before a change survives later "after" runs. The
// GOMAXPROCS suffix Go appends to benchmark names (e.g. "-8") is
// stripped so results from different hosts share keys.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([\d.]+) ns/op`)

func main() {
	out := flag.String("out", "BENCH.json", "JSON file to create or merge into")
	label := flag.String("label", "after", "top-level key for this run's numbers")
	flag.Parse()
	if err := run(*out, *label); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, label string) error {
	results := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		results[m[1]] = ns
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}

	all := map[string]map[string]float64{}
	if prev, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(prev, &all); err != nil {
			return fmt.Errorf("parse existing %s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if all[label] == nil {
		all[label] = map[string]float64{}
	}
	for name, ns := range results {
		all[label][name] = ns
	}

	buf, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}

	var names []string
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s: %s = %.0f ns/op\n", label, name, results[name])
	}
	return nil
}
