// Command benchjson merges `go test -bench` output from stdin into a
// JSON file mapping benchmark name → ns/op under a top-level label, e.g.
//
//	go test -run '^$' -bench 'Solver24Hourly$' -benchtime 3x . \
//	    | go run ./cmd/benchjson -out BENCH_PR4.json -label after
//
// Existing labels in the output file are preserved, so a "baseline"
// section captured before a change survives later "after" runs. The
// GOMAXPROCS suffix Go appends to benchmark names (e.g. "-8") is
// stripped so results from different hosts share keys. Custom
// b.ReportMetric columns (e.g. "5946 pruned/op") are captured under
// "<name>:<unit>" keys; -compare reports them but never gates on them.
//
// With -compare, benchjson reads no stdin and instead diffs two result
// files (which may be the same file twice, holding both labels):
//
//	go run ./cmd/benchjson -compare BENCH_PR7.json BENCH_PR7.json
//
// It prints the speedup ratio per benchmark, flags every slowdown worse
// than 5% as a REGRESSION, and exits non-zero when any is found — so CI
// can gate on it directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([\d.]+) ns/op`)

// metricCol matches one "<value> <unit>" column of a benchmark line.
// Custom b.ReportMetric values follow ns/op (e.g. "5946 pruned/op") and
// are stored under "<name>:<unit>" keys; the standard timing and memory
// columns are excluded so -benchmem runs do not triple the key set.
var metricCol = regexp.MustCompile(`([\d.eE+-]+) (\S+/(?:op|s))`)

var standardUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true}

// regressionTolerance is the relative slowdown -compare flags: an "after"
// time more than 5% above its baseline is a regression.
const regressionTolerance = 0.05

func main() {
	out := flag.String("out", "BENCH.json", "JSON file to create or merge into")
	label := flag.String("label", "after", "top-level key for this run's numbers")
	compare := flag.Bool("compare", false, "compare two result files given as positional args instead of merging stdin")
	baseLabel := flag.String("baseline-label", "baseline", "label to read from the first -compare file")
	afterLabel := flag.String("after-label", "after", "label to read from the second -compare file")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: baseline.json after.json")
			os.Exit(2)
		}
		regressed, err := runCompare(flag.Arg(0), flag.Arg(1), *baseLabel, *afterLabel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *label); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, label string) error {
	results := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		results[m[1]] = ns
		for _, mc := range metricCol.FindAllStringSubmatch(sc.Text(), -1) {
			if standardUnits[mc[2]] {
				continue
			}
			v, err := strconv.ParseFloat(mc[1], 64)
			if err != nil {
				return fmt.Errorf("line %q: %w", sc.Text(), err)
			}
			results[m[1]+":"+mc[2]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}

	all := map[string]map[string]float64{}
	if prev, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(prev, &all); err != nil {
			return fmt.Errorf("parse existing %s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if all[label] == nil {
		all[label] = map[string]float64{}
	}
	for name, ns := range results {
		all[label][name] = ns
	}

	buf, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}

	var names []string
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		unit := "ns/op"
		if i := strings.Index(name, ":"); i >= 0 {
			unit = name[i+1:]
		}
		fmt.Printf("%s: %s = %.0f %s\n", label, name, results[name], unit)
	}
	return nil
}

// loadLabel reads one benchmark section from a result file: the named
// label when present, or the file's only label as a fallback (so plain
// single-section files work without flags).
func loadLabel(path, label string) (map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	all := map[string]map[string]float64{}
	if err := json.Unmarshal(buf, &all); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if m, ok := all[label]; ok {
		return m, nil
	}
	if len(all) == 1 {
		for _, m := range all {
			return m, nil
		}
	}
	var labels []string
	for k := range all {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	return nil, fmt.Errorf("%s: no %q section (have %v)", path, label, labels)
}

// runCompare prints per-benchmark speedup ratios between two result
// files and reports whether any benchmark regressed by more than the
// tolerance. Benchmarks present on only one side are listed but never
// counted as regressions.
func runCompare(basePath, afterPath, baseLabel, afterLabel string) (regressed bool, err error) {
	base, err := loadLabel(basePath, baseLabel)
	if err != nil {
		return false, err
	}
	after, err := loadLabel(afterPath, afterLabel)
	if err != nil {
		return false, err
	}
	names := map[string]bool{}
	for name := range base {
		names[name] = true
	}
	for name := range after {
		names[name] = true
	}
	var sorted []string
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		b, inBase := base[name]
		a, inAfter := after[name]
		if strings.Contains(name, ":") {
			// Custom metric, not a timing: direction of "better" is
			// unknowable here, so report both sides and never gate.
			fmt.Printf("%-44s baseline %12g, after %12g (metric, not compared)\n", name, b, a)
			continue
		}
		switch {
		case !inBase:
			fmt.Printf("%-44s (no baseline)          after %12.0f ns/op\n", name, a)
		case !inAfter:
			fmt.Printf("%-44s baseline %12.0f ns/op (no after)\n", name, b)
		case a <= 0 || b <= 0:
			fmt.Printf("%-44s unusable timing (baseline %g, after %g)\n", name, b, a)
		default:
			ratio := b / a
			line := fmt.Sprintf("%-44s %12.0f → %12.0f ns/op  %5.2fx", name, b, a, ratio)
			if a > b*(1+regressionTolerance) {
				line += fmt.Sprintf("  REGRESSION (+%.1f%%)", (a/b-1)*100)
				regressed = true
			}
			fmt.Println(line)
		}
	}
	return regressed, nil
}
