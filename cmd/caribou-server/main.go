// Command caribou-server runs the Caribou control plane: a long-running
// HTTP/JSON service hosting registered workflows, streaming trace deltas
// into their event-driven token buckets, and serving planning decisions.
//
// Usage:
//
//	caribou-server [-addr HOST:PORT] [-shards N] [-queue-depth N] [-seed N]
//	               [-sim] [-solve-iterations N]
//	               [-trace FILE] [-telemetry] [-pprof ADDR]
//	               [-cpuprofile FILE] [-memprofile FILE]
//
// API (see DESIGN.md "Control plane"):
//
//	POST /v1/workflows              register a workflow (DAG + priority + regions)
//	POST /v1/workflows/{id}/trace   push a streaming trace delta
//	GET  /v1/workflows/{id}/plan    current plan + staleness metadata
//	POST /v1/workflows/{id}/solve   force a re-solve (409 when tokens are short)
//	GET  /v1/stats                  serving counters and shard queue depths
//	GET  /healthz                   liveness
//
// -sim serves against a simclock frozen at the virtual-time origin, which
// makes every response body byte-reproducible for a given request script;
// the default wall clock only ever stamps served_at metadata — plan
// content is identical either way. Observability flags follow the
// caribou-eval conventions: -trace FILE dumps the NDJSON flight recorder
// on shutdown, -telemetry prints a summary table to stderr, -pprof serves
// net/http/pprof, -cpuprofile/-memprofile write runtime profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"caribou/internal/controlplane"
	"caribou/internal/telemetry"
)

func main() { os.Exit(realMain()) }

// realMain carries main's body so deferred cleanup (profile flushes,
// trace writes, shard shutdown) runs before the process exits.
func realMain() int {
	addr := flag.String("addr", "localhost:8455", "HTTP listen address")
	shards := flag.Int("shards", 4, "worker shards owning tenant state")
	queueDepth := flag.Int("queue-depth", 64, "per-shard job queue bound (admission control)")
	seed := flag.Int64("seed", 1, "server seed: derives tenant seeds and the carbon source")
	sim := flag.Bool("sim", false, "serve against a simclock frozen at the virtual-time origin (byte-reproducible responses)")
	solveIters := flag.Int("solve-iterations", 24, "HBSS iteration cap per tenant solve")
	traceFile := flag.String("trace", "", "write an NDJSON telemetry trace to this file on shutdown")
	summary := flag.Bool("telemetry", false, "print a telemetry summary table to stderr on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	// Telemetry must be enabled before the server is constructed:
	// instrument handles are captured at construction time.
	if *traceFile != "" || *summary {
		telemetry.Enable(telemetry.Options{})
	}
	if *pprofAddr != "" {
		//caribou:allow goroutines pprof server lives outside the control plane; it never touches tenant state
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "caribou-server: pprof server: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caribou-server: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "caribou-server: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	cfg := controlplane.Config{
		Shards:        *shards,
		QueueDepth:    *queueDepth,
		Seed:          *seed,
		MaxIterations: *solveIters,
	}
	if !*sim {
		// The serving edge's one wall-clock site: the injected clock
		// stamps served_at metadata and latency instruments only; plan
		// content never reads it (see DESIGN.md "Control plane").
		//caribou:allow wallclock serving-edge clock stamps served_at metadata only; plan content never reads it
		cfg.Clock = controlplane.ClockFunc(time.Now)
	}
	srv, err := controlplane.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou-server: %v\n", err)
		return 1
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Bounded request handling: a solve-heavy mutation can hold a
		// connection for a while, but not forever.
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	//caribou:allow goroutines HTTP listener runs beside the signal handler; shard workers own all tenant state
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "caribou-server: listening on %s (shards=%d queue-depth=%d sim=%t)\n", *addr, *shards, *queueDepth, *sim)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	code := 0
	select {
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "caribou-server: %v\n", err)
			code = 1
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "caribou-server: %v; shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "caribou-server: shutdown: %v\n", err)
			code = 1
		}
		cancel()
	}

	// All diagnostics go to stderr or side files, mirroring caribou-eval.
	if *summary {
		telemetry.Default().WriteSummary(os.Stderr)
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "caribou-server: %v\n", err)
			code = 1
		}
	}
	if *memProfile != "" {
		if err := writeHeapProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "caribou-server: %v\n", err)
			code = 1
		}
	}
	return code
}

// writeTrace dumps the flight recorder and instrument registry as NDJSON.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.Default().WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
