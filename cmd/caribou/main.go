// Command caribou is the deployment-utility CLI (§6.1, §8): it deploys a
// benchmark workflow to the simulated multi-region cloud, runs traffic
// against it, solves carbon-optimal deployment plans, and reports
// carbon/cost/latency — the Go analogue of the paper's `caribou` Python
// CLI.
//
// Usage:
//
//	caribou list
//	caribou run [flags] <workflow>
//	caribou solve [flags] <workflow>
//	caribou regions
//
// `run` deploys the workflow at its home region, drives a trace through
// it (adaptively re-deploying when -adaptive is set), and prints the
// final report under both transmission scenarios. `solve` prints the 24
// hourly deployment plans Caribou would generate after a day of learning.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	caribou "caribou"
	"caribou/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = list()
	case "regions":
		err = regions()
	case "run":
		err = run(args)
	case "solve":
		err = solve(args)
	case "describe":
		err = describe(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: caribou <command> [flags]

commands:
  list            list the built-in benchmark workflows
  regions         list available regions
  run <wf>        deploy and drive a workflow, then report
  solve <wf>      print the hourly deployment plans after a learning day
  describe <wf>   print the workflow DAG in Graphviz DOT format

run/solve flags:
  -home <region>      home region (default aws:us-east-1)
  -days <n>           experiment days (default 2)
  -per-day <n>        invocations per day (default 400)
  -adaptive           enable the token-bucket Deployment Manager (run)
  -tolerance <pct>    end-to-end latency tolerance (default 10)
  -priority <p>       carbon|cost|latency (default carbon)
  -seed <n>           simulation seed (default 1)
`)
}

func list() error {
	fmt.Println("Built-in benchmark workflows (Table 1):")
	for _, wl := range workloads.All() {
		fmt.Printf("  %-24s %d stages, sync=%v cond=%v — %s\n",
			wl.Name, wl.DAG.Len(), len(wl.DAG.SyncNodes()) > 0, wl.DAG.HasConditional(), wl.Description)
	}
	return nil
}

func regions() error {
	client, err := caribou.NewClient(caribou.ClientConfig{})
	if err != nil {
		return err
	}
	fmt.Println("Available regions:")
	for _, r := range client.Regions() {
		fmt.Printf("  %s\n", r)
	}
	return nil
}

type commonFlags struct {
	home      string
	days      int
	perDay    int
	adaptive  bool
	tolerance float64
	priority  string
	seed      int64
}

func parseCommon(name string, args []string) (commonFlags, string, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	var cf commonFlags
	fs.StringVar(&cf.home, "home", "aws:us-east-1", "home region")
	fs.IntVar(&cf.days, "days", 2, "experiment days")
	fs.IntVar(&cf.perDay, "per-day", 400, "invocations per day")
	fs.BoolVar(&cf.adaptive, "adaptive", false, "enable adaptive re-deployment")
	fs.Float64Var(&cf.tolerance, "tolerance", 10, "latency tolerance in percent")
	fs.StringVar(&cf.priority, "priority", "carbon", "optimization priority")
	fs.Int64Var(&cf.seed, "seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return cf, "", err
	}
	if fs.NArg() != 1 {
		return cf, "", fmt.Errorf("expected exactly one workflow name; try `caribou list`")
	}
	return cf, fs.Arg(0), nil
}

func priorityOf(s string) (caribou.Priority, error) {
	switch s {
	case "carbon":
		return caribou.OptimizeCarbon, nil
	case "cost":
		return caribou.OptimizeCost, nil
	case "latency":
		return caribou.OptimizeLatency, nil
	}
	return 0, fmt.Errorf("unknown priority %q", s)
}

func deploy(cf commonFlags, name string) (*caribou.Client, *caribou.App, error) {
	wf, err := caribou.Benchmark(name)
	if err != nil {
		return nil, nil, err
	}
	prio, err := priorityOf(cf.priority)
	if err != nil {
		return nil, nil, err
	}
	client, err := caribou.NewClient(caribou.ClientConfig{
		Seed: cf.seed,
		End:  caribou.DefaultEvaluationStart.Add(time.Duration(cf.days) * 24 * time.Hour),
	})
	if err != nil {
		return nil, nil, err
	}
	app, err := client.Deploy(wf, caribou.DeploymentConfig{
		HomeRegion:          cf.home,
		Priority:            prio,
		LatencyTolerancePct: cf.tolerance,
		Adaptive:            cf.adaptive,
	})
	if err != nil {
		return nil, nil, err
	}
	return client, app, nil
}

func describe(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: caribou describe <workflow>")
	}
	wl, err := workloads.ByName(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("// %s — %s (%s)\n", wl.Name, wl.Description, wl.DAG.Summary())
	fmt.Print(wl.DAG.ToDOT(nil))
	return nil
}

func run(args []string) error {
	cf, name, err := parseCommon("run", args)
	if err != nil {
		return err
	}
	client, app, err := deploy(cf, name)
	if err != nil {
		return err
	}
	gap := 24 * time.Hour / time.Duration(cf.perDay)
	app.InvokeEvery(gap, cf.days*cf.perDay, caribou.SmallInput)
	fmt.Printf("Deployed %s at %s; running %d invocations over %d day(s) (adaptive=%v)...\n",
		name, cf.home, cf.days*cf.perDay, cf.days, cf.adaptive)
	client.Run()

	for _, sc := range []caribou.TransmissionScenario{caribou.BestCaseTransmission, caribou.WorstCaseTransmission} {
		rep, err := app.Report(sc)
		if err != nil {
			return err
		}
		label := "best-case"
		if sc == caribou.WorstCaseTransmission {
			label = "worst-case"
		}
		fmt.Printf("[%s tx] %s\n", label, rep)
	}
	return nil
}

func solve(args []string) error {
	cf, name, err := parseCommon("solve", args)
	if err != nil {
		return err
	}
	client, app, err := deploy(cf, name)
	if err != nil {
		return err
	}
	// Learning day at home, then one solve.
	gap := 24 * time.Hour / time.Duration(cf.perDay)
	app.InvokeEvery(gap, cf.perDay, caribou.SmallInput)
	client.RunUntil(caribou.DefaultEvaluationStart.Add(24 * time.Hour))
	if err := app.Solve(); err != nil {
		return err
	}
	fmt.Printf("Hourly deployment plans for %s (after one learning day):\n", name)
	for hour, plan := range app.Plans() {
		fmt.Printf("  %02d:00 %s\n", hour, plan)
	}
	return nil
}
