// Command caribou-lint runs the repo's determinism & telemetry analyzer
// suite (internal/analysis) over the whole module and reports findings as
//
//	file:line: [check] message
//
// or, with -json, as a JSON array of {file, line, col, check, message}.
// It exits 0 when clean, 1 on findings, 2 on load or usage errors.
//
// Usage:
//
//	caribou-lint [-json] [dir]
//
// dir defaults to the current directory; the nearest enclosing go.mod
// determines the module. "./..." is accepted as an alias for "." so the
// invocation reads like the other go tools. Suppress an individual
// finding with a trailing (or immediately preceding) comment
//
//	//caribou:allow <check> <reason>
//
// where the reason is mandatory — an allow without one is itself a
// finding. See DESIGN.md "Static analysis" for what each check enforces
// and why.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"caribou/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: caribou-lint [-json] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 1 {
		flag.Usage()
		return 2
	}
	dir := "."
	if flag.NArg() == 1 && flag.Arg(0) != "./..." {
		dir = flag.Arg(0)
	}

	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou-lint: %v\n", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou-lint: %v\n", err)
		return 2
	}
	diags := analysis.Lint(pkgs, analysis.Analyzers())

	if *jsonOut {
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File:    relPath(root, d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "caribou-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d: [%s] %s\n", relPath(root, d.Pos.Filename), d.Pos.Line, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "caribou-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relPath renders file relative to the module root when possible, so
// diagnostics are stable across machines.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return file
}
