// Command caribou-lint runs the repo's determinism & telemetry analyzer
// suite (internal/analysis) over the whole module and reports findings as
//
//	file:line: [check] message
//
// or, with -json, as a JSON array of {file, line, col, check, message}.
// Output is sorted by (file, line, column, check) in both modes and is
// byte-identical between cold and cached runs. It exits 0 when clean, 1
// on findings, 2 on load or usage errors.
//
// Usage:
//
//	caribou-lint [-json] [-cache dir|off] [-workers n] [-stats] [dir]
//	caribou-lint -bench [dir]
//
// dir defaults to the current directory; the nearest enclosing go.mod
// determines the module. "./..." is accepted as an alias for "." so the
// invocation reads like the other go tools.
//
// Per-package results (raw findings, allow comments, and the fact
// summaries the module-level analyzers consume) are cached under
// .caribou-cache/lint/ at the module root, keyed by a hash of the
// package's sources and its module imports' keys, so warm runs skip
// type-checking entirely. -cache off disables the cache; -cache DIR
// relocates it.
//
// -bench wipes the cache, times a cold run, times a warm run, asserts
// the two outputs are byte-identical, and prints the pair in go-bench
// format for cmd/benchjson.
//
// Suppress an individual finding with a trailing (or immediately
// preceding) comment
//
//	//caribou:allow <check> <reason>
//
// where the reason is mandatory — an allow without one is itself a
// finding, and so is an allow that no longer suppresses anything. See
// DESIGN.md "Static analysis v2" for what each check enforces and why.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"caribou/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	cacheFlag := flag.String("cache", "", "lint cache directory; \"off\" disables (default <module>/.caribou-cache/lint)")
	workers := flag.Int("workers", 0, "concurrent type-check/analyze jobs (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "report package/cache/timing stats to stderr")
	bench := flag.Bool("bench", false, "time a cold and a warm run, assert identical output, print go-bench lines")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: caribou-lint [-json] [-cache dir|off] [-workers n] [-stats] [-bench] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 1 {
		flag.Usage()
		return 2
	}
	dir := "."
	if flag.NArg() == 1 && flag.Arg(0) != "./..." {
		dir = flag.Arg(0)
	}

	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou-lint: %v\n", err)
		return 2
	}
	cacheDir := ""
	switch *cacheFlag {
	case "off":
	case "":
		cacheDir = filepath.Join(root, ".caribou-cache", "lint")
	default:
		cacheDir = *cacheFlag
	}
	opts := analysis.RunOptions{CacheDir: cacheDir, Workers: *workers}

	if *bench {
		return runBench(root, opts, *jsonOut)
	}

	start := time.Now() //caribou:allow wallclock times the lint tool itself for -stats, nothing simulated
	diags, rs, err := analysis.Run(root, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou-lint: %v\n", err)
		return 2
	}
	if *stats {
		elapsed := time.Since(start) //caribou:allow wallclock times the lint tool itself for -stats, nothing simulated
		fmt.Fprintf(os.Stderr, "caribou-lint: %d packages, %d cached, %d analyzed, %d type-checked in %v\n",
			rs.Packages, rs.CacheHits, rs.CacheMisses, rs.TypeChecked, elapsed.Round(time.Millisecond))
	}

	out, err := render(root, diags, *jsonOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou-lint: %v\n", err)
		return 2
	}
	os.Stdout.Write(out)
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "caribou-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func render(root string, diags []analysis.Diagnostic, jsonOut bool) ([]byte, error) {
	if jsonOut {
		return analysis.FormatJSON(root, diags)
	}
	return analysis.FormatText(root, diags), nil
}

// runBench is the timing harness behind make bench-json-pr10: one cold
// run (cache wiped first), one warm run, a byte-identity assertion
// between them, and two go-bench lines on stdout for cmd/benchjson.
func runBench(root string, opts analysis.RunOptions, jsonOut bool) int {
	if opts.CacheDir == "" {
		fmt.Fprintln(os.Stderr, "caribou-lint: -bench requires the cache (do not pass -cache off)")
		return 2
	}
	if err := os.RemoveAll(opts.CacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "caribou-lint: wiping cache: %v\n", err)
		return 2
	}
	timeRun := func() ([]byte, analysis.RunStats, time.Duration, error) {
		start := time.Now() //caribou:allow wallclock the cold/warm benchmark measures real lint latency
		diags, rs, err := analysis.Run(root, opts)
		elapsed := time.Since(start) //caribou:allow wallclock the cold/warm benchmark measures real lint latency
		if err != nil {
			return nil, rs, elapsed, err
		}
		out, err := render(root, diags, jsonOut)
		return out, rs, elapsed, err
	}
	coldOut, coldStats, cold, err := timeRun()
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou-lint: cold run: %v\n", err)
		return 2
	}
	warmOut, warmStats, warm, err := timeRun()
	if err != nil {
		fmt.Fprintf(os.Stderr, "caribou-lint: warm run: %v\n", err)
		return 2
	}
	if !bytes.Equal(coldOut, warmOut) {
		fmt.Fprintf(os.Stderr, "caribou-lint: cold and warm outputs differ (%d vs %d bytes)\n", len(coldOut), len(warmOut))
		return 2
	}
	if warmStats.TypeChecked != 0 {
		fmt.Fprintf(os.Stderr, "caribou-lint: warm run type-checked %d package(s); cache is not serving\n", warmStats.TypeChecked)
		return 2
	}
	fmt.Fprintf(os.Stderr, "caribou-lint: cold %v (%d analyzed), warm %v (%d cached), outputs identical (%d bytes)\n",
		cold.Round(time.Millisecond), coldStats.CacheMisses, warm.Round(time.Millisecond), warmStats.CacheHits, len(coldOut))
	fmt.Printf("BenchmarkLintCold 1 %d ns/op\n", cold.Nanoseconds())
	fmt.Printf("BenchmarkLintWarm 1 %d ns/op\n", warm.Nanoseconds())
	return 0
}
