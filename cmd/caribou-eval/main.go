// Command caribou-eval regenerates every table and figure of the paper's
// evaluation (§9) on the simulated substrate.
//
// Usage:
//
//	caribou-eval [-quick] [-seed N] [-workers N] [-trace FILE] [-telemetry] <experiment>
//
// where <experiment> is one of: fig2, table1, fig7, fig8, fig9, fig10,
// fig11, fig12, fig13, table2, all. The -quick flag shrinks workload
// counts and trace volumes for a fast sanity pass.
//
// Observability: -trace FILE dumps an NDJSON telemetry trace (spans,
// events, instruments) and -telemetry prints a summary table to stderr;
// both enable the telemetry recorder, which is otherwise off. Telemetry
// is inert — figure output on stdout is bit-identical with it on or off.
// -pprof ADDR serves net/http/pprof, and -cpuprofile/-memprofile write
// runtime profiles. -eval-mode {nobatch,nodelta,nosoa,untaped} routes
// every solve through one of the solver's reference evaluation paths;
// stdout stays bit-identical in every mode (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"caribou/internal/eval"
	"caribou/internal/runstore"
	"caribou/internal/solver"
	"caribou/internal/telemetry"
	"caribou/internal/workloads"
)

func main() { os.Exit(realMain()) }

// realMain carries main's body so deferred cleanup (profile flushes,
// trace writes) runs before the process exits.
func realMain() int {
	quick := flag.Bool("quick", false, "reduced workload set and trace volume")
	cacheDir := flag.String("cache-dir", "", "content-addressed run cache directory (see caribou-sweep); warm re-runs execute zero solver work")
	plot := flag.Bool("plot", false, "also render terminal charts of the figure shapes")
	csvDir := flag.String("csv", "", "directory to also write per-experiment CSV files into")
	seed := flag.Int64("seed", 17, "experiment seed")
	workers := flag.Int("workers", 0, "concurrent experiment runs (0 = GOMAXPROCS)")
	traceFile := flag.String("trace", "", "write an NDJSON telemetry trace to this file")
	summary := flag.Bool("telemetry", false, "print a telemetry summary table to stderr")
	evalMode := flag.String("eval-mode", "", "solver evaluation path: nobatch, nodelta, nosoa, or untaped (default: batched SoA sweeps + delta replay; all paths are bit-identical)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		return 2
	}
	name := flag.Arg(0)

	// Telemetry must be enabled before any component is constructed:
	// instrument handles are captured at construction time.
	if *traceFile != "" || *summary {
		telemetry.Enable(telemetry.Options{})
	}
	// The evaluation-path override must likewise land before any solver
	// is built. Every mode is bit-identical on stdout — the flag exists
	// so that claim can be checked end-to-end (see EXPERIMENTS.md).
	switch *evalMode {
	case "":
	case "nobatch":
		solver.SetDefaultEvalModes(solver.EvalModes{NoBatchEval: true})
	case "nodelta":
		solver.SetDefaultEvalModes(solver.EvalModes{NoDeltaEval: true})
	case "nosoa":
		solver.SetDefaultEvalModes(solver.EvalModes{NoSoATape: true})
	case "untaped":
		solver.SetDefaultEvalModes(solver.EvalModes{UntapedEstimates: true})
	default:
		fmt.Fprintf(os.Stderr, "caribou-eval: unknown -eval-mode %q (want nobatch, nodelta, nosoa, or untaped)\n", *evalMode)
		return 2
	}
	if *pprofAddr != "" {
		//caribou:allow goroutines pprof server lives outside the simulation; it never touches deterministic state
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "caribou-eval: pprof server: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caribou-eval: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "caribou-eval: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	// One pool for the whole invocation: figures that share runs (e.g. the
	// coarse home baselines) hit the memo instead of re-executing. With
	// -cache-dir the pool gains a durable tier: results persist across
	// invocations, and a warm cache serves every run from disk with
	// byte-identical stdout.
	pool := eval.NewPool(*workers)
	var store *runstore.Store
	if *cacheDir != "" {
		var err error
		store, err = runstore.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caribou-eval: %v\n", err)
			return 1
		}
		pool.AttachStore(store)
	}
	code := 0
	if err := run(name, runOpts{quick: *quick, plot: *plot, csvDir: *csvDir, seed: *seed, pool: pool}); err != nil {
		fmt.Fprintf(os.Stderr, "caribou-eval %s: %v\n", name, err)
		code = 1
	}
	if store != nil {
		ps := pool.Stats()
		fmt.Fprintf(os.Stderr, "[cache: submitted=%d executed=%d memo=%d disk=%d writes=%d]\n",
			ps.Submitted, ps.Executed, ps.Hits, ps.DiskHits, ps.DiskWrites)
	}

	// All diagnostics go to stderr or side files so stdout stays
	// bit-comparable across -workers and telemetry settings.
	if *summary {
		telemetry.Default().WriteSummary(os.Stderr)
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "caribou-eval: %v\n", err)
			code = 1
		}
	}
	if *memProfile != "" {
		if err := writeHeapProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "caribou-eval: %v\n", err)
			code = 1
		}
	}
	return code
}

// writeTrace dumps the flight recorder and instrument registry as NDJSON.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.Default().WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// quickPerDay shrinks learning-day traffic under -quick.
func quickPerDay(quick bool) int {
	if quick {
		return 96
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: caribou-eval [-quick] [-seed N] [-workers N] [-cache-dir DIR] [-trace FILE] [-telemetry] [-pprof ADDR] [-cpuprofile FILE] [-memprofile FILE] <experiment>

experiments:
  fig2    grid carbon intensity of the four evaluation regions
  table1  benchmark workflow structures
  fig7    carbon normalized to us-east-1: coarse vs fine strategies
  fig8    normalized carbon vs execution/transmission carbon ratio
  fig9    geomean normalized carbon vs transmission energy factor
  fig10   carbon and relative time vs runtime tolerance
  fig11   week-long adaptive operation (Text2Speech, Azure-style trace)
  fig12   orchestrator overhead: Step Functions vs SNS vs Caribou
  fig13   solve-frequency sweep and forecast quality
  table2  framework capability taxonomy
  all     everything above, in order

extensions and ablations (beyond the paper's exhibits):
  ext-global      fine-grained shifting over a global region catalogue
  ext-temporal    temporal vs geospatial vs combined shifting
  ext-signal      ACI vs MCI carbon-signal sensitivity
  ext-shift       input-distribution shift adaptation
  ablate-solver   HBSS/exhaustive vs coarse single-region solving
  ablate-forecast Holt-Winters vs naive persistence forecasting
  ablate-bench    benchmarking-traffic fraction sweep
`)
}

type runOpts struct {
	quick  bool
	plot   bool
	csvDir string
	seed   int64
	pool   *eval.Pool
}

// writeCSV writes rows to <csvDir>/<name>.csv when -csv is set.
func writeCSV(opts runOpts, name string, rows interface{}) error {
	if opts.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(opts.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(opts.csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return eval.WriteCSV(f, rows)
}

func run(name string, opts runOpts) error {
	quick, plot, seed, pool := opts.quick, opts.plot, opts.seed, opts.pool
	w := os.Stdout
	started := time.Now() //caribou:allow wallclock times the real experiment for the stderr completion line, not simulated time
	sp := telemetry.Default().StartSpan("eval/" + name)
	defer sp.End()
	// Wall time goes to stderr: stdout carries only the deterministic
	// figure content, byte-identical at any -workers or telemetry setting.
	defer func() {
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", name, time.Since(started).Round(time.Millisecond)) //caribou:allow wallclock times the real experiment for the stderr completion line, not simulated time
	}()

	var quickWLs []*workloads.Workload
	var quickClasses []workloads.InputClass
	if quick {
		quickWLs = []*workloads.Workload{workloads.Text2SpeechCensoring(), workloads.ImageProcessing()}
		quickClasses = []workloads.InputClass{workloads.Small}
	}

	switch name {
	case "fig2":
		series, err := eval.Fig2(eval.Fig2Options{Seed: seed})
		if err != nil {
			return err
		}
		eval.PrintFig2(w, series)
		if plot {
			eval.PlotFig2(w, series)
		}
		stats, err := eval.Fig2Stats(seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nEvaluation-week averages (gCO2eq/kWh): %v\n", stats)
	case "table1":
		eval.PrintTable1(w, eval.Table1())
	case "table2":
		eval.PrintTable2(w, eval.Table2())
	case "fig7":
		rows, err := eval.Fig7(eval.Fig7Options{Seed: seed, Workloads: quickWLs, Classes: quickClasses, Pool: pool})
		if err != nil {
			return err
		}
		eval.PrintFig7(w, rows)
		if err := writeCSV(opts, "fig7", rows); err != nil {
			return err
		}
		if plot {
			eval.PlotFig7(w, rows)
		}
	case "fig8":
		points, err := eval.Fig8(eval.Fig8Options{Seed: seed, Workloads: quickWLs, Classes: quickClasses, Pool: pool})
		if err != nil {
			return err
		}
		eval.PrintFig8(w, points)
		if err := writeCSV(opts, "fig8", points); err != nil {
			return err
		}
	case "fig9":
		opt := eval.Fig9Options{Seed: seed, Workloads: quickWLs, Classes: quickClasses, Pool: pool}
		if quick {
			opt.Factors = []float64{1e-4, 1e-3, 1e-2}
		}
		points, err := eval.Fig9(opt)
		if err != nil {
			return err
		}
		eval.PrintFig9(w, points)
		if err := writeCSV(opts, "fig9", points); err != nil {
			return err
		}
		if plot {
			eval.PlotFig9(w, points)
		}
	case "fig10":
		opt := eval.Fig10Options{Seed: seed, Pool: pool}
		if quick {
			opt.Tolerances = []float64{0, 5, 10}
		}
		points, err := eval.Fig10(opt)
		if err != nil {
			return err
		}
		eval.PrintFig10(w, points)
		if err := writeCSV(opts, "fig10", points); err != nil {
			return err
		}
	case "fig11":
		opt := eval.Fig11Options{Seed: seed, Pool: pool}
		if quick {
			opt.Days = 3
			opt.PerDay = 300
		}
		results, err := eval.Fig11(opt)
		if err != nil {
			return err
		}
		eval.PrintFig11(w, results)
		if plot {
			eval.PlotFig11(w, results)
		}
	case "fig12":
		rows, err := eval.Fig12(eval.Fig12Options{Seed: seed, Workloads: quickWLs, Classes: quickClasses, Pool: pool})
		if err != nil {
			return err
		}
		eval.PrintFig12(w, rows)
		if err := writeCSV(opts, "fig12", rows); err != nil {
			return err
		}
	case "fig13":
		opt := eval.Fig13Options{Seed: seed, Pool: pool}
		if quick {
			opt.Frequencies = []int{1, 4, 7}
			opt.PerDay = 400
			opt.Days = 7
		}
		a, b, err := eval.Fig13(opt)
		if err != nil {
			return err
		}
		eval.PrintFig13(w, a, b)
		if err := writeCSV(opts, "fig13a", a); err != nil {
			return err
		}
		if err := writeCSV(opts, "fig13b", b); err != nil {
			return err
		}
		if plot {
			eval.PlotFig13b(w, b)
		}
	case "ext-global":
		rows, err := eval.ExtGlobal(pool, quickWLs, seed, quickPerDay(quick))
		if err != nil {
			return err
		}
		eval.PrintExtGlobal(w, rows)
	case "ext-temporal":
		rows, err := eval.ExtTemporal(pool, quickWLs, seed, quickPerDay(quick))
		if err != nil {
			return err
		}
		eval.PrintExtTemporal(w, rows)
	case "ext-signal":
		rows, err := eval.ExtSignal(pool, quickWLs, seed, quickPerDay(quick))
		if err != nil {
			return err
		}
		eval.PrintExtSignal(w, rows)
	case "ext-shift":
		opt := eval.ExtShiftOptions{Seed: seed, Pool: pool}
		if quick {
			opt.Days = 4
			opt.PerDay = 120
		}
		rows, err := eval.ExtShift(opt)
		if err != nil {
			return err
		}
		eval.PrintExtShift(w, rows)
	case "ablate-solver":
		rows, err := eval.AblationSolver(pool, seed, quickPerDay(quick))
		if err != nil {
			return err
		}
		eval.PrintAblationSolver(w, os.Stderr, rows)
	case "ablate-forecast":
		rows, err := eval.AblationForecast(seed)
		if err != nil {
			return err
		}
		eval.PrintAblationForecast(w, rows)
	case "ablate-bench":
		rows, err := eval.AblationBenchTraffic(pool, seed, quickPerDay(quick))
		if err != nil {
			return err
		}
		eval.PrintAblationBenchTraffic(w, rows)
	case "all":
		for _, n := range []string{
			"fig2", "table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "table2",
			"ext-global", "ext-temporal", "ext-signal", "ext-shift", "ablate-solver", "ablate-forecast", "ablate-bench",
		} {
			fmt.Fprintf(w, "\n===== %s =====\n", n)
			if err := run(n, opts); err != nil {
				return err
			}
		}
	default:
		usage()
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
