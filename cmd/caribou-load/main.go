// Command caribou-load drives the control plane with thousands of
// concurrent simulated tenants: each registers a workflow, streams trace
// deltas, and queries its plan. It reports p99 plan-query latency, solver
// throughput, and admission-rejection counts as go-test benchmark lines
// on stdout, ready to pipe into cmd/benchjson (rates and counts are
// encoded in the ns/op slot; the label says which is which).
//
// Usage:
//
//	caribou-load [-tenants N] [-deltas N] [-queries N] [-workers N]
//	             [-addr URL | -shards N -queue-depth N] [-seed N]
//	             [-solve-iterations N] [-smoke]
//
// With -addr the generator targets a running caribou-server over HTTP
// (e.g. http://localhost:8455); without it the server runs in-process and
// requests go straight through its handler, which removes socket overhead
// from the measurement. -smoke runs a single register → delta → query
// sequence, validates the plan body, and exits non-zero on any failure —
// the CI liveness check.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"caribou/internal/controlplane"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	tenants := flag.Int("tenants", 10000, "concurrent simulated tenants")
	deltas := flag.Int("deltas", 3, "trace deltas streamed per tenant")
	queries := flag.Int("queries", 5, "plan queries per tenant")
	workers := flag.Int("workers", 64, "driver goroutines")
	addr := flag.String("addr", "", "target a running caribou-server at this base URL (default: in-process)")
	shards := flag.Int("shards", 8, "in-process server shards")
	queueDepth := flag.Int("queue-depth", 256, "in-process server queue depth")
	seed := flag.Int64("seed", 1, "in-process server seed")
	solveIters := flag.Int("solve-iterations", 24, "in-process HBSS iteration cap per solve")
	smoke := flag.Bool("smoke", false, "single register/delta/query liveness pass; exit non-zero on failure")
	flag.Parse()

	var doer requestDoer
	if *addr != "" {
		doer = &httpDoer{base: strings.TrimRight(*addr, "/"), client: &http.Client{Timeout: 60 * time.Second}}
	} else {
		srv, err := controlplane.New(controlplane.Config{
			Shards: *shards, QueueDepth: *queueDepth, Seed: *seed, MaxIterations: *solveIters,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "caribou-load: %v\n", err)
			return 1
		}
		defer srv.Close()
		doer = &inprocDoer{srv: srv}
	}

	if *smoke {
		if err := runSmoke(doer); err != nil {
			fmt.Fprintf(os.Stderr, "caribou-load: smoke: %v\n", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "caribou-load: smoke OK")
		return 0
	}
	return runLoad(doer, *tenants, *deltas, *queries, *workers)
}

// requestDoer abstracts the transport: in-process handler or real HTTP.
type requestDoer interface {
	do(method, path, body string) (int, http.Header, []byte, error)
}

type inprocDoer struct{ srv *controlplane.Server }

func (d *inprocDoer) do(method, path, body string) (int, http.Header, []byte, error) {
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	d.srv.ServeHTTP(w, req)
	return w.Code, w.Header(), w.Body.Bytes(), nil
}

type httpDoer struct {
	base   string
	client *http.Client
}

func (d *httpDoer) do(method, path, body string) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, d.base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, data, err
}

// runSmoke is the CI liveness pass: register one tenant, stream one
// delta, query the plan, and validate the body shape.
func runSmoke(doer requestDoer) error {
	code, _, body, err := doer.do("POST", "/v1/workflows", `{"id":"smoke","workload":"image-processing"}`)
	if err != nil {
		return fmt.Errorf("register: %w", err)
	}
	if code != http.StatusCreated {
		return fmt.Errorf("register: status %d: %s", code, body)
	}
	at := controlplane.DefaultStart.Add(time.Hour).Format(time.RFC3339)
	code, _, body, err = doer.do("POST", "/v1/workflows/smoke/trace", fmt.Sprintf(`{"at":%q,"invocations":100}`, at))
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if code != http.StatusOK {
		return fmt.Errorf("trace: status %d: %s", code, body)
	}
	code, _, body, err = doer.do("GET", "/v1/workflows/smoke/plan", "")
	if err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	if code != http.StatusOK {
		return fmt.Errorf("plan: status %d: %s", code, body)
	}
	var plan struct {
		Version     int               `json:"version"`
		Granularity string            `json:"granularity"`
		Assignments map[string]string `json:"assignments"`
		Stale       bool              `json:"stale"`
	}
	if err := json.Unmarshal(body, &plan); err != nil {
		return fmt.Errorf("plan body: %w (%s)", err, body)
	}
	if plan.Version < 1 || len(plan.Assignments) == 0 || plan.Granularity == "" {
		return fmt.Errorf("malformed plan body: %s", body)
	}
	return nil
}

// workerStats accumulates one driver goroutine's measurements.
type workerStats struct {
	registerNs []float64
	deltaNs    []float64
	queryNs    []float64
	rejections int64
	errors     int64
}

// runLoad fans the tenant population across driver goroutines and prints
// benchmark lines.
func runLoad(doer requestDoer, tenants, deltas, queries, workers int) int {
	if workers > tenants {
		workers = tenants
	}
	jobs := make(chan int, workers)
	stats := make([]workerStats, workers)
	var wg sync.WaitGroup
	started := time.Now() //caribou:allow wallclock load generator measures real serving latency, not simulated time
	for w := 0; w < workers; w++ {
		wg.Add(1)
		st := &stats[w]
		//caribou:allow goroutines load-generator worker pool drives concurrent tenants by design
		go func() {
			defer wg.Done()
			for i := range jobs {
				driveTenant(doer, i, deltas, queries, st)
			}
		}()
	}
	for i := 0; i < tenants; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(started) //caribou:allow wallclock load generator measures real serving latency, not simulated time

	var all workerStats
	for i := range stats {
		all.registerNs = append(all.registerNs, stats[i].registerNs...)
		all.deltaNs = append(all.deltaNs, stats[i].deltaNs...)
		all.queryNs = append(all.queryNs, stats[i].queryNs...)
		all.rejections += stats[i].rejections
		all.errors += stats[i].errors
	}

	// Solver throughput: completed solves per second of wall time,
	// reported as ns-per-solve so benchjson's lower-is-better comparison
	// applies.
	var solves int64
	if code, _, body, err := doer.do("GET", "/v1/stats", ""); err == nil && code == http.StatusOK {
		var s struct {
			Solves int64 `json:"solves"`
		}
		if json.Unmarshal(body, &s) == nil {
			solves = s.Solves
		}
	}

	fmt.Printf("BenchmarkControlPlane/register_mean 1 %.0f ns/op\n", mean(all.registerNs))
	fmt.Printf("BenchmarkControlPlane/trace_delta_mean 1 %.0f ns/op\n", mean(all.deltaNs))
	fmt.Printf("BenchmarkControlPlane/plan_query_p50 1 %.0f ns/op\n", percentile(all.queryNs, 0.50))
	fmt.Printf("BenchmarkControlPlane/plan_query_p99 1 %.0f ns/op\n", percentile(all.queryNs, 0.99))
	if solves > 0 {
		fmt.Printf("BenchmarkControlPlane/solve 1 %.0f ns/op\n", float64(elapsed.Nanoseconds())/float64(solves))
	}
	// Counts ride in the ns/op slot; the label marks them as counts.
	fmt.Printf("BenchmarkControlPlane/rejected_count 1 %d ns/op\n", all.rejections)

	fmt.Fprintf(os.Stderr, "caribou-load: %d tenants, %d deltas+%d queries each in %v (%d solves, %.0f solves/sec, %d rejections, %d errors)\n",
		tenants, deltas, queries, elapsed.Round(time.Millisecond), solves, float64(solves)/elapsed.Seconds(), all.rejections, all.errors)
	if all.errors > 0 {
		return 1
	}
	return 0
}

// driveTenant runs one tenant's scripted life: register, stream deltas,
// interleave plan queries. Admission rejections back off briefly and
// retry; persistent failures count as errors.
func driveTenant(doer requestDoer, idx, deltas, queries int, st *workerStats) {
	id := fmt.Sprintf("load-%d", idx)
	body := fmt.Sprintf(`{"id":%q,"workload":"image-processing"}`, id)
	if !timedRequest(doer, "POST", "/v1/workflows", body, http.StatusCreated, &st.registerNs, st) {
		return
	}
	issued := 0
	perDelta := queries / max(deltas, 1)
	for d := 0; d < deltas; d++ {
		at := controlplane.DefaultStart.Add(time.Duration(d+1) * time.Hour).Format(time.RFC3339)
		delta := fmt.Sprintf(`{"at":%q,"invocations":200}`, at)
		timedRequest(doer, "POST", "/v1/workflows/"+id+"/trace", delta, http.StatusOK, &st.deltaNs, st)
		for q := 0; q < perDelta; q++ {
			timedRequest(doer, "GET", "/v1/workflows/"+id+"/plan", "", http.StatusOK, &st.queryNs, st)
			issued++
		}
	}
	for ; issued < queries; issued++ {
		timedRequest(doer, "GET", "/v1/workflows/"+id+"/plan", "", http.StatusOK, &st.queryNs, st)
	}
}

// timedRequest issues one request, retrying 429s with a short backoff,
// and appends its latency to lat. It reports whether the request finally
// succeeded with the wanted status.
func timedRequest(doer requestDoer, method, path, body string, want int, lat *[]float64, st *workerStats) bool {
	for attempt := 0; ; attempt++ {
		start := time.Now() //caribou:allow wallclock load generator measures real serving latency, not simulated time
		code, _, _, err := doer.do(method, path, body)
		dur := time.Since(start) //caribou:allow wallclock load generator measures real serving latency, not simulated time
		if err != nil {
			st.errors++
			return false
		}
		if code == http.StatusTooManyRequests {
			st.rejections++
			if attempt >= 50 {
				st.errors++
				return false
			}
			time.Sleep(time.Duration(attempt+1) * time.Millisecond) //caribou:allow wallclock admission-control backoff against a live server
			continue
		}
		*lat = append(*lat, float64(dur.Nanoseconds()))
		if code != want {
			st.errors++
			return false
		}
		return true
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
