package caribou

import (
	"strings"
	"testing"
	"time"
)

func TestWorkflowBuilderValidation(t *testing.T) {
	// Empty workflow.
	wf := NewWorkflow("empty", "1")
	if _, err := wf.compile(); err == nil {
		t.Error("want error for empty workflow")
	}
	// Empty function name.
	wf = NewWorkflow("bad", "1")
	wf.Function("", FunctionConfig{})
	if _, err := wf.compile(); err == nil {
		t.Error("want error for empty function name")
	}
	// Edge to unknown function.
	wf = NewWorkflow("bad2", "1")
	wf.Function("a", FunctionConfig{})
	wf.Edge("a", "zz", Payload{})
	if _, err := wf.compile(); err == nil {
		t.Error("want error for unknown edge target")
	}
	// Cycle.
	wf = NewWorkflow("cyc", "1")
	wf.Function("a", FunctionConfig{}).Function("b", FunctionConfig{})
	wf.Edge("a", "b", Payload{})
	wf.Edge("b", "a", Payload{})
	if _, err := wf.compile(); err == nil {
		t.Error("want error for cycle")
	}
}

func TestWorkflowCompileMapsFields(t *testing.T) {
	wf := NewWorkflow("mapped", "0.9")
	wf.Function("a", FunctionConfig{
		MemoryMB:       2048,
		AllowedRegions: []string{"aws:us-east-1"},
		Work: Work{
			SmallSeconds: 1.5, LargeSeconds: 4, CPUUtil: 0.85,
		},
	})
	wf.Function("b", FunctionConfig{
		Work: Work{SmallSeconds: 2, OutputSmallBytes: 5e3, OutputLargeBytes: 9e3},
	})
	wf.ConditionalEdge("a", "b", 0.4, Payload{SmallBytes: 100, LargeBytes: 200})
	wl, err := wf.compile()
	if err != nil {
		t.Fatal(err)
	}
	if wl.Name != "mapped" || wl.DAG.Len() != 2 {
		t.Fatalf("compiled %s with %d stages", wl.Name, wl.DAG.Len())
	}
	na, _ := wl.DAG.Node("a")
	if na.MemoryMB != 2048 {
		t.Errorf("memory = %v", na.MemoryMB)
	}
	if len(na.Constraint.AllowedRegions) != 1 {
		t.Errorf("constraint = %+v", na.Constraint)
	}
	edges := wl.DAG.Out("a")
	if len(edges) != 1 || !edges[0].Conditional || edges[0].Probability != 0.4 {
		t.Errorf("edge = %+v", edges)
	}
	if wl.Bytes("a", "b", "small") != 100 || wl.Bytes("a", "b", "large") != 200 {
		t.Error("payload sizes lost")
	}
	if wl.OutputBytes["b"] == nil || wl.OutputBytes["b"]["small"] != 5e3 {
		t.Error("output bytes lost")
	}
	// LargeSeconds defaults to SmallSeconds; CPUUtil defaults applied.
	pb := wl.Nodes["b"]
	if pb.MeanDurationSec["large"] != 2 || pb.CPUUtil != 0.7 {
		t.Errorf("profile defaults: %+v", pb)
	}
	if wf.Name() != "mapped" || wf.Version() != "0.9" {
		t.Error("accessors wrong")
	}
}

func TestBenchmarkWorkflows(t *testing.T) {
	wf, err := Benchmark("dna-visualization")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := wf.compile()
	if err != nil {
		t.Fatal(err)
	}
	if wl.Name != "dna-visualization" {
		t.Errorf("name = %s", wl.Name)
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Error("want error for unknown benchmark")
	}
}

func newTestClient(t *testing.T, days int) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{
		Seed: 5,
		End:  DefaultEvaluationStart.Add(time.Duration(days) * 24 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func simpleWorkflow() *Workflow {
	wf := NewWorkflow("simple", "1")
	wf.Function("work", FunctionConfig{
		Work: Work{SmallSeconds: 1.0, LargeSeconds: 2.0, CPUUtil: 0.8, OutputSmallBytes: 1e4, OutputLargeBytes: 1e4},
	})
	return wf
}

func TestDeployAndRunEndToEnd(t *testing.T) {
	c := newTestClient(t, 1)
	app, err := c.Deploy(simpleWorkflow(), DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	app.InvokeEvery(10*time.Minute, 100, SmallInput)
	c.Run()
	rep, err := app.Report(BestCaseTransmission)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invocations != 100 || rep.Succeeded != 100 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MeanCarbonGrams <= 0 || rep.MeanCostUSD <= 0 || rep.MeanServiceSeconds <= 0 {
		t.Errorf("metrics missing: %+v", rep)
	}
	if rep.P95ServiceSeconds < rep.MeanServiceSeconds {
		t.Errorf("p95 %v < mean %v", rep.P95ServiceSeconds, rep.MeanServiceSeconds)
	}
	if s := rep.String(); !strings.Contains(s, "simple") {
		t.Errorf("report string = %q", s)
	}
}

func TestReportWithoutInvocationsErrors(t *testing.T) {
	c := newTestClient(t, 1)
	app, err := c.Deploy(simpleWorkflow(), DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Report(BestCaseTransmission); err == nil {
		t.Error("want error with no completed invocations")
	}
}

func TestManualSolveMovesWork(t *testing.T) {
	c := newTestClient(t, 2)
	app, err := c.Deploy(simpleWorkflow(), DeploymentConfig{
		Priority:            OptimizeCarbon,
		LatencyTolerancePct: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := app.Plans(); p[0] != "" {
		t.Error("plans before solve should be empty")
	}
	app.InvokeEvery(10*time.Minute, 144, SmallInput)
	c.RunUntil(DefaultEvaluationStart.Add(24 * time.Hour))
	if err := app.Solve(); err != nil {
		t.Fatal(err)
	}
	plans := app.Plans()
	moved := false
	for _, p := range plans {
		if p == "" {
			t.Fatal("missing hourly plan")
		}
		if strings.Contains(p, "ca-central-1") {
			moved = true
		}
	}
	if !moved {
		t.Error("solve never considered the green region")
	}
	app.InvokeEvery(10*time.Minute, 144, SmallInput)
	c.Run()
	rep, err := app.Report(BestCaseTransmission)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RegionsUsed) < 2 {
		t.Errorf("regions used = %v, want offloading", rep.RegionsUsed)
	}
}

func TestComplianceConstraintInPublicAPI(t *testing.T) {
	c := newTestClient(t, 2)
	app, err := c.Deploy(simpleWorkflow(), DeploymentConfig{
		Priority:         OptimizeCarbon,
		AllowedCountries: []string{"US"},
	})
	if err != nil {
		t.Fatal(err)
	}
	app.InvokeEvery(10*time.Minute, 144, SmallInput)
	c.RunUntil(DefaultEvaluationStart.Add(24 * time.Hour))
	if err := app.Solve(); err != nil {
		t.Fatal(err)
	}
	for _, p := range app.Plans() {
		if strings.Contains(p, "ca-central-1") {
			t.Fatalf("US-only workflow planned into Canada: %s", p)
		}
	}
}

func TestAdaptiveDeployment(t *testing.T) {
	c := newTestClient(t, 3)
	app, err := c.Deploy(simpleWorkflow(), DeploymentConfig{
		Priority:            OptimizeCarbon,
		LatencyTolerancePct: 25,
		Adaptive:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.InvokeTrace(300); err != nil {
		t.Fatal(err)
	}
	c.Run()
	rep, err := app.Report(WorstCaseTransmission)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeploymentPlanSolves == 0 {
		t.Error("adaptive manager never solved")
	}
	if rep.OverheadCarbonGrams <= 0 {
		t.Error("overhead not reported")
	}
	if rep.Invocations < 600 {
		t.Errorf("invocations = %d, want ~900", rep.Invocations)
	}
}

func TestClientAccessors(t *testing.T) {
	c := newTestClient(t, 1)
	if len(c.Regions()) != 4 {
		t.Errorf("regions = %v", c.Regions())
	}
	if !c.Now().Equal(DefaultEvaluationStart) {
		t.Errorf("now = %v", c.Now())
	}
	if !c.End().Equal(DefaultEvaluationStart.Add(24 * time.Hour)) {
		t.Errorf("end = %v", c.End())
	}
	c2, err := NewClient(ClientConfig{Regions: []string{"aws:us-east-1", "aws:ca-central-1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Regions()) != 2 {
		t.Errorf("restricted regions = %v", c2.Regions())
	}
	if _, err := NewClient(ClientConfig{Regions: []string{"aws:nowhere"}}); err == nil {
		t.Error("want error for unknown region")
	}
}

func TestDeployUnknownHomeRegion(t *testing.T) {
	c := newTestClient(t, 1)
	if _, err := c.Deploy(simpleWorkflow(), DeploymentConfig{HomeRegion: "aws:nowhere"}); err == nil {
		t.Error("want error for unknown home region")
	}
}

func TestInvokeAtAndInvoke(t *testing.T) {
	c := newTestClient(t, 1)
	app, err := c.Deploy(simpleWorkflow(), DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Invoke(SmallInput); err != nil {
		t.Fatal(err)
	}
	app.InvokeAt(DefaultEvaluationStart.Add(time.Hour), LargeInput)
	c.Run()
	rep, err := app.Report(BestCaseTransmission)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invocations != 2 {
		t.Errorf("invocations = %d", rep.Invocations)
	}
}

func TestDOTRendering(t *testing.T) {
	c := newTestClient(t, 2)
	app, err := c.Deploy(simpleWorkflow(), DeploymentConfig{
		Priority:            OptimizeCarbon,
		LatencyTolerancePct: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain := app.DOT(-1)
	if !strings.Contains(plain, "digraph") || strings.Contains(plain, "cluster") {
		t.Errorf("pre-solve DOT = %q", plain)
	}
	app.InvokeEvery(10*time.Minute, 144, SmallInput)
	c.RunUntil(DefaultEvaluationStart.Add(24 * time.Hour))
	if err := app.Solve(); err != nil {
		t.Fatal(err)
	}
	clustered := app.DOT(12)
	if !strings.Contains(clustered, "subgraph cluster_0") {
		t.Errorf("post-solve DOT lacks clusters:\n%s", clustered)
	}
}
