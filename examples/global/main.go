// Global shifting: the same workflow deployed against the four North
// American evaluation regions and against a twelve-region global
// catalogue (Europe, Asia-Pacific, South America). Wider region sets
// expose cleaner grids — Sweden's hydro/nuclear mix runs below even
// Quebec — at the price of longer network paths, which the latency
// tolerance must absorb (§2.1's "even more pronounced globally").
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	caribou "caribou"
)

func runWith(regions []string) (caribou.Report, error) {
	wf, err := caribou.Benchmark("video-analytics")
	if err != nil {
		return caribou.Report{}, err
	}
	client, err := caribou.NewClient(caribou.ClientConfig{
		Seed:    31,
		End:     caribou.DefaultEvaluationStart.Add(2 * 24 * time.Hour),
		Regions: regions,
	})
	if err != nil {
		return caribou.Report{}, err
	}
	app, err := client.Deploy(wf, caribou.DeploymentConfig{
		HomeRegion:          "aws:us-east-1",
		Priority:            caribou.OptimizeCarbon,
		LatencyTolerancePct: 30,
	})
	if err != nil {
		return caribou.Report{}, err
	}
	app.InvokeEvery(6*time.Minute, 240, caribou.LargeInput)
	client.RunUntil(caribou.DefaultEvaluationStart.Add(24 * time.Hour))
	if err := app.Solve(); err != nil {
		return caribou.Report{}, err
	}
	app.InvokeEvery(6*time.Minute, 240, caribou.LargeInput)
	client.Run()
	return app.Report(caribou.BestCaseTransmission)
}

func main() {
	na := []string{"aws:us-east-1", "aws:us-west-1", "aws:us-west-2", "aws:ca-central-1"}
	global := append(append([]string{}, na...),
		"aws:us-east-2", "aws:ca-west-1",
		"aws:eu-west-1", "aws:eu-central-1", "aws:eu-north-1",
		"aws:ap-northeast-1", "aws:ap-southeast-2", "aws:sa-east-1")

	fmt.Println("video-analytics (large input), carbon under the best-case transmission model")
	for _, c := range []struct {
		name    string
		regions []string
	}{{"North America (4)", na}, {"Global (12)", global}} {
		rep, err := runWith(c.regions)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s carbon %.5f g/inv | p95 %.2fs | regions used: %s\n",
			c.name, rep.MeanCarbonGrams, rep.P95ServiceSeconds, strings.Join(rep.RegionsUsed, ", "))
	}
}
