// Text2Speech censoring with compliance constraints (Fig 3): the
// regulation-sensitive validation stage is pinned to the home region,
// while the stages off the critical path remain free to move. The example
// shows that a location constraint on one stage still allows emission
// reductions by offloading the other stages — the paper's headline
// argument for fine-grained shifting.
package main

import (
	"fmt"
	"log"
	"time"

	caribou "caribou"
)

func buildWorkflow() *caribou.Workflow {
	wf := caribou.NewWorkflow("t2s-censoring", "1.0")
	wf.Function("validate", caribou.FunctionConfig{
		MemoryMB: 512,
		// Regulation-sensitive: may not leave the home region.
		AllowedRegions: []string{"aws:us-east-1"},
		Work:           caribou.Work{SmallSeconds: 0.3, LargeSeconds: 0.65, CPUUtil: 0.5},
	})
	wf.Function("text2speech", caribou.FunctionConfig{
		MemoryMB: 3008,
		Work:     caribou.Work{SmallSeconds: 4.2, LargeSeconds: 15.5, CPUUtil: 0.88},
	})
	wf.Function("conversion", caribou.FunctionConfig{
		MemoryMB: 1769,
		Work:     caribou.Work{SmallSeconds: 1.4, LargeSeconds: 5.2, CPUUtil: 0.78},
	})
	wf.Function("profanity", caribou.FunctionConfig{
		MemoryMB: 1024,
		Work:     caribou.Work{SmallSeconds: 0.55, LargeSeconds: 1.7, CPUUtil: 0.65},
	})
	wf.Function("censor", caribou.FunctionConfig{
		MemoryMB: 1769,
		Work:     caribou.Work{SmallSeconds: 0.75, LargeSeconds: 2.4, CPUUtil: 0.7},
	})
	wf.Function("compress", caribou.FunctionConfig{
		MemoryMB: 1769,
		Work: caribou.Work{
			SmallSeconds: 0.65, LargeSeconds: 2.1, CPUUtil: 0.72,
			OutputSmallBytes: 1e6, OutputLargeBytes: 11e6,
		},
	})
	wf.Edge("validate", "text2speech", caribou.Payload{SmallBytes: 1e3, LargeBytes: 12e3})
	wf.Edge("validate", "profanity", caribou.Payload{SmallBytes: 1e3, LargeBytes: 12e3})
	wf.Edge("text2speech", "conversion", caribou.Payload{SmallBytes: 1.5e6, LargeBytes: 17e6})
	wf.Edge("conversion", "compress", caribou.Payload{SmallBytes: 1.2e6, LargeBytes: 14e6})
	wf.ConditionalEdge("profanity", "censor", 0.5, caribou.Payload{SmallBytes: 2e3, LargeBytes: 7e3})
	wf.Edge("censor", "compress", caribou.Payload{SmallBytes: 4e3, LargeBytes: 11e3})
	return wf
}

func main() {
	client, err := caribou.NewClient(caribou.ClientConfig{
		Seed: 7,
		End:  caribou.DefaultEvaluationStart.Add(2 * 24 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := client.Deploy(buildWorkflow(), caribou.DeploymentConfig{
		HomeRegion:          "aws:us-east-1",
		Priority:            caribou.OptimizeCarbon,
		LatencyTolerancePct: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Day 1: learn at home.
	app.InvokeEvery(5*time.Minute, 288, caribou.SmallInput)
	client.RunUntil(caribou.DefaultEvaluationStart.Add(24 * time.Hour))

	// Solve: validate must stay home; everything else may move.
	if err := app.Solve(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Hourly plans (validate pinned to us-east-1 by compliance):")
	plans := app.Plans()
	for _, h := range []int{0, 6, 12, 18} {
		fmt.Printf("  %02d:00 %s\n", h, plans[h])
	}

	// Day 2: run under the solved plans and report.
	app.InvokeEvery(5*time.Minute, 288, caribou.SmallInput)
	client.Run()
	rep, err := app.Report(caribou.BestCaseTransmission)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", rep)
}
