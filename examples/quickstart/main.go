// Quickstart: declare a two-stage workflow, deploy it with the adaptive
// Deployment Manager, drive two days of traffic, and print the carbon /
// cost / latency report under both transmission-carbon scenarios.
package main

import (
	"fmt"
	"log"
	"time"

	caribou "caribou"
)

func main() {
	// A thumbnail pipeline: resize an upload, then classify it.
	wf := caribou.NewWorkflow("thumbnailer", "0.1")
	wf.Function("resize", caribou.FunctionConfig{
		MemoryMB: 1024,
		Work:     caribou.Work{SmallSeconds: 0.4, LargeSeconds: 1.2, CPUUtil: 0.6},
	})
	wf.Function("classify", caribou.FunctionConfig{
		MemoryMB: 3008,
		Work: caribou.Work{
			SmallSeconds: 2.5, LargeSeconds: 7.0, CPUUtil: 0.9,
			OutputSmallBytes: 2e3, OutputLargeBytes: 2e3,
		},
	})
	wf.Edge("resize", "classify", caribou.Payload{SmallBytes: 150e3, LargeBytes: 1.5e6})

	client, err := caribou.NewClient(caribou.ClientConfig{
		Seed: 42,
		End:  caribou.DefaultEvaluationStart.Add(2 * 24 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := client.Deploy(wf, caribou.DeploymentConfig{
		HomeRegion:          "aws:us-east-1",
		Priority:            caribou.OptimizeCarbon,
		LatencyTolerancePct: 15,
		Adaptive:            true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 300 invocations per day, alternating input sizes via two streams.
	app.InvokeEvery(8*time.Minute, 360, caribou.SmallInput)
	app.InvokeEvery(16*time.Minute, 180, caribou.LargeInput)

	fmt.Println("Running two simulated days of traffic...")
	client.Run()

	for _, sc := range []struct {
		name string
		s    caribou.TransmissionScenario
	}{{"best-case", caribou.BestCaseTransmission}, {"worst-case", caribou.WorstCaseTransmission}} {
		rep, err := app.Report(sc.s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s tx] %s\n", sc.name, rep)
	}
}
