// Video analytics under different QoS tolerances: the fan-out/join
// benchmark runs with end-to-end latency tolerances from strict to loose,
// showing how much carbon each point of latency slack buys (the trade-off
// of Fig 10, on the public API).
package main

import (
	"fmt"
	"log"
	"time"

	caribou "caribou"
)

func runWithTolerance(tolPct float64) (caribou.Report, error) {
	wf, err := caribou.Benchmark("video-analytics")
	if err != nil {
		return caribou.Report{}, err
	}
	client, err := caribou.NewClient(caribou.ClientConfig{
		Seed: 21,
		End:  caribou.DefaultEvaluationStart.Add(2 * 24 * time.Hour),
	})
	if err != nil {
		return caribou.Report{}, err
	}
	app, err := client.Deploy(wf, caribou.DeploymentConfig{
		HomeRegion:          "aws:us-east-1",
		Priority:            caribou.OptimizeCarbon,
		LatencyTolerancePct: tolPct,
	})
	if err != nil {
		return caribou.Report{}, err
	}

	// Learning day at home, then a measured day under solved plans.
	app.InvokeEvery(6*time.Minute, 240, caribou.LargeInput)
	client.RunUntil(caribou.DefaultEvaluationStart.Add(24 * time.Hour))
	if err := app.Solve(); err != nil {
		return caribou.Report{}, err
	}
	app.InvokeEvery(6*time.Minute, 240, caribou.LargeInput)
	client.Run()
	return app.Report(caribou.BestCaseTransmission)
}

func main() {
	fmt.Println("video-analytics (large input): carbon vs latency tolerance")
	fmt.Printf("%10s %14s %12s %12s %s\n", "tolerance", "carbon(g/inv)", "mean(s)", "p95(s)", "regions")
	for _, tol := range []float64{0.01, 2.5, 5, 10, 20} {
		rep, err := runWithTolerance(tol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.1f%% %14.5f %12.2f %12.2f %v\n",
			tol, rep.MeanCarbonGrams, rep.MeanServiceSeconds, rep.P95ServiceSeconds, rep.RegionsUsed)
	}
}
