// Adaptive week: the image-processing benchmark runs for six days under a
// diurnal Azure-style invocation trace with the token-bucket Deployment
// Manager in control (§5.2). The example prints the framework's plan
// generations and the final report, demonstrating self-regulated
// re-deployment end to end.
package main

import (
	"fmt"
	"log"
	"time"

	caribou "caribou"
)

func main() {
	wf, err := caribou.Benchmark("image-processing")
	if err != nil {
		log.Fatal(err)
	}
	client, err := caribou.NewClient(caribou.ClientConfig{
		Seed: 99,
		End:  caribou.DefaultEvaluationStart.Add(6 * 24 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := client.Deploy(wf, caribou.DeploymentConfig{
		HomeRegion:          "aws:us-east-1",
		Priority:            caribou.OptimizeCarbon,
		LatencyTolerancePct: 20,
		Adaptive:            true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := app.InvokeTrace(600); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Running six simulated days under an Azure-style trace...")
	client.Run()

	best, err := app.Report(caribou.BestCaseTransmission)
	if err != nil {
		log.Fatal(err)
	}
	worst, err := app.Report(caribou.WorstCaseTransmission)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan generations: %d\n", best.DeploymentPlanSolves)
	fmt.Printf("[best-case tx]  %s\n", best)
	fmt.Printf("[worst-case tx] %s\n", worst)
}
