package caribou

import (
	"fmt"

	"caribou/internal/dag"
	"caribou/internal/region"
	"caribou/internal/workloads"
)

// Workflow declares a serverless workflow: its stages, dependencies, and
// per-stage simulated work profiles. It is the Go analogue of the paper's
// Python API (Listing 1): build it once, then Deploy it through a Client.
type Workflow struct {
	name    string
	version string
	funcs   []functionDecl
	edges   []edgeDecl
	err     error // first declaration error, surfaced at Deploy
	// prebuilt short-circuits compilation for the built-in benchmark
	// workflows.
	prebuilt *workloads.Workload
}

type functionDecl struct {
	name string
	cfg  FunctionConfig
}

type edgeDecl struct {
	from, to    string
	payload     Payload
	conditional bool
	probability float64
}

// Work describes a stage's simulated execution profile: mean duration for
// the small and large input classes, CPU utilization, and output sizes for
// terminal stages. In the paper these come from running real code; here
// they parameterize the simulated substrate.
type Work struct {
	SmallSeconds float64
	LargeSeconds float64
	// CPUUtil is mean vCPU utilization in (0, 1]; 0 defaults to 0.7.
	CPUUtil float64
	// DurationSigma is the lognormal jitter; 0 defaults to 0.1.
	DurationSigma float64
	// OutputSmallBytes/OutputLargeBytes are written back to home storage
	// when the stage is terminal.
	OutputSmallBytes float64
	OutputLargeBytes float64
}

// Payload sizes the intermediate data carried by an edge.
type Payload struct {
	SmallBytes float64
	LargeBytes float64
}

// FunctionConfig mirrors the per-function options of the decorator API:
// memory size, region constraints for data compliance, and the simulated
// work profile.
type FunctionConfig struct {
	MemoryMB float64
	// AllowedRegions / DisallowedRegions pin or exclude regions for this
	// stage only, superseding workflow-level constraints (§8).
	AllowedRegions    []string
	DisallowedRegions []string
	// AllowedCountries restricts by data-residency jurisdiction.
	AllowedCountries []string
	Work             Work
}

// NewWorkflow starts a workflow declaration.
func NewWorkflow(name, version string) *Workflow {
	return &Workflow{name: name, version: version}
}

// Name returns the workflow name.
func (w *Workflow) Name() string { return w.name }

// Version returns the declared version string.
func (w *Workflow) Version() string { return w.version }

// Function registers a stage. The first registered function is the
// workflow's entry unless edges imply otherwise (the DAG's unique start
// node is validated at Deploy).
func (w *Workflow) Function(name string, cfg FunctionConfig) *Workflow {
	if name == "" {
		w.fail(fmt.Errorf("caribou: function name must be non-empty"))
		return w
	}
	w.funcs = append(w.funcs, functionDecl{name: name, cfg: cfg})
	return w
}

// Edge declares that from invokes to (invoke_serverless_function in the
// Python API), carrying the given payload.
func (w *Workflow) Edge(from, to string, payload Payload) *Workflow {
	w.edges = append(w.edges, edgeDecl{from: from, to: to, payload: payload, probability: 1})
	return w
}

// ConditionalEdge declares a conditionally taken invocation with the given
// historical probability (the condition itself is evaluated at run time;
// the probability seeds the estimator until observations accumulate).
func (w *Workflow) ConditionalEdge(from, to string, probability float64, payload Payload) *Workflow {
	w.edges = append(w.edges, edgeDecl{from: from, to: to, payload: payload, conditional: true, probability: probability})
	return w
}

func (w *Workflow) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// entryBytesDefault sizes the request payload when the user declares none:
// a small JSON event.
const entryBytesDefault = 4e3

// compile lowers the declaration to the internal workload representation,
// validating the DAG (§4: acyclic, single start node).
func (w *Workflow) compile() (*workloads.Workload, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.prebuilt != nil {
		return w.prebuilt, nil
	}
	if len(w.funcs) == 0 {
		return nil, fmt.Errorf("caribou: workflow %q has no functions", w.name)
	}
	b := dag.NewBuilder(w.name)
	nodes := make(map[dag.NodeID]workloads.NodeProfile, len(w.funcs))
	outputs := make(map[dag.NodeID]map[workloads.InputClass]float64)
	for _, f := range w.funcs {
		cons := region.Constraint{
			AllowedCountries: f.cfg.AllowedCountries,
		}
		for _, r := range f.cfg.AllowedRegions {
			cons.AllowedRegions = append(cons.AllowedRegions, region.ID(r))
		}
		for _, r := range f.cfg.DisallowedRegions {
			cons.DisallowedRegions = append(cons.DisallowedRegions, region.ID(r))
		}
		mem := f.cfg.MemoryMB
		if mem <= 0 {
			mem = 1769
		}
		b.AddNode(dag.Node{ID: dag.NodeID(f.name), MemoryMB: mem, Constraint: cons})

		work := f.cfg.Work
		util := work.CPUUtil
		if util <= 0 {
			util = 0.7
		}
		sigma := work.DurationSigma
		if sigma <= 0 {
			sigma = 0.1
		}
		small := work.SmallSeconds
		if small <= 0 {
			small = 0.5
		}
		large := work.LargeSeconds
		if large <= 0 {
			large = small
		}
		nodes[dag.NodeID(f.name)] = workloads.NodeProfile{
			MeanDurationSec: map[workloads.InputClass]float64{
				workloads.Small: small,
				workloads.Large: large,
			},
			DurationSigma: sigma,
			CPUUtil:       util,
			MemoryMB:      mem,
		}
		if work.OutputSmallBytes > 0 || work.OutputLargeBytes > 0 {
			outputs[dag.NodeID(f.name)] = map[workloads.InputClass]float64{
				workloads.Small: work.OutputSmallBytes,
				workloads.Large: work.OutputLargeBytes,
			}
		}
	}
	edgeBytes := make(map[workloads.EdgeKey]map[workloads.InputClass]float64, len(w.edges))
	for _, e := range w.edges {
		if e.conditional {
			b.AddConditionalEdge(dag.NodeID(e.from), dag.NodeID(e.to), e.probability)
		} else {
			b.AddEdge(dag.NodeID(e.from), dag.NodeID(e.to))
		}
		edgeBytes[workloads.EdgeKey{From: dag.NodeID(e.from), To: dag.NodeID(e.to)}] = map[workloads.InputClass]float64{
			workloads.Small: e.payload.SmallBytes,
			workloads.Large: e.payload.LargeBytes,
		}
	}
	d, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("caribou: %w", err)
	}
	return &workloads.Workload{
		Name:        w.name,
		Description: fmt.Sprintf("user workflow %s v%s", w.name, w.version),
		DAG:         d,
		Nodes:       nodes,
		EdgeBytes:   edgeBytes,
		EntryBytes: map[workloads.InputClass]float64{
			workloads.Small: entryBytesDefault,
			workloads.Large: entryBytesDefault,
		},
		OutputBytes: outputs,
		InputLabel: map[workloads.InputClass]string{
			workloads.Small: "small",
			workloads.Large: "large",
		},
		ImageBytes: 300e6,
	}, nil
}

// Benchmark returns one of the paper's five benchmark workflows as a
// deployable unit (Table 1): "dna-visualization", "rag-ingestion",
// "image-processing", "text2speech-censoring", or "video-analytics".
func Benchmark(name string) (*Workflow, error) {
	wl, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return &Workflow{name: wl.Name, version: "bench", prebuilt: wl}, nil
}
