package dag

import (
	"testing"

	"caribou/internal/region"
)

func internDAG(t *testing.T) *DAG {
	t.Helper()
	d, err := NewBuilder("intern").
		AddNode(Node{ID: "a"}).
		AddNode(Node{ID: "b"}).
		AddNode(Node{ID: "c"}).
		AddEdge("a", "b").
		AddEdge("a", "c").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPlanKeyCanonical(t *testing.T) {
	p := Plan{"b": region.USWest1, "a": region.USEast1}
	q := Plan{"a": region.USEast1, "b": region.USWest1}
	if p.Key() != q.Key() {
		t.Errorf("equal plans have different keys: %q vs %q", p.Key(), q.Key())
	}
	if p.Key() != "a=aws:us-east-1;b=aws:us-west-1" {
		t.Errorf("key = %q", p.Key())
	}
	r := Plan{"a": region.USEast1, "b": region.USEast1}
	if p.Key() == r.Key() {
		t.Error("different plans share a key")
	}
	if p.Hash() != q.Hash() {
		t.Error("equal plans hash differently")
	}
	if p.Hash() == r.Hash() {
		t.Error("distinct plans collide (FNV-1a of distinct keys)")
	}
}

func TestDistinctPlansCountsStructurally(t *testing.T) {
	day := Plan{"a": region.USEast1}
	night := Plan{"a": region.CACentral1}
	var h HourlyPlans
	for i := range h {
		if i < 8 {
			h[i] = night.Clone() // distinct map values, same structure
		} else {
			h[i] = day
		}
	}
	if got := h.DistinctPlans(); got != 2 {
		t.Errorf("DistinctPlans = %d, want 2", got)
	}
}

func TestInternerRoundTrip(t *testing.T) {
	d := internDAG(t)
	it := NewInterner(d)
	if it.Len() != 3 {
		t.Fatalf("Len = %d", it.Len())
	}
	// Indices follow topological order and round-trip through Node.
	for i, n := range d.Nodes() {
		idx, ok := it.Index(n)
		if !ok || idx != i {
			t.Errorf("Index(%s) = %d,%v, want %d", n, idx, ok, i)
		}
		if it.Node(i) != n {
			t.Errorf("Node(%d) = %s, want %s", i, it.Node(i), n)
		}
	}
	if _, ok := it.Index("ghost"); ok {
		t.Error("unknown stage should not resolve")
	}
	nodes := it.Nodes()
	nodes[0] = "mutated"
	if it.Node(0) == "mutated" {
		t.Error("Nodes must return a copy")
	}
}
