package dag

import (
	"strings"
	"testing"

	"caribou/internal/region"
)

func TestToDOTStructure(t *testing.T) {
	d := diamond(t)
	dot := d.ToDOT(nil)
	for _, want := range []string{
		"digraph \"diamond\"",
		"\"start\" -> \"a\"",
		"doubleoctagon", // sync node styling
		"style=dashed",  // conditional edge
		"p=0.50",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(dot, "}\n") {
		t.Error("DOT not terminated")
	}
}

func TestToDOTWithPlanClusters(t *testing.T) {
	d := diamond(t)
	plan := NewHomePlan(d, region.USEast1)
	plan["b"] = region.CACentral1
	dot := d.ToDOT(plan)
	if !strings.Contains(dot, "subgraph cluster_0") || !strings.Contains(dot, "subgraph cluster_1") {
		t.Errorf("expected two region clusters:\n%s", dot)
	}
	if !strings.Contains(dot, `label="aws:ca-central-1"`) {
		t.Errorf("region label missing:\n%s", dot)
	}
}

func TestSummary(t *testing.T) {
	d := diamond(t)
	s := d.Summary()
	for _, want := range []string{"4 stages", "4 edges", "sync", "conditional"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	single, err := NewBuilder("one").AddNode(Node{ID: "n"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if s := single.Summary(); strings.Contains(s, "sync") || strings.Contains(s, "conditional") {
		t.Errorf("single-node summary = %q", s)
	}
}
