package dag

import (
	"fmt"
	"testing"
	"testing/quick"

	"caribou/internal/region"
)

// diamond builds start -> {a, b} -> join with a conditional edge to b.
func diamond(t *testing.T) *DAG {
	t.Helper()
	d, err := NewBuilder("diamond").
		AddNode(Node{ID: "start"}).
		AddNode(Node{ID: "a"}).
		AddNode(Node{ID: "b"}).
		AddNode(Node{ID: "join"}).
		AddEdge("start", "a").
		AddConditionalEdge("start", "b", 0.5).
		AddEdge("a", "join").
		AddEdge("b", "join").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildValidDAG(t *testing.T) {
	d := diamond(t)
	if d.Name() != "diamond" || d.Len() != 4 {
		t.Fatalf("name=%s len=%d", d.Name(), d.Len())
	}
	if d.Start() != "start" {
		t.Errorf("start = %s", d.Start())
	}
	if !d.IsSync("join") {
		t.Error("join should be a sync node")
	}
	if d.IsSync("a") {
		t.Error("a is not a sync node")
	}
	if syncs := d.SyncNodes(); len(syncs) != 1 || syncs[0] != "join" {
		t.Errorf("sync nodes = %v", syncs)
	}
	if !d.HasConditional() {
		t.Error("conditional edge not detected")
	}
	if terms := d.Terminals(); len(terms) != 1 || terms[0] != "join" {
		t.Errorf("terminals = %v", terms)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"no nodes", NewBuilder("x")},
		{"empty name", NewBuilder("").AddNode(Node{ID: "a"})},
		{"empty node id", NewBuilder("x").AddNode(Node{ID: ""})},
		{"duplicate node", NewBuilder("x").AddNode(Node{ID: "a"}).AddNode(Node{ID: "a"})},
		{"unknown edge source", NewBuilder("x").AddNode(Node{ID: "a"}).AddEdge("zz", "a")},
		{"unknown edge target", NewBuilder("x").AddNode(Node{ID: "a"}).AddEdge("a", "zz")},
		{"self loop", NewBuilder("x").AddNode(Node{ID: "a"}).AddEdge("a", "a")},
		{"duplicate edge", NewBuilder("x").AddNode(Node{ID: "a"}).AddNode(Node{ID: "b"}).AddEdge("a", "b").AddEdge("a", "b")},
		{"two start nodes", NewBuilder("x").AddNode(Node{ID: "a"}).AddNode(Node{ID: "b"})},
		{"cycle", NewBuilder("x").
			AddNode(Node{ID: "s"}).AddNode(Node{ID: "a"}).AddNode(Node{ID: "b"}).
			AddEdge("s", "a").AddEdge("a", "b").AddEdge("b", "a")},
	}
	for _, c := range cases {
		if _, err := c.b.Build(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestTopologicalOrderProperty(t *testing.T) {
	d := diamond(t)
	pos := map[NodeID]int{}
	for i, n := range d.Nodes() {
		pos[n] = i
	}
	for _, e := range d.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %s->%s violates topo order", e.From, e.To)
		}
	}
}

func TestQuickRandomLayeredDAGsTopoSort(t *testing.T) {
	// Property: random layered DAGs always build, and the returned node
	// order is a topological order.
	f := func(widths [3]uint8, edgeBits uint64) bool {
		b := NewBuilder("rand")
		b.AddNode(Node{ID: "root"})
		var layers [][]NodeID
		prev := []NodeID{"root"}
		bit := 0
		for li, w8 := range widths {
			w := int(w8%3) + 1
			var layer []NodeID
			for i := 0; i < w; i++ {
				id := NodeID(fmt.Sprintf("n%d-%d", li, i))
				b.AddNode(Node{ID: id})
				// Connect from at least one predecessor.
				connected := false
				for _, p := range prev {
					take := edgeBits&(1<<uint(bit%64)) != 0
					bit++
					if take {
						b.AddEdge(p, id)
						connected = true
					}
				}
				if !connected {
					b.AddEdge(prev[0], id)
				}
				layer = append(layer, id)
			}
			layers = append(layers, layer)
			prev = layer
		}
		_ = layers
		d, err := b.Build()
		if err != nil {
			return false
		}
		pos := map[NodeID]int{}
		for i, n := range d.Nodes() {
			pos[n] = i
		}
		for _, e := range d.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return len(d.Nodes()) == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConditionalProbabilityClamping(t *testing.T) {
	d, err := NewBuilder("clamp").
		AddNode(Node{ID: "a"}).
		AddNode(Node{ID: "b"}).
		AddNode(Node{ID: "c"}).
		AddConditionalEdge("a", "b", -0.5).
		AddConditionalEdge("a", "c", 1.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := d.Out("a")
	if out[0].Probability != 0 || out[1].Probability != 1 {
		t.Errorf("probabilities = %v, %v", out[0].Probability, out[1].Probability)
	}
}

func TestDefaultsAppliedOnAddNode(t *testing.T) {
	d, err := NewBuilder("defaults").AddNode(Node{ID: "only"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	n, _ := d.Node("only")
	if n.MemoryMB != 1769 {
		t.Errorf("default memory = %v", n.MemoryMB)
	}
	if n.Function != "only" {
		t.Errorf("default function = %q", n.Function)
	}
}

func TestDescendants(t *testing.T) {
	d := diamond(t)
	desc := d.Descendants("start")
	if len(desc) != 3 {
		t.Errorf("descendants of start = %v", desc)
	}
	if ds := d.Descendants("join"); len(ds) != 0 {
		t.Errorf("descendants of terminal = %v", ds)
	}
	da := d.Descendants("a")
	if len(da) != 1 || da[0] != "join" {
		t.Errorf("descendants of a = %v", da)
	}
}

func TestAccessorsCopySemantics(t *testing.T) {
	d := diamond(t)
	out := d.Out("start")
	out[0].To = "mutated"
	if d.Out("start")[0].To == "mutated" {
		t.Error("Out leaked internal slice")
	}
	nodes := d.Nodes()
	nodes[0] = "mutated"
	if d.Nodes()[0] == "mutated" {
		t.Error("Nodes leaked internal slice")
	}
}

func TestHomePlanAndValidate(t *testing.T) {
	d := diamond(t)
	cat := region.NorthAmerica()
	p := NewHomePlan(d, region.USEast1)
	if len(p) != d.Len() || !p.IsSingleRegion() {
		t.Fatalf("home plan = %v", p)
	}
	if err := p.Validate(d, cat, region.Constraint{}); err != nil {
		t.Fatal(err)
	}

	// Missing stage.
	q := p.Clone()
	delete(q, "a")
	if err := q.Validate(d, cat, region.Constraint{}); err == nil {
		t.Error("want error for missing stage")
	}

	// Unknown region.
	q = p.Clone()
	q["a"] = "aws:nowhere"
	if err := q.Validate(d, cat, region.Constraint{}); err == nil {
		t.Error("want error for unknown region")
	}

	// Workflow-level constraint violation.
	q = p.Clone()
	q["a"] = region.CACentral1
	if err := q.Validate(d, cat, region.Constraint{AllowedCountries: []string{"US"}}); err == nil {
		t.Error("want compliance violation")
	}
}

func TestPlanValidateFunctionLevelConstraint(t *testing.T) {
	d, err := NewBuilder("pin").
		AddNode(Node{ID: "s", Constraint: region.Constraint{AllowedRegions: []region.ID{region.USEast1}}}).
		AddNode(Node{ID: "t"}).
		AddEdge("s", "t").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cat := region.NorthAmerica()
	p := NewHomePlan(d, region.USWest2)
	if err := p.Validate(d, cat, region.Constraint{}); err == nil {
		t.Error("function-level pin not enforced")
	}
	p["s"] = region.USEast1
	if err := p.Validate(d, cat, region.Constraint{}); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestPlanEqualCloneRegions(t *testing.T) {
	d := diamond(t)
	p := NewHomePlan(d, region.USEast1)
	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone not equal")
	}
	q["a"] = region.CACentral1
	if p.Equal(q) {
		t.Error("diverged plans reported equal")
	}
	if p["a"] != region.USEast1 {
		t.Error("clone aliases original")
	}
	regions := q.Regions()
	if len(regions) != 2 {
		t.Errorf("regions = %v", regions)
	}
	if q.IsSingleRegion() {
		t.Error("multi-region plan reported single")
	}
	if p.Equal(Plan{}) {
		t.Error("different sizes reported equal")
	}
}

func TestPlanString(t *testing.T) {
	d := diamond(t)
	p := NewHomePlan(d, region.USEast1)
	s := p.String()
	if s == "" || s[0] != '{' {
		t.Errorf("plan string = %q", s)
	}
}

func TestHourlyPlans(t *testing.T) {
	d := diamond(t)
	home := NewHomePlan(d, region.USEast1)
	h := Uniform(home)
	if h.DistinctPlans() != 1 {
		t.Errorf("distinct = %d", h.DistinctPlans())
	}
	other := NewHomePlan(d, region.CACentral1)
	h[3] = other
	if h.DistinctPlans() != 2 {
		t.Errorf("distinct = %d", h.DistinctPlans())
	}
	if !h.At(3).Equal(other) || !h.At(4).Equal(home) {
		t.Error("At returned wrong plan")
	}
	// Out-of-range hours wrap.
	if !h.At(27).Equal(other) || !h.At(-21).Equal(other) {
		t.Error("hour wrapping broken")
	}
}
