package dag

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"caribou/internal/region"
)

// Plan is a deployment plan ψ: N → R, assigning every workflow stage to a
// region (§4).
type Plan map[NodeID]region.ID

// NewHomePlan returns a plan deploying every stage of d to home, the
// coarse-grained baseline and fallback deployment.
func NewHomePlan(d *DAG, home region.ID) Plan {
	p := make(Plan, d.Len())
	for _, n := range d.Nodes() {
		p[n] = home
	}
	return p
}

// Clone returns a deep copy.
func (p Plan) Clone() Plan {
	out := make(Plan, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Equal reports whether two plans assign identical regions.
func (p Plan) Equal(q Plan) bool {
	if len(p) != len(q) {
		return false
	}
	for k, v := range p {
		if q[k] != v {
			return false
		}
	}
	return true
}

// Regions returns the distinct regions used by the plan, sorted.
func (p Plan) Regions() []region.ID {
	set := map[region.ID]bool{}
	for _, r := range p {
		set[r] = true
	}
	out := make([]region.ID, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedNodes returns the plan's stages in sorted order, for callers
// whose side effects (deployments, accounting) must not depend on map
// iteration order.
func (p Plan) SortedNodes() []NodeID {
	out := make([]NodeID, 0, len(p))
	for n := range p {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsSingleRegion reports whether all stages share one region.
func (p Plan) IsSingleRegion() bool { return len(p.Regions()) <= 1 }

// Validate checks that the plan covers exactly the stages of d, that every
// assigned region exists in the catalogue, and that each assignment
// satisfies the merged workflow- and function-level constraints.
func (p Plan) Validate(d *DAG, cat *region.Catalogue, workflow region.Constraint) error {
	if len(p) != d.Len() {
		return fmt.Errorf("dag: plan covers %d stages, workflow %s has %d", len(p), d.Name(), d.Len())
	}
	for _, id := range d.Nodes() {
		rid, ok := p[id]
		if !ok {
			return fmt.Errorf("dag: plan missing stage %q", id)
		}
		r, ok := cat.Get(rid)
		if !ok {
			return fmt.Errorf("dag: plan assigns %q to unknown region %q", id, rid)
		}
		n, _ := d.Node(id)
		if !region.Merge(workflow, n.Constraint).Permits(r) {
			return fmt.Errorf("dag: plan assigns %q to %q, violating its compliance constraint", id, rid)
		}
	}
	return nil
}

// Key returns a compact canonical encoding of the plan: stage→region
// pairs in sorted stage order, with no decorative formatting. Two plans
// are Equal iff their Keys match, so Key serves as a cheap map key for
// plan interning and estimate memoization.
func (p Plan) Key() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(string(p[NodeID(k)]))
	}
	return b.String()
}

// Hash returns a stable 64-bit FNV-1a hash of the plan's canonical Key.
func (p Plan) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(p.Key()))
	return h.Sum64()
}

// String renders the plan compactly, in topological-ish (sorted) order.
func (p Plan) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s→%s", k, p[NodeID(k)])
	}
	b.WriteByte('}')
	return b.String()
}

// HourlyPlans is one deployment plan per hour of day. The solver emits 24
// plans per solve to track diurnal carbon patterns (§5.1); coarser budgets
// may repeat one plan across all hours.
type HourlyPlans [24]Plan

// Uniform returns an HourlyPlans using p for every hour.
func Uniform(p Plan) HourlyPlans {
	var h HourlyPlans
	for i := range h {
		h[i] = p
	}
	return h
}

// At returns the plan in effect at the given hour of day (UTC hour 0-23).
func (h HourlyPlans) At(hour int) Plan {
	if hour < 0 || hour > 23 {
		hour = ((hour % 24) + 24) % 24
	}
	return h[hour]
}

// DistinctPlans reports how many structurally distinct plans the set
// contains.
func (h HourlyPlans) DistinctPlans() int {
	seen := make(map[string]bool, len(h))
	for _, p := range h {
		seen[p.Key()] = true
	}
	return len(seen)
}

// Interner assigns dense integer indices to a DAG's stages in topological
// order, so hot paths (the compiled evaluation snapshot, the solver's
// assignment vectors) can replace map[NodeID] lookups and Plan cloning
// with slice reads and copies.
type Interner struct {
	order []NodeID
	index map[NodeID]int
}

// NewInterner builds an interner over d's stages.
func NewInterner(d *DAG) *Interner {
	order := d.Nodes()
	idx := make(map[NodeID]int, len(order))
	for i, n := range order {
		idx[n] = i
	}
	return &Interner{order: order, index: idx}
}

// Len reports the number of interned stages.
func (it *Interner) Len() int { return len(it.order) }

// Index returns the dense index of stage n.
func (it *Interner) Index(n NodeID) (int, bool) {
	i, ok := it.index[n]
	return i, ok
}

// Node returns the stage at dense index i.
func (it *Interner) Node(i int) NodeID { return it.order[i] }

// Nodes returns the interned stages in index order (a copy).
func (it *Interner) Nodes() []NodeID { return append([]NodeID(nil), it.order...) }
