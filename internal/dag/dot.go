package dag

import (
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the workflow as a Graphviz digraph. Synchronization nodes
// are drawn as double octagons, conditional edges as dashed lines labeled
// with their probability, and — when a plan is supplied — nodes are
// grouped into per-region clusters so a deployment is visible at a
// glance. plan may be nil.
func (d *DAG) ToDOT(plan Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", d.name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, style=rounded];\n")

	nodeAttrs := func(n NodeID) string {
		if d.IsSync(n) {
			return " [shape=doubleoctagon]"
		}
		return ""
	}

	if plan == nil {
		for _, n := range d.order {
			fmt.Fprintf(&b, "  %q%s;\n", n, nodeAttrs(n))
		}
	} else {
		// Group by region, stable order.
		byRegion := map[string][]NodeID{}
		for _, n := range d.order {
			byRegion[string(plan[n])] = append(byRegion[string(plan[n])], n)
		}
		regions := make([]string, 0, len(byRegion))
		for r := range byRegion {
			regions = append(regions, r)
		}
		sort.Strings(regions)
		for i, r := range regions {
			fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", i, r)
			for _, n := range byRegion[r] {
				fmt.Fprintf(&b, "    %q%s;\n", n, nodeAttrs(n))
			}
			b.WriteString("  }\n")
		}
	}

	for _, n := range d.order {
		for _, e := range d.out[n] {
			if e.Conditional {
				fmt.Fprintf(&b, "  %q -> %q [style=dashed, label=\"p=%.2f\"];\n", e.From, e.To, e.Probability)
			} else {
				fmt.Fprintf(&b, "  %q -> %q;\n", e.From, e.To)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary renders a one-line structural description ("6 stages, 6 edges,
// sync, conditional").
func (d *DAG) Summary() string {
	parts := []string{
		fmt.Sprintf("%d stages", d.Len()),
		fmt.Sprintf("%d edges", len(d.Edges())),
	}
	if len(d.SyncNodes()) > 0 {
		parts = append(parts, "sync")
	}
	if d.HasConditional() {
		parts = append(parts, "conditional")
	}
	return strings.Join(parts, ", ")
}
