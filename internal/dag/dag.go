// Package dag implements the workflow model of §4: a directed acyclic
// graph of execution stages with exactly one start node, conditional
// edges, and synchronization nodes, together with deployment plans mapping
// stages to regions.
package dag

import (
	"fmt"
	"sort"

	"caribou/internal/region"
)

// NodeID identifies one execution stage. A source-code function may map to
// several stages; each stage is a distinct node so the graph stays acyclic.
type NodeID string

// Node is one execution stage of a workflow.
type Node struct {
	ID       NodeID
	Function string  // name of the source function this stage executes
	MemoryMB float64 // configured memory size; determines vCPU share
	// Constraint is the function-level compliance constraint (§8),
	// merged over the workflow-level constraint at solve time.
	Constraint region.Constraint
}

// Edge is an execution dependency between two stages. A conditional edge
// carries the trigger's historical probability, used by the Monte Carlo
// estimator; unconditional edges have probability 1.
type Edge struct {
	From, To    NodeID
	Conditional bool
	Probability float64
}

// DAG is a validated workflow graph. Construct with Build; a DAG is
// immutable afterwards.
type DAG struct {
	name  string
	nodes map[NodeID]*Node
	order []NodeID // deterministic topological order
	out   map[NodeID][]Edge
	in    map[NodeID][]Edge
	start NodeID
}

// Builder accumulates nodes and edges before validation.
type Builder struct {
	name  string
	nodes []Node
	edges []Edge
}

// NewBuilder starts a workflow graph with the given name.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

// AddNode adds a stage. Memory defaults to 1769 MB (one vCPU) when
// unset.
func (b *Builder) AddNode(n Node) *Builder {
	if n.MemoryMB <= 0 {
		n.MemoryMB = 1769
	}
	if n.Function == "" {
		n.Function = string(n.ID)
	}
	b.nodes = append(b.nodes, n)
	return b
}

// AddEdge adds an unconditional dependency from → to.
func (b *Builder) AddEdge(from, to NodeID) *Builder {
	b.edges = append(b.edges, Edge{From: from, To: to, Probability: 1})
	return b
}

// AddConditionalEdge adds a conditional dependency taken with probability
// p (clamped to [0, 1]).
func (b *Builder) AddConditionalEdge(from, to NodeID, p float64) *Builder {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	b.edges = append(b.edges, Edge{From: from, To: to, Conditional: true, Probability: p})
	return b
}

// Build validates the graph per §4: non-empty, unique node IDs, edges
// referencing known nodes, acyclic, exactly one start node, and every node
// reachable from the start.
func (b *Builder) Build() (*DAG, error) {
	if b.name == "" {
		return nil, fmt.Errorf("dag: workflow name must be non-empty")
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("dag %s: no nodes", b.name)
	}
	d := &DAG{
		name:  b.name,
		nodes: make(map[NodeID]*Node, len(b.nodes)),
		out:   make(map[NodeID][]Edge),
		in:    make(map[NodeID][]Edge),
	}
	for i := range b.nodes {
		n := b.nodes[i]
		if n.ID == "" {
			return nil, fmt.Errorf("dag %s: empty node ID", b.name)
		}
		if _, dup := d.nodes[n.ID]; dup {
			return nil, fmt.Errorf("dag %s: duplicate node %q", b.name, n.ID)
		}
		nn := n
		d.nodes[n.ID] = &nn
	}
	for _, e := range b.edges {
		if _, ok := d.nodes[e.From]; !ok {
			return nil, fmt.Errorf("dag %s: edge from unknown node %q", b.name, e.From)
		}
		if _, ok := d.nodes[e.To]; !ok {
			return nil, fmt.Errorf("dag %s: edge to unknown node %q", b.name, e.To)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("dag %s: self-loop on %q", b.name, e.From)
		}
		for _, prev := range d.out[e.From] {
			if prev.To == e.To {
				return nil, fmt.Errorf("dag %s: duplicate edge %s->%s", b.name, e.From, e.To)
			}
		}
		d.out[e.From] = append(d.out[e.From], e)
		d.in[e.To] = append(d.in[e.To], e)
	}

	// Exactly one start node (no incoming edges).
	var starts []NodeID
	for id := range d.nodes {
		if len(d.in[id]) == 0 {
			starts = append(starts, id)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	if len(starts) != 1 {
		return nil, fmt.Errorf("dag %s: want exactly one start node, have %d (%v)", b.name, len(starts), starts)
	}
	d.start = starts[0]

	order, err := d.topoSort()
	if err != nil {
		return nil, err
	}
	d.order = order
	if len(order) != len(d.nodes) {
		return nil, fmt.Errorf("dag %s: %d of %d nodes unreachable or cyclic", b.name, len(d.nodes)-len(order), len(d.nodes))
	}
	return d, nil
}

// topoSort performs Kahn's algorithm starting from the start node,
// visiting successors in sorted order for determinism. It fails on cycles.
func (d *DAG) topoSort() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(d.nodes))
	for id := range d.nodes {
		indeg[id] = len(d.in[id])
	}
	frontier := []NodeID{d.start}
	var order []NodeID
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, n)
		for _, e := range d.out[n] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				frontier = append(frontier, e.To)
			}
		}
	}
	if len(order) < len(d.nodes) {
		for id, deg := range indeg {
			if deg > 0 && len(d.in[id]) > 0 {
				// Distinguish cycle from disconnection for the error.
				if onCycle(d, id) {
					return nil, fmt.Errorf("dag %s: cycle involving %q", d.name, id)
				}
			}
		}
	}
	return order, nil
}

func onCycle(d *DAG, start NodeID) bool {
	seen := map[NodeID]bool{}
	var walk func(n NodeID) bool
	walk = func(n NodeID) bool {
		if n == start && len(seen) > 0 {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, e := range d.out[n] {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	return walk(start)
}

// Name returns the workflow name.
func (d *DAG) Name() string { return d.name }

// Start returns the unique start node.
func (d *DAG) Start() NodeID { return d.start }

// Len reports the number of stages.
func (d *DAG) Len() int { return len(d.nodes) }

// Node returns the stage with the given ID.
func (d *DAG) Node(id NodeID) (*Node, bool) {
	n, ok := d.nodes[id]
	return n, ok
}

// Nodes returns all stage IDs in topological order.
func (d *DAG) Nodes() []NodeID { return append([]NodeID(nil), d.order...) }

// Out returns the outgoing edges of n in insertion order.
func (d *DAG) Out(n NodeID) []Edge { return append([]Edge(nil), d.out[n]...) }

// In returns the incoming edges of n in insertion order.
func (d *DAG) In(n NodeID) []Edge { return append([]Edge(nil), d.in[n]...) }

// Edges returns every edge, ordered by topological position of the source.
func (d *DAG) Edges() []Edge {
	var out []Edge
	for _, n := range d.order {
		out = append(out, d.out[n]...)
	}
	return out
}

// IsSync reports whether n is a synchronization node (|Ein| > 1, §4).
func (d *DAG) IsSync(n NodeID) bool { return len(d.in[n]) > 1 }

// SyncNodes returns all synchronization nodes in topological order.
func (d *DAG) SyncNodes() []NodeID {
	var out []NodeID
	for _, n := range d.order {
		if d.IsSync(n) {
			out = append(out, n)
		}
	}
	return out
}

// HasConditional reports whether any edge is conditional.
func (d *DAG) HasConditional() bool {
	for _, n := range d.order {
		for _, e := range d.out[n] {
			if e.Conditional {
				return true
			}
		}
	}
	return false
}

// Terminals returns the nodes with no outgoing edges.
func (d *DAG) Terminals() []NodeID {
	var out []NodeID
	for _, n := range d.order {
		if len(d.out[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Descendants returns every node reachable from n, excluding n itself.
func (d *DAG) Descendants(n NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var walk func(id NodeID)
	walk = func(id NodeID) {
		for _, e := range d.out[id] {
			if !seen[e.To] {
				seen[e.To] = true
				walk(e.To)
			}
		}
	}
	walk(n)
	var out []NodeID
	for _, id := range d.order {
		if seen[id] {
			out = append(out, id)
		}
	}
	return out
}
