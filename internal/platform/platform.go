// Package platform simulates the multi-region serverless cloud Caribou
// deploys onto (AWS in the paper): regional function deployments invoked
// through pub/sub topics, cold starts, a container registry with
// cross-region image copies, a control-plane key-value store, and raw
// event logs (executions and transfers) from which cost and carbon are
// accounted after the fact.
//
// The platform is intentionally mechanism-only: it knows nothing about
// deployment plans or carbon policy. The executor and deployer drive it.
package platform

import (
	"fmt"
	"sort"
	"time"

	"caribou/internal/kvstore"
	"caribou/internal/netmodel"
	"caribou/internal/pubsub"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/telemetry"

	"caribou/internal/dag"
)

// FunctionRef identifies one deployed function instance.
type FunctionRef struct {
	Workflow string
	Node     dag.NodeID
	Region   region.ID
}

// Topic returns the pub/sub topic name of the deployment, one topic per
// function per region as in §6.1.
func (f FunctionRef) Topic() string {
	return fmt.Sprintf("%s/%s/%s", f.Workflow, f.Node, f.Region)
}

func (f FunctionRef) String() string { return f.Topic() }

// Timing constants of the simulated provider, calibrated so the §9.6
// overhead comparison lands where the paper's measurements do: Step
// Functions transitions are markedly faster than SNS-triggered Lambda
// invocations, and KV accesses cost a few milliseconds plus network time.
const (
	// SNSPublishOverhead is the fixed service-side latency from publish
	// to subscriber invocation, excluding network propagation.
	SNSPublishOverhead = 120 * time.Millisecond
	// StepFunctionsTransition is the state-transition latency of the
	// provider's first-party orchestrator.
	StepFunctionsTransition = 25 * time.Millisecond
	// KVAccessOverhead is the service-side latency of one key-value
	// store request, excluding network propagation.
	KVAccessOverhead = 3 * time.Millisecond
	// coldStartBase and coldStartPerGB model container initialization.
	coldStartBase  = 250 * time.Millisecond
	coldStartPerGB = 600 * time.Millisecond
	// coldIdleThreshold is the idle time after which an execution
	// environment is reclaimed. Providers keep environments warm for
	// tens of minutes to hours; the simulation errs long so cold
	// starts cluster at deployment switches rather than dominating
	// steady-state traffic.
	coldIdleThreshold = 60 * time.Minute
)

// Options configures a Platform.
type Options struct {
	Sched     *simclock.Scheduler
	Catalogue *region.Catalogue
	Net       *netmodel.Model
	Seed      int64
	// Pubsub tunes broker delivery; zero values take defaults.
	Pubsub pubsub.Config
	// RegionConcurrency caps concurrent executions per region
	// (DefaultRegionConcurrency when zero; negative disables the cap).
	RegionConcurrency int
}

// Platform is the simulated cloud.
type Platform struct {
	sched  *simclock.Scheduler
	cat    *region.Catalogue
	net    *netmodel.Model
	broker *pubsub.Broker
	kv     *kvstore.Store
	rng    *simclock.Rand

	registry    map[string]map[region.ID]float64 // workflow -> region -> image bytes
	deployments map[string]*deployment           // by topic
	roles       map[string]map[region.ID]bool    // workflow -> region -> IAM role exists

	regionConcurrency int
	limiters          map[region.ID]*regionLimiter

	tel platformTelemetry
}

// platformTelemetry holds the platform's instrument handles, captured
// once at construction. Every field is nil-safe: with telemetry disabled
// each observation is a single nil check.
type platformTelemetry struct {
	rec           *telemetry.Recorder
	invocations   *telemetry.Counter
	coldStarts    *telemetry.Counter
	transfers     *telemetry.Counter
	transferBytes *telemetry.Counter
	publishes     *telemetry.Counter
	imageCopies   *telemetry.Counter
	limiterQueued *telemetry.Counter
	limiterPeak   *telemetry.Gauge
}

func newPlatformTelemetry() platformTelemetry {
	rec := telemetry.Default()
	return platformTelemetry{
		rec:           rec,
		invocations:   rec.Counter("platform.invocations"),
		coldStarts:    rec.Counter("platform.cold_starts"),
		transfers:     rec.Counter("platform.transfers"),
		transferBytes: rec.Counter("platform.transfer_bytes"),
		publishes:     rec.Counter("platform.publishes"),
		imageCopies:   rec.Counter("platform.image_copies"),
		limiterQueued: rec.Counter("platform.limiter.queued"),
		limiterPeak:   rec.Gauge("platform.limiter.peak"),
	}
}

type deployment struct {
	ref      FunctionRef
	lastUsed time.Time
	everUsed bool
}

// New returns an empty platform.
func New(opts Options) (*Platform, error) {
	if opts.Sched == nil || opts.Catalogue == nil || opts.Net == nil {
		return nil, fmt.Errorf("platform: Sched, Catalogue and Net are required")
	}
	conc := opts.RegionConcurrency
	if conc == 0 {
		conc = DefaultRegionConcurrency
	}
	if conc < 0 {
		conc = 0 // unlimited
	}
	p := &Platform{
		sched:             opts.Sched,
		cat:               opts.Catalogue,
		net:               opts.Net,
		kv:                kvstore.New(),
		rng:               simclock.DeriveRand(opts.Seed, "platform"),
		registry:          make(map[string]map[region.ID]float64),
		deployments:       make(map[string]*deployment),
		roles:             make(map[string]map[region.ID]bool),
		regionConcurrency: conc,
		limiters:          make(map[region.ID]*regionLimiter),
		tel:               newPlatformTelemetry(),
	}
	p.broker = pubsub.NewBroker(opts.Sched, nil, opts.Pubsub, simclock.DeriveRand(opts.Seed, "platform/broker"))
	return p, nil
}

// Scheduler exposes the virtual clock.
func (p *Platform) Scheduler() *simclock.Scheduler { return p.sched }

// Catalogue exposes the region catalogue.
func (p *Platform) Catalogue() *region.Catalogue { return p.cat }

// Net exposes the network model.
func (p *Platform) Net() *netmodel.Model { return p.net }

// Broker exposes the pub/sub substrate.
func (p *Platform) Broker() *pubsub.Broker { return p.broker }

// KV exposes the control-plane key-value store. Access latency is modeled
// by callers via KVAccessLatency, since only they know the accessor's
// region.
func (p *Platform) KV() *kvstore.Store { return p.kv }

// KVAccessLatency returns the virtual latency of one KV request issued
// from `from` against a table homed in `home`.
func (p *Platform) KVAccessLatency(from, home region.ID) time.Duration {
	rtt, err := p.net.RTT(from, home)
	if err != nil {
		rtt = time.Millisecond
	}
	return KVAccessOverhead + rtt
}

// PushImage registers the workflow's container image in a regional
// registry (step 2 of initial deployment, §6.1). Pushing is idempotent.
func (p *Platform) PushImage(workflow string, bytes float64, to region.ID) error {
	if _, ok := p.cat.Get(to); !ok {
		return fmt.Errorf("platform: push image to unknown region %q", to)
	}
	if p.registry[workflow] == nil {
		p.registry[workflow] = make(map[region.ID]float64)
	}
	p.registry[workflow][to] = bytes
	return nil
}

// HasImage reports whether the workflow's image exists in the region.
func (p *Platform) HasImage(workflow string, r region.ID) bool {
	_, ok := p.registry[workflow][r]
	return ok
}

// CopyImage replicates the image from one regional registry to another
// without rebuilding (the crane-based migration of §6.1). It returns the
// virtual duration and the bytes moved; callers log the transfer. Copying
// to a region that already has the image is free.
func (p *Platform) CopyImage(workflow string, from, to region.ID) (time.Duration, float64, error) {
	bytes, ok := p.registry[workflow][from]
	if !ok {
		return 0, 0, fmt.Errorf("platform: no image for %q in %q", workflow, from)
	}
	if p.HasImage(workflow, to) {
		return 0, 0, nil
	}
	d, err := p.net.TransferTime(from, to, bytes)
	if err != nil {
		return 0, 0, err
	}
	if err := p.PushImage(workflow, bytes, to); err != nil {
		return 0, 0, err
	}
	p.tel.imageCopies.Inc()
	p.tel.transfers.Inc()
	p.tel.transferBytes.Add(int64(bytes))
	p.tel.rec.Event("platform.image_copy", p.sched.Now(),
		telemetry.String("workflow", workflow),
		telemetry.String("from", string(from)),
		telemetry.String("to", string(to)),
		telemetry.Float("bytes", bytes))
	return d, bytes, nil
}

// DropImage removes the image from a regional registry (used by tests and
// failure injection).
func (p *Platform) DropImage(workflow string, r region.ID) {
	delete(p.registry[workflow], r)
}

// EnsureRole creates the workflow's IAM role in a region (step 2 of
// initial deployment, §6.1: one role per function deployment region).
// Idempotent.
func (p *Platform) EnsureRole(workflow string, r region.ID) error {
	if _, ok := p.cat.Get(r); !ok {
		return fmt.Errorf("platform: role in unknown region %q", r)
	}
	if p.roles[workflow] == nil {
		p.roles[workflow] = make(map[region.ID]bool)
	}
	p.roles[workflow][r] = true
	return nil
}

// HasRole reports whether the workflow's IAM role exists in the region.
func (p *Platform) HasRole(workflow string, r region.ID) bool {
	return p.roles[workflow][r]
}

// DeployFunction creates the function and its messaging topic in the
// region and subscribes handler to it. It fails when the image has not
// been replicated or the IAM role has not been created in the region,
// mirroring the real dependency order (§6.1 step 2: roles and image
// before functions and topics).
func (p *Platform) DeployFunction(ref FunctionRef, handler pubsub.Handler) error {
	if _, ok := p.cat.Get(ref.Region); !ok {
		return fmt.Errorf("platform: deploy to unknown region %q", ref.Region)
	}
	if !p.HasImage(ref.Workflow, ref.Region) {
		return fmt.Errorf("platform: image for %q not in registry of %q", ref.Workflow, ref.Region)
	}
	if !p.HasRole(ref.Workflow, ref.Region) {
		return fmt.Errorf("platform: IAM role for %q missing in %q", ref.Workflow, ref.Region)
	}
	topic := ref.Topic()
	p.deployments[topic] = &deployment{ref: ref}
	p.broker.Subscribe(topic, handler)
	return nil
}

// RemoveFunction deletes the deployment and its topic.
func (p *Platform) RemoveFunction(ref FunctionRef) {
	topic := ref.Topic()
	delete(p.deployments, topic)
	p.broker.Unsubscribe(topic)
}

// IsDeployed reports whether ref exists.
func (p *Platform) IsDeployed(ref FunctionRef) bool {
	_, ok := p.deployments[ref.Topic()]
	return ok
}

// Deployments returns the refs of all live deployments of a workflow.
func (p *Platform) Deployments(workflow string) []FunctionRef {
	var out []FunctionRef
	for _, d := range p.deployments {
		if d.ref.Workflow == workflow {
			out = append(out, d.ref)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// ColdStartPenalty returns the environment-initialization delay to charge
// for an invocation of ref arriving now, and updates the deployment's
// usage clock. The first invocation and invocations after a long idle
// period pay the penalty, scaled by image size.
func (p *Platform) ColdStartPenalty(ref FunctionRef, imageBytes float64) time.Duration {
	d, ok := p.deployments[ref.Topic()]
	if !ok {
		return 0
	}
	p.tel.invocations.Inc()
	now := p.sched.Now()
	cold := !d.everUsed || now.Sub(d.lastUsed) > coldIdleThreshold
	d.everUsed = true
	d.lastUsed = now
	if !cold {
		return 0
	}
	p.tel.coldStarts.Inc()
	p.tel.rec.Event("platform.cold_start", now,
		telemetry.String("workflow", ref.Workflow),
		telemetry.String("node", string(ref.Node)),
		telemetry.String("region", string(ref.Region)))
	penalty := coldStartBase + time.Duration(imageBytes/1e9*float64(coldStartPerGB))
	// Mild deterministic jitter.
	return time.Duration(float64(penalty) * p.rng.Uniform(0.85, 1.25))
}

// MessageLatency returns the virtual delivery latency of a pub/sub message
// of the given size from a publisher in `from` to a subscriber in `to`:
// the provider-side publish overhead plus one-way network time.
func (p *Platform) MessageLatency(from, to region.ID, bytes float64) time.Duration {
	t, err := p.net.TransferTime(from, to, bytes)
	if err != nil {
		t = time.Millisecond
	}
	jitter := p.rng.LogNormal(0, 0.08)
	return SNSPublishOverhead + time.Duration(float64(t)*jitter)
}

// Publish sends data to topic with the given pre-computed latency.
func (p *Platform) Publish(topic string, data []byte, latency time.Duration) error {
	p.tel.publishes.Inc()
	return p.broker.PublishAfter(topic, data, latency)
}

// NoteTransfer counts one logged data movement in the platform's
// telemetry instruments. The executor calls it wherever it appends a
// TransferEvent to an invocation record; ev.At already carries the
// simulated-clock stamp.
func (p *Platform) NoteTransfer(ev TransferEvent) {
	p.tel.transfers.Inc()
	p.tel.transferBytes.Add(int64(ev.Bytes))
}
