package platform

import (
	"caribou/internal/region"
	"caribou/internal/telemetry"
)

// Per-region execution concurrency, modeling the account-level concurrent
// execution limit of serverless platforms (AWS Lambda's default is 1,000
// per region). When a region is saturated, new invocations queue until a
// slot frees — the "region unavailability due to increased traffic"
// failure mode §6.1's fallback machinery guards against.

// DefaultRegionConcurrency matches the provider's default account limit.
const DefaultRegionConcurrency = 1000

type regionLimiter struct {
	capacity int
	inUse    int
	waiting  []func()
	peak     int
	queued   uint64
}

func (p *Platform) limiter(r region.ID) *regionLimiter {
	l, ok := p.limiters[r]
	if !ok {
		l = &regionLimiter{capacity: p.regionConcurrency}
		p.limiters[r] = l
	}
	return l
}

// AcquireExecutionSlot runs fn as soon as the region has execution
// capacity: immediately when below the limit, otherwise when a running
// execution releases its slot. fn must arrange for ReleaseExecutionSlot
// to be called exactly once when the execution finishes.
func (p *Platform) AcquireExecutionSlot(r region.ID, fn func()) {
	l := p.limiter(r)
	if l.capacity <= 0 || l.inUse < l.capacity {
		l.inUse++
		if l.inUse > l.peak {
			l.peak = l.inUse
			p.tel.limiterPeak.Max(int64(l.peak))
		}
		fn()
		return
	}
	l.queued++
	l.waiting = append(l.waiting, fn)
	p.tel.limiterQueued.Inc()
	p.tel.rec.Event("platform.limiter.queued", p.sched.Now(),
		telemetry.String("region", string(r)),
		telemetry.Int("depth", int64(len(l.waiting))))
}

// ReleaseExecutionSlot returns a slot to the region and starts the oldest
// queued execution, if any.
func (p *Platform) ReleaseExecutionSlot(r region.ID) {
	l := p.limiter(r)
	if len(l.waiting) > 0 {
		next := l.waiting[0]
		l.waiting = l.waiting[1:]
		// The slot transfers directly to the queued execution.
		next()
		return
	}
	if l.inUse > 0 {
		l.inUse--
	}
}

// ConcurrencyStats reports a region's peak concurrent executions and how
// many invocations had to queue.
func (p *Platform) ConcurrencyStats(r region.ID) (peak int, queued uint64) {
	l := p.limiter(r)
	return l.peak, l.queued
}
