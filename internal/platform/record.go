package platform

import (
	"fmt"
	"sort"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/pricing"
	"caribou/internal/region"
)

// ExecutionEvent records one function execution: the raw facts needed to
// account cost (GB-seconds, invocation fee) and carbon (duration, memory,
// utilization, region, wall-clock position against the grid trace).
type ExecutionEvent struct {
	Node   dag.NodeID
	Region region.ID
	Start  time.Time
	// DurationSec is the billed execution duration; InitSec is the
	// cold-start environment initialization time, which extends service
	// time but (as on AWS Lambda managed runtimes) is not billed. The
	// Metric Manager learns latency from DurationSec+InitSec and prices
	// carbon/cost from DurationSec.
	DurationSec float64
	InitSec     float64
	MemoryMB    float64
	CPUUtil     float64
	ColdStart   bool
}

// TransferKind classifies a data movement for accounting and analysis.
type TransferKind int

// Transfer kinds.
const (
	// TransferPayload is intermediate data piggybacked on an invocation
	// message between two stages.
	TransferPayload TransferKind = iota
	// TransferKVData is intermediate data staged through the
	// distributed key-value store for synchronization nodes.
	TransferKVData
	// TransferEntry is the initial request payload from the traffic
	// source to the entry stage.
	TransferEntry
	// TransferOutput is a terminal stage writing results back to the
	// workflow's fixed external storage (§9.1 keeps storage at home).
	TransferOutput
	// TransferImage is a container-image replication performed by the
	// migrator.
	TransferImage
	// TransferControl is framework control traffic (DP fetches, sync
	// annotations, metadata).
	TransferControl
)

func (k TransferKind) String() string {
	switch k {
	case TransferPayload:
		return "payload"
	case TransferKVData:
		return "kvdata"
	case TransferEntry:
		return "entry"
	case TransferOutput:
		return "output"
	case TransferImage:
		return "image"
	case TransferControl:
		return "control"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// TransferEvent records one data movement between regions. FromNode and
// ToNode label the DAG edge that produced the movement (empty for entry,
// output, image, and control transfers), letting the Metric Manager learn
// per-edge payload size distributions.
type TransferEvent struct {
	Kind     TransferKind
	From, To region.ID
	FromNode dag.NodeID
	ToNode   dag.NodeID
	Bytes    float64
	At       time.Time
}

// ServiceCounts tallies billable service requests per region.
type ServiceCounts struct {
	SNSPublishes map[region.ID]int
	KVReads      map[region.ID]int
	KVWrites     map[region.ID]int
}

func newServiceCounts() ServiceCounts {
	return ServiceCounts{
		SNSPublishes: make(map[region.ID]int),
		KVReads:      make(map[region.ID]int),
		KVWrites:     make(map[region.ID]int),
	}
}

// InvocationRecord aggregates everything one workflow invocation did. The
// Metric Manager learns from these; the evaluation harness accounts cost
// and carbon from them under any transmission model without re-running the
// simulation.
type InvocationRecord struct {
	Workflow   string
	ID         uint64
	InputClass string
	Start      time.Time // first function begins processing
	End        time.Time // last function finishes
	Executions []ExecutionEvent
	Transfers  []TransferEvent
	Services   ServiceCounts
	// Benchmarked marks the 10 % of traffic pinned to the home region
	// for performance benchmarking (§6.2).
	Benchmarked bool
	Succeeded   bool
}

// NewInvocationRecord returns an empty record.
func NewInvocationRecord(workflow string, id uint64, class string) *InvocationRecord {
	return &InvocationRecord{
		Workflow:   workflow,
		ID:         id,
		InputClass: class,
		Services:   newServiceCounts(),
	}
}

// ServiceTime is the end-to-end service time (§9.1: first receipt by the
// first function to the end of the last function).
func (r *InvocationRecord) ServiceTime() time.Duration { return r.End.Sub(r.Start) }

// CostUSD prices the invocation: Lambda execution, SNS publishes, KV
// requests, and inter-region egress on every transfer.
func (r *InvocationRecord) CostUSD(book *pricing.Book) float64 {
	var c float64
	for _, e := range r.Executions {
		c += book.ExecutionCost(e.Region, e.MemoryMB, e.DurationSec)
	}
	// Sorted region order keeps the floating-point sum independent of map
	// iteration order.
	for _, reg := range sortedRegions(r.Services.SNSPublishes) {
		c += book.SNSCost(reg, r.Services.SNSPublishes[reg])
	}
	for _, reg := range sortedRegions(r.Services.KVReads) {
		c += book.DynamoCost(reg, r.Services.KVReads[reg], 0)
	}
	for _, reg := range sortedRegions(r.Services.KVWrites) {
		c += book.DynamoCost(reg, 0, r.Services.KVWrites[reg])
	}
	for _, t := range r.Transfers {
		c += book.EgressCost(t.From, t.To, t.Bytes)
	}
	return c
}

// sortedRegions returns m's keys in sorted order.
func sortedRegions(m map[region.ID]int) []region.ID {
	out := make([]region.ID, 0, len(m))
	for reg := range m {
		out = append(out, reg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CarbonGrams accounts operational carbon under the given transmission
// model: execution carbon per Eq 7.1-7.4 at the grid intensity in effect
// when each execution ran, and transmission carbon per Eq 7.5 for every
// transfer. It returns execution and transmission components separately
// (Fig 8 plots their ratio).
func (r *InvocationRecord) CarbonGrams(src carbon.Source, cat *region.Catalogue, tx carbon.TransmissionModel) (execG, txG float64, err error) {
	zone := func(id region.ID) (string, error) {
		reg, ok := cat.Get(id)
		if !ok {
			return "", fmt.Errorf("platform: unknown region %q in record", id)
		}
		return reg.GridZone, nil
	}
	for _, e := range r.Executions {
		z, zerr := zone(e.Region)
		if zerr != nil {
			return 0, 0, zerr
		}
		intensity, ierr := src.At(z, e.Start)
		if ierr != nil {
			return 0, 0, ierr
		}
		execG += carbon.ExecutionCarbon(intensity, e.MemoryMB, e.DurationSec, e.CPUUtil)
	}
	for _, t := range r.Transfers {
		zf, zerr := zone(t.From)
		if zerr != nil {
			return 0, 0, zerr
		}
		zt, zerr := zone(t.To)
		if zerr != nil {
			return 0, 0, zerr
		}
		fi, ierr := src.At(zf, t.At)
		if ierr != nil {
			return 0, 0, ierr
		}
		ti, ierr := src.At(zt, t.At)
		if ierr != nil {
			return 0, 0, ierr
		}
		txG += tx.Carbon(fi, ti, t.From == t.To, t.Bytes)
	}
	return execG, txG, nil
}

// TotalBytes sums transferred bytes, optionally filtered to inter-region
// movements only.
func (r *InvocationRecord) TotalBytes(interOnly bool) float64 {
	var sum float64
	for _, t := range r.Transfers {
		if interOnly && t.From == t.To {
			continue
		}
		sum += t.Bytes
	}
	return sum
}

// RegionsUsed returns the distinct regions that executed stages.
func (r *InvocationRecord) RegionsUsed() []region.ID {
	set := map[region.ID]bool{}
	for _, e := range r.Executions {
		set[e.Region] = true
	}
	out := make([]region.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
