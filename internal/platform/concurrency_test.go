package platform

import (
	"testing"

	"caribou/internal/netmodel"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/telemetry"
)

func newLimitedPlatform(t *testing.T, capacity int) *Platform {
	t.Helper()
	sched := simclock.New(t0)
	cat := region.NorthAmerica()
	p, err := New(Options{Sched: sched, Catalogue: cat, Net: netmodel.New(cat), Seed: 1, RegionConcurrency: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLimiterSaturation drives a region past its concurrency cap and
// checks the bookkeeping: peak saturates at the cap, every acquisition
// beyond it counts as queued, and nothing queued runs until a slot frees.
func TestLimiterSaturation(t *testing.T) {
	const capacity = 2
	p := newLimitedPlatform(t, capacity)
	r := region.USEast1

	started := 0
	for i := 0; i < 5; i++ {
		p.AcquireExecutionSlot(r, func() { started++ })
	}
	if started != capacity {
		t.Errorf("started = %d, want %d (cap)", started, capacity)
	}
	peak, queued := p.ConcurrencyStats(r)
	if peak != capacity {
		t.Errorf("peak = %d, want %d", peak, capacity)
	}
	if queued != 3 {
		t.Errorf("queued = %d, want 3", queued)
	}

	// Each release hands its slot to exactly one queued execution.
	for i := 0; i < 3; i++ {
		p.ReleaseExecutionSlot(r)
		if want := capacity + 1 + i; started != want {
			t.Errorf("after release %d: started = %d, want %d", i+1, started, want)
		}
	}
	// Queue drained: further releases just free slots.
	p.ReleaseExecutionSlot(r)
	p.ReleaseExecutionSlot(r)
	p.AcquireExecutionSlot(r, func() { started++ })
	if started != 6 {
		t.Errorf("post-drain acquire did not run immediately: started = %d", started)
	}
	if peak, _ := p.ConcurrencyStats(r); peak != capacity {
		t.Errorf("peak moved to %d after drain, want %d", peak, capacity)
	}
}

// TestLimiterFIFOWakeupOrder pins the queue discipline: executions
// blocked on a saturated region start in submission order as slots free.
func TestLimiterFIFOWakeupOrder(t *testing.T) {
	p := newLimitedPlatform(t, 1)
	r := region.USWest2

	var order []int
	p.AcquireExecutionSlot(r, func() {}) // holds the only slot
	for i := 0; i < 4; i++ {
		i := i
		p.AcquireExecutionSlot(r, func() { order = append(order, i) })
	}
	if len(order) != 0 {
		t.Fatalf("queued executions ran while saturated: %v", order)
	}
	for i := 0; i < 4; i++ {
		p.ReleaseExecutionSlot(r)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("wakeup order = %v, want FIFO", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("only %d of 4 queued executions ran", len(order))
	}
}

// TestLimiterTelemetryCounters checks the instrument view of saturation:
// the peak gauge and queued counter mirror ConcurrencyStats, and each
// queueing emits a flight-recorder event stamped with simulated time.
func TestLimiterTelemetryCounters(t *testing.T) {
	rec := telemetry.Enable(telemetry.Options{})
	defer telemetry.Disable()
	p := newLimitedPlatform(t, 1)
	r := region.CACentral1

	p.AcquireExecutionSlot(r, func() {})
	p.AcquireExecutionSlot(r, func() {})
	p.AcquireExecutionSlot(r, func() {})

	if got := rec.Gauge("platform.limiter.peak").Value(); got != 1 {
		t.Errorf("peak gauge = %d, want 1", got)
	}
	if got := rec.Counter("platform.limiter.queued").Value(); got != 2 {
		t.Errorf("queued counter = %d, want 2", got)
	}
	events := 0
	for _, rc := range rec.Records() {
		if rc.Name == "platform.limiter.queued" {
			events++
			if rc.Attrs["sim"] == "" {
				t.Error("queue event missing simulated-time stamp")
			}
		}
	}
	if events != 2 {
		t.Errorf("flight recorder has %d queue events, want 2", events)
	}
}
