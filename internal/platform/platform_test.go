package platform

import (
	"math"
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/netmodel"
	"caribou/internal/pricing"
	"caribou/internal/pubsub"
	"caribou/internal/region"
	"caribou/internal/simclock"
)

var t0 = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

func newPlatform(t *testing.T) (*simclock.Scheduler, *Platform) {
	t.Helper()
	sched := simclock.New(t0)
	cat := region.NorthAmerica()
	p, err := New(Options{Sched: sched, Catalogue: cat, Net: netmodel.New(cat), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sched, p
}

func TestNewRequiresDependencies(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("want error for missing dependencies")
	}
}

func TestImageRegistry(t *testing.T) {
	_, p := newPlatform(t)
	if p.HasImage("wf", region.USEast1) {
		t.Error("image should not exist")
	}
	if err := p.PushImage("wf", 300e6, region.USEast1); err != nil {
		t.Fatal(err)
	}
	if !p.HasImage("wf", region.USEast1) {
		t.Error("push did not register image")
	}
	if err := p.PushImage("wf", 300e6, "aws:nowhere"); err == nil {
		t.Error("want error for unknown region")
	}

	// Copy replicates without rebuild.
	d, bytes, err := p.CopyImage("wf", region.USEast1, region.CACentral1)
	if err != nil {
		t.Fatal(err)
	}
	if bytes != 300e6 || d <= 0 {
		t.Errorf("copy bytes=%v dur=%v", bytes, d)
	}
	if !p.HasImage("wf", region.CACentral1) {
		t.Error("copy did not register image")
	}
	// Second copy is free.
	d, bytes, err = p.CopyImage("wf", region.USEast1, region.CACentral1)
	if err != nil || d != 0 || bytes != 0 {
		t.Errorf("re-copy d=%v bytes=%v err=%v", d, bytes, err)
	}
	if _, _, err := p.CopyImage("missing", region.USEast1, region.USWest2); err == nil {
		t.Error("want error when source image missing")
	}
	p.DropImage("wf", region.CACentral1)
	if p.HasImage("wf", region.CACentral1) {
		t.Error("drop failed")
	}
}

func TestDeployRequiresImageAndRole(t *testing.T) {
	_, p := newPlatform(t)
	ref := FunctionRef{Workflow: "wf", Node: "n", Region: region.USEast1}
	if err := p.DeployFunction(ref, func(pubsub.Message) error { return nil }); err == nil {
		t.Error("want error without image")
	}
	if err := p.PushImage("wf", 1e6, region.USEast1); err != nil {
		t.Fatal(err)
	}
	if err := p.DeployFunction(ref, func(pubsub.Message) error { return nil }); err == nil {
		t.Error("want error without IAM role")
	}
	if err := p.EnsureRole("wf", "aws:nowhere"); err == nil {
		t.Error("want error for unknown role region")
	}
	if err := p.EnsureRole("wf", region.USEast1); err != nil {
		t.Fatal(err)
	}
	if !p.HasRole("wf", region.USEast1) {
		t.Error("role not recorded")
	}
	if err := p.DeployFunction(ref, func(pubsub.Message) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if !p.IsDeployed(ref) {
		t.Error("deployment not registered")
	}
	if refs := p.Deployments("wf"); len(refs) != 1 || refs[0] != ref {
		t.Errorf("deployments = %v", refs)
	}
	p.RemoveFunction(ref)
	if p.IsDeployed(ref) {
		t.Error("removal failed")
	}
}

func TestColdStartLifecycle(t *testing.T) {
	sched, p := newPlatform(t)
	if err := p.PushImage("wf", 500e6, region.USEast1); err != nil {
		t.Fatal(err)
	}
	if err := p.EnsureRole("wf", region.USEast1); err != nil {
		t.Fatal(err)
	}
	ref := FunctionRef{Workflow: "wf", Node: "n", Region: region.USEast1}
	if err := p.DeployFunction(ref, func(pubsub.Message) error { return nil }); err != nil {
		t.Fatal(err)
	}
	first := p.ColdStartPenalty(ref, 500e6)
	if first <= 0 {
		t.Error("first invocation should be cold")
	}
	warm := p.ColdStartPenalty(ref, 500e6)
	if warm != 0 {
		t.Errorf("immediate second invocation cold: %v", warm)
	}
	// After a long idle period the environment is reclaimed.
	sched.After(2*time.Hour, func() {})
	sched.Run()
	again := p.ColdStartPenalty(ref, 500e6)
	if again <= 0 {
		t.Error("post-idle invocation should be cold")
	}
	// Unknown deployment: no penalty bookkeeping.
	if p.ColdStartPenalty(FunctionRef{Workflow: "x", Node: "y", Region: region.USEast1}, 1e6) != 0 {
		t.Error("unknown deployment should report 0")
	}
}

func TestMessageLatencyIncludesOverheadAndDistance(t *testing.T) {
	_, p := newPlatform(t)
	intra := p.MessageLatency(region.USEast1, region.USEast1, 1e3)
	if intra < SNSPublishOverhead/2 {
		t.Errorf("intra latency %v below publish overhead", intra)
	}
	inter := p.MessageLatency(region.USEast1, region.USWest1, 1e3)
	if inter <= intra {
		t.Errorf("inter (%v) should exceed intra (%v)", inter, intra)
	}
}

func TestKVAccessLatency(t *testing.T) {
	_, p := newPlatform(t)
	local := p.KVAccessLatency(region.USEast1, region.USEast1)
	remote := p.KVAccessLatency(region.USWest1, region.USEast1)
	if local < KVAccessOverhead || remote <= local {
		t.Errorf("local=%v remote=%v", local, remote)
	}
}

func TestPublishThroughPlatform(t *testing.T) {
	sched, p := newPlatform(t)
	got := false
	p.Broker().Subscribe("topic", func(pubsub.Message) error {
		got = true
		return nil
	})
	if err := p.Publish("topic", []byte("x"), 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if !got {
		t.Error("message not delivered")
	}
}

// --- InvocationRecord accounting ---

func sampleRecord() *InvocationRecord {
	r := NewInvocationRecord("wf", 1, "small")
	r.Start = t0
	r.End = t0.Add(10 * time.Second)
	r.Executions = []ExecutionEvent{
		{Node: "a", Region: region.USEast1, Start: t0, DurationSec: 5, MemoryMB: 1769, CPUUtil: 0.8},
		{Node: "b", Region: region.CACentral1, Start: t0.Add(5 * time.Second), DurationSec: 3, MemoryMB: 1024, CPUUtil: 0.6},
	}
	r.Transfers = []TransferEvent{
		{Kind: TransferPayload, From: region.USEast1, To: region.CACentral1, FromNode: "a", ToNode: "b", Bytes: 1e6, At: t0.Add(5 * time.Second)},
		{Kind: TransferOutput, From: region.CACentral1, To: region.USEast1, FromNode: "b", Bytes: 2e6, At: t0.Add(8 * time.Second)},
	}
	r.Services.SNSPublishes[region.USEast1] = 2
	r.Services.KVReads[region.USEast1] = 1
	r.Services.KVWrites[region.USEast1] = 3
	r.Succeeded = true
	return r
}

func TestRecordCostAccounting(t *testing.T) {
	book := pricing.DefaultBook()
	r := sampleRecord()
	got := r.CostUSD(book)
	want := book.ExecutionCost(region.USEast1, 1769, 5) +
		book.ExecutionCost(region.CACentral1, 1024, 3) +
		book.SNSCost(region.USEast1, 2) +
		book.DynamoCost(region.USEast1, 1, 3) +
		book.EgressCost(region.USEast1, region.CACentral1, 1e6) +
		book.EgressCost(region.CACentral1, region.USEast1, 2e6)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

func TestRecordCarbonAccounting(t *testing.T) {
	src, err := carbon.NewSyntheticSource(1, t0, t0.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cat := region.NorthAmerica()
	r := sampleRecord()

	execG, txG, err := r.CarbonGrams(src, cat, carbon.BestCase())
	if err != nil {
		t.Fatal(err)
	}
	if execG <= 0 || txG <= 0 {
		t.Errorf("execG=%v txG=%v", execG, txG)
	}

	// Worst case charges inter-region transfers 5x and intra free;
	// both transfers here are inter-region.
	_, txWorst, err := r.CarbonGrams(src, cat, carbon.WorstCase())
	if err != nil {
		t.Fatal(err)
	}
	if ratio := txWorst / txG; math.Abs(ratio-5) > 1e-9 {
		t.Errorf("worst/best tx ratio = %v, want 5", ratio)
	}

	// Unknown region in record surfaces an error.
	bad := sampleRecord()
	bad.Executions[0].Region = "aws:nowhere"
	if _, _, err := bad.CarbonGrams(src, cat, carbon.BestCase()); err == nil {
		t.Error("want error for unknown region")
	}
}

func TestRecordHelpers(t *testing.T) {
	r := sampleRecord()
	if r.ServiceTime() != 10*time.Second {
		t.Errorf("service time = %v", r.ServiceTime())
	}
	if got := r.TotalBytes(false); got != 3e6 {
		t.Errorf("total bytes = %v", got)
	}
	if got := r.TotalBytes(true); got != 3e6 {
		t.Errorf("inter-only bytes = %v", got)
	}
	regions := r.RegionsUsed()
	if len(regions) != 2 {
		t.Errorf("regions = %v", regions)
	}
}

func TestFunctionRefTopic(t *testing.T) {
	ref := FunctionRef{Workflow: "wf", Node: dag.NodeID("stage"), Region: region.USWest2}
	if got := ref.Topic(); got != "wf/stage/aws:us-west-2" {
		t.Errorf("topic = %q", got)
	}
}

func TestTransferKindString(t *testing.T) {
	kinds := []TransferKind{TransferPayload, TransferKVData, TransferEntry, TransferOutput, TransferImage, TransferControl}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d string %q duplicated or empty", k, s)
		}
		seen[s] = true
	}
	if TransferKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
