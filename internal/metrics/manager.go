// Package metrics implements the Metric Manager (§7): it aggregates
// invocation logs under a 30-day / 5,000-invocation sliding window with
// selective forgetting, learns per-node execution-time and per-edge
// payload-size distributions, tracks conditional-edge frequencies, gathers
// external data (grid carbon intensity, prices, network latency), and
// refits carbon forecasts daily. It exposes everything the Monte Carlo
// estimator and the Deployment Solver consume.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/forecast"
	"caribou/internal/netmodel"
	"caribou/internal/platform"
	"caribou/internal/pricing"
	"caribou/internal/region"
	"caribou/internal/stats"
)

// Window limits of §7.2.
const (
	MaxRecords = 5000
	MaxAge     = 30 * 24 * time.Hour
)

// Manager aggregates metrics for one workflow.
type Manager struct {
	d    *dag.DAG
	home region.ID
	cat  *region.Catalogue
	net  *netmodel.Model
	src  carbon.Source
	book *pricing.Book

	records []*platform.InvocationRecord // window, oldest first

	exec      map[execKey]*stats.Distribution // duration seconds
	util      map[dag.NodeID]*welford
	edgeBytes map[edgeKey]*stats.Distribution
	edgeSeen  map[edgeKey]*edgeFreq
	entry     *stats.Distribution
	output    map[dag.NodeID]*stats.Distribution
	memory    map[dag.NodeID]float64

	forecasters map[string]*forecast.Model // grid zone -> model
	forecastAt  time.Time                  // trained-through time
}

type execKey struct {
	Node   dag.NodeID
	Region region.ID
}

type edgeKey struct{ From, To dag.NodeID }

type edgeFreq struct{ taken, seen int }

type welford struct {
	n    int
	mean float64
}

func (w *welford) add(x float64) {
	w.n++
	w.mean += (x - w.mean) / float64(w.n)
}

// New returns a Metric Manager for the workflow DAG with the given
// external data sources.
func New(d *dag.DAG, home region.ID, cat *region.Catalogue, net *netmodel.Model, src carbon.Source, book *pricing.Book) *Manager {
	return &Manager{
		d: d, home: home, cat: cat, net: net, src: src, book: book,
		exec:        make(map[execKey]*stats.Distribution),
		util:        make(map[dag.NodeID]*welford),
		edgeBytes:   make(map[edgeKey]*stats.Distribution),
		edgeSeen:    make(map[edgeKey]*edgeFreq),
		entry:       stats.NewDistribution(0),
		output:      make(map[dag.NodeID]*stats.Distribution),
		memory:      make(map[dag.NodeID]float64),
		forecasters: make(map[string]*forecast.Model),
	}
}

// Ingest absorbs one finished invocation record into the window and the
// learned distributions, then enforces the window limits.
func (m *Manager) Ingest(rec *platform.InvocationRecord) {
	if rec == nil || rec.Workflow != m.d.Name() {
		return
	}
	m.records = append(m.records, rec)

	executed := map[dag.NodeID]bool{}
	for _, e := range rec.Executions {
		k := execKey{e.Node, e.Region}
		dist, ok := m.exec[k]
		if !ok {
			dist = stats.NewDistribution(0)
			m.exec[k] = dist
		}
		// Latency learning includes cold-start initialization so the
		// estimator's tail predictions are realistic; cost and carbon
		// accounting use the billed duration only.
		dist.Add(e.DurationSec + e.InitSec)
		u, ok := m.util[e.Node]
		if !ok {
			u = &welford{}
			m.util[e.Node] = u
		}
		u.add(e.CPUUtil)
		m.memory[e.Node] = e.MemoryMB
		executed[e.Node] = true
	}

	for _, t := range rec.Transfers {
		switch t.Kind {
		case platform.TransferPayload, platform.TransferKVData:
			if t.FromNode != "" && t.ToNode != "" {
				k := edgeKey{t.FromNode, t.ToNode}
				dist, ok := m.edgeBytes[k]
				if !ok {
					dist = stats.NewDistribution(0)
					m.edgeBytes[k] = dist
				}
				dist.Add(t.Bytes)
			}
		case platform.TransferEntry:
			m.entry.Add(t.Bytes)
		case platform.TransferOutput:
			if t.FromNode != "" {
				dist, ok := m.output[t.FromNode]
				if !ok {
					dist = stats.NewDistribution(0)
					m.output[t.FromNode] = dist
				}
				dist.Add(t.Bytes)
			}
		}
	}

	// Conditional edge frequencies: an edge counts as seen when its
	// source node executed, taken when its target also executed (for
	// conditional edges this captures the trigger outcome).
	for _, e := range m.d.Edges() {
		if !executed[e.From] {
			continue
		}
		f, ok := m.edgeSeen[edgeKey{e.From, e.To}]
		if !ok {
			f = &edgeFreq{}
			m.edgeSeen[edgeKey{e.From, e.To}] = f
		}
		f.seen++
		if executed[e.To] {
			f.taken++
		}
	}

	m.forget(rec.End)
}

// forget enforces the sliding window: records older than 30 days always
// drop; beyond 5,000 records the oldest drop first, except records that
// still carry DAG information (a node-region execution pair) no newer
// record has — those are retained, the selective forgetting of §7.2.
func (m *Manager) forget(now time.Time) {
	cutoff := now.Add(-MaxAge)
	kept := m.records[:0]
	for _, r := range m.records {
		if r.End.After(cutoff) {
			kept = append(kept, r)
		}
	}
	m.records = kept
	if len(m.records) <= MaxRecords {
		return
	}
	// Count how many records carry each node-region pair.
	coverage := map[execKey]int{}
	for _, r := range m.records {
		for _, e := range r.Executions {
			coverage[execKey{e.Node, e.Region}]++
		}
	}
	excess := len(m.records) - MaxRecords
	kept = m.records[:0]
	for _, r := range m.records {
		if excess > 0 && !uniqueInfo(r, coverage) {
			for _, e := range r.Executions {
				coverage[execKey{e.Node, e.Region}]--
			}
			excess--
			continue
		}
		kept = append(kept, r)
	}
	m.records = kept
}

func uniqueInfo(r *platform.InvocationRecord, coverage map[execKey]int) bool {
	for _, e := range r.Executions {
		if coverage[execKey{e.Node, e.Region}] <= 1 {
			return true
		}
	}
	return false
}

// WindowSize reports the number of retained records.
func (m *Manager) WindowSize() int { return len(m.records) }

// InvocationsSince counts retained invocations that ended after t.
func (m *Manager) InvocationsSince(t time.Time) int {
	n := 0
	for _, r := range m.records {
		if r.End.After(t) {
			n++
		}
	}
	return n
}

// MeanRuntimeSince returns the mean total execution seconds (summed over
// stages) of invocations ending after t; used by the token accrual of
// §5.2 ("functions with higher invocation counts and longer runtimes
// accumulate more tokens").
func (m *Manager) MeanRuntimeSince(t time.Time) float64 {
	var sum float64
	n := 0
	for _, r := range m.records {
		if !r.End.After(t) {
			continue
		}
		for _, e := range r.Executions {
			sum += e.DurationSec
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Records returns the retained window (oldest first). The slice is shared;
// callers must not mutate it.
func (m *Manager) Records() []*platform.InvocationRecord { return m.records }

// HasExecData reports whether any execution has been observed for node in
// the region.
func (m *Manager) HasExecData(node dag.NodeID, r region.ID) bool {
	d, ok := m.exec[execKey{node, r}]
	return ok && d.Len() > 0
}

// zoneOf resolves a region's grid zone.
func (m *Manager) zoneOf(r region.ID) (string, error) {
	reg, ok := m.cat.Get(r)
	if !ok {
		return "", fmt.Errorf("metrics: unknown region %q", r)
	}
	return reg.GridZone, nil
}

// Regions returns the catalogue's region IDs sorted, a convenience for
// solvers.
func (m *Manager) Regions() []region.ID {
	ids := m.cat.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
