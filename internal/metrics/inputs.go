package metrics

import (
	"fmt"
	"time"

	"caribou/internal/dag"
	"caribou/internal/forecast"
	"caribou/internal/platform"
	"caribou/internal/pricing"
	"caribou/internal/region"
	"caribou/internal/stats"
)

// This file exposes the Metric Manager as the model-input provider for the
// Monte Carlo estimator and the Deployment Solver (§7.1): execution-time
// distributions with home-region fallback, edge payload distributions,
// conditional-edge probabilities, transmission latencies with a
// CloudPing-style fallback, and actual-or-forecast carbon intensities.

// ExecDuration returns the empirical execution-time distribution of node
// in r. When no observations for r exist, it falls back to the home
// region's distribution, exactly as the paper's Metric Manager does for
// new regions. An error is returned when not even home data exists.
func (m *Manager) ExecDuration(node dag.NodeID, r region.ID) (*stats.Distribution, error) {
	if d, ok := m.exec[execKey{node, r}]; ok && d.Len() > 0 {
		return d, nil
	}
	if d, ok := m.exec[execKey{node, m.home}]; ok && d.Len() > 0 {
		return d, nil
	}
	return nil, fmt.Errorf("metrics: no execution data for node %q (home %s)", node, m.home)
}

// CPUUtil returns the observed mean vCPU utilization of node (0.7 when
// unobserved, a neutral default).
func (m *Manager) CPUUtil(node dag.NodeID) float64 {
	if u, ok := m.util[node]; ok && u.n > 0 {
		return u.mean
	}
	return 0.7
}

// MemoryMB returns the configured memory observed for node, falling back
// to the DAG declaration.
func (m *Manager) MemoryMB(node dag.NodeID) float64 {
	if mem, ok := m.memory[node]; ok {
		return mem
	}
	if n, ok := m.d.Node(node); ok {
		return n.MemoryMB
	}
	return 1769
}

// EdgeBytes returns the observed payload-size distribution of the edge, or
// nil when never observed (zero-byte edges).
func (m *Manager) EdgeBytes(from, to dag.NodeID) *stats.Distribution {
	if d, ok := m.edgeBytes[edgeKey{from, to}]; ok && d.Len() > 0 {
		return d
	}
	return nil
}

// EntryBytes returns the observed entry payload distribution.
func (m *Manager) EntryBytes() *stats.Distribution { return m.entry }

// OutputBytes returns the observed terminal write-back distribution for
// node, or nil.
func (m *Manager) OutputBytes(node dag.NodeID) *stats.Distribution {
	if d, ok := m.output[node]; ok && d.Len() > 0 {
		return d
	}
	return nil
}

// EdgeProbability returns the observed trigger frequency of the edge; the
// static declaration is the prior when unobserved.
func (m *Manager) EdgeProbability(e dag.Edge) float64 {
	if !e.Conditional {
		return 1
	}
	if f, ok := m.edgeSeen[edgeKey{e.From, e.To}]; ok && f.seen >= 20 {
		return float64(f.taken) / float64(f.seen)
	}
	return e.Probability
}

// TransferSeconds returns the modeled one-way transfer time for a payload
// between two regions (the CloudPing-style fallback; observed timings
// would refine this in a live deployment).
func (m *Manager) TransferSeconds(from, to region.ID, bytes float64) float64 {
	d, err := m.net.TransferTime(from, to, bytes)
	if err != nil {
		return 0.1
	}
	return d.Seconds()
}

// MessageOverheadSeconds is the provider-side pub/sub delivery overhead
// applied per inter-stage message.
func (m *Manager) MessageOverheadSeconds() float64 {
	return platform.SNSPublishOverhead.Seconds()
}

// KVAccessSeconds returns the modeled latency of one KV request from a
// region against the workflow's home table.
func (m *Manager) KVAccessSeconds(from region.ID) float64 {
	return m.net.MustRTTSeconds(from, m.home) + platform.KVAccessOverhead.Seconds()
}

// CostBook exposes the price book.
func (m *Manager) CostBook() *pricing.Book { return m.book }

// Home returns the workflow's home region.
func (m *Manager) Home() region.ID { return m.home }

// DAG returns the workflow graph.
func (m *Manager) DAG() *dag.DAG { return m.d }

// Catalogue returns the region catalogue.
func (m *Manager) Catalogue() *region.Catalogue { return m.cat }

// RefreshForecasts refits the Holt-Winters carbon forecasters using the
// hourly intensities of the week preceding now (§7.2: once a day, previous
// week as input).
func (m *Manager) RefreshForecasts(now time.Time) error {
	end := now.UTC().Truncate(time.Hour)
	start := end.Add(-7 * 24 * time.Hour)
	type hourly interface {
		Hourly(zone string, from, to time.Time) ([]float64, error)
	}
	h, ok := m.src.(hourly)
	if !ok {
		return fmt.Errorf("metrics: carbon source does not expose hourly history")
	}
	zones := map[string]bool{}
	for _, id := range m.cat.IDs() {
		r, _ := m.cat.Get(id)
		zones[r.GridZone] = true
	}
	for z := range zones {
		series, err := h.Hourly(z, start, end)
		if err != nil {
			return fmt.Errorf("metrics: history for %s: %w", z, err)
		}
		model, err := forecast.Fit(series, 24)
		if err != nil {
			return fmt.Errorf("metrics: fit %s: %w", z, err)
		}
		m.forecasters[z] = model
	}
	m.forecastAt = end
	return nil
}

// IntensityAt returns the grid intensity for region r at t: measured data
// for past instants, the Holt-Winters forecast for future ones. With no
// fitted forecaster it falls back to the most recent measured hour.
func (m *Manager) IntensityAt(r region.ID, t time.Time, now time.Time) (float64, error) {
	zone, err := m.zoneOf(r)
	if err != nil {
		return 0, err
	}
	if !t.After(now) {
		return m.src.At(zone, t)
	}
	if f, ok := m.forecasters[zone]; ok && !m.forecastAt.IsZero() {
		h := int(t.Sub(m.forecastAt)/time.Hour) + 1
		if h < 1 {
			h = 1
		}
		v := f.Forecast(h)
		if v < 0 {
			v = 0
		}
		return v, nil
	}
	// Fallback: persistence from the current hour.
	return m.src.At(zone, now)
}

// IntensitySeries resolves IntensityAt for a batch of solve instants with
// one zone lookup. Snapshot compilation (montecarlo.Compile) detects this
// method and uses it to pre-resolve the per-(hour, region) intensity table
// for a whole 24-hour solve window in one call per region.
func (m *Manager) IntensitySeries(r region.ID, hours []time.Time, now time.Time) ([]float64, error) {
	if _, err := m.zoneOf(r); err != nil {
		return nil, err
	}
	out := make([]float64, len(hours))
	for i, t := range hours {
		v, err := m.IntensityAt(r, t, now)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ForecastMAPE evaluates forecast quality: it refits on the week before
// trainEnd and scores horizon hours of forecasts against actuals,
// returning the mean absolute percentage error (Fig 13b's metric).
func (m *Manager) ForecastMAPE(r region.ID, trainEnd time.Time, horizon int) (float64, error) {
	zone, err := m.zoneOf(r)
	if err != nil {
		return 0, err
	}
	type hourly interface {
		Hourly(zone string, from, to time.Time) ([]float64, error)
	}
	h, ok := m.src.(hourly)
	if !ok {
		return 0, fmt.Errorf("metrics: carbon source does not expose hourly history")
	}
	end := trainEnd.UTC().Truncate(time.Hour)
	train, err := h.Hourly(zone, end.Add(-7*24*time.Hour), end)
	if err != nil {
		return 0, err
	}
	model, err := forecast.Fit(train, 24)
	if err != nil {
		return 0, err
	}
	actual, err := h.Hourly(zone, end, end.Add(time.Duration(horizon)*time.Hour))
	if err != nil {
		return 0, err
	}
	pred := model.ForecastRange(len(actual))
	return stats.MAPE(actual, pred)
}
