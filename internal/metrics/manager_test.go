package metrics

import (
	"fmt"
	"math"
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/netmodel"
	"caribou/internal/platform"
	"caribou/internal/pricing"
	"caribou/internal/region"
	"caribou/internal/workloads"
)

var t0 = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

func newManager(t *testing.T) (*Manager, *carbon.SyntheticSource) {
	t.Helper()
	wl := workloads.Text2SpeechCensoring()
	cat, err := region.NorthAmerica().Subset(region.EvaluationFour())
	if err != nil {
		t.Fatal(err)
	}
	src, err := carbon.NewSyntheticSource(1, t0.Add(-8*24*time.Hour), t0.Add(8*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	return New(wl.DAG, region.USEast1, cat, netmodel.New(cat), src, pricing.DefaultBook()), src
}

// record fabricates an invocation record with one execution per listed
// node at the given region, plus a payload transfer for every DAG edge
// between executed nodes.
func record(id uint64, end time.Time, r region.ID, nodes ...dag.NodeID) *platform.InvocationRecord {
	rec := platform.NewInvocationRecord("text2speech-censoring", id, "small")
	rec.Start = end.Add(-10 * time.Second)
	rec.End = end
	for i, n := range nodes {
		rec.Executions = append(rec.Executions, platform.ExecutionEvent{
			Node: n, Region: r, Start: rec.Start.Add(time.Duration(i) * time.Second),
			DurationSec: 2 + float64(i), MemoryMB: 1024, CPUUtil: 0.7,
		})
	}
	rec.Succeeded = true
	return rec
}

func allNodes() []dag.NodeID {
	return []dag.NodeID{"validate", "text2speech", "conversion", "profanity", "censor", "compress"}
}

func TestIngestBuildsDistributions(t *testing.T) {
	m, _ := newManager(t)
	for i := 0; i < 10; i++ {
		m.Ingest(record(uint64(i), t0.Add(time.Duration(i)*time.Minute), region.USEast1, allNodes()...))
	}
	if m.WindowSize() != 10 {
		t.Fatalf("window = %d", m.WindowSize())
	}
	d, err := m.ExecDuration("validate", region.USEast1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 {
		t.Errorf("validate samples = %d", d.Len())
	}
	if !m.HasExecData("validate", region.USEast1) {
		t.Error("HasExecData false")
	}
	if m.HasExecData("validate", region.CACentral1) {
		t.Error("HasExecData true for unobserved region")
	}
	if u := m.CPUUtil("validate"); math.Abs(u-0.7) > 1e-9 {
		t.Errorf("util = %v", u)
	}
	if mem := m.MemoryMB("validate"); mem != 1024 {
		t.Errorf("memory = %v", mem)
	}
}

func TestExecDurationHomeFallback(t *testing.T) {
	m, _ := newManager(t)
	m.Ingest(record(1, t0, region.USEast1, allNodes()...))
	home, err := m.ExecDuration("validate", region.USEast1)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := m.ExecDuration("validate", region.CACentral1)
	if err != nil {
		t.Fatal(err)
	}
	if remote != home {
		t.Error("unobserved region should fall back to the home distribution")
	}
	if _, err := m.ExecDuration("nonexistent", region.USEast1); err == nil {
		t.Error("want error when not even home data exists")
	}
}

func TestDefaultsWithoutObservations(t *testing.T) {
	m, _ := newManager(t)
	if u := m.CPUUtil("validate"); u != 0.7 {
		t.Errorf("default util = %v", u)
	}
	// DAG declaration supplies memory before any observation.
	if mem := m.MemoryMB("validate"); mem != 512 {
		t.Errorf("declared memory = %v", mem)
	}
	if mem := m.MemoryMB("unknown-node"); mem != 1769 {
		t.Errorf("fallback memory = %v", mem)
	}
}

func TestEdgeProbabilityLearning(t *testing.T) {
	m, _ := newManager(t)
	var condEdge dag.Edge
	for _, e := range m.DAG().Edges() {
		if e.Conditional {
			condEdge = e
		}
	}
	if condEdge.From == "" {
		t.Fatal("no conditional edge in workload")
	}
	// Before enough data: static prior.
	if p := m.EdgeProbability(condEdge); p != condEdge.Probability {
		t.Errorf("prior = %v", p)
	}
	// 30 invocations where censor ran in 24 (p = 0.8).
	for i := 0; i < 24; i++ {
		m.Ingest(record(uint64(i), t0.Add(time.Duration(i)*time.Minute), region.USEast1, allNodes()...))
	}
	for i := 24; i < 30; i++ {
		m.Ingest(record(uint64(i), t0.Add(time.Duration(i)*time.Minute), region.USEast1,
			"validate", "text2speech", "conversion", "profanity", "compress"))
	}
	if p := m.EdgeProbability(condEdge); math.Abs(p-0.8) > 1e-9 {
		t.Errorf("learned probability = %v, want 0.8", p)
	}
	// Unconditional edges are always 1.
	for _, e := range m.DAG().Edges() {
		if !e.Conditional {
			if p := m.EdgeProbability(e); p != 1 {
				t.Errorf("unconditional edge probability = %v", p)
			}
		}
	}
}

func TestWindowAgeEviction(t *testing.T) {
	m, _ := newManager(t)
	m.Ingest(record(1, t0, region.USEast1, "validate"))
	m.Ingest(record(2, t0.Add(31*24*time.Hour), region.USEast1, "validate"))
	if m.WindowSize() != 1 {
		t.Errorf("window = %d after 30-day eviction", m.WindowSize())
	}
}

func TestWindowCapWithSelectiveRetention(t *testing.T) {
	m, _ := newManager(t)
	// One early record carries unique DAG info: an execution observed in
	// ca-central-1 that no later record repeats.
	unique := record(0, t0, region.CACentral1, "validate")
	m.Ingest(unique)
	for i := 1; i <= MaxRecords+100; i++ {
		m.Ingest(record(uint64(i), t0.Add(time.Duration(i)*time.Second), region.USEast1, "validate"))
	}
	if m.WindowSize() > MaxRecords {
		t.Errorf("window = %d exceeds cap %d", m.WindowSize(), MaxRecords)
	}
	found := false
	for _, r := range m.Records() {
		for _, e := range r.Executions {
			if e.Region == region.CACentral1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("record with unique node-region info was forgotten")
	}
}

func TestInvocationsAndRuntimeSince(t *testing.T) {
	m, _ := newManager(t)
	for i := 0; i < 5; i++ {
		m.Ingest(record(uint64(i), t0.Add(time.Duration(i)*time.Hour), region.USEast1, "validate", "compress"))
	}
	if n := m.InvocationsSince(t0.Add(90 * time.Minute)); n != 3 {
		t.Errorf("invocations since = %d, want 3", n)
	}
	// Each record: validate 2s + compress 3s = 5s.
	if rt := m.MeanRuntimeSince(t0.Add(-time.Hour)); math.Abs(rt-5) > 1e-9 {
		t.Errorf("mean runtime = %v, want 5", rt)
	}
	if rt := m.MeanRuntimeSince(t0.Add(100 * time.Hour)); rt != 0 {
		t.Errorf("empty-period runtime = %v", rt)
	}
}

func TestIgnoresForeignRecords(t *testing.T) {
	m, _ := newManager(t)
	rec := record(1, t0, region.USEast1, "validate")
	rec.Workflow = "other-workflow"
	m.Ingest(rec)
	if m.WindowSize() != 0 {
		t.Error("foreign workflow record ingested")
	}
	m.Ingest(nil)
	if m.WindowSize() != 0 {
		t.Error("nil record ingested")
	}
}

func TestTransferLearning(t *testing.T) {
	m, _ := newManager(t)
	rec := record(1, t0, region.USEast1, "validate", "text2speech")
	rec.Transfers = append(rec.Transfers,
		platform.TransferEvent{Kind: platform.TransferPayload, From: region.USEast1, To: region.USEast1, FromNode: "validate", ToNode: "text2speech", Bytes: 1000, At: t0},
		platform.TransferEvent{Kind: platform.TransferEntry, From: region.USEast1, To: region.USEast1, ToNode: "validate", Bytes: 500, At: t0},
		platform.TransferEvent{Kind: platform.TransferOutput, From: region.USEast1, To: region.USEast1, FromNode: "compress", Bytes: 2000, At: t0},
	)
	m.Ingest(rec)
	if d := m.EdgeBytes("validate", "text2speech"); d == nil || d.Mean() != 1000 {
		t.Errorf("edge bytes = %v", d)
	}
	if d := m.EdgeBytes("validate", "profanity"); d != nil {
		t.Error("unobserved edge should be nil")
	}
	if m.EntryBytes().Mean() != 500 {
		t.Errorf("entry bytes = %v", m.EntryBytes().Mean())
	}
	if d := m.OutputBytes("compress"); d == nil || d.Mean() != 2000 {
		t.Errorf("output bytes = %v", d)
	}
	if d := m.OutputBytes("validate"); d != nil {
		t.Error("unobserved output should be nil")
	}
}

func TestIntensityPastAndForecast(t *testing.T) {
	m, src := newManager(t)
	now := t0.Add(24 * time.Hour)
	past, err := m.IntensityAt(region.USEast1, t0, now)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := src.At("US-MIDA-PJM", t0)
	if past != want {
		t.Errorf("past intensity = %v, want measured %v", past, want)
	}

	// Without a fitted forecaster: persistence fallback.
	fallback, err := m.IntensityAt(region.USEast1, now.Add(5*time.Hour), now)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := src.At("US-MIDA-PJM", now)
	if fallback != cur {
		t.Errorf("fallback = %v, want persistence %v", fallback, cur)
	}

	// With forecasts: a future value that tracks the actual within a
	// loose band.
	if err := m.RefreshForecasts(now); err != nil {
		t.Fatal(err)
	}
	future := now.Add(6 * time.Hour)
	pred, err := m.IntensityAt(region.USEast1, future, now)
	if err != nil {
		t.Fatal(err)
	}
	actual, _ := src.At("US-MIDA-PJM", future)
	if rel := math.Abs(pred-actual) / actual; rel > 0.30 {
		t.Errorf("6h-ahead forecast off by %.0f%%", rel*100)
	}
}

func TestForecastMAPEReasonable(t *testing.T) {
	m, _ := newManager(t)
	mape, err := m.ForecastMAPE(region.CACentral1, t0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if mape <= 0 || mape > 40 {
		t.Errorf("24h MAPE = %.2f%%, want modest positive value", mape)
	}
	long, err := m.ForecastMAPE(region.USWest1, t0, 7*24)
	if err != nil {
		t.Fatal(err)
	}
	if long <= 0 || long > 80 {
		t.Errorf("7d MAPE = %.2f%%", long)
	}
}

func TestKVAndMessageModelAccessors(t *testing.T) {
	m, _ := newManager(t)
	if s := m.KVAccessSeconds(region.USEast1); s <= 0 || s > 0.05 {
		t.Errorf("local KV access = %vs", s)
	}
	if m.KVAccessSeconds(region.USWest1) <= m.KVAccessSeconds(region.USEast1) {
		t.Error("remote KV access should exceed local")
	}
	if m.MessageOverheadSeconds() <= 0 {
		t.Error("message overhead must be positive")
	}
	if m.TransferSeconds(region.USEast1, region.USWest1, 1e6) <= 0 {
		t.Error("transfer seconds must be positive")
	}
	if m.CostBook() == nil || m.Catalogue() == nil || m.DAG() == nil {
		t.Error("nil accessors")
	}
	if m.Home() != region.USEast1 {
		t.Errorf("home = %v", m.Home())
	}
	if len(m.Regions()) != 4 {
		t.Errorf("regions = %v", m.Regions())
	}
}

func TestRefreshForecastsAllZones(t *testing.T) {
	m, _ := newManager(t)
	if err := m.RefreshForecasts(t0.Add(24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(m.forecasters) < 4 {
		t.Errorf("forecasters for %d zones", len(m.forecasters))
	}
}

func TestWindowSizeStressMany(t *testing.T) {
	m, _ := newManager(t)
	for i := 0; i < 2*MaxRecords; i++ {
		m.Ingest(record(uint64(i), t0.Add(time.Duration(i)*time.Second), region.USEast1, "validate"))
	}
	if m.WindowSize() > MaxRecords {
		t.Fatalf("window %d over cap", m.WindowSize())
	}
	// Distributions stay bounded too.
	d, err := m.ExecDuration("validate", region.USEast1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() > 2000 {
		t.Errorf("distribution grew unbounded: %d", d.Len())
	}
	_ = fmt.Sprintf("%d", d.Count())
}
