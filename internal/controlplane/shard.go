// shard.go implements the control plane's worker shards. A tenant hashes
// to exactly one shard (FNV(tenant id) mod N), and that shard's single
// worker goroutine owns all mutation of the tenant's planning stack —
// registration, delta ingestion, forced solves — serialized through a
// bounded job queue. The bound is the admission-control surface: a full
// queue rejects immediately (the handler maps that to 429 + Retry-After)
// instead of letting solve backlog grow without limit. Plan queries never
// touch a shard; they read the tenant's atomic snapshot directly.
package controlplane

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"caribou/internal/telemetry"
)

// ErrOverloaded reports a shard queue at capacity; handlers translate it
// to 429 Too Many Requests.
var ErrOverloaded = errors.New("controlplane: shard queue full")

// errClosed reports a submit after Close.
var errClosed = errors.New("controlplane: server closed")

// job is one unit of tenant work executed on the shard worker.
type job struct {
	run  func() error
	done chan error
}

// shard owns a slice of the tenant space.
type shard struct {
	index int
	jobs  chan job
	quit  chan struct{}
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	depth     *telemetry.Gauge
	processed *telemetry.Counter
}

func newShard(index, queueDepth int) *shard {
	rec := telemetry.Default()
	s := &shard{
		index:     index,
		jobs:      make(chan job, queueDepth),
		quit:      make(chan struct{}),
		depth:     rec.Gauge(fmt.Sprintf("controlplane.shard.%d.queue_depth", index)),
		processed: rec.Counter(fmt.Sprintf("controlplane.shard.%d.jobs", index)),
	}
	s.wg.Add(1)
	// controlplane is an approved concurrency package: the shard worker
	// owns its tenants' planning state for the server's lifetime.
	go s.loop()
	return s
}

// loop drains the job queue until Close.
func (s *shard) loop() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.jobs:
			j.done <- j.run()
			s.processed.Inc()
		case <-s.quit:
			// Drain anything enqueued before the close flag was set so
			// no submitter is left waiting.
			for {
				select {
				case j := <-s.jobs:
					j.done <- errClosed
				default:
					return
				}
			}
		}
	}
}

// submit enqueues fn and waits for its result. It fails fast with
// ErrOverloaded when the queue is at capacity — the §6 manager never
// queues unbounded work; excess re-plan pressure is shed to the client.
func (s *shard) submit(fn func() error) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return errClosed
	}
	j := job{run: fn, done: make(chan error, 1)}
	select {
	case s.jobs <- j:
		s.depth.Max(int64(len(s.jobs)))
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		return ErrOverloaded
	}
	return <-j.done
}

// close stops the worker after the current job.
func (s *shard) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
}

// shardFor maps a tenant ID onto one of n shards.
func shardFor(id string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}
