package controlplane

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// scriptedRequests is a fixed request sequence exercising every endpoint
// whose body must be deterministic: registrations across workloads and
// granularities, interleaved trace deltas (including heartbeats and
// out-of-order timestamps), plan queries (current hour and full set),
// and a forced solve.
func scriptedRequests() []struct{ method, path, body string } {
	at := func(h int) string { return DefaultStart.Add(time.Duration(h) * time.Hour).Format(time.RFC3339) }
	return []struct{ method, path, body string }{
		{"POST", "/v1/workflows", `{"id":"alpha","workload":"image-processing"}`},
		{"POST", "/v1/workflows", `{"id":"beta","workload":"text2speech-censoring","granularity":"daily","priority":"cost"}`},
		{"POST", "/v1/workflows", `{"id":"gamma","workload":"dna-visualization","priority":"latency","initial_tokens":0.5}`},
		{"POST", "/v1/workflows/alpha/trace", fmt.Sprintf(`{"at":%q,"invocations":120}`, at(1))},
		{"POST", "/v1/workflows/beta/trace", fmt.Sprintf(`{"at":%q,"invocations":40,"class":"large"}`, at(2))},
		{"POST", "/v1/workflows/gamma/trace", fmt.Sprintf(`{"at":%q,"invocations":300,"mean_runtime_sec":2.5}`, at(3))},
		{"GET", "/v1/workflows/alpha/plan", ""},
		{"POST", "/v1/workflows/alpha/trace", fmt.Sprintf(`{"at":%q,"invocations":0}`, at(8))}, // heartbeat
		{"POST", "/v1/workflows/beta/trace", fmt.Sprintf(`{"at":%q,"invocations":75}`, at(1))}, // out of order
		{"POST", "/v1/workflows/alpha/trace", fmt.Sprintf(`{"at":%q,"invocations":500}`, at(12))},
		{"POST", "/v1/workflows/gamma/solve", ""},
		{"GET", "/v1/workflows/alpha/plan?hours=all", ""},
		{"GET", "/v1/workflows/beta/plan", ""},
		{"GET", "/v1/workflows/gamma/plan", ""},
		{"POST", "/v1/workflows/beta/trace", fmt.Sprintf(`{"at":%q,"invocations":900}`, at(30))},
		{"GET", "/v1/workflows/beta/plan", ""},
		{"POST", "/v1/workflows/gamma/trace", fmt.Sprintf(`{"at":%q,"invocations":250}`, at(16))},
		{"GET", "/v1/workflows/gamma/plan?hours=all", ""},
	}
}

// runScript executes the script against a fresh server with the given
// shard count and returns the concatenated status codes and bodies.
func runScript(t *testing.T, shards int) string {
	t.Helper()
	srv := newTestServer(t, shards)
	var out strings.Builder
	for i, req := range scriptedRequests() {
		w := do(t, srv, req.method, req.path, req.body)
		if w.Code >= 500 {
			t.Fatalf("request %d (%s %s): status %d: %s", i, req.method, req.path, w.Code, w.Body.String())
		}
		fmt.Fprintf(&out, "%d %s %s\n%d\n%s", i, req.method, req.path, w.Code, w.Body.String())
	}
	return out.String()
}

// TestByteReproducibleAcrossRunsAndShardCounts is the integration-level
// determinism guarantee: a SimClock-backed server produces byte-identical
// response bodies for the same request script, across repeated runs and
// across any shard count. Plan content depends only on tenant seeds and
// pushed trace deltas — never on the serving clock, shard placement, or
// scheduling.
func TestByteReproducibleAcrossRunsAndShardCounts(t *testing.T) {
	baseline := runScript(t, 1)
	if repeat := runScript(t, 1); repeat != baseline {
		t.Fatalf("same shard count, different bytes:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", baseline, repeat)
	}
	for _, shards := range []int{2, 8} {
		if got := runScript(t, shards); got != baseline {
			t.Fatalf("shards=%d produced different bytes:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s", shards, baseline, shards, got)
		}
	}
}

// TestScriptExercisesSolves guards the script itself: it must trigger at
// least one streamed re-solve so the determinism assertion covers solver
// output, not just static metadata.
func TestScriptExercisesSolves(t *testing.T) {
	out := runScript(t, 2)
	if !strings.Contains(out, `"solved":true`) {
		t.Error("script never triggered a streamed solve")
	}
	if !strings.Contains(out, `"granularity":"hourly"`) && !strings.Contains(out, `"granularity":"daily"`) {
		t.Error("script responses carry no granularity")
	}
	if !strings.Contains(out, `"hours":[`) {
		t.Error("script never fetched the full 24-plan set")
	}
}

// TestTenantSeedStable pins seed derivation: independent of registration
// order and distinct across IDs.
func TestTenantSeedStable(t *testing.T) {
	if TenantSeed(1, "alpha") != TenantSeed(1, "alpha") {
		t.Error("seed not stable")
	}
	if TenantSeed(1, "alpha") == TenantSeed(1, "beta") {
		t.Error("distinct tenants share a seed")
	}
	if TenantSeed(1, "alpha") == TenantSeed(2, "alpha") {
		t.Error("server seed does not mix in")
	}
}
