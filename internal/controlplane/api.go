// api.go is the HTTP/JSON surface of the control plane. All request and
// response times are RFC 3339 UTC; plan bodies are deterministic (Go's
// encoding/json sorts map keys) so a scripted request sequence against a
// SimClock-backed server is byte-reproducible.
package controlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"caribou/internal/manager"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/telemetry"
	"caribou/internal/workloads"
)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/workflows", s.handleRegister)
	s.mux.HandleFunc("POST /v1/workflows/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/workflows/{id}/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/workflows/{id}/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
}

// writeJSON encodes v with a trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeOverloaded maps admission-control rejection to 429. Retry-After is
// a static hint, not a wall-clock computation.
func (s *Server) writeOverloaded(w http.ResponseWriter) {
	s.rejections.Add(1)
	s.tel.rejections.Inc()
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "shard queue full; retry later")
}

// RegisterRequest is the POST /v1/workflows body.
type RegisterRequest struct {
	// ID names the workflow; empty assigns wf-<n>.
	ID string `json:"id,omitempty"`
	// Workload picks one of the built-in workload profiles.
	Workload string `json:"workload"`
	// Home is the workflow's home region (default aws:us-east-1).
	Home string `json:"home,omitempty"`
	// Regions restricts the candidate set (default: the evaluation
	// four).
	Regions []string `json:"regions,omitempty"`
	// Priority is carbon, cost, or latency (default carbon).
	Priority string `json:"priority,omitempty"`
	// Granularity is hourly or daily (default hourly): the ceiling the
	// token budget may afford, not a guarantee.
	Granularity string `json:"granularity,omitempty"`
	// InitialTokens jump-starts the learning phase; zero grants twice
	// the daily solve cost so registration yields an initial plan.
	InitialTokens float64 `json:"initial_tokens,omitempty"`
}

// RegisterResponse is the POST /v1/workflows reply.
type RegisterResponse struct {
	ID          string   `json:"id"`
	Workload    string   `json:"workload"`
	Home        string   `json:"home"`
	Regions     []string `json:"regions"`
	Priority    string   `json:"priority"`
	Granularity string   `json:"granularity"`
	Tokens      float64  `json:"tokens"`
	PlanVersion int      `json:"plan_version"`
	ServedAt    string   `json:"served_at"`
}

func parsePriority(s string) (solver.Priority, error) {
	switch s {
	case "", "carbon":
		return solver.PriorityCarbon, nil
	case "cost":
		return solver.PriorityCost, nil
	case "latency":
		return solver.PriorityLatency, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want carbon, cost, or latency)", s)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	sp := s.tel.rec.StartSpan("controlplane.register")
	defer sp.End()
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	wl, err := workloads.ByName(req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	priority, err := parsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hourly := true
	switch req.Granularity {
	case "", "hourly":
	case "daily":
		hourly = false
	default:
		writeError(w, http.StatusBadRequest, "unknown granularity %q (want hourly or daily)", req.Granularity)
		return
	}
	home := region.USEast1
	if req.Home != "" {
		home = region.ID(req.Home)
	}
	regions := make([]region.ID, 0, len(req.Regions))
	for _, id := range req.Regions {
		regions = append(regions, region.ID(id))
	}
	if len(regions) == 0 {
		regions = region.EvaluationFour()
	}
	if _, ok := s.cfg.Catalogue.Get(home); !ok {
		writeError(w, http.StatusBadRequest, "unknown home region %q", home)
		return
	}
	homeListed := false
	for _, id := range regions {
		if _, ok := s.cfg.Catalogue.Get(id); !ok {
			writeError(w, http.StatusBadRequest, "unknown region %q", id)
			return
		}
		if id == home {
			homeListed = true
		}
	}
	if !homeListed {
		writeError(w, http.StatusBadRequest, "region set must include home region %q", home)
		return
	}

	// Reserve the ID before the shard builds the tenant, so a duplicate
	// concurrent registration fails fast instead of racing.
	id := req.ID
	s.mu.Lock()
	if id == "" {
		id = fmt.Sprintf("wf-%d", s.nextID.Add(1))
	}
	if _, exists := s.tenants[id]; exists || s.reserved[id] {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "workflow %q already registered", id)
		return
	}
	s.reserved[id] = true
	s.mu.Unlock()
	release := func() {
		s.mu.Lock()
		delete(s.reserved, id)
		s.mu.Unlock()
	}

	spec := TenantSpec{
		ID:            id,
		Workload:      wl,
		Home:          home,
		Regions:       regions,
		Priority:      priority,
		Hourly:        hourly,
		InitialTokens: req.InitialTokens,
		Seed:          TenantSeed(s.cfg.Seed, id),
	}
	var tenant *Tenant
	solveStart := s.clk.Now()
	err = s.shardOf(id).submit(func() error {
		var err error
		tenant, err = newTenant(spec, s.cfg.Catalogue, s.src, s.cfg.Start, s.cfg.MaxIterations)
		return err
	})
	if errors.Is(err, ErrOverloaded) {
		release()
		s.writeOverloaded(w)
		return
	}
	if err != nil {
		release()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.tel.solveLatency.Observe(s.clk.Now().Sub(solveStart).Seconds())

	s.mu.Lock()
	delete(s.reserved, id)
	s.tenants[id] = tenant
	s.mu.Unlock()
	s.registered.Add(1)
	s.tel.registers.Inc()
	version := 0
	if snap := tenant.Plan(); snap != nil {
		version = snap.Version
		s.solves.Add(1)
	}
	sp.Annotate(telemetry.String("workflow", id), telemetry.Int("plan_version", int64(version)))
	resp := RegisterResponse{
		ID:          id,
		Workload:    wl.Name,
		Home:        string(home),
		Regions:     req.Regions,
		Priority:    priority.String(),
		Granularity: map[bool]string{true: "hourly", false: "daily"}[hourly],
		Tokens:      tenant.Tokens(),
		PlanVersion: version,
		ServedAt:    s.clk.Now().UTC().Format(time.RFC3339Nano),
	}
	if resp.Regions == nil {
		for _, rid := range regions {
			resp.Regions = append(resp.Regions, string(rid))
		}
	}
	writeJSON(w, http.StatusCreated, resp)
}

// TraceRequest is the POST /v1/workflows/{id}/trace body: one aggregate
// arrival delta. A zero-invocation delta is a heartbeat that only
// advances the tenant's virtual time.
type TraceRequest struct {
	// At is the delta's virtual timestamp (RFC 3339). Tenant virtual
	// time advances monotonically to the maximum At seen.
	At string `json:"at"`
	// Invocations is the number of arrivals in this delta.
	Invocations int `json:"invocations"`
	// Class is small or large (default small).
	Class string `json:"class,omitempty"`
	// MeanRuntimeSec overrides the workload's analytic mean service time
	// for token accrual.
	MeanRuntimeSec float64 `json:"mean_runtime_sec,omitempty"`
}

// TraceResponse reports what the delta did.
type TraceResponse struct {
	ID          string  `json:"id"`
	VirtualTime string  `json:"virtual_time"`
	Earned      float64 `json:"earned"`
	Tokens      float64 `json:"tokens"`
	Solved      bool    `json:"solved"`
	Skipped     bool    `json:"skipped"`
	Granularity string  `json:"granularity,omitempty"`
	NextCheck   string  `json:"next_check"`
	PlanVersion int     `json:"plan_version"`
	ServedAt    string  `json:"served_at"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sp := s.tel.rec.StartSpan("controlplane.trace")
	defer sp.End()
	id := r.PathValue("id")
	tenant, ok := s.tenant(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown workflow %q", id)
		return
	}
	var req TraceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	at, err := time.Parse(time.RFC3339, req.At)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad at timestamp: %v", err)
		return
	}
	if req.Invocations < 0 {
		writeError(w, http.StatusBadRequest, "invocations must be non-negative")
		return
	}
	class := workloads.Small
	switch req.Class {
	case "", "small":
	case "large":
		class = workloads.Large
	default:
		writeError(w, http.StatusBadRequest, "unknown class %q (want small or large)", req.Class)
		return
	}

	var res DeltaResult
	solveStart := s.clk.Now()
	err = s.shardOf(id).submit(func() error {
		var err error
		res, err = tenant.OnDelta(Delta{At: at, Invocations: req.Invocations, Class: class, MeanRuntimeSec: req.MeanRuntimeSec})
		return err
	})
	if errors.Is(err, ErrOverloaded) {
		s.writeOverloaded(w)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if res.Solved {
		s.solves.Add(1)
		s.tel.solveLatency.Observe(s.clk.Now().Sub(solveStart).Seconds())
	}
	if res.Skipped {
		s.skips.Add(1)
	}
	s.deltas.Add(1)
	s.tel.deltas.Inc()
	sp.Annotate(telemetry.String("workflow", id), telemetry.Int("invocations", int64(req.Invocations)))

	version := 0
	if snap := tenant.Plan(); snap != nil {
		version = snap.Version
	}
	resp := TraceResponse{
		ID:          id,
		VirtualTime: tenant.VNow().Format(time.RFC3339Nano),
		Earned:      res.Earned,
		Tokens:      res.Tokens,
		Solved:      res.Solved,
		Skipped:     res.Skipped,
		NextCheck:   res.NextDue.UTC().Format(time.RFC3339Nano),
		PlanVersion: version,
		ServedAt:    s.clk.Now().UTC().Format(time.RFC3339Nano),
	}
	if res.Solved {
		resp.Granularity = res.Granularity.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// PlanResponse is the GET /v1/workflows/{id}/plan body. Assignments is
// the plan serving traffic at the tenant's current virtual time; Hours
// carries the full 24-plan set. served_at is the only field the serving
// clock influences.
type PlanResponse struct {
	ID          string              `json:"id"`
	Version     int                 `json:"version"`
	Granularity string              `json:"granularity"`
	GeneratedAt string              `json:"generated_at"`
	ExpiresAt   string              `json:"expires_at"`
	VirtualTime string              `json:"virtual_time"`
	Stale       bool                `json:"stale"`
	Assignments map[string]string   `json:"assignments"`
	Hours       []map[string]string `json:"hours,omitempty"`
	CarbonMean  float64             `json:"carbon_mean_g"`
	LatencyMean float64             `json:"latency_mean_sec"`
	CostMean    float64             `json:"cost_mean_usd"`
	ServedAt    string              `json:"served_at"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	start := s.clk.Now()
	id := r.PathValue("id")
	tenant, ok := s.tenant(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown workflow %q", id)
		return
	}
	snap := tenant.Plan()
	if snap == nil {
		writeError(w, http.StatusNotFound, "workflow %q has no plan yet", id)
		return
	}
	vnow := tenant.VNow()
	resp := PlanResponse{
		ID:          id,
		Version:     snap.Version,
		Granularity: snap.Granularity.String(),
		GeneratedAt: snap.GeneratedAt.UTC().Format(time.RFC3339Nano),
		ExpiresAt:   snap.ExpiresAt.UTC().Format(time.RFC3339Nano),
		VirtualTime: vnow.Format(time.RFC3339Nano),
		Stale:       snap.Stale(vnow),
		Assignments: make(map[string]string),
		CarbonMean:  snap.CarbonMean,
		LatencyMean: snap.LatencyMean,
		CostMean:    snap.CostMean,
		ServedAt:    s.clk.Now().UTC().Format(time.RFC3339Nano),
	}
	for n, rid := range snap.PlanAt(vnow) {
		resp.Assignments[string(n)] = string(rid)
	}
	if r.URL.Query().Get("hours") == "all" {
		resp.Hours = make([]map[string]string, 24)
		for h := range snap.Plans {
			m := make(map[string]string, len(snap.Plans[h]))
			for n, rid := range snap.Plans[h] {
				m[string(n)] = string(rid)
			}
			resp.Hours[h] = m
		}
	}
	s.queries.Add(1)
	s.tel.queries.Inc()
	s.tel.queryLatency.Observe(s.clk.Now().Sub(start).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

// SolveResponse is the POST /v1/workflows/{id}/solve reply.
type SolveResponse struct {
	ID          string  `json:"id"`
	Granularity string  `json:"granularity"`
	PlanVersion int     `json:"plan_version"`
	Tokens      float64 `json:"tokens"`
	ServedAt    string  `json:"served_at"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	sp := s.tel.rec.StartSpan("controlplane.force_solve")
	defer sp.End()
	id := r.PathValue("id")
	tenant, ok := s.tenant(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown workflow %q", id)
		return
	}
	var g manager.Granularity
	solveStart := s.clk.Now()
	err := s.shardOf(id).submit(func() error {
		var err error
		g, err = tenant.ForceCheck(tenant.VNow())
		return err
	})
	if errors.Is(err, ErrOverloaded) {
		s.writeOverloaded(w)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if g == manager.GranularityNone {
		writeError(w, http.StatusConflict, "workflow %q: insufficient tokens for a solve", id)
		return
	}
	s.solves.Add(1)
	s.tel.solveLatency.Observe(s.clk.Now().Sub(solveStart).Seconds())
	sp.Annotate(telemetry.String("workflow", id), telemetry.String("granularity", g.String()))
	version := 0
	if snap := tenant.Plan(); snap != nil {
		version = snap.Version
	}
	writeJSON(w, http.StatusOK, SolveResponse{
		ID:          id,
		Granularity: g.String(),
		PlanVersion: version,
		Tokens:      tenant.Tokens(),
		ServedAt:    s.clk.Now().UTC().Format(time.RFC3339Nano),
	})
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Tenants     int    `json:"tenants"`
	Shards      int    `json:"shards"`
	QueueDepths []int  `json:"queue_depths"`
	Registered  int64  `json:"registered"`
	Deltas      int64  `json:"deltas"`
	PlanQueries int64  `json:"plan_queries"`
	Solves      int64  `json:"solves"`
	SolveSkips  int64  `json:"solve_skips"`
	Rejections  int64  `json:"rejections"`
	ServedAt    string `json:"served_at"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	depths := make([]int, len(s.shards))
	for i, sh := range s.shards {
		depths[i] = len(sh.jobs)
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Tenants:     s.Tenants(),
		Shards:      len(s.shards),
		QueueDepths: depths,
		Registered:  s.registered.Load(),
		Deltas:      s.deltas.Load(),
		PlanQueries: s.queries.Load(),
		Solves:      s.solves.Load(),
		SolveSkips:  s.skips.Load(),
		Rejections:  s.rejections.Load(),
		ServedAt:    s.clk.Now().UTC().Format(time.RFC3339Nano),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
