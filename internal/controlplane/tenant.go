// tenant.go holds the per-workflow state the control plane serves: the
// tenant's metric window, solver, event-driven token bucket, and the
// atomically published plan snapshot that GET /plan reads lock-free.
//
// Determinism boundary: everything that shapes plan *content* — synthetic
// records, token accrual, solve scheduling, the solver's RNG — derives
// from (tenant seed, pushed trace deltas) and the tenant's virtual time
// vnow (the maximum delta timestamp seen). The serving Clock never leaks
// in, so a scripted request sequence produces byte-identical plan bodies
// across runs and across any shard count.
package controlplane

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync/atomic"
	"time"

	"caribou/internal/dag"
	"caribou/internal/manager"
	"caribou/internal/metrics"
	"caribou/internal/montecarlo"
	"caribou/internal/netmodel"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/workloads"

	"caribou/internal/carbon"
	"caribou/internal/pricing"
)

// TenantSpec is the registration-time configuration of one workflow.
type TenantSpec struct {
	ID       string
	Workload *workloads.Workload
	Home     region.ID
	Regions  []region.ID
	Priority solver.Priority
	// Hourly enables 24-plan solves when the budget affords them; daily
	// tenants are pinned to single-plan generations.
	Hourly        bool
	InitialTokens float64
	Seed          int64
}

// PlanSnapshot is the immutable plan state published after each solve and
// read lock-free by GET /plan via atomic.Pointer. Times are tenant virtual
// time.
type PlanSnapshot struct {
	Version     int
	Granularity manager.Granularity
	GeneratedAt time.Time
	ExpiresAt   time.Time
	Plans       dag.HourlyPlans
	CarbonMean  float64 // gCO2e per invocation at generation time
	LatencyMean float64 // seconds
	CostMean    float64 // USD
}

// PlanAt returns the assignment serving traffic at virtual time t.
func (s *PlanSnapshot) PlanAt(t time.Time) dag.Plan {
	return s.Plans[t.UTC().Hour()]
}

// Stale reports whether the snapshot has lapsed at virtual time t.
func (s *PlanSnapshot) Stale(t time.Time) bool {
	return t.After(s.ExpiresAt)
}

// Tenant is one registered workflow. All mutation happens on the owning
// shard's worker goroutine; the plan pointer and virtual time are the only
// cross-goroutine reads.
type Tenant struct {
	spec   TenantSpec
	mm     *metrics.Manager
	solv   *solver.Solver
	stream *manager.Stream
	synth  *synthesizer

	plan     atomic.Pointer[PlanSnapshot]
	vnowNano atomic.Int64

	versions int
	deltas   int
}

// TenantSeed derives a tenant's RNG seed from the server seed and its ID —
// stable across runs and independent of registration order.
func TenantSeed(serverSeed int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return serverSeed ^ int64(h.Sum64())
}

// newTenant builds the tenant's full planning stack and runs its initial
// budget check at virtual time start. The carbon source and catalogue are
// shared server-wide; each tenant gets its own metric window, estimator,
// and solver seeded from spec.Seed.
func newTenant(spec TenantSpec, cat *region.Catalogue, src carbon.Source, start time.Time, maxIterations int) (*Tenant, error) {
	sub, err := cat.Subset(spec.Regions)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: region set: %w", spec.ID, err)
	}
	net := netmodel.New(sub)
	mm := metrics.New(spec.Workload.DAG, spec.Home, sub, net, src, pricing.DefaultBook())
	est := montecarlo.New(mm, carbon.BestCase(), spec.Seed)
	solv, err := solver.New(solver.Config{
		Inputs:    mm,
		Estimator: est,
		Objective: solver.Objective{
			Priority:   spec.Priority,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
		Seed:          spec.Seed,
		MaxIterations: maxIterations,
		Workers:       1, // shard workers provide the concurrency
	})
	if err != nil {
		return nil, fmt.Errorf("tenant %s: solver: %w", spec.ID, err)
	}
	stream := manager.NewStream(manager.Config{InitialTokens: spec.InitialTokens}, spec.Home, start)
	if spec.InitialTokens == 0 {
		// Default grant: twice the daily solve cost (priced at a
		// conservative 400 gCO2e/kWh), so registration always affords an
		// initial plan and leaves budget for one re-solve.
		daily := stream.Config().SolveCost(400, spec.Workload.DAG.Len(), len(spec.Regions), false)
		stream = manager.NewStream(manager.Config{InitialTokens: 2 * daily}, spec.Home, start)
	}
	t := &Tenant{
		spec:   spec,
		mm:     mm,
		solv:   solv,
		stream: stream,
		synth:  newSynthesizer(spec.Workload, spec.Home, spec.Seed),
	}
	t.vnowNano.Store(start.UnixNano())

	// Warm the metric window with a day of synthetic home-region traffic
	// preceding start, so the solver's home baseline and the estimator's
	// duration distributions exist before the first real delta arrives.
	for _, rec := range t.synth.expand(24, workloads.Small, start, 24*time.Hour) {
		mm.Ingest(rec)
	}
	// Registration runs the first budget check immediately: with an
	// initial token grant the tenant has a plan before its first query.
	t.check(start)
	return t, nil
}

// VNow reports the tenant's virtual time: the newest trace timestamp.
func (t *Tenant) VNow() time.Time { return time.Unix(0, t.vnowNano.Load()).UTC() }

// Plan returns the current snapshot (nil before the first solve). Safe
// from any goroutine.
func (t *Tenant) Plan() *PlanSnapshot { return t.plan.Load() }

// Tokens reports the stream's current budget. Shard-worker only.
func (t *Tenant) Tokens() float64 { return t.stream.Tokens() }

// advance moves virtual time forward monotonically.
func (t *Tenant) advance(at time.Time) time.Time {
	now := t.VNow()
	if at.After(now) {
		t.vnowNano.Store(at.UnixNano())
		return at.UTC()
	}
	return now
}

// Delta is one pushed trace increment.
type Delta struct {
	At          time.Time
	Invocations int
	Class       workloads.InputClass
	// MeanRuntimeSec overrides the workload's analytic mean service time
	// in accrual; zero uses the analytic value.
	MeanRuntimeSec float64
}

// DeltaResult reports what one delta did to the tenant.
type DeltaResult struct {
	Earned      float64
	Tokens      float64
	Solved      bool
	Skipped     bool
	Granularity manager.Granularity
	NextDue     time.Time
}

// OnDelta ingests a trace delta: advances virtual time, expands the delta
// into synthetic records, accrues tokens under the shared §5.2 rule, and
// runs a budget check when one is due. Shard-worker only.
func (t *Tenant) OnDelta(d Delta) (DeltaResult, error) {
	prev := t.VNow()
	now := t.advance(d.At)
	t.deltas++

	window := now.Sub(prev)
	for _, rec := range t.synth.expand(d.Invocations, d.Class, now, window) {
		t.mm.Ingest(rec)
	}

	res := DeltaResult{}
	if d.Invocations > 0 {
		runtime := d.MeanRuntimeSec
		if runtime <= 0 {
			runtime = t.spec.Workload.MeanServiceTimeSec(d.Class)
		}
		homeI, minI, err := t.intensitySpread(now)
		if err != nil {
			return res, fmt.Errorf("tenant %s: accrual: %w", t.spec.ID, err)
		}
		res.Earned = t.stream.Accrue(d.Invocations, runtime, homeI, minI)
	}

	if t.stream.Due(now) {
		g, err := t.check(now)
		if err != nil {
			return res, err
		}
		res.Granularity = g
		res.Solved = g != manager.GranularityNone
		res.Skipped = !res.Solved
	}
	res.Tokens = t.stream.Tokens()
	res.NextDue = t.stream.NextDue()
	return res, nil
}

// intensitySpread returns the home region's intensity and the greenest
// reachable region's at virtual time now.
func (t *Tenant) intensitySpread(now time.Time) (homeI, minI float64, err error) {
	homeI, err = t.mm.IntensityAt(t.spec.Home, now, now)
	if err != nil {
		return 0, 0, err
	}
	minI = homeI
	for _, id := range t.mm.Catalogue().IDs() {
		v, err := t.mm.IntensityAt(id, now, now)
		if err != nil {
			return 0, 0, err
		}
		if v < minI {
			minI = v
		}
	}
	return homeI, minI, nil
}

// costs prices the two solve granularities at the tenant's home intensity
// (conservative 400 gCO2e/kWh when the lookup fails). Daily-pinned
// tenants get an infinite hourly cost so Decide never upgrades them.
func (t *Tenant) costs(now time.Time) (hourly, daily float64) {
	intensity, err := t.mm.IntensityAt(t.spec.Home, now, now)
	if err != nil {
		intensity = 400
	}
	cfg := t.stream.Config()
	daily = cfg.SolveCost(intensity, t.mm.DAG().Len(), t.mm.Catalogue().Len(), false)
	if t.spec.Hourly {
		hourly = cfg.SolveCost(intensity, t.mm.DAG().Len(), t.mm.Catalogue().Len(), true)
	} else {
		hourly = math.Inf(1)
	}
	return hourly, daily
}

// check runs one due budget decision at virtual time now: solve at the
// affordable granularity and publish a fresh snapshot, or record a skip
// (which expires the active plan, routing traffic home). Shard-worker
// only.
func (t *Tenant) check(now time.Time) (manager.Granularity, error) {
	hourlyCost, dailyCost := t.costs(now)
	g := t.stream.Decide(hourlyCost, dailyCost)
	switch g {
	case manager.GranularityNone:
		t.stream.NoteSkip(now, dailyCost)
		return g, nil
	case manager.GranularityHourly:
		if err := t.solve(now, true, hourlyCost, g); err != nil {
			return manager.GranularityNone, err
		}
	case manager.GranularityDaily:
		if err := t.solve(now, false, dailyCost, g); err != nil {
			return manager.GranularityNone, err
		}
	}
	return g, nil
}

// ForceCheck runs an out-of-band budget check (POST /solve). It reports
// GranularityNone without scheduling side effects when the budget covers
// no solve, so callers can map it to 409.
func (t *Tenant) ForceCheck(now time.Time) (manager.Granularity, error) {
	hourlyCost, dailyCost := t.costs(now)
	if t.stream.Decide(hourlyCost, dailyCost) == manager.GranularityNone {
		return manager.GranularityNone, nil
	}
	return t.check(now)
}

// solve runs one plan generation and atomically publishes the result.
func (t *Tenant) solve(now time.Time, hourly bool, cost float64, g manager.Granularity) error {
	var plans dag.HourlyPlans
	var est *montecarlo.Estimate
	if hourly {
		hp, results, err := t.solv.SolveHourly(dayStart(now), now)
		if err != nil {
			return fmt.Errorf("tenant %s: hourly solve: %w", t.spec.ID, err)
		}
		plans = hp
		est = results[now.UTC().Hour()].Estimate
	} else {
		res, err := t.solv.SolveOne(now, now)
		if err != nil {
			return fmt.Errorf("tenant %s: daily solve: %w", t.spec.ID, err)
		}
		plans = dag.Uniform(res.Plan)
		est = res.Estimate
	}
	t.stream.NoteSolve(now, cost, plans)
	t.versions++
	snap := &PlanSnapshot{
		Version:     t.versions,
		Granularity: g,
		GeneratedAt: now,
		ExpiresAt:   t.stream.PlanExpiry(),
		Plans:       plans,
	}
	if est != nil {
		snap.CarbonMean = est.CarbonMean
		snap.LatencyMean = est.LatencyMean
		snap.CostMean = est.CostMean
	}
	t.plan.Store(snap)
	return nil
}

// dayStart truncates t to the UTC day boundary SolveHourly expects.
func dayStart(t time.Time) time.Time {
	u := t.UTC()
	return time.Date(u.Year(), u.Month(), u.Day(), 0, 0, 0, 0, time.UTC)
}
