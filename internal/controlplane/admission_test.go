package controlplane

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestAdmissionControlShedsOverload pins the 429 path: with a single
// shard whose queue holds one job, a busy worker plus a full queue must
// reject further mutations immediately with Retry-After, while plan
// queries — which never touch a shard — keep serving.
func TestAdmissionControlShedsOverload(t *testing.T) {
	srv, err := New(Config{Shards: 1, QueueDepth: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	register(t, srv, `{"id":"t1","workload":"image-processing"}`)

	// Occupy the worker with a job that blocks until released, then fill
	// the one queue slot with a second blocked submitter.
	started := make(chan struct{})
	release := make(chan struct{})
	sh := srv.shards[0]
	go func() {
		_ = sh.submit(func() error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	queued := make(chan error, 1)
	go func() {
		queued <- sh.submit(func() error { return nil })
	}()
	for len(sh.jobs) == 0 {
		time.Sleep(time.Millisecond) //caribou:allow wallclock test polls real scheduling, not simulated time
	}

	// Worker busy + queue full: the next delta is shed.
	at := DefaultStart.Add(time.Hour).Format(time.RFC3339)
	w := do(t, srv, "POST", "/v1/workflows/t1/trace", fmt.Sprintf(`{"at":%q,"invocations":10}`, at))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded trace: status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if srv.Rejections() != 1 {
		t.Errorf("rejections = %d", srv.Rejections())
	}
	// Registration and forced solves shed the same way.
	if w := do(t, srv, "POST", "/v1/workflows", `{"id":"t2","workload":"image-processing"}`); w.Code != http.StatusTooManyRequests {
		t.Errorf("overloaded register: status %d, want 429", w.Code)
	}
	if w := do(t, srv, "POST", "/v1/workflows/t1/solve", ""); w.Code != http.StatusTooManyRequests {
		t.Errorf("overloaded solve: status %d, want 429", w.Code)
	}

	// Lock-free plan reads are unaffected by the backlog.
	if w := do(t, srv, "GET", "/v1/workflows/t1/plan", ""); w.Code != http.StatusOK {
		t.Errorf("plan query during overload: status %d", w.Code)
	}

	// Releasing the worker drains the queue; mutations admit again.
	close(release)
	if err := <-queued; err != nil {
		t.Fatalf("queued job failed: %v", err)
	}
	w = do(t, srv, "POST", "/v1/workflows/t1/trace", fmt.Sprintf(`{"at":%q,"invocations":10}`, at))
	if w.Code != http.StatusOK {
		t.Errorf("trace after drain: status %d: %s", w.Code, w.Body.String())
	}

	// A rejected registration leaves no reservation behind.
	if w := do(t, srv, "POST", "/v1/workflows", `{"id":"t2","workload":"image-processing"}`); w.Code != http.StatusCreated {
		t.Errorf("register after drain: status %d: %s", w.Code, w.Body.String())
	}
}

// TestCloseRejectsSubmissions pins shutdown: after Close, mutations fail
// rather than hang.
func TestCloseRejectsSubmissions(t *testing.T) {
	srv, err := New(Config{Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	register(t, srv, `{"id":"t1","workload":"image-processing"}`)
	srv.Close()
	at := DefaultStart.Add(time.Hour).Format(time.RFC3339)
	w := do(t, srv, "POST", "/v1/workflows/t1/trace", fmt.Sprintf(`{"at":%q,"invocations":10}`, at))
	if w.Code != http.StatusInternalServerError {
		t.Errorf("trace after close: status %d", w.Code)
	}
	// Idempotent close.
	srv.Close()
}

func TestShardForIsStable(t *testing.T) {
	for _, n := range []int{1, 2, 8} {
		a := shardFor("tenant-42", n)
		if a != shardFor("tenant-42", n) {
			t.Fatalf("shardFor unstable at n=%d", n)
		}
		if a < 0 || a >= n {
			t.Fatalf("shardFor out of range: %d of %d", a, n)
		}
	}
}
