// synth.go converts streamed trace deltas into the invocation records the
// Metric Manager learns from. Tenants push aggregate deltas (a count, a
// class, a timestamp), not full per-invocation traces; the control plane
// re-expands them into representative records with seed-derived RNG
// streams, so a tenant's learned distributions — and therefore its plans —
// depend only on (tenant seed, delta sequence), never on arrival timing or
// shard placement. This is the same synthesis discipline the simulator's
// platform layer uses, scoped down to what §7's window needs: per-node
// durations, per-edge payloads, and conditional-edge outcomes.
package controlplane

import (
	"fmt"
	"time"

	"caribou/internal/dag"
	"caribou/internal/platform"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/workloads"
)

// maxSynthPerDelta caps how many records one delta expands into. Token
// accrual always uses the delta's full invocation count; the cap only
// bounds the metric window's learning cost for very large deltas.
const maxSynthPerDelta = 16

// synthesizer expands trace deltas for one tenant.
type synthesizer struct {
	wl   *workloads.Workload
	home region.ID
	seed int64
	next uint64 // record ID counter
}

func newSynthesizer(wl *workloads.Workload, home region.ID, seed int64) *synthesizer {
	return &synthesizer{wl: wl, home: home, seed: seed}
}

// expand synthesizes up to maxSynthPerDelta records for a delta of n
// invocations of class at virtual time at, spreading record timestamps
// evenly across the window ending at at.
func (sy *synthesizer) expand(n int, class workloads.InputClass, at time.Time, window time.Duration) []*platform.InvocationRecord {
	if n <= 0 {
		return nil
	}
	count := n
	if count > maxSynthPerDelta {
		count = maxSynthPerDelta
	}
	if window <= 0 {
		window = time.Hour
	}
	gap := window / time.Duration(count)
	recs := make([]*platform.InvocationRecord, 0, count)
	for i := 0; i < count; i++ {
		start := at.Add(-window + time.Duration(i+1)*gap)
		recs = append(recs, sy.one(class, start))
	}
	return recs
}

// one synthesizes a single home-region invocation record starting at
// start. The RNG stream is derived from (tenant seed, record ID) alone.
func (sy *synthesizer) one(class workloads.InputClass, start time.Time) *platform.InvocationRecord {
	id := sy.next
	sy.next++
	rng := simclock.DeriveRand(sy.seed, fmt.Sprintf("cp/synth/%d", id))
	defer rng.Release()

	rec := platform.NewInvocationRecord(sy.wl.DAG.Name(), id, string(class))
	rec.Start = start
	rec.Succeeded = true
	rec.Transfers = append(rec.Transfers, platform.TransferEvent{
		Kind: platform.TransferEntry, From: sy.home, To: sy.home,
		Bytes: sy.wl.EntryBytes[class], At: start,
	})

	// Walk the DAG in topological order: the start node always runs,
	// downstream nodes run when an executed predecessor's edge fires
	// (conditional edges sampled at their historical probability).
	executed := map[dag.NodeID]bool{sy.wl.DAG.Start(): true}
	finish := map[dag.NodeID]time.Time{}
	end := start
	for _, nid := range sy.wl.DAG.Nodes() {
		if !executed[nid] {
			continue
		}
		at := start
		for _, e := range sy.wl.DAG.In(nid) {
			if f, ok := finish[e.From]; ok && f.After(at) {
				at = f
			}
		}
		prof := sy.wl.Profile(nid)
		dur := sy.wl.SampleDuration(nid, class, 1.0, rng)
		rec.Executions = append(rec.Executions, platform.ExecutionEvent{
			Node: nid, Region: sy.home, Start: at,
			DurationSec: dur, MemoryMB: prof.MemoryMB, CPUUtil: prof.CPUUtil,
		})
		done := at.Add(time.Duration(dur * float64(time.Second)))
		finish[nid] = done
		if done.After(end) {
			end = done
		}
		for _, e := range sy.wl.DAG.Out(nid) {
			if e.Conditional && rng.Float64() >= e.Probability {
				continue
			}
			executed[e.To] = true
			rec.Transfers = append(rec.Transfers, platform.TransferEvent{
				Kind: platform.TransferPayload, From: sy.home, To: sy.home,
				FromNode: e.From, ToNode: e.To,
				Bytes: sy.wl.Bytes(e.From, e.To, class), At: done,
			})
		}
	}
	for _, t := range sy.wl.DAG.Terminals() {
		if !executed[t] {
			continue
		}
		rec.Transfers = append(rec.Transfers, platform.TransferEvent{
			Kind: platform.TransferOutput, From: sy.home, To: sy.home,
			FromNode: t, Bytes: sy.wl.OutputBytes[t][class], At: finish[t],
		})
	}
	rec.End = end
	return rec
}
