// Package controlplane implements Caribou-as-a-service: a long-running
// control plane hosting thousands of registered workflows, each with its
// own metric window, solver, and event-driven token bucket
// (manager.Stream). Tenant state is sharded — FNV(tenant id) mod N picks
// the one worker goroutine that owns all mutation for that tenant — with
// bounded per-shard queues providing admission control (full queue → 429 +
// Retry-After). Plan reads bypass the shards entirely: GET /plan loads an
// atomic.Pointer snapshot, so query latency is independent of solve
// backlog.
//
// The §6 manager semantics run event-driven here: tokens accrue per
// pushed trace delta, budget checks fire when a tenant's virtual time
// passes its scheduled due time, granularity downgrades under tight
// budgets, and a due check with an empty budget expires the active plan.
// See tenant.go for the determinism boundary between the simulation core
// and the serving edge.
package controlplane

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/region"
	"caribou/internal/telemetry"
)

// DefaultStart anchors every tenant's virtual time and the shared carbon
// source; it matches the evaluation window used across the repo.
var DefaultStart = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

// Config parameterizes a Server.
type Config struct {
	// Shards is the number of worker shards (default 4). Plan bodies are
	// identical for every value; only scheduling changes.
	Shards int
	// QueueDepth bounds each shard's job queue (default 64); a full
	// queue rejects with 429.
	QueueDepth int
	// Seed derives every tenant seed and the shared carbon source
	// (default 1).
	Seed int64
	// Start is the virtual-time origin for registered tenants (default
	// DefaultStart).
	Start time.Time
	// Horizon bounds how far past Start tenants may advance; the shared
	// carbon source covers [Start−8d, Start+Horizon+2d] (default 14d).
	Horizon time.Duration
	// Catalogue is the universe of candidate regions (default
	// region.NorthAmerica()).
	Catalogue *region.Catalogue
	// Clock stamps serving-side metadata (served_at, latency
	// instruments) and never influences plan content. Defaults to a
	// SimClock frozen at Start — inject the wall clock explicitly to get
	// real timestamps.
	Clock Clock
	// MaxIterations caps each tenant solver's HBSS iterations (default
	// 24): thousands of tenants trade per-solve search depth for
	// throughput.
	MaxIterations int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Start.IsZero() {
		c.Start = DefaultStart
	}
	if c.Horizon <= 0 {
		c.Horizon = 14 * 24 * time.Hour
	}
	if c.Catalogue == nil {
		c.Catalogue = region.NorthAmerica()
	}
	if c.Clock == nil {
		c.Clock = NewSimClock(c.Start)
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 24
	}
	return c
}

// Server hosts the control-plane API. Create with New, serve via
// ServeHTTP (it implements http.Handler), stop with Close.
type Server struct {
	cfg    Config
	clk    Clock
	src    carbon.Source
	shards []*shard
	mux    *http.ServeMux

	mu       sync.RWMutex
	tenants  map[string]*Tenant
	reserved map[string]bool
	nextID   atomic.Uint64

	// Serving counters, exported via /v1/stats.
	registered atomic.Int64
	deltas     atomic.Int64
	queries    atomic.Int64
	solves     atomic.Int64
	skips      atomic.Int64
	rejections atomic.Int64

	tel serverTelemetry
}

// serverTelemetry holds instrument handles captured at construction;
// nil-safe no-ops when telemetry is off.
type serverTelemetry struct {
	rec          *telemetry.Recorder
	registers    *telemetry.Counter
	deltas       *telemetry.Counter
	queries      *telemetry.Counter
	rejections   *telemetry.Counter
	queryLatency *telemetry.Histogram
	solveLatency *telemetry.Histogram
}

func newServerTelemetry() serverTelemetry {
	rec := telemetry.Default()
	latencyBounds := []float64{1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5}
	return serverTelemetry{
		rec:          rec,
		registers:    rec.Counter("controlplane.registers"),
		deltas:       rec.Counter("controlplane.deltas"),
		queries:      rec.Counter("controlplane.plan_queries"),
		rejections:   rec.Counter("controlplane.rejections"),
		queryLatency: rec.Histogram("controlplane.query_latency_sec", latencyBounds),
		solveLatency: rec.Histogram("controlplane.solve_latency_sec", latencyBounds),
	}
}

// New builds a server: the shared carbon source, N worker shards, and the
// HTTP mux.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	src, err := carbon.SharedSource(cfg.Seed, cfg.Start.Add(-8*24*time.Hour), cfg.Start.Add(cfg.Horizon+2*24*time.Hour))
	if err != nil {
		return nil, fmt.Errorf("controlplane: carbon source: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		clk:      cfg.Clock,
		src:      src,
		tenants:  make(map[string]*Tenant),
		reserved: make(map[string]bool),
		tel:      newServerTelemetry(),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(i, cfg.QueueDepth))
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops all shard workers. In-flight jobs finish; queued jobs fail.
func (s *Server) Close() {
	for _, sh := range s.shards {
		sh.close()
	}
}

// shardOf returns the shard owning tenant id.
func (s *Server) shardOf(id string) *shard {
	return s.shards[shardFor(id, len(s.shards))]
}

// tenant looks a tenant up without touching its shard.
func (s *Server) tenant(id string) (*Tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	return t, ok
}

// Tenants reports how many workflows are registered.
func (s *Server) Tenants() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tenants)
}

// Rejections reports how many submissions admission control has shed.
func (s *Server) Rejections() int64 { return s.rejections.Load() }

// Solves reports how many plan generations have been served.
func (s *Server) Solves() int64 { return s.solves.Load() }
