package controlplane

import (
	"reflect"
	"testing"
	"time"

	"caribou/internal/platform"
	"caribou/internal/region"
	"caribou/internal/workloads"
)

func TestSynthDeterministic(t *testing.T) {
	wl := workloads.Text2SpeechCensoring()
	at := DefaultStart.Add(3 * time.Hour)
	a := newSynthesizer(wl, region.USEast1, 42).expand(10, workloads.Small, at, time.Hour)
	b := newSynthesizer(wl, region.USEast1, 42).expand(10, workloads.Small, at, time.Hour)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("expanded %d/%d records, want 10", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("record %d differs across identically seeded synthesizers:\n%+v\n%+v", i, a[i], b[i])
		}
	}

	c := newSynthesizer(wl, region.USEast1, 43).expand(10, workloads.Small, at, time.Hour)
	same := true
	for i := range a {
		if !reflect.DeepEqual(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical records")
	}
}

func TestSynthCapsExpansion(t *testing.T) {
	wl := workloads.ImageProcessing()
	sy := newSynthesizer(wl, region.USEast1, 1)
	recs := sy.expand(100000, workloads.Small, DefaultStart, time.Hour)
	if len(recs) != maxSynthPerDelta {
		t.Errorf("expanded %d records, want cap %d", len(recs), maxSynthPerDelta)
	}
	if sy.expand(0, workloads.Small, DefaultStart, time.Hour) != nil {
		t.Error("zero-invocation delta synthesized records")
	}
}

func TestSynthRecordShape(t *testing.T) {
	wl := workloads.Text2SpeechCensoring()
	recs := newSynthesizer(wl, region.USEast1, 7).expand(5, workloads.Large, DefaultStart.Add(time.Hour), time.Hour)
	for _, rec := range recs {
		if rec.Workflow != wl.DAG.Name() || !rec.Succeeded {
			t.Fatalf("record header: %+v", rec)
		}
		if rec.End.Before(rec.Start) {
			t.Errorf("record ends before it starts: %v .. %v", rec.Start, rec.End)
		}
		executed := map[string]bool{}
		for _, e := range rec.Executions {
			if e.Region != region.USEast1 {
				t.Errorf("synthetic execution off the home region: %v", e.Region)
			}
			if e.DurationSec <= 0 || e.MemoryMB <= 0 {
				t.Errorf("degenerate execution: %+v", e)
			}
			executed[string(e.Node)] = true
		}
		if !executed[string(wl.DAG.Start())] {
			t.Error("start node did not execute")
		}
		var entries, outputs int
		for _, tr := range rec.Transfers {
			switch tr.Kind {
			case platform.TransferEntry:
				entries++
			case platform.TransferOutput:
				outputs++
				if !executed[string(tr.FromNode)] {
					t.Errorf("output transfer from unexecuted node %s", tr.FromNode)
				}
			}
		}
		if entries != 1 {
			t.Errorf("entry transfers = %d, want 1", entries)
		}
		if outputs == 0 {
			t.Error("no terminal output transfer")
		}
	}
}

// TestSynthTimestampsSpreadAcrossWindow pins the spacing rule: records
// land inside (at-window, at], newest last.
func TestSynthTimestampsSpreadAcrossWindow(t *testing.T) {
	wl := workloads.ImageProcessing()
	at := DefaultStart.Add(6 * time.Hour)
	recs := newSynthesizer(wl, region.USEast1, 1).expand(8, workloads.Small, at, 2*time.Hour)
	lo := at.Add(-2 * time.Hour)
	var prev time.Time
	for i, rec := range recs {
		if rec.Start.Before(lo) || rec.Start.After(at) {
			t.Errorf("record %d at %v outside (%v, %v]", i, rec.Start, lo, at)
		}
		if i > 0 && !rec.Start.After(prev) {
			t.Errorf("record %d not newer than predecessor", i)
		}
		prev = rec.Start
	}
}
