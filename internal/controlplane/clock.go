package controlplane

import (
	"sync"
	"time"
)

// Clock is the control plane's injectable time source — the determinism
// seam between the simulation core and the serving edge. Everything that
// decides plan *content* (token accrual, solve triggering, expiry)
// advances on tenant-pushed trace timestamps, never on this clock; the
// Clock only stamps serving-side metadata (the served_at field) and feeds
// latency instruments. cmd/caribou-server injects the wall clock behind
// an annotated //caribou:allow wallclock site; tests and -sim mode inject
// a SimClock, which makes every response body byte-reproducible.
type Clock interface {
	Now() time.Time
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() time.Time

// Now implements Clock.
func (f ClockFunc) Now() time.Time { return f() }

// SimClock is a manually advanced Clock: it returns exactly what the last
// Set/Advance left, so servers built on it produce identical bytes across
// runs and shard counts. Safe for concurrent use.
type SimClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewSimClock returns a SimClock frozen at start.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now reports the current simulated time.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the simulated time forward by d and returns the new time.
func (c *SimClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Set pins the simulated time to t.
func (c *SimClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}
