package controlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a SimClock-backed server over the evaluation
// regions. Tests never inject a real clock, so every response body is a
// pure function of the request script.
func newTestServer(t *testing.T, shards int) *Server {
	t.Helper()
	srv, err := New(Config{Shards: shards, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// do runs one request through the in-process handler.
func do(t *testing.T, srv *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

func register(t *testing.T, srv *Server, body string) RegisterResponse {
	t.Helper()
	w := do(t, srv, "POST", "/v1/workflows", body)
	if w.Code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", w.Code, w.Body.String())
	}
	return decode[RegisterResponse](t, w)
}

func TestRegisterYieldsInitialPlan(t *testing.T) {
	srv := newTestServer(t, 2)
	resp := register(t, srv, `{"id":"t1","workload":"text2speech-censoring"}`)
	if resp.ID != "t1" || resp.PlanVersion < 1 {
		t.Fatalf("register response: %+v", resp)
	}
	// The default grant covers a daily solve, not an hourly one.
	if resp.Granularity != "hourly" {
		t.Errorf("granularity ceiling = %q", resp.Granularity)
	}

	w := do(t, srv, "GET", "/v1/workflows/t1/plan", "")
	if w.Code != http.StatusOK {
		t.Fatalf("plan: status %d: %s", w.Code, w.Body.String())
	}
	plan := decode[PlanResponse](t, w)
	if plan.Version != resp.PlanVersion || plan.Stale {
		t.Errorf("plan = %+v", plan)
	}
	if plan.Granularity != "daily" {
		t.Errorf("initial plan granularity = %q, want daily (grant covers one daily solve)", plan.Granularity)
	}
	if len(plan.Assignments) == 0 {
		t.Error("plan has no assignments")
	}
	for node, rid := range plan.Assignments {
		if node == "" || !strings.HasPrefix(rid, "aws:") {
			t.Errorf("malformed assignment %q -> %q", node, rid)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	srv := newTestServer(t, 1)
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"nope"}`, http.StatusBadRequest},
		{"bad priority", `{"workload":"image-processing","priority":"speed"}`, http.StatusBadRequest},
		{"bad granularity", `{"workload":"image-processing","granularity":"weekly"}`, http.StatusBadRequest},
		{"unknown region", `{"workload":"image-processing","regions":["aws:mars-1"]}`, http.StatusBadRequest},
		{"home outside set", `{"workload":"image-processing","home":"aws:ca-central-1","regions":["aws:us-east-1","aws:us-west-2"]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if w := do(t, srv, "POST", "/v1/workflows", tc.body); w.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.status, w.Body.String())
		}
	}

	register(t, srv, `{"id":"dup","workload":"image-processing"}`)
	if w := do(t, srv, "POST", "/v1/workflows", `{"id":"dup","workload":"image-processing"}`); w.Code != http.StatusConflict {
		t.Errorf("duplicate id: status %d, want 409", w.Code)
	}
}

func TestTraceDeltaAccruesAndAdvances(t *testing.T) {
	srv := newTestServer(t, 2)
	register(t, srv, `{"id":"t1","workload":"image-processing"}`)

	at := DefaultStart.Add(2 * time.Hour).Format(time.RFC3339)
	w := do(t, srv, "POST", "/v1/workflows/t1/trace", fmt.Sprintf(`{"at":%q,"invocations":200}`, at))
	if w.Code != http.StatusOK {
		t.Fatalf("trace: status %d: %s", w.Code, w.Body.String())
	}
	resp := decode[TraceResponse](t, w)
	if resp.Earned <= 0 {
		t.Errorf("delta earned %v tokens", resp.Earned)
	}
	vt, err := time.Parse(time.RFC3339Nano, resp.VirtualTime)
	if err != nil || !vt.Equal(DefaultStart.Add(2*time.Hour)) {
		t.Errorf("virtual_time = %q err=%v", resp.VirtualTime, err)
	}

	// An older timestamp never rewinds virtual time.
	old := DefaultStart.Add(time.Hour).Format(time.RFC3339)
	w = do(t, srv, "POST", "/v1/workflows/t1/trace", fmt.Sprintf(`{"at":%q,"invocations":10}`, old))
	resp = decode[TraceResponse](t, w)
	if got, _ := time.Parse(time.RFC3339Nano, resp.VirtualTime); !got.Equal(DefaultStart.Add(2 * time.Hour)) {
		t.Errorf("virtual time rewound to %v", got)
	}
}

func TestTraceValidation(t *testing.T) {
	srv := newTestServer(t, 1)
	register(t, srv, `{"id":"t1","workload":"image-processing"}`)
	at := DefaultStart.Format(time.RFC3339)

	if w := do(t, srv, "POST", "/v1/workflows/ghost/trace", fmt.Sprintf(`{"at":%q,"invocations":1}`, at)); w.Code != http.StatusNotFound {
		t.Errorf("unknown workflow: status %d", w.Code)
	}
	if w := do(t, srv, "POST", "/v1/workflows/t1/trace", `{"at":"yesterday","invocations":1}`); w.Code != http.StatusBadRequest {
		t.Errorf("bad timestamp: status %d", w.Code)
	}
	if w := do(t, srv, "POST", "/v1/workflows/t1/trace", fmt.Sprintf(`{"at":%q,"invocations":-5}`, at)); w.Code != http.StatusBadRequest {
		t.Errorf("negative invocations: status %d", w.Code)
	}
	if w := do(t, srv, "POST", "/v1/workflows/t1/trace", fmt.Sprintf(`{"at":%q,"invocations":1,"class":"gigantic"}`, at)); w.Code != http.StatusBadRequest {
		t.Errorf("bad class: status %d", w.Code)
	}
	if w := do(t, srv, "GET", "/v1/workflows/ghost/plan", ""); w.Code != http.StatusNotFound {
		t.Errorf("plan for unknown workflow: status %d", w.Code)
	}
}

func TestNoTokensNoPlanAndSolveConflict(t *testing.T) {
	srv := newTestServer(t, 1)
	// A vanishingly small explicit grant affords no solve: registration
	// records a skip, the tenant has no plan, and a forced solve is 409.
	resp := register(t, srv, `{"id":"poor","workload":"image-processing","initial_tokens":1e-12}`)
	if resp.PlanVersion != 0 {
		t.Fatalf("plan version = %d for a tokenless tenant", resp.PlanVersion)
	}
	if w := do(t, srv, "GET", "/v1/workflows/poor/plan", ""); w.Code != http.StatusNotFound {
		t.Errorf("plan: status %d, want 404", w.Code)
	}
	if w := do(t, srv, "POST", "/v1/workflows/poor/solve", ""); w.Code != http.StatusConflict {
		t.Errorf("solve: status %d, want 409", w.Code)
	}
}

func TestStreamedTrafficFundsResolve(t *testing.T) {
	srv := newTestServer(t, 2)
	reg := register(t, srv, `{"id":"t1","workload":"image-processing"}`)

	// Stream a day of heavy traffic hour by hour; once the next check
	// comes due the accrued tokens fund a re-solve.
	version := reg.PlanVersion
	solved := false
	for h := 1; h <= 72 && !solved; h++ {
		at := DefaultStart.Add(time.Duration(h) * time.Hour).Format(time.RFC3339)
		w := do(t, srv, "POST", "/v1/workflows/t1/trace", fmt.Sprintf(`{"at":%q,"invocations":500}`, at))
		if w.Code != http.StatusOK {
			t.Fatalf("trace hour %d: status %d: %s", h, w.Code, w.Body.String())
		}
		resp := decode[TraceResponse](t, w)
		if resp.Solved {
			solved = true
			if resp.PlanVersion <= version {
				t.Errorf("solve did not advance plan version: %d -> %d", version, resp.PlanVersion)
			}
		}
	}
	if !solved {
		t.Fatal("72 hours of heavy traffic never funded a re-solve")
	}
	if srv.Solves() < 2 {
		t.Errorf("server solves = %d, want initial + streamed", srv.Solves())
	}
}

func TestForceSolveSpendsTokens(t *testing.T) {
	srv := newTestServer(t, 1)
	register(t, srv, `{"id":"t1","workload":"image-processing","initial_tokens":1.0}`)
	w := do(t, srv, "POST", "/v1/workflows/t1/solve", "")
	if w.Code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", w.Code, w.Body.String())
	}
	resp := decode[SolveResponse](t, w)
	if resp.PlanVersion < 2 {
		t.Errorf("plan version = %d after forced solve", resp.PlanVersion)
	}
	if resp.Granularity != "hourly" && resp.Granularity != "daily" {
		t.Errorf("granularity = %q", resp.Granularity)
	}
}

func TestStatsAndHealth(t *testing.T) {
	srv := newTestServer(t, 3)
	register(t, srv, `{"workload":"image-processing"}`)
	at := DefaultStart.Add(time.Hour).Format(time.RFC3339)
	do(t, srv, "POST", "/v1/workflows/wf-1/trace", fmt.Sprintf(`{"at":%q,"invocations":5}`, at))
	do(t, srv, "GET", "/v1/workflows/wf-1/plan", "")

	w := do(t, srv, "GET", "/v1/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: status %d", w.Code)
	}
	stats := decode[StatsResponse](t, w)
	if stats.Tenants != 1 || stats.Shards != 3 || stats.Registered != 1 || stats.Deltas != 1 || stats.PlanQueries != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if len(stats.QueueDepths) != 3 {
		t.Errorf("queue depths = %v", stats.QueueDepths)
	}

	if w := do(t, srv, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Errorf("healthz: status %d", w.Code)
	}
}

func TestSimClock(t *testing.T) {
	clk := NewSimClock(DefaultStart)
	if !clk.Now().Equal(DefaultStart) {
		t.Fatal("clock not frozen at start")
	}
	clk.Advance(time.Hour)
	if !clk.Now().Equal(DefaultStart.Add(time.Hour)) {
		t.Error("advance failed")
	}
	clk.Set(DefaultStart)
	if !clk.Now().Equal(DefaultStart) {
		t.Error("set failed")
	}
	var fn Clock = ClockFunc(func() time.Time { return DefaultStart })
	if !fn.Now().Equal(DefaultStart) {
		t.Error("ClockFunc adapter broken")
	}
}
