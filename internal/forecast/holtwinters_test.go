package forecast

import (
	"math"
	"testing"

	"caribou/internal/stats"
)

// synth builds a seasonal series: level + trend*t + amp*sin(2πt/period).
func synth(n, period int, level, trend, amp float64) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = level + trend*float64(i) + amp*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	return out
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0, 0.1, 0.1, 24); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewModel(0.5, 1, 0.1, 24); err == nil {
		t.Error("beta 1 accepted")
	}
	if _, err := NewModel(0.5, 0.1, 0.1, 1); err == nil {
		t.Error("period 1 accepted")
	}
}

func TestFitRequiresTwoSeasons(t *testing.T) {
	m, _ := NewModel(0.3, 0.05, 0.3, 24)
	if err := m.Fit(make([]float64, 47)); err == nil {
		t.Error("want error for <2 seasons")
	}
	if _, err := Fit(make([]float64, 10), 24); err == nil {
		t.Error("grid Fit should also reject short data")
	}
}

func TestForecastTracksSeasonalSeries(t *testing.T) {
	const period = 24
	data := synth(7*period, period, 400, 0.05, 60)
	m, err := Fit(data, period)
	if err != nil {
		t.Fatal(err)
	}
	// Forecast the next day and compare with the true continuation.
	var actual []float64
	for i := 0; i < period; i++ {
		k := len(data) + i
		actual = append(actual, 400+0.05*float64(k)+60*math.Sin(2*math.Pi*float64(k)/float64(period)))
	}
	pred := m.ForecastRange(period)
	mape, err := stats.MAPE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	if mape > 3 {
		t.Errorf("MAPE on clean seasonal series = %.2f%%, want < 3%%", mape)
	}
}

func TestForecastPhaseAlignment(t *testing.T) {
	// A pure square-wave season: forecasting h and h+period must return
	// (nearly) the same phase value.
	const period = 8
	var data []float64
	for i := 0; i < 6*period; i++ {
		v := 10.0
		if i%period < period/2 {
			v = 20.0
		}
		data = append(data, v)
	}
	m, err := Fit(data, period)
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h <= period; h++ {
		a := m.Forecast(h)
		b := m.Forecast(h + period)
		if math.Abs(a-b) > 1.0 {
			t.Errorf("h=%d: forecast %v vs %v one period later", h, a, b)
		}
	}
}

func TestUpdateAdvancesPhase(t *testing.T) {
	const period = 4
	data := synth(4*period, period, 100, 0, 10)
	m, err := Fit(data, period)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Forecast(2)
	m.Update(data[0]) // consume one more observation
	after := m.Forecast(1)
	if math.Abs(before-after) > 8 {
		t.Errorf("phase shift too large: %v vs %v", before, after)
	}
}

func TestForecastDefensiveInputs(t *testing.T) {
	var m Model
	if v := m.Forecast(1); v != 0 {
		t.Errorf("unfitted forecast = %v", v)
	}
	data := synth(96, 24, 100, 0, 5)
	fitted, err := Fit(data, 24)
	if err != nil {
		t.Fatal(err)
	}
	if v := fitted.Forecast(0); v != fitted.level {
		t.Errorf("h=0 forecast = %v, want level", v)
	}
}

func TestGridFitBeatsArbitraryParams(t *testing.T) {
	const period = 24
	data := synth(7*period, period, 300, 0.2, 40)
	grid, err := Fit(data, period)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := NewModel(0.9, 0.9, 0.9, period)
	if err != nil {
		t.Fatal(err)
	}
	// Score one-step error over a holdout continuation.
	var cont []float64
	for i := 0; i < 2*period; i++ {
		k := len(data) + i
		cont = append(cont, 300+0.2*float64(k)+40*math.Sin(2*math.Pi*float64(k)/float64(period)))
	}
	if err := bad.Fit(data); err != nil {
		t.Fatal(err)
	}
	score := func(m *Model) float64 {
		c := *m
		seasonal := append([]float64(nil), m.seasonal...)
		c.seasonal = seasonal
		var sse float64
		for _, x := range cont {
			f := c.Forecast(1)
			sse += (x - f) * (x - f)
			c.Update(x)
		}
		return sse
	}
	if gs, bs := score(grid), score(bad); gs > bs*1.5 {
		t.Errorf("grid-fit SSE %v much worse than arbitrary params %v", gs, bs)
	}
}

func TestNaivePersistence(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	got := Naive(data, 4, 6)
	want := []float64{5, 6, 7, 8, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("naive[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
