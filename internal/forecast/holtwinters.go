// Package forecast implements Holt-Winters triple exponential smoothing,
// used by the Metric Manager to forecast hourly grid carbon intensity one
// day ahead from the previous week of data (§7.2). The additive-seasonal
// form suits carbon intensity, whose diurnal swing is roughly constant in
// absolute terms.
package forecast

import (
	"fmt"
	"math"
)

// Model is a fitted Holt-Winters additive-seasonal model.
type Model struct {
	Alpha, Beta, Gamma float64
	Period             int
	level              float64
	trend              float64
	seasonal           []float64
	n                  int // observations consumed
}

// NewModel returns an unfitted model with the given smoothing parameters
// and seasonal period. Parameters must lie in (0, 1) and period must be at
// least 2.
func NewModel(alpha, beta, gamma float64, period int) (*Model, error) {
	for _, p := range []float64{alpha, beta, gamma} {
		if p <= 0 || p >= 1 {
			return nil, fmt.Errorf("forecast: smoothing parameter %v out of (0, 1)", p)
		}
	}
	if period < 2 {
		return nil, fmt.Errorf("forecast: period %d < 2", period)
	}
	return &Model{Alpha: alpha, Beta: beta, Gamma: gamma, Period: period}, nil
}

// Fit initializes components from the first two seasons and consumes the
// remaining observations. It requires at least two full seasons of data.
func (m *Model) Fit(data []float64) error {
	p := m.Period
	if len(data) < 2*p {
		return fmt.Errorf("forecast: need at least %d observations, have %d", 2*p, len(data))
	}
	var s1, s2 float64
	for i := 0; i < p; i++ {
		s1 += data[i]
		s2 += data[p+i]
	}
	s1 /= float64(p)
	s2 /= float64(p)
	m.level = s1
	m.trend = (s2 - s1) / float64(p)
	m.seasonal = make([]float64, p)
	for i := 0; i < p; i++ {
		m.seasonal[i] = data[i] - s1
	}
	m.n = p
	for _, x := range data[p:] {
		m.Update(x)
	}
	return nil
}

// Update consumes one observation, advancing level, trend, and the
// seasonal component for the current phase.
func (m *Model) Update(x float64) {
	i := m.n % m.Period
	prevLevel := m.level
	m.level = m.Alpha*(x-m.seasonal[i]) + (1-m.Alpha)*(m.level+m.trend)
	m.trend = m.Beta*(m.level-prevLevel) + (1-m.Beta)*m.trend
	m.seasonal[i] = m.Gamma*(x-m.level) + (1-m.Gamma)*m.seasonal[i]
	m.n++
}

// Forecast returns the h-step-ahead point forecast (h >= 1).
func (m *Model) Forecast(h int) float64 {
	if m.seasonal == nil || h < 1 {
		return m.level
	}
	i := (m.n + h - 1) % m.Period
	return m.level + float64(h)*m.trend + m.seasonal[i]
}

// ForecastRange returns point forecasts for steps 1..h.
func (m *Model) ForecastRange(h int) []float64 {
	out := make([]float64, h)
	for i := 1; i <= h; i++ {
		out[i-1] = m.Forecast(i)
	}
	return out
}

// Fit selects smoothing parameters by coarse grid search minimizing
// one-step-ahead squared error over the training data, then returns the
// fitted model. This is how the Metric Manager refits daily.
func Fit(data []float64, period int) (*Model, error) {
	if len(data) < 2*period {
		return nil, fmt.Errorf("forecast: need at least %d observations, have %d", 2*period, len(data))
	}
	grid := []float64{0.05, 0.15, 0.3, 0.5, 0.7}
	betaGrid := []float64{0.01, 0.05, 0.15}
	best := math.Inf(1)
	var bestModel *Model
	for _, a := range grid {
		for _, b := range betaGrid {
			for _, g := range grid {
				sse, err := oneStepSSE(data, period, a, b, g)
				if err != nil {
					return nil, err
				}
				if sse < best {
					best = sse
					m, _ := NewModel(a, b, g, period)
					if err := m.Fit(data); err != nil {
						return nil, err
					}
					bestModel = m
				}
			}
		}
	}
	return bestModel, nil
}

func oneStepSSE(data []float64, period int, a, b, g float64) (float64, error) {
	m, err := NewModel(a, b, g, period)
	if err != nil {
		return 0, err
	}
	// Initialize on the first two seasons, then score the rest.
	init := data[:2*period]
	if err := m.Fit(init); err != nil {
		return 0, err
	}
	var sse float64
	for _, x := range data[2*period:] {
		f := m.Forecast(1)
		d := x - f
		sse += d * d
		m.Update(x)
	}
	return sse, nil
}

// Naive is a persistence baseline: tomorrow's hourly values equal
// today's. It grounds the ablation of Holt-Winters against the simplest
// alternative (Fig 13b discussion).
func Naive(data []float64, period, h int) []float64 {
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		// Value one full period back from the forecasted step.
		idx := len(data) - period + (i % period)
		for idx >= len(data) {
			idx -= period
		}
		if idx < 0 {
			idx = len(data) - 1
		}
		out[i] = data[idx]
	}
	return out
}
