package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicPubAnalyzer enforces the publish-then-never-mutate discipline the
// tape latches (PR 6) and the control plane (PR 8) depend on. Values
// published through atomic.Pointer.Store are read lock-free by other
// goroutines, so they must be write-complete at publish:
//
//   - the per-package pass simulates each function body in source order
//     and flags writes through a pointer after it was Stored, and any
//     mutation of a pointee obtained from Load — loaded snapshots are
//     shared and immutable; mutate-and-republish means build a fresh
//     value;
//   - the module pass enforces shard ownership: state registered in
//     shardOwnedTypes (summary.go) may be written — directly or via a
//     mutating method — only by the owned type's own methods, its
//     constructor, or code lexically inside a closure handed to the
//     shard's submit loop.
//
// Both rules are intraprocedural per site: a pointer laundered through a
// helper's return value escapes the first rule, and indirect mutation
// through a field's own methods escapes the second (DESIGN.md records
// the caveats). The repo's discipline keeps publication sites local
// enough that this catches the regressions that matter.
var AtomicPubAnalyzer = &Analyzer{
	Name: "atomicpub",
	Doc:  "flag mutation of atomic.Pointer pointees after Store/Load and shard-owned control-plane state touched outside its worker loop",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					checkAtomicBody(pass, fd.Body)
				}
			}
		}
	},
	RunModule: func(mp *ModulePass) {
		runShardOwnership(mp)
	},
}

// checkAtomicBody walks one function body in source order, tracking
// which locals have been published (Store) or borrowed (Load), and flags
// later writes through them. Source order over-approximates execution
// order across branches, which is the conservative direction.
func checkAtomicBody(pass *Pass, body *ast.BlockStmt) {
	published := map[types.Object]bool{}
	loaded := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			switch atomicPtrMethod(pass.Info, e) {
			case "Store":
				if len(e.Args) == 1 {
					if obj := rootObj(pass.Info, e.Args[0]); obj != nil {
						published[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			// x := p.Load() borrows the published pointee.
			if e.Tok == token.DEFINE {
				for i, rhs := range e.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || atomicPtrMethod(pass.Info, call) != "Load" || i >= len(e.Lhs) {
						continue
					}
					if id, ok := e.Lhs[i].(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							loaded[obj] = true
						}
					}
				}
			}
			for _, lhs := range e.Lhs {
				checkPointeeWrite(pass, lhs, published, loaded)
			}
		case *ast.IncDecStmt:
			checkPointeeWrite(pass, e.X, published, loaded)
		}
		return true
	})
}

// checkPointeeWrite flags lhs if it writes through a published or loaded
// pointer. Rebinding the variable itself (plain `x = ...`) is not a
// pointee write and stays legal.
func checkPointeeWrite(pass *Pass, lhs ast.Expr, published, loaded map[types.Object]bool) {
	expr := ast.Unparen(lhs)
	through := false // crossed a selector/star/index: touching the pointee
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			expr, through = ast.Unparen(e.X), true
			continue
		case *ast.StarExpr:
			expr, through = ast.Unparen(e.X), true
			continue
		case *ast.IndexExpr:
			expr, through = ast.Unparen(e.X), true
			continue
		}
		break
	}
	id, ok := expr.(*ast.Ident)
	if !ok || !through {
		return
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	switch {
	case published[obj]:
		pass.Reportf(lhs.Pos(), "%s is mutated after being published via atomic.Pointer.Store: readers already share it; values must be write-complete at publish", id.Name)
	case loaded[obj]:
		pass.Reportf(lhs.Pos(), "%s was obtained from atomic.Pointer.Load and is shared with the publisher: treat it as immutable and Store a fresh value instead", id.Name)
	}
}

// atomicPtrMethod returns the method name if call invokes a method of
// sync/atomic.Pointer[T], else "".
func atomicPtrMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if named.Obj().Pkg().Path() != "sync/atomic" || named.Obj().Name() != "Pointer" {
		return ""
	}
	return fn.Name()
}

// rootObj resolves expr to the object of its root identifier, unwrapping
// unary & and parens: Store(snap) and Store(&local) both publish.
func rootObj(info *types.Info, expr ast.Expr) types.Object {
	expr = ast.Unparen(expr)
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
		expr = ast.Unparen(u.X)
	}
	if id, ok := expr.(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

// runShardOwnership is the module half: writes to shard-owned state and
// calls of its mutating methods are legal only from the owned type's own
// methods, its constructor, or inside a submit closure.
func runShardOwnership(mp *ModulePass) {
	// A method is a mutator if it writes owned fields directly or calls
	// (on the same owned type) another mutator — computed to fixpoint so
	// wrappers like ForceCheck -> check -> solve are covered.
	type methodKey struct{ typ, name string }
	methods := map[methodKey]*FuncSum{}
	var keys []methodKey
	for _, u := range mp.Units {
		for i := range u.Summary.Funcs {
			f := &u.Summary.Funcs[i]
			if f.OwnedRecv == "" {
				continue
			}
			k := methodKey{f.OwnedRecv, methodName(f.Name)}
			if _, dup := methods[k]; !dup {
				methods[k] = f
				keys = append(keys, k)
			}
		}
	}
	mutator := map[methodKey]bool{}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			if mutator[k] {
				continue
			}
			f := methods[k]
			isMut := len(f.OwnedWrites) > 0
			for _, c := range f.OwnedCalls {
				if c.Type == f.OwnedRecv && mutator[methodKey{c.Type, c.Method}] {
					isMut = true
				}
			}
			if isMut {
				mutator[k] = true
				changed = true
			}
		}
	}

	short := func(key string) string { return key[strings.LastIndexByte(key, '.')+1:] }
	for _, u := range mp.Units {
		for i := range u.Summary.Funcs {
			f := &u.Summary.Funcs[i]
			for _, w := range f.OwnedWrites {
				if f.OwnedRecv == w.Type || f.Ctor == w.Type || w.ViaSubmit {
					continue
				}
				mp.Reportf(token.Position{Filename: w.File, Line: w.Line, Column: w.Col},
					"shard-owned %s is written (%s) outside its owning worker: route the mutation through the shard's submit loop", short(w.Type), w.Expr)
			}
			for _, c := range f.OwnedCalls {
				if f.OwnedRecv == c.Type || f.Ctor == c.Type || c.ViaSubmit {
					continue
				}
				if !mutator[methodKey{c.Type, c.Method}] {
					continue
				}
				mp.Reportf(token.Position{Filename: c.File, Line: c.Line, Column: c.Col},
					"mutator %s.%s of shard-owned state is called outside its owning worker: route the call through the shard's submit loop", short(c.Type), c.Method)
			}
		}
	}
}

// methodName extracts the bare method name from a display name like
// "(*Tenant).check".
func methodName(display string) string {
	return display[strings.LastIndexByte(display, '.')+1:]
}
