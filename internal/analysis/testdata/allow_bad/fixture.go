// Fixture: malformed //caribou:allow comments are themselves findings
// under the "allow" check, and suppress nothing.
package fixture

import "time"

//caribou:allow
func noCheck() {}

//caribou:allow bogus some reason
func unknownCheck() {}

// A reasonless allow both fires the allow check and fails to suppress
// the wallclock finding on its line.
func reasonless() time.Time {
	return time.Now() //caribou:allow wallclock
}
