// Fixture: go statements produce no findings when the package is loaded
// as caribou/internal/controlplane — the control plane's shard workers
// joined the approved concurrency set, so the new subsystem is lint-clean
// by construction rather than blanket-suppressed.
package fixture

func shardWorker(jobs chan func(), quit chan struct{}) {
	go func() {
		for {
			select {
			case j := <-jobs:
				j()
			case <-quit:
				return
			}
		}
	}()
}
