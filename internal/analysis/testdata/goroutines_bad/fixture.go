// Fixture: goroutines findings. Loaded as caribou/internal/metrics by
// the test harness (not an approved concurrency package).
package fixture

func spawns(done chan struct{}) {
	go func() { // want goroutines "go statement outside the approved concurrency packages"
		done <- struct{}{}
	}()
	<-done
}

func suppressed(done chan struct{}) {
	//caribou:allow goroutines fixture exercises suppression
	go func() {
		done <- struct{}{}
	}()
	<-done
}
