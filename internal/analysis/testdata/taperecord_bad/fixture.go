// Fixture: taperecord findings. Loaded as caribou/internal/solver by the
// test harness — any package other than internal/montecarlo. The local
// type definitions mimic copying the AoS record structs out of the tape
// compiler, which is exactly the hazard the check guards against.
package fixture

// Copied record definitions (the originals are unexported in
// internal/montecarlo, so a stray AoS tape necessarily starts this way).
type tapeStep struct {
	node  int32
	flags uint8
}

type tapeEdge struct {
	to    int32
	kind  uint8
	bytes float64
}

func buildStep() tapeStep {
	return tapeStep{node: 3, flags: 1} // want taperecord "tapeStep composite literal outside caribou/internal/montecarlo"
}

func buildEdgePtr() *tapeEdge {
	return &tapeEdge{to: 4, kind: 2, bytes: 1e6} // want taperecord "tapeEdge composite literal outside caribou/internal/montecarlo"
}

func buildSlice() []tapeStep {
	return []tapeStep{ // implicit element literals are flagged, not the slice
		{node: 1}, // want taperecord "tapeStep composite literal"
		{node: 2}, // want taperecord "tapeStep composite literal"
	}
}

// Other struct literals stay silent.
type point struct{ x, y int }

func buildPoint() point { return point{1, 2} }

func suppressed() tapeStep {
	return tapeStep{node: 9} //caribou:allow taperecord fixture exercises suppression
}
