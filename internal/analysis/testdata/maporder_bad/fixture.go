// Fixture: maporder findings. Loaded as caribou/internal/eval by the
// test harness (the check applies to every package).
package fixture

import "fmt"

func printsInsideRange(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want maporder "fmt output inside range over map"
	}
}

func appendsWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder "append to keys inside range over map"
	}
	return keys
}

func sendsInsideRange(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want maporder "channel send inside range over map"
	}
}

func accumulatesFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want maporder "floating-point accumulation into sum"
	}
	return sum
}

func accumulatesString(m map[string]string) string {
	var out string
	for _, v := range m {
		out += v // want maporder "string accumulation into out"
	}
	return out
}

func nestedInsideIf(m map[string]int) []int {
	var vals []int
	if len(m) > 0 {
		for _, v := range m {
			vals = append(vals, v) // want maporder "append to vals inside range over map"
		}
	}
	return vals
}

func suppressed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //caribou:allow maporder fixture exercises suppression
	}
	return sum
}
