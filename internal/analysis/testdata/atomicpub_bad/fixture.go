// Fixture: publication-discipline violations (loaded as
// caribou/internal/controlplane, so the Tenant type below is the
// registered shard-owned type).
package controlplane

import "sync/atomic"

type snapshot struct {
	version int
	plans   []string
}

type latch struct {
	cur atomic.Pointer[snapshot]
}

// publishThenPatch mutates the snapshot after Store: readers already
// share it lock-free.
func publishThenPatch(l *latch, plans []string) {
	snap := &snapshot{plans: plans}
	l.cur.Store(snap)
	snap.version = 2 // want atomicpub "snap is mutated after being published"
}

// patchLoaded mutates a snapshot obtained from Load: it is shared with
// the publisher and every other reader.
func patchLoaded(l *latch) {
	cur := l.cur.Load()
	cur.version++ // want atomicpub "cur was obtained from atomic.Pointer.Load"
}

// Tenant matches the shard-owned registry entry for this package.
type Tenant struct {
	deltas int
}

func (t *Tenant) bump() {
	t.deltas++
}

// pokeDirect writes shard-owned state from outside any worker loop.
func pokeDirect(t *Tenant) {
	t.deltas = 0 // want atomicpub "shard-owned Tenant is written"
}

// pokeViaMutator reaches the same state through a mutating method
// without going through the shard's submit loop.
func pokeViaMutator(t *Tenant) {
	t.bump() // want atomicpub "mutator Tenant.bump of shard-owned state is called outside"
}
