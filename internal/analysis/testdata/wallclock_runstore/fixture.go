// Fixture: the durable sweep engine's clock seam. Loaded as
// caribou/internal/runstore (not wallclock-exempt): lease-expiry
// decisions flow through the injected runstore.Clock, so calls on the
// interface value are clean, while a bare time.Now in the store itself
// remains a finding — the wall clock may enter only at the annotated
// injection site in cmd/caribou-sweep.
package fixture

import "time"

type clock interface {
	Now() time.Time
}

type lock struct {
	acquiredUnix int64
	leaseSec     int64
}

// expired decides lease expiry purely through the seam: no findings.
func (l lock) expired(clk clock) bool {
	return clk.Now().Unix() >= l.acquiredUnix+l.leaseSec
}

// stamp bypasses the seam inside the store package: still a finding.
func stamp() int64 {
	return time.Now().Unix() // want wallclock "time.Now reads the wall clock"
}
