// Fixture: per-iteration allocation regressions in a hot file (loaded
// as caribou/internal/montecarlo; the file name puts it in hotalloc's
// registered replay set).
package montecarlo

import "fmt"

func box(v any) any { return v }

func replayAll(samples []float64) []string {
	var labels []string
	for i, s := range samples {
		labels = append(labels, fmt.Sprintf("s%d", i)) // want hotalloc "append to labels grows in a hot loop" want hotalloc "fmt.Sprintf call in a hot loop" want hotsprintf "fmt.Sprintf inside a loop"
		_ = box(s)                                     // want hotalloc "float64 boxed into interface parameter"
		cb := func() float64 { return s }              // want hotalloc "closure literal in a hot loop"
		_ = cb()
	}
	return labels
}
