// Fixture: interprocedural determinism taint in a target package
// (loaded as caribou/internal/solver). The exported entry points never
// touch the clock or the global RNG themselves — the sinks hide two
// frames down and behind an interface — which is exactly the hole the
// per-site wallclock/globalrand checks cannot see.
package solver

import (
	"math/rand" // want globalrand "import of math/rand"
	"time"
)

// Solve is tainted through a two-level static call chain. The sink's own
// wallclock finding is suppressed with an allow — dettaint must fire
// anyway: suppressing the syntactic diagnostic does not sanction the
// seam.
func Solve() int64 { // want dettaint "exported Solve reaches time.Now"
	return helper()
}

func helper() int64 {
	return tick()
}

func tick() int64 {
	return time.Now().UnixNano() //caribou:allow wallclock fixture: annotated helper must still taint its exported callers
}

// sampler is dispatched through an interface, so no static call edge
// reaches the sink; the method-set approximation must supply the edge.
type sampler interface {
	sample(n int) int
}

// Search reaches the global RNG via interface dispatch.
func Search(s sampler) int { // want dettaint "exported Search reaches rand.Intn"
	return s.sample(10)
}

type randSampler struct{}

func (randSampler) sample(n int) int {
	return rand.Intn(n) // want globalrand "call of rand.Intn"
}

// NewSearcher hands callers a concrete sampler so the dispatch edge is
// live.
func NewSearcher() sampler { return randSampler{} }
