// Fixture: command binaries are not approved concurrency packages.
// Loaded as caribou/cmd/caribou-load by the test harness: an unannotated
// go statement (a load-generator worker) is a finding; the same pattern
// under an allow comment with a reason is suppressed.
package fixture

func drive(tenants chan int, done chan struct{}) {
	go func() { // want goroutines "go statement outside the approved concurrency packages"
		for range tenants {
		}
		done <- struct{}{}
	}()
	<-done
}

func drivePool(tenants chan int, done chan struct{}) {
	//caribou:allow goroutines load-generator worker pool drives concurrent tenants by design
	go func() {
		for range tenants {
		}
		done <- struct{}{}
	}()
	<-done
}
