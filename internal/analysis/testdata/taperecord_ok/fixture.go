// Fixture: no taperecord findings when loaded as
// caribou/internal/montecarlo — the tape compiler owns its AoS records.
package fixture

type tapeStep struct {
	node  int32
	flags uint8
}

type tapeEdge struct {
	to    int32
	kind  uint8
	bytes float64
}

func compile() ([]tapeStep, []tapeEdge) {
	steps := []tapeStep{{node: 0}, {node: 1, flags: 2}}
	edges := []tapeEdge{{to: 1, kind: 1, bytes: 5e5}}
	return steps, edges
}
