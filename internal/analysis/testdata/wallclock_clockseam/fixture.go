// Fixture: the control plane's clock seam. Loaded as
// caribou/internal/controlplane (not wallclock-exempt): time flows
// through an injected Clock interface, so calls on the interface value
// are clean; constructing the real clock is the one unavoidable
// wall-clock site and carries an allow comment with a reason; a bare
// time.Now anywhere else in the package remains a finding.
package fixture

import "time"

type clock interface {
	Now() time.Time
}

type clockFunc func() time.Time

func (f clockFunc) Now() time.Time { return f() }

// serve stamps serving metadata through the seam: no findings, whatever
// clock was injected.
func serve(clk clock) time.Time {
	return clk.Now()
}

// realClock is the server binary's injection site: the single annotated
// wall-clock read behind the seam.
func realClock() clock {
	//caribou:allow wallclock serving-edge clock stamps served_at metadata only; plan content never reads it
	return clockFunc(time.Now)
}

// leaky bypasses the seam: still a finding.
func leaky() time.Time {
	return time.Now() // want wallclock "time.Now reads the wall clock"
}
