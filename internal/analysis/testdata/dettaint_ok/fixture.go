// Fixture: dettaint negative cases (loaded as caribou/internal/solver).
// A sink behind an explicit //caribou:allow dettaint is a sanctioned
// seam — taint stops there, so the exported callers stay clean — and
// sinks reachable only from unexported functions are not findings (the
// contract covers the package's exported surface).
package solver

import "time"

// Anchor reaches a sanctioned seam: no finding, and both allows below
// count as used (no stale diagnostics either).
func Anchor() int64 {
	return seamHelper()
}

func seamHelper() int64 {
	//caribou:allow dettaint fixture: sanctioned clock seam for the derived-stream anchor
	return time.Now().UnixNano() //caribou:allow wallclock fixture: sanctioned clock seam for the derived-stream anchor
}

// internalOnly sinks but is unexported and unreachable from any exported
// function, so dettaint stays quiet; the per-site wallclock finding is
// suppressed conventionally.
func internalOnly() int64 {
	return time.Now().UnixNano() //caribou:allow wallclock fixture: unexported probe outside the exported contract
}

// Clean is exported and reaches no sink at all.
func Clean(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
