// Fixture: the same wall-clock calls produce no findings when the
// package is loaded as caribou/internal/telemetry (the exempt package:
// spans and events are wall-stamped by design).
package fixture

import "time"

func stamp() time.Duration {
	start := time.Now()
	return time.Since(start)
}
