// Fixture: wallclock findings in a non-exempt package. Loaded as
// caribou/internal/metrics by the test harness.
package fixture

import "time"

func uses() time.Duration {
	start := time.Now() // want wallclock "time.Now reads the wall clock"
	time.Sleep(0)       // want wallclock "time.Sleep reads the wall clock"
	<-time.After(0)     // want wallclock "time.After reads the wall clock"
	f := time.Now       // want wallclock "time.Now reads the wall clock"
	_ = f
	return time.Since(start) // want wallclock "time.Since reads the wall clock"
}

// Pure time construction and comparison stays allowed.
func pure() bool {
	a := time.Unix(0, 0)
	b := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	return a.After(b) || a.Before(b)
}

// Suppressions: a trailing allow and a standalone allow above the line.
func suppressedTrailing() time.Time {
	return time.Now() //caribou:allow wallclock fixture exercises trailing suppression
}

func suppressedAbove() time.Time {
	//caribou:allow wallclock fixture exercises standalone suppression
	return time.Now()
}
