// Fixture: the same formatting produces no findings when the package is
// loaded as caribou/internal/eval — hotsprintf only covers the
// montecarlo/solver/stats hot paths.
package fixture

import "fmt"

func sprintfInLoop(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("row/%d", i))
	}
	return out
}
