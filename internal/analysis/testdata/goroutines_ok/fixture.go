// Fixture: go statements produce no findings when the package is loaded
// as caribou/internal/solver (an approved concurrency package).
package fixture

func spawns(done chan struct{}) {
	go func() {
		done <- struct{}{}
	}()
	<-done
}
