// Package solver seeds the acceptance-criteria violation for dettaint:
// a wallclock call two levels below an exported solver entry point.
package solver

import "time"

// Solve is the exported surface; the clock hides in jitter, two frames
// down.
func Solve(n int) int64 {
	total := int64(n)
	return total + helper()
}

func helper() int64 {
	return jitter()
}

func jitter() int64 {
	return time.Now().UnixNano()
}
