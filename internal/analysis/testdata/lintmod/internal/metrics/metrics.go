// Package metrics seeds the acceptance-criteria violation for the
// "allow" meta-check: a suppression left behind after the finding it
// covered was fixed.
package metrics

// Observe once read the wall clock; the fix landed, the allow did not
// leave with it.
func Observe(v float64) float64 {
	//caribou:allow wallclock times the scrape loop
	return v
}
