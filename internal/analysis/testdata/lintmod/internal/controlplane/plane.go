// Package controlplane seeds the acceptance-criteria violation for
// atomicpub: a mutation of a snapshot after it was published via
// atomic.Pointer.Store.
package controlplane

import "sync/atomic"

type planSnapshot struct {
	version int
}

type tenantState struct {
	plan atomic.Pointer[planSnapshot]
}

func publish(t *tenantState, version int) {
	snap := &planSnapshot{}
	t.plan.Store(snap)
	snap.version = version
}
