module caribou

go 1.22
