// Fixture: stale suppression detection (loaded as
// caribou/internal/metrics). A well-formed //caribou:allow that
// suppresses nothing is itself a finding, so burn-downs cannot leave
// dead annotations behind; an allow that still suppresses something
// stays silent.
package metrics

import "time"

// staleAfterFix shows the failure mode: the wallclock call this allow
// once covered was fixed, the annotation was forgotten.
func staleAfterFix() int {
	//caribou:allow wallclock the call this covered is long gone // want allow "stale suppression"
	return 42
}

// stillUsed keeps a live suppression: no stale diagnostic, and the
// wallclock finding stays suppressed.
func stillUsed() int64 {
	return time.Now().UnixNano() //caribou:allow wallclock fixture: real-experiment timing probe
}
