// Fixture: hotsprintf findings. Loaded as caribou/internal/montecarlo
// by the test harness (one of the hot packages).
package fixture

import (
	"fmt"
	"strconv"
)

func sprintfInLoop(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("mc/%d", i)) // want hotsprintf "fmt.Sprintf inside a loop in a hot package"
	}
	return out
}

func concatInRange(names []string) []string {
	var out []string
	for _, name := range names {
		out = append(out, "mc/"+name) // want hotsprintf "string concatenation inside a loop"
	}
	return out
}

func plusEqualsInLoop(names []string) string {
	s := ""
	for _, name := range names {
		s += name // want hotsprintf "string += inside a loop"
	}
	return s
}

// Outside any loop, formatting is fine.
func sprintfOutsideLoop(i int) string { return fmt.Sprintf("mc/%d", i) }

// Constant concatenation folds at compile time; fmt.Errorf is an error
// path that fires once and unwinds; strconv.AppendInt is the sanctioned
// in-loop builder.
func allowedInLoop(n int) ([]byte, error) {
	const prefix = "mc/" + "hour/"
	buf := make([]byte, 0, 16)
	for i := 0; i < n; i++ {
		buf = append(buf[:0], prefix...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		if len(buf) == 0 {
			return nil, fmt.Errorf("empty label %d", i)
		}
	}
	return buf, nil
}

func suppressed(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s = fmt.Sprintf("%s/%d", s, i) //caribou:allow hotsprintf fixture exercises suppression
	}
	return s
}
