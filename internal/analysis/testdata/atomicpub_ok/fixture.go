// Fixture: publication-discipline negative and suppressed cases (loaded
// as caribou/internal/controlplane; Tenant is the registered shard-owned
// type).
package controlplane

import "sync/atomic"

type snapshot struct {
	version int
	plans   []string
}

type latch struct {
	cur atomic.Pointer[snapshot]
}

// buildThenPublish is the discipline the analyzer enforces: every write
// lands before Store, and republishing means building a fresh value.
func buildThenPublish(l *latch, plans []string) {
	snap := &snapshot{plans: plans}
	snap.version = 1
	l.cur.Store(snap)

	next := &snapshot{plans: plans, version: snap.version + 1}
	l.cur.Store(next)
}

// readLoaded reads a loaded snapshot without mutating it.
func readLoaded(l *latch) int {
	cur := l.cur.Load()
	if cur == nil {
		return 0
	}
	return cur.version
}

// Tenant matches the shard-owned registry entry for this package.
type Tenant struct {
	deltas int
	closed bool
}

func (t *Tenant) bump() {
	t.deltas++ // owned method: mutation on the owning worker's behalf
}

func (t *Tenant) snapshotDeltas() int {
	return t.deltas // reader, not a mutator: callable from anywhere
}

// newTenant is the constructor: it owns the value exclusively until it
// returns, so its writes are exempt.
func newTenant() *Tenant {
	t := &Tenant{}
	t.deltas = 0
	t.bump()
	return t
}

type shard struct{}

func (s *shard) submit(fn func()) { fn() }

// viaWorker routes the mutation through the shard's submit loop — the
// sanctioned path.
func viaWorker(s *shard, t *Tenant) {
	s.submit(func() {
		t.bump()
		t.deltas = 7
	})
}

// readAnywhere calls a non-mutating method outside the worker loop.
func readAnywhere(t *Tenant) int {
	return t.snapshotDeltas()
}

// drainSanctioned documents a reviewed exception with a reasoned allow.
func drainSanctioned(t *Tenant) {
	t.closed = true //caribou:allow atomicpub fixture: shutdown path runs after every worker has quiesced
}
