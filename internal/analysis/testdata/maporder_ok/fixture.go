// Fixture: order-insensitive map iteration bodies and the sanctioned
// collect-then-sort idiom produce no maporder findings.
package fixture

import (
	"fmt"
	"sort"
)

// Collect-then-sort: the appended slice is sorted before use.
func collectThenSort(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// sort.Slice with the collected rows as the first argument also counts.
func collectThenSortSlice(m map[string]float64) []float64 {
	var rows []float64
	for _, v := range m {
		rows = append(rows, v)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// Integer counting, min/max via comparison, and map writes are
// order-insensitive.
func orderInsensitive(m map[string]int) (int, int, map[string]int) {
	count := 0
	best := 0
	inverted := make(map[string]int, len(m))
	for k, v := range m {
		count++
		if v > best {
			best = v
		}
		inverted[k] = v
	}
	return count, best, inverted
}

// Appending while ranging over a slice is fine: slice order is fixed.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Appending to a slice declared inside the loop body never outlives an
// iteration.
func innerSlice(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		doubled = append(doubled, vs...)
		total += len(doubled)
	}
	return total
}
