// Fixture: globalrand findings in a non-exempt package. Loaded as
// caribou/internal/solver by the test harness.
package fixture

import "math/rand" // want globalrand "import of math/rand outside internal/simclock"

func draws() float64 {
	n := rand.Intn(5)                                // want globalrand "call of rand.Intn outside internal/simclock"
	r := rand.New(rand.NewSource(1))                 // want globalrand "call of rand.New outside internal/simclock" // want globalrand "call of rand.NewSource outside internal/simclock"
	return float64(n) + rand.Float64() + r.Float64() // want globalrand "call of rand.Float64 outside internal/simclock"
}

// Methods on an already-obtained generator are not re-flagged: the
// violation is obtaining it here, reported at rand.New above.
func method(r *rand.Rand) float64 { return r.ExpFloat64() }

func suppressed() int {
	return rand.Int() //caribou:allow globalrand fixture exercises suppression
}
