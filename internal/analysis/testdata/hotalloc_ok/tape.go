// Fixture: hotalloc negative and suppressed cases in a registered hot
// file (loaded as caribou/internal/montecarlo).
package montecarlo

import "fmt"

func sum(f func(float64) float64, samples []float64) float64 {
	total := 0.0
	for _, s := range samples {
		total += f(s)
	}
	return total
}

func replayPrealloc(samples []float64) []float64 {
	// Preallocated capacity: append never regrows.
	out := make([]float64, 0, len(samples))
	for _, s := range samples {
		out = append(out, s*2)
	}
	return out
}

func replayReuse(buf []byte, samples []float64) []byte {
	// buf arrives from the caller (unknown provenance) and is reset with
	// a [:0] re-slice — the reuse idiom, not regrowth.
	for range samples {
		buf = append(buf[:0], 'x')
	}
	return buf
}

func replayFresh(samples []float64) int {
	n := 0
	for range samples {
		// Declared inside the loop: fresh each iteration, not regrowth.
		local := []int{}
		local = append(local, 1)
		n += len(local)
	}
	return n
}

func replayHoisted(samples []float64) float64 {
	// Closure hoisted out of the loop: allocated once.
	double := func(s float64) float64 { return s * 2 }
	return sum(double, samples)
}

func replayDiag(samples []float64) {
	for i := range samples {
		if i == 0 {
			fmt.Println("replay diagnostics enabled") //caribou:allow hotalloc fixture: one-shot diagnostic guarded to the first iteration
		}
	}
}
