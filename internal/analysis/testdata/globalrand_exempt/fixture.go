// Fixture: math/rand produces no findings when the package is loaded as
// caribou/internal/simclock (the package that owns the stream
// discipline).
package fixture

import "math/rand"

func draw() float64 {
	return rand.New(rand.NewSource(1)).Float64()
}
