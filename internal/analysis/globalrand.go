package analysis

import (
	"go/types"
	"strconv"
)

// globalrandExempt lists packages that may touch math/rand directly:
// simclock owns the seeded-stream discipline (DeriveRand/DeriveSeed) and
// pins its lazySource against math/rand draw-for-draw.
var globalrandExempt = []string{
	"caribou/internal/simclock",
}

// randPkgs are the import paths the check covers.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// GlobalRandAnalyzer flags math/rand outside internal/simclock: both the
// import itself and every call of a package-level function (Int, Intn,
// Float64, Perm, Shuffle, Seed, New, NewSource, ...). The global
// math/rand stream is process-wide mutable state — draws depend on
// whatever ran before, so results stop being a function of the seed.
// Every random stream must come from simclock.DeriveRand, which derives
// an isolated generator from (seed, label).
var GlobalRandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "flag math/rand use outside internal/simclock; streams must come from simclock.DeriveRand",
	Run: func(p *Pass) {
		if pathInAny(p.PkgPath, globalrandExempt) {
			return
		}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && randPkgs[path] {
					p.Reportf(imp.Pos(), "import of %s outside internal/simclock: derive streams with simclock.DeriveRand(seed, label) instead", path)
				}
			}
		}
		for id, obj := range p.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
				continue
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				continue // methods on an already-obtained *rand.Rand value
			}
			p.Reportf(id.Pos(), "call of %s.%s outside internal/simclock: the global stream is process-wide state; use simclock.DeriveRand(seed, label)", fn.Pkg().Name(), fn.Name())
		}
	},
}
