package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package of the module (test files
// excluded — the invariants protect output-producing simulation code;
// tests time and randomize things on purpose).
type Package struct {
	Path  string // import path, e.g. caribou/internal/solver
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks module packages against a shared file set, serving
// stdlib imports from the source importer (stdlib-only: no export data,
// no x/tools) and module-internal imports from its own earlier results.
type Loader struct {
	Fset *token.FileSet
	std  types.Importer
	done map[string]*types.Package
}

// NewLoader returns a loader with an empty module cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		done: make(map[string]*types.Package),
	}
}

// Import implements types.Importer: module-internal packages must already
// be checked (LoadModule orders them topologically); everything else is
// assumed stdlib and compiled from source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.done[path]; ok {
		return p, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test .go files of a single
// directory as the package pkgPath. The declared path matters: several
// analyzers exempt or target packages by import path, and fixture tests
// use this to stand a testdata directory in for, say,
// caribou/internal/telemetry.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	l.done[pkgPath] = tpkg
	return &Package{Path: pkgPath, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadModule loads every package of the module rooted at root (the
// directory containing go.mod), type-checking them in dependency order.
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped, matching the go tool's convention.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// Parse every package first so the internal import graph is known
	// before any type-checking starts.
	l := NewLoader()
	type parsed struct {
		dir     string
		path    string
		files   []*ast.File
		imports []string // module-internal imports only
	}
	byPath := make(map[string]*parsed, len(dirs))
	var order []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		p := &parsed{dir: dir, path: pkgPath}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			p.files = append(p.files, f)
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.imports = append(p.imports, ip)
				}
			}
		}
		if len(p.files) == 0 {
			continue
		}
		byPath[pkgPath] = p
		order = append(order, pkgPath)
	}

	// Topological order over module-internal imports (the module compiles,
	// so cycles cannot occur; guard anyway to fail loudly).
	var pkgs []*Package
	state := make(map[string]int, len(byPath)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		p, ok := byPath[path]
		if !ok || state[path] == 2 {
			return nil
		}
		if state[path] == 1 {
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = 1
		for _, imp := range p.imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = 2

		info := &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Uses:  make(map[*ast.Ident]types.Object),
			Defs:  make(map[*ast.Ident]types.Object),
		}
		conf := types.Config{Importer: l}
		tpkg, err := conf.Check(path, l.Fset, p.files, info)
		if err != nil {
			return fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		l.done[path] = tpkg
		pkgs = append(pkgs, &Package{Path: path, Fset: l.Fset, Files: p.files, Types: tpkg, Info: info})
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest != "" {
				return strings.Trim(rest, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}
