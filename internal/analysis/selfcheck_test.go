package analysis

import (
	"testing"
)

// TestRepoIsLintClean is the self-check: the whole module must carry
// zero unsuppressed findings, so `make lint` (and CI) stays green and a
// regression in either the code or the analyzers shows up in the plain
// test suite. Every suppression in the tree carries a reason by
// construction — a reasonless //caribou:allow is itself a finding.
func TestRepoIsLintClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Lint(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
	}
	if len(diags) > 0 {
		t.Fatalf("caribou-lint reports %d finding(s) on the repo; fix them or annotate with //caribou:allow <check> <reason>", len(diags))
	}
}
