package analysis

import (
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// dettaintTargets are the packages whose exported surface must be
// transitively free of wall-clock and global-rand reach: the solver and
// Monte Carlo engine produce the figures, the eval harness memoizes runs
// by configuration alone, and the control plane's plan bodies must be a
// function of (seed, pushed deltas, virtual time) only.
var dettaintTargets = []string{
	"caribou/internal/solver",
	"caribou/internal/montecarlo",
	"caribou/internal/eval",
	"caribou/internal/controlplane",
}

// dettaintSanctioned are the packages whose wall-clock and rand use is
// the design, not a leak: simclock owns the derived-stream discipline
// and pins its generator against math/rand; telemetry wall-stamps spans
// and events on purpose and never feeds simulation state. Calls into
// these packages carry no taint.
var dettaintSanctioned = []string{
	"caribou/internal/simclock",
	"caribou/internal/telemetry",
}

// DetTaintAnalyzer is the interprocedural version of the wallclock and
// globalrand checks: it propagates "can reach a wall-clock/global-rand
// sink" backwards over the module call graph (static edges plus
// name-and-signature interface dispatch, summary.go) and reports every
// *exported* function of a target package that is tainted, printing one
// offending chain. A per-site //caribou:allow wallclock suppresses only
// the syntactic diagnostic; the taint still flows, which closes the
// "annotated helper two frames below the solver loop" hole. The only
// ways to stop propagation are the sanctioned packages above and an
// explicit //caribou:allow dettaint on the sink site itself (the clock
// seams: injected Clock constructions and real-experiment timing).
var DetTaintAnalyzer = &Analyzer{
	Name: "dettaint",
	Doc:  "flag exported solver/montecarlo/eval/controlplane functions that transitively reach a wall-clock or global-rand sink",
	RunModule: func(mp *ModulePass) {
		runDetTaint(mp)
	},
}

// taintNode is one call-graph node during propagation.
type taintNode struct {
	fun  *FuncSum
	pkg  string
	sink *SinkSum // set on directly sinking nodes
	via  string   // tainted through this callee's ID (propagation tree)
}

func runDetTaint(mp *ModulePass) {
	// Node table and reverse-edge map. Units arrive path-sorted and
	// functions in declaration order, so every iteration below is
	// deterministic.
	nodes := map[string]*taintNode{}
	var order []string
	methodIdx := map[DynCall][]string{} // (name, sig) -> method func IDs
	for _, u := range mp.Units {
		for i := range u.Summary.Funcs {
			f := &u.Summary.Funcs[i]
			if _, dup := nodes[f.ID]; dup {
				continue // e.g. build-tag twins; first declaration wins
			}
			nodes[f.ID] = &taintNode{fun: f, pkg: u.Summary.Path}
			order = append(order, f.ID)
		}
		for _, m := range u.Summary.Methods {
			key := DynCall{Method: m.Method, Sig: m.Sig}
			methodIdx[key] = append(methodIdx[key], m.FuncID)
		}
	}

	rev := map[string][]string{} // callee ID -> caller IDs
	addEdge := func(caller, callee string) {
		rev[callee] = append(rev[callee], caller)
	}
	for _, id := range order {
		n := nodes[id]
		for _, callee := range n.fun.Calls {
			addEdge(id, callee)
		}
		for _, dyn := range n.fun.Dyn {
			impls := methodIdx[dyn]
			sort.Strings(impls)
			for _, impl := range impls {
				addEdge(id, impl)
			}
		}
	}

	// Seed: every unsanctioned sink site taints its enclosing function.
	// An //caribou:allow dettaint on the sink's line sanctions the site
	// (and is thereby used, not stale).
	var queue []string
	for _, id := range order {
		n := nodes[id]
		if pathInAny(n.pkg, dettaintSanctioned) {
			continue
		}
		for i := range n.fun.Sinks {
			s := &n.fun.Sinks[i]
			if mp.SiteSanctioned(s.File, s.Line) {
				continue
			}
			if n.sink == nil {
				n.sink = s
				queue = append(queue, id)
			}
		}
	}

	// Breadth-first propagation to callers. FIFO over deterministic seed
	// and edge order makes the recorded chains deterministic too.
	tainted := map[string]bool{}
	for _, id := range queue {
		tainted[id] = true
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		callers := rev[id]
		sort.Strings(callers)
		seen := ""
		for _, c := range callers {
			if c == seen {
				continue
			}
			seen = c
			cn, ok := nodes[c]
			if !ok || tainted[c] || pathInAny(cn.pkg, dettaintSanctioned) {
				continue
			}
			tainted[c] = true
			cn.via = id
			queue = append(queue, c)
		}
	}

	// Report every tainted exported function of a target package, with
	// the chain from it down to the sink.
	for _, id := range order {
		n := nodes[id]
		if !tainted[id] || !n.fun.Exported || !pathInAny(n.pkg, dettaintTargets) {
			continue
		}
		chain, sink := taintChain(nodes, id)
		if sink == nil {
			continue // defensive: broken via-link
		}
		pos := token.Position{Filename: n.fun.File, Line: n.fun.Line, Column: n.fun.Col}
		if len(chain) == 1 {
			mp.Reportf(pos, "exported %s calls %s (%s:%d) directly: derive time/randomness through simclock, or sanction the seam with //caribou:allow dettaint <reason> on the sink line",
				n.fun.Name, sink.Desc, filepath.Base(sink.File), sink.Line)
			continue
		}
		mp.Reportf(pos, "exported %s reaches %s (%s:%d) via %s: derive time/randomness through simclock, or sanction the seam with //caribou:allow dettaint <reason> on the sink line",
			n.fun.Name, sink.Desc, filepath.Base(sink.File), sink.Line, strings.Join(chain, " -> "))
	}
}

// taintChain walks the propagation tree from id down to the sinking
// node, returning display names along the way and the sink itself.
func taintChain(nodes map[string]*taintNode, id string) ([]string, *SinkSum) {
	var chain []string
	for steps := 0; steps < 1024; steps++ {
		n, ok := nodes[id]
		if !ok {
			return chain, nil
		}
		chain = append(chain, n.fun.Name)
		if n.sink != nil {
			return chain, n.sink
		}
		if n.via == "" {
			return chain, nil
		}
		id = n.via
	}
	return chain, nil
}
