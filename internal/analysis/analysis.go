// Package analysis is the repo's in-tree static analyzer framework: a
// harness over the standard library's go/ast, go/parser, and go/types
// (source importer — no x/tools dependency) that encodes the determinism
// and telemetry invariants the dynamic parity tests assume.
//
// Every figure in this reproduction must be byte-identical across worker
// counts, telemetry on/off, and taped vs untaped Monte Carlo paths. The
// analyzers turn the rules that make that possible — simulated time only,
// derived RNG streams only, no output from unsorted map iteration, no
// formatting or allocation in sampling-loop hot paths, goroutines only
// where the determinism audit expects them, atomically published values
// never mutated after publication — into machine-checked diagnostics, so
// the invariants survive refactoring instead of living in reviewers'
// heads.
//
// v2 adds a whole-module layer: per-package analyzers inspect one
// type-checked package at a time, while module analyzers (dettaint,
// atomicpub's ownership rule) run over a conservative call graph built
// from per-package fact summaries (summary.go) — static call edges plus
// name-and-signature method-set matching for interface dispatch. The
// summaries are JSON-serializable, which is what lets the cached driver
// (driver.go) skip type-checking entirely on warm runs and still produce
// byte-identical output.
//
// A finding can be suppressed with a trailing or preceding comment
//
//	//caribou:allow <check> <reason>
//
// where the reason is mandatory: an allow comment without one is itself
// a diagnostic (check "allow"), and so is a well-formed allow that
// suppresses nothing — burn-downs cannot leave dead annotations behind.
// See cmd/caribou-lint for the driver and DESIGN.md "Static analysis v2"
// for the rationale behind each check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the check that fired, and a
// human-readable message. The driver renders it as
// "file:line: [check] message".
type Diagnostic struct {
	Pos     token.Position `json:"pos"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

// Analyzer is one named check. Run inspects a single type-checked
// package; RunModule inspects the whole module through its fact
// summaries. Either may be nil.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass hands one analyzer one package. Reportf attaches the analyzer's
// name to each diagnostic.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	check string
	out   *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass hands one module analyzer the whole module: every package's
// fact summary, in import-path order. Positions are plain
// token.Positions (summaries carry no FileSet — warm cache runs never
// construct one).
type ModulePass struct {
	Units []*PkgUnit

	check  string
	out    *[]Diagnostic
	allows *allowIndex
}

// Reportf records a module-level finding at pos.
func (mp *ModulePass) Reportf(pos token.Position, format string, args ...any) {
	*mp.out = append(*mp.out, Diagnostic{
		Pos:     pos,
		Check:   mp.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// SiteSanctioned reports whether a well-formed //caribou:allow comment
// for the pass's check covers (file, line) — same line or the line above
// — and marks it used. Module analyzers use this to let an annotation at
// a *source site* (e.g. a sanctioned clock seam) stop fact propagation,
// not just suppress a finding.
func (mp *ModulePass) SiteSanctioned(file string, line int) bool {
	return mp.allows.use(mp.check, file, line)
}

// PkgUnit is the cacheable per-package analysis result: the raw
// (pre-suppression) findings of every per-package analyzer, the parsed
// allow comments, the malformed-allow diagnostics, and the fact summary
// the module phase consumes. The cached driver serializes this struct
// verbatim; Finish recombines units into final output identically
// whether they were just computed or decoded from disk.
type PkgUnit struct {
	Path       string         `json:"path"`
	Raw        []Diagnostic   `json:"raw,omitempty"`
	AllowDiags []Diagnostic   `json:"allow_diags,omitempty"`
	Allows     []AllowComment `json:"allows,omitempty"`
	Summary    *PkgSummary    `json:"summary"`
}

// Analyzers returns the full suite in a fixed order. The "allow" check
// (malformed and stale suppression comments) is implemented by Finish
// itself, not listed here, but its name is reserved — see ValidChecks.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		GlobalRandAnalyzer,
		MapOrderAnalyzer,
		HotSprintfAnalyzer,
		GoroutinesAnalyzer,
		TapeRecordAnalyzer,
		DetTaintAnalyzer,
		HotAllocAnalyzer,
		AtomicPubAnalyzer,
	}
}

// ValidChecks returns the set of check names an //caribou:allow comment
// may name: every analyzer plus the reserved "allow" meta-check.
func ValidChecks(analyzers []*Analyzer) map[string]bool {
	valid := map[string]bool{allowCheck: true}
	for _, a := range analyzers {
		valid[a.Name] = true
	}
	return valid
}

// AnalyzePackage runs every per-package analyzer over pkg and builds its
// fact summary. Raw findings are sorted into canonical order so the
// result — and its cached serialization — is deterministic regardless of
// analyzer-internal map iteration.
func AnalyzePackage(pkg *Package, analyzers []*Analyzer) *PkgUnit {
	unit := &PkgUnit{Path: pkg.Path}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Fset:    pkg.Fset,
			Files:   pkg.Files,
			PkgPath: pkg.Path,
			Pkg:     pkg.Types,
			Info:    pkg.Info,
			check:   a.Name,
			out:     &unit.Raw,
		}
		a.Run(pass)
	}
	allows, diags := collectAllows(pkg.Fset, pkg.Files, ValidChecks(analyzers))
	unit.Allows = allows
	unit.AllowDiags = diags
	unit.Summary = BuildSummary(pkg)
	sortDiagnostics(unit.Raw)
	sortDiagnostics(unit.AllowDiags)
	return unit
}

// Finish combines per-package units into the final diagnostic list: it
// runs the module analyzers over the summaries, applies //caribou:allow
// suppressions, reports malformed and stale allow comments, and returns
// everything sorted by (file, line, column, check). Unit order does not
// matter — Finish sorts them by path first — so cold, warm, and
// mixed-cache runs produce identical bytes.
func Finish(units []*PkgUnit, analyzers []*Analyzer) []Diagnostic {
	units = append([]*PkgUnit(nil), units...)
	sort.Slice(units, func(i, j int) bool { return units[i].Path < units[j].Path })

	allows := newAllowIndex(units)

	var raw []Diagnostic
	for _, u := range units {
		raw = append(raw, u.Raw...)
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Units: units, check: a.Name, out: &raw, allows: allows}
		a.RunModule(mp)
	}

	var out []Diagnostic
	for _, u := range units {
		out = append(out, u.AllowDiags...)
	}
	for _, d := range raw {
		if !allows.use(d.Check, d.Pos.Filename, d.Pos.Line) {
			out = append(out, d)
		}
	}
	out = append(out, allows.stale()...)

	sortDiagnostics(out)
	return out
}

// Lint runs the full suite — per-package analyzers, module analyzers,
// suppression, allow validation — over the given packages and returns
// the surviving findings in canonical order.
func Lint(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	units := make([]*PkgUnit, 0, len(pkgs))
	for _, pkg := range pkgs {
		units = append(units, AnalyzePackage(pkg, analyzers))
	}
	return Finish(units, analyzers)
}

// sortDiagnostics orders diagnostics by (file, line, column, check,
// message) — the canonical output order pinned by the golden test.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// pathIn reports whether pkgPath is path itself or a package under it.
func pathIn(pkgPath, prefix string) bool {
	return pkgPath == prefix || (len(pkgPath) > len(prefix) &&
		pkgPath[:len(prefix)] == prefix && pkgPath[len(prefix)] == '/')
}

// pathInAny reports whether pkgPath sits in any of the prefixes.
func pathInAny(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pathIn(pkgPath, p) {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the package-level function it
// invokes, or nil for method calls, conversions, and calls through
// variables. Renamed imports resolve correctly because the lookup goes
// through the type checker's Uses map, not the source text.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}

// isPkgFunc reports whether call invokes a package-level function from
// pkgPath whose name is in names.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names map[string]bool) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && names[fn.Name()]
}
