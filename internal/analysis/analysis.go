// Package analysis is the repo's in-tree static analyzer framework: a
// small harness over the standard library's go/ast, go/parser, and
// go/types (source importer — no x/tools dependency) that encodes the
// determinism and telemetry invariants the dynamic parity tests assume.
//
// Every figure in this reproduction must be byte-identical across worker
// counts, telemetry on/off, and taped vs untaped Monte Carlo paths. The
// analyzers turn the rules that make that possible — simulated time only,
// derived RNG streams only, no output from unsorted map iteration, no
// formatting in sampling-loop hot paths, goroutines only where the
// determinism audit expects them — into machine-checked diagnostics, so
// the invariants survive refactoring instead of living in reviewers'
// heads.
//
// A finding can be suppressed with a trailing or preceding comment
//
//	//caribou:allow <check> <reason>
//
// where the reason is mandatory: an allow comment without one is itself
// a diagnostic (check "allow"). See cmd/caribou-lint for the driver and
// DESIGN.md "Static analysis" for the rationale behind each check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the check that fired, and a
// human-readable message. The driver renders it as
// "file:line: [check] message".
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands one analyzer one package. Reportf attaches the analyzer's
// name to each diagnostic.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	check string
	out   *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in a fixed order. The "allow" check
// (malformed suppression comments) is implemented by Lint itself, not
// listed here, but its name is reserved — see ValidChecks.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		GlobalRandAnalyzer,
		MapOrderAnalyzer,
		HotSprintfAnalyzer,
		GoroutinesAnalyzer,
		TapeRecordAnalyzer,
	}
}

// ValidChecks returns the set of check names an //caribou:allow comment
// may name: every analyzer plus the reserved "allow" meta-check.
func ValidChecks(analyzers []*Analyzer) map[string]bool {
	valid := map[string]bool{allowCheck: true}
	for _, a := range analyzers {
		valid[a.Name] = true
	}
	return valid
}

// Lint runs every analyzer over every package, applies //caribou:allow
// suppressions, appends diagnostics for malformed allow comments, and
// returns the surviving findings sorted by file, line, column, check.
func Lint(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:    pkg.Fset,
				Files:   pkg.Files,
				PkgPath: pkg.Path,
				Pkg:     pkg.Types,
				Info:    pkg.Info,
				check:   a.Name,
				out:     &raw,
			}
			a.Run(pass)
		}
	}

	valid := ValidChecks(analyzers)
	var allows []allowComment
	var out []Diagnostic
	for _, pkg := range pkgs {
		a, diags := collectAllows(pkg.Fset, pkg.Files, valid)
		allows = append(allows, a...)
		out = append(out, diags...)
	}
	for _, d := range raw {
		if !suppressed(d, allows) {
			out = append(out, d)
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// pathIn reports whether pkgPath is path itself or a package under it.
func pathIn(pkgPath, prefix string) bool {
	return pkgPath == prefix || (len(pkgPath) > len(prefix) &&
		pkgPath[:len(prefix)] == prefix && pkgPath[len(prefix)] == '/')
}

// pathInAny reports whether pkgPath sits in any of the prefixes.
func pathInAny(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pathIn(pkgPath, p) {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the package-level function it
// invokes, or nil for method calls, conversions, and calls through
// variables. Renamed imports resolve correctly because the lookup goes
// through the type checker's Uses map, not the source text.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}

// isPkgFunc reports whether call invokes a package-level function from
// pkgPath whose name is in names.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names map[string]bool) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && names[fn.Name()]
}
