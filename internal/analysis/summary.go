package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// summary.go builds the per-package fact summaries the module-level
// analyzers (dettaint, atomicpub's ownership rule) consume. A summary is
// deliberately self-contained and JSON-serializable: the cached lint
// driver (driver.go) stores it next to the package's raw diagnostics, so
// a warm run can re-run the whole-module propagation phase without
// type-checking a single package. Cold and warm runs therefore flow
// through the identical data structure, which is what makes their output
// byte-identical.

// PkgSummary is the module-analysis fact base extracted from one
// type-checked package.
type PkgSummary struct {
	Path    string      `json:"path"`
	Funcs   []FuncSum   `json:"funcs,omitempty"`
	Methods []MethodSum `json:"methods,omitempty"`
}

// FuncSum summarizes one function or method body.
type FuncSum struct {
	// ID is the stable identity used for call-graph edges:
	// types.Func.FullName(), e.g. "caribou/internal/solver.assignKey" or
	// "(*caribou/internal/solver.search).solveHBSS".
	ID string `json:"id"`
	// Name is the short display form used in printed taint chains, e.g.
	// "Solve" or "(*search).solveHBSS".
	Name     string `json:"name"`
	Exported bool   `json:"exported,omitempty"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`

	// Calls lists the module functions this body references — calls and
	// bare function-value references alike (a reference can be invoked
	// later, so treating it as an edge is the conservative choice).
	Calls []string `json:"calls,omitempty"`
	// Dyn lists interface-method call sites; the module phase resolves
	// each against every module method with the same name and signature.
	Dyn []DynCall `json:"dyn,omitempty"`
	// Sinks lists direct wallclock/global-rand uses in the body.
	Sinks []SinkSum `json:"sinks,omitempty"`

	// OwnedRecv marks methods of a shard-owned type (atomicpub): the
	// owned type's key, e.g. "caribou/internal/controlplane.Tenant".
	OwnedRecv string `json:"owned_recv,omitempty"`
	// Ctor marks the owned type's constructor (newT/NewT returning it);
	// constructors may mutate freely — the value is not shared yet.
	Ctor string `json:"ctor,omitempty"`
	// OwnedWrites lists direct field writes to shard-owned state.
	OwnedWrites []OwnedWrite `json:"owned_writes,omitempty"`
	// OwnedCalls lists calls of shard-owned types' methods, with the
	// syntactic worker-loop context (closure passed to shard submit).
	OwnedCalls []OwnedCall `json:"owned_calls,omitempty"`
}

// DynCall is one interface-dispatch call site: method name plus the
// receiver-stripped signature string.
type DynCall struct {
	Method string `json:"method"`
	Sig    string `json:"sig"`
}

// MethodSum is one concrete method in a named type's method set, indexed
// by the module phase to resolve DynCalls.
type MethodSum struct {
	Method string `json:"method"`
	Sig    string `json:"sig"`
	FuncID string `json:"func_id"`
}

// SinkSum is one direct use of a wall-clock or global-rand function.
type SinkSum struct {
	Desc string `json:"desc"` // e.g. "time.Now", "rand.Intn"
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// OwnedWrite is one direct field write to a shard-owned type.
type OwnedWrite struct {
	Type      string `json:"type"` // owned type key
	Expr      string `json:"expr"` // e.g. "Tenant.deltas"
	ViaSubmit bool   `json:"via_submit,omitempty"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
}

// OwnedCall is one call of a shard-owned type's method.
type OwnedCall struct {
	Type      string `json:"type"`
	Method    string `json:"method"`
	ViaSubmit bool   `json:"via_submit,omitempty"` // lexically inside a closure passed to a shard submit
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
}

// shardOwnedTypes registers the control-plane state whose mutation is
// pinned to one shard worker goroutine (DESIGN.md "Control plane"):
// every write must happen on the owning worker, so writes and mutator
// calls outside the worker loop are atomicpub findings.
var shardOwnedTypes = map[string]bool{
	"caribou/internal/controlplane.Tenant": true,
}

// BuildSummary extracts the module-analysis facts from one type-checked
// package. Traversal follows declaration order file by file, so the
// summary — and everything derived from it — is deterministic.
func BuildSummary(pkg *Package) *PkgSummary {
	sum := &PkgSummary{Path: pkg.Path}
	modPath := modulePrefix(pkg.Path)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				sum.Funcs = append(sum.Funcs, buildFuncSum(pkg, modPath, d))
				if d.Recv != nil {
					if ms, ok := buildMethodSum(pkg, d); ok {
						sum.Methods = append(sum.Methods, ms)
					}
				}
			case *ast.GenDecl:
				if fs, ok := buildVarInitSum(pkg, modPath, d); ok {
					sum.Funcs = append(sum.Funcs, fs)
				}
			}
		}
	}
	return sum
}

// modulePrefix derives the module root segment from an import path:
// everything up to the first slash ("caribou/internal/solver" →
// "caribou"). Functions from packages under the same root are module
// functions; everything else is assumed stdlib.
func modulePrefix(pkgPath string) string {
	if i := strings.IndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[:i]
	}
	return pkgPath
}

// funcID returns the stable cross-package identity of fn.
func funcID(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// sigString renders a signature without its receiver, qualifying named
// types by full package path so the string is position-independent.
func sigString(sig *types.Signature) string {
	q := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), q))
	}
	b.WriteByte(')')
	b.WriteByte('(')
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), q))
	}
	b.WriteByte(')')
	return b.String()
}

// displayName renders the short form of a declared function for chains.
func displayName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	recv := d.Recv.List[0].Type
	base, ptr := recvBase(recv)
	if base == "" {
		return d.Name.Name
	}
	if ptr {
		return "(*" + base + ")." + d.Name.Name
	}
	return "(" + base + ")." + d.Name.Name
}

// recvBase extracts the receiver's base type name and pointer-ness.
func recvBase(expr ast.Expr) (string, bool) {
	ptr := false
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			ptr = true
			expr = e.X
		case *ast.IndexExpr: // generic receiver T[P]
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name, ptr
		default:
			return "", ptr
		}
	}
}

// exportedFunc reports whether d is part of the package's exported
// surface: exported name, and for methods an exported receiver base type.
func exportedFunc(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv != nil && len(d.Recv.List) > 0 {
		base, _ := recvBase(d.Recv.List[0].Type)
		if base != "" && !ast.IsExported(base) {
			return false
		}
	}
	return true
}

// buildMethodSum indexes one concrete method declaration for interface
// dispatch resolution.
func buildMethodSum(pkg *Package, d *ast.FuncDecl) (MethodSum, bool) {
	fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
	if !ok {
		return MethodSum{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return MethodSum{}, false
	}
	return MethodSum{Method: fn.Name(), Sig: sigString(sig), FuncID: funcID(fn)}, true
}

// buildFuncSum summarizes one function declaration.
func buildFuncSum(pkg *Package, modPath string, d *ast.FuncDecl) FuncSum {
	pos := pkg.Fset.Position(d.Name.Pos())
	fs := FuncSum{
		Name:     displayName(d),
		Exported: exportedFunc(d),
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
	}
	if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
		fs.ID = funcID(fn)
	} else {
		fs.ID = pkg.Path + "." + d.Name.Name
	}
	if owned, ctor := ownedCtor(pkg, d); ctor {
		fs.Ctor = owned
	}
	if d.Recv != nil && len(d.Recv.List) > 0 {
		if key := ownedTypeKey(pkg.Info.TypeOf(d.Recv.List[0].Type)); key != "" {
			fs.OwnedRecv = key
		}
	}
	if d.Body != nil {
		summarizeBody(pkg, modPath, d.Body, &fs)
	}
	return fs
}

// buildVarInitSum attributes package-level variable initializers to a
// synthetic "<pkg>.init" node so a sink in an initializer of a target
// package is reported rather than silently dropped (the initializer runs
// in every importer's process).
func buildVarInitSum(pkg *Package, modPath string, d *ast.GenDecl) (FuncSum, bool) {
	if d.Tok != token.VAR {
		return FuncSum{}, false
	}
	pos := pkg.Fset.Position(d.Pos())
	fs := FuncSum{
		ID:       pkg.Path + ".init:" + filepath.Base(pos.Filename),
		Name:     "package initializer",
		Exported: true,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
	}
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			summarizeBody(pkg, modPath, v, &fs)
		}
	}
	if len(fs.Calls) == 0 && len(fs.Dyn) == 0 && len(fs.Sinks) == 0 &&
		len(fs.OwnedWrites) == 0 && len(fs.OwnedCalls) == 0 {
		return FuncSum{}, false
	}
	return fs, true
}

// summarizeBody walks one body (or initializer expression) collecting
// call edges, sinks, and owned-state facts into fs.
func summarizeBody(pkg *Package, modPath string, body ast.Node, fs *FuncSum) {
	info := pkg.Info
	calls := map[string]bool{}
	submitRanges := submitClosureRanges(info, body)
	inSubmit := func(pos token.Pos) bool {
		for _, r := range submitRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			fn, ok := info.Uses[e].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case sinkDesc(fn) != "":
				p := pkg.Fset.Position(e.Pos())
				fs.Sinks = append(fs.Sinks, SinkSum{Desc: sinkDesc(fn), File: p.Filename, Line: p.Line, Col: p.Column})
			case fn.Pkg().Path() == modPath || strings.HasPrefix(fn.Pkg().Path(), modPath+"/"):
				calls[funcID(fn)] = true
			}
		case *ast.CallExpr:
			summarizeCall(pkg, e, fs, inSubmit)
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				recordOwnedWrite(pkg, lhs, fs, inSubmit)
			}
		case *ast.IncDecStmt:
			recordOwnedWrite(pkg, e.X, fs, inSubmit)
		}
		return true
	})
	for id := range calls {
		fs.Calls = append(fs.Calls, id)
	}
	sort.Strings(fs.Calls)
}

// sinkDesc classifies fn as a determinism sink: a wall-clock time
// function or a math/rand package function. Empty means not a sink.
func sinkDesc(fn *types.Func) string {
	if fn.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallclockFuncs[fn.Name()] {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return ""
}

// summarizeCall records dynamic-dispatch and owned-method call facts for
// one call expression.
func summarizeCall(pkg *Package, call *ast.CallExpr, fs *FuncSum, inSubmit func(token.Pos) bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if types.IsInterface(sig.Recv().Type()) {
		fs.Dyn = append(fs.Dyn, DynCall{Method: fn.Name(), Sig: sigString(sig)})
		return
	}
	if key := ownedTypeKey(sig.Recv().Type()); key != "" {
		p := pkg.Fset.Position(call.Pos())
		fs.OwnedCalls = append(fs.OwnedCalls, OwnedCall{
			Type: key, Method: fn.Name(), ViaSubmit: inSubmit(call.Pos()),
			File: p.Filename, Line: p.Line, Col: p.Column,
		})
	}
}

// recordOwnedWrite records a direct field write to a shard-owned type:
// the written expression's root is a selector whose receiver (after
// pointer unwrap) is an owned type.
func recordOwnedWrite(pkg *Package, lhs ast.Expr, fs *FuncSum, inSubmit func(token.Pos) bool) {
	// Unwrap index/star layers: t.field[i] = v and *t.ptrField = v both
	// mutate owned state.
	expr := ast.Unparen(lhs)
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = ast.Unparen(e.X)
			continue
		case *ast.StarExpr:
			expr = ast.Unparen(e.X)
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	key := ownedTypeKey(pkg.Info.TypeOf(sel.X))
	if key == "" {
		return
	}
	p := pkg.Fset.Position(lhs.Pos())
	short := key[strings.LastIndexByte(key, '.')+1:]
	fs.OwnedWrites = append(fs.OwnedWrites, OwnedWrite{
		Type: key, Expr: short + "." + sel.Sel.Name, ViaSubmit: inSubmit(lhs.Pos()),
		File: p.Filename, Line: p.Line, Col: p.Column,
	})
}

// ownedTypeKey resolves t (possibly a pointer) to a registered
// shard-owned type key, or "".
func ownedTypeKey(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if !shardOwnedTypes[key] {
		return ""
	}
	return key
}

// ownedCtor reports whether d constructs a shard-owned type: a
// new*/New*-named function whose results include the owned type. The
// constructor owns the value exclusively until it returns, so its
// mutations are exempt from the worker-loop rule.
func ownedCtor(pkg *Package, d *ast.FuncDecl) (string, bool) {
	if d.Recv != nil || d.Type.Results == nil {
		return "", false
	}
	if !strings.HasPrefix(d.Name.Name, "new") && !strings.HasPrefix(d.Name.Name, "New") {
		return "", false
	}
	for _, r := range d.Type.Results.List {
		if key := ownedTypeKey(pkg.Info.TypeOf(r.Type)); key != "" {
			return key, true
		}
	}
	return "", false
}

// submitClosureRanges finds the source ranges of function literals passed
// directly to a shard submit call — the syntactic marker that the closure
// body runs on the owning worker goroutine.
func submitClosureRanges(info *types.Info, body ast.Node) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "submit" {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				ranges = append(ranges, [2]token.Pos{lit.Pos(), lit.End()})
			}
		}
		return true
	})
	return ranges
}
