package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fmtOutputFuncs are the fmt functions that emit bytes somewhere a
// figure or log could observe them.
var fmtOutputFuncs = map[string]bool{
	"Print":    true,
	"Printf":   true,
	"Println":  true,
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
}

// sortPkgs are the packages whose calls count as "sorting the collected
// slice" for the collect-then-sort idiom.
var sortPkgs = map[string]bool{"sort": true, "slices": true}

// MapOrderAnalyzer flags range statements over maps whose bodies leak
// iteration order into observable output: appending to a slice that
// outlives the loop (unless that slice is passed to sort/slices
// afterwards in the same block — the sanctioned collect-then-sort
// idiom), printing via fmt, sending on a channel, or accumulating into a
// float or string (float addition is order-sensitive in the low bits;
// string building obviously is). Go randomizes map iteration order per
// run, so any of these makes output differ run to run — the exact hazard
// PR 2 fixed by hand in PrintFig7. Order-insensitive bodies (map writes,
// integer counting, min/max tracking via comparison) pass.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag observable output produced while ranging over a map; sort the keys first",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						mapOrderStmts(p, fn.Body.List)
					}
				case *ast.FuncLit:
					mapOrderStmts(p, fn.Body.List)
				}
				return true
			})
		}
	},
}

// mapOrderStmts scans a statement list: every map range found at any
// block nesting below it is analyzed with the statements that follow it
// in its own list as the "afterwards" context for the collect-then-sort
// idiom. Function literal bodies are not descended into here — the
// enclosing Inspect visits each one on its own.
func mapOrderStmts(p *Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		switch st := s.(type) {
		case *ast.RangeStmt:
			if isMapType(p.Info, st.X) {
				checkMapRange(p, st, stmts[i+1:])
			}
			mapOrderStmts(p, st.Body.List)
		case *ast.ForStmt:
			mapOrderStmts(p, st.Body.List)
		case *ast.IfStmt:
			mapOrderStmts(p, st.Body.List)
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				mapOrderStmts(p, e.List)
			case *ast.IfStmt:
				mapOrderStmts(p, []ast.Stmt{e})
			}
		case *ast.BlockStmt:
			mapOrderStmts(p, st.List)
		case *ast.LabeledStmt:
			mapOrderStmts(p, []ast.Stmt{st.Stmt})
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				mapOrderStmts(p, c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				mapOrderStmts(p, c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				mapOrderStmts(p, c.(*ast.CommClause).Body)
			}
		}
	}
}

func isMapType(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange reports each order-leaking statement inside the body of
// a map range. after holds the statements following the range in its
// enclosing block, used to recognize collect-then-sort.
func checkMapRange(p *Pass, rng *ast.RangeStmt, after []ast.Stmt) {
	line := p.Fset.Position(rng.For).Line
	outer := func(id *ast.Ident) types.Object {
		obj := p.Info.Uses[id]
		if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()) {
			return nil
		}
		return obj
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			if st != rng && isMapType(p.Info, st.X) {
				return false // analyzed on its own; avoid double reports
			}
		case *ast.SendStmt:
			p.Reportf(st.Arrow, "channel send inside range over map (line %d): receiver observes random iteration order; sort the keys first", line)
		case *ast.CallExpr:
			if isPkgFunc(p.Info, st, "fmt", fmtOutputFuncs) {
				p.Reportf(st.Pos(), "fmt output inside range over map (line %d): lines appear in random iteration order; sort the keys first", line)
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(p, st, rng, after, line, outer)
		}
		return true
	})
}

func checkMapRangeAssign(p *Pass, st *ast.AssignStmt, rng *ast.RangeStmt, after []ast.Stmt, line int, outer func(*ast.Ident) types.Object) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(st.Lhs) {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin {
				continue // a user function shadowing append
			}
			lhs, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := outer(lhs)
			if obj == nil || sortedAfter(p, obj, after) {
				continue
			}
			p.Reportf(st.Pos(), "append to %s inside range over map (line %d) fixes random iteration order into the slice; sort the keys first, or sort %s before use", lhs.Name, line, lhs.Name)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident)
		if !ok {
			return
		}
		obj := outer(lhs)
		if obj == nil {
			return
		}
		basic, ok := obj.Type().Underlying().(*types.Basic)
		if !ok {
			return
		}
		switch {
		case basic.Info()&types.IsFloat != 0:
			p.Reportf(st.Pos(), "floating-point accumulation into %s inside range over map (line %d): float addition is order-sensitive in the low bits; sort the keys first", lhs.Name, line)
		case basic.Info()&types.IsString != 0 && st.Tok == token.ADD_ASSIGN:
			p.Reportf(st.Pos(), "string accumulation into %s inside range over map (line %d) fixes random iteration order into the string; sort the keys first", lhs.Name, line)
		}
	}
}

// sortedAfter reports whether obj is passed to a sort or slices call in
// the statements following the range — the collect-then-sort idiom.
func sortedAfter(p *Pass, obj types.Object, after []ast.Stmt) bool {
	found := false
	for _, s := range after {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || !sortPkgs[fn.Pkg().Path()] {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
