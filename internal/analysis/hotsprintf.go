package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotPkgs are the sampling/solving hot paths where per-iteration string
// formatting is a measured cost (PR 4 hoisted these for a ~25% win on
// the untaped estimate path).
var hotPkgs = []string{
	"caribou/internal/montecarlo",
	"caribou/internal/solver",
	"caribou/internal/stats",
}

// sprintFuncs are the fmt formatters that allocate per call. Errorf is
// deliberately absent: error construction fires once and unwinds, so it
// never sits on the per-iteration path.
var sprintFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
}

// HotSprintfAnalyzer flags fmt.Sprintf (and friends) plus non-constant
// string concatenation inside any loop of the hot packages. Each call
// re-parses the format string and allocates; inside the Monte Carlo
// sampling loop or the solver's proposal loop that shows up directly in
// the solve time. Hoist the formatting out of the loop (derive labels at
// compile/setup time) or build bytes with strconv.Append* into a reused
// buffer (fmt.Errorf is exempt: error paths fire once and unwind).
var HotSprintfAnalyzer = &Analyzer{
	Name: "hotsprintf",
	Doc:  "flag fmt.Sprintf and string concatenation inside loops of montecarlo/solver/stats",
	Run: func(p *Pass) {
		if !pathInAny(p.PkgPath, hotPkgs) {
			return
		}
		for _, f := range p.Files {
			var loops []struct{ pos, end token.Pos }
			ast.Inspect(f, func(n ast.Node) bool {
				switch l := n.(type) {
				case *ast.ForStmt:
					loops = append(loops, struct{ pos, end token.Pos }{l.Body.Pos(), l.Body.End()})
				case *ast.RangeStmt:
					loops = append(loops, struct{ pos, end token.Pos }{l.Body.Pos(), l.Body.End()})
				}
				return true
			})
			if len(loops) == 0 {
				continue
			}
			inLoop := func(pos token.Pos) bool {
				for _, l := range loops {
					if pos >= l.pos && pos < l.end {
						return true
					}
				}
				return false
			}

			// flaggedEnd suppresses reports on the sub-expressions of an
			// already-flagged concatenation chain (Inspect is preorder, so
			// the outermost + of a chain is seen first).
			var flaggedEnd token.Pos
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					if inLoop(e.Pos()) && isPkgFunc(p.Info, e, "fmt", sprintFuncs) {
						fn := calleeFunc(p.Info, e)
						p.Reportf(e.Pos(), "fmt.%s inside a loop in a hot package: hoist the formatting out of the loop or build bytes with strconv.Append*", fn.Name())
					}
				case *ast.BinaryExpr:
					if e.Op != token.ADD || e.Pos() < flaggedEnd || !inLoop(e.Pos()) {
						return true
					}
					tv, ok := p.Info.Types[e]
					if !ok || tv.Value != nil { // constant folded: free
						return true
					}
					if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						flaggedEnd = e.End()
						p.Reportf(e.Pos(), "string concatenation inside a loop in a hot package: allocates per iteration; hoist it or use strconv.Append* into a reused buffer")
					}
				case *ast.AssignStmt:
					if e.Tok != token.ADD_ASSIGN || !inLoop(e.Pos()) {
						return true
					}
					if t := p.Info.TypeOf(e.Lhs[0]); t != nil {
						if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
							p.Reportf(e.Pos(), "string += inside a loop in a hot package: quadratic allocation; use strconv.Append* or strings.Builder outside the loop")
						}
					}
				}
				return true
			})
		}
	},
}
