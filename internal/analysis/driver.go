package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// driver.go is the whole-module lint runner behind cmd/caribou-lint: it
// discovers the module's packages, type-checks and analyzes them
// concurrently in dependency order, and memoizes each package's PkgUnit
// on disk keyed by a content hash of its sources and the keys of its
// module imports. A warm run therefore parses nothing but import lines
// and type-checks nothing at all; the module phase (dettaint, shard
// ownership) is recomputed from the cached summaries every run — it is
// cheap, and caching it per package would be unsound because interface
// dispatch draws edges the import graph does not have.

// cacheSchemaVersion invalidates every cache entry when the on-disk
// PkgUnit shape or any analyzer's semantics change. Bump it with the PR
// number whenever either does.
const cacheSchemaVersion = "caribou-lint-cache-v10"

// RunOptions configures a driver run.
type RunOptions struct {
	// CacheDir persists per-package results; empty disables caching.
	CacheDir string
	// Workers caps concurrent type-check/analyze jobs; <= 0 means
	// GOMAXPROCS.
	Workers int
}

// RunStats reports what a run did, for -stats output and the cache
// tests.
type RunStats struct {
	Packages    int // module packages discovered
	CacheHits   int // packages whose PkgUnit came from disk
	CacheMisses int // packages analyzed fresh
	TypeChecked int // packages type-checked (misses + deps of misses)
}

// Run lints the module rooted at root and returns its diagnostics in
// canonical order. Output is byte-identical whether every package was
// analyzed fresh, served from cache, or a mix: cached PkgUnits are the
// same sorted structures AnalyzePackage produces, and Finish is the
// single merge point for all three cases.
func Run(root string, opts RunOptions) ([]Diagnostic, RunStats, error) {
	var stats RunStats
	metas, err := discoverModule(root)
	if err != nil {
		return nil, stats, err
	}
	stats.Packages = len(metas)
	analyzers := Analyzers()

	byPath := make(map[string]*pkgMeta, len(metas))
	for _, m := range metas {
		byPath[m.path] = m
	}
	ordered, err := topoOrder(metas, byPath)
	if err != nil {
		return nil, stats, err
	}
	computeKeys(ordered, byPath)

	units := make(map[string]*PkgUnit, len(ordered))
	if opts.CacheDir != "" {
		for _, m := range ordered {
			if u := loadCacheEntry(opts.CacheDir, m); u != nil {
				units[m.path] = u
				stats.CacheHits++
			}
		}
	}

	// A miss forces type-checking of the package and — transitively — of
	// every module import, cache hit or not: checking needs dependency
	// *types.Packages, which the cache deliberately does not store.
	needed := map[string]bool{}
	var mark func(path string)
	mark = func(path string) {
		if needed[path] {
			return
		}
		needed[path] = true
		for _, imp := range byPath[path].modImports {
			mark(imp)
		}
	}
	for _, m := range ordered {
		if units[m.path] == nil {
			mark(m.path)
		}
	}

	fresh, err := checkAndAnalyze(ordered, byPath, needed, units, analyzers, opts)
	if err != nil {
		return nil, stats, err
	}
	stats.TypeChecked = len(needed)
	stats.CacheMisses = fresh

	all := make([]*PkgUnit, 0, len(ordered))
	for _, m := range ordered {
		u := units[m.path]
		if u == nil {
			return nil, stats, fmt.Errorf("analysis: no result for %s", m.path)
		}
		all = append(all, u)
	}
	return Finish(all, analyzers), stats, nil
}

// pkgMeta is one discovered package before type-checking: its files,
// their content hashes, and its module-internal imports — everything the
// cache key needs, gathered with imports-only parsing.
type pkgMeta struct {
	path       string
	dir        string
	fileNames  []string // sorted base names
	fileHashes []string // hex, aligned with fileNames
	modImports []string // sorted module-internal import paths
	key        string   // content-hash cache key, hex
}

// discoverModule walks the module tree collecting package metadata. The
// walk mirrors LoadModule's: testdata, vendor, and dot/underscore
// directories are skipped, test files excluded.
func discoverModule(root string) ([]*pkgMeta, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			if dir := filepath.Dir(path); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	var metas []*pkgMeta
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		m := &pkgMeta{path: pkgPath, dir: dir}
		imports := map[string]bool{}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			full := filepath.Join(dir, name)
			data, err := os.ReadFile(full)
			if err != nil {
				return nil, err
			}
			sum := sha256.Sum256(data)
			m.fileNames = append(m.fileNames, name)
			m.fileHashes = append(m.fileHashes, hex.EncodeToString(sum[:]))
			f, err := parser.ParseFile(fset, full, data, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					imports[ip] = true
				}
			}
		}
		if len(m.fileNames) == 0 {
			continue
		}
		for ip := range imports {
			m.modImports = append(m.modImports, ip)
		}
		sort.Strings(m.modImports)
		metas = append(metas, m)
	}
	return metas, nil
}

// topoOrder sorts metas so every package follows its module imports,
// failing loudly on cycles.
func topoOrder(metas []*pkgMeta, byPath map[string]*pkgMeta) ([]*pkgMeta, error) {
	var ordered []*pkgMeta
	state := make(map[string]int, len(metas)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		m, ok := byPath[path]
		if !ok || state[path] == 2 {
			return nil
		}
		if state[path] == 1 {
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = 1
		for _, imp := range m.modImports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = 2
		ordered = append(ordered, m)
		return nil
	}
	for _, m := range metas {
		if err := visit(m.path); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// computeKeys derives each package's cache key over (schema version, Go
// toolchain version — which pins the stdlib the source importer
// compiles, import path, file names and content hashes, and the keys of
// its module imports, recursively). ordered is topological, so import
// keys are always ready.
func computeKeys(ordered []*pkgMeta, byPath map[string]*pkgMeta) {
	for _, m := range ordered {
		h := sha256.New()
		fmt.Fprintf(h, "%s\n%s\n%s\n", cacheSchemaVersion, runtime.Version(), m.path)
		for i, name := range m.fileNames {
			fmt.Fprintf(h, "%s:%s\n", name, m.fileHashes[i])
		}
		for _, imp := range m.modImports {
			fmt.Fprintf(h, "%s=%s\n", imp, byPath[imp].key)
		}
		m.key = hex.EncodeToString(h.Sum(nil))
	}
}

// cacheEntry is the on-disk format: the package path double-checks
// against hash collisions across moves, the unit is the verbatim
// AnalyzePackage result.
type cacheEntry struct {
	Path string   `json:"path"`
	Unit *PkgUnit `json:"unit"`
}

func cacheEntryPath(cacheDir string, m *pkgMeta) string {
	return filepath.Join(cacheDir, m.key[:2], m.key+".json")
}

// loadCacheEntry returns the cached unit for m, or nil on any miss or
// decode failure (a corrupt entry is just a miss; the rewrite heals it).
func loadCacheEntry(cacheDir string, m *pkgMeta) *PkgUnit {
	data, err := os.ReadFile(cacheEntryPath(cacheDir, m))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Path != m.path || e.Unit == nil || e.Unit.Summary == nil {
		return nil
	}
	return e.Unit
}

// storeCacheEntry persists a freshly analyzed unit, atomically via
// rename so concurrent runs never observe torn entries. Failures are
// deliberately silent: the cache is an accelerator, not a correctness
// dependency.
func storeCacheEntry(cacheDir string, m *pkgMeta, unit *PkgUnit) {
	path := cacheEntryPath(cacheDir, m)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	data, err := json.Marshal(cacheEntry{Path: m.path, Unit: unit})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "entry-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	if os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
	}
}

// checkAndAnalyze type-checks the needed packages concurrently in
// dependency order — a package starts as soon as its last module import
// finishes — analyzing and caching the ones whose units are missing.
// Returns how many were analyzed fresh.
func checkAndAnalyze(ordered []*pkgMeta, byPath map[string]*pkgMeta, needed map[string]bool,
	units map[string]*PkgUnit, analyzers []*Analyzer, opts RunOptions) (int, error) {

	type job struct {
		meta       *pkgMeta
		pending    atomic.Int32 // unfinished needed module imports
		dependents []*job
	}
	jobs := make(map[string]*job, len(needed))
	var all []*job
	for _, m := range ordered {
		if !needed[m.path] {
			continue
		}
		j := &job{meta: m}
		jobs[m.path] = j
		all = append(all, j)
	}
	for _, j := range all {
		for _, imp := range j.meta.modImports {
			if dep, ok := jobs[imp]; ok {
				j.pending.Add(1)
				dep.dependents = append(dep.dependents, j)
			}
		}
	}
	if len(all) == 0 {
		return 0, nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(all) {
		workers = len(all)
	}

	// Shared type-check state: the FileSet is documented
	// goroutine-safe; the source importer is not, so stdlib imports
	// serialize on its mutex (each stdlib package compiles once and is
	// served from the importer's cache afterwards). Checked module
	// packages live in done, immutable once published.
	fset := token.NewFileSet()
	imp := &lockedImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		done: make(map[string]*types.Package, len(all)),
	}

	ready := make(chan *job, len(all))
	for _, j := range all {
		if j.pending.Load() == 0 {
			ready <- j
		}
	}
	var remaining atomic.Int32
	remaining.Store(int32(len(all)))
	var fresh atomic.Int32
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//caribou:allow goroutines lint worker pool: units merge by package path in Finish, so output is order-independent
		go func() {
			defer wg.Done()
			for j := range ready {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				var err error
				if !failed {
					var analyzed bool
					analyzed, err = processJob(j.meta, fset, imp, units, analyzers, opts, &mu)
					if analyzed {
						fresh.Add(1)
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
				for _, d := range j.dependents {
					if d.pending.Add(-1) == 0 {
						ready <- d
					}
				}
				if remaining.Add(-1) == 0 {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
	return int(fresh.Load()), firstErr
}

// processJob parses, type-checks, and (if its unit is missing) analyzes
// one package. units is guarded by mu; the checked package is published
// through the importer for dependents.
func processJob(m *pkgMeta, fset *token.FileSet, imp *lockedImporter,
	units map[string]*PkgUnit, analyzers []*Analyzer, opts RunOptions, mu *sync.Mutex) (bool, error) {

	pkg, err := checkPackage(m, fset, imp)
	if err != nil {
		return false, err
	}
	imp.publish(m.path, pkg.Types)

	mu.Lock()
	have := units[m.path] != nil
	mu.Unlock()
	if have {
		return false, nil
	}
	unit := AnalyzePackage(pkg, analyzers)
	mu.Lock()
	units[m.path] = unit
	mu.Unlock()
	if opts.CacheDir != "" {
		storeCacheEntry(opts.CacheDir, m, unit)
	}
	return true, nil
}

// checkPackage parses m's files in full and type-checks them.
func checkPackage(m *pkgMeta, fset *token.FileSet, imp types.Importer) (*Package, error) {
	if len(m.fileNames) == 0 {
		return nil, fmt.Errorf("%w: %s", errNoFiles, m.path)
	}
	files := make([]*ast.File, 0, len(m.fileNames))
	for _, name := range m.fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(m.dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(m.path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", m.path, err)
	}
	return &Package{Path: m.path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// lockedImporter resolves module-internal imports from the packages this
// run already checked and everything else through the mutex-guarded
// source importer.
type lockedImporter struct {
	mu   sync.Mutex
	std  types.Importer
	dmu  sync.RWMutex
	done map[string]*types.Package
}

func (l *lockedImporter) publish(path string, pkg *types.Package) {
	l.dmu.Lock()
	l.done[path] = pkg
	l.dmu.Unlock()
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.dmu.RLock()
	p, ok := l.done[path]
	l.dmu.RUnlock()
	if ok {
		return p, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.std.Import(path)
}

var errNoFiles = errors.New("analysis: package has no files")
