package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// lintmodDir is the seeded golden module: one wallclock call two levels
// below an exported solver function (dettaint + wallclock), one
// post-Store mutation in controlplane (atomicpub), and one stale allow
// (allow) — the three regressions the acceptance criteria require the
// suite to turn red on.
const lintmodDir = "testdata/lintmod"

func lintmodRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(lintmodDir)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestDriverGoldenOutput pins both output modes byte-for-byte. Any
// change to diagnostic ordering, message wording, or formatting shows up
// here as a conscious golden update.
func TestDriverGoldenOutput(t *testing.T) {
	root := lintmodRoot(t)
	diags, stats, err := Run(root, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packages != 3 {
		t.Fatalf("discovered %d packages, want 3", stats.Packages)
	}

	text := FormatText(root, diags)
	goldenText, err := os.ReadFile(filepath.Join(lintmodDir, "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text, goldenText) {
		t.Errorf("text output differs from golden.txt:\ngot:\n%s\nwant:\n%s", text, goldenText)
	}

	jsonOut, err := FormatJSON(root, diags)
	if err != nil {
		t.Fatal(err)
	}
	goldenJSON, err := os.ReadFile(filepath.Join(lintmodDir, "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonOut, goldenJSON) {
		t.Errorf("json output differs from golden.json:\ngot:\n%s\nwant:\n%s", jsonOut, goldenJSON)
	}
}

// TestDriverColdWarmByteIdentical is the cache contract: a warm run
// type-checks nothing, serves every package from disk, and produces the
// exact bytes of the cold run in both output modes.
func TestDriverColdWarmByteIdentical(t *testing.T) {
	root := lintmodRoot(t)
	opts := RunOptions{CacheDir: t.TempDir()}

	cold, coldStats, err := Run(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.CacheMisses != coldStats.Packages || coldStats.CacheHits != 0 {
		t.Fatalf("cold run: %d misses, %d hits over %d packages; want all misses",
			coldStats.CacheMisses, coldStats.CacheHits, coldStats.Packages)
	}

	warm, warmStats, err := Run(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.CacheHits != warmStats.Packages || warmStats.TypeChecked != 0 || warmStats.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d typechecked=%d over %d packages; want all hits, zero work",
			warmStats.CacheHits, warmStats.CacheMisses, warmStats.TypeChecked, warmStats.Packages)
	}

	if !bytes.Equal(FormatText(root, cold), FormatText(root, warm)) {
		t.Error("cold and warm text outputs differ")
	}
	cj, err := FormatJSON(root, cold)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := FormatJSON(root, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cj, wj) {
		t.Error("cold and warm JSON outputs differ")
	}
}

// TestDriverCacheInvalidation edits a cached package and checks the
// cache notices: the edited package re-analyzes, its new finding
// appears, and untouched packages still serve from cache.
func TestDriverCacheInvalidation(t *testing.T) {
	root := t.TempDir()
	copyTree(t, lintmodRoot(t), root)
	opts := RunOptions{CacheDir: t.TempDir()}

	before, _, err := Run(root, opts)
	if err != nil {
		t.Fatal(err)
	}

	target := filepath.Join(root, "internal", "metrics", "metrics.go")
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	src = append(src, []byte("\nfunc leak() map[string]int { return map[string]int{\"a\": 1} }\n")...)
	src = append(src, []byte("\nfunc drain(m map[string]int) int {\n\ttotal := 0\n\tfor _, v := range m {\n\t\ttotal += v\n\t}\n\treturn total\n}\n")...)
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	after, stats, err := Run(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses != 1 || stats.CacheHits != stats.Packages-1 {
		t.Errorf("after edit: misses=%d hits=%d over %d packages; want exactly the edited package re-analyzed",
			stats.CacheMisses, stats.CacheHits, stats.Packages)
	}
	if len(after) != len(before) {
		t.Errorf("edit changed finding count %d -> %d; the added code should lint identically", len(before), len(after))
	}
}

// TestDriverMatchesLoadModule pins that the parallel cached driver and
// the serial loader agree on the whole real repo — and that the repo is
// clean under all nine checks through the driver path too.
func TestDriverMatchesLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module twice")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	driverDiags, stats, err := Run(root, RunOptions{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packages == 0 {
		t.Fatal("driver discovered no packages")
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	loaderDiags := Lint(pkgs, Analyzers())

	dt := FormatText(root, driverDiags)
	lt := FormatText(root, loaderDiags)
	if !bytes.Equal(dt, lt) {
		t.Errorf("driver and loader disagree:\ndriver:\n%s\nloader:\n%s", dt, lt)
	}
	if len(driverDiags) != 0 {
		t.Errorf("repo is not lint-clean through the driver:\n%s", dt)
	}
}

func copyTree(t *testing.T, from, to string) {
	t.Helper()
	err := filepath.Walk(from, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(from, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(to, rel)
		if info.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
