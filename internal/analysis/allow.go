package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowCheck is the reserved name of the meta-check that validates the
// suppression comments themselves.
const allowCheck = "allow"

// allowPrefix introduces a suppression comment:
//
//	//caribou:allow <check> <reason>
//
// A well-formed allow comment suppresses diagnostics for <check> on its
// own line and on the line directly below it (so it works both as a
// trailing comment and as a standalone comment above the flagged line).
// The reason is mandatory and is what makes suppressions auditable: a
// comment that names no check, names an unknown check, or carries no
// reason is reported under the "allow" check and suppresses nothing.
const allowPrefix = "//caribou:allow"

// allowComment is one parsed, well-formed suppression.
type allowComment struct {
	file  string
	line  int
	check string
}

// collectAllows parses every //caribou:allow comment in the files,
// returning the well-formed suppressions and a diagnostic for each
// malformed one.
func collectAllows(fset *token.FileSet, files []*ast.File, valid map[string]bool) ([]allowComment, []Diagnostic) {
	var allows []allowComment
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Pos: fset.Position(pos), Check: allowCheck, Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := c.Text[len(allowPrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //caribou:allowwallclock — not an allow comment.
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					report(c.Pos(), "suppression names no check: want //caribou:allow <check> <reason>")
				case !valid[fields[0]]:
					report(c.Pos(), "suppression names unknown check "+quoted(fields[0]))
				case len(fields) == 1:
					report(c.Pos(), "suppression of "+quoted(fields[0])+" gives no reason: a reason is mandatory")
				default:
					pos := fset.Position(c.Pos())
					allows = append(allows, allowComment{file: pos.Filename, line: pos.Line, check: fields[0]})
				}
			}
		}
	}
	return allows, diags
}

// suppressed reports whether d is covered by a well-formed allow comment
// for its check on the same line or the line above.
func suppressed(d Diagnostic, allows []allowComment) bool {
	for _, a := range allows {
		if a.check == d.Check && a.file == d.Pos.Filename &&
			(a.line == d.Pos.Line || a.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}

func quoted(s string) string { return "\"" + s + "\"" }
