package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowCheck is the reserved name of the meta-check that validates the
// suppression comments themselves.
const allowCheck = "allow"

// allowPrefix introduces a suppression comment:
//
//	//caribou:allow <check> <reason>
//
// A well-formed allow comment suppresses diagnostics for <check> on its
// own line and on the line directly below it (so it works both as a
// trailing comment and as a standalone comment above the flagged line).
// The reason is mandatory and is what makes suppressions auditable: a
// comment that names no check, names an unknown check, or carries no
// reason is reported under the "allow" check and suppresses nothing. A
// well-formed allow that suppresses nothing is stale and is reported the
// same way — dead annotations cannot survive a burn-down.
const allowPrefix = "//caribou:allow"

// AllowComment is one parsed, well-formed suppression. It is part of the
// cacheable PkgUnit, so it serializes.
type AllowComment struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
}

// collectAllows parses every //caribou:allow comment in the files,
// returning the well-formed suppressions and a diagnostic for each
// malformed one.
func collectAllows(fset *token.FileSet, files []*ast.File, valid map[string]bool) ([]AllowComment, []Diagnostic) {
	var allows []AllowComment
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Pos: fset.Position(pos), Check: allowCheck, Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := c.Text[len(allowPrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //caribou:allowwallclock — not an allow comment.
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					report(c.Pos(), "suppression names no check: want //caribou:allow <check> <reason>")
				case !valid[fields[0]]:
					report(c.Pos(), "suppression names unknown check "+quoted(fields[0]))
				case len(fields) == 1:
					report(c.Pos(), "suppression of "+quoted(fields[0])+" gives no reason: a reason is mandatory")
				default:
					pos := fset.Position(c.Pos())
					allows = append(allows, AllowComment{File: pos.Filename, Line: pos.Line, Col: pos.Column, Check: fields[0]})
				}
			}
		}
	}
	return allows, diags
}

// allowIndex tracks every well-formed allow in the module and whether it
// earned its keep: a suppression is "used" when it suppresses at least
// one finding or sanctions at least one module-analysis site (e.g. a
// dettaint clock seam). Unused allows are stale diagnostics.
type allowIndex struct {
	// byKey maps (check, file, line) to the allow's slice index.
	byKey  map[allowKey]int
	allows []AllowComment
	used   []bool
}

type allowKey struct {
	check string
	file  string
	line  int
}

func newAllowIndex(units []*PkgUnit) *allowIndex {
	idx := &allowIndex{byKey: map[allowKey]int{}}
	for _, u := range units {
		for _, a := range u.Allows {
			idx.byKey[allowKey{a.Check, a.File, a.Line}] = len(idx.allows)
			idx.allows = append(idx.allows, a)
			idx.used = append(idx.used, false)
		}
	}
	return idx
}

// use reports whether an allow for check covers (file, line) — same line
// or the line above — and marks the matching allow used.
func (idx *allowIndex) use(check, file string, line int) bool {
	hit := false
	for _, l := range [2]int{line, line - 1} {
		if i, ok := idx.byKey[allowKey{check, file, l}]; ok {
			idx.used[i] = true
			hit = true
		}
	}
	return hit
}

// stale returns one diagnostic per unused allow. The "allow" meta-check
// itself is exempt from suppression, so these cannot be allowed away.
func (idx *allowIndex) stale() []Diagnostic {
	var out []Diagnostic
	for i, a := range idx.allows {
		if idx.used[i] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:   token.Position{Filename: a.File, Line: a.Line, Column: a.Col},
			Check: allowCheck,
			Message: "stale suppression: //caribou:allow " + a.Check +
				" suppresses no finding; delete it (or fix the site it used to cover)",
		})
	}
	return out
}

func quoted(s string) string { return "\"" + s + "\"" }
