package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expected-diagnostic annotations in fixture sources:
//
//	// want <check> "<message substring>"
//
// Several may share a line.
var wantRe = regexp.MustCompile(`want ([a-z]+) "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	line  int
	check string
	substr,
	file string
}

// loadFixture type-checks testdata/<name> as pkgPath and returns the
// post-suppression diagnostics alongside the want-annotations parsed
// from its sources.
func loadFixture(t *testing.T, name, pkgPath string) ([]Diagnostic, []expectation) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	pkg, err := NewLoader().LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading %s as %s: %v", dir, pkgPath, err)
	}
	diags := Lint([]*Package{pkg}, Analyzers())

	var wants []expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants = append(wants, expectation{line: i + 1, check: m[1], substr: strings.ReplaceAll(m[2], `\"`, `"`), file: path})
			}
		}
	}
	return diags, wants
}

// checkFixture asserts an exact match between diagnostics and the
// fixture's want annotations: every want matched by exactly one
// diagnostic on its line, and no diagnostic unaccounted for.
func checkFixture(t *testing.T, name, pkgPath string) {
	t.Helper()
	diags, wants := loadFixture(t, name, pkgPath)
	used := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if !used[i] && d.Check == w.check && d.Pos.Line == w.line &&
				strings.Contains(d.Message, w.substr) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected [%s] diagnostic containing %q, got none", w.file, w.line, w.check, w.substr)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("%s:%d: unexpected [%s] diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
		}
	}
}

func TestWallclockFixture(t *testing.T) {
	checkFixture(t, "wallclock_bad", "caribou/internal/metrics")
}

func TestWallclockExemptPackage(t *testing.T) {
	checkFixture(t, "wallclock_exempt", "caribou/internal/telemetry")
}

func TestGlobalRandFixture(t *testing.T) {
	checkFixture(t, "globalrand_bad", "caribou/internal/solver")
}

func TestGlobalRandExemptPackage(t *testing.T) {
	checkFixture(t, "globalrand_exempt", "caribou/internal/simclock")
}

func TestMapOrderFixture(t *testing.T) {
	checkFixture(t, "maporder_bad", "caribou/internal/eval")
}

func TestMapOrderNegativeCases(t *testing.T) {
	checkFixture(t, "maporder_ok", "caribou/internal/eval")
}

func TestHotSprintfFixture(t *testing.T) {
	checkFixture(t, "hotsprintf_hot", "caribou/internal/montecarlo")
}

func TestHotSprintfColdPackage(t *testing.T) {
	checkFixture(t, "hotsprintf_cold", "caribou/internal/eval")
}

func TestGoroutinesFixture(t *testing.T) {
	checkFixture(t, "goroutines_bad", "caribou/internal/metrics")
}

func TestGoroutinesApprovedPackage(t *testing.T) {
	checkFixture(t, "goroutines_ok", "caribou/internal/solver")
}

func TestGoroutinesControlPlaneApproved(t *testing.T) {
	checkFixture(t, "goroutines_cp_ok", "caribou/internal/controlplane")
}

func TestGoroutinesCommandBinary(t *testing.T) {
	checkFixture(t, "goroutines_cmd", "caribou/cmd/caribou-load")
}

func TestWallclockClockSeam(t *testing.T) {
	checkFixture(t, "wallclock_clockseam", "caribou/internal/controlplane")
}

// TestWallclockRunstoreSeam pins that internal/runstore is NOT
// wallclock-exempt: lease timestamps must flow through the injected
// runstore.Clock, and a bare time.Now in the package is a finding.
func TestWallclockRunstoreSeam(t *testing.T) {
	checkFixture(t, "wallclock_runstore", "caribou/internal/runstore")
}

func TestTapeRecordFixture(t *testing.T) {
	checkFixture(t, "taperecord_bad", "caribou/internal/solver")
}

func TestTapeRecordOwnerPackage(t *testing.T) {
	checkFixture(t, "taperecord_ok", "caribou/internal/montecarlo")
}

// TestAllowCommentValidation pins the meta-check: an allow comment that
// names no check, names an unknown check, or carries no reason is itself
// a diagnostic — and a reasonless allow suppresses nothing, so the
// wallclock finding on its line survives too. Expectations are located
// by searching the fixture source (the findings sit on comment lines,
// where inline want annotations cannot).
func TestAllowCommentValidation(t *testing.T) {
	diags, _ := loadFixture(t, "allow_bad", "caribou/internal/metrics")

	src, err := os.ReadFile(filepath.Join("testdata", "allow_bad", "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	lineOf := func(marker string) int {
		for i, line := range strings.Split(string(src), "\n") {
			if strings.Contains(line, marker) {
				return i + 1
			}
		}
		t.Fatalf("marker %q not found in fixture", marker)
		return 0
	}

	bareAllowLine := 0
	for i, line := range strings.Split(string(src), "\n") {
		if strings.TrimSpace(line) == "//caribou:allow" {
			bareAllowLine = i + 1
			break
		}
	}
	if bareAllowLine == 0 {
		t.Fatal("bare //caribou:allow comment not found in fixture")
	}

	expect := []struct {
		line   int
		check  string
		substr string
	}{
		{bareAllowLine, "allow", "names no check"},
		{lineOf("//caribou:allow bogus"), "allow", "unknown check"},
		{lineOf("return time.Now()"), "allow", "no reason"},
		{lineOf("return time.Now()"), "wallclock", "time.Now reads the wall clock"},
	}

	if len(diags) != len(expect) {
		for _, d := range diags {
			t.Logf("got: %s:%d [%s] %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(expect))
	}
	for _, w := range expect {
		found := false
		for _, d := range diags {
			if d.Check == w.check && d.Pos.Line == w.line && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("line %d: expected [%s] diagnostic containing %q", w.line, w.check, w.substr)
		}
	}
}

func TestDetTaintFixture(t *testing.T) {
	checkFixture(t, "dettaint_bad", "caribou/internal/solver")
}

func TestDetTaintNegativeCases(t *testing.T) {
	checkFixture(t, "dettaint_ok", "caribou/internal/solver")
}

func TestHotAllocFixture(t *testing.T) {
	checkFixture(t, "hotalloc_bad", "caribou/internal/montecarlo")
}

func TestHotAllocNegativeCases(t *testing.T) {
	checkFixture(t, "hotalloc_ok", "caribou/internal/montecarlo")
}

func TestAtomicPubFixture(t *testing.T) {
	checkFixture(t, "atomicpub_bad", "caribou/internal/controlplane")
}

func TestAtomicPubNegativeCases(t *testing.T) {
	checkFixture(t, "atomicpub_ok", "caribou/internal/controlplane")
}

// TestStaleAllowFixture pins the stale-suppression meta-check: an allow
// covering no finding is itself an "allow" diagnostic, while an allow
// that still suppresses one stays silent.
func TestStaleAllowFixture(t *testing.T) {
	checkFixture(t, "allow_stale", "caribou/internal/metrics")
}
