package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
)

// format.go renders diagnostics in the two output modes cmd/caribou-lint
// offers. Both live here rather than in the command so the golden-output
// and cold-vs-warm byte-identity tests exercise the exact bytes users
// see.

// FormatText renders diagnostics one per line as
//
//	file:line: [check] message
//
// with file paths relative to root. Input order is preserved — callers
// pass the canonically sorted output of Finish/Run.
func FormatText(root string, diags []Diagnostic) []byte {
	var b bytes.Buffer
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d: [%s] %s\n", RelPath(root, d.Pos.Filename), d.Pos.Line, d.Check, d.Message)
	}
	return b.Bytes()
}

// FormatJSON renders diagnostics as an indented JSON array of
// {file, line, col, check, message}, paths relative to root, preserving
// input order. The encoding is deterministic: struct fields have a fixed
// order and the array is the canonically sorted diagnostic list.
func FormatJSON(root string, diags []Diagnostic) ([]byte, error) {
	type finding struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, finding{
			File:    RelPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// RelPath renders file relative to root when it sits underneath it, so
// diagnostics are stable across checkouts and machines.
func RelPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return filepath.ToSlash(rel)
	}
	return file
}
