package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// hotallocFiles pins the hand-optimized hot paths nothing guarded until
// now: the Monte Carlo tape replay/delta/batch/bounds loops and the
// solver's HBSS proposal loop. These files were profiled down to
// zero-allocation inner loops (see DESIGN.md); the analyzer keeps them
// that way by flagging the regressions that creep back in — fmt calls,
// per-iteration closures, interface boxing, and appends that regrow a
// buffer every round trip.
var hotallocFiles = map[string]map[string]bool{
	"caribou/internal/montecarlo": {
		"tape.go":   true,
		"delta.go":  true,
		"batch.go":  true,
		"bounds.go": true,
	},
	"caribou/internal/solver": {
		"hbss.go": true,
	},
}

// HotAllocAnalyzer flags per-iteration allocation sources inside loops
// of the registered hot files. It is intentionally syntactic about what
// "hot" means — file granularity, every loop in the file — because the
// escape analysis needed to prove a specific loop cold is exactly the
// kind of cleverness that rots; moving genuinely cold code out of a hot
// file is cheap, and the sanctioned exceptions carry //caribou:allow.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag fmt calls, closures, interface boxing, and grow-in-loop appends in montecarlo replay/delta/batch and solver HBSS hot paths",
	Run: func(pass *Pass) {
		files, ok := hotallocFiles[pass.PkgPath]
		if !ok {
			return
		}
		for _, f := range pass.Files {
			name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			if !files[name] {
				continue
			}
			ha := &hotallocWalker{pass: pass, inits: collectInits(pass.Info, f)}
			ha.walk(f, nil)
		}
	},
}

// hotallocWalker walks one hot file tracking the innermost enclosing
// loop statement (nil at function scope).
type hotallocWalker struct {
	pass  *Pass
	inits map[types.Object]ast.Expr
}

func (w *hotallocWalker) walk(n ast.Node, loop ast.Node) {
	switch e := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		w.walkChildren(e, e)
		return
	case *ast.RangeStmt:
		w.walkChildren(e, e)
		return
	case *ast.FuncLit:
		if loop != nil {
			w.pass.Reportf(e.Pos(), "closure literal in a hot loop allocates per iteration: hoist it out of the loop")
		}
		// The literal's body still executes per iteration when it is in a
		// loop, so the enclosing-loop context carries through.
		w.walkChildren(e, loop)
		return
	case *ast.CallExpr:
		if loop != nil {
			w.checkCall(e)
		}
	case *ast.AssignStmt:
		if loop != nil {
			w.checkAppend(e, loop)
		}
	}
	w.walkChildren(n, loop)
}

func (w *hotallocWalker) walkChildren(n ast.Node, loop ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		w.walk(c, loop)
		return false
	})
}

// checkCall flags fmt calls and arguments boxed into interface
// parameters.
func (w *hotallocWalker) checkCall(call *ast.CallExpr) {
	info := w.pass.Info
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		w.pass.Reportf(call.Pos(), "fmt.%s call in a hot loop parses its format per iteration: build output with strconv/append outside the loop", fn.Name())
		return
	}
	if tv, ok := info.Types[call.Fun]; !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
			continue // untyped nil / constants
		}
		w.pass.Reportf(arg.Pos(), "%s boxed into interface parameter in a hot loop allocates per iteration: keep the hot path monomorphic", types.TypeString(at, types.RelativeTo(w.pass.Pkg)))
	}
}

// checkAppend flags x = append(x, ...) in a loop when x is declared
// outside the loop without preallocated capacity — the classic
// quadratic-regrowth regression. Resets through x[:0] and appends into
// buffers of unknown provenance (parameters, struct fields, slices
// produced by other calls) are deliberately not flagged.
func (w *hotallocWalker) checkAppend(as *ast.AssignStmt, loop ast.Node) {
	info := w.pass.Info
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || info.Uses[id] != nil && info.Uses[id] != types.Universe.Lookup("append") {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			continue // appending someone else's slice, or an x[:0] reset
		}
		obj := info.ObjectOf(lhs)
		if obj == nil || obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			continue // declared inside the loop: fresh each iteration
		}
		init, known := w.inits[obj]
		if !known || preallocated(init) {
			continue
		}
		w.pass.Reportf(as.Pos(), "append to %s grows in a hot loop without preallocation: size it with make(T, 0, cap) before the loop", lhs.Name)
	}
}

// collectInits maps every locally declared object in f to its
// initializer expression (nil for `var x T` declarations without one).
func collectInits(info *types.Info, f *ast.File) map[types.Object]ast.Expr {
	inits := map[types.Object]ast.Expr{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE || len(d.Lhs) != len(d.Rhs) {
				return true
			}
			for i, lhs := range d.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						inits[obj] = d.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range d.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if i < len(d.Values) {
					inits[obj] = d.Values[i]
				} else {
					inits[obj] = nil
				}
			}
		}
		return true
	})
	return inits
}

// preallocated reports whether init visibly reserves capacity: a make
// call with an explicit capacity argument, or a composite literal with
// elements. A nil init (`var x []T`), an empty literal, and a
// capacity-less make all regrow from zero. Anything else — a call, a
// slice expression, a received parameter — is unknown provenance and
// treated as preallocated to stay conservative.
func preallocated(init ast.Expr) bool {
	switch e := ast.Unparen(init).(type) {
	case nil:
		return false
	case *ast.CompositeLit:
		return len(e.Elts) > 0
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" {
			return len(e.Args) >= 3
		}
		return true
	default:
		return true
	}
}
