package analysis

import "go/types"

// wallclockExempt lists packages that legitimately read the wall clock:
// telemetry stamps spans and events with real time by design (DESIGN.md
// "Telemetry": wall vs simclock stamping).
var wallclockExempt = []string{
	"caribou/internal/telemetry",
}

// wallclockFuncs are the time functions that observe or wait on real
// time. Formatting/parsing helpers (time.Parse, time.Unix, time.Date)
// are pure and stay allowed.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallclockAnalyzer flags every use of a wall-clock time function
// outside the exempt packages. Simulation code must use simclock so that
// runs are bit-identical; sites that time real experiments (not
// simulated ones) carry a //caribou:allow wallclock annotation instead.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "flag time.Now/Since/Sleep and friends outside internal/telemetry; simulation code must use simclock",
	Run: func(p *Pass) {
		if pathInAny(p.PkgPath, wallclockExempt) {
			return
		}
		for id, obj := range p.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockFuncs[fn.Name()] {
				continue
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				continue // methods like time.Time.After compare values; only the package functions touch the clock
			}
			p.Reportf(id.Pos(), "time.%s reads the wall clock: simulation code must use simclock (annotate real-experiment timing with //caribou:allow wallclock <reason>)", fn.Name())
		}
	},
}
