package analysis

import "go/ast"

// goroutinePkgs are the approved concurrency packages: the solver's
// batch fan-out, the eval pool, platform's region-limited executor
// machinery, pubsub delivery, telemetry's recorder, and the control
// plane's shard workers. Keeping `go` statements inside this set keeps
// determinism audits tractable — every other package is sequential by
// construction, so bit-identity proofs only have to reason about these
// six.
var goroutinePkgs = []string{
	"caribou/internal/solver",
	"caribou/internal/eval",
	"caribou/internal/platform",
	"caribou/internal/pubsub",
	"caribou/internal/telemetry",
	"caribou/internal/controlplane",
}

// GoroutinesAnalyzer flags `go` statements outside the approved
// concurrency packages.
var GoroutinesAnalyzer = &Analyzer{
	Name: "goroutines",
	Doc:  "restrict go statements to the approved concurrency packages (solver, eval, platform, pubsub, telemetry, controlplane)",
	Run: func(p *Pass) {
		if pathInAny(p.PkgPath, goroutinePkgs) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(), "go statement outside the approved concurrency packages (solver, eval, platform, pubsub, telemetry, controlplane): new concurrency widens the determinism audit; route work through eval.Pool or annotate with a reason")
				}
				return true
			})
		}
	},
}
