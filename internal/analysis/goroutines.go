package analysis

import "go/ast"

// goroutinePkgs are the approved concurrency packages: the solver's
// batch fan-out, the eval pool, platform's region-limited executor
// machinery, pubsub delivery, and telemetry's recorder. Keeping `go`
// statements inside this set keeps determinism audits tractable — every
// other package is sequential by construction, so bit-identity proofs
// only have to reason about these five.
var goroutinePkgs = []string{
	"caribou/internal/solver",
	"caribou/internal/eval",
	"caribou/internal/platform",
	"caribou/internal/pubsub",
	"caribou/internal/telemetry",
}

// GoroutinesAnalyzer flags `go` statements outside the approved
// concurrency packages.
var GoroutinesAnalyzer = &Analyzer{
	Name: "goroutines",
	Doc:  "restrict go statements to the approved concurrency packages (solver, eval, platform, pubsub, telemetry)",
	Run: func(p *Pass) {
		if pathInAny(p.PkgPath, goroutinePkgs) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(), "go statement outside the approved concurrency packages (solver, eval, platform, pubsub, telemetry): new concurrency widens the determinism audit; route work through eval.Pool or annotate with a reason")
				}
				return true
			})
		}
	},
}
