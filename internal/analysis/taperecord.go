package analysis

import (
	"go/ast"
	"go/types"
)

// tapeRecordTypes are the array-of-structs sample-record types owned by
// the Monte Carlo tape compiler.
var tapeRecordTypes = map[string]bool{"tapeStep": true, "tapeEdge": true}

// tapeOwnerPkg is the only package allowed to construct tape records: the
// AoS builder there is the reference compiler the SoA columns are
// transposed from.
const tapeOwnerPkg = "caribou/internal/montecarlo"

// TapeRecordAnalyzer flags composite literals of types named tapeStep or
// tapeEdge outside internal/montecarlo. Replay streams structure-of-arrays
// columns; the padded AoS records exist only as the reference compiler's
// intermediate form. A tapeStep/tapeEdge literal sprouting in another
// package — whether by exporting the originals or by copying their
// definitions — reintroduces the stride-heavy layout the SoA migration
// removed, and bypasses the transpose that keeps the two layouts
// bit-identical. The name-based match is deliberate: a copied definition
// is the same hazard as a reference to the original.
var TapeRecordAnalyzer = &Analyzer{
	Name: "taperecord",
	Doc:  "flag tapeStep/tapeEdge composite literals outside internal/montecarlo; tapes are compiled there",
	Run: func(p *Pass) {
		if pathIn(p.PkgPath, tapeOwnerPkg) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(lit)
				if t == nil {
					return true
				}
				named, ok := t.(*types.Named)
				if !ok || !tapeRecordTypes[named.Obj().Name()] {
					return true
				}
				p.Reportf(lit.Pos(), "%s composite literal outside %s: AoS tape records belong to the tape compiler; replay reads the SoA columns transposed from them", named.Obj().Name(), tapeOwnerPkg)
				return true
			})
		}
	},
}
