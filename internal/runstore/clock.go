package runstore

import "time"

// Clock is the store's injectable time source — the same determinism seam
// the control plane uses (DESIGN.md "Control plane"). Blob content is
// clock-free by construction (results are content-addressed by their run
// configuration, never stamped); only the sweep shard-lock lease protocol
// compares times, and it does so exclusively through this interface.
// cmd/caribou-sweep injects the wall clock behind a single annotated
// //caribou:allow wallclock site; tests inject a manual clock, which makes
// every lease-expiry decision reproducible.
type Clock interface {
	Now() time.Time
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() time.Time

// Now implements Clock.
func (f ClockFunc) Now() time.Time { return f() }
