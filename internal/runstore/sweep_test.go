package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// manualClock is the test clock: lease expiry decisions depend only on
// what the test sets, never on the wall clock.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testManifest(name string, runs, shards int) *Manifest {
	man := &Manifest{Name: name, Schema: testSchema, Shards: shards}
	for i := 0; i < runs; i++ {
		man.Entries = append(man.Entries, ManifestEntry{
			Key:    KeyOf(fmt.Sprintf("run-%d", i)),
			Name:   fmt.Sprintf("run-%d", i),
			Config: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)),
		})
	}
	return man
}

func TestSweepManifestRoundTrip(t *testing.T) {
	s := openTestStore(t)
	clk := newManualClock()
	if _, err := CreateSweep(s, testManifest("rt", 7, 3), clk); err != nil {
		t.Fatal(err)
	}
	sw, err := OpenSweep(s, "rt", clk)
	if err != nil {
		t.Fatal(err)
	}
	man := sw.Manifest()
	if man.Name != "rt" || man.Shards != 3 || len(man.Entries) != 7 || man.Schema != testSchema {
		t.Fatalf("manifest = %+v", man)
	}
	// Round-robin partition covers every entry exactly once.
	seen := map[int]bool{}
	for sh := 0; sh < man.Shards; sh++ {
		for _, i := range man.ShardEntries(sh) {
			if seen[i] {
				t.Fatalf("entry %d in two shards", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 7 {
		t.Fatalf("partition covered %d of 7 entries", len(seen))
	}
	names, err := ListSweeps(s)
	if err != nil || len(names) != 1 || names[0] != "rt" {
		t.Fatalf("ListSweeps = %v, %v", names, err)
	}
}

func TestSweepClaimPartitionsShards(t *testing.T) {
	s := openTestStore(t)
	clk := newManualClock()
	sw, err := CreateSweep(s, testManifest("claims", 8, 4), clk)
	if err != nil {
		t.Fatal(err)
	}
	// Two workers alternately claim-run-done: each shard goes to exactly
	// one worker (the claim-next loop of a caribou-sweep run process).
	owners := map[int]string{}
	for {
		worker := fmt.Sprintf("w%d", len(owners)%2)
		shard, ok, err := sw.Claim(worker, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if prev, dup := owners[shard]; dup {
			t.Fatalf("shard %d claimed twice (by %s then %s)", shard, prev, worker)
		}
		owners[shard] = worker
		if err := sw.MarkDone(shard); err != nil {
			t.Fatal(err)
		}
	}
	if len(owners) != 4 {
		t.Fatalf("claimed %d shards, want 4", len(owners))
	}
	// Done shards are never reclaimed, even after every lease expires.
	clk.Advance(48 * time.Hour)
	if _, ok, err := sw.Claim("w0", time.Hour); ok || err != nil {
		t.Fatalf("claim after all done: ok=%v err=%v", ok, err)
	}
}

// TestSweepClaimIsReentrant pins that a live owner can re-claim its own
// shard (run loops re-enter Claim after finishing other shards).
func TestSweepClaimIsReentrant(t *testing.T) {
	s := openTestStore(t)
	clk := newManualClock()
	sw, err := CreateSweep(s, testManifest("reent", 2, 1), clk)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := sw.Claim("me", time.Hour); !ok {
		t.Fatal("first claim failed")
	}
	shard, ok, err := sw.Claim("me", time.Hour)
	if err != nil || !ok || shard != 0 {
		t.Fatalf("re-claim: shard=%d ok=%v err=%v", shard, ok, err)
	}
}

// TestSweepStaleLockSteal is the dead-process scenario: a shard's lease
// holder dies without marking done; after the lease expires another
// worker must steal the claim, and before expiry it must not.
func TestSweepStaleLockSteal(t *testing.T) {
	s := openTestStore(t)
	clk := newManualClock()
	sw, err := CreateSweep(s, testManifest("steal", 2, 1), clk)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := sw.Claim("dead-proc", 10*time.Minute); !ok {
		t.Fatal("initial claim failed")
	}
	// Live lease: a second worker must be refused.
	clk.Advance(9 * time.Minute)
	if _, ok, err := sw.Claim("alive-proc", 10*time.Minute); ok || err != nil {
		t.Fatalf("claim under a live lease: ok=%v err=%v", ok, err)
	}
	// Expired lease: the claim is stolen and recorded for the new owner.
	clk.Advance(2 * time.Minute)
	shard, ok, err := sw.Claim("alive-proc", 10*time.Minute)
	if err != nil || !ok || shard != 0 {
		t.Fatalf("steal: shard=%d ok=%v err=%v", shard, ok, err)
	}
	l, lok := sw.readLock(0)
	if !lok || l.Owner != "alive-proc" {
		t.Fatalf("lock after steal = %+v ok=%v", l, lok)
	}
	// The original owner's lease is gone: it may not renew.
	if err := sw.Renew(0, "dead-proc", 10*time.Minute); err == nil {
		t.Fatal("dead owner renewed a stolen lock")
	}
	if err := sw.Renew(0, "alive-proc", 10*time.Minute); err != nil {
		t.Fatalf("new owner renew: %v", err)
	}
}

// TestSweepCorruptLockIsStale pins that an unparsable lock file (torn by
// a crash before atomic locks existed, or hand-edited) is treated as
// stale and stolen rather than wedging the shard forever.
func TestSweepCorruptLockIsStale(t *testing.T) {
	s := openTestStore(t)
	clk := newManualClock()
	sw, err := CreateSweep(s, testManifest("corrupt-lock", 1, 1), clk)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sw.lockPath(0), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	shard, ok, err := sw.Claim("healer", time.Hour)
	if err != nil || !ok || shard != 0 {
		t.Fatalf("claim over corrupt lock: shard=%d ok=%v err=%v", shard, ok, err)
	}
}

func TestSweepStatus(t *testing.T) {
	s := openTestStore(t)
	clk := newManualClock()
	man := testManifest("status", 4, 2)
	sw, err := CreateSweep(s, man, clk)
	if err != nil {
		t.Fatal(err)
	}
	// Blobs for shard 0's entries (0 and 2); shard 0 claimed and done.
	for _, i := range []int{0, 2} {
		if err := s.Put(man.Entries[i].Key, testSchema, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := sw.Claim("w0", time.Minute); !ok {
		t.Fatal("claim failed")
	}
	if err := sw.MarkDone(0); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	st := sw.Status()
	if len(st) != 2 {
		t.Fatalf("status has %d shards", len(st))
	}
	if st[0].Total != 2 || st[0].Present != 2 || !st[0].Done || st[0].Owner != "w0" || !st[0].Expired {
		t.Fatalf("shard 0 status = %+v", st[0])
	}
	if st[1].Total != 2 || st[1].Present != 0 || st[1].Done || st[1].Owner != "" {
		t.Fatalf("shard 1 status = %+v", st[1])
	}
}

// TestSweepShardsClampedToRuns pins that a submit asking for more shards
// than runs degrades to one shard per run instead of empty shards.
func TestSweepShardsClampedToRuns(t *testing.T) {
	s := openTestStore(t)
	sw, err := CreateSweep(s, testManifest("clamp", 3, 16), newManualClock())
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.Manifest().Shards; got != 3 {
		t.Fatalf("shards = %d, want 3", got)
	}
}
