// Package runstore is a stdlib-only, content-addressed on-disk result
// store plus the shard/lease machinery for multi-process experiment
// sweeps. It is the durable tier behind eval.Pool's in-memory run memo:
// a run's canonical configuration string hashes to a SHA-256 key, the
// key addresses one immutable blob, and blobs are written atomically
// (temp file + rename) so concurrent writers and killed processes can
// never publish a torn object. Every read re-verifies the blob's header
// and payload checksum; a truncated or corrupted blob is reported as a
// miss (and counted), so callers recompute and overwrite instead of
// consuming garbage.
//
// The repo's determinism invariants (caribou-lint, seeded streams) make
// every run reproducible bit-for-bit, which is what lets N processes
// share one store with no coordination beyond O_EXCL shard locks: any
// two writers of the same key write identical results, so last-rename-
// wins is safe.
package runstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"caribou/internal/telemetry"
)

// Blob format: header then payload then trailer.
//
//	magic    8 bytes  "CRBSTOR1"
//	version  1 byte   formatVersion
//	schema   uvarint length + bytes (caller-declared payload schema tag)
//	length   uvarint  payload byte count
//	payload  length bytes
//	checksum 32 bytes sha256(payload)
//
// Any mismatch — magic, version, schema, short read, trailing garbage,
// checksum — classifies the blob as corrupt: Get reports a miss and the
// store counts it, so the caller recomputes and Put overwrites the bad
// object.
const (
	storeMagic    = "CRBSTOR1"
	formatVersion = 1
)

// KeyOf content-addresses a canonical configuration string.
func KeyOf(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// StoreStats counts store activity since Open.
type StoreStats struct {
	Hits    int64 // Get found a valid blob
	Misses  int64 // Get found no blob
	Corrupt int64 // Get found a blob but rejected it (bad header/checksum)
	Writes  int64 // Put published a blob
}

// Store is a content-addressed blob store rooted at one directory.
// All methods are safe for concurrent use by multiple goroutines and
// multiple processes sharing the directory.
type Store struct {
	dir string

	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
	writes  atomic.Int64

	telHits    *telemetry.Counter
	telMisses  *telemetry.Counter
	telCorrupt *telemetry.Counter
	telWrites  *telemetry.Counter
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty store directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	rec := telemetry.Default()
	return &Store{
		dir:        dir,
		telHits:    rec.Counter("runstore.hits"),
		telMisses:  rec.Counter("runstore.misses"),
		telCorrupt: rec.Counter("runstore.corrupt"),
		telWrites:  rec.Counter("runstore.writes"),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the activity counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Writes:  s.writes.Load(),
	}
}

// Path returns the on-disk location addressed by key (which need not
// exist). Keys shorter than the fan-out prefix land in a literal dir.
func (s *Store) Path(key string) string {
	if len(key) < 3 {
		return filepath.Join(s.dir, "objects", "short", key)
	}
	return filepath.Join(s.dir, "objects", key[:2], key[2:])
}

// Has reports whether a blob exists under key without validating it.
func (s *Store) Has(key string) bool {
	_, err := os.Stat(s.Path(key))
	return err == nil
}

// Get returns the payload stored under key, validating the header and
// checksum. ok is false when the blob is absent or fails validation
// (corrupt blobs are counted separately in Stats); err reports only
// environmental failures such as permission errors.
func (s *Store) Get(key, schema string) (payload []byte, ok bool, err error) {
	data, rerr := os.ReadFile(s.Path(key))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			s.misses.Add(1)
			s.telMisses.Inc()
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("runstore: read %s: %w", key, rerr)
	}
	payload, verr := decodeBlob(data, schema)
	if verr != nil {
		s.corrupt.Add(1)
		s.telCorrupt.Inc()
		return nil, false, nil
	}
	s.hits.Add(1)
	s.telHits.Inc()
	return payload, true, nil
}

// Put publishes payload under key via an atomic write: the blob is
// assembled in a temp file in the same directory and renamed into place,
// so readers and concurrent writers only ever observe complete objects.
// Re-putting an existing key overwrites it (all writers of one key
// produce identical results under the determinism invariants).
func (s *Store) Put(key, schema string, payload []byte) error {
	dst := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	blob := encodeBlob(schema, payload)
	if err := atomicWrite(dst, blob); err != nil {
		return fmt.Errorf("runstore: put %s: %w", key, err)
	}
	s.writes.Add(1)
	s.telWrites.Inc()
	return nil
}

// atomicWrite publishes data at dst via temp file + rename in dst's
// directory (rename is atomic only within one filesystem).
func atomicWrite(dst string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(dst), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// encodeBlob frames payload with the store header and trailing checksum.
func encodeBlob(schema string, payload []byte) []byte {
	var hdr []byte
	hdr = append(hdr, storeMagic...)
	hdr = append(hdr, formatVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(schema)))
	hdr = append(hdr, schema...)
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	out := append(hdr, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...)
}

// decodeBlob validates framing and returns the payload.
func decodeBlob(data []byte, schema string) ([]byte, error) {
	rest := data
	if len(rest) < len(storeMagic)+1 {
		return nil, fmt.Errorf("truncated header")
	}
	if string(rest[:len(storeMagic)]) != storeMagic {
		return nil, fmt.Errorf("bad magic")
	}
	rest = rest[len(storeMagic):]
	if rest[0] != formatVersion {
		return nil, fmt.Errorf("unsupported version %d", rest[0])
	}
	rest = rest[1:]
	slen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < slen {
		return nil, fmt.Errorf("truncated schema")
	}
	rest = rest[n:]
	if string(rest[:slen]) != schema {
		return nil, fmt.Errorf("schema mismatch")
	}
	rest = rest[slen:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("truncated length")
	}
	rest = rest[n:]
	if uint64(len(rest)) != plen+sha256.Size {
		return nil, fmt.Errorf("payload length mismatch")
	}
	payload := rest[:plen]
	var want [sha256.Size]byte
	copy(want[:], rest[plen:])
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}
