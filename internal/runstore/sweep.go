package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// A sweep is a named manifest of content-addressed runs partitioned into
// shards. Submitting writes the manifest once; any number of `run`
// processes then claim shards via O_EXCL lock files and fill the shared
// object store. Because results are content-addressed and every run is
// bit-reproducible, shards merge trivially: the merged result set is
// simply the union of blobs, byte-identical regardless of which process
// executed which shard (or whether a shard was executed twice after a
// lease steal).

// ManifestEntry is one run of a sweep. Config is an opaque payload the
// executing runner understands (eval.RunConfig JSON for caribou-sweep);
// runstore itself never interprets it.
type ManifestEntry struct {
	// Key is the content address (KeyOf of the run's canonical
	// configuration string) the result blob is stored under.
	Key string `json:"key"`
	// Name is a human-readable label for status/export output.
	Name   string          `json:"name"`
	Config json.RawMessage `json:"config"`
}

// Manifest describes a submitted sweep.
type Manifest struct {
	Name string `json:"name"`
	// Schema tags the blob payload format the entries resolve to.
	Schema string `json:"schema"`
	// Shards is the number of partitions entries are dealt into
	// (round-robin: entry i belongs to shard i % Shards).
	Shards  int             `json:"shards"`
	Entries []ManifestEntry `json:"entries"`
}

// ShardEntries returns the indices of the entries belonging to shard.
func (m *Manifest) ShardEntries(shard int) []int {
	var idx []int
	for i := range m.Entries {
		if i%m.Shards == shard {
			idx = append(idx, i)
		}
	}
	return idx
}

// Sweep binds a manifest to a store and a clock for lease decisions.
type Sweep struct {
	store *Store
	name  string
	clock Clock
	man   *Manifest
}

// sweepDir is where a named sweep keeps its manifest, locks, and done
// markers inside the store.
func sweepDir(store *Store, name string) string {
	return filepath.Join(store.Dir(), "sweeps", name)
}

// CreateSweep validates the manifest, writes it atomically under the
// store, and returns the opened sweep. An existing sweep of the same
// name is overwritten (its locks and done markers are cleared) — a
// submit defines the sweep from scratch.
func CreateSweep(store *Store, man *Manifest, clock Clock) (*Sweep, error) {
	if man.Name == "" {
		return nil, fmt.Errorf("runstore: sweep needs a name")
	}
	if man.Shards <= 0 {
		man.Shards = 1
	}
	if man.Shards > len(man.Entries) && len(man.Entries) > 0 {
		man.Shards = len(man.Entries)
	}
	dir := sweepDir(store, man.Name)
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "shards"), 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	buf, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return nil, err
	}
	if err := atomicWrite(filepath.Join(dir, "manifest.json"), append(buf, '\n')); err != nil {
		return nil, fmt.Errorf("runstore: write manifest: %w", err)
	}
	return &Sweep{store: store, name: man.Name, clock: clock, man: man}, nil
}

// OpenSweep loads an existing sweep's manifest.
func OpenSweep(store *Store, name string, clock Clock) (*Sweep, error) {
	buf, err := os.ReadFile(filepath.Join(sweepDir(store, name), "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("runstore: open sweep %q: %w", name, err)
	}
	var man Manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("runstore: sweep %q manifest: %w", name, err)
	}
	if man.Shards <= 0 {
		return nil, fmt.Errorf("runstore: sweep %q manifest has no shards", name)
	}
	return &Sweep{store: store, name: name, clock: clock, man: &man}, nil
}

// Manifest returns the sweep's manifest.
func (s *Sweep) Manifest() *Manifest { return s.man }

// Store returns the underlying object store.
func (s *Sweep) Store() *Store { return s.store }

// shardLock is the JSON body of a shard's lock file.
type shardLock struct {
	Owner        string `json:"owner"`
	AcquiredUnix int64  `json:"acquired_unix"`
	LeaseSec     int64  `json:"lease_sec"`
}

func (l shardLock) expired(now time.Time) bool {
	return now.Unix() >= l.AcquiredUnix+l.LeaseSec
}

func (s *Sweep) lockPath(shard int) string {
	return filepath.Join(sweepDir(s.store, s.name), "shards", fmt.Sprintf("%d.lock", shard))
}

func (s *Sweep) donePath(shard int) string {
	return filepath.Join(sweepDir(s.store, s.name), "shards", fmt.Sprintf("%d.done", shard))
}

// Claim acquires the next available shard for owner: the lowest-numbered
// shard that is not done and either unclaimed, already leased to owner,
// or whose lease has expired (a stale lock from a dead process is stolen
// by atomically renaming a fresh lock over it and re-reading to confirm
// the steal won). Returns ok=false when every shard is done or validly
// leased to someone else.
func (s *Sweep) Claim(owner string, lease time.Duration) (shard int, ok bool, err error) {
	if owner == "" {
		return 0, false, fmt.Errorf("runstore: claim needs a non-empty owner")
	}
	leaseSec := int64(lease / time.Second)
	if leaseSec <= 0 {
		leaseSec = 1
	}
	for i := 0; i < s.man.Shards; i++ {
		if _, err := os.Stat(s.donePath(i)); err == nil {
			continue
		}
		got, err := s.tryClaim(i, owner, leaseSec)
		if err != nil {
			return 0, false, err
		}
		if got {
			return i, true, nil
		}
	}
	return 0, false, nil
}

func (s *Sweep) tryClaim(shard int, owner string, leaseSec int64) (bool, error) {
	body, err := json.Marshal(shardLock{
		Owner:        owner,
		AcquiredUnix: s.clock.Now().Unix(),
		LeaseSec:     leaseSec,
	})
	if err != nil {
		return false, err
	}
	path := s.lockPath(shard)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err == nil {
		_, werr := f.Write(body)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			os.Remove(path)
			return false, fmt.Errorf("runstore: write lock: %w", werr)
		}
		return true, nil
	}
	if !os.IsExist(err) {
		return false, fmt.Errorf("runstore: lock shard %d: %w", shard, err)
	}
	cur, ok := s.readLock(shard)
	if ok && cur.Owner == owner && !cur.expired(s.clock.Now()) {
		return true, nil // already ours and still live
	}
	if ok && !cur.expired(s.clock.Now()) {
		return false, nil // validly held by someone else
	}
	// Stale (or unreadable) lock: steal by renaming a fresh lock over it,
	// then re-read to confirm this process's rename was the last one —
	// concurrent stealers race on the rename and exactly one body wins.
	if err := atomicWrite(path, body); err != nil {
		return false, fmt.Errorf("runstore: steal shard %d: %w", shard, err)
	}
	after, ok := s.readLock(shard)
	return ok && after.Owner == owner, nil
}

// readLock parses a shard's lock file; ok is false when the lock is
// absent or unreadable (an unreadable lock is treated as stale).
func (s *Sweep) readLock(shard int) (shardLock, bool) {
	buf, err := os.ReadFile(s.lockPath(shard))
	if err != nil {
		return shardLock{}, false
	}
	var l shardLock
	if err := json.Unmarshal(buf, &l); err != nil {
		return shardLock{}, false
	}
	return l, true
}

// Renew extends owner's lease on shard (e.g. between runs of a long
// shard). It fails if the shard is no longer leased to owner.
func (s *Sweep) Renew(shard int, owner string, lease time.Duration) error {
	cur, ok := s.readLock(shard)
	if !ok || cur.Owner != owner {
		return fmt.Errorf("runstore: shard %d is not leased to %s", shard, owner)
	}
	leaseSec := int64(lease / time.Second)
	if leaseSec <= 0 {
		leaseSec = 1
	}
	body, err := json.Marshal(shardLock{Owner: owner, AcquiredUnix: s.clock.Now().Unix(), LeaseSec: leaseSec})
	if err != nil {
		return err
	}
	return atomicWrite(s.lockPath(shard), body)
}

// MarkDone publishes shard's done marker. Done shards are never claimed
// again; their results are the blobs in the shared object store.
func (s *Sweep) MarkDone(shard int) error {
	return atomicWrite(s.donePath(shard), []byte("done\n"))
}

// ShardStatus reports one shard's progress.
type ShardStatus struct {
	Shard int
	// Total and Present count the shard's runs and how many already have
	// a result blob on disk.
	Total, Present int
	// Owner is the current lease holder ("" when unclaimed); Expired
	// reports whether that lease has lapsed.
	Owner   string
	Expired bool
	Done    bool
}

// Status reports per-shard progress in shard order.
func (s *Sweep) Status() []ShardStatus {
	out := make([]ShardStatus, s.man.Shards)
	now := s.clock.Now()
	for i := range out {
		st := ShardStatus{Shard: i}
		for _, ei := range s.man.ShardEntries(i) {
			st.Total++
			if s.store.Has(s.man.Entries[ei].Key) {
				st.Present++
			}
		}
		if l, ok := s.readLock(i); ok {
			st.Owner = l.Owner
			st.Expired = l.expired(now)
		}
		if _, err := os.Stat(s.donePath(i)); err == nil {
			st.Done = true
		}
		out[i] = st
	}
	return out
}

// ListSweeps returns the names of the sweeps in the store, sorted.
func ListSweeps(store *Store) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(store.Dir(), "sweeps"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
