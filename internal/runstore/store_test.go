package runstore

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

const testSchema = "runstore/test@v1"

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s := openTestStore(t)
	key := KeyOf("wl=x|class=small|seed=17")
	payload := []byte("the result payload \x00 with binary\xff bytes")
	if _, ok, err := s.Get(key, testSchema); ok || err != nil {
		t.Fatalf("Get before Put: ok=%v err=%v", ok, err)
	}
	if err := s.Put(key, testSchema, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key, testSchema)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreEmptyPayload(t *testing.T) {
	s := openTestStore(t)
	key := KeyOf("empty")
	if err := s.Put(key, testSchema, nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key, testSchema)
	if err != nil || !ok || len(got) != 0 {
		t.Fatalf("empty payload: got=%q ok=%v err=%v", got, ok, err)
	}
}

// TestStoreTruncatedBlob pins the corruption contract for a blob cut
// short mid-payload (the shape a killed non-atomic writer would leave —
// here simulated by truncating a published object): Get must classify it
// as corrupt, report a miss, and a subsequent Put must repair it.
func TestStoreTruncatedBlob(t *testing.T) {
	s := openTestStore(t)
	key := KeyOf("truncate-me")
	payload := bytes.Repeat([]byte("abcdefgh"), 64)
	if err := s.Put(key, testSchema, payload); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int64{0, 4, info.Size() / 2, info.Size() - 1} {
		if err := os.Truncate(s.Path(key), size); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := s.Get(key, testSchema); ok || err != nil {
			t.Fatalf("truncated to %d bytes: ok=%v err=%v (want miss)", size, ok, err)
		}
	}
	if got := s.Stats().Corrupt; got != 4 {
		t.Fatalf("corrupt count = %d, want 4", got)
	}
	// Recompute-and-overwrite heals the object.
	if err := s.Put(key, testSchema, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key, testSchema)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after repair: ok=%v err=%v", ok, err)
	}
}

// TestStoreBadHeader pins rejection of blobs with a corrupted magic, an
// unknown format version, a mismatched schema tag, or a flipped payload
// byte (checksum failure).
func TestStoreBadHeader(t *testing.T) {
	s := openTestStore(t)
	key := KeyOf("bad-header")
	payload := []byte("payload bytes")
	if err := s.Put(key, testSchema, payload); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	corruptions := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"magic", func(b []byte) { b[0] ^= 0xff }},
		{"version", func(b []byte) { b[len(storeMagic)] = formatVersion + 1 }},
		{"schema", func(b []byte) { b[len(storeMagic)+2] ^= 0xff }},
		{"payload-bit", func(b []byte) { b[len(b)-40] ^= 0x01 }},
	}
	for _, c := range corruptions {
		mutated := append([]byte(nil), pristine...)
		c.mutate(mutated)
		if err := os.WriteFile(s.Path(key), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := s.Get(key, testSchema); ok || err != nil {
			t.Errorf("%s corruption: ok=%v err=%v (want miss)", c.name, ok, err)
		}
	}
	// A valid blob under the wrong schema tag is also a miss.
	if err := os.WriteFile(s.Path(key), pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key, "runstore/other@v9"); ok || err != nil {
		t.Errorf("wrong schema: ok=%v err=%v (want miss)", ok, err)
	}
}

// TestStoreConcurrentWriters races many writers on the same key: every
// Put must stay atomic (no torn object is ever observable) and the final
// object must be exactly one writer's payload.
func TestStoreConcurrentWriters(t *testing.T) {
	s := openTestStore(t)
	key := KeyOf("contended")
	const writers = 16
	payloads := make([][]byte, writers)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte(fmt.Sprintf("writer-%02d|", i)), 128)
	}
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Put(key, testSchema, payloads[i]); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
			// Interleaved reads must only ever see complete objects.
			if got, ok, err := s.Get(key, testSchema); err != nil {
				t.Errorf("reader %d: %v", i, err)
			} else if ok && !oneOf(got, payloads) {
				t.Errorf("reader %d observed a torn object", i)
			}
		}(i)
	}
	wg.Wait()
	got, ok, err := s.Get(key, testSchema)
	if err != nil || !ok {
		t.Fatalf("final Get: ok=%v err=%v", ok, err)
	}
	if !oneOf(got, payloads) {
		t.Fatal("final object is not any writer's payload")
	}
	// No temp files may leak.
	entries, err := os.ReadDir(s.Dir() + "/objects/" + key[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("object dir has %d entries, want 1 (leaked temp files?)", len(entries))
	}
}

func oneOf(got []byte, candidates [][]byte) bool {
	for _, c := range candidates {
		if bytes.Equal(got, c) {
			return true
		}
	}
	return false
}

func TestKeyOfStableAndDistinct(t *testing.T) {
	a, b := KeyOf("config-a"), KeyOf("config-b")
	if a == b {
		t.Fatal("distinct canonicals share a key")
	}
	if a != KeyOf("config-a") {
		t.Fatal("KeyOf is not deterministic")
	}
	if len(a) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(a))
	}
}
