// Package trace generates deterministic synthetic invocation traces
// matching the characterization of the 2021 Azure Functions trace used in
// the paper's continuous evaluations (§9.5, §9.7): a daily invocation
// volume around the 5th-percentile DAG (~1.6 K invocations/day) with
// diurnal modulation, weekend dips, and Poisson arrivals.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"caribou/internal/simclock"
)

// Profile shapes a synthetic trace.
type Profile struct {
	// DailyInvocations is the mean number of invocations per day.
	DailyInvocations float64
	// DiurnalAmplitude is the fractional swing of the daily cycle
	// (0 = flat, 0.5 = ±50 %).
	DiurnalAmplitude float64
	// PeakHourUTC is the hour of maximum rate.
	PeakHourUTC float64
	// WeekendDip is the fractional rate reduction on weekends.
	WeekendDip float64
	// LargeFraction is the probability that an invocation uses the
	// large input class.
	LargeFraction float64
}

// AzureP5 is the paper's reference workload: the 5th-percentile DAG from
// the Azure characterization with ~1.6 K average daily invocations.
func AzureP5() Profile {
	return Profile{
		DailyInvocations: 1600,
		DiurnalAmplitude: 0.45,
		PeakHourUTC:      18,
		WeekendDip:       0.25,
		LargeFraction:    0.5,
	}
}

// Uniform is the flat invocation pattern used for the trade-off studies
// (§9.1 "Workload Invocation and Traffic").
func Uniform(perDay float64) Profile {
	return Profile{DailyInvocations: perDay, LargeFraction: 0.5}
}

// Event is one invocation arrival.
type Event struct {
	At    time.Time
	Large bool
}

// Generate produces the arrival events in [start, end). Arrivals are
// Poisson within each hour at the profile's modulated rate; within an
// hour, arrival offsets are uniform. The output is sorted by time and
// deterministic in the seed.
func Generate(p Profile, start, end time.Time, seed int64) ([]Event, error) {
	if !end.After(start) {
		return nil, fmt.Errorf("trace: end %v not after start %v", end, start)
	}
	if p.DailyInvocations <= 0 {
		return nil, fmt.Errorf("trace: DailyInvocations must be positive, got %v", p.DailyInvocations)
	}
	rng := simclock.DeriveRand(seed, "trace")
	var events []Event
	for t := start.UTC().Truncate(time.Hour); t.Before(end); t = t.Add(time.Hour) {
		rate := p.HourlyRate(t)
		n := rng.Poisson(rate)
		for i := 0; i < n; i++ {
			at := t.Add(time.Duration(rng.Float64() * float64(time.Hour)))
			if at.Before(start) || !at.Before(end) {
				continue
			}
			events = append(events, Event{At: at, Large: rng.Bool(p.LargeFraction)})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].At.Before(events[j].At) })
	return events, nil
}

// HourlyRate returns the expected number of arrivals in the hour starting
// at t.
func (p Profile) HourlyRate(t time.Time) float64 {
	base := p.DailyInvocations / 24
	mod := 1.0
	if p.DiurnalAmplitude > 0 {
		h := float64(t.UTC().Hour())
		mod += p.DiurnalAmplitude * math.Cos(2*math.Pi*(h-p.PeakHourUTC)/24)
	}
	if wd := t.Weekday(); (wd == time.Saturday || wd == time.Sunday) && p.WeekendDip > 0 {
		mod *= 1 - p.WeekendDip
	}
	if mod < 0 {
		mod = 0
	}
	return base * mod
}

// CountInWindow returns how many events fall in [from, to).
func CountInWindow(events []Event, from, to time.Time) int {
	n := 0
	for _, e := range events {
		if !e.At.Before(from) && e.At.Before(to) {
			n++
		}
	}
	return n
}
