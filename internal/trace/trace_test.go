package trace

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2023, 10, 16, 0, 0, 0, 0, time.UTC) // a Monday

func TestGenerateVolumeMatchesProfile(t *testing.T) {
	p := Uniform(1600)
	events, err := Generate(p, t0, t0.Add(7*24*time.Hour), 1)
	if err != nil {
		t.Fatal(err)
	}
	perDay := float64(len(events)) / 7
	if math.Abs(perDay-1600)/1600 > 0.05 {
		t.Errorf("daily volume = %.0f, want ~1600", perDay)
	}
}

func TestGenerateSortedAndInWindow(t *testing.T) {
	events, err := Generate(AzureP5(), t0, t0.Add(48*time.Hour), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		if e.At.Before(t0) || !e.At.Before(t0.Add(48*time.Hour)) {
			t.Fatalf("event %d outside window: %v", i, e.At)
		}
		if i > 0 && e.At.Before(events[i-1].At) {
			t.Fatalf("events unsorted at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(AzureP5(), t0, t0.Add(24*time.Hour), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(AzureP5(), t0, t0.Add(24*time.Hour), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].At.Equal(b[i].At) || a[i].Large != b[i].Large {
			t.Fatalf("event %d differs", i)
		}
	}
	c, err := Generate(AzureP5(), t0, t0.Add(24*time.Hour), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if !a[i].At.Equal(c[i].At) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical trace")
		}
	}
}

func TestDiurnalModulation(t *testing.T) {
	p := AzureP5()
	peak := p.HourlyRate(t0.Add(time.Duration(p.PeakHourUTC) * time.Hour))
	trough := p.HourlyRate(t0.Add(time.Duration(math.Mod(p.PeakHourUTC+12, 24)) * time.Hour))
	if peak <= trough {
		t.Errorf("peak %v <= trough %v", peak, trough)
	}
}

func TestWeekendDip(t *testing.T) {
	p := AzureP5()
	monday := p.HourlyRate(t0.Add(10 * time.Hour))
	saturday := p.HourlyRate(t0.Add(5*24*time.Hour + 10*time.Hour))
	if saturday >= monday {
		t.Errorf("saturday rate %v >= monday %v", saturday, monday)
	}
	want := monday * (1 - p.WeekendDip)
	if math.Abs(saturday-want) > 1e-9 {
		t.Errorf("saturday = %v, want %v", saturday, want)
	}
}

func TestLargeFraction(t *testing.T) {
	p := Uniform(2000)
	p.LargeFraction = 0.25
	events, err := Generate(p, t0, t0.Add(7*24*time.Hour), 3)
	if err != nil {
		t.Fatal(err)
	}
	large := 0
	for _, e := range events {
		if e.Large {
			large++
		}
	}
	frac := float64(large) / float64(len(events))
	if math.Abs(frac-0.25) > 0.03 {
		t.Errorf("large fraction = %.3f, want ~0.25", frac)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Uniform(100), t0, t0, 1); err == nil {
		t.Error("want error for empty window")
	}
	if _, err := Generate(Profile{}, t0, t0.Add(time.Hour), 1); err == nil {
		t.Error("want error for zero rate")
	}
}

func TestCountInWindow(t *testing.T) {
	events := []Event{
		{At: t0},
		{At: t0.Add(time.Hour)},
		{At: t0.Add(2 * time.Hour)},
	}
	if n := CountInWindow(events, t0, t0.Add(90*time.Minute)); n != 2 {
		t.Errorf("count = %d, want 2", n)
	}
	if n := CountInWindow(events, t0.Add(3*time.Hour), t0.Add(4*time.Hour)); n != 0 {
		t.Errorf("count = %d, want 0", n)
	}
}

func TestHourlyRateNeverNegative(t *testing.T) {
	p := Profile{DailyInvocations: 240, DiurnalAmplitude: 2.0, PeakHourUTC: 12}
	for h := 0; h < 24; h++ {
		if r := p.HourlyRate(t0.Add(time.Duration(h) * time.Hour)); r < 0 {
			t.Fatalf("hour %d rate %v", h, r)
		}
	}
}
