package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteNDJSON dumps the flight recorder and the instrument registry as
// newline-delimited JSON: one Record per retained span/event (oldest
// first), then one object per counter ({"type":"counter",...}), gauge,
// and histogram, and finally a {"type":"meta"} trailer with recorded and
// dropped totals. Safe on a nil Recorder (writes nothing).
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	recs, total := r.ring.snapshot()
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	ctrs, gags, hists := r.snapshotInstruments()
	for _, c := range ctrs {
		if err := enc.Encode(map[string]interface{}{"type": "counter", "name": c.Name, "value": c.Value}); err != nil {
			return err
		}
	}
	for _, g := range gags {
		if err := enc.Encode(map[string]interface{}{"type": "gauge", "name": g.Name, "value": g.Value}); err != nil {
			return err
		}
	}
	for _, h := range hists {
		if err := enc.Encode(map[string]interface{}{
			"type": "histogram", "name": h.Name, "bounds": h.Bounds, "counts": h.Counts, "count": h.N, "sum": h.Sum,
		}); err != nil {
			return err
		}
	}
	dropped := total - uint64(len(recs))
	if err := enc.Encode(map[string]interface{}{"type": "meta", "recorded": total, "retained": len(recs), "dropped": dropped}); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteSummary renders the text summary table: per-span-name wall-time
// aggregates (the per-phase timings of an eval run), every counter and
// gauge, histogram bucket lines, and derived rates (pool memo-hit rate
// when the pool counters are present). Safe on a nil Recorder (writes a
// disabled notice).
func (r *Recorder) WriteSummary(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "telemetry: disabled")
		return
	}
	recs, total := r.ring.snapshot()

	// Aggregate ended spans by name.
	type agg struct {
		name  string
		count int64
		total time.Duration
	}
	byName := map[string]*agg{}
	for i := range recs {
		if recs[i].Type != "span" {
			continue
		}
		a, ok := byName[recs[i].Name]
		if !ok {
			a = &agg{name: recs[i].Name}
			byName[recs[i].Name] = a
		}
		a.count++
		a.total += time.Duration(recs[i].DurNS)
	}
	spans := make([]*agg, 0, len(byName))
	for _, a := range byName {
		spans = append(spans, a)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].name < spans[j].name })

	fmt.Fprintf(w, "== telemetry summary ==\n")
	if len(spans) > 0 {
		fmt.Fprintf(w, "spans (wall time):\n")
		for _, a := range spans {
			fmt.Fprintf(w, "  %-40s %6d × %12v total\n", a.name, a.count, a.total.Round(time.Microsecond))
		}
	}

	ctrs, gags, hists := r.snapshotInstruments()
	if len(ctrs) > 0 {
		fmt.Fprintf(w, "counters:\n")
		for _, c := range ctrs {
			fmt.Fprintf(w, "  %-40s %d\n", c.Name, c.Value)
		}
	}
	if len(gags) > 0 {
		fmt.Fprintf(w, "gauges:\n")
		for _, g := range gags {
			fmt.Fprintf(w, "  %-40s %d\n", g.Name, g.Value)
		}
	}
	for _, h := range hists {
		fmt.Fprintf(w, "histogram %s: n=%d sum=%.6g\n", h.Name, h.N, h.Sum)
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(w, "  <= %-12g %d\n", h.Bounds[i], c)
			} else {
				fmt.Fprintf(w, "  >  %-12g %d\n", h.Bounds[len(h.Bounds)-1], c)
			}
		}
	}

	// Derived rates.
	if sub := counterValue(ctrs, "pool.submitted"); sub > 0 {
		hits := counterValue(ctrs, "pool.memo_hits")
		fmt.Fprintf(w, "derived:\n")
		fmt.Fprintf(w, "  %-40s %.2f%%\n", "pool.memo_hit_rate", 100*float64(hits)/float64(sub))
	}
	dropped := total - uint64(len(recs))
	fmt.Fprintf(w, "flight recorder: %d recorded, %d retained, %d dropped\n", total, len(recs), dropped)
}

func counterValue(ctrs []counterSnap, name string) int64 {
	for _, c := range ctrs {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
