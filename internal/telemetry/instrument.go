package telemetry

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// The instrument registry: named counters, gauges, and fixed-bucket
// histograms. Handles are interned — asking twice for the same name
// returns the same instrument, so concurrently constructed components
// (e.g. the Envs of a parallel figure sweep) aggregate into shared
// counters. Handle lookup takes a mutex and happens at component
// construction; the instruments themselves are lock-free atomics.

type registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gags  map[string]*Gauge
	hists map[string]*Histogram
}

func newRegistry() registry {
	return registry{
		ctrs:  make(map[string]*Counter),
		gags:  make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing atomic count. The nil *Counter is
// the disabled instrument: Add/Inc on nil are single-branch no-ops.
type Counter struct {
	name string
	v    atomic.Int64
}

// Counter interns a counter by name; nil Recorder yields the nil
// (disabled) counter.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.reg.mu.Lock()
	defer r.reg.mu.Unlock()
	c, ok := r.reg.ctrs[name]
	if !ok {
		c = &Counter{name: name}
		r.reg.ctrs[name] = c
	}
	return c
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter; zero on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic level (int64). The nil *Gauge is disabled.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Gauge interns a gauge by name; nil Recorder yields the nil gauge.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.reg.mu.Lock()
	defer r.reg.mu.Unlock()
	g, ok := r.reg.gags[name]
	if !ok {
		g = &Gauge{name: name}
		r.reg.gags[name] = g
	}
	return g
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Max raises the gauge to v if v exceeds the current value (CAS loop), so
// concurrent observers keep a high-water mark. No-op on nil.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge; zero on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets: counts[i] tallies
// values <= bounds[i], with one overflow bucket past the last bound. The
// nil *Histogram is disabled.
type Histogram struct {
	name   string
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	sumF   float64Adder
	n      atomic.Int64
}

// float64Adder accumulates float64s with a CAS loop over bit patterns.
type float64Adder struct{ bits atomic.Uint64 }

func (f *float64Adder) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *float64Adder) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram interns a histogram by name. bounds must be ascending; they
// are fixed at first interning (later calls with different bounds get the
// original instrument). nil Recorder yields the nil histogram.
func (r *Recorder) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.reg.mu.Lock()
	defer r.reg.mu.Unlock()
	h, ok := r.reg.hists[name]
	if !ok {
		h = &Histogram{
			name:   name,
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.reg.hists[name] = h
	}
	return h
}

// Observe adds one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sumF.add(v)
}

// Count reports total observations; zero on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// snapshot types for export.

type counterSnap struct {
	Name  string
	Value int64
}

type gaugeSnap struct {
	Name  string
	Value int64
}

type histSnap struct {
	Name   string
	Bounds []float64
	Counts []int64
	N      int64
	Sum    float64
}

func (r *Recorder) snapshotInstruments() (ctrs []counterSnap, gags []gaugeSnap, hists []histSnap) {
	r.reg.mu.Lock()
	defer r.reg.mu.Unlock()
	for name, c := range r.reg.ctrs {
		ctrs = append(ctrs, counterSnap{name, c.v.Load()})
	}
	for name, g := range r.reg.gags {
		gags = append(gags, gaugeSnap{name, g.v.Load()})
	}
	for name, h := range r.reg.hists {
		s := histSnap{Name: name, Bounds: append([]float64(nil), h.bounds...), N: h.n.Load(), Sum: h.sumF.load()}
		for i := range h.counts {
			s.Counts = append(s.Counts, h.counts[i].Load())
		}
		hists = append(hists, s)
	}
	sort.Slice(ctrs, func(i, j int) bool { return ctrs[i].Name < ctrs[j].Name })
	sort.Slice(gags, func(i, j int) bool { return gags[i].Name < gags[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	return ctrs, gags, hists
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
