// Package telemetry is the system-observability layer of the repository:
// structured spans with parent links feeding a bounded flight-recorder
// ring buffer, an instrument registry of atomic counters, gauges, and
// fixed-bucket histograms, and exporters (NDJSON trace dump, text summary
// table). It observes the *system* — solver batches, pool memoization,
// simulated-platform activity — whereas internal/metrics implements the
// paper's Metric Manager (§7), which observes the *workloads*.
//
// Telemetry is inert by contract: nothing in this package influences
// simulation state, RNG streams, or scheduling, so every figure output is
// bit-identical with telemetry enabled or disabled at any worker count.
//
// The package is stdlib-only and nil-safe throughout. The process-wide
// recorder defaults to nil (disabled); components capture instrument
// handles at construction, and every method on a nil *Recorder, *Span,
// *Counter, *Gauge, or *Histogram is a no-op whose hot path is a single
// nil check (guarded by BenchmarkTelemetryOff).
package telemetry

import (
	"sync/atomic"
	"time"
)

// DefaultCapacity is the flight recorder's span/event capacity when
// Options.Capacity is zero: old records are overwritten once the ring
// wraps, so long sweeps never grow memory.
const DefaultCapacity = 8192

// Options configures an enabled Recorder.
type Options struct {
	// Capacity bounds the flight-recorder ring buffer (DefaultCapacity
	// when zero).
	Capacity int
}

// Recorder owns one telemetry domain: a flight recorder and an
// instrument registry. The zero value is not usable; construct with New
// or Enable. A nil *Recorder is the disabled recorder.
type Recorder struct {
	ring   *ring
	reg    registry
	nextID atomic.Uint64
}

// New builds a standalone Recorder (tests and embedders); Enable installs
// one as the process default.
func New(opts Options) *Recorder {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: newRing(capacity), reg: newRegistry()}
}

// global is the process-wide recorder; nil means disabled.
var global atomic.Pointer[Recorder]

// Enable installs a fresh process-wide Recorder and returns it.
// Components constructed afterwards pick it up via Default.
func Enable(opts Options) *Recorder {
	r := New(opts)
	global.Store(r)
	return r
}

// Disable clears the process-wide recorder; components constructed
// afterwards run with no-op instruments.
func Disable() {
	global.Store(nil)
}

// Default returns the process-wide recorder, or nil when telemetry is
// disabled. All Recorder methods are safe on the nil result.
func Default() *Recorder {
	return global.Load()
}

// Enabled reports whether a process-wide recorder is installed.
func Enabled() bool { return global.Load() != nil }

// Records snapshots the flight recorder's retained records, oldest first.
// Nil-safe: a disabled recorder has no records.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	recs, _ := r.ring.snapshot()
	return recs
}

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string
	Value string
}

// String builds a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer-valued attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: formatInt(v)} }

// Float builds a float-valued attribute with compact formatting.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: formatFloat(v)} }

// Time builds a time-valued attribute in RFC 3339 (UTC). Used to stamp
// records with simulated (simclock) time, which is distinct from the wall
// clock spans measure.
func Time(k string, t time.Time) Attr {
	return Attr{Key: k, Value: t.UTC().Format(time.RFC3339Nano)}
}
