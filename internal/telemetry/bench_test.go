package telemetry

import (
	"testing"
	"time"
)

// BenchmarkTelemetryOff measures the disabled path every instrumented
// component pays when no recorder is installed: a nil counter add, a nil
// gauge high-water update, and a nil span start/end. This is the cost
// telemetry imposes on the whole system when off — it must stay at a few
// nanoseconds (a handful of nil checks), which is what keeps
// BenchmarkSolver24Hourly within 5% of its pre-telemetry number.
func BenchmarkTelemetryOff(b *testing.B) {
	var r *Recorder
	c := r.Counter("bench.counter")
	g := r.Gauge("bench.gauge")
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Max(int64(i))
		sp := r.StartSpan("bench.span")
		sp.Event("bench.event", time.Time{})
		sp.End()
	}
}

// BenchmarkTelemetryOn measures the same sequence against a live
// recorder: atomic increments plus one ring append per span and event.
func BenchmarkTelemetryOn(b *testing.B) {
	r := New(Options{})
	c := r.Counter("bench.counter")
	g := r.Gauge("bench.gauge")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Max(int64(i))
		sp := r.StartSpan("bench.span")
		sp.Event("bench.event", time.Time{})
		sp.End()
	}
}

// BenchmarkCounterOn isolates the enabled counter hot path (one atomic
// add).
func BenchmarkCounterOn(b *testing.B) {
	r := New(Options{})
	c := r.Counter("bench.counter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
