package telemetry

import "time"

// Span is one in-flight traced operation. Spans measure wall-clock time
// (they profile the system, not the simulation; simulated-time stamps go
// in attributes via Time). A nil *Span is valid and inert, so callers
// never branch on whether telemetry is enabled.
type Span struct {
	r      *Recorder
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
}

// StartSpan opens a root span. Returns nil (a valid no-op span) on a nil
// Recorder.
func (r *Recorder) StartSpan(name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		r:     r,
		id:    r.nextID.Add(1),
		name:  name,
		start: time.Now(),
		attrs: attrs,
	}
}

// StartChild opens a span parented to s. Safe on a nil span (returns nil).
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	child := s.r.StartSpan(name, attrs...)
	child.parent = s.id
	return child
}

// Annotate appends attributes to the span. Safe on a nil span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End closes the span and commits it to the flight recorder. Safe on a
// nil span; calling End more than once records the span more than once,
// so don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.r.ring.append(Record{
		Type:   "span",
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Wall:   s.start,
		DurNS:  int64(time.Since(s.start)),
		Attrs:  attrMap(s.attrs),
	})
}

// Event records a point-in-time occurrence directly to the flight
// recorder. sim is the simulated-clock stamp (stored as the "sim"
// attribute); pass the zero time for occurrences outside any simulation.
// Safe on a nil Recorder.
func (r *Recorder) Event(name string, sim time.Time, attrs ...Attr) {
	if r == nil {
		return
	}
	if !sim.IsZero() {
		attrs = append(attrs, Time("sim", sim))
	}
	r.ring.append(Record{
		Type:  "event",
		Name:  name,
		Wall:  time.Now(),
		Attrs: attrMap(attrs),
	})
}

// Event records an occurrence parented to the span (the span's ID lands
// in the record's Parent). Safe on a nil span.
func (s *Span) Event(name string, sim time.Time, attrs ...Attr) {
	if s == nil {
		return
	}
	if !sim.IsZero() {
		attrs = append(attrs, Time("sim", sim))
	}
	s.r.ring.append(Record{
		Type:   "event",
		Parent: s.id,
		Name:   name,
		Wall:   time.Now(),
		Attrs:  attrMap(attrs),
	})
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}
