package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Counter("x") != nil {
		t.Fatal("nil recorder must yield nil counter")
	}
	if r.Gauge("x") != nil {
		t.Fatal("nil recorder must yield nil gauge")
	}
	if r.Histogram("x", []float64{1}) != nil {
		t.Fatal("nil recorder must yield nil histogram")
	}
	sp := r.StartSpan("op")
	if sp != nil {
		t.Fatal("nil recorder must yield nil span")
	}
	// All of these must be no-ops, not panics.
	sp.End()
	sp.Annotate(String("k", "v"))
	sp.Event("e", time.Time{})
	child := sp.StartChild("child")
	child.End()
	r.Event("e", time.Now())
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value must be 0")
	}
	var g *Gauge
	g.Set(3)
	g.Max(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge value must be 0")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 {
		t.Fatal("nil histogram count must be 0")
	}
	if err := r.WriteNDJSON(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteNDJSON: %v", err)
	}
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil summary should say disabled, got %q", buf.String())
	}
}

func TestEnableDisableDefault(t *testing.T) {
	defer Disable()
	if Default() != nil {
		t.Fatal("default should start nil")
	}
	r := Enable(Options{})
	if Default() != r || !Enabled() {
		t.Fatal("Enable must install the recorder")
	}
	Disable()
	if Default() != nil || Enabled() {
		t.Fatal("Disable must clear the recorder")
	}
}

func TestSpanParentLinksAndEvents(t *testing.T) {
	r := New(Options{})
	root := r.StartSpan("root", String("kind", "test"))
	child := root.StartChild("child")
	child.Event("tick", time.Date(2023, 10, 15, 6, 0, 0, 0, time.UTC), Int("n", 3))
	child.End()
	root.End()
	recs, total := r.ring.snapshot()
	if total != 3 || len(recs) != 3 {
		t.Fatalf("want 3 records, got %d (total %d)", len(recs), total)
	}
	// Records commit at End, so child precedes root; the event is first.
	ev, ch, rt := recs[0], recs[1], recs[2]
	if ev.Type != "event" || ev.Name != "tick" {
		t.Fatalf("first record should be the event, got %+v", ev)
	}
	if ev.Attrs["sim"] != "2023-10-15T06:00:00Z" {
		t.Fatalf("event sim stamp wrong: %q", ev.Attrs["sim"])
	}
	if ev.Attrs["n"] != "3" {
		t.Fatalf("event attr wrong: %q", ev.Attrs["n"])
	}
	if ch.Name != "child" || rt.Name != "root" {
		t.Fatalf("span order wrong: %q then %q", ch.Name, rt.Name)
	}
	if ch.Parent != rt.ID {
		t.Fatalf("child parent %d != root id %d", ch.Parent, rt.ID)
	}
	if ev.Parent != ch.ID {
		t.Fatalf("event parent %d != child id %d", ev.Parent, ch.ID)
	}
	if rt.Parent != 0 {
		t.Fatalf("root must have no parent, got %d", rt.Parent)
	}
	if rt.Attrs["kind"] != "test" {
		t.Fatalf("root attrs lost: %+v", rt.Attrs)
	}
	if rt.DurNS < 0 {
		t.Fatalf("negative duration %d", rt.DurNS)
	}
}

func TestRingBounded(t *testing.T) {
	r := New(Options{Capacity: 4})
	for i := 0; i < 10; i++ {
		r.Event("e", time.Time{}, Int("i", int64(i)))
	}
	recs, total := r.ring.snapshot()
	if total != 10 {
		t.Fatalf("total %d != 10", total)
	}
	if len(recs) != 4 {
		t.Fatalf("retained %d != capacity 4", len(recs))
	}
	// Oldest-first: the last four events (6..9) in order.
	for i, want := range []string{"6", "7", "8", "9"} {
		if recs[i].Attrs["i"] != want {
			t.Fatalf("record %d is i=%s, want %s", i, recs[i].Attrs["i"], want)
		}
	}
}

func TestInstrumentsConcurrent(t *testing.T) {
	r := New(Options{})
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc() // interning returns the same handle
				g.Max(int64(w*1000 + i))
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d != 8000", c.Value())
	}
	if g.Value() != 7999 {
		t.Fatalf("gauge max %d != 7999", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count %d != 8000", h.Count())
	}
	var sum int64
	for i := range h.counts {
		sum += h.counts[i].Load()
	}
	if sum != 8000 {
		t.Fatalf("bucket sum %d != 8000", sum)
	}
}

func TestWriteNDJSONValid(t *testing.T) {
	r := New(Options{})
	sp := r.StartSpan("phase", String("name", "fig7"))
	sp.End()
	r.Event("platform.cold_start", time.Date(2023, 10, 16, 0, 0, 0, 0, time.UTC))
	r.Counter("solver.estimates").Add(42)
	r.Gauge("platform.limiter.peak").Max(7)
	r.Histogram("pool.run_seconds", []float64{1, 10}).Observe(2.5)

	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	types := map[string]int{}
	for _, line := range lines {
		var obj map[string]interface{}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", line, err)
		}
		typ, _ := obj["type"].(string)
		types[typ]++
	}
	for _, want := range []string{"span", "event", "counter", "gauge", "histogram", "meta"} {
		if types[want] == 0 {
			t.Fatalf("NDJSON missing %q records (got %v)", want, types)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	r := New(Options{})
	sp := r.StartSpan("eval/fig7")
	sp.End()
	r.Counter("pool.submitted").Add(10)
	r.Counter("pool.memo_hits").Add(4)
	r.Counter("solver.hbss_batches").Add(3)
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"eval/fig7", "pool.submitted", "solver.hbss_batches", "pool.memo_hit_rate", "40.00%", "flight recorder"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
