package telemetry

import (
	"sync"
	"time"
)

// Record is one flight-recorder entry: a completed span or a point event.
// Records marshal directly to the NDJSON export format.
type Record struct {
	// Type is "span" or "event".
	Type string `json:"type"`
	// ID and Parent link spans; Parent is zero for roots. Events carry
	// the enclosing span's ID in Parent when recorded through a span.
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Wall is the wall-clock start (span) or record time (event).
	Wall time.Time `json:"wall"`
	// DurNS is the span's wall-clock duration in nanoseconds.
	DurNS int64 `json:"dur_ns,omitempty"`
	// Attrs hold key/value annotations; simulated-clock stamps appear
	// here under "sim" (see Time), never in Wall.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// ring is a bounded flight recorder: the most recent cap records are
// retained, older ones are overwritten in place. All methods are safe for
// concurrent use.
type ring struct {
	mu    sync.Mutex
	buf   []Record
	total uint64 // records ever appended
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]Record, 0, capacity)}
}

func (r *ring) append(rec Record) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = rec
	}
	r.total++
	r.mu.Unlock()
}

// snapshot returns retained records oldest-first plus the total ever
// appended (total - len(records) were dropped by the ring bound).
func (r *ring) snapshot() ([]Record, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.buf))
	if r.total > uint64(cap(r.buf)) {
		at := int(r.total % uint64(cap(r.buf)))
		out = append(out, r.buf[at:]...)
		out = append(out, r.buf[:at]...)
	} else {
		out = append(out, r.buf...)
	}
	return out, r.total
}
