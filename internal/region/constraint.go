package region

import "fmt"

// Constraint captures the compliance rules of §8: a workflow- or
// function-level allow/deny list over regions, providers, and countries.
// Function-level constraints supersede workflow-level ones; an empty allow
// set means "all regions eligible".
type Constraint struct {
	AllowedRegions    []ID
	DisallowedRegions []ID
	AllowedProviders  []string
	AllowedCountries  []string
}

// Permits reports whether the constraint allows deployment to r.
func (c Constraint) Permits(r *Region) bool {
	for _, d := range c.DisallowedRegions {
		if d == r.ID {
			return false
		}
	}
	if len(c.AllowedRegions) > 0 {
		found := false
		for _, a := range c.AllowedRegions {
			if a == r.ID {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(c.AllowedProviders) > 0 {
		found := false
		for _, p := range c.AllowedProviders {
			if p == r.Provider {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(c.AllowedCountries) > 0 {
		found := false
		for _, cc := range c.AllowedCountries {
			if cc == r.Country {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Empty reports whether the constraint imposes no restriction.
func (c Constraint) Empty() bool {
	return len(c.AllowedRegions) == 0 && len(c.DisallowedRegions) == 0 &&
		len(c.AllowedProviders) == 0 && len(c.AllowedCountries) == 0
}

// Merge layers a function-level constraint over a workflow-level one.
// Per §8, the function-level configuration supersedes the workflow-level
// one wherever it says anything at all; deny lists accumulate.
func Merge(workflow, function Constraint) Constraint {
	out := workflow
	if len(function.AllowedRegions) > 0 {
		out.AllowedRegions = function.AllowedRegions
	}
	if len(function.AllowedProviders) > 0 {
		out.AllowedProviders = function.AllowedProviders
	}
	if len(function.AllowedCountries) > 0 {
		out.AllowedCountries = function.AllowedCountries
	}
	out.DisallowedRegions = append(append([]ID(nil), workflow.DisallowedRegions...), function.DisallowedRegions...)
	return out
}

// Eligible returns the region IDs from the catalogue permitted by the
// constraint, in stable order. It errors when nothing is eligible, since a
// workflow with no deployable region is a configuration bug.
func (c Constraint) Eligible(cat *Catalogue) ([]ID, error) {
	var out []ID
	for _, id := range cat.IDs() {
		r, _ := cat.Get(id)
		if c.Permits(r) {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("region: constraint permits no region in catalogue of %d", cat.Len())
	}
	return out, nil
}
