// Package region defines the cloud region catalogue used across Caribou:
// geography, provider metadata, relative performance, and compliance
// attributes. The catalogue covers the six public North American AWS
// regions evaluated in the paper.
package region

import (
	"fmt"
	"math"
	"sort"
)

// ID names a cloud region, e.g. "aws:us-east-1". The provider prefix keeps
// the catalogue open to multi-cloud extensions even though the evaluation,
// like the paper's, runs on a single provider.
type ID string

// Region describes one deployable cloud region.
type Region struct {
	ID       ID
	Provider string
	Name     string
	Country  string // ISO 3166-1 alpha-2, drives data-residency compliance
	Lat      float64
	Lon      float64
	// PerfFactor scales function execution time relative to the home
	// region's hardware generation (1.0 = identical). The paper observes
	// small cross-region execution-time differences (§9.3).
	PerfFactor float64
	// GridZone names the electrical grid the datacenter draws from;
	// regions on the same grid share a carbon-intensity trace
	// (us-east-1 and us-east-2 per §2.1).
	GridZone string
}

// Catalogue is an immutable set of regions indexed by ID.
type Catalogue struct {
	byID  map[ID]*Region
	order []ID
}

// NewCatalogue builds a catalogue from the given regions. Duplicate IDs are
// an error.
func NewCatalogue(regions []Region) (*Catalogue, error) {
	c := &Catalogue{byID: make(map[ID]*Region, len(regions))}
	for i := range regions {
		r := regions[i]
		if r.ID == "" {
			return nil, fmt.Errorf("region: empty region ID at index %d", i)
		}
		if _, dup := c.byID[r.ID]; dup {
			return nil, fmt.Errorf("region: duplicate region %q", r.ID)
		}
		if r.PerfFactor <= 0 {
			r.PerfFactor = 1.0
		}
		rr := r
		c.byID[r.ID] = &rr
		c.order = append(c.order, r.ID)
	}
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	return c, nil
}

// Get returns the region with the given ID.
func (c *Catalogue) Get(id ID) (*Region, bool) {
	r, ok := c.byID[id]
	return r, ok
}

// IDs returns all region IDs in stable (sorted) order.
func (c *Catalogue) IDs() []ID { return append([]ID(nil), c.order...) }

// Len reports the number of regions.
func (c *Catalogue) Len() int { return len(c.order) }

// Subset returns a catalogue restricted to the given IDs, erroring on
// unknown regions.
func (c *Catalogue) Subset(ids []ID) (*Catalogue, error) {
	regions := make([]Region, 0, len(ids))
	for _, id := range ids {
		r, ok := c.byID[id]
		if !ok {
			return nil, fmt.Errorf("region: unknown region %q", id)
		}
		regions = append(regions, *r)
	}
	return NewCatalogue(regions)
}

// DistanceKm returns the great-circle distance between two regions.
func DistanceKm(a, b *Region) float64 {
	const earthRadiusKm = 6371.0
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(s))
}

// North American AWS region IDs used throughout the evaluation.
const (
	USEast1    ID = "aws:us-east-1"
	USEast2    ID = "aws:us-east-2"
	USWest1    ID = "aws:us-west-1"
	USWest2    ID = "aws:us-west-2"
	CACentral1 ID = "aws:ca-central-1"
	CAWest1    ID = "aws:ca-west-1"
)

// NorthAmerica returns the catalogue of the six public NA AWS regions.
// Performance factors reflect the small cross-region execution-time
// variation the paper attributes to hardware and co-tenancy differences.
func NorthAmerica() *Catalogue {
	c, err := NewCatalogue([]Region{
		{ID: USEast1, Provider: "aws", Name: "N. Virginia", Country: "US", Lat: 38.95, Lon: -77.45, PerfFactor: 1.00, GridZone: "US-MIDA-PJM"},
		{ID: USEast2, Provider: "aws", Name: "Ohio", Country: "US", Lat: 40.10, Lon: -82.75, PerfFactor: 1.01, GridZone: "US-MIDA-PJM"},
		{ID: USWest1, Provider: "aws", Name: "N. California", Country: "US", Lat: 37.35, Lon: -121.96, PerfFactor: 1.02, GridZone: "US-CAL-CISO"},
		{ID: USWest2, Provider: "aws", Name: "Oregon", Country: "US", Lat: 45.84, Lon: -119.70, PerfFactor: 1.00, GridZone: "US-NW-PACW"},
		{ID: CACentral1, Provider: "aws", Name: "Montreal", Country: "CA", Lat: 45.50, Lon: -73.57, PerfFactor: 1.01, GridZone: "CA-QC"},
		{ID: CAWest1, Provider: "aws", Name: "Calgary", Country: "CA", Lat: 51.05, Lon: -114.07, PerfFactor: 1.02, GridZone: "CA-AB"},
	})
	if err != nil {
		panic(err) // static data, cannot fail
	}
	return c
}

// EvaluationFour returns the four-region subset the paper's evaluation
// focuses on (§9.1): us-east-1, us-west-1, us-west-2, ca-central-1.
func EvaluationFour() []ID {
	return []ID{USEast1, USWest1, USWest2, CACentral1}
}

// Global AWS region IDs beyond North America, used by the global-shifting
// extension experiment (§2.1 notes the observations are even more
// pronounced globally: more diverse energy mixes, full daily solar lag,
// and opposite seasons across hemispheres).
const (
	EUWest1      ID = "aws:eu-west-1"      // Ireland
	EUCentral1   ID = "aws:eu-central-1"   // Frankfurt
	EUNorth1     ID = "aws:eu-north-1"     // Stockholm
	APNortheast1 ID = "aws:ap-northeast-1" // Tokyo
	APSoutheast2 ID = "aws:ap-southeast-2" // Sydney
	SAEast1      ID = "aws:sa-east-1"      // São Paulo
)

// Global returns the North American catalogue extended with six regions
// across Europe, Asia-Pacific, and South America.
func Global() *Catalogue {
	na := NorthAmerica()
	regions := make([]Region, 0, na.Len()+6)
	for _, id := range na.IDs() {
		r, _ := na.Get(id)
		regions = append(regions, *r)
	}
	regions = append(regions,
		Region{ID: EUWest1, Provider: "aws", Name: "Ireland", Country: "IE", Lat: 53.35, Lon: -6.26, PerfFactor: 1.01, GridZone: "IE"},
		Region{ID: EUCentral1, Provider: "aws", Name: "Frankfurt", Country: "DE", Lat: 50.11, Lon: 8.68, PerfFactor: 1.01, GridZone: "DE"},
		Region{ID: EUNorth1, Provider: "aws", Name: "Stockholm", Country: "SE", Lat: 59.33, Lon: 18.07, PerfFactor: 1.02, GridZone: "SE"},
		Region{ID: APNortheast1, Provider: "aws", Name: "Tokyo", Country: "JP", Lat: 35.68, Lon: 139.69, PerfFactor: 1.02, GridZone: "JP-TK"},
		Region{ID: APSoutheast2, Provider: "aws", Name: "Sydney", Country: "AU", Lat: -33.87, Lon: 151.21, PerfFactor: 1.02, GridZone: "AU-NSW"},
		Region{ID: SAEast1, Provider: "aws", Name: "São Paulo", Country: "BR", Lat: -23.55, Lon: -46.63, PerfFactor: 1.03, GridZone: "BR-CS"},
	)
	c, err := NewCatalogue(regions)
	if err != nil {
		panic(err) // static data, cannot fail
	}
	return c
}
