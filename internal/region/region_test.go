package region

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogueBasics(t *testing.T) {
	c := NorthAmerica()
	if c.Len() != 6 {
		t.Fatalf("catalogue has %d regions, want 6", c.Len())
	}
	r, ok := c.Get(USEast1)
	if !ok {
		t.Fatal("us-east-1 missing")
	}
	if r.Country != "US" || r.GridZone != "US-MIDA-PJM" {
		t.Errorf("us-east-1 metadata: %+v", r)
	}
	// us-east-1 and us-east-2 share a grid (§2.1).
	r2, _ := c.Get(USEast2)
	if r2.GridZone != r.GridZone {
		t.Errorf("us-east-1/2 grids differ: %s vs %s", r.GridZone, r2.GridZone)
	}
	if _, ok := c.Get("aws:eu-west-1"); ok {
		t.Error("unknown region resolved")
	}
}

func TestCatalogueIDsSorted(t *testing.T) {
	ids := NorthAmerica().IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestNewCatalogueRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewCatalogue([]Region{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Error("want duplicate error")
	}
	if _, err := NewCatalogue([]Region{{ID: ""}}); err == nil {
		t.Error("want empty-ID error")
	}
}

func TestDefaultPerfFactor(t *testing.T) {
	c, err := NewCatalogue([]Region{{ID: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := c.Get("x")
	if r.PerfFactor != 1.0 {
		t.Errorf("default perf factor = %v", r.PerfFactor)
	}
}

func TestSubset(t *testing.T) {
	c := NorthAmerica()
	sub, err := c.Subset(EvaluationFour())
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 4 {
		t.Fatalf("subset has %d", sub.Len())
	}
	if _, ok := sub.Get(USEast2); ok {
		t.Error("us-east-2 should be excluded")
	}
	if _, err := c.Subset([]ID{"aws:nowhere"}); err == nil {
		t.Error("want unknown-region error")
	}
}

func TestDistanceKm(t *testing.T) {
	c := NorthAmerica()
	e1, _ := c.Get(USEast1)
	w2, _ := c.Get(USWest2)
	d := DistanceKm(e1, w2)
	// Virginia to Oregon is roughly 3,700 km.
	if d < 3200 || d > 4200 {
		t.Errorf("us-east-1..us-west-2 distance = %.0f km", d)
	}
	if dd := DistanceKm(e1, e1); dd != 0 {
		t.Errorf("self distance = %v", dd)
	}
	if DistanceKm(e1, w2) != DistanceKm(w2, e1) {
		t.Error("distance not symmetric")
	}
}

func TestConstraintPermits(t *testing.T) {
	c := NorthAmerica()
	ca, _ := c.Get(CACentral1)
	us, _ := c.Get(USEast1)

	empty := Constraint{}
	if !empty.Permits(ca) || !empty.Permits(us) {
		t.Error("empty constraint must permit everything")
	}
	if !empty.Empty() {
		t.Error("Empty() false for empty constraint")
	}

	usOnly := Constraint{AllowedCountries: []string{"US"}}
	if usOnly.Permits(ca) {
		t.Error("US-only permitted Canada")
	}
	if !usOnly.Permits(us) {
		t.Error("US-only rejected us-east-1")
	}

	deny := Constraint{DisallowedRegions: []ID{USEast1}}
	if deny.Permits(us) {
		t.Error("deny list ignored")
	}

	allowList := Constraint{AllowedRegions: []ID{CACentral1}}
	if allowList.Permits(us) || !allowList.Permits(ca) {
		t.Error("allow list misapplied")
	}

	provider := Constraint{AllowedProviders: []string{"gcp"}}
	if provider.Permits(us) {
		t.Error("provider filter ignored")
	}

	// Deny wins over allow.
	both := Constraint{AllowedRegions: []ID{USEast1}, DisallowedRegions: []ID{USEast1}}
	if both.Permits(us) {
		t.Error("deny should win over allow")
	}
}

func TestMergeFunctionSupersedesWorkflow(t *testing.T) {
	wf := Constraint{AllowedRegions: []ID{USEast1, USWest2}, DisallowedRegions: []ID{USWest1}}
	fn := Constraint{AllowedRegions: []ID{CACentral1}, DisallowedRegions: []ID{USEast2}}
	m := Merge(wf, fn)
	c := NorthAmerica()
	ca, _ := c.Get(CACentral1)
	e1, _ := c.Get(USEast1)
	if !m.Permits(ca) {
		t.Error("function-level allow should supersede workflow allow")
	}
	if m.Permits(e1) {
		t.Error("workflow allow should be replaced, not unioned")
	}
	// Deny lists accumulate.
	w1, _ := c.Get(USWest1)
	e2, _ := c.Get(USEast2)
	if m.Permits(w1) || m.Permits(e2) {
		t.Error("merged deny lists not enforced")
	}
}

func TestMergeEmptyFunctionKeepsWorkflow(t *testing.T) {
	wf := Constraint{AllowedCountries: []string{"CA"}}
	m := Merge(wf, Constraint{})
	c := NorthAmerica()
	us, _ := c.Get(USEast1)
	ca, _ := c.Get(CACentral1)
	if m.Permits(us) || !m.Permits(ca) {
		t.Error("workflow constraint lost in merge")
	}
}

func TestEligible(t *testing.T) {
	c := NorthAmerica()
	ids, err := Constraint{AllowedCountries: []string{"CA"}}.Eligible(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("CA regions = %v", ids)
	}
	if _, err := (Constraint{AllowedProviders: []string{"azure"}}).Eligible(c); err == nil {
		t.Error("want error when nothing is eligible")
	}
}

func TestQuickDenyAlwaysExcludes(t *testing.T) {
	c := NorthAmerica()
	ids := c.IDs()
	f := func(denyIdx, testIdx uint8) bool {
		deny := ids[int(denyIdx)%len(ids)]
		target := ids[int(testIdx)%len(ids)]
		cons := Constraint{DisallowedRegions: []ID{deny}}
		r, _ := c.Get(target)
		permitted := cons.Permits(r)
		if target == deny {
			return !permitted
		}
		return permitted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluationFour(t *testing.T) {
	four := EvaluationFour()
	if len(four) != 4 {
		t.Fatalf("EvaluationFour = %v", four)
	}
	want := map[ID]bool{USEast1: true, USWest1: true, USWest2: true, CACentral1: true}
	for _, id := range four {
		if !want[id] {
			t.Errorf("unexpected region %s", id)
		}
	}
}

func TestHaversineAgainstKnownValue(t *testing.T) {
	// Montreal to Calgary is about 3,000 km great-circle.
	c := NorthAmerica()
	mtl, _ := c.Get(CACentral1)
	yyc, _ := c.Get(CAWest1)
	d := DistanceKm(mtl, yyc)
	if math.Abs(d-3000) > 300 {
		t.Errorf("Montreal-Calgary = %.0f km, want ~3000", d)
	}
}

func TestGlobalCatalogue(t *testing.T) {
	g := Global()
	if g.Len() != 12 {
		t.Fatalf("global catalogue has %d regions, want 12", g.Len())
	}
	se, ok := g.Get(EUNorth1)
	if !ok || se.Country != "SE" {
		t.Errorf("eu-north-1 = %+v ok=%v", se, ok)
	}
	// NA regions remain present and identical.
	na := NorthAmerica()
	for _, id := range na.IDs() {
		if _, ok := g.Get(id); !ok {
			t.Errorf("global missing NA region %s", id)
		}
	}
	// Southern hemisphere region present for seasonality studies.
	syd, ok := g.Get(APSoutheast2)
	if !ok || syd.Lat >= 0 {
		t.Errorf("sydney = %+v", syd)
	}
}
