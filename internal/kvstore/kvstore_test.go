package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if _, ok := s.Get("k"); ok {
		t.Error("missing key resolved")
	}
	s.Put("k", []byte("v1"))
	v, ok := s.Get("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("got %q ok=%v", v, ok)
	}
	s.Put("k", []byte("v2"))
	v, _ = s.Get("k")
	if string(v) != "v2" {
		t.Errorf("overwrite failed: %q", v)
	}
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Error("delete failed")
	}
	s.Delete("k") // idempotent
	if s.Len() != 0 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("k", []byte("abc"))
	v, _ := s.Get("k")
	v[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Error("caller mutation leaked into store")
	}
}

func TestCounters(t *testing.T) {
	s := New()
	if got := s.Incr("c", 3); got != 3 {
		t.Errorf("incr = %d", got)
	}
	if got := s.Incr("c", -1); got != 2 {
		t.Errorf("incr = %d", got)
	}
	if got := s.Counter("c"); got != 2 {
		t.Errorf("counter = %d", got)
	}
	if got := s.Counter("other"); got != 0 {
		t.Errorf("fresh counter = %d", got)
	}
	s.Delete("c")
	if got := s.Counter("c"); got != 0 {
		t.Errorf("counter survived delete: %d", got)
	}
}

func TestUpdateAtomicReadModifyWrite(t *testing.T) {
	s := New()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Update("n", func(cur []byte, exists bool) ([]byte, bool) {
					n := 0
					if exists {
						fmt.Sscanf(string(cur), "%d", &n)
					}
					return []byte(fmt.Sprintf("%d", n+1)), true
				})
			}
		}()
	}
	wg.Wait()
	v, _ := s.Get("n")
	var n int
	fmt.Sscanf(string(v), "%d", &n)
	if n != workers*perWorker {
		t.Errorf("lost updates: %d, want %d", n, workers*perWorker)
	}
}

func TestUpdateSkipWrite(t *testing.T) {
	s := New()
	s.Put("k", []byte("keep"))
	s.Update("k", func(cur []byte, exists bool) ([]byte, bool) {
		return []byte("discard"), false
	})
	v, _ := s.Get("k")
	if string(v) != "keep" {
		t.Errorf("write-skip ignored: %q", v)
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := New()
	// nil old = create-if-absent.
	if !s.CompareAndSwap("k", nil, []byte("a")) {
		t.Error("create-if-absent failed")
	}
	if s.CompareAndSwap("k", nil, []byte("b")) {
		t.Error("create-if-absent succeeded on existing key")
	}
	if s.CompareAndSwap("k", []byte("wrong"), []byte("b")) {
		t.Error("CAS succeeded with wrong old value")
	}
	if !s.CompareAndSwap("k", []byte("a"), []byte("b")) {
		t.Error("CAS failed with matching old value")
	}
	v, _ := s.Get("k")
	if string(v) != "b" {
		t.Errorf("value = %q", v)
	}
	if s.CompareAndSwap("missing", []byte("x"), []byte("y")) {
		t.Error("CAS succeeded on missing key with non-nil old")
	}
}

func TestKeysPrefix(t *testing.T) {
	s := New()
	s.Put("dp/a", nil)
	s.Put("dp/b", nil)
	s.Put("sync/x", nil)
	keys := s.Keys("dp/")
	if len(keys) != 2 || keys[0] != "dp/a" || keys[1] != "dp/b" {
		t.Errorf("keys = %v", keys)
	}
	if got := s.Keys("zz/"); len(got) != 0 {
		t.Errorf("unexpected keys %v", got)
	}
}

func TestJSONHelpers(t *testing.T) {
	s := New()
	type payload struct {
		A int
		B string
	}
	if err := s.PutJSON("j", payload{A: 7, B: "x"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.GetJSON("j", &out)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if out.A != 7 || out.B != "x" {
		t.Errorf("decoded %+v", out)
	}
	ok, err = s.GetJSON("missing", &out)
	if err != nil || ok {
		t.Errorf("missing: ok=%v err=%v", ok, err)
	}
	s.Put("bad", []byte("{not json"))
	if ok, err := s.GetJSON("bad", &out); !ok || err == nil {
		t.Errorf("bad JSON: ok=%v err=%v", ok, err)
	}
	if err := s.PutJSON("nope", make(chan int)); err == nil {
		t.Error("want marshal error")
	}
}

func TestStatsCountAccesses(t *testing.T) {
	s := New()
	s.Put("a", nil)
	s.Get("a")
	s.Incr("c", 1)
	r, w := s.Stats()
	if r == 0 || w == 0 {
		t.Errorf("stats r=%d w=%d", r, w)
	}
}

func TestQuickCASOnlySucceedsWithMatchingOld(t *testing.T) {
	f := func(initial, old, next []byte) bool {
		s := New()
		s.Put("k", initial)
		ok := s.CompareAndSwap("k", old, next)
		v, _ := s.Get("k")
		if string(initial) == string(old) && old != nil {
			return ok && string(v) == string(next)
		}
		return !ok && string(v) == string(initial)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIncr(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				s.Incr("c", 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("c"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}
