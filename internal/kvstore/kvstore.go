// Package kvstore provides the distributed key-value store substrate that
// Caribou's components coordinate through (the paper uses DynamoDB): it
// holds deployment plans, workflow metadata, synchronization-node
// annotations, and collected metrics. The store offers the atomic
// primitives the sync-node protocol of §4 requires: atomic counters and
// atomic read-modify-write updates.
//
// Latency and cost of accesses are accounted by the platform layer, which
// knows the accessor's region; the store itself is a linearizable map safe
// for concurrent use.
package kvstore

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store is a linearizable key-value store with atomic counters.
// The zero value is not usable; call New.
type Store struct {
	mu       sync.Mutex
	data     map[string][]byte
	counters map[string]int64
	reads    uint64
	writes   uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{
		data:     make(map[string][]byte),
		counters: make(map[string]int64),
	}
}

// Get returns the value stored at key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Put stores value at key, replacing any prior value.
func (s *Store) Put(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	s.data[key] = append([]byte(nil), value...)
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	delete(s.data, key)
	delete(s.counters, key)
}

// Incr atomically adds delta to the counter at key and returns the new
// value. Counters live in their own namespace and start at zero.
func (s *Store) Incr(key string, delta int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	s.counters[key] += delta
	return s.counters[key]
}

// Counter returns the current counter value at key.
func (s *Store) Counter(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	return s.counters[key]
}

// Update atomically applies fn to the current value at key. fn receives
// the current value (nil if absent) and reports the new value and whether
// to write it. This is the primitive behind the sync-node annotation
// protocol: "atomically update an annotation associated with the edge".
func (s *Store) Update(key string, fn func(cur []byte, exists bool) ([]byte, bool)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	cur, ok := s.data[key]
	var curCopy []byte
	if ok {
		curCopy = append([]byte(nil), cur...)
	}
	next, write := fn(curCopy, ok)
	if write {
		s.writes++
		s.data[key] = append([]byte(nil), next...)
	}
}

// CompareAndSwap writes next at key only when the current value equals
// old. A nil old means "only if absent". It reports whether the swap
// happened.
func (s *Store) CompareAndSwap(key string, old, next []byte) bool {
	swapped := false
	s.Update(key, func(cur []byte, exists bool) ([]byte, bool) {
		if old == nil {
			if exists {
				return nil, false
			}
		} else {
			if !exists || string(cur) != string(old) {
				return nil, false
			}
		}
		swapped = true
		return next, true
	})
	return swapped
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of stored values (excluding counters).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Stats reports cumulative read and write request counts, the billable
// dimensions of the DynamoDB stand-in.
func (s *Store) Stats() (reads, writes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.writes
}

// PutJSON marshals v and stores it at key.
func (s *Store) PutJSON(key string, v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("kvstore: marshal %s: %w", key, err)
	}
	s.Put(key, b)
	return nil
}

// GetJSON unmarshals the value at key into v. It reports whether the key
// existed; a decode failure on an existing key is an error.
func (s *Store) GetJSON(key string, v interface{}) (bool, error) {
	b, ok := s.Get(key)
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(b, v); err != nil {
		return true, fmt.Errorf("kvstore: unmarshal %s: %w", key, err)
	}
	return true, nil
}
