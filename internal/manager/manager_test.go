package manager

import (
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/deployer"
	"caribou/internal/executor"
	"caribou/internal/metrics"
	"caribou/internal/montecarlo"
	"caribou/internal/netmodel"
	"caribou/internal/platform"
	"caribou/internal/pricing"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/solver"
	"caribou/internal/workloads"
)

var t0 = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

type stack struct {
	sched *simclock.Scheduler
	eng   *executor.Engine
	mm    *metrics.Manager
	dep   *deployer.Deployer
	mgr   *Manager
}

func newStack(t *testing.T, cfg Config) *stack {
	t.Helper()
	sched := simclock.New(t0)
	cat, err := region.NorthAmerica().Subset(region.EvaluationFour())
	if err != nil {
		t.Fatal(err)
	}
	src, err := carbon.NewSyntheticSource(1, t0.Add(-8*24*time.Hour), t0.Add(10*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	net := netmodel.New(cat)
	p, err := platform.New(platform.Options{Sched: sched, Catalogue: cat, Net: net, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wl := workloads.Text2SpeechCensoring()
	mm := metrics.New(wl.DAG, region.USEast1, cat, net, src, pricing.DefaultBook())
	eng, err := executor.New(executor.Options{
		Platform: p, Workload: wl, Home: region.USEast1, Seed: 1,
		OnComplete: func(r *platform.InvocationRecord) { mm.Ingest(r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	dep := deployer.New(eng, p)
	if err := dep.InitialDeploy(); err != nil {
		t.Fatal(err)
	}
	est := montecarlo.New(mm, carbon.BestCase(), 1)
	solv, err := solver.New(solver.Config{
		Inputs: mm, Estimator: est,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(cfg, mm, solv, dep, region.USEast1, t0)
	eng.SetPlans(dep)
	return &stack{sched: sched, eng: eng, mm: mm, dep: dep, mgr: mgr}
}

func (s *stack) runTraffic(t *testing.T, n int, gap time.Duration) {
	t.Helper()
	start := s.sched.Now()
	for i := 0; i < n; i++ {
		s.eng.InvokeAt(start.Add(time.Duration(i)*gap), workloads.Small, func(err error) { t.Error(err) })
	}
	s.sched.Run()
}

func TestTickBeforeDueIsNoop(t *testing.T) {
	s := newStack(t, Config{})
	activated, err := s.mgr.Tick(t0.Add(time.Minute))
	if err != nil || activated {
		t.Errorf("activated=%v err=%v", activated, err)
	}
	if s.mgr.Solves() != 0 {
		t.Error("solved before check was due")
	}
}

func TestNoTrafficNoTokensNoSolve(t *testing.T) {
	s := newStack(t, Config{})
	s.sched.RunUntil(t0.Add(7 * time.Hour))
	activated, err := s.mgr.Tick(s.sched.Now())
	if err != nil {
		t.Fatal(err)
	}
	if activated || s.mgr.Solves() != 0 {
		t.Error("solve without traffic or initial tokens")
	}
	if s.mgr.Tokens() != 0 {
		t.Errorf("tokens = %v", s.mgr.Tokens())
	}
}

func TestTrafficEarnsTokensAndTriggersSolve(t *testing.T) {
	s := newStack(t, Config{})
	s.runTraffic(t, 300, 80*time.Second) // ~6.7 hours of traffic
	activated, err := s.mgr.Tick(s.sched.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !activated {
		t.Fatal("expected a solve and activation")
	}
	if s.mgr.Solves() != 1 {
		t.Errorf("solves = %d", s.mgr.Solves())
	}
	if s.mgr.OverheadGrams <= 0 {
		t.Error("overhead not accounted")
	}
	if s.dep.ActivePlan(s.sched.Now()) == nil {
		t.Error("no active plan after solve")
	}
}

func TestCheckExpiresPreviousPlan(t *testing.T) {
	s := newStack(t, Config{})
	s.runTraffic(t, 300, 80*time.Second)
	if _, err := s.mgr.Tick(s.sched.Now()); err != nil {
		t.Fatal(err)
	}
	if s.dep.ActivePlan(s.sched.Now()) == nil {
		t.Fatal("plan should be active")
	}
	// Next due check: the old plan is expired first; when the fresh
	// rollout fails, traffic must route home (no active plan) rather
	// than through the stale deployment.
	s.dep.FailDeploy = func(_ dag.NodeID, r region.ID) bool { return r != region.USEast1 }
	next := s.mgr.NextCheck()
	s.sched.RunUntil(next.Add(time.Minute))
	activated, err := s.mgr.Tick(s.sched.Now())
	if err != nil {
		t.Fatal(err)
	}
	if activated {
		t.Error("activation despite failed rollout")
	}
	if s.dep.ActivePlan(s.sched.Now()) != nil {
		t.Error("stale plan not expired at token check")
	}
}

func TestCheckIntervalWithinBounds(t *testing.T) {
	cfg := Config{MinCheckInterval: 6 * time.Hour, MaxCheckInterval: 48 * time.Hour}
	s := newStack(t, cfg)
	s.runTraffic(t, 300, 80*time.Second)
	now := s.sched.Now()
	if _, err := s.mgr.Tick(now); err != nil {
		t.Fatal(err)
	}
	gap := s.mgr.NextCheck().Sub(now)
	if gap < cfg.MinCheckInterval || gap > cfg.MaxCheckInterval {
		t.Errorf("next check gap = %v outside [%v, %v]", gap, cfg.MinCheckInterval, cfg.MaxCheckInterval)
	}
}

func TestSolveCostScalesHourly(t *testing.T) {
	s := newStack(t, Config{})
	hourly := s.mgr.solveCost(t0, true)
	daily := s.mgr.solveCost(t0, false)
	if hourly <= daily {
		t.Errorf("hourly %v should exceed daily %v", hourly, daily)
	}
	if hourly/daily < 20 || hourly/daily > 28 {
		t.Errorf("hourly/daily = %v, want ~24", hourly/daily)
	}
}

func TestInitialTokensEnableEarlySolve(t *testing.T) {
	s := newStack(t, Config{InitialTokens: 1e6})
	// A little traffic so the Metric Manager has data to model from.
	s.runTraffic(t, 100, time.Minute)
	s.sched.RunUntil(t0.Add(7 * time.Hour))
	activated, err := s.mgr.Tick(s.sched.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !activated {
		t.Error("initial token grant did not enable the first solve")
	}
}

func TestStabilityBackoffGrows(t *testing.T) {
	s := newStack(t, Config{InitialTokens: 1e9, MinCheckInterval: 6 * time.Hour, MaxCheckInterval: 48 * time.Hour})
	s.runTraffic(t, 200, time.Minute)

	var gaps []time.Duration
	for i := 0; i < 3; i++ {
		next := s.mgr.NextCheck()
		if next.After(s.sched.Now()) {
			s.sched.RunUntil(next.Add(time.Minute))
		}
		before := s.sched.Now()
		if _, err := s.mgr.Tick(before); err != nil {
			t.Fatal(err)
		}
		gaps = append(gaps, s.mgr.NextCheck().Sub(before))
	}
	if s.mgr.Solves() < 2 {
		t.Fatalf("solves = %d; backoff test needs repeated solves", s.mgr.Solves())
	}
	if gaps[len(gaps)-1] <= gaps[0] {
		t.Errorf("check gaps did not grow with stable plans: %v", gaps)
	}
}

func TestOnSolveObserver(t *testing.T) {
	s := newStack(t, Config{})
	var seen []dag.HourlyPlans
	s.mgr.OnSolve = func(_ time.Time, plans dag.HourlyPlans, results []solver.Result) {
		seen = append(seen, plans)
		if len(results) == 0 {
			t.Error("no results passed to observer")
		}
	}
	s.runTraffic(t, 300, 80*time.Second)
	if _, err := s.mgr.Tick(s.sched.Now()); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Errorf("observer saw %d solves", len(seen))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(region.USEast1)
	if c.FrameworkRegion != region.USEast1 {
		t.Errorf("framework region = %v", c.FrameworkRegion)
	}
	if c.MinCheckInterval <= 0 || c.MaxCheckInterval <= c.MinCheckInterval {
		t.Errorf("intervals: %v %v", c.MinCheckInterval, c.MaxCheckInterval)
	}
	if c.PlanValidity <= 0 || c.SolverMemoryMB <= 0 || c.SolverUtil <= 0 || c.SolveSecondsPerEstimate <= 0 {
		t.Error("defaults missing")
	}
}

func TestDailyGranularityWhenBudgetIsTight(t *testing.T) {
	s := newStack(t, Config{})
	s.runTraffic(t, 60, time.Minute) // some data, few tokens
	now := s.sched.Now().Add(7 * time.Hour)
	s.sched.RunUntil(now)

	hourly := s.mgr.solveCost(now, true)
	daily := s.mgr.solveCost(now, false)
	// Grant a budget that covers a daily solve but not an hourly one,
	// and exclude the warmup traffic from accrual so the budget stays
	// exactly there.
	s.mgr.tokens = (daily + hourly) / 2
	s.mgr.lastCheck = s.sched.Now()

	var resultCounts []int
	s.mgr.OnSolve = func(_ time.Time, _ dag.HourlyPlans, results []solver.Result) {
		resultCounts = append(resultCounts, len(results))
	}
	activated, err := s.mgr.Tick(now)
	if err != nil {
		t.Fatal(err)
	}
	if !activated {
		t.Fatal("expected a daily-granularity solve")
	}
	if len(resultCounts) != 1 || resultCounts[0] != 1 {
		t.Errorf("result counts = %v, want a single daily solve", resultCounts)
	}
	// The plan set reuses one plan for all hours.
	plan := s.dep.ActivePlan(now)
	if plan == nil {
		t.Fatal("no active plan")
	}
}

func TestHourlyGranularityWhenBudgetIsAmple(t *testing.T) {
	s := newStack(t, Config{InitialTokens: 1e9})
	s.runTraffic(t, 60, time.Minute)
	now := s.sched.Now().Add(7 * time.Hour)
	s.sched.RunUntil(now)

	var resultCounts []int
	s.mgr.OnSolve = func(_ time.Time, _ dag.HourlyPlans, results []solver.Result) {
		resultCounts = append(resultCounts, len(results))
	}
	if _, err := s.mgr.Tick(now); err != nil {
		t.Fatal(err)
	}
	if len(resultCounts) != 1 || resultCounts[0] != 24 {
		t.Errorf("result counts = %v, want one 24-hour solve", resultCounts)
	}
}
