// Package manager implements Caribou's Deployment Manager (§5.2, Fig 6):
// a token-bucket controller that self-regulates how often new deployment
// plans are generated so that the framework's own carbon overhead (plan
// solving, metric collection, migration) stays below the savings the
// plans produce. Tokens denominate grams of CO2-eq: they accrue from
// recent invocation volume and runtime weighted by the carbon-intensity
// differential between the home region and the greenest reachable region,
// and are spent on deployment-plan generation, whose cost scales with DAG
// complexity and the framework's own region intensity.
package manager

import (
	"fmt"
	"math"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/deployer"
	"caribou/internal/metrics"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/telemetry"
)

// Config tunes the control loop.
type Config struct {
	// FrameworkRegion hosts the Deployment Manager and solver functions;
	// their execution carbon is charged at this region's intensity.
	FrameworkRegion region.ID
	// MinCheckInterval and MaxCheckInterval bound the sigmoid-smoothed
	// next-check schedule.
	MinCheckInterval time.Duration
	MaxCheckInterval time.Duration
	// InitialTokens jump-starts the learning phase so the first solve
	// can happen before savings have been realized.
	InitialTokens float64
	// SolveSecondsPerEstimate calibrates the solver's own compute cost:
	// wall seconds of framework Lambda time per candidate-plan
	// estimate. The paper reports ~534 s for a 24-solve generation of
	// the Text2Speech DAG in Python and ~276 s with the Go Monte Carlo
	// engine; the default matches the Go implementation.
	SolveSecondsPerEstimate float64
	// SolverMemoryMB and SolverUtil describe the solver function.
	SolverMemoryMB float64
	SolverUtil     float64
	// PlanValidity is the minimum lifetime of an activated plan set;
	// plans normally live until the next token check expires them.
	PlanValidity time.Duration
}

func (c Config) withDefaults(home region.ID) Config {
	if c.FrameworkRegion == "" {
		c.FrameworkRegion = home
	}
	if c.MinCheckInterval <= 0 {
		c.MinCheckInterval = 6 * time.Hour
	}
	if c.MaxCheckInterval <= 0 {
		c.MaxCheckInterval = 48 * time.Hour
	}
	if c.SolveSecondsPerEstimate <= 0 {
		c.SolveSecondsPerEstimate = 276.0 / (24 * 144) // §9.7, Go engine
	}
	if c.SolverMemoryMB <= 0 {
		c.SolverMemoryMB = 1769
	}
	if c.SolverUtil <= 0 {
		c.SolverUtil = 0.95
	}
	if c.PlanValidity <= 0 {
		c.PlanValidity = 24 * time.Hour
	}
	return c
}

// IntensityProvider supplies current grid intensity per region; the
// Metric Manager satisfies it.
type IntensityProvider interface {
	IntensityAt(r region.ID, t, now time.Time) (float64, error)
	Catalogue() *region.Catalogue
}

// Manager runs the token-bucket control loop for one workflow.
type Manager struct {
	cfg  Config
	mm   *metrics.Manager
	solv *solver.Solver
	dep  *deployer.Deployer
	home region.ID

	tokens     float64
	lastCheck  time.Time
	nextCheck  time.Time
	lastEarned float64 // tokens earned in the most recent period

	solves     int
	solveSkips int
	// lastPlans and stabilityFactor implement the learning-phase
	// behaviour of Fig 11: while consecutive solves produce similar
	// 24-hour plan sets, checks back off multiplicatively; a shift in
	// the produced plans resets the cadence.
	lastPlans       *dag.HourlyPlans
	stabilityFactor float64
	// OverheadGrams accumulates the framework's own operational carbon:
	// solver executions and migration transfers.
	OverheadGrams float64
	// OnSolve, when set, observes each completed solve.
	OnSolve func(now time.Time, plans dag.HourlyPlans, results []solver.Result)

	tel managerTelemetry
}

// managerTelemetry holds instrument handles captured at construction;
// nil-safe no-ops when telemetry is off.
type managerTelemetry struct {
	rec        *telemetry.Recorder
	solves     *telemetry.Counter
	solveSkips *telemetry.Counter
}

func newManagerTelemetry() managerTelemetry {
	rec := telemetry.Default()
	return managerTelemetry{
		rec:        rec,
		solves:     rec.Counter("manager.solves"),
		solveSkips: rec.Counter("manager.solve_skips"),
	}
}

// New wires a manager. start seeds the first check time.
func New(cfg Config, mm *metrics.Manager, solv *solver.Solver, dep *deployer.Deployer, home region.ID, start time.Time) *Manager {
	cfg = cfg.withDefaults(home)
	return &Manager{
		cfg:             cfg,
		mm:              mm,
		solv:            solv,
		dep:             dep,
		home:            home,
		tokens:          cfg.InitialTokens,
		lastCheck:       start,
		nextCheck:       start.Add(cfg.MinCheckInterval),
		stabilityFactor: 1,
		tel:             newManagerTelemetry(),
	}
}

// NextCheck reports when the next token check is due.
func (m *Manager) NextCheck() time.Time { return m.nextCheck }

// Tokens reports the current carbon budget in grams.
func (m *Manager) Tokens() float64 { return m.tokens }

// Solves reports how many plan generations have run.
func (m *Manager) Solves() int { return m.solves }

// Tick runs the Fig 6 loop at the current virtual time: when a check is
// due it expires the active plan, collects metrics, converts them into
// tokens, solves if the budget suffices, and schedules the next check. It
// reports whether a new plan set was activated.
func (m *Manager) Tick(now time.Time) (bool, error) {
	if now.Before(m.nextCheck) {
		// Between checks the Migrator retries any staged rollout.
		if m.dep.HasPending() {
			if err := m.dep.RetryPending(); err != nil {
				return false, nil // keep waiting; home fallback serves traffic
			}
			return true, nil
		}
		return false, nil
	}

	periodHours := now.Sub(m.lastCheck).Hours()
	if periodHours <= 0 {
		periodHours = m.cfg.MinCheckInterval.Hours()
	}

	// A due check expires the pre-determined deployment: traffic routes
	// home until (and unless) a fresh plan activates (§5.2).
	m.dep.Expire()

	// Collect metrics → tokens.
	earned, err := m.earnTokens(now)
	if err != nil {
		return false, fmt.Errorf("manager: token accrual: %w", err)
	}
	m.tokens += earned
	m.lastEarned = earned

	cost := m.solveCost(now, true)
	// The next check time is fixed before solving so the fresh plans can
	// live exactly until that check expires them (§5.2: a due check
	// expires the pre-determined deployment).
	interval := m.checkInterval(cost, periodHours)
	validity := interval + time.Hour // slack so the check, not the clock, expires plans
	if m.cfg.PlanValidity > validity {
		validity = m.cfg.PlanValidity
	}

	activated := false
	switch {
	case m.tokens >= cost:
		if err := m.solveAndRollout(now, true, validity); err == nil {
			m.tokens -= cost
			activated = true
		}
	case m.tokens >= m.solveCost(now, false):
		// Budget covers only a coarse daily plan: one solve reused
		// for all 24 hours (§5.2 granularity adaptation).
		if err := m.solveAndRollout(now, false, validity); err == nil {
			m.tokens -= m.solveCost(now, false)
			activated = true
		}
	default:
		m.solveSkips++
		m.tel.solveSkips.Inc()
	}

	m.lastCheck = now
	m.nextCheck = now.Add(interval)
	return activated, nil
}

// TrafficTokens converts a window of observed traffic into a carbon
// budget: invocations × mean runtime × per-second execution energy ×
// (home intensity − greenest intensity) × PUE. It is the accrual rule of
// §5.2 shared by the Tick-driven Manager and the event-driven Stream; a
// non-positive intensity differential earns nothing.
func TrafficTokens(invocations int, meanRuntimeSec, homeIntensity, minIntensity float64) float64 {
	if invocations == 0 {
		return 0
	}
	diff := homeIntensity - minIntensity
	if diff <= 0 {
		return 0
	}
	// Representative per-second execution energy of one stage.
	energyPerSec := carbon.ExecutionEnergyKWh(1769, 1, 0.8)
	perInvocation := meanRuntimeSec * energyPerSec * diff * carbon.PUE
	return float64(invocations) * perInvocation
}

// earnTokens converts the last period's observed traffic into a carbon
// budget via TrafficTokens. The sliding-window assumption of §5.2 — next
// period resembles the last — is explicit here.
func (m *Manager) earnTokens(now time.Time) (float64, error) {
	invocations := m.mm.InvocationsSince(m.lastCheck)
	if invocations == 0 {
		return 0, nil
	}
	meanRuntime := m.mm.MeanRuntimeSince(m.lastCheck)

	homeI, err := m.mm.IntensityAt(m.home, now, now)
	if err != nil {
		return 0, err
	}
	minI := homeI
	for _, id := range m.mm.Catalogue().IDs() {
		v, err := m.mm.IntensityAt(id, now, now)
		if err != nil {
			return 0, err
		}
		if v < minI {
			minI = v
		}
	}
	return TrafficTokens(invocations, meanRuntime, homeI, minI), nil
}

// SolveCost estimates the carbon cost of one plan generation for a DAG of
// dagNodes stages solved over a catalogue of regions candidate regions:
// solver compute time (scaling with DAG size and region count —
// application complexity, §5.2) priced at the given grid intensity.
// hourly solves cost 24× a single daily solve.
func (c Config) SolveCost(intensity float64, dagNodes, regions int, hourly bool) float64 {
	estimates := float64(dagNodes) * float64(regions) * 6
	seconds := estimates * c.SolveSecondsPerEstimate
	if hourly {
		seconds *= 24
	}
	return carbon.ExecutionCarbon(intensity, c.SolverMemoryMB, seconds, c.SolverUtil)
}

// solveCost prices one plan generation at the framework region's current
// intensity (conservative 400 gCO2eq/kWh when the lookup fails).
func (m *Manager) solveCost(now time.Time, hourly bool) float64 {
	intensity, err := m.mm.IntensityAt(m.cfg.FrameworkRegion, now, now)
	if err != nil {
		intensity = 400 // conservative default
	}
	return m.cfg.SolveCost(intensity, m.mm.DAG().Len(), m.mm.Catalogue().Len(), hourly)
}

func (m *Manager) solveAndRollout(now time.Time, hourly bool, validity time.Duration) error {
	if err := m.mm.RefreshForecasts(now); err != nil {
		return err
	}
	var plans dag.HourlyPlans
	var results []solver.Result
	if hourly {
		var err error
		plans, results, err = m.solv.SolveHourly(now, now)
		if err != nil {
			return err
		}
	} else {
		res, err := m.solv.SolveOne(now, now)
		if err != nil {
			return err
		}
		plans = dag.Uniform(res.Plan)
		results = []solver.Result{res}
	}
	m.solves++
	m.tel.solves.Inc()
	m.tel.rec.Event("manager.solve", now,
		telemetry.String("hourly", fmt.Sprintf("%t", hourly)),
		telemetry.Float("tokens", m.tokens))
	m.OverheadGrams += m.solveCost(now, hourly)
	m.updateStability(plans)

	movedBytes, err := m.dep.Rollout(plans, now.Add(validity))
	m.chargeMigration(movedBytes, now)
	if err != nil {
		return err
	}
	if m.OnSolve != nil {
		m.OnSolve(now, plans, results)
	}
	return nil
}

// chargeMigration accounts image-replication transmission carbon against
// the framework overhead (worst-case inter-region energy factor, a
// conservative charge).
func (m *Manager) chargeMigration(bytes float64, now time.Time) {
	if bytes <= 0 {
		return
	}
	intensity, err := m.mm.IntensityAt(m.home, now, now)
	if err != nil {
		intensity = 400
	}
	m.OverheadGrams += carbon.WorstCase().Carbon(intensity, intensity, false, bytes)
}

// planStability implements the learning-phase backoff of Fig 11 as a pure
// rule shared by Manager and Stream: the multiplicative factor doubles
// (capped at Max/Min) when at least three quarters of the hourly
// assignments are unchanged from the previous plan set; otherwise the
// cadence resets. A nil prev (first solve) leaves the factor untouched.
func (c Config) planStability(prev *dag.HourlyPlans, plans dag.HourlyPlans, factor float64) float64 {
	if prev == nil {
		return factor
	}
	same, total := 0, 0
	for h := range plans {
		for n, r := range plans[h] {
			total++
			if prev[h][n] == r {
				same++
			}
		}
	}
	if total > 0 && float64(same)/float64(total) >= 0.75 {
		factor *= 2
		maxFactor := c.MaxCheckInterval.Hours() / c.MinCheckInterval.Hours()
		if factor > maxFactor {
			factor = maxFactor
		}
	} else {
		factor = 1
	}
	return factor
}

// updateStability compares the fresh plan set with the previous one and
// adjusts the check backoff per the planStability rule.
func (m *Manager) updateStability(plans dag.HourlyPlans) {
	m.stabilityFactor = m.cfg.planStability(m.lastPlans, plans, m.stabilityFactor)
	cp := plans
	m.lastPlans = &cp
}

// scheduleInterval is the §5.2 cadence rule shared by Manager and Stream:
// the shortfall between the solve cost and the earning rate, smoothed by a
// sigmoid into [MinCheckInterval, MaxCheckInterval] so the cadence tracks
// the past period's invocation rate, stretched by the plan-stability
// backoff.
func (c Config) scheduleInterval(tokens, cost, ratePerHour, stabilityFactor float64) time.Duration {
	var hoursNeeded float64
	switch {
	case tokens >= cost:
		hoursNeeded = 0
	case ratePerHour <= 0:
		hoursNeeded = c.MaxCheckInterval.Hours()
	default:
		hoursNeeded = (cost - tokens) / ratePerHour
	}
	minH := c.MinCheckInterval.Hours()
	maxH := c.MaxCheckInterval.Hours()
	mid := (minH + maxH) / 2
	s := 1 / (1 + math.Exp(-(hoursNeeded-mid)/(maxH/8)))
	h := minH + (maxH-minH)*s
	if stable := minH * stabilityFactor; stable > h {
		h = stable
	}
	if h > maxH {
		h = maxH
	}
	return time.Duration(h * float64(time.Hour))
}

// checkInterval schedules the next token check from the Manager's pulled
// window: the last period's earning rate feeds the shared cadence rule.
func (m *Manager) checkInterval(cost, periodHours float64) time.Duration {
	rate := m.lastEarned / periodHours // tokens per hour
	return m.cfg.scheduleInterval(m.tokens, cost, rate, m.stabilityFactor)
}
