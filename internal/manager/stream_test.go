package manager

import (
	"math"
	"testing"
	"time"

	"caribou/internal/dag"
	"caribou/internal/region"
)

// streamCfg mirrors the defaulted Config the fixed-window tests run with,
// so the event-driven assertions line up with the Tick-driven ones.
func streamCfg() Config {
	return Config{MinCheckInterval: 6 * time.Hour, MaxCheckInterval: 48 * time.Hour}
}

// samplePlans builds a stable all-hours plan set for stability tests.
func samplePlans(r region.ID) dag.HourlyPlans {
	var plans dag.HourlyPlans
	for h := range plans {
		plans[h] = dag.Plan{"a": r, "b": r, "c": r}
	}
	return plans
}

func TestStreamAccrualFromDeltas(t *testing.T) {
	s := NewStream(streamCfg(), region.USEast1, t0)
	if s.Tokens() != 0 {
		t.Fatalf("tokens = %v before any delta", s.Tokens())
	}

	// Three incremental deltas: the balance is the running sum of the
	// shared §5.2 accrual rule applied per delta.
	var want float64
	deltas := []struct {
		invocations int
		runtime     float64
		home, min   float64
	}{
		{50, 1.2, 450, 120},
		{75, 0.9, 380, 140},
		{10, 2.5, 500, 90},
	}
	for _, d := range deltas {
		earned := s.Accrue(d.invocations, d.runtime, d.home, d.min)
		exp := TrafficTokens(d.invocations, d.runtime, d.home, d.min)
		if earned != exp {
			t.Errorf("Accrue = %v, want TrafficTokens = %v", earned, exp)
		}
		if earned <= 0 {
			t.Errorf("delta %+v earned nothing", d)
		}
		want += exp
	}
	if got := s.Tokens(); math.Abs(got-want) > 1e-12 {
		t.Errorf("tokens = %v, want accumulated %v", got, want)
	}

	// Zero invocations or an inverted intensity differential earn nothing.
	if got := s.Accrue(0, 1, 500, 100); got != 0 {
		t.Errorf("zero-invocation delta earned %v", got)
	}
	if got := s.Accrue(100, 1, 100, 500); got != 0 {
		t.Errorf("negative differential earned %v", got)
	}
}

func TestStreamAccrualMatchesManagerWindow(t *testing.T) {
	// Event-driven accrual over N single-invocation deltas must equal the
	// Tick-driven Manager's one pulled window of N invocations.
	const n, runtime, home, min = 120, 1.5, 430.0, 110.0
	s := NewStream(streamCfg(), region.USEast1, t0)
	for i := 0; i < n; i++ {
		s.Accrue(1, runtime, home, min)
	}
	want := TrafficTokens(n, runtime, home, min)
	if got := s.Tokens(); math.Abs(got-want) > 1e-9 {
		t.Errorf("streamed accrual %v != windowed accrual %v", got, want)
	}
}

func TestStreamGranularityDowngradeMidStream(t *testing.T) {
	cfg := streamCfg().withDefaults(region.USEast1)
	s := NewStream(cfg, region.USEast1, t0)
	hourly := cfg.SolveCost(400, 5, 4, true)
	daily := cfg.SolveCost(400, 5, 4, false)

	// Ample budget → full hourly solve.
	s.tokens = 1.5 * hourly
	if g := s.Decide(hourly, daily); g != GranularityHourly {
		t.Fatalf("granularity = %v with ample budget, want hourly", g)
	}
	now := t0.Add(6 * time.Hour)
	s.NoteSolve(now, hourly, samplePlans(region.USEast1))
	if s.Solves() != 1 {
		t.Fatalf("solves = %d", s.Solves())
	}

	// The solve debit tightened the budget mid-stream: the remaining
	// tokens cover only a single daily plan.
	if s.Tokens() >= hourly {
		t.Fatalf("tokens %v not tightened below hourly cost %v", s.Tokens(), hourly)
	}
	if g := s.Decide(hourly, daily); g != GranularityDaily {
		t.Errorf("granularity = %v under tight budget, want daily downgrade", g)
	}

	// Drained entirely → no solve at all.
	s.tokens = daily / 2
	if g := s.Decide(hourly, daily); g != GranularityNone {
		t.Errorf("granularity = %v with drained budget, want none", g)
	}

	// A daily-pinned tenant never upgrades, however large the budget.
	s.tokens = 100 * hourly
	if g := s.Decide(math.Inf(1), daily); g != GranularityDaily {
		t.Errorf("granularity = %v with infinite hourly cost, want daily", g)
	}
}

func TestStreamPlanExpiryUnderStalledFeed(t *testing.T) {
	cfg := streamCfg().withDefaults(region.USEast1)
	s := NewStream(cfg, region.USEast1, t0)
	daily := cfg.SolveCost(400, 5, 4, false)
	s.tokens = daily * 1.5
	if !s.Due(t0) {
		t.Fatal("first check not due at start")
	}
	s.NoteSolve(t0, daily, samplePlans(region.USEast1))

	expiry := s.PlanExpiry()
	if expiry.IsZero() {
		t.Fatal("no expiry recorded after solve")
	}
	if s.PlanExpired(expiry) {
		t.Error("plan expired at its own expiry instant")
	}

	// The delta feed stalls: only zero-invocation heartbeats advance the
	// stream's virtual time, earning nothing. Once that time passes the
	// expiry, the plan lapses and the budget affords no replacement —
	// traffic routes home until tokens recover.
	heartbeat := expiry.Add(time.Minute)
	s.Accrue(0, 0, 0, 0)
	if !s.PlanExpired(heartbeat) {
		t.Error("stalled feed did not expire the plan")
	}
	if s.Due(heartbeat) {
		hourly := cfg.SolveCost(400, 5, 4, true)
		if g := s.Decide(hourly, daily); g != GranularityNone {
			t.Errorf("granularity = %v after stall, want none", g)
		}
		s.NoteSkip(heartbeat, daily)
	}
	if s.Solves() != 1 {
		t.Errorf("solves = %d; stalled feed must not trigger a new solve", s.Solves())
	}
}

func TestStreamNoSolveWithoutTokens(t *testing.T) {
	cfg := streamCfg().withDefaults(region.USEast1)
	s := NewStream(cfg, region.USEast1, t0)
	hourly := cfg.SolveCost(400, 5, 4, true)
	daily := cfg.SolveCost(400, 5, 4, false)

	if g := s.Decide(hourly, daily); g != GranularityNone {
		t.Fatalf("granularity = %v with zero tokens, want none", g)
	}
	s.NoteSkip(t0, daily)
	if s.SolveSkips() != 1 || s.Solves() != 0 {
		t.Errorf("skips=%d solves=%d after tokenless check", s.SolveSkips(), s.Solves())
	}
	// The skip schedules a future check: not due again immediately.
	if s.Due(t0.Add(time.Minute)) {
		t.Error("check due again immediately after a skip")
	}
	if !s.NextDue().After(t0) {
		t.Error("skip did not schedule a next check")
	}
}

func TestStreamSkipExpiresActivePlan(t *testing.T) {
	cfg := streamCfg().withDefaults(region.USEast1)
	s := NewStream(cfg, region.USEast1, t0)
	daily := cfg.SolveCost(400, 5, 4, false)
	s.tokens = daily
	s.NoteSolve(t0, daily, samplePlans(region.USEast1))

	// A due check with an empty budget expires the pre-determined
	// deployment immediately (§5.2), mirroring Manager.Tick's dep.Expire.
	now := t0.Add(cfg.MinCheckInterval)
	if s.PlanExpired(now) {
		t.Fatal("plan already expired before the check")
	}
	s.NoteSkip(now, daily)
	if !s.PlanExpired(now.Add(time.Nanosecond)) {
		t.Error("tokenless check did not expire the active plan")
	}
}

func TestStreamScheduleWithinBounds(t *testing.T) {
	cfg := streamCfg().withDefaults(region.USEast1)
	daily := cfg.SolveCost(400, 5, 4, false)

	cases := []struct {
		name   string
		tokens float64
		earned float64
	}{
		{"rich", daily * 10, daily},
		{"poor", 0, 0},
		{"earning", daily / 4, daily / 2},
	}
	for _, tc := range cases {
		s := NewStream(cfg, region.USEast1, t0)
		s.tokens = tc.tokens
		s.periodEarned = tc.earned
		now := t0.Add(3 * time.Hour)
		s.NoteSkip(now, daily)
		gap := s.NextDue().Sub(now)
		if gap < cfg.MinCheckInterval || gap > cfg.MaxCheckInterval {
			t.Errorf("%s: next-due gap %v outside [%v, %v]", tc.name, gap, cfg.MinCheckInterval, cfg.MaxCheckInterval)
		}
	}
}

func TestStreamStabilityBackoffGrows(t *testing.T) {
	cfg := streamCfg().withDefaults(region.USEast1)
	s := NewStream(cfg, region.USEast1, t0)
	daily := cfg.SolveCost(400, 5, 4, false)
	plans := samplePlans(region.USEast1)

	// Identical consecutive plan sets back the cadence off multiplicatively,
	// exactly as Fig 11's learning phase.
	var gaps []time.Duration
	now := t0
	for i := 0; i < 3; i++ {
		// Keep the budget comfortable so the cadence is driven by the
		// stability backoff, not by a token shortfall.
		s.tokens = 2 * daily
		s.NoteSolve(now, daily, plans)
		gap := s.NextDue().Sub(now)
		gaps = append(gaps, gap)
		now = s.NextDue()
	}
	if gaps[2] <= gaps[0] {
		t.Errorf("gaps did not grow under stable plans: %v", gaps)
	}

	// A shifted plan set resets the cadence.
	shifted := samplePlans(region.USWest2)
	s.tokens = 2 * daily
	s.NoteSolve(now, daily, shifted)
	reset := s.NextDue().Sub(now)
	if reset >= gaps[2] {
		t.Errorf("plan shift did not reset the backoff: %v !< %v", reset, gaps[2])
	}
}

func TestStreamSolveCostMatchesManager(t *testing.T) {
	// The Stream prices solves through the same Config.SolveCost the
	// Manager delegates to — pin the hourly/daily ratio it guarantees.
	cfg := streamCfg().withDefaults(region.USEast1)
	hourly := cfg.SolveCost(400, 5, 4, true)
	daily := cfg.SolveCost(400, 5, 4, false)
	if hourly <= daily {
		t.Errorf("hourly %v should exceed daily %v", hourly, daily)
	}
	if r := hourly / daily; r < 23.9 || r > 24.1 {
		t.Errorf("hourly/daily = %v, want 24", r)
	}
}

func TestStreamFirstCheckDueImmediately(t *testing.T) {
	s := NewStream(streamCfg(), region.USEast1, t0)
	if !s.Due(t0) {
		t.Error("stream not due at its start time")
	}
	if s.PlanExpired(t0) {
		t.Error("plan expired before any solve")
	}
	if !s.PlanExpiry().IsZero() {
		t.Error("non-zero expiry before any solve")
	}
}

func TestGranularityString(t *testing.T) {
	cases := map[Granularity]string{
		GranularityNone:   "none",
		GranularityDaily:  "daily",
		GranularityHourly: "hourly",
	}
	for g, want := range cases {
		if got := g.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(g), got, want)
		}
	}
}
