// stream.go implements the event-driven form of the §5.2 token bucket.
// Where Manager pulls a metrics window on a periodic Tick, a Stream is
// *pushed* incremental trace deltas as they arrive: tokens accrue on each
// delta, solve decisions fire when the scheduled check time passes under
// the advancing event timestamps, and the granularity downgrade, plan
// expiry, and cadence rules are the exact helpers Manager uses
// (TrafficTokens, Config.SolveCost, Config.scheduleInterval,
// Config.planStability) — the §6 semantics, but without a clock driving
// them. The control plane (internal/controlplane) runs one Stream per
// registered tenant; the Stream itself performs no solves and reads no
// clock, so it stays deterministic under any request interleaving that
// preserves a tenant's own event order.
package manager

import (
	"fmt"
	"time"

	"caribou/internal/dag"
	"caribou/internal/region"
)

// Granularity is the plan resolution a budget decision affords.
type Granularity int

// Budget decision outcomes: no solve, one daily plan reused for all 24
// hours, or a full 24-plan hourly solve (§5.2 granularity adaptation).
const (
	GranularityNone Granularity = iota
	GranularityDaily
	GranularityHourly
)

func (g Granularity) String() string {
	switch g {
	case GranularityDaily:
		return "daily"
	case GranularityHourly:
		return "hourly"
	case GranularityNone:
		return "none"
	}
	return fmt.Sprintf("granularity(%d)", int(g))
}

// Stream is the event-driven token bucket for one workflow. All times are
// the caller's virtual (trace) time; the Stream never reads a clock.
// Methods must be called from one goroutine at a time (the control plane
// serializes each tenant on its shard worker).
type Stream struct {
	cfg    Config
	tokens float64

	// periodStart and periodEarned track the current accrual period —
	// everything earned since the last budget decision — so the cadence
	// rule sees the same tokens-per-hour rate the Tick-driven Manager
	// derives from its pulled window.
	periodStart  time.Time
	periodEarned float64

	nextDue    time.Time
	planExpiry time.Time
	hasPlan    bool

	lastPlans       *dag.HourlyPlans
	stabilityFactor float64

	solves     int
	solveSkips int
}

// NewStream builds a stream whose first check is due immediately (the
// learning phase runs on InitialTokens, as in Fig 6).
func NewStream(cfg Config, home region.ID, start time.Time) *Stream {
	cfg = cfg.withDefaults(home)
	return &Stream{
		cfg:             cfg,
		tokens:          cfg.InitialTokens,
		periodStart:     start,
		nextDue:         start,
		stabilityFactor: 1,
	}
}

// Config returns the defaulted configuration.
func (s *Stream) Config() Config { return s.cfg }

// Tokens reports the current carbon budget in grams.
func (s *Stream) Tokens() float64 { return s.tokens }

// Solves reports how many plan generations have been charged.
func (s *Stream) Solves() int { return s.solves }

// SolveSkips reports how many due checks found the budget insufficient.
func (s *Stream) SolveSkips() int { return s.solveSkips }

// NextDue reports when the next budget check becomes due.
func (s *Stream) NextDue() time.Time { return s.nextDue }

// PlanExpiry reports when the active plan set expires (zero before the
// first solve).
func (s *Stream) PlanExpiry() time.Time {
	if !s.hasPlan {
		return time.Time{}
	}
	return s.planExpiry
}

// Accrue converts one trace delta into tokens under the shared §5.2
// accrual rule and returns the amount earned. Intensities are the home
// region's and the greenest reachable region's at the delta's timestamp.
func (s *Stream) Accrue(invocations int, meanRuntimeSec, homeIntensity, minIntensity float64) float64 {
	earned := TrafficTokens(invocations, meanRuntimeSec, homeIntensity, minIntensity)
	s.tokens += earned
	s.periodEarned += earned
	return earned
}

// Due reports whether a budget check should run at now: immediately while
// no check has ever completed, then whenever the scheduled time passes.
func (s *Stream) Due(now time.Time) bool { return !now.Before(s.nextDue) }

// PlanExpired reports whether a previously activated plan set has lapsed
// at now — the stalled-feed case: with no deltas earning tokens, the plan
// runs out and traffic must route home until the budget recovers.
func (s *Stream) PlanExpired(now time.Time) bool {
	return s.hasPlan && now.After(s.planExpiry)
}

// Decide reports the granularity the current budget affords given the two
// solve costs — the granularity-adaptation rule of §5.2: a full hourly
// solve when tokens cover it, a downgraded single daily solve when they
// cover only that, otherwise nothing. Pass an infinite hourlyCost to pin
// a tenant to daily granularity.
func (s *Stream) Decide(hourlyCost, dailyCost float64) Granularity {
	switch {
	case s.tokens >= hourlyCost:
		return GranularityHourly
	case s.tokens >= dailyCost:
		return GranularityDaily
	}
	return GranularityNone
}

// NoteSolve debits a completed solve, updates the plan-stability backoff,
// and schedules the next due check with the shared cadence rule. The new
// plan set lives until that check plus one hour of slack (or PlanValidity
// if longer), mirroring the Tick-driven Manager's expiry wiring: the next
// check, not the clock, is what normally expires plans.
func (s *Stream) NoteSolve(now time.Time, cost float64, plans dag.HourlyPlans) {
	s.tokens -= cost
	s.solves++
	s.stabilityFactor = s.cfg.planStability(s.lastPlans, plans, s.stabilityFactor)
	cp := plans
	s.lastPlans = &cp

	interval := s.schedule(now, cost)
	validity := interval + time.Hour // slack so the check, not the timestamp, expires plans
	if s.cfg.PlanValidity > validity {
		validity = s.cfg.PlanValidity
	}
	s.planExpiry = now.Add(validity)
	s.hasPlan = true
}

// NoteSkip records a due check whose budget covered no solve: the current
// plan expires immediately (a due check expires the pre-determined
// deployment, §5.2) and the next check is scheduled from the shortfall.
func (s *Stream) NoteSkip(now time.Time, cost float64) {
	s.solveSkips++
	if s.hasPlan && s.planExpiry.After(now) {
		s.planExpiry = now
	}
	s.schedule(now, cost)
}

// schedule closes the current accrual period and computes the next due
// check from its earning rate, exactly as Manager.checkInterval does for
// the pulled window.
func (s *Stream) schedule(now time.Time, cost float64) time.Duration {
	periodHours := now.Sub(s.periodStart).Hours()
	if periodHours <= 0 {
		periodHours = s.cfg.MinCheckInterval.Hours()
	}
	rate := s.periodEarned / periodHours
	interval := s.cfg.scheduleInterval(s.tokens, cost, rate, s.stabilityFactor)
	s.nextDue = now.Add(interval)
	s.periodStart = now
	s.periodEarned = 0
	return interval
}
