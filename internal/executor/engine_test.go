package executor

import (
	"testing"
	"time"

	"caribou/internal/dag"
	"caribou/internal/netmodel"
	"caribou/internal/platform"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/workloads"
)

var testStart = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

func newTestEnv(t *testing.T) (*simclock.Scheduler, *platform.Platform) {
	t.Helper()
	sched := simclock.New(testStart)
	cat := region.NorthAmerica()
	p, err := platform.New(platform.Options{
		Sched: sched, Catalogue: cat, Net: netmodel.New(cat), Seed: 42,
	})
	if err != nil {
		t.Fatalf("platform.New: %v", err)
	}
	return sched, p
}

func runInvocations(t *testing.T, e *Engine, sched *simclock.Scheduler, n int, class workloads.InputClass, gap time.Duration) []*platform.InvocationRecord {
	t.Helper()
	var recs []*platform.InvocationRecord
	for i := 0; i < n; i++ {
		e.InvokeAt(sched.Now().Add(time.Duration(i)*gap), class, func(err error) {
			t.Errorf("invoke: %v", err)
		})
	}
	sched.Run()
	return recs
}

func newEngine(t *testing.T, p *platform.Platform, wl *workloads.Workload, mode Mode, plans PlanSource, sink *[]*platform.InvocationRecord) *Engine {
	t.Helper()
	e, err := New(Options{
		Platform: p, Workload: wl, Home: region.USEast1, Mode: mode, Plans: plans, Seed: 7,
		OnComplete: func(r *platform.InvocationRecord) { *sink = append(*sink, r) },
	})
	if err != nil {
		t.Fatalf("executor.New: %v", err)
	}
	if err := e.DeployHome(); err != nil {
		t.Fatalf("DeployHome: %v", err)
	}
	return e
}

func TestCaribouHomeExecutionCompletes(t *testing.T) {
	for _, wl := range workloads.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			sched, p := newTestEnv(t)
			var recs []*platform.InvocationRecord
			e := newEngine(t, p, wl, ModeCaribou, HomeOnly{}, &recs)
			const n = 30
			runInvocations(t, e, sched, n, workloads.Small, time.Minute)
			if len(recs) != n {
				t.Fatalf("completed %d of %d invocations", len(recs), n)
			}
			if e.Live() != 0 {
				t.Fatalf("%d invocations still live", e.Live())
			}
			for _, r := range recs {
				if !r.Succeeded {
					t.Errorf("invocation %d failed", r.ID)
				}
				if r.ServiceTime() <= 0 {
					t.Errorf("invocation %d: non-positive service time %v", r.ID, r.ServiceTime())
				}
				if len(r.Executions) == 0 {
					t.Errorf("invocation %d: no executions", r.ID)
				}
				for _, ex := range r.Executions {
					if ex.Region != region.USEast1 {
						t.Errorf("invocation %d: node %s ran in %s under home-only plan", r.ID, ex.Node, ex.Region)
					}
				}
			}
		})
	}
}

func TestSyncNodeExecutesExactlyOnce(t *testing.T) {
	sched, p := newTestEnv(t)
	wl := workloads.Text2SpeechCensoring()
	var recs []*platform.InvocationRecord
	e := newEngine(t, p, wl, ModeCaribou, HomeOnly{}, &recs)
	const n = 60
	runInvocations(t, e, sched, n, workloads.Small, time.Minute)
	if len(recs) != n {
		t.Fatalf("completed %d of %d", len(recs), n)
	}
	censored := 0
	for _, r := range recs {
		count := map[dag.NodeID]int{}
		for _, ex := range r.Executions {
			count[ex.Node]++
		}
		for node, c := range count {
			if c != 1 {
				t.Errorf("invocation %d: node %s executed %d times", r.ID, node, c)
			}
		}
		if count["compress"] != 1 {
			t.Errorf("invocation %d: sync node compress executed %d times", r.ID, count["compress"])
		}
		for _, always := range []dag.NodeID{"validate", "text2speech", "conversion", "profanity"} {
			if count[always] != 1 {
				t.Errorf("invocation %d: node %s executed %d times", r.ID, always, count[always])
			}
		}
		if count["censor"] > 0 {
			censored++
		}
	}
	// The conditional edge has probability 0.5; with 60 trials the count
	// should be nowhere near the extremes.
	if censored < 15 || censored > 45 {
		t.Errorf("censor ran in %d of %d invocations; want near half", censored, n)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		sched, p := newTestEnv(t)
		wl := workloads.VideoAnalytics()
		var recs []*platform.InvocationRecord
		e := newEngine(t, p, wl, ModeCaribou, HomeOnly{}, &recs)
		runInvocations(t, e, sched, 10, workloads.Large, time.Minute)
		var out []time.Duration
		for _, r := range recs {
			out = append(out, r.ServiceTime())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPlanRoutingOffloadsStages(t *testing.T) {
	sched, p := newTestEnv(t)
	wl := workloads.Text2SpeechCensoring()
	var recs []*platform.InvocationRecord
	e := newEngine(t, p, wl, ModeCaribou, nil, &recs)

	plan := dag.NewHomePlan(wl.DAG, region.USEast1)
	plan["profanity"] = region.CACentral1
	plan["censor"] = region.CACentral1
	for node, r := range plan {
		if _, err := e.EnsureDeployment(node, r); err != nil {
			t.Fatalf("EnsureDeployment(%s, %s): %v", node, r, err)
		}
	}
	e.plans = StaticPlans{Hourly: dag.Uniform(plan)}
	e.benchFr = 0 // make routing deterministic for the assertion

	const n = 20
	runInvocations(t, e, sched, n, workloads.Small, time.Minute)
	if len(recs) != n {
		t.Fatalf("completed %d of %d", len(recs), n)
	}
	offloaded := 0
	for _, r := range recs {
		for _, ex := range r.Executions {
			switch ex.Node {
			case "profanity", "censor":
				if ex.Region == region.CACentral1 {
					offloaded++
				} else {
					t.Errorf("node %s ran in %s, plan says ca-central-1", ex.Node, ex.Region)
				}
			default:
				if ex.Region != region.USEast1 {
					t.Errorf("node %s ran in %s, plan says us-east-1", ex.Node, ex.Region)
				}
			}
		}
	}
	if offloaded == 0 {
		t.Fatal("no stage was offloaded despite the plan")
	}
}

func TestFallbackToHomeWhenNotDeployed(t *testing.T) {
	sched, p := newTestEnv(t)
	wl := workloads.DNAVisualization()
	var recs []*platform.InvocationRecord
	e := newEngine(t, p, wl, ModeCaribou, nil, &recs)

	// Plan points at a region with no deployment: traffic must fall back
	// to home rather than being routed through an invalid deployment.
	plan := dag.NewHomePlan(wl.DAG, region.USWest2)
	e.plans = StaticPlans{Hourly: dag.Uniform(plan)}
	e.benchFr = 0

	runInvocations(t, e, sched, 5, workloads.Small, time.Minute)
	if len(recs) != 5 {
		t.Fatalf("completed %d of 5", len(recs))
	}
	for _, r := range recs {
		for _, ex := range r.Executions {
			if ex.Region != region.USEast1 {
				t.Errorf("ran in %s; want home fallback us-east-1", ex.Region)
			}
		}
	}
}

func TestOrchestratorOverheadOrdering(t *testing.T) {
	// Step Functions must be fastest; Caribou must be within a few
	// percent of plain SNS (§9.6).
	mean := func(mode Mode) float64 {
		sched, p := newTestEnv(t)
		wl := workloads.ImageProcessing()
		var recs []*platform.InvocationRecord
		e := newEngine(t, p, wl, mode, HomeOnly{}, &recs)
		runInvocations(t, e, sched, 40, workloads.Small, time.Minute)
		if len(recs) != 40 {
			t.Fatalf("mode %v: completed %d of 40", mode, len(recs))
		}
		var sum float64
		for _, r := range recs {
			sum += r.ServiceTime().Seconds()
		}
		return sum / float64(len(recs))
	}
	sf, sns, cb := mean(ModeStepFunctions), mean(ModePlainSNS), mean(ModeCaribou)
	if !(sf < sns) {
		t.Errorf("Step Functions (%.3fs) should beat SNS (%.3fs)", sf, sns)
	}
	if cb < sns {
		t.Errorf("Caribou (%.3fs) should not beat plain SNS (%.3fs)", cb, sns)
	}
	if over := (cb - sns) / sns; over > 0.05 {
		t.Errorf("Caribou overhead over SNS = %.1f%%; want small", over*100)
	}
}

func TestBenchmarkTrafficStaysHome(t *testing.T) {
	sched, p := newTestEnv(t)
	wl := workloads.DNAVisualization()
	var recs []*platform.InvocationRecord
	e := newEngine(t, p, wl, ModeCaribou, nil, &recs)
	plan := dag.NewHomePlan(wl.DAG, region.CACentral1)
	if _, err := e.EnsureDeployment("visualize", region.CACentral1); err != nil {
		t.Fatal(err)
	}
	e.plans = StaticPlans{Hourly: dag.Uniform(plan)}

	const n = 300
	runInvocations(t, e, sched, n, workloads.Small, 30*time.Second)
	if len(recs) != n {
		t.Fatalf("completed %d of %d", len(recs), n)
	}
	benchmarked := 0
	for _, r := range recs {
		if r.Benchmarked {
			benchmarked++
			for _, ex := range r.Executions {
				if ex.Region != region.USEast1 {
					t.Errorf("benchmarked invocation %d ran in %s", r.ID, ex.Region)
				}
			}
		}
	}
	if benchmarked < n/20 || benchmarked > n/4 {
		t.Errorf("benchmarked %d of %d; want around 10%%", benchmarked, n)
	}
}
