package executor

import (
	"testing"
	"time"

	"caribou/internal/dag"
	"caribou/internal/platform"
	"caribou/internal/region"
	"caribou/internal/workloads"
)

// condWorkload builds a workflow with a tunable conditional edge feeding a
// chain that ends in a synchronization node:
//
//	start -> always ------------------------> join
//	start ->(p) maybe -> downstream --------> join
//
// When the conditional edge is untaken, the skip must propagate through
// "downstream" and annotate its edge into "join" so the join still fires.
func condWorkload(p float64) *workloads.Workload {
	b := dag.NewBuilder("cond-test").
		AddNode(dag.Node{ID: "start"}).
		AddNode(dag.Node{ID: "always"}).
		AddNode(dag.Node{ID: "maybe"}).
		AddNode(dag.Node{ID: "downstream"}).
		AddNode(dag.Node{ID: "join"}).
		AddEdge("start", "always").
		AddConditionalEdge("start", "maybe", p).
		AddEdge("maybe", "downstream").
		AddEdge("always", "join").
		AddEdge("downstream", "join")
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	prof := func(sec float64) workloads.NodeProfile {
		return workloads.NodeProfile{
			MeanDurationSec: map[workloads.InputClass]float64{workloads.Small: sec, workloads.Large: sec},
			DurationSigma:   0.05, CPUUtil: 0.7, MemoryMB: 1024,
		}
	}
	return &workloads.Workload{
		Name: "cond-test",
		DAG:  d,
		Nodes: map[dag.NodeID]workloads.NodeProfile{
			"start": prof(0.2), "always": prof(0.5), "maybe": prof(0.3),
			"downstream": prof(0.4), "join": prof(0.2),
		},
		EdgeBytes: map[workloads.EdgeKey]map[workloads.InputClass]float64{
			{From: "always", To: "join"}:     {workloads.Small: 1e4, workloads.Large: 1e4},
			{From: "downstream", To: "join"}: {workloads.Small: 1e4, workloads.Large: 1e4},
		},
		EntryBytes: map[workloads.InputClass]float64{workloads.Small: 1e3, workloads.Large: 1e3},
		InputLabel: map[workloads.InputClass]string{workloads.Small: "s", workloads.Large: "l"},
		ImageBytes: 1e8,
	}
}

func runCond(t *testing.T, p float64, n int) []*platform.InvocationRecord {
	t.Helper()
	sched, plat := newTestEnv(t)
	var recs []*platform.InvocationRecord
	e := newEngine(t, plat, condWorkload(p), ModeCaribou, HomeOnly{}, &recs)
	runInvocations(t, e, sched, n, workloads.Small, time.Minute)
	if len(recs) != n {
		t.Fatalf("completed %d of %d", len(recs), n)
	}
	if e.Live() != 0 {
		t.Fatalf("%d invocations leaked", e.Live())
	}
	return recs
}

func executedNodes(r *platform.InvocationRecord) map[dag.NodeID]int {
	out := map[dag.NodeID]int{}
	for _, e := range r.Executions {
		out[e.Node]++
	}
	return out
}

func TestSkipPropagationThroughChainToSync(t *testing.T) {
	// p = 0: the conditional edge is never taken; maybe and downstream
	// never run, yet join must fire exactly once via the skip
	// annotations.
	for _, r := range runCond(t, 0, 25) {
		got := executedNodes(r)
		if got["maybe"] != 0 || got["downstream"] != 0 {
			t.Fatalf("skipped branch executed: %v", got)
		}
		if got["join"] != 1 {
			t.Fatalf("join executed %d times", got["join"])
		}
		if !r.Succeeded {
			t.Fatal("invocation failed")
		}
	}
}

func TestConditionalAlwaysTaken(t *testing.T) {
	for _, r := range runCond(t, 1, 25) {
		got := executedNodes(r)
		for _, n := range []dag.NodeID{"start", "always", "maybe", "downstream", "join"} {
			if got[n] != 1 {
				t.Fatalf("node %s executed %d times", n, got[n])
			}
		}
	}
}

func TestConditionalFrequencyMatchesProbability(t *testing.T) {
	const n = 200
	taken := 0
	for _, r := range runCond(t, 0.3, n) {
		if executedNodes(r)["maybe"] > 0 {
			taken++
		}
	}
	frac := float64(taken) / n
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("branch frequency = %.3f, want ~0.3", frac)
	}
}

// allCondWorkload has a sync node whose every incoming edge is
// conditional; when all are skipped the sync node itself is skipped and
// the workflow still terminates.
func TestSyncNodeSkippedWhenAllInputsSkipped(t *testing.T) {
	b := dag.NewBuilder("allcond").
		AddNode(dag.Node{ID: "s"}).
		AddNode(dag.Node{ID: "a"}).
		AddNode(dag.Node{ID: "b"}).
		AddNode(dag.Node{ID: "join"}).
		AddNode(dag.Node{ID: "tail"}).
		AddConditionalEdge("s", "a", 0).
		AddConditionalEdge("s", "b", 0).
		AddEdge("a", "join").
		AddEdge("b", "join").
		AddEdge("join", "tail")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prof := workloads.NodeProfile{
		MeanDurationSec: map[workloads.InputClass]float64{workloads.Small: 0.2, workloads.Large: 0.2},
		DurationSigma:   0.05, CPUUtil: 0.7, MemoryMB: 1024,
	}
	wl := &workloads.Workload{
		Name: "allcond",
		DAG:  d,
		Nodes: map[dag.NodeID]workloads.NodeProfile{
			"s": prof, "a": prof, "b": prof, "join": prof, "tail": prof,
		},
		EdgeBytes:  map[workloads.EdgeKey]map[workloads.InputClass]float64{},
		EntryBytes: map[workloads.InputClass]float64{workloads.Small: 1e3, workloads.Large: 1e3},
		InputLabel: map[workloads.InputClass]string{workloads.Small: "s", workloads.Large: "l"},
		ImageBytes: 1e8,
	}
	sched, plat := newTestEnv(t)
	var recs []*platform.InvocationRecord
	e := newEngine(t, plat, wl, ModeCaribou, HomeOnly{}, &recs)
	runInvocations(t, e, sched, 10, workloads.Small, time.Minute)
	if len(recs) != 10 {
		t.Fatalf("completed %d of 10", len(recs))
	}
	for _, r := range recs {
		got := executedNodes(r)
		if len(got) != 1 || got["s"] != 1 {
			t.Fatalf("executions = %v, want only the start node", got)
		}
	}
}

func TestStepFunctionsModeMatchesSemantics(t *testing.T) {
	// The SF orchestrator must produce the same execution sets as the
	// Caribou path for the same seeds (common random numbers).
	run := func(mode Mode) []map[dag.NodeID]int {
		sched, plat := newTestEnv(t)
		var recs []*platform.InvocationRecord
		e := newEngine(t, plat, condWorkload(0.5), mode, HomeOnly{}, &recs)
		runInvocations(t, e, sched, 40, workloads.Small, time.Minute)
		if len(recs) != 40 {
			t.Fatalf("mode %v completed %d of 40", mode, len(recs))
		}
		var out []map[dag.NodeID]int
		for _, r := range recs {
			out = append(out, executedNodes(r))
		}
		return out
	}
	caribou := run(ModeCaribou)
	sf := run(ModeStepFunctions)
	for i := range caribou {
		for n, c := range caribou[i] {
			if sf[i][n] != c {
				t.Fatalf("invocation %d node %s: caribou %d vs stepfunctions %d", i, n, c, sf[i][n])
			}
		}
	}
}

func TestStepFunctionsNoKVOrSNSTraffic(t *testing.T) {
	sched, plat := newTestEnv(t)
	var recs []*platform.InvocationRecord
	e := newEngine(t, plat, condWorkload(0.5), ModeStepFunctions, HomeOnly{}, &recs)
	runInvocations(t, e, sched, 10, workloads.Small, time.Minute)
	for _, r := range recs {
		if len(r.Services.SNSPublishes) != 0 || len(r.Services.KVReads) != 0 || len(r.Services.KVWrites) != 0 {
			t.Fatalf("orchestrator mode incurred service traffic: %+v", r.Services)
		}
		for _, tr := range r.Transfers {
			if tr.From != region.USEast1 || tr.To != region.USEast1 {
				t.Fatalf("cross-region transfer in SF mode: %+v", tr)
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeCaribou.String() != "caribou" || ModePlainSNS.String() != "sns" || ModeStepFunctions.String() != "stepfunctions" {
		t.Error("mode strings wrong")
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode should render")
	}
}

// TestCommonRandomNumbersAcrossPlans: the same invocation ID must take the
// same conditional branches and sample the same base durations regardless
// of where stages are deployed, so strategy comparisons are paired.
func TestCommonRandomNumbersAcrossPlans(t *testing.T) {
	run := func(plans PlanSource, deployRemote bool) []map[dag.NodeID]int {
		sched, p := newTestEnv(t)
		var recs []*platform.InvocationRecord
		e := newEngine(t, p, condWorkload(0.5), ModeCaribou, plans, &recs)
		e.SetBenchFraction(0)
		if deployRemote {
			for _, n := range e.wl.DAG.Nodes() {
				if _, err := e.EnsureDeployment(n, region.CACentral1); err != nil {
					t.Fatal(err)
				}
			}
		}
		runInvocations(t, e, sched, 30, workloads.Small, time.Minute)
		var out []map[dag.NodeID]int
		for _, r := range recs {
			out = append(out, executedNodes(r))
		}
		return out
	}
	home := run(HomeOnly{}, false)
	remotePlan := dag.NewHomePlan(condWorkload(0.5).DAG, region.CACentral1)
	remote := run(StaticPlans{Hourly: dag.Uniform(remotePlan)}, true)
	if len(home) != len(remote) {
		t.Fatalf("lengths differ: %d vs %d", len(home), len(remote))
	}
	for i := range home {
		for n, c := range home[i] {
			if remote[i][n] != c {
				t.Fatalf("invocation %d node %s: home %d vs remote %d (branch decisions diverged)", i, n, c, remote[i][n])
			}
		}
	}
}
