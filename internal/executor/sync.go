package executor

import (
	"encoding/json"
	"fmt"
	"time"

	"caribou/internal/dag"
	"caribou/internal/platform"
	"caribou/internal/region"
)

// The synchronization protocol of §4: every edge into a synchronization
// node is annotated "reached" or "skipped" in the distributed KV store by
// the predecessor's wrapper (or by skip propagation). The condition of
// Eq 4.1 — all incoming edges annotated and at least one reached — is
// evaluated atomically with each annotation; the writer that completes the
// set invokes (or skips) the synchronization node.

// annotationKey names the KV entry holding a sync node's edge annotations
// for one invocation.
func (e *Engine) annotationKey(inv uint64, node dag.NodeID) string {
	return fmt.Sprintf("sync/%s/%d/%s", e.wl.Name, inv, node)
}

// annotate atomically records the state of one incoming edge of a sync
// node and reports whether this update completed the annotation set
// (fire) and whether any edge was reached. fire is true for exactly one
// annotate call per (invocation, node): the one that transitions the set
// to complete.
func (e *Engine) annotate(inv uint64, edge dag.Edge, reached bool) (fire, anyReached bool) {
	key := e.annotationKey(inv, edge.To)
	want := len(e.wl.DAG.In(edge.To))
	edgeName := string(edge.From) + "->" + string(edge.To)
	e.p.KV().Update(key, func(cur []byte, exists bool) ([]byte, bool) {
		ann := map[string]bool{}
		if exists {
			if err := json.Unmarshal(cur, &ann); err != nil {
				ann = map[string]bool{}
			}
		}
		before := len(ann)
		if _, dup := ann[edgeName]; !dup {
			ann[edgeName] = reached
		}
		fire = before < want && len(ann) == want
		anyReached = false
		for _, r := range ann {
			if r {
				anyReached = true
			}
		}
		next, err := json.Marshal(ann)
		if err != nil {
			return nil, false
		}
		return next, true
	})
	return fire, anyReached
}

// sendToSync stages the edge's intermediate data in the workflow KV table
// at home, annotates the edge as reached, and — when this writer completes
// the condition — publishes the invocation message to the sync node's plan
// region. It returns the updated wrapper-time offset.
func (e *Engine) sendToSync(inv *invocation, id uint64, edge dag.Edge, src region.ID, offset time.Duration) time.Duration {
	now := e.p.Scheduler().Now()
	bytes := e.wl.Bytes(edge.From, edge.To, inv.class)

	// Stage intermediate data.
	if bytes > 0 {
		inv.rec.Services.KVWrites[e.home]++
		e.logTransfer(inv, platform.TransferEvent{
			Kind: platform.TransferKVData, From: src, To: e.home, FromNode: edge.From, ToNode: edge.To, Bytes: bytes, At: now.Add(offset),
		})
		store, err := e.p.Net().TransferTime(src, e.home, bytes)
		if err == nil {
			offset += store
		}
		offset += platform.KVAccessOverhead
		inv.stagedBytes[edge.To] += bytes
	}

	// Atomic annotation update.
	inv.rec.Services.KVWrites[e.home]++
	offset += e.p.KVAccessLatency(src, e.home)
	fire, anyReached := e.annotate(id, edge, true)

	if fire {
		// This writer completed the set; since it reached, the
		// condition of Eq 4.1 holds and it invokes the sync node.
		_ = anyReached // reached=true implies anyReached
		offset = e.invokeSync(inv, id, edge.To, src, offset)
	}
	return offset
}

// invokeSync publishes the (small) invocation message for a satisfied
// synchronization node to its plan region.
func (e *Engine) invokeSync(inv *invocation, id uint64, node dag.NodeID, src region.ID, offset time.Duration) time.Duration {
	syncRegion := e.resolveRegion(inv, node)
	now := e.p.Scheduler().Now()
	inv.rec.Services.SNSPublishes[src]++
	e.logTransfer(inv, platform.TransferEvent{
		Kind: platform.TransferControl, From: src, To: syncRegion, ToNode: node, Bytes: controlMessageBytes, At: now.Add(offset),
	})
	inv.pending++
	latency := offset + publishCallLatency + e.p.MessageLatency(src, syncRegion, controlMessageBytes)
	if err := e.publish(id, node, syncRegion, latency); err != nil {
		inv.pending--
		inv.rec.Succeeded = false
	}
	return offset + publishCallLatency
}

// skipEdge handles an untaken conditional edge (§4 conditional DAGs): if
// the successor is a synchronization node the edge is annotated skipped
// (possibly completing — and then firing or skipping — the node);
// otherwise the successor will never run, and the skip propagates through
// it toward every downstream synchronization node. All annotations are
// written by the current wrapper (n_i in the paper's formulation).
func (e *Engine) skipEdge(inv *invocation, id uint64, edge dag.Edge, src region.ID, offset time.Duration) time.Duration {
	if e.wl.DAG.IsSync(edge.To) {
		inv.rec.Services.KVWrites[e.home]++
		offset += e.p.KVAccessLatency(src, e.home)
		fire, anyReached := e.annotate(id, edge, false)
		if fire {
			if anyReached {
				offset = e.invokeSync(inv, id, edge.To, src, offset)
			} else {
				// Every incoming edge was skipped: the sync node
				// itself is skipped and the skip propagates.
				offset = e.propagateSkipFrom(inv, id, edge.To, src, offset)
			}
		}
		return offset
	}
	return e.propagateSkipFrom(inv, id, edge.To, src, offset)
}

// propagateSkipFrom treats node as skipped and recursively skips all of
// its outgoing edges.
func (e *Engine) propagateSkipFrom(inv *invocation, id uint64, node dag.NodeID, src region.ID, offset time.Duration) time.Duration {
	for _, out := range e.wl.DAG.Out(node) {
		offset = e.skipEdge(inv, id, out, src, offset)
	}
	return offset
}
