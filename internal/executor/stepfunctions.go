package executor

import (
	"caribou/internal/dag"
	"caribou/internal/platform"
)

// Step Functions-mode orchestration (§9.6 baseline): a first-party state
// machine in the home region drives the workflow with fast transitions,
// in-memory synchronization, and no KV or pub/sub traffic. Function
// executions themselves are identical (common random numbers), so the
// comparison isolates orchestration overhead.

func (e *Engine) invokeStepFunctions(id uint64, inv *invocation) error {
	now := e.p.Scheduler().Now()
	bytes := e.wl.EntryBytes[inv.class]
	e.logTransfer(inv, platform.TransferEvent{
		Kind: platform.TransferEntry, From: e.home, To: e.home, ToNode: e.wl.DAG.Start(), Bytes: bytes, At: now,
	})
	inv.pending++
	e.p.Scheduler().After(platform.StepFunctionsTransition, func() {
		e.sfRun(id, e.wl.DAG.Start())
	})
	return nil
}

// sfRun executes one stage at home under the orchestrator.
func (e *Engine) sfRun(id uint64, node dag.NodeID) {
	inv, ok := e.live[id]
	if !ok {
		return
	}
	now := e.p.Scheduler().Now()
	if !inv.started {
		inv.started = true
		inv.rec.Start = now
	}
	ref := platform.FunctionRef{Workflow: e.wl.Name, Node: node, Region: e.home}
	delay := e.p.ColdStartPenalty(ref, e.wl.ImageBytes)
	reg, _ := e.p.Catalogue().Get(e.home)
	durSec := e.wl.SampleDuration(node, inv.class, reg.PerfFactor, e.rngFor("dur", id, string(node)))
	prof := e.wl.Profile(node)
	util := prof.CPUUtil * e.rngFor("util", id, string(node)).Uniform(0.92, 1.05)
	if util > 1 {
		util = 1
	}
	inv.rec.Executions = append(inv.rec.Executions, platform.ExecutionEvent{
		Node: node, Region: e.home, Start: now.Add(delay),
		DurationSec: durSec, InitSec: delay.Seconds(),
		MemoryMB: prof.MemoryMB, CPUUtil: util, ColdStart: delay > 0,
	})
	e.p.Scheduler().After(delay+secs(durSec), func() {
		e.sfComplete(id, node)
	})
}

func (e *Engine) sfComplete(id uint64, node dag.NodeID) {
	inv, ok := e.live[id]
	if !ok {
		return
	}
	now := e.p.Scheduler().Now()
	if now.After(inv.maxEnd) {
		inv.maxEnd = now
	}
	for _, edge := range e.wl.DAG.Out(node) {
		taken := !edge.Conditional ||
			e.rngFor("branch", id, string(edge.From), string(edge.To)).Bool(edge.Probability)
		if taken {
			e.sfFollow(inv, id, edge)
		} else {
			e.sfSkip(inv, id, edge)
		}
	}
	if len(e.wl.DAG.Out(node)) == 0 {
		e.writeOutput(inv, node, e.home)
	}
	inv.pending--
	e.maybeFinish(id, inv)
}

// sfFollow passes state along a taken edge: direct successors start after
// one transition; synchronization joins are tracked in the orchestrator's
// memory.
func (e *Engine) sfFollow(inv *invocation, id uint64, edge dag.Edge) {
	bytes := e.wl.Bytes(edge.From, edge.To, inv.class)
	now := e.p.Scheduler().Now()
	if bytes > 0 {
		e.logTransfer(inv, platform.TransferEvent{
			Kind: platform.TransferPayload, From: e.home, To: e.home, FromNode: edge.From, ToNode: edge.To, Bytes: bytes, At: now,
		})
	}
	if !e.wl.DAG.IsSync(edge.To) {
		inv.pending++
		e.p.Scheduler().After(platform.StepFunctionsTransition, func() {
			e.sfRun(id, edge.To)
		})
		return
	}
	e.sfJoinArrive(inv, id, edge.To, true)
}

// sfSkip propagates an untaken conditional edge through the in-memory
// state machine.
func (e *Engine) sfSkip(inv *invocation, id uint64, edge dag.Edge) {
	if e.wl.DAG.IsSync(edge.To) {
		e.sfJoinArrive(inv, id, edge.To, false)
		return
	}
	for _, out := range e.wl.DAG.Out(edge.To) {
		e.sfSkip(inv, id, out)
	}
}

func (e *Engine) sfJoinArrive(inv *invocation, id uint64, node dag.NodeID, reached bool) {
	st := inv.sfState[node]
	if st == nil {
		st = &sfJoin{}
		inv.sfState[node] = st
	}
	if reached {
		st.arrived++
	} else {
		st.skipped++
	}
	want := len(e.wl.DAG.In(node))
	if st.arrived+st.skipped < want {
		return
	}
	if st.arrived == 0 {
		// Whole join skipped.
		for _, out := range e.wl.DAG.Out(node) {
			e.sfSkip(inv, id, out)
		}
		return
	}
	inv.pending++
	e.p.Scheduler().After(platform.StepFunctionsTransition, func() {
		e.sfRun(id, node)
	})
}
