package executor

import (
	"testing"

	"caribou/internal/netmodel"
	"caribou/internal/platform"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/workloads"
)

// TestRegionConcurrencyLimitSerializesExecutions: with a capacity of 1,
// simultaneous invocations of a 6.5-second function must queue, so
// completion times stagger by roughly the execution duration and later
// invocations' service times include their queueing delay.
func TestRegionConcurrencyLimitSerializesExecutions(t *testing.T) {
	sched := simclock.New(testStart)
	cat := region.NorthAmerica()
	p, err := platform.New(platform.Options{
		Sched: sched, Catalogue: cat, Net: netmodel.New(cat), Seed: 42,
		RegionConcurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := workloads.DNAVisualization()
	var recs []*platform.InvocationRecord
	e := newEngine(t, p, wl, ModeCaribou, HomeOnly{}, &recs)

	const n = 4
	for i := 0; i < n; i++ {
		if _, err := e.Invoke(workloads.Small); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	if len(recs) != n {
		t.Fatalf("completed %d of %d", len(recs), n)
	}
	peak, queued := p.ConcurrencyStats(region.USEast1)
	if peak != 1 {
		t.Errorf("peak concurrency = %d, want 1", peak)
	}
	if queued != n-1 {
		t.Errorf("queued = %d, want %d", queued, n-1)
	}
	// Service times grow roughly linearly with queue position.
	mean := wl.Profile("visualize").MeanDurationSec[workloads.Small]
	first := recs[0].ServiceTime().Seconds()
	last := recs[n-1].ServiceTime().Seconds()
	if last < first+float64(n-2)*mean*0.8 {
		t.Errorf("no queueing visible: first %.2fs, last %.2fs", first, last)
	}
}

// TestUnlimitedConcurrencyRunsInParallel: the same burst with no cap
// completes in about one execution duration.
func TestUnlimitedConcurrencyRunsInParallel(t *testing.T) {
	sched := simclock.New(testStart)
	cat := region.NorthAmerica()
	p, err := platform.New(platform.Options{
		Sched: sched, Catalogue: cat, Net: netmodel.New(cat), Seed: 42,
		RegionConcurrency: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := workloads.DNAVisualization()
	var recs []*platform.InvocationRecord
	e := newEngine(t, p, wl, ModeCaribou, HomeOnly{}, &recs)
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := e.Invoke(workloads.Small); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	if len(recs) != n {
		t.Fatalf("completed %d of %d", len(recs), n)
	}
	mean := wl.Profile("visualize").MeanDurationSec[workloads.Small]
	for _, r := range recs {
		if r.ServiceTime().Seconds() > 2.5*mean {
			t.Errorf("invocation %d took %.2fs; parallel burst should take ~%.1fs", r.ID, r.ServiceTime().Seconds(), mean)
		}
	}
	_, queued := p.ConcurrencyStats(region.USEast1)
	if queued != 0 {
		t.Errorf("queued = %d with unlimited capacity", queued)
	}
}
