package executor

import (
	"encoding/json"
	"fmt"
	"time"

	"caribou/internal/dag"
	"caribou/internal/platform"
	"caribou/internal/pubsub"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/workloads"
)

// Invoke starts one workflow invocation with the given input class at the
// current virtual time and returns its ID. The request originates at the
// home region (traffic sources are fixed at home, §9.1).
func (e *Engine) Invoke(class workloads.InputClass) (uint64, error) {
	e.nextID++
	id := e.nextID
	inv := &invocation{
		rec:         platform.NewInvocationRecord(e.wl.Name, id, string(class)),
		class:       class,
		stagedBytes: make(map[dag.NodeID]float64),
		sfState:     make(map[dag.NodeID]*sfJoin),
	}
	inv.rec.Succeeded = true
	e.live[id] = inv
	e.tel.invocations.Inc()

	if e.mode == ModeStepFunctions {
		return id, e.invokeStepFunctions(id, inv)
	}

	now := e.p.Scheduler().Now()
	var offset time.Duration
	if e.mode == ModeCaribou {
		// The home endpoint consults the active DP to route the
		// request (§6.2) unless this invocation is pinned home for
		// benchmarking. The KV read's latency is charged inside the
		// entry function (beginExecution), where the wrapper performs
		// it in the real system — that is where it counts toward the
		// measured service time.
		inv.rec.Services.KVReads[e.home]++
		if e.rng.Bool(e.benchFr) {
			inv.rec.Benchmarked = true
		} else if p := e.plans.ActivePlan(now); p != nil {
			inv.plan = p
		}
	}

	entry := e.wl.DAG.Start()
	entryRegion := e.resolveRegion(inv, entry)
	bytes := e.wl.EntryBytes[class] + controlMessageBytes
	inv.rec.Services.SNSPublishes[e.home]++
	e.logTransfer(inv, platform.TransferEvent{
		Kind: platform.TransferEntry, From: e.home, To: entryRegion, ToNode: entry, Bytes: bytes, At: now.Add(offset),
	})
	inv.pending++
	latency := offset + publishCallLatency + e.p.MessageLatency(e.home, entryRegion, bytes)
	return id, e.publish(id, entry, entryRegion, latency)
}

// InvokeAt schedules an invocation at a future virtual time.
func (e *Engine) InvokeAt(t time.Time, class workloads.InputClass, onErr func(error)) {
	e.p.Scheduler().At(t, func() {
		if _, err := e.Invoke(class); err != nil && onErr != nil {
			onErr(err)
		}
	})
}

func (e *Engine) publish(inv uint64, node dag.NodeID, r region.ID, latency time.Duration) error {
	data, err := json.Marshal(envelope{Inv: inv, Node: node})
	if err != nil {
		return fmt.Errorf("executor: marshal envelope: %w", err)
	}
	topic := platform.FunctionRef{Workflow: e.wl.Name, Node: node, Region: r}.Topic()
	return e.p.Publish(topic, data, latency)
}

// resolveRegion maps a stage to its execution region: the active plan's
// assignment when a live deployment exists there, otherwise the home
// region — the fallback that guarantees no invocation is routed through an
// invalid deployment (§6.1).
func (e *Engine) resolveRegion(inv *invocation, node dag.NodeID) region.ID {
	r := e.home
	if inv.plan != nil {
		if pr, ok := inv.plan[node]; ok {
			r = pr
		}
	}
	if r != e.home {
		ref := platform.FunctionRef{Workflow: e.wl.Name, Node: node, Region: r}
		if !e.p.IsDeployed(ref) {
			return e.home
		}
	}
	return r
}

// onArrive handles delivery of an invocation message at a deployment: the
// invocation waits for region execution capacity, the function environment
// spins up (cold start), sync nodes load their staged predecessor data,
// and the stage executes for a sampled duration.
func (e *Engine) onArrive(ref platform.FunctionRef, msg pubsub.Message) error {
	var env envelope
	if err := json.Unmarshal(msg.Data, &env); err != nil {
		return fmt.Errorf("executor: bad envelope on %s: %w", msg.Topic, err)
	}
	inv, ok := e.live[env.Inv]
	if !ok {
		// Duplicate delivery for a finished invocation: acknowledge.
		return nil
	}
	if !inv.started {
		inv.started = true
		inv.rec.Start = e.p.Scheduler().Now()
	}
	// Region capacity: queueing (if any) counts toward service time.
	e.p.AcquireExecutionSlot(ref.Region, func() {
		e.beginExecution(ref, env.Inv, env.Node)
	})
	return nil
}

// beginExecution runs once a capacity slot is held; it must release the
// slot when the execution finishes.
func (e *Engine) beginExecution(ref platform.FunctionRef, id uint64, node dag.NodeID) {
	inv, ok := e.live[id]
	now := e.p.Scheduler().Now()
	if !ok {
		e.p.ReleaseExecutionSlot(ref.Region)
		return
	}

	coldDelay := e.p.ColdStartPenalty(ref, e.wl.ImageBytes)
	cold := coldDelay > 0
	delay := coldDelay

	if e.mode == ModeCaribou && node == e.wl.DAG.Start() {
		// The entry wrapper's DP fetch (§6.2) happens inside the
		// first function: its latency is part of the end-to-end
		// service time Fig 12 measures.
		delay += e.p.KVAccessLatency(ref.Region, e.home)
	}

	if e.wl.DAG.IsSync(node) {
		// Load intermediate data staged by predecessors from the
		// workflow's KV table at home (§4, Fig 5).
		staged := inv.stagedBytes[node]
		inv.rec.Services.KVReads[e.home]++
		e.logTransfer(inv, platform.TransferEvent{
			Kind: platform.TransferKVData, From: e.home, To: ref.Region, ToNode: node, Bytes: staged, At: now,
		})
		load, err := e.p.Net().TransferTime(e.home, ref.Region, staged)
		if err != nil {
			load = 0
		}
		delay += e.p.KVAccessLatency(ref.Region, e.home) + load
	}

	reg, _ := e.p.Catalogue().Get(ref.Region)
	durSec := e.wl.SampleDuration(node, inv.class, reg.PerfFactor, e.rngFor("dur", id, string(node)))
	prof := e.wl.Profile(node)
	util := prof.CPUUtil * e.rngFor("util", id, string(node)).Uniform(0.92, 1.05)
	if util > 1 {
		util = 1
	}
	inv.rec.Executions = append(inv.rec.Executions, platform.ExecutionEvent{
		Node: node, Region: ref.Region, Start: now.Add(delay),
		DurationSec: durSec, InitSec: coldDelay.Seconds(),
		MemoryMB: prof.MemoryMB, CPUUtil: util, ColdStart: cold,
	})
	e.p.Scheduler().After(delay+secs(durSec), func() {
		e.p.ReleaseExecutionSlot(ref.Region)
		e.onNodeComplete(id, node, ref.Region)
	})
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// onNodeComplete runs the wrapper's post-execution logic: invoke or skip
// each successor, stage data for synchronization nodes, and write terminal
// results back to home storage.
func (e *Engine) onNodeComplete(id uint64, node dag.NodeID, src region.ID) {
	inv, ok := e.live[id]
	if !ok {
		return
	}
	now := e.p.Scheduler().Now()
	if now.After(inv.maxEnd) {
		inv.maxEnd = now
	}

	var offset time.Duration
	for _, edge := range e.wl.DAG.Out(node) {
		taken := !edge.Conditional ||
			e.rngFor("branch", id, string(edge.From), string(edge.To)).Bool(edge.Probability)
		if taken {
			if e.wl.DAG.IsSync(edge.To) {
				offset = e.sendToSync(inv, id, edge, src, offset)
			} else {
				offset = e.sendDirect(inv, id, edge, src, offset)
			}
		} else {
			offset = e.skipEdge(inv, id, edge, src, offset)
		}
	}

	if len(e.wl.DAG.Out(node)) == 0 {
		e.writeOutput(inv, node, src)
	}

	inv.pending--
	e.maybeFinish(id, inv)
}

// writeOutput logs a terminal stage persisting its result to the
// workflow's fixed external storage at home. The write time is considered
// part of the recorded execution duration (profiles were calibrated
// including IO), so no extra virtual time is charged.
func (e *Engine) writeOutput(inv *invocation, node dag.NodeID, src region.ID) {
	out, ok := e.wl.OutputBytes[node]
	if !ok {
		return
	}
	bytes := out[inv.class]
	if bytes <= 0 {
		return
	}
	e.logTransfer(inv, platform.TransferEvent{
		Kind: platform.TransferOutput, From: src, To: e.home, FromNode: node, Bytes: bytes, At: e.p.Scheduler().Now(),
	})
}

// logTransfer appends ev to the invocation's record and counts it in the
// platform's transfer instruments (ev.At carries the simclock stamp).
func (e *Engine) logTransfer(inv *invocation, ev platform.TransferEvent) {
	inv.rec.Transfers = append(inv.rec.Transfers, ev)
	e.p.NoteTransfer(ev)
}

// sendDirect invokes a non-synchronization successor by publishing the
// intermediate data (with the piggybacked plan) to the successor's topic
// in its plan region.
func (e *Engine) sendDirect(inv *invocation, id uint64, edge dag.Edge, src region.ID, offset time.Duration) time.Duration {
	succRegion := e.resolveRegion(inv, edge.To)
	bytes := e.wl.Bytes(edge.From, edge.To, inv.class) + controlMessageBytes
	now := e.p.Scheduler().Now()
	inv.rec.Services.SNSPublishes[src]++
	e.logTransfer(inv, platform.TransferEvent{
		Kind: platform.TransferPayload, From: src, To: succRegion, FromNode: edge.From, ToNode: edge.To, Bytes: bytes, At: now.Add(offset),
	})
	inv.pending++
	latency := offset + publishCallLatency + e.p.MessageLatency(src, succRegion, bytes)
	if err := e.publish(id, edge.To, succRegion, latency); err != nil {
		inv.pending--
		inv.rec.Succeeded = false
	}
	return offset + publishCallLatency
}

// rngFor derives the deterministic per-invocation random stream for one
// decision. Seeding by (invocation, purpose) gives common random numbers
// across deployment strategies, so strategy comparisons are paired.
func (e *Engine) rngFor(kind string, inv uint64, parts ...string) *simclock.Rand {
	label := fmt.Sprintf("%s/%s/%d", e.wl.Name, kind, inv)
	for _, p := range parts {
		label += "/" + p
	}
	return simclock.DeriveRand(e.seed, label)
}
