package executor

import (
	"testing"
	"time"

	"caribou/internal/dag"
	"caribou/internal/platform"
	"caribou/internal/region"
	"caribou/internal/workloads"
)

// TestInFlightMessageToRemovedDeploymentFails exercises the message-loss
// path: a deployment disappears while an invocation message is in flight;
// the broker retries, exhausts attempts, and the invocation completes
// unsuccessfully instead of hanging forever.
func TestInFlightMessageToRemovedDeploymentFails(t *testing.T) {
	sched, p := newTestEnv(t)
	wl := workloads.DNAVisualization()
	var recs []*platform.InvocationRecord
	e := newEngine(t, p, wl, ModeCaribou, nil, &recs)

	if _, err := e.EnsureDeployment("visualize", region.USWest2); err != nil {
		t.Fatal(err)
	}
	plan := dag.NewHomePlan(wl.DAG, region.USWest2)
	e.SetPlans(StaticPlans{Hourly: dag.Uniform(plan)})
	e.SetBenchFraction(0)

	if _, err := e.Invoke(workloads.Small); err != nil {
		t.Fatal(err)
	}
	// The message is now in flight to us-west-2; the deployment vanishes
	// before delivery (e.g. region failure).
	e.RemoveDeployment("visualize", region.USWest2)
	sched.Run()

	if len(recs) != 1 {
		t.Fatalf("completed %d invocations, want 1 (failed)", len(recs))
	}
	if recs[0].Succeeded {
		t.Error("invocation should be marked failed after message drop")
	}
	if e.Live() != 0 {
		t.Error("invocation leaked")
	}
}

// TestRecoveryAfterRedelivery: the deployment reappears before the broker
// exhausts redelivery attempts, so the invocation ultimately succeeds —
// the at-least-once property end to end.
func TestRecoveryAfterRedelivery(t *testing.T) {
	sched, p := newTestEnv(t)
	wl := workloads.DNAVisualization()
	var recs []*platform.InvocationRecord
	e := newEngine(t, p, wl, ModeCaribou, nil, &recs)

	if _, err := e.EnsureDeployment("visualize", region.USWest2); err != nil {
		t.Fatal(err)
	}
	plan := dag.NewHomePlan(wl.DAG, region.USWest2)
	e.SetPlans(StaticPlans{Hourly: dag.Uniform(plan)})
	e.SetBenchFraction(0)

	if _, err := e.Invoke(workloads.Small); err != nil {
		t.Fatal(err)
	}
	e.RemoveDeployment("visualize", region.USWest2)
	// Redeploy shortly after: the first delivery attempt fails, a retry
	// lands.
	sched.After(2*time.Second, func() {
		if _, err := e.EnsureDeployment("visualize", region.USWest2); err != nil {
			t.Errorf("redeploy: %v", err)
		}
	})
	sched.Run()

	if len(recs) != 1 || !recs[0].Succeeded {
		t.Fatalf("recs = %d, succeeded = %v", len(recs), len(recs) > 0 && recs[0].Succeeded)
	}
	if recs[0].Executions[0].Region != region.USWest2 {
		t.Errorf("ran in %s", recs[0].Executions[0].Region)
	}
}

// TestColdStartsClusterAtDeploymentSwitch: a fresh remote deployment pays
// a cold start on first use, then stays warm for steady traffic.
func TestColdStartsClusterAtDeploymentSwitch(t *testing.T) {
	sched, p := newTestEnv(t)
	wl := workloads.DNAVisualization()
	var recs []*platform.InvocationRecord
	e := newEngine(t, p, wl, ModeCaribou, nil, &recs)
	if _, err := e.EnsureDeployment("visualize", region.CACentral1); err != nil {
		t.Fatal(err)
	}
	e.SetPlans(StaticPlans{Hourly: dag.Uniform(dag.NewHomePlan(wl.DAG, region.CACentral1))})
	e.SetBenchFraction(0)

	runInvocations(t, e, sched, 20, workloads.Small, 5*time.Minute)
	if len(recs) != 20 {
		t.Fatalf("completed %d", len(recs))
	}
	colds := 0
	for _, r := range recs {
		for _, ex := range r.Executions {
			if ex.ColdStart {
				colds++
				if ex.InitSec <= 0 {
					t.Error("cold start without init time")
				}
			} else if ex.InitSec != 0 {
				t.Error("warm start with init time")
			}
		}
	}
	if colds != 1 {
		t.Errorf("cold starts = %d, want exactly the first", colds)
	}
}
