// Package executor implements Caribou's flexible cross-regional workflow
// execution (§6.2): deployment-plan routing with plan piggybacking,
// pub/sub invocation of successors, the synchronization-node protocol of
// Eq 4.1, conditional-branch skip propagation, and the 10 % home-region
// benchmarking traffic. It also implements the two baseline orchestrators
// compared in §9.6: first-party Step Functions-style orchestration and
// plain single-region SNS chaining.
package executor

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"caribou/internal/dag"
	"caribou/internal/platform"
	"caribou/internal/pubsub"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/telemetry"
	"caribou/internal/workloads"
)

// Mode selects the orchestration strategy.
type Mode int

// Orchestration modes.
const (
	// ModeCaribou is the full framework: DP routing, sync-node KV
	// protocol, benchmarking traffic.
	ModeCaribou Mode = iota
	// ModePlainSNS chains functions through SNS in the home region with
	// KV-based synchronization but no deployment-plan machinery.
	ModePlainSNS
	// ModeStepFunctions models the provider's first-party orchestrator:
	// a central state machine in the home region with fast transitions
	// and native synchronization.
	ModeStepFunctions
)

func (m Mode) String() string {
	switch m {
	case ModeCaribou:
		return "caribou"
	case ModePlainSNS:
		return "sns"
	case ModeStepFunctions:
		return "stepfunctions"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// PlanSource supplies the deployment plan in effect at a point in time.
// Returning nil means "no active plan": traffic stays at home, the
// framework's fallback (§5.2 plan expiry, §6.1 failed rollouts).
type PlanSource interface {
	ActivePlan(now time.Time) dag.Plan
}

// StaticPlans is a PlanSource serving a fixed 24-hour plan set.
type StaticPlans struct{ Hourly dag.HourlyPlans }

// ActivePlan returns the plan for the UTC hour of now.
func (s StaticPlans) ActivePlan(now time.Time) dag.Plan { return s.Hourly.At(now.UTC().Hour()) }

// HomeOnly is a PlanSource that always keeps the workflow at home.
type HomeOnly struct{}

// ActivePlan returns nil, meaning the home fallback plan.
func (HomeOnly) ActivePlan(time.Time) dag.Plan { return nil }

// publish-API call latency charged per successor invocation issued by the
// wrapper (the SNS Publish call itself, distinct from delivery latency).
const publishCallLatency = 10 * time.Millisecond

// controlMessageBytes approximates the size of an invocation envelope
// (piggybacked deployment plan, invocation counters).
const controlMessageBytes = 2e3

// Options configures an Engine.
type Options struct {
	Platform *platform.Platform
	Workload *workloads.Workload
	Home     region.ID
	Mode     Mode
	// Plans supplies active deployment plans (Caribou mode only). nil
	// behaves like HomeOnly.
	Plans PlanSource
	// BenchFraction is the share of traffic pinned to the home region
	// for benchmarking; defaults to 0.10 in Caribou mode (§6.2).
	BenchFraction float64
	Seed          int64
	// OnComplete receives every finished invocation record.
	OnComplete func(*platform.InvocationRecord)
}

// Engine executes one workflow on the simulated platform.
type Engine struct {
	p       *platform.Platform
	wl      *workloads.Workload
	home    region.ID
	mode    Mode
	plans   PlanSource
	benchFr float64
	seed    int64
	rng     *simclock.Rand
	done    func(*platform.InvocationRecord)

	nextID uint64
	live   map[uint64]*invocation

	tel executorTelemetry
}

// executorTelemetry holds the engine's instrument handles, captured at
// construction; all fields are nil-safe no-ops when telemetry is off.
type executorTelemetry struct {
	invocations *telemetry.Counter
	completed   *telemetry.Counter
	failed      *telemetry.Counter
	dropped     *telemetry.Counter
}

func newExecutorTelemetry() executorTelemetry {
	rec := telemetry.Default()
	return executorTelemetry{
		invocations: rec.Counter("executor.invocations"),
		completed:   rec.Counter("executor.completed"),
		failed:      rec.Counter("executor.failed"),
		dropped:     rec.Counter("executor.dropped_messages"),
	}
}

// invocation tracks one in-flight workflow execution.
type invocation struct {
	rec     *platform.InvocationRecord
	class   workloads.InputClass
	plan    dag.Plan // effective routing plan, fixed at entry
	pending int      // node executions scheduled or running
	maxEnd  time.Time
	started bool
	// stagedBytes accumulates intermediate data staged in the KV store
	// per sync node, loaded by the sync node when it fires.
	stagedBytes map[dag.NodeID]float64
	// sfState holds Step Functions-mode in-memory join state.
	sfState map[dag.NodeID]*sfJoin
}

type sfJoin struct {
	arrived int
	skipped int
	bytes   float64
}

// envelope is the message payload carried on pub/sub invocations.
type envelope struct {
	Inv  uint64     `json:"inv"`
	Node dag.NodeID `json:"node"`
}

// New validates options and returns an engine. The caller must deploy
// functions (at minimum the home-region deployment) before invoking.
func New(opts Options) (*Engine, error) {
	if opts.Platform == nil || opts.Workload == nil {
		return nil, fmt.Errorf("executor: Platform and Workload are required")
	}
	if _, ok := opts.Platform.Catalogue().Get(opts.Home); !ok {
		return nil, fmt.Errorf("executor: unknown home region %q", opts.Home)
	}
	if opts.Plans == nil {
		opts.Plans = HomeOnly{}
	}
	if opts.BenchFraction == 0 && opts.Mode == ModeCaribou {
		opts.BenchFraction = 0.10
	}
	if opts.BenchFraction < 0 {
		// Negative explicitly disables benchmarking traffic (the
		// zero value means "default").
		opts.BenchFraction = 0
	}
	if opts.BenchFraction >= 1 {
		return nil, fmt.Errorf("executor: benchmark fraction %v out of [0, 1)", opts.BenchFraction)
	}
	e := &Engine{
		p:       opts.Platform,
		wl:      opts.Workload,
		home:    opts.Home,
		mode:    opts.Mode,
		plans:   opts.Plans,
		benchFr: opts.BenchFraction,
		seed:    opts.Seed,
		rng:     simclock.DeriveRand(opts.Seed, "executor/"+opts.Workload.Name),
		done:    opts.OnComplete,
		live:    make(map[uint64]*invocation),
		tel:     newExecutorTelemetry(),
	}
	e.p.Broker().OnDrop(e.onDrop)
	return e, nil
}

// Workload returns the engine's workload.
func (e *Engine) Workload() *workloads.Workload { return e.wl }

// Home returns the home region.
func (e *Engine) Home() region.ID { return e.home }

// EnsureDeployment replicates the workflow image to r if needed and
// deploys the function for node there, wiring the engine's handler. It
// returns the bytes moved by the image copy (zero when already present)
// so the deployer can account migration overhead.
func (e *Engine) EnsureDeployment(node dag.NodeID, r region.ID) (float64, error) {
	if !e.p.HasImage(e.wl.Name, e.home) {
		if err := e.p.PushImage(e.wl.Name, e.wl.ImageBytes, e.home); err != nil {
			return 0, err
		}
	}
	var moved float64
	if !e.p.HasImage(e.wl.Name, r) {
		_, bytes, err := e.p.CopyImage(e.wl.Name, e.home, r)
		if err != nil {
			return 0, err
		}
		moved = bytes
	}
	if err := e.p.EnsureRole(e.wl.Name, r); err != nil {
		return 0, err
	}
	ref := platform.FunctionRef{Workflow: e.wl.Name, Node: node, Region: r}
	if e.p.IsDeployed(ref) {
		return moved, nil
	}
	err := e.p.DeployFunction(ref, func(msg pubsub.Message) error {
		return e.onArrive(ref, msg)
	})
	return moved, err
}

// RemoveDeployment tears down the function for node in r.
func (e *Engine) RemoveDeployment(node dag.NodeID, r region.ID) {
	e.p.RemoveFunction(platform.FunctionRef{Workflow: e.wl.Name, Node: node, Region: r})
}

// DeployHome deploys every stage to the home region (initial deployment,
// §6.1).
func (e *Engine) DeployHome() error {
	for _, n := range e.wl.DAG.Nodes() {
		if _, err := e.EnsureDeployment(n, e.home); err != nil {
			return err
		}
	}
	return nil
}

// Live reports the number of in-flight invocations.
func (e *Engine) Live() int { return len(e.live) }

func (e *Engine) onDrop(msg pubsub.Message) {
	if !strings.HasPrefix(msg.Topic, e.wl.Name+"/") {
		return // another workflow's message
	}
	var env envelope
	if json.Unmarshal(msg.Data, &env) != nil {
		return
	}
	inv, ok := e.live[env.Inv]
	if !ok {
		return
	}
	// A lost invocation message means the stage never ran; the
	// invocation completes unsuccessfully once nothing else is pending.
	e.tel.dropped.Inc()
	inv.rec.Succeeded = false
	inv.pending--
	e.maybeFinish(env.Inv, inv)
}

func (e *Engine) maybeFinish(id uint64, inv *invocation) {
	if inv.pending > 0 {
		return
	}
	inv.rec.End = inv.maxEnd
	delete(e.live, id)
	e.tel.completed.Inc()
	if !inv.rec.Succeeded {
		e.tel.failed.Inc()
	}
	if e.done != nil {
		e.done(inv.rec)
	}
}

// SetPlans replaces the engine's plan source; nil restores home-only
// routing. Used when switching between static experiment plans and the
// adaptive Deployment Manager.
func (e *Engine) SetPlans(ps PlanSource) {
	if ps == nil {
		ps = HomeOnly{}
	}
	e.plans = ps
}

// SetBenchFraction adjusts the share of traffic pinned home for
// benchmarking.
func (e *Engine) SetBenchFraction(f float64) {
	if f >= 0 && f < 1 {
		e.benchFr = f
	}
}
