package executor

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"caribou/internal/dag"
	"caribou/internal/platform"
	"caribou/internal/workloads"
)

// randomWorkload builds a layered DAG with randomized fan-out and
// conditional edges from the quick-generated bits. Layer widths come from
// widths (1-3 nodes); edge existence and conditionality come from bits.
func randomWorkload(widths [3]uint8, bits uint64, probs [8]uint8) (*workloads.Workload, error) {
	b := dag.NewBuilder("prop")
	nodes := map[dag.NodeID]workloads.NodeProfile{}
	edgeBytes := map[workloads.EdgeKey]map[workloads.InputClass]float64{}
	prof := workloads.NodeProfile{
		MeanDurationSec: map[workloads.InputClass]float64{workloads.Small: 0.3, workloads.Large: 0.3},
		DurationSigma:   0.05, CPUUtil: 0.7, MemoryMB: 1024,
	}
	add := func(id dag.NodeID) {
		b.AddNode(dag.Node{ID: id, MemoryMB: 1024})
		nodes[id] = prof
	}
	add("root")
	prev := []dag.NodeID{"root"}
	bit := 0
	nextBit := func() bool {
		v := bits&(1<<uint(bit%64)) != 0
		bit++
		return v
	}
	pi := 0
	nextProb := func() float64 {
		p := float64(probs[pi%len(probs)]) / 255
		pi++
		return p
	}
	for li, w8 := range widths {
		w := int(w8%3) + 1
		var layer []dag.NodeID
		for i := 0; i < w; i++ {
			id := dag.NodeID(fmt.Sprintf("n%d-%d", li, i))
			add(id)
			connected := false
			for _, p := range prev {
				if nextBit() {
					if nextBit() {
						b.AddConditionalEdge(p, id, nextProb())
					} else {
						b.AddEdge(p, id)
					}
					edgeBytes[workloads.EdgeKey{From: p, To: id}] = map[workloads.InputClass]float64{workloads.Small: 1e4, workloads.Large: 1e4}
					connected = true
				}
			}
			if !connected {
				b.AddEdge(prev[0], id)
				edgeBytes[workloads.EdgeKey{From: prev[0], To: id}] = map[workloads.InputClass]float64{workloads.Small: 1e4, workloads.Large: 1e4}
			}
			layer = append(layer, id)
		}
		prev = layer
	}
	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &workloads.Workload{
		Name:       "prop",
		DAG:        d,
		Nodes:      nodes,
		EdgeBytes:  edgeBytes,
		EntryBytes: map[workloads.InputClass]float64{workloads.Small: 1e3, workloads.Large: 1e3},
		InputLabel: map[workloads.InputClass]string{workloads.Small: "s", workloads.Large: "l"},
		ImageBytes: 1e8,
	}, nil
}

// TestQuickRandomDAGsAlwaysComplete: for arbitrary layered DAGs with
// arbitrary conditional structure, every invocation terminates, nothing
// leaks, no stage executes twice, and a stage only executes if at least
// one predecessor did (the root always does).
func TestQuickRandomDAGsAlwaysComplete(t *testing.T) {
	f := func(widths [3]uint8, bits uint64, probs [8]uint8) bool {
		wl, err := randomWorkload(widths, bits, probs)
		if err != nil {
			// Random layered construction always yields a valid DAG;
			// a build failure is itself a bug.
			t.Logf("build failed: %v", err)
			return false
		}
		sched, p := newTestEnv(t)
		var recs []*platform.InvocationRecord
		e := newEngine(t, p, wl, ModeCaribou, HomeOnly{}, &recs)
		const n = 4
		for i := 0; i < n; i++ {
			e.InvokeAt(sched.Now().Add(time.Duration(i)*time.Minute), workloads.Small, nil)
		}
		sched.Run()
		if len(recs) != n || e.Live() != 0 {
			t.Logf("completed %d of %d, live %d", len(recs), n, e.Live())
			return false
		}
		for _, r := range recs {
			if !r.Succeeded {
				t.Logf("invocation %d failed", r.ID)
				return false
			}
			count := map[dag.NodeID]int{}
			for _, ex := range r.Executions {
				count[ex.Node]++
			}
			if count["root"] != 1 {
				t.Logf("root executed %d times", count["root"])
				return false
			}
			for node, c := range count {
				if c != 1 {
					t.Logf("node %s executed %d times", node, c)
					return false
				}
				if node == "root" {
					continue
				}
				anyPred := false
				for _, in := range wl.DAG.In(node) {
					if count[in.From] > 0 {
						anyPred = true
					}
				}
				if !anyPred {
					t.Logf("node %s ran without any predecessor", node)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
