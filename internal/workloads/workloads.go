// Package workloads defines the five benchmark serverless workflows of
// Table 1 — DNA Visualization, RAG Data Ingestion, Image Processing,
// Text2Speech Censoring, and Video Analytics — as DAGs plus execution
// profiles. Real payloads (DNA files, PDFs, images, videos) are replaced
// by calibrated per-node duration/memory/IO footprints for the paper's
// small and large input sizes; the evaluation consumes execution-time and
// bytes-moved distributions, not payload content.
package workloads

import (
	"fmt"
	"math"
	"sort"

	"caribou/internal/dag"
	"caribou/internal/simclock"
)

// InputClass selects one of the two input sizes evaluated per workflow.
type InputClass string

// The two input classes of Table 1.
const (
	Small InputClass = "small"
	Large InputClass = "large"
)

// Classes returns the input classes in presentation order.
func Classes() []InputClass { return []InputClass{Small, Large} }

// NodeProfile describes how one stage behaves when executed.
type NodeProfile struct {
	// MeanDurationSec is the home-region mean execution time per input
	// class.
	MeanDurationSec map[InputClass]float64
	// DurationSigma is the lognormal sigma of execution-time jitter.
	DurationSigma float64
	// CPUUtil is the average vCPU utilization in [0, 1] (Lambda
	// Insights cpu_total_time / (t * n_vcpu)).
	CPUUtil float64
	// MemoryMB is the configured function memory.
	MemoryMB float64
}

// EdgeKey identifies a DAG edge in profile maps.
type EdgeKey struct{ From, To dag.NodeID }

// Workload couples a workflow DAG with its execution profiles.
type Workload struct {
	Name        string
	Description string
	DAG         *dag.DAG
	Nodes       map[dag.NodeID]NodeProfile
	// EdgeBytes is the intermediate-data payload carried by each edge
	// per input class.
	EdgeBytes map[EdgeKey]map[InputClass]float64
	// EntryBytes is the size of the initial request payload.
	EntryBytes map[InputClass]float64
	// OutputBytes is the result payload each terminal stage writes back
	// to the workflow's fixed external storage at the home region
	// (§9.1 pins external data and services at home).
	OutputBytes map[dag.NodeID]map[InputClass]float64
	// InputLabel gives the human-readable Table 1 input description.
	InputLabel map[InputClass]string
	// ImageBytes is the container image size, which prices the
	// migrator's cross-region registry copies.
	ImageBytes float64
}

// Profile returns the node profile for id, which must exist.
func (w *Workload) Profile(id dag.NodeID) NodeProfile {
	p, ok := w.Nodes[id]
	if !ok {
		panic(fmt.Sprintf("workloads: %s has no profile for node %q", w.Name, id))
	}
	return p
}

// Bytes returns the payload size for the edge from→to under class.
func (w *Workload) Bytes(from, to dag.NodeID, class InputClass) float64 {
	m, ok := w.EdgeBytes[EdgeKey{from, to}]
	if !ok {
		return 0
	}
	return m[class]
}

// SampleDuration draws one execution time (seconds) for node id under
// class, scaled by the region performance factor.
func (w *Workload) SampleDuration(id dag.NodeID, class InputClass, perfFactor float64, rng *simclock.Rand) float64 {
	p := w.Profile(id)
	mean := p.MeanDurationSec[class]
	if mean <= 0 {
		mean = 0.05
	}
	sigma := p.DurationSigma
	if sigma <= 0 {
		sigma = 0.08
	}
	// Lognormal with mu = ln(mean) - sigma^2/2 so E[duration] == mean.
	d := rng.LogNormal(math.Log(mean)-sigma*sigma/2, sigma)
	return d * perfFactor
}

// MeanServiceTimeSec returns a rough analytic mean end-to-end service time
// for a single-region deployment: the longest path through mean node
// durations. It seeds QoS definitions before any measurement exists.
func (w *Workload) MeanServiceTimeSec(class InputClass) float64 {
	memo := map[dag.NodeID]float64{}
	var longest func(n dag.NodeID) float64
	longest = func(n dag.NodeID) float64 {
		if v, ok := memo[n]; ok {
			return v
		}
		best := 0.0
		for _, e := range w.DAG.Out(n) {
			if v := longest(e.To); v > best {
				best = v
			}
		}
		v := w.Profile(n).MeanDurationSec[class] + best
		memo[n] = v
		return v
	}
	return longest(w.DAG.Start())
}

// TotalEdgeBytes sums intermediate-data bytes across all edges for class,
// the workload's transmission footprint.
func (w *Workload) TotalEdgeBytes(class InputClass) float64 {
	// Sorted edge order keeps the floating-point sum independent of map
	// iteration order.
	keys := make([]EdgeKey, 0, len(w.EdgeBytes))
	for k := range w.EdgeBytes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	var sum float64
	for _, k := range keys {
		sum += w.EdgeBytes[k][class]
	}
	return sum
}

// All returns the five benchmark workloads in Table 1 order.
func All() []*Workload {
	return []*Workload{
		DNAVisualization(),
		RAGDataIngestion(),
		ImageProcessing(),
		Text2SpeechCensoring(),
		VideoAnalytics(),
	}
}

// Extras returns workloads resolvable by name but excluded from the
// Table 1 set: synthetic stress workloads used by benches and sweep
// grids, never by the figure drivers.
func Extras() []*Workload {
	return []*Workload{HeavyTailAnalytics()}
}

// ByName returns the named workload, searching Table 1 then Extras.
func ByName(name string) (*Workload, error) {
	all := append(All(), Extras()...)
	for _, w := range all {
		if w.Name == name {
			return w, nil
		}
	}
	var names []string
	for _, w := range all {
		names = append(names, w.Name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, names)
}

func mustBuild(b *dag.Builder) *dag.DAG {
	d, err := b.Build()
	if err != nil {
		panic(err) // static definitions, cannot fail
	}
	return d
}
