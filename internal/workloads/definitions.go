package workloads

import "caribou/internal/dag"

const (
	kb = 1e3
	mb = 1e6
)

// DNAVisualization is the simplest benchmark: a single-stage workflow that
// renders a visualization from a DNA sequence file (SeBS). Compute-heavy,
// minimal intermediate data.
func DNAVisualization() *Workload {
	d := mustBuild(dag.NewBuilder("dna-visualization").
		AddNode(dag.Node{ID: "visualize", MemoryMB: 1769}))
	return &Workload{
		Name:        "dna-visualization",
		Description: "Single-step workflow generating a visualization from a DNA sequence file",
		DAG:         d,
		Nodes: map[dag.NodeID]NodeProfile{
			"visualize": {MeanDurationSec: map[InputClass]float64{Small: 6.5, Large: 23.0}, DurationSigma: 0.10, CPUUtil: 0.92, MemoryMB: 1769},
		},
		EdgeBytes:  map[EdgeKey]map[InputClass]float64{},
		EntryBytes: map[InputClass]float64{Small: 69 * kb, Large: 1.1 * mb},
		OutputBytes: map[dag.NodeID]map[InputClass]float64{
			"visualize": {Small: 450 * kb, Large: 2.8 * mb},
		},
		InputLabel: map[InputClass]string{Small: "69KB", Large: "1.1MB"},
		ImageBytes: 250 * mb,
	}
}

// RAGDataIngestion is a two-stage pipeline: extract document metadata from
// a PDF, then generate embeddings for a document-chat LLM application.
func RAGDataIngestion() *Workload {
	d := mustBuild(dag.NewBuilder("rag-ingestion").
		AddNode(dag.Node{ID: "extract", MemoryMB: 1769}).
		AddNode(dag.Node{ID: "embed", MemoryMB: 3008}).
		AddEdge("extract", "embed"))
	return &Workload{
		Name:        "rag-ingestion",
		Description: "Two-stage pipeline: PDF metadata extraction then embedding generation",
		DAG:         d,
		Nodes: map[dag.NodeID]NodeProfile{
			"extract": {MeanDurationSec: map[InputClass]float64{Small: 2.8, Large: 8.5}, DurationSigma: 0.12, CPUUtil: 0.75, MemoryMB: 1769},
			"embed":   {MeanDurationSec: map[InputClass]float64{Small: 8.0, Large: 26.0}, DurationSigma: 0.10, CPUUtil: 0.85, MemoryMB: 3008},
		},
		EdgeBytes: map[EdgeKey]map[InputClass]float64{
			{"extract", "embed"}: {Small: 180 * kb, Large: 650 * kb},
		},
		EntryBytes: map[InputClass]float64{Small: 1.6 * mb, Large: 5.8 * mb},
		OutputBytes: map[dag.NodeID]map[InputClass]float64{
			"embed": {Small: 320 * kb, Large: 1.1 * mb},
		},
		InputLabel: map[InputClass]string{Small: "33 Pages", Large: "115 Pages"},
		ImageBytes: 420 * mb,
	}
}

// ImageProcessing is a fan-out application applying four transformations
// to an image in parallel (FunctionBench). Very short-running and
// transmission-heavy: the full image travels to every transform stage.
func ImageProcessing() *Workload {
	b := dag.NewBuilder("image-processing").
		AddNode(dag.Node{ID: "ingest", MemoryMB: 1024})
	transforms := []dag.NodeID{"flip", "rotate", "filter", "grayscale"}
	for _, t := range transforms {
		b.AddNode(dag.Node{ID: t, MemoryMB: 1024}).AddEdge("ingest", t)
	}
	d := mustBuild(b)
	nodes := map[dag.NodeID]NodeProfile{
		"ingest": {MeanDurationSec: map[InputClass]float64{Small: 0.20, Large: 0.55}, DurationSigma: 0.15, CPUUtil: 0.55, MemoryMB: 1024},
	}
	edges := map[EdgeKey]map[InputClass]float64{}
	for _, t := range transforms {
		nodes[t] = NodeProfile{MeanDurationSec: map[InputClass]float64{Small: 0.30, Large: 1.05}, DurationSigma: 0.15, CPUUtil: 0.70, MemoryMB: 1024}
		edges[EdgeKey{"ingest", t}] = map[InputClass]float64{Small: 222 * kb, Large: 2.4 * mb}
	}
	return &Workload{
		Name:        "image-processing",
		Description: "Fan-out application applying image transformations in parallel",
		DAG:         d,
		Nodes:       nodes,
		EdgeBytes:   edges,
		EntryBytes:  map[InputClass]float64{Small: 222 * kb, Large: 2.4 * mb},
		OutputBytes: map[dag.NodeID]map[InputClass]float64{
			"flip":      {Small: 222 * kb, Large: 2.4 * mb},
			"rotate":    {Small: 222 * kb, Large: 2.4 * mb},
			"filter":    {Small: 222 * kb, Large: 2.4 * mb},
			"grayscale": {Small: 222 * kb, Large: 2.4 * mb},
		},
		InputLabel: map[InputClass]string{Small: "222KB", Large: "2.4MB"},
		ImageBytes: 310 * mb,
	}
}

// Text2SpeechCensoring mirrors Fig 3 with the evaluation's simplified
// validation stage: text is validated, synthesized to speech on the
// critical path while profanity detection runs in parallel off the
// critical path; a conditional censor stage fires only when profanities
// are found, and a synchronization node merges audio and censoring.
func Text2SpeechCensoring() *Workload {
	d := mustBuild(dag.NewBuilder("text2speech-censoring").
		AddNode(dag.Node{ID: "validate", MemoryMB: 512}).
		AddNode(dag.Node{ID: "text2speech", MemoryMB: 3008}).
		AddNode(dag.Node{ID: "conversion", MemoryMB: 1769}).
		AddNode(dag.Node{ID: "profanity", MemoryMB: 1024}).
		AddNode(dag.Node{ID: "censor", MemoryMB: 1769}).
		AddNode(dag.Node{ID: "compress", MemoryMB: 1769}).
		AddEdge("validate", "text2speech").
		AddEdge("validate", "profanity").
		AddEdge("text2speech", "conversion").
		AddEdge("conversion", "compress").
		AddConditionalEdge("profanity", "censor", 0.5).
		AddEdge("censor", "compress"))
	return &Workload{
		Name:        "text2speech-censoring",
		Description: "Text-to-speech with parallel profanity detection and conditional censoring",
		DAG:         d,
		Nodes: map[dag.NodeID]NodeProfile{
			"validate":    {MeanDurationSec: map[InputClass]float64{Small: 0.30, Large: 0.65}, DurationSigma: 0.12, CPUUtil: 0.50, MemoryMB: 512},
			"text2speech": {MeanDurationSec: map[InputClass]float64{Small: 4.2, Large: 15.5}, DurationSigma: 0.10, CPUUtil: 0.88, MemoryMB: 3008},
			"conversion":  {MeanDurationSec: map[InputClass]float64{Small: 1.4, Large: 5.2}, DurationSigma: 0.12, CPUUtil: 0.78, MemoryMB: 1769},
			"profanity":   {MeanDurationSec: map[InputClass]float64{Small: 0.55, Large: 1.70}, DurationSigma: 0.12, CPUUtil: 0.65, MemoryMB: 1024},
			"censor":      {MeanDurationSec: map[InputClass]float64{Small: 0.75, Large: 2.40}, DurationSigma: 0.12, CPUUtil: 0.70, MemoryMB: 1769},
			"compress":    {MeanDurationSec: map[InputClass]float64{Small: 0.65, Large: 2.10}, DurationSigma: 0.12, CPUUtil: 0.72, MemoryMB: 1769},
		},
		EdgeBytes: map[EdgeKey]map[InputClass]float64{
			{"validate", "text2speech"}:   {Small: 1 * kb, Large: 12 * kb},
			{"validate", "profanity"}:     {Small: 1 * kb, Large: 12 * kb},
			{"text2speech", "conversion"}: {Small: 1.5 * mb, Large: 17 * mb},
			{"conversion", "compress"}:    {Small: 1.2 * mb, Large: 14 * mb},
			{"profanity", "censor"}:       {Small: 2 * kb, Large: 7 * kb},
			{"censor", "compress"}:        {Small: 4 * kb, Large: 11 * kb},
		},
		EntryBytes: map[InputClass]float64{Small: 1 * kb, Large: 12 * kb},
		OutputBytes: map[dag.NodeID]map[InputClass]float64{
			"compress": {Small: 1.0 * mb, Large: 11 * mb},
		},
		InputLabel: map[InputClass]string{Small: "1KB", Large: "12 KB"},
		ImageBytes: 480 * mb,
	}
}

// VideoAnalytics recognizes objects in video frames: the video splits into
// chunks processed in parallel, and a synchronization node joins results.
func VideoAnalytics() *Workload {
	const chunks = 4
	b := dag.NewBuilder("video-analytics").
		AddNode(dag.Node{ID: "split", MemoryMB: 1769}).
		AddNode(dag.Node{ID: "join", MemoryMB: 1769})
	nodes := map[dag.NodeID]NodeProfile{
		"split": {MeanDurationSec: map[InputClass]float64{Small: 0.70, Large: 2.00}, DurationSigma: 0.12, CPUUtil: 0.60, MemoryMB: 1769},
		"join":  {MeanDurationSec: map[InputClass]float64{Small: 0.45, Large: 1.40}, DurationSigma: 0.12, CPUUtil: 0.55, MemoryMB: 1769},
	}
	edges := map[EdgeKey]map[InputClass]float64{}
	for i := 0; i < chunks; i++ {
		id := dag.NodeID(chunkName(i))
		b.AddNode(dag.Node{ID: id, MemoryMB: 3008}).
			AddEdge("split", id).
			AddEdge(id, "join")
		nodes[id] = NodeProfile{MeanDurationSec: map[InputClass]float64{Small: 2.6, Large: 8.5}, DurationSigma: 0.12, CPUUtil: 0.90, MemoryMB: 3008}
		edges[EdgeKey{"split", id}] = map[InputClass]float64{Small: 52 * kb, Large: 600 * kb}
		edges[EdgeKey{id, "join"}] = map[InputClass]float64{Small: 9 * kb, Large: 35 * kb}
	}
	d := mustBuild(b)
	return &Workload{
		Name:        "video-analytics",
		Description: "Object recognition over video chunks processed in parallel and joined",
		DAG:         d,
		Nodes:       nodes,
		EdgeBytes:   edges,
		EntryBytes:  map[InputClass]float64{Small: 206 * kb, Large: 2.4 * mb},
		OutputBytes: map[dag.NodeID]map[InputClass]float64{
			"join": {Small: 14 * kb, Large: 55 * kb},
		},
		InputLabel: map[InputClass]string{Small: "206KB", Large: "2.4MB"},
		ImageBytes: 520 * mb,
	}
}

func chunkName(i int) string {
	return "recognize-" + string(rune('a'+i))
}

// HeavyTailAnalytics is a synthetic stress workload outside the Table 1
// benchmark set: a log-analytics chain whose stage durations draw from
// lognormals with very large sigmas (coefficient of variation ~2.5 on
// the dominant stage, versus ~0.1 for the paper workflows). Monte Carlo
// estimates over such draws converge slowly, so solver candidate lanes
// are still open at batch boundaries and the exact bound-based pruning
// path (montecarlo.pruned_candidates) actually exercises. All()
// deliberately excludes it — figures and Table 1 remain the paper's five
// workflows — but ByName resolves it for benches and sweep grids.
func HeavyTailAnalytics() *Workload {
	d := mustBuild(dag.NewBuilder("heavytail-analytics").
		AddNode(dag.Node{ID: "collect", MemoryMB: 1024}).
		AddNode(dag.Node{ID: "parse", MemoryMB: 1769}).
		AddNode(dag.Node{ID: "analyze", MemoryMB: 3008}).
		AddNode(dag.Node{ID: "report", MemoryMB: 1024}).
		AddEdge("collect", "parse").
		AddEdge("parse", "analyze").
		AddEdge("analyze", "report"))
	return &Workload{
		Name:        "heavytail-analytics",
		Description: "Synthetic heavy-tail log analytics chain stressing slow Monte Carlo convergence",
		DAG:         d,
		Nodes: map[dag.NodeID]NodeProfile{
			"collect": {MeanDurationSec: map[InputClass]float64{Small: 0.8, Large: 2.4}, DurationSigma: 1.2, CPUUtil: 0.55, MemoryMB: 1024},
			"parse":   {MeanDurationSec: map[InputClass]float64{Small: 2.5, Large: 7.5}, DurationSigma: 1.4, CPUUtil: 0.70, MemoryMB: 1769},
			"analyze": {MeanDurationSec: map[InputClass]float64{Small: 6.0, Large: 18.0}, DurationSigma: 1.5, CPUUtil: 0.90, MemoryMB: 3008},
			"report":  {MeanDurationSec: map[InputClass]float64{Small: 0.6, Large: 1.8}, DurationSigma: 1.2, CPUUtil: 0.50, MemoryMB: 1024},
		},
		EdgeBytes: map[EdgeKey]map[InputClass]float64{
			{"collect", "parse"}:  {Small: 4 * mb, Large: 40 * mb},
			{"parse", "analyze"}:  {Small: 2 * mb, Large: 20 * mb},
			{"analyze", "report"}: {Small: 80 * kb, Large: 700 * kb},
		},
		EntryBytes: map[InputClass]float64{Small: 16 * kb, Large: 96 * kb},
		OutputBytes: map[dag.NodeID]map[InputClass]float64{
			"report": {Small: 120 * kb, Large: 1.1 * mb},
		},
		InputLabel: map[InputClass]string{Small: "1h logs", Large: "24h logs"},
		ImageBytes: 450 * mb,
	}
}
