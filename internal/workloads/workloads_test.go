package workloads

import (
	"math"
	"testing"

	"caribou/internal/dag"
	"caribou/internal/simclock"
)

func TestAllReturnsFiveBenchmarks(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("benchmarks = %d", len(all))
	}
	names := map[string]bool{}
	for _, wl := range all {
		if names[wl.Name] {
			t.Errorf("duplicate name %s", wl.Name)
		}
		names[wl.Name] = true
	}
}

func TestByName(t *testing.T) {
	wl, err := ByName("video-analytics")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Name != "video-analytics" {
		t.Errorf("got %s", wl.Name)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("want error for unknown workload")
	}
}

// TestTable1Features checks each benchmark's structural features against
// Table 1: DNA is single-stage; Text2Speech has sync and conditional
// nodes; Video Analytics has sync but no conditional; Image Processing is
// a pure fan-out.
func TestTable1Features(t *testing.T) {
	cases := []struct {
		name       string
		stages     int
		sync, cond bool
	}{
		{"dna-visualization", 1, false, false},
		{"rag-ingestion", 2, false, false},
		{"image-processing", 5, false, false},
		{"text2speech-censoring", 6, true, true},
		{"video-analytics", 6, true, false},
	}
	for _, c := range cases {
		wl, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if wl.DAG.Len() != c.stages {
			t.Errorf("%s: %d stages, want %d", c.name, wl.DAG.Len(), c.stages)
		}
		if got := len(wl.DAG.SyncNodes()) > 0; got != c.sync {
			t.Errorf("%s: sync = %v, want %v", c.name, got, c.sync)
		}
		if got := wl.DAG.HasConditional(); got != c.cond {
			t.Errorf("%s: cond = %v, want %v", c.name, got, c.cond)
		}
	}
}

func TestProfilesCompleteAndPositive(t *testing.T) {
	for _, wl := range All() {
		for _, n := range wl.DAG.Nodes() {
			p := wl.Profile(n)
			for _, class := range Classes() {
				if p.MeanDurationSec[class] <= 0 {
					t.Errorf("%s/%s: non-positive duration for %s", wl.Name, n, class)
				}
			}
			if p.CPUUtil <= 0 || p.CPUUtil > 1 {
				t.Errorf("%s/%s: util %v", wl.Name, n, p.CPUUtil)
			}
			if p.MemoryMB <= 0 {
				t.Errorf("%s/%s: memory %v", wl.Name, n, p.MemoryMB)
			}
		}
		for _, class := range Classes() {
			if wl.EntryBytes[class] <= 0 {
				t.Errorf("%s: entry bytes for %s", wl.Name, class)
			}
			if wl.InputLabel[class] == "" {
				t.Errorf("%s: missing input label for %s", wl.Name, class)
			}
		}
		if wl.ImageBytes <= 0 {
			t.Errorf("%s: image bytes", wl.Name)
		}
		// Terminal stages must declare write-back sizes (storage is
		// pinned at home, §9.1).
		for _, term := range wl.DAG.Terminals() {
			if wl.OutputBytes[term] == nil {
				t.Errorf("%s: terminal %s has no output bytes", wl.Name, term)
			}
		}
	}
}

func TestProfilePanicsOnUnknownNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for unknown node")
		}
	}()
	DNAVisualization().Profile("nope")
}

func TestLargeInputsAreHeavier(t *testing.T) {
	for _, wl := range All() {
		if wl.MeanServiceTimeSec(Large) <= wl.MeanServiceTimeSec(Small) {
			t.Errorf("%s: large not slower than small", wl.Name)
		}
		if wl.TotalEdgeBytes(Large) < wl.TotalEdgeBytes(Small) {
			t.Errorf("%s: large moves less data than small", wl.Name)
		}
	}
}

func TestSampleDurationMeanAndScaling(t *testing.T) {
	wl := DNAVisualization()
	rng := simclock.NewRand(1)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += wl.SampleDuration("visualize", Small, 1.0, rng)
	}
	mean := sum / n
	want := wl.Profile("visualize").MeanDurationSec[Small]
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("sampled mean %.3f, want ~%.3f", mean, want)
	}
	// Performance factor scales linearly.
	var scaled float64
	rng2 := simclock.NewRand(1)
	for i := 0; i < n; i++ {
		scaled += wl.SampleDuration("visualize", Small, 1.5, rng2)
	}
	if r := scaled / sum; math.Abs(r-1.5) > 1e-9 {
		t.Errorf("perf scaling ratio = %v", r)
	}
}

func TestMeanServiceTimeIsCriticalPath(t *testing.T) {
	wl := VideoAnalytics()
	// split + recognize + join (all recognize stages are parallel).
	want := wl.Profile("split").MeanDurationSec[Small] +
		wl.Profile("recognize-a").MeanDurationSec[Small] +
		wl.Profile("join").MeanDurationSec[Small]
	if got := wl.MeanServiceTimeSec(Small); math.Abs(got-want) > 1e-9 {
		t.Errorf("critical path = %v, want %v", got, want)
	}
}

func TestBytesAccessors(t *testing.T) {
	wl := RAGDataIngestion()
	if b := wl.Bytes("extract", "embed", Small); b <= 0 {
		t.Errorf("edge bytes = %v", b)
	}
	if b := wl.Bytes("embed", "extract", Small); b != 0 {
		t.Errorf("reverse edge bytes = %v", b)
	}
}

func TestImageProcessingFanOutStructure(t *testing.T) {
	wl := ImageProcessing()
	out := wl.DAG.Out("ingest")
	if len(out) != 4 {
		t.Fatalf("fan-out = %d", len(out))
	}
	for _, e := range out {
		if len(wl.DAG.Out(e.To)) != 0 {
			t.Errorf("transform %s has successors", e.To)
		}
	}
}

func TestText2SpeechConditionalStructure(t *testing.T) {
	wl := Text2SpeechCensoring()
	var cond []dag.Edge
	for _, e := range wl.DAG.Edges() {
		if e.Conditional {
			cond = append(cond, e)
		}
	}
	if len(cond) != 1 || cond[0].From != "profanity" || cond[0].To != "censor" {
		t.Fatalf("conditional edges = %v", cond)
	}
	if cond[0].Probability != 0.5 {
		t.Errorf("probability = %v", cond[0].Probability)
	}
	if !wl.DAG.IsSync("compress") {
		t.Error("compress should be a sync node")
	}
}

func TestVideoAnalyticsJoinStructure(t *testing.T) {
	wl := VideoAnalytics()
	if got := len(wl.DAG.In("join")); got != 4 {
		t.Errorf("join has %d inputs", got)
	}
	if wl.DAG.Start() != "split" {
		t.Errorf("start = %s", wl.DAG.Start())
	}
}
