package stats

import (
	"math"
	"sort"
)

// Distribution is an empirical distribution over float64 samples with a
// bounded reservoir. The metrics pipeline stores one per (node, region) for
// execution times and one per (region pair, size class) for transmission
// latencies; the Monte Carlo estimator samples from them.
type Distribution struct {
	samples []float64
	sorted  bool
	max     int
	count   int // total observations including evicted ones
	sum     float64
	next    int // ring index once the reservoir is full
}

// DefaultDistributionCap bounds the per-distribution reservoir. The paper's
// Metric Manager keeps at most 5,000 invocations per workflow; individual
// distributions stay well under that.
const DefaultDistributionCap = 2000

// NewDistribution returns an empty distribution holding at most capHint
// samples (DefaultDistributionCap when capHint <= 0).
func NewDistribution(capHint int) *Distribution {
	if capHint <= 0 {
		capHint = DefaultDistributionCap
	}
	return &Distribution{max: capHint}
}

// Add records one observation. Once the reservoir is full the oldest
// observation is replaced (FIFO), mirroring the Metric Manager's selective
// forgetting of stale invocations.
func (d *Distribution) Add(x float64) {
	d.count++
	d.sum += x
	if len(d.samples) < d.max {
		d.samples = append(d.samples, x)
	} else {
		d.samples[d.next] = x
		d.next = (d.next + 1) % d.max
	}
	d.sorted = false
}

// Len reports the number of retained samples.
func (d *Distribution) Len() int { return len(d.samples) }

// Count reports the total number of observations ever recorded.
func (d *Distribution) Count() int { return d.count }

// Mean returns the mean of retained samples (0 when empty).
func (d *Distribution) Mean() float64 { return Mean(d.samples) }

// Percentile returns the p-th percentile of retained samples.
func (d *Distribution) Percentile(p float64) float64 {
	v, err := Percentile(d.samples, p)
	if err != nil {
		return 0
	}
	return v
}

// Sample draws one value by inverse-transform sampling of the empirical
// CDF using u in [0,1). Empty distributions return 0.
func (d *Distribution) Sample(u float64) float64 {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
		d.next = 0 // ring order destroyed by sort; restart FIFO from 0
	}
	return SampleSorted(d.samples, u)
}

// SampleSorted draws one value from an ascending sample slice by
// inverse-transform sampling of its empirical CDF using u in [0,1). It is
// the allocation-free core of Distribution.Sample, exposed so compiled
// evaluation snapshots can sample from baked slices without touching a
// Distribution (whose lazy sort makes Sample unsafe for concurrent use).
// Empty slices return 0.
func SampleSorted(sorted []float64, u float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	rank := u * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// SortedValues returns an ascending copy of the retained samples without
// disturbing the reservoir's insertion order. Snapshot compilation uses
// this to bake distributions into immutable slices shared across
// goroutines.
func (d *Distribution) SortedValues() []float64 {
	out := append([]float64(nil), d.samples...)
	sort.Float64s(out)
	return out
}

// Scale returns a copy of the distribution with every sample multiplied by
// k. The Metric Manager uses this to transplant a home-region execution
// distribution onto a region with a different performance factor.
func (d *Distribution) Scale(k float64) *Distribution {
	out := NewDistribution(d.max)
	for _, s := range d.samples {
		out.Add(s * k)
	}
	return out
}

// Values returns a copy of the retained samples.
func (d *Distribution) Values() []float64 {
	return append([]float64(nil), d.samples...)
}
