package stats

import (
	"math"
	"sort"
	"testing"
)

func TestSampleSortedEdgeCases(t *testing.T) {
	if SampleSorted(nil, 0.5) != 0 {
		t.Error("empty slice should sample 0")
	}
	one := []float64{7}
	for _, u := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if SampleSorted(one, u) != 7 {
			t.Errorf("singleton sample at u=%v: got %v", u, SampleSorted(one, u))
		}
	}
	s := []float64{10, 20, 30}
	if got := SampleSorted(s, 0); got != 10 {
		t.Errorf("u=0: %v, want min", got)
	}
	if got := SampleSorted(s, 1); math.Abs(got-30) > 1e-9 {
		t.Errorf("u=1 clamps to just under max: got %v", got)
	}
	if got := SampleSorted(s, 0.5); got != 20 {
		t.Errorf("median: %v, want 20", got)
	}
	if got := SampleSorted(s, 0.25); math.Abs(got-15) > 1e-12 {
		t.Errorf("interpolation: %v, want 15", got)
	}
}

func TestSampleSortedMatchesDistributionSample(t *testing.T) {
	d := NewDistribution(16)
	for _, v := range []float64{5, 1, 9, 3, 7, 2} {
		d.Add(v)
	}
	sorted := d.SortedValues()
	if !sort.Float64sAreSorted(sorted) {
		t.Fatal("SortedValues not ascending")
	}
	for u := 0.0; u < 1; u += 0.07 {
		if d.Sample(u) != SampleSorted(sorted, u) {
			t.Errorf("u=%v: Sample %v != SampleSorted %v", u, d.Sample(u), SampleSorted(sorted, u))
		}
	}
}

func TestSortedValuesDoesNotDisturbReservoir(t *testing.T) {
	// SortedValues must neither mutate the retained samples nor flip the
	// lazy-sort flag — Values() order must be preserved.
	d := NewDistribution(8)
	for _, v := range []float64{3, 1, 2} {
		d.Add(v)
	}
	before := d.Values()
	s := d.SortedValues()
	s[0] = -99
	after := d.Values()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("reservoir disturbed: %v vs %v", before, after)
		}
	}
}
