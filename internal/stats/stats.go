// Package stats provides the small statistical toolkit shared by the
// metrics pipeline, the Monte Carlo estimator, and the evaluation harness:
// empirical distributions, percentiles, geometric means, and coefficients
// of variation.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when fewer than two
// samples exist.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefficientOfVariation returns stddev/|mean|. It returns +Inf when the
// mean is zero and samples vary, and 0 for constant or empty input. The
// Monte Carlo estimator's stopping rule (§7.1) is defined on this value.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return 0
	}
	if m == 0 {
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// GeometricMean returns the geometric mean of xs. All values must be
// positive; non-positive values yield an error, matching how the paper
// reports multiplicative carbon ratios.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	work := append([]float64(nil), xs...)
	if len(work) == 1 {
		return work[0], nil
	}
	for _, v := range work {
		if math.IsNaN(v) {
			// Selection with < would misplace NaNs; keep the legacy
			// total order (sort.Float64s places NaNs first) exactly.
			sort.Float64s(work)
			break
		}
	}
	rank := p / 100 * float64(len(work)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	selectKth(work, lo)
	if lo == hi {
		return work[lo], nil
	}
	// hi == lo+1, whose order statistic is the minimum of the partition
	// right of lo after selection.
	next := work[hi]
	for _, v := range work[hi+1:] {
		if v < next {
			next = v
		}
	}
	frac := rank - float64(lo)
	return work[lo]*(1-frac) + next*frac, nil
}

// selectKth partially orders a in place so a[k] holds the k-th smallest
// element, everything left of k is ≤ a[k], and everything right is
// ≥ a[k]. Order statistics are exact values, so replacing the former
// full sort changes no Percentile result — it only drops the O(n log n)
// cost from the Monte Carlo summary hot path. Assumes no NaNs (callers
// pre-sort in that case); pivoting is deterministic (median of three).
func selectKth(a []float64, k int) {
	lo, hi := 0, len(a)-1
	for hi-lo > 8 {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// MAPE returns the mean absolute percentage error between forecasts and
// actuals, in percent. Pairs where the actual is zero are skipped.
func MAPE(actual, forecast []float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, errors.New("stats: MAPE length mismatch")
	}
	var sum float64
	var n int
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((actual[i] - forecast[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return sum / float64(n) * 100, nil
}
