// Package stats provides the small statistical toolkit shared by the
// metrics pipeline, the Monte Carlo estimator, and the evaluation harness:
// empirical distributions, percentiles, geometric means, and coefficients
// of variation.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when fewer than two
// samples exist.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanVariance returns Mean(xs) and Variance(xs) in two passes instead of
// the three a separate Mean+Variance call pair costs. The arithmetic is
// identical — Variance's internal mean is the same value — so results are
// bit-equal to calling both functions.
func MeanVariance(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	var sum float64
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return mean, sum / float64(len(xs))
}

// CoefficientOfVariation returns stddev/|mean|. It returns +Inf when the
// mean is zero and samples vary, and 0 for constant or empty input. The
// Monte Carlo estimator's stopping rule (§7.1) is defined on this value.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return 0
	}
	if m == 0 {
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// GeometricMean returns the geometric mean of xs. All values must be
// positive; non-positive values yield an error, matching how the paper
// reports multiplicative carbon ratios.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted and is left
// untouched.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	work := append([]float64(nil), xs...)
	return PercentileInPlace(work, p)
}

// PercentileInPlace is Percentile without the defensive copy: it may
// partially reorder xs (the selection step). Order statistics are exact
// values, so results are identical to Percentile; callers that are done
// reading the series in order — such as the Monte Carlo summarizer —
// use it to keep the copy off the estimate hot path.
func PercentileInPlace(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	work := xs
	if len(work) == 1 {
		return work[0], nil
	}
	rank := p / 100 * float64(len(work)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	frac := rank - float64(lo)
	for _, v := range work {
		if math.IsNaN(v) {
			// Selection with < would misplace NaNs; keep the legacy
			// total order (sort.Float64s places NaNs first) exactly.
			sort.Float64s(work)
			if lo == hi {
				return work[lo], nil
			}
			return work[lo]*(1-frac) + work[hi]*frac, nil
		}
	}
	// High percentiles need only the tail order statistics: ranks lo and
	// lo+1 of n are the (n-lo)-th and (n-lo-1)-th largest. When that tail
	// is small — p95 of a 200-sample Monte Carlo batch needs just the 11
	// largest — a single scan with a bounded sorted tail is several times
	// cheaper than quickselect partitioning and mutates nothing. Order
	// statistics are exact values, so the result is bit-identical.
	if m := len(work) - lo; m <= 24 && m >= 2 {
		vlo, vhi := tailStats(work, m)
		if lo == hi {
			return vlo, nil
		}
		return vlo*(1-frac) + vhi*frac, nil
	}
	selectKth(work, lo)
	if lo == hi {
		return work[lo], nil
	}
	// hi == lo+1, whose order statistic is the minimum of the partition
	// right of lo after selection.
	next := work[hi]
	for _, v := range work[hi+1:] {
		if v < next {
			next = v
		}
	}
	return work[lo]*(1-frac) + next*frac, nil
}

// tailStats returns the m-th and (m-1)-th largest elements of xs (the
// order statistics at ranks len(xs)-m and len(xs)-m+1). It keeps the m
// largest values seen so far in an ascending scratch array: most scanned
// elements fail the single tail[0] comparison, so the expected cost is
// one compare per element plus O(m log(n/m)) insertions. Requires
// 2 <= m <= len(xs) and NaN-free input (callers pre-sort NaN batches).
func tailStats(xs []float64, m int) (float64, float64) {
	var buf [24]float64
	tail := buf[:m]
	copy(tail, xs[:m])
	// Insertion sort of the first m values.
	for i := 1; i < m; i++ {
		for j := i; j > 0 && tail[j] < tail[j-1]; j-- {
			tail[j], tail[j-1] = tail[j-1], tail[j]
		}
	}
	for _, v := range xs[m:] {
		if v <= tail[0] {
			continue
		}
		j := 1
		for j < m && tail[j] < v {
			tail[j-1] = tail[j]
			j++
		}
		tail[j-1] = v
	}
	return tail[0], tail[1]
}

// selectKth partially orders a in place so a[k] holds the k-th smallest
// element, everything left of k is ≤ a[k], and everything right is
// ≥ a[k]. Order statistics are exact values, so replacing the former
// full sort changes no Percentile result — it only drops the O(n log n)
// cost from the Monte Carlo summary hot path. Assumes no NaNs (callers
// pre-sort in that case); pivoting is deterministic (median of three).
func selectKth(a []float64, k int) {
	lo, hi := 0, len(a)-1
	for hi-lo > 8 {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// MAPE returns the mean absolute percentage error between forecasts and
// actuals, in percent. Pairs where the actual is zero are skipped.
func MAPE(actual, forecast []float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, errors.New("stats: MAPE length mismatch")
	}
	var sum float64
	var n int
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((actual[i] - forecast[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return sum / float64(n) * 100, nil
}
