// Package stats provides the small statistical toolkit shared by the
// metrics pipeline, the Monte Carlo estimator, and the evaluation harness:
// empirical distributions, percentiles, geometric means, and coefficients
// of variation.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when fewer than two
// samples exist.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefficientOfVariation returns stddev/|mean|. It returns +Inf when the
// mean is zero and samples vary, and 0 for constant or empty input. The
// Monte Carlo estimator's stopping rule (§7.1) is defined on this value.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return 0
	}
	if m == 0 {
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// GeometricMean returns the geometric mean of xs. All values must be
// positive; non-positive values yield an error, matching how the paper
// reports multiplicative carbon ratios.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MAPE returns the mean absolute percentage error between forecasts and
// actuals, in percent. Pairs where the actual is zero are skipped.
func MAPE(actual, forecast []float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, errors.New("stats: MAPE length mismatch")
	}
	var sum float64
	var n int
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((actual[i] - forecast[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return sum / float64(n) * 100, nil
}
