package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("variance = %v, want 4", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Errorf("stddev = %v, want 2", sd)
	}
}

func TestMeanEmptyAndSingle(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("variance of single should be 0")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := CoefficientOfVariation([]float64{3, 3, 3}); cv != 0 {
		t.Errorf("constant CV = %v", cv)
	}
	if cv := CoefficientOfVariation([]float64{-1, 1}); !math.IsInf(cv, 1) {
		t.Errorf("zero-mean varying CV = %v, want +Inf", cv)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if cv := CoefficientOfVariation(xs); math.Abs(cv-0.4) > 1e-12 {
		t.Errorf("CV = %v, want 0.4", cv)
	}
}

func TestGeometricMean(t *testing.T) {
	g, err := GeometricMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean = %v, want 4", g)
	}
	if _, err := GeometricMean(nil); err == nil {
		t.Error("want error on empty")
	}
	if _, err := GeometricMean([]float64{1, 0}); err == nil {
		t.Error("want error on zero value")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("want error on empty")
	}
	if v, _ := Percentile([]float64{7}, 95); v != 7 {
		t.Errorf("single-sample p95 = %v", v)
	}
	// Out-of-range p clamps.
	if v, _ := Percentile(xs, -5); v != 15 {
		t.Errorf("p-5 = %v, want min", v)
	}
	if v, _ := Percentile(xs, 150); v != 50 {
		t.Errorf("p150 = %v, want max", v)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

// The NaN fallback keeps the legacy total order: sort.Float64s places
// NaNs before every number, so low percentiles land on NaN and high ones
// interpolate over the numeric tail exactly as the pre-quickselect
// implementation did.
func TestPercentileNaNFallback(t *testing.T) {
	nan := math.NaN()
	xs := []float64{nan, 3, 1, 2} // sorts to [NaN, 1, 2, 3]
	if v, err := Percentile(xs, 0); err != nil || !math.IsNaN(v) {
		t.Errorf("p0 = %v, %v; want NaN", v, err)
	}
	if v, _ := Percentile(xs, 50); math.Abs(v-1.5) > 1e-9 {
		t.Errorf("p50 = %v, want 1.5", v)
	}
	if v, _ := Percentile(xs, 100); v != 3 {
		t.Errorf("p100 = %v, want 3", v)
	}
	// Input with NaNs must survive untouched too.
	if !math.IsNaN(xs[0]) || xs[1] != 3 || xs[2] != 1 || xs[3] != 2 {
		t.Errorf("input mutated: %v", xs)
	}

	// Cross-check the fallback against a reference full-sort
	// implementation over several NaN placements and ranks.
	ref := func(in []float64, p float64) float64 {
		w := append([]float64(nil), in...)
		sort.Float64s(w)
		rank := p / 100 * float64(len(w)-1)
		lo, hi := int(math.Floor(rank)), int(math.Ceil(rank))
		if lo == hi {
			return w[lo]
		}
		return w[lo] + (rank-float64(lo))*(w[hi]-w[lo])
	}
	cases := [][]float64{
		{nan, 5},
		{5, nan, nan},
		{9, nan, 4, 7, nan, 1, 8},
		{nan, nan, nan, 2},
	}
	for _, in := range cases {
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 100} {
			got, err := Percentile(in, p)
			if err != nil {
				t.Fatalf("Percentile(%v, %v): %v", in, p, err)
			}
			want := ref(in, p)
			if math.IsNaN(want) {
				if !math.IsNaN(got) {
					t.Errorf("Percentile(%v, %v) = %v, want NaN", in, p, got)
				}
				continue
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("Percentile(%v, %v) = %v, want %v", in, p, got, want)
			}
		}
	}
}

func TestQuickPercentileWithinBounds(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(p8) / 255 * 100
		v, err := Percentile(xs, p)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v >= sorted[0] && v <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{100, 200}, []float64{110, 180})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("MAPE = %v, want 10", got)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("want length-mismatch error")
	}
	if _, err := MAPE([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("want error when all actuals are zero")
	}
	// Zero actuals are skipped, not fatal.
	got, err = MAPE([]float64{0, 100}, []float64{5, 90})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("MAPE with skipped zero = %v, want 10", got)
	}
}

func TestDistributionFIFOEviction(t *testing.T) {
	d := NewDistribution(3)
	for _, v := range []float64{1, 2, 3} {
		d.Add(v)
	}
	d.Add(4) // evicts 1
	vals := d.Values()
	if len(vals) != 3 {
		t.Fatalf("len = %d", len(vals))
	}
	for _, v := range vals {
		if v == 1 {
			t.Error("oldest sample not evicted")
		}
	}
	if d.Count() != 4 {
		t.Errorf("count = %d, want 4", d.Count())
	}
}

func TestDistributionSampleBoundsAndMonotonic(t *testing.T) {
	d := NewDistribution(0)
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if v := d.Sample(0); v != 1 {
		t.Errorf("sample(0) = %v, want 1", v)
	}
	if v := d.Sample(0.999999); math.Abs(v-100) > 0.01 {
		t.Errorf("sample(~1) = %v, want ~100", v)
	}
	prev := -math.MaxFloat64
	for u := 0.0; u < 1; u += 0.01 {
		v := d.Sample(u)
		if v < prev {
			t.Fatalf("sample not monotone at u=%v: %v < %v", u, v, prev)
		}
		prev = v
	}
}

func TestDistributionEmptySample(t *testing.T) {
	d := NewDistribution(0)
	if v := d.Sample(0.5); v != 0 {
		t.Errorf("empty sample = %v", v)
	}
	if d.Mean() != 0 || d.Percentile(95) != 0 {
		t.Error("empty stats should be 0")
	}
}

func TestDistributionScale(t *testing.T) {
	d := NewDistribution(0)
	d.Add(2)
	d.Add(4)
	s := d.Scale(1.5)
	if m := s.Mean(); math.Abs(m-4.5) > 1e-9 {
		t.Errorf("scaled mean = %v, want 4.5", m)
	}
	if m := d.Mean(); m != 3 {
		t.Errorf("original mutated: %v", m)
	}
}

func TestQuickDistributionSampleWithinRange(t *testing.T) {
	f := func(raw []float64, u8 uint8) bool {
		d := NewDistribution(0)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			d.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if d.Len() == 0 {
			return d.Sample(0.5) == 0
		}
		v := d.Sample(float64(u8) / 256)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
