// Package netmodel models inter-region network behaviour: round-trip
// times, one-way transmission latency for a payload, and per-flow
// bandwidth. It stands in for the CloudPing latency grid the paper's
// Metric Manager consults when no historical data exists: RTTs derive from
// great-circle distance with realistic fiber-route inflation and were
// checked against public CloudPing values for the NA region pairs.
package netmodel

import (
	"fmt"
	"time"

	"caribou/internal/region"
	"caribou/internal/simclock"
)

// Model computes network metrics over a region catalogue.
type Model struct {
	cat *region.Catalogue
}

// Speed/shape constants for the synthetic network.
const (
	// fiberKmPerMs is the one-way propagation speed in fiber
	// (~2/3 of c).
	fiberKmPerMs = 200.0
	// routeInflation accounts for non-great-circle fiber paths and
	// router hops.
	routeInflation = 1.35
	// baseOverheadMs is the fixed per-round-trip processing overhead.
	baseOverheadMs = 4.0
	// intraRTTMs is the round-trip time within one region.
	intraRTTMs = 1.2
	// jitterSigma is the lognormal sigma applied when sampling.
	jitterSigma = 0.10

	// Per-flow bandwidths. Inter-region flows ride shared backbone
	// links; intra-region flows stay inside the datacenter fabric.
	intraBandwidthBytesPerSec = 300e6
	interBandwidthBytesPerSec = 80e6
)

// New returns a model over the catalogue.
func New(cat *region.Catalogue) *Model { return &Model{cat: cat} }

// RTT returns the mean round-trip time between two regions.
func (m *Model) RTT(a, b region.ID) (time.Duration, error) {
	ra, ok := m.cat.Get(a)
	if !ok {
		return 0, fmt.Errorf("netmodel: unknown region %q", a)
	}
	rb, ok := m.cat.Get(b)
	if !ok {
		return 0, fmt.Errorf("netmodel: unknown region %q", b)
	}
	if a == b {
		return time.Duration(intraRTTMs * float64(time.Millisecond)), nil
	}
	distKm := region.DistanceKm(ra, rb)
	ms := 2*distKm/fiberKmPerMs*routeInflation + baseOverheadMs
	return time.Duration(ms * float64(time.Millisecond)), nil
}

// SampleRTT draws one RTT observation with lognormal jitter.
func (m *Model) SampleRTT(a, b region.ID, rng *simclock.Rand) (time.Duration, error) {
	mean, err := m.RTT(a, b)
	if err != nil {
		return 0, err
	}
	jitter := rng.LogNormal(0, jitterSigma)
	return time.Duration(float64(mean) * jitter), nil
}

// MustRTTSeconds returns the mean RTT in seconds, substituting a small
// default for unknown regions. Convenience for modeling layers that have
// already validated their regions.
func (m *Model) MustRTTSeconds(a, b region.ID) float64 {
	d, err := m.RTT(a, b)
	if err != nil {
		return 0.001
	}
	return d.Seconds()
}

// Bandwidth returns the per-flow bandwidth between two regions in
// bytes per second.
func (m *Model) Bandwidth(a, b region.ID) float64 {
	if a == b {
		return intraBandwidthBytesPerSec
	}
	return interBandwidthBytesPerSec
}

// TransferTime returns the mean one-way time to deliver a payload of the
// given size from a to b: half an RTT of propagation plus serialization at
// the per-flow bandwidth.
func (m *Model) TransferTime(a, b region.ID, bytes float64) (time.Duration, error) {
	rtt, err := m.RTT(a, b)
	if err != nil {
		return 0, err
	}
	if bytes < 0 {
		bytes = 0
	}
	ser := bytes / m.Bandwidth(a, b)
	return rtt/2 + time.Duration(ser*float64(time.Second)), nil
}

// SampleTransferTime draws one one-way delivery time with jitter.
func (m *Model) SampleTransferTime(a, b region.ID, bytes float64, rng *simclock.Rand) (time.Duration, error) {
	mean, err := m.TransferTime(a, b, bytes)
	if err != nil {
		return 0, err
	}
	jitter := rng.LogNormal(0, jitterSigma)
	return time.Duration(float64(mean) * jitter), nil
}
