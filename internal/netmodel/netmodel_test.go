package netmodel

import (
	"testing"
	"testing/quick"
	"time"

	"caribou/internal/region"
	"caribou/internal/simclock"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	return New(region.NorthAmerica())
}

func TestRTTIntraRegion(t *testing.T) {
	m := newModel(t)
	d, err := m.RTT(region.USEast1, region.USEast1)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 5*time.Millisecond {
		t.Errorf("intra RTT = %v", d)
	}
}

func TestRTTCrossCountryPlausible(t *testing.T) {
	m := newModel(t)
	d, err := m.RTT(region.USEast1, region.USWest1)
	if err != nil {
		t.Fatal(err)
	}
	// CloudPing reports roughly 60-70 ms for this pair.
	if d < 40*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("us-east-1..us-west-1 RTT = %v, want 40-100 ms", d)
	}
	near, err := m.RTT(region.USEast1, region.USEast2)
	if err != nil {
		t.Fatal(err)
	}
	if near >= d {
		t.Errorf("nearby pair RTT (%v) should beat cross-country (%v)", near, d)
	}
}

func TestRTTSymmetric(t *testing.T) {
	m := newModel(t)
	ids := region.NorthAmerica().IDs()
	for _, a := range ids {
		for _, b := range ids {
			ab, err1 := m.RTT(a, b)
			ba, err2 := m.RTT(b, a)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if ab != ba {
				t.Errorf("RTT(%s,%s)=%v != RTT(%s,%s)=%v", a, b, ab, b, a, ba)
			}
		}
	}
}

func TestRTTUnknownRegion(t *testing.T) {
	m := newModel(t)
	if _, err := m.RTT("aws:nowhere", region.USEast1); err == nil {
		t.Error("want error for unknown source")
	}
	if _, err := m.RTT(region.USEast1, "aws:nowhere"); err == nil {
		t.Error("want error for unknown destination")
	}
	if s := m.MustRTTSeconds("aws:nowhere", region.USEast1); s <= 0 {
		t.Errorf("MustRTTSeconds fallback = %v", s)
	}
}

func TestTransferTimeIncludesSerialization(t *testing.T) {
	m := newModel(t)
	small, err := m.TransferTime(region.USEast1, region.USWest2, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := m.TransferTime(region.USEast1, region.USWest2, 800e6)
	if err != nil {
		t.Fatal(err)
	}
	// 800 MB at 80 MB/s is 10 s of serialization.
	if big-small < 9*time.Second {
		t.Errorf("big transfer %v vs small %v: serialization missing", big, small)
	}
}

func TestBandwidthIntraVsInter(t *testing.T) {
	m := newModel(t)
	if m.Bandwidth(region.USEast1, region.USEast1) <= m.Bandwidth(region.USEast1, region.USWest2) {
		t.Error("intra-region bandwidth should exceed inter-region")
	}
}

func TestQuickTransferTimeMonotonicInBytes(t *testing.T) {
	m := newModel(t)
	f := func(b32 uint32) bool {
		b := float64(b32)
		t1, err1 := m.TransferTime(region.USEast1, region.CACentral1, b)
		t2, err2 := m.TransferTime(region.USEast1, region.CACentral1, b+1e6)
		return err1 == nil && err2 == nil && t2 >= t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeBytesClamp(t *testing.T) {
	m := newModel(t)
	d, err := m.TransferTime(region.USEast1, region.USWest2, -100)
	if err != nil {
		t.Fatal(err)
	}
	rtt, _ := m.RTT(region.USEast1, region.USWest2)
	if d != rtt/2 {
		t.Errorf("negative bytes: %v, want half RTT %v", d, rtt/2)
	}
}

func TestSamplingJitterStaysPositiveAndNearMean(t *testing.T) {
	m := newModel(t)
	rng := simclock.NewRand(1)
	mean, _ := m.RTT(region.USEast1, region.USWest1)
	var sum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		s, err := m.SampleRTT(region.USEast1, region.USWest1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if s <= 0 {
			t.Fatalf("non-positive sampled RTT %v", s)
		}
		sum += s
	}
	avg := sum / n
	if avg < mean*9/10 || avg > mean*11/10 {
		t.Errorf("sampled mean %v too far from %v", avg, mean)
	}
	st, err := m.SampleTransferTime(region.USEast1, region.USWest1, 1e6, rng)
	if err != nil || st <= 0 {
		t.Errorf("sampled transfer time %v err %v", st, err)
	}
}
