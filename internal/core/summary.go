package core

import (
	"fmt"
	"math"

	"caribou/internal/carbon"
	"caribou/internal/platform"
	"caribou/internal/stats"
)

// Summary aggregates per-invocation metrics of an experiment run under one
// transmission-carbon accounting model.
type Summary struct {
	Invocations int
	Succeeded   int
	// Carbon in grams CO2-eq per invocation.
	MeanCarbonG     float64
	MeanExecCarbonG float64
	MeanTxCarbonG   float64
	TotalCarbonG    float64
	// OverheadCarbonG is framework carbon (solves, migrations) amortized
	// into TotalCarbonG when added via AddOverhead.
	OverheadCarbonG float64
	MeanCostUSD     float64
	MeanServiceSec  float64
	P95ServiceSec   float64
}

// Summarize accounts the records under the given transmission model.
// Records are re-accounted, not re-simulated, so one run can be summarized
// under both the best- and worst-case scenarios (§9.1 step 4).
func (e *Env) Summarize(records []*platform.InvocationRecord, tx carbon.TransmissionModel) (Summary, error) {
	var s Summary
	if len(records) == 0 {
		return s, fmt.Errorf("core: no records to summarize")
	}
	var svc []float64
	for _, r := range records {
		s.Invocations++
		if r.Succeeded {
			s.Succeeded++
		}
		execG, txG, err := r.CarbonGrams(e.Carbon, e.Cat, tx)
		if err != nil {
			return s, err
		}
		s.MeanExecCarbonG += execG
		s.MeanTxCarbonG += txG
		s.MeanCostUSD += r.CostUSD(e.Book)
		svc = append(svc, r.ServiceTime().Seconds())
	}
	n := float64(s.Invocations)
	s.MeanExecCarbonG /= n
	s.MeanTxCarbonG /= n
	s.MeanCarbonG = s.MeanExecCarbonG + s.MeanTxCarbonG
	s.TotalCarbonG = s.MeanCarbonG * n
	s.MeanCostUSD /= n
	s.MeanServiceSec = stats.Mean(svc)
	p95, err := stats.Percentile(svc, 95)
	if err != nil {
		return s, err
	}
	s.P95ServiceSec = p95
	return s, nil
}

// AddOverhead folds framework carbon overhead (plan generation,
// migration) into the summary's totals and per-invocation mean.
func (s *Summary) AddOverhead(grams float64) {
	if s.Invocations == 0 || grams <= 0 {
		return
	}
	s.OverheadCarbonG = grams
	s.TotalCarbonG += grams
	s.MeanCarbonG = s.TotalCarbonG / float64(s.Invocations)
}

// ExecToTxRatio returns the execution-to-transmission carbon ratio
// (Fig 8's x-axis). It returns +Inf when no transmission carbon accrued.
func (s Summary) ExecToTxRatio() float64 {
	if s.MeanTxCarbonG == 0 {
		return math.Inf(1)
	}
	return s.MeanExecCarbonG / s.MeanTxCarbonG
}
