package core

import (
	"testing"
	"time"

	"caribou/internal/dag"
	"caribou/internal/executor"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/workloads"
)

// TestAdaptiveSurvivesRolloutFailures injects deployment failures into the
// adaptive loop: while every cross-region deployment fails, all traffic
// must keep flowing through the home fallback with zero lost invocations;
// once the failure clears, the staged rollout retries and offloading
// resumes (§6.1).
func TestAdaptiveSurvivesRolloutFailures(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed:    13,
		Start:   evalStart,
		End:     evalStart.Add(4 * 24 * time.Hour),
		Regions: region.EvaluationFour(),
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := env.NewApp(AppConfig{
		Workload: workloads.Text2SpeechCensoring(),
		Home:     region.USEast1,
		Mode:     executor.ModeCaribou,
		Adaptive: true,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// All cross-region deployments fail for the first two days.
	failing := true
	app.Deployer.FailDeploy = func(_ dag.NodeID, r region.ID) bool {
		return failing && r != region.USEast1
	}
	env.Sched.At(evalStart.Add(48*time.Hour), func() { failing = false })

	const perDay = 200
	app.ScheduleUniform(evalStart, 4*perDay, 24*time.Hour/perDay, workloads.Small)
	app.ScheduleManagerTicks(time.Hour)
	env.Run()

	if got := len(app.Records); got != 4*perDay {
		t.Fatalf("completed %d of %d invocations", got, 4*perDay)
	}
	var failedPhaseRemote, laterRemote int
	for _, r := range app.Records {
		if !r.Succeeded {
			t.Fatalf("invocation %d failed", r.ID)
		}
		for _, e := range r.Executions {
			if e.Region != region.USEast1 {
				if r.End.Before(evalStart.Add(48 * time.Hour)) {
					failedPhaseRemote++
				} else {
					laterRemote++
				}
			}
		}
	}
	if failedPhaseRemote != 0 {
		t.Errorf("%d stage executions left home while rollouts were failing", failedPhaseRemote)
	}
	if laterRemote == 0 {
		t.Error("offloading never resumed after failures cleared")
	}
	_, failed, _ := app.Deployer.Stats()
	if failed == 0 {
		t.Error("no failed rollouts recorded despite injection")
	}
}

// TestSummaryAccounting sanity-checks the Summary helpers on a real run.
func TestSummaryAccounting(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed:    3,
		Start:   evalStart,
		End:     evalStart.Add(24 * time.Hour),
		Regions: region.EvaluationFour(),
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := env.NewApp(AppConfig{
		Workload: workloads.RAGDataIngestion(),
		Home:     region.USEast1,
		Mode:     executor.ModeCaribou,
	})
	if err != nil {
		t.Fatal(err)
	}
	app.ScheduleUniform(evalStart, 50, 20*time.Minute, workloads.Large)
	env.Run()

	sum, err := env.Summarize(app.Records, cbBest())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Invocations != 50 || sum.Succeeded != 50 {
		t.Fatalf("summary counts: %+v", sum)
	}
	if sum.MeanCarbonG != sum.MeanExecCarbonG+sum.MeanTxCarbonG {
		t.Error("carbon components do not add up")
	}
	if sum.TotalCarbonG <= 0 || sum.MeanCostUSD <= 0 {
		t.Error("missing totals")
	}
	if sum.ExecToTxRatio() <= 0 {
		t.Error("ratio must be positive")
	}
	before := sum.TotalCarbonG
	sum.AddOverhead(1.5)
	if sum.TotalCarbonG != before+1.5 || sum.OverheadCarbonG != 1.5 {
		t.Error("overhead folding broken")
	}
	if _, err := env.Summarize(nil, cbBest()); err == nil {
		t.Error("want error for empty record set")
	}
}
