// Package core wires Caribou together: it assembles the simulated cloud
// environment (regions, grid carbon, network, prices, platform) and, per
// workflow, the full control loop of Fig 4 — executor, Metric Manager,
// Monte Carlo estimator, Deployment Solver, Deployment Manager, and
// Deployment Utility/Migrator. The evaluation harness and the public API
// both build on this package.
package core

import (
	"fmt"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/deployer"
	"caribou/internal/executor"
	"caribou/internal/manager"
	"caribou/internal/metrics"
	"caribou/internal/montecarlo"
	"caribou/internal/netmodel"
	"caribou/internal/platform"
	"caribou/internal/pricing"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/solver"
	"caribou/internal/trace"
	"caribou/internal/workloads"
)

// EnvConfig configures a simulated environment.
type EnvConfig struct {
	Seed int64
	// Start and End bound the experiment window. The carbon source is
	// materialized with enough margin for forecaster training (one week
	// before Start) and post-window forecasting.
	Start, End time.Time
	// Regions restricts the catalogue (defaults to all NA regions).
	Regions []region.ID
}

// Env is one simulated cloud environment on a shared virtual clock.
type Env struct {
	Seed     int64
	Start    time.Time
	End      time.Time
	Sched    *simclock.Scheduler
	Cat      *region.Catalogue
	Carbon   *carbon.SyntheticSource
	Net      *netmodel.Model
	Book     *pricing.Book
	Platform *platform.Platform
}

// NewEnv builds an environment starting its clock at cfg.Start.
func NewEnv(cfg EnvConfig) (*Env, error) {
	if !cfg.End.After(cfg.Start) {
		return nil, fmt.Errorf("core: End %v not after Start %v", cfg.End, cfg.Start)
	}
	// The global catalogue is the superset; the default environment is
	// the six North American regions, matching the paper's setting.
	base := region.Global()
	ids := cfg.Regions
	if len(ids) == 0 {
		ids = region.NorthAmerica().IDs()
	}
	cat, err := base.Subset(ids)
	if err != nil {
		return nil, err
	}
	// Traces come from the shared cache: environments with the same
	// (seed, window) — e.g. the dozens of independent runs of one figure
	// sweep — share one immutable source instead of re-synthesizing it.
	src, err := carbon.SharedSource(cfg.Seed, cfg.Start.Add(-8*24*time.Hour), cfg.End.Add(2*24*time.Hour))
	if err != nil {
		return nil, err
	}
	sched := simclock.New(cfg.Start)
	net := netmodel.New(cat)
	p, err := platform.New(platform.Options{Sched: sched, Catalogue: cat, Net: net, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &Env{
		Seed: cfg.Seed, Start: cfg.Start, End: cfg.End,
		Sched: sched, Cat: cat, Carbon: src, Net: net,
		Book: pricing.DefaultBook(), Platform: p,
	}, nil
}

// Run drives the virtual clock to the environment's end time.
func (e *Env) Run() { e.Sched.RunUntil(e.End) }

// RunUntil drives the virtual clock to t.
func (e *Env) RunUntil(t time.Time) { e.Sched.RunUntil(t) }

// AppConfig configures one managed workflow in an environment.
type AppConfig struct {
	Workload *workloads.Workload
	Home     region.ID
	Mode     executor.Mode
	// Objective is the developer's priority and tolerances (§8).
	Objective solver.Objective
	// Constraint is the workflow-level compliance constraint.
	Constraint region.Constraint
	// Regions restricts solver candidates (defaults to the catalogue).
	Regions []region.ID
	// Tx selects the transmission-carbon model used for policy
	// decisions (the evaluation accounts records under both scenarios
	// regardless).
	Tx carbon.TransmissionModel
	// Adaptive enables the Deployment Manager control loop; otherwise
	// plans are set manually via SetStaticPlans/UseHomeOnly.
	Adaptive bool
	Manager  manager.Config
	// BenchFraction overrides the 10 % benchmarking traffic share.
	BenchFraction float64
	Seed          int64
}

// App is one fully wired workflow.
type App struct {
	Env       *Env
	Workload  *workloads.Workload
	Home      region.ID
	Engine    *executor.Engine
	Metrics   *metrics.Manager
	Estimator *montecarlo.Estimator
	Solver    *solver.Solver
	Deployer  *deployer.Deployer
	Manager   *manager.Manager
	Records   []*platform.InvocationRecord
	// InvokeErrors counts scheduling-time invocation failures.
	InvokeErrors int
}

// NewApp wires a workflow into the environment and performs the initial
// home-region deployment.
func (e *Env) NewApp(cfg AppConfig) (*App, error) {
	return e.NewAppWithCarbon(cfg, e.Carbon)
}

// NewAppWithCarbon is NewApp with an alternative carbon-intensity signal
// feeding the Metric Manager (e.g. a marginal-intensity source for the
// ACI-vs-MCI sensitivity study). Record accounting still uses the
// environment's average-intensity source, matching how MCI-driven
// decisions are evaluated against measurable average carbon.
func (e *Env) NewAppWithCarbon(cfg AppConfig, src carbon.Source) (*App, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("core: Workload is required")
	}
	if cfg.Home == "" {
		cfg.Home = region.USEast1
	}
	if cfg.Tx == (carbon.TransmissionModel{}) {
		cfg.Tx = carbon.BestCase()
	}
	if src == nil {
		src = e.Carbon
	}
	app := &App{Env: e, Workload: cfg.Workload, Home: cfg.Home}

	mm := metrics.New(cfg.Workload.DAG, cfg.Home, e.Cat, e.Net, src, e.Book)
	app.Metrics = mm

	eng, err := executor.New(executor.Options{
		Platform: e.Platform,
		Workload: cfg.Workload,
		Home:     cfg.Home,
		Mode:     cfg.Mode,
		// Plan source wired below (deployer for adaptive apps).
		BenchFraction: cfg.BenchFraction,
		Seed:          seedOr(cfg.Seed, e.Seed),
		OnComplete: func(r *platform.InvocationRecord) {
			app.Records = append(app.Records, r)
			mm.Ingest(r)
		},
	})
	if err != nil {
		return nil, err
	}
	app.Engine = eng

	app.Estimator = montecarlo.New(mm, cfg.Tx, seedOr(cfg.Seed, e.Seed))
	app.Solver, err = solver.New(solver.Config{
		Inputs:     mm,
		Estimator:  app.Estimator,
		Objective:  cfg.Objective,
		Constraint: cfg.Constraint,
		Regions:    cfg.Regions,
		Seed:       seedOr(cfg.Seed, e.Seed),
	})
	if err != nil {
		return nil, err
	}

	app.Deployer = deployer.New(eng, e.Platform)
	if err := app.Deployer.InitialDeploy(); err != nil {
		return nil, err
	}

	if cfg.Adaptive {
		app.Manager = manager.New(cfg.Manager, mm, app.Solver, app.Deployer, cfg.Home, e.Sched.Now())
		eng.SetPlans(app.Deployer)
	}
	return app, nil
}

func seedOr(s, fallback int64) int64 {
	if s != 0 {
		return s
	}
	return fallback
}

// SetStaticPlans routes traffic per a fixed hourly plan set. The caller
// must have deployed the referenced regions (DeployPlanRegions).
func (a *App) SetStaticPlans(plans dag.HourlyPlans) {
	a.Engine.SetPlans(executor.StaticPlans{Hourly: plans})
}

// UseHomeOnly pins all traffic to the home region.
func (a *App) UseHomeOnly() { a.Engine.SetPlans(executor.HomeOnly{}) }

// DeployPlanRegions ensures deployments exist for every assignment in the
// plan set, returning migrated image bytes.
func (a *App) DeployPlanRegions(plans dag.HourlyPlans) (float64, error) {
	var moved float64
	for _, plan := range plans {
		// Sorted stage order keeps deployment side effects and the
		// byte accounting independent of map iteration order.
		for _, node := range plan.SortedNodes() {
			b, err := a.Engine.EnsureDeployment(node, plan[node])
			if err != nil {
				return moved, err
			}
			moved += b
		}
	}
	return moved, nil
}

// ScheduleTrace schedules one invocation per trace event.
func (a *App) ScheduleTrace(events []trace.Event) {
	for _, ev := range events {
		class := workloads.Small
		if ev.Large {
			class = workloads.Large
		}
		a.Engine.InvokeAt(ev.At, class, func(error) { a.InvokeErrors++ })
	}
}

// ScheduleUniform schedules n invocations of class spaced by gap,
// starting at start.
func (a *App) ScheduleUniform(start time.Time, n int, gap time.Duration, class workloads.InputClass) {
	for i := 0; i < n; i++ {
		a.Engine.InvokeAt(start.Add(time.Duration(i)*gap), class, func(error) { a.InvokeErrors++ })
	}
}

// ScheduleManagerTicks drives the Deployment Manager's token checks at
// the given cadence until the environment's end.
func (a *App) ScheduleManagerTicks(interval time.Duration) {
	if a.Manager == nil {
		return
	}
	var tick func()
	tick = func() {
		now := a.Env.Sched.Now()
		if !now.Before(a.Env.End) {
			return
		}
		if _, err := a.Manager.Tick(now); err != nil {
			// Solve/rollout failures leave the home fallback active;
			// the loop keeps running.
			_ = err
		}
		a.Env.Sched.After(interval, tick)
	}
	a.Env.Sched.After(interval, tick)
}
