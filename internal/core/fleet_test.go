package core

import (
	"testing"
	"time"

	"caribou/internal/dag"
	"caribou/internal/executor"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/trace"
	"caribou/internal/workloads"
)

func TestFleetManagesMultipleWorkflows(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed:    9,
		Start:   evalStart,
		End:     evalStart.Add(3 * 24 * time.Hour),
		Regions: region.EvaluationFour(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(env)
	var apps []*App
	for _, wl := range []*workloads.Workload{
		workloads.Text2SpeechCensoring(),
		workloads.RAGDataIngestion(),
	} {
		app, err := env.NewApp(AppConfig{
			Workload: wl,
			Home:     region.USEast1,
			Mode:     executor.ModeCaribou,
			Adaptive: true,
			Objective: solver.Objective{
				Priority:   solver.PriorityCarbon,
				Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Add(app); err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
		const perDay = 150
		app.ScheduleUniform(evalStart, 3*perDay, 24*time.Hour/perDay, workloads.Small)
	}
	fleet.ScheduleTicks(time.Hour)
	env.Run()

	if fleet.TotalSolves() < 2 {
		t.Errorf("fleet solves = %d, want at least one per workflow", fleet.TotalSolves())
	}
	if fleet.TotalOverheadGrams() <= 0 {
		t.Error("fleet overhead not accounted")
	}
	for _, app := range apps {
		if len(app.Records) < 3*150*9/10 {
			t.Errorf("%s completed %d invocations", app.Workload.Name, len(app.Records))
		}
		for _, r := range app.Records {
			if !r.Succeeded {
				t.Fatalf("%s invocation %d failed", app.Workload.Name, r.ID)
			}
		}
	}
	if len(fleet.Apps()) != 2 {
		t.Errorf("fleet size = %d", len(fleet.Apps()))
	}
}

func TestFleetRejectsNonAdaptiveApps(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed: 1, Start: evalStart, End: evalStart.Add(24 * time.Hour),
		Regions: region.EvaluationFour(),
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := env.NewApp(AppConfig{
		Workload: workloads.DNAVisualization(),
		Home:     region.USEast1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(env)
	if err := fleet.Add(app); err == nil {
		t.Error("non-adaptive app accepted")
	}
	if err := fleet.Add(nil); err == nil {
		t.Error("nil app accepted")
	}

	env2, err := NewEnv(EnvConfig{
		Seed: 2, Start: evalStart, End: evalStart.Add(24 * time.Hour),
		Regions: region.EvaluationFour(),
	})
	if err != nil {
		t.Fatal(err)
	}
	app2, err := env2.NewApp(AppConfig{
		Workload: workloads.DNAVisualization(),
		Home:     region.USEast1,
		Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Add(app2); err == nil {
		t.Error("cross-environment app accepted")
	}
}

func TestScheduleTraceAndStaticPlanHelpers(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed: 21, Start: evalStart, End: evalStart.Add(24 * time.Hour),
		Regions: region.EvaluationFour(),
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := env.NewApp(AppConfig{
		Workload: workloads.DNAVisualization(),
		Home:     region.USEast1,
		Mode:     executor.ModeCaribou,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.Generate(trace.Uniform(96), evalStart, env.End, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Mix of small and large classes from the trace.
	app.ScheduleTrace(events)

	// Route through a static plan in ca-central-1, then back home.
	plan := dag.NewHomePlan(app.Workload.DAG, region.CACentral1)
	if _, err := app.DeployPlanRegions(dag.Uniform(plan)); err != nil {
		t.Fatal(err)
	}
	app.SetStaticPlans(dag.Uniform(plan))
	env.RunUntil(evalStart.Add(12 * time.Hour))
	app.UseHomeOnly()
	env.Run()

	if len(app.Records) < len(events)*9/10 {
		t.Fatalf("completed %d of %d", len(app.Records), len(events))
	}
	sawRemote, sawHomeAfter := false, false
	for _, r := range app.Records {
		for _, e := range r.Executions {
			if e.Region == region.CACentral1 {
				sawRemote = true
			}
			if e.Region == region.USEast1 && r.End.After(evalStart.Add(13*time.Hour)) {
				sawHomeAfter = true
			}
		}
	}
	if !sawRemote {
		t.Error("static plan never routed to ca-central-1")
	}
	if !sawHomeAfter {
		t.Error("UseHomeOnly did not take effect")
	}
	if app.InvokeErrors != 0 {
		t.Errorf("invoke errors: %d", app.InvokeErrors)
	}
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(EnvConfig{Start: evalStart, End: evalStart}); err == nil {
		t.Error("want error when End is not after Start")
	}
	if _, err := NewEnv(EnvConfig{Start: evalStart, End: evalStart.Add(time.Hour), Regions: []region.ID{"aws:nowhere"}}); err == nil {
		t.Error("want error for unknown region")
	}
}

func TestNewAppValidation(t *testing.T) {
	env, err := NewEnv(EnvConfig{Seed: 1, Start: evalStart, End: evalStart.Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.NewApp(AppConfig{}); err == nil {
		t.Error("want error without workload")
	}
	if _, err := env.NewApp(AppConfig{Workload: workloads.DNAVisualization(), Home: "aws:nowhere"}); err == nil {
		t.Error("want error for unknown home")
	}
}
