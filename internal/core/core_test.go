package core

import (
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/executor"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/workloads"
)

var evalStart = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

// runScenario executes warmup (home-only, day 1) then a measured day 2
// under plans produced by plan(). It returns the day-2 summary under tx.
func runScenario(t *testing.T, wl *workloads.Workload, tx carbon.TransmissionModel,
	plan func(app *App, dayStart time.Time) dag.HourlyPlans) Summary {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Seed:    11,
		Start:   evalStart,
		End:     evalStart.Add(48 * time.Hour),
		Regions: region.EvaluationFour(),
	})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	app, err := env.NewApp(AppConfig{
		Workload: wl,
		Home:     region.USEast1,
		Mode:     executor.ModeCaribou,
		Tx:       tx,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
	})
	if err != nil {
		t.Fatalf("NewApp: %v", err)
	}

	// Day 1: warmup at home to seed the Metric Manager.
	const perDay = 240
	gap := 24 * time.Hour / perDay
	app.ScheduleUniform(evalStart, perDay, gap, workloads.Small)
	day2 := evalStart.Add(24 * time.Hour)
	env.RunUntil(day2)

	warmupCount := len(app.Records)
	if warmupCount < perDay*9/10 {
		t.Fatalf("warmup completed only %d invocations", warmupCount)
	}

	// Solve and deploy for day 2.
	plans := plan(app, day2)
	if _, err := app.DeployPlanRegions(plans); err != nil {
		t.Fatalf("DeployPlanRegions: %v", err)
	}
	app.SetStaticPlans(plans)

	app.ScheduleUniform(day2, perDay, gap, workloads.Small)
	env.Run()

	day2Records := app.Records[warmupCount:]
	sum, err := env.Summarize(day2Records, tx)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if sum.Succeeded < sum.Invocations {
		t.Fatalf("%d of %d invocations failed", sum.Invocations-sum.Succeeded, sum.Invocations)
	}
	return sum
}

func homePlanner(app *App, _ time.Time) dag.HourlyPlans {
	return dag.Uniform(dag.NewHomePlan(app.Workload.DAG, app.Home))
}

func caribouPlanner(t *testing.T) func(app *App, dayStart time.Time) dag.HourlyPlans {
	return func(app *App, dayStart time.Time) dag.HourlyPlans {
		if err := app.Metrics.RefreshForecasts(dayStart); err != nil {
			t.Fatalf("RefreshForecasts: %v", err)
		}
		plans, _, err := app.Solver.SolveHourly(dayStart, dayStart)
		if err != nil {
			t.Fatalf("SolveHourly: %v", err)
		}
		return plans
	}
}

func TestCaribouReducesCarbonBestCase(t *testing.T) {
	wl := workloads.Text2SpeechCensoring()
	tx := carbon.BestCase()
	home := runScenario(t, wl, tx, homePlanner)
	fine := runScenario(t, wl, tx, caribouPlanner(t))

	ratio := fine.MeanCarbonG / home.MeanCarbonG
	t.Logf("text2speech best-case: home %.4f g, caribou %.4f g, ratio %.3f", home.MeanCarbonG, fine.MeanCarbonG, ratio)
	if ratio >= 0.95 {
		t.Errorf("Caribou should cut carbon markedly in the best case; got ratio %.3f", ratio)
	}
}

func TestCaribouAvoidsRegressionWorstCase(t *testing.T) {
	// Image processing is transmission-heavy: under the worst-case model
	// the adaptive framework must avoid making things worse (§9.2 I2).
	wl := workloads.ImageProcessing()
	tx := carbon.WorstCase()
	home := runScenario(t, wl, tx, homePlanner)
	fine := runScenario(t, wl, tx, caribouPlanner(t))

	ratio := fine.MeanCarbonG / home.MeanCarbonG
	t.Logf("image-processing worst-case: home %.4f g, caribou %.4f g, ratio %.3f", home.MeanCarbonG, fine.MeanCarbonG, ratio)
	if ratio > 1.10 {
		t.Errorf("Caribou regressed carbon by %.0f%% in the worst case", (ratio-1)*100)
	}
}

func TestComplianceConstraintRespected(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed: 3, Start: evalStart, End: evalStart.Add(48 * time.Hour),
		Regions: region.EvaluationFour(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := workloads.Text2SpeechCensoring()
	app, err := env.NewApp(AppConfig{
		Workload: wl,
		Home:     region.USEast1,
		Mode:     executor.ModeCaribou,
		Objective: solver.Objective{
			Priority: solver.PriorityCarbon,
		},
		// Regulation-sensitive workflow: data may not leave the US.
		Constraint: region.Constraint{AllowedCountries: []string{"US"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const perDay = 200
	gap := 24 * time.Hour / perDay
	app.ScheduleUniform(evalStart, perDay, gap, workloads.Small)
	day2 := evalStart.Add(24 * time.Hour)
	env.RunUntil(day2)

	plans, _, err := app.Solver.SolveHourly(day2, day2)
	if err != nil {
		t.Fatalf("SolveHourly: %v", err)
	}
	for h, plan := range plans {
		for node, r := range plan {
			reg, ok := env.Cat.Get(r)
			if !ok || reg.Country != "US" {
				t.Errorf("hour %d: node %s assigned to %s, violating US-only constraint", h, node, r)
			}
		}
	}
}

func TestAdaptiveManagerProducesPlans(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed: 5, Start: evalStart, End: evalStart.Add(4 * 24 * time.Hour),
		Regions: region.EvaluationFour(),
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := env.NewApp(AppConfig{
		Workload: workloads.Text2SpeechCensoring(),
		Home:     region.USEast1,
		Mode:     executor.ModeCaribou,
		Adaptive: true,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const perDay = 150
	app.ScheduleUniform(evalStart, 4*perDay, 24*time.Hour/perDay, workloads.Small)
	app.ScheduleManagerTicks(time.Hour)
	env.Run()

	if app.Manager.Solves() == 0 {
		t.Error("adaptive manager never solved a deployment plan")
	}
	if len(app.Records) < 4*perDay*9/10 {
		t.Errorf("completed %d of %d invocations", len(app.Records), 4*perDay)
	}
	if app.Manager.OverheadGrams <= 0 {
		t.Error("no framework overhead was accounted")
	}
}

func cbBest() carbon.TransmissionModel { return carbon.BestCase() }
