package core

import (
	"fmt"
	"time"
)

// Fleet manages several workflows in one environment with a single
// Deployment Manager sweep, matching Fig 6's description of the DM
// regularly iterating over all deployed workflows. Each app keeps its own
// token bucket and check schedule; the fleet provides the shared tick
// loop and aggregate reporting.
type Fleet struct {
	env  *Env
	apps []*App
}

// NewFleet returns an empty fleet over the environment.
func NewFleet(env *Env) *Fleet { return &Fleet{env: env} }

// Add registers an adaptive app. Non-adaptive apps are rejected: the
// fleet exists to drive Deployment Manager ticks.
func (f *Fleet) Add(app *App) error {
	if app == nil || app.Manager == nil {
		return fmt.Errorf("core: fleet requires an adaptive app (Manager wired)")
	}
	if app.Env != f.env {
		return fmt.Errorf("core: app belongs to a different environment")
	}
	f.apps = append(f.apps, app)
	return nil
}

// Apps returns the managed apps.
func (f *Fleet) Apps() []*App { return append([]*App(nil), f.apps...) }

// ScheduleTicks drives one sweep over every workflow at the given cadence
// until the environment's end.
func (f *Fleet) ScheduleTicks(interval time.Duration) {
	var tick func()
	tick = func() {
		now := f.env.Sched.Now()
		if !now.Before(f.env.End) {
			return
		}
		for _, app := range f.apps {
			if _, err := app.Manager.Tick(now); err != nil {
				// A failed solve/rollout leaves that workflow on its
				// home fallback; the sweep continues.
				continue
			}
		}
		f.env.Sched.After(interval, tick)
	}
	f.env.Sched.After(interval, tick)
}

// TotalOverheadGrams sums framework carbon across the fleet.
func (f *Fleet) TotalOverheadGrams() float64 {
	var sum float64
	for _, app := range f.apps {
		sum += app.Manager.OverheadGrams
	}
	return sum
}

// TotalSolves sums plan generations across the fleet.
func (f *Fleet) TotalSolves() int {
	n := 0
	for _, app := range f.apps {
		n += app.Manager.Solves()
	}
	return n
}
