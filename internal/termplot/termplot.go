// Package termplot renders small ASCII/Unicode charts for the evaluation
// harness: line charts for time series (Fig 2, Fig 9, Fig 11), horizontal
// bars for grouped comparisons (Fig 7, Fig 12), and compact sparklines.
// Stdout is the paper-reproduction medium here, so the harness can show a
// figure's shape without leaving the terminal.
package termplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact Unicode sparkline. Empty input
// yields an empty string; a constant series renders at mid height.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := minMax(values)
	var b strings.Builder
	for _, v := range values {
		idx := len(sparkLevels) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// seriesMarks assigns plotting glyphs per series.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Line renders series as an ASCII chart of the given plot dimensions
// (sensible minimums are enforced). Series longer than width are
// downsampled by averaging; shorter series are spread across the width.
func Line(w io.Writer, title string, series []Series, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var all []float64
	for _, s := range series {
		all = append(all, s.Values...)
	}
	if len(all) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	lo, hi := minMax(all)
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		vals := resample(s.Values, width)
		for x, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			y := int((v - lo) / (hi - lo) * float64(height-1))
			row := height - 1 - y
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][x] = mark
		}
	}

	if title != "" {
		fmt.Fprintln(w, title)
	}
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%10.3g", hi)
		case height - 1:
			label = fmt.Sprintf("%10.3g", lo)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(row))
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", 10), strings.Join(legend, "   "))
	}
}

// Bars renders labeled horizontal bars scaled to the maximum value.
func Bars(w io.Writer, title string, labels []string, values []float64, width int) {
	if len(labels) != len(values) {
		fmt.Fprintf(w, "%s: (label/value mismatch)\n", title)
		return
	}
	if width < 10 {
		width = 40
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	if len(values) == 0 {
		return
	}
	_, hi := minMax(values)
	if hi <= 0 {
		hi = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		n := int(v / hi * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "%-*s |%s %.3g\n", labelW, labels[i], strings.Repeat("█", n), v)
	}
}

// resample maps values onto exactly width buckets by averaging (when
// longer) or nearest-neighbor spreading (when shorter).
func resample(values []float64, width int) []float64 {
	out := make([]float64, width)
	if len(values) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	for i := 0; i < width; i++ {
		start := i * len(values) / width
		end := (i + 1) * len(values) / width
		if end <= start {
			end = start + 1
		}
		if end > len(values) {
			end = len(values)
		}
		var sum float64
		for _, v := range values[start:end] {
			sum += v
		}
		out[i] = sum / float64(end-start)
	}
	return out
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
