package termplot

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("length = %d", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[len(runes)-1] != '█' {
		t.Errorf("extremes = %c %c", runes[0], runes[len(runes)-1])
	}
	// Monotone input → monotone glyph levels.
	level := func(r rune) int { return strings.IndexRune(string(sparkLevels), r) }
	for i := 1; i < len(runes); i++ {
		if level(runes[i]) < level(runes[i-1]) {
			t.Errorf("sparkline not monotone at %d: %s", i, s)
		}
	}
	// Constant series renders mid-height, same rune everywhere.
	c := []rune(Sparkline([]float64{5, 5, 5}))
	if c[0] != c[1] || c[1] != c[2] {
		t.Errorf("constant sparkline = %s", string(c))
	}
}

func TestLineChartContainsSeriesMarks(t *testing.T) {
	var sb strings.Builder
	Line(&sb, "test", []Series{
		{Name: "up", Values: []float64{1, 2, 3, 4, 5}},
		{Name: "down", Values: []float64{5, 4, 3, 2, 1}},
	}, 30, 6)
	out := sb.String()
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series marks missing")
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Error("legend missing")
	}
	// Axis labels: max on first plotted row, min on last.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "5") {
		t.Errorf("max label missing: %q", lines[1])
	}
	if !strings.Contains(lines[len(lines)-2], "1") {
		t.Errorf("min label missing: %q", lines[len(lines)-2])
	}
}

func TestLineChartEmptyData(t *testing.T) {
	var sb strings.Builder
	Line(&sb, "empty", nil, 30, 6)
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("output = %q", sb.String())
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	var sb strings.Builder
	Line(&sb, "flat", []Series{{Name: "c", Values: []float64{2, 2, 2}}}, 20, 5)
	if !strings.Contains(sb.String(), "*") {
		t.Error("constant series not plotted")
	}
}

func TestBars(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "bars", []string{"a", "bb"}, []float64{1, 2}, 10)
	out := sb.String()
	if !strings.Contains(out, "bars") || !strings.Contains(out, "█") {
		t.Errorf("output = %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	countBlocks := func(s string) int { return strings.Count(s, "█") }
	if countBlocks(lines[2]) != 2*countBlocks(lines[1]) {
		t.Errorf("bar scaling wrong: %q vs %q", lines[1], lines[2])
	}
	// Mismatched input degrades gracefully.
	sb.Reset()
	Bars(&sb, "bad", []string{"a"}, []float64{1, 2}, 10)
	if !strings.Contains(sb.String(), "mismatch") {
		t.Error("mismatch not reported")
	}
}

func TestResample(t *testing.T) {
	// Downsampling averages.
	out := resample([]float64{1, 1, 3, 3}, 2)
	if out[0] != 1 || out[1] != 3 {
		t.Errorf("downsample = %v", out)
	}
	// Upsampling repeats.
	out = resample([]float64{1, 3}, 4)
	if out[0] != 1 || out[1] != 1 || out[2] != 3 || out[3] != 3 {
		t.Errorf("upsample = %v", out)
	}
}
