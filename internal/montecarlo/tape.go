package montecarlo

import (
	"sync"
	"sync/atomic"

	"caribou/internal/carbon"
	"caribou/internal/simclock"
	"caribou/internal/stats"
)

// Sample tapes: common-random-number compilation of the Monte Carlo hot
// path.
//
// Snapshot.Estimate derives its RNG stream from (seed, workflow, hour)
// only, and every uniform draw inside sampleOnce — entry bytes, the
// conditional-edge coin flips, edge/output payload bytes, and the
// exec-duration quantiles — is consumed in an order decided solely by
// those draws, never by the plan under evaluation. The realized control
// flow (which nodes execute, which edges are taken, which sync nodes
// fire, where skips propagate) is therefore a pure function of (seed,
// workflow, hour) too: a plan changes *where* a stage runs, not *what
// the invocation does*.
//
// A tape exploits that: per hour it records, per sample, the resolved
// skeleton — executed nodes in loop order, each with its pre-drawn
// exec-duration quantile, per-edge outcomes with pre-drawn payload
// bytes, pre-summed sync staging totals, and the ordered sync targets of
// every skip propagation. Replaying a plan against the tape performs no
// RNG calls, no stream derivation, no conditional-probability branching,
// and no recursive skip walks — only the region-dependent lookups
// (duration quantile resolution, transfer/egress coefficients,
// intensity-weighted carbon) and the exact arithmetic of the reference
// path, in the exact same order, so replayed estimates are bit-identical
// to untaped ones by construction (pinned by the tape parity tests).
//
// Tapes are compiled lazily in BatchSize increments up to MaxSamples:
// the first Estimate that needs samples [0,200) builds them, a later
// plan that converges slower extends the tape, and the extension rule
// means one tape per hour serves every candidate plan the solver
// evaluates — HBSS rounds, exhaustive enumeration, and all hourly
// solves amortize the drawing work that the untaped path repeats per
// plan. Memory is bounded by MaxSamples × (nodes + edges) records per
// hour.

// tapeStep flags.
const (
	stepSync   uint8 = 1 << iota // step executes as a fired sync node
	stepOutput                   // terminal step with a write-back draw
)

// tapeEdge kinds.
const (
	tapeEdgeSkip   uint8 = iota // conditional edge not taken: skip annotation
	tapeEdgeStage               // taken edge into a sync node: KV staging
	tapeEdgeDirect              // taken pub/sub edge
)

// tapeStep is one executed node of one recorded sample.
type tapeStep struct {
	node             int32
	flags            uint8
	u                float64 // pre-drawn exec-duration quantile
	staged           float64 // sync steps: staged bytes, pre-summed in edge order
	out              float64 // stepOutput steps: pre-drawn write-back bytes
	edgeOff, edgeEnd int32   // [edgeOff,edgeEnd) into tapeData.edges
}

// tapeEdge is one out-edge outcome of an executed node.
type tapeEdge struct {
	to               int32
	kind             uint8
	bytes            float64 // pre-drawn payload (0 for unobserved edges)
	skipOff, skipEnd int32   // tapeEdgeSkip: [skipOff,skipEnd) into skipSyncs
}

// tapeData is an immutable compiled prefix of one hour's sample stream.
// Extensions append past every published header's length and publish a
// new header, so a reader holding an old header only ever touches the
// prefix that was complete when it loaded — no locking on the read side.
type tapeData struct {
	n         int       // samples compiled
	entry     []float64 // per sample: entry payload incl. control bytes
	stepOff   []int32   // len n+1: sample i occupies steps[stepOff[i]:stepOff[i+1]]
	steps     []tapeStep
	edges     []tapeEdge
	skipSyncs []int32 // sync nodes advanced by skip propagations, in DFS order
}

// hourTape owns one hour's lazily extended tape. The mutex serializes
// extensions (the RNG stream must advance sequentially); readers load the
// latest immutable prefix through the atomic pointer.
type hourTape struct {
	mu   sync.Mutex
	rng  *simclock.Rand // positioned after the last compiled sample
	bld  *tapeBuilder
	data atomic.Pointer[tapeData]
}

// ensure returns a tape prefix holding at least n samples (capped at
// MaxSamples), compiling missing batches under the extension lock. The
// fast path is a single atomic load.
func (t *hourTape) ensure(s *Snapshot, h, n int) *tapeData {
	if d := t.data.Load(); d != nil && d.n >= n {
		return d
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.data.Load()
	if d == nil {
		d = &tapeData{stepOff: []int32{0}}
		t.rng = simclock.NewRand(s.hourSeed[h])
		t.bld = newTapeBuilder(s.nodes.Len())
	}
	if d.n >= n {
		return d
	}
	nd := &tapeData{}
	*nd = *d // share the compiled prefix; appends only extend past it
	for nd.n < n && nd.n < MaxSamples {
		for i := 0; i < BatchSize; i++ {
			s.compileSample(t.bld, t.rng, nd)
		}
		s.tel.tapeBatches.Inc()
		s.tel.tapeSamples.Add(BatchSize)
	}
	t.data.Store(nd)
	return nd
}

// tapeBuilder holds the plan-invariant scratch flags the compiler needs
// to resolve one sample's control flow, reused across samples.
type tapeBuilder struct {
	executed    []bool
	skipped     []bool
	syncReached []bool
	staged      []float64
	stack       []snapEdge // explicit DFS stack for skip propagation
}

func newTapeBuilder(n int) *tapeBuilder {
	return &tapeBuilder{
		executed:    make([]bool, n),
		skipped:     make([]bool, n),
		syncReached: make([]bool, n),
		staged:      make([]float64, n),
	}
}

func (b *tapeBuilder) reset() {
	for i := range b.executed {
		b.executed[i] = false
		b.skipped[i] = false
		b.syncReached[i] = false
		b.staged[i] = 0
	}
}

// compileSample resolves one sample's skeleton, consuming RNG draws in
// exactly the order of the reference sampleOnce, and appends the records
// to nd. Only plan-invariant state is tracked; everything region-dependent
// is deferred to replay.
func (s *Snapshot) compileSample(b *tapeBuilder, rng *simclock.Rand, nd *tapeData) {
	b.reset()
	entryBytes := stats.SampleSorted(s.entryBytes, rng.Float64()) + controlBytes
	entry := s.start
	b.executed[entry] = true

	for n := 0; n < len(b.executed); n++ {
		if b.skipped[n] {
			continue
		}
		var flags uint8
		if s.isSync[n] {
			if !b.syncReached[n] {
				b.skipped[n] = true
				continue
			}
			flags |= stepSync
		} else if n != entry {
			if !b.executed[n] {
				continue
			}
		}

		st := tapeStep{node: int32(n), flags: flags, staged: b.staged[n]}
		st.u = rng.Float64()
		st.edgeOff = int32(len(nd.edges))
		out := s.outEdges[n]
		if len(out) == 0 {
			if ob := s.output[n]; ob != nil {
				st.flags |= stepOutput
				st.out = stats.SampleSorted(ob, rng.Float64())
			}
		} else {
			for _, edge := range out {
				taken := !edge.conditional || rng.Bool(edge.prob)
				te := tapeEdge{to: int32(edge.to)}
				if !taken {
					te.kind = tapeEdgeSkip
					te.skipOff = int32(len(nd.skipSyncs))
					nd.skipSyncs = b.propagateSkip(s, edge, nd.skipSyncs)
					te.skipEnd = int32(len(nd.skipSyncs))
				} else {
					if edge.bytes != nil {
						te.bytes = stats.SampleSorted(edge.bytes, rng.Float64())
					}
					if edge.toSync {
						te.kind = tapeEdgeStage
						b.staged[edge.to] += te.bytes
						b.syncReached[edge.to] = true
					} else {
						te.kind = tapeEdgeDirect
						b.executed[edge.to] = true
					}
				}
				nd.edges = append(nd.edges, te)
			}
		}
		st.edgeEnd = int32(len(nd.edges))
		nd.steps = append(nd.steps, st)
	}

	nd.entry = append(nd.entry, entryBytes)
	nd.stepOff = append(nd.stepOff, int32(len(nd.steps)))
	nd.n++
}

// propagateSkip walks the untaken edge's downstream closure iteratively
// in the same DFS preorder as the recursive reference, marking skipped
// nodes and recording — in visit order — each sync node that was already
// reached at that moment (replay decides whether its readiness actually
// advances, since that comparison is region-dependent).
func (b *tapeBuilder) propagateSkip(s *Snapshot, edge snapEdge, syncs []int32) []int32 {
	stack := append(b.stack[:0], edge)
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.toSync {
			if b.syncReached[e.to] {
				syncs = append(syncs, int32(e.to))
			}
			continue
		}
		if b.skipped[e.to] {
			continue
		}
		b.skipped[e.to] = true
		out := s.outEdges[e.to]
		for i := len(out) - 1; i >= 0; i-- {
			stack = append(stack, out[i])
		}
	}
	b.stack = stack[:0]
	return syncs
}

// replayScratch holds the region-dependent per-sample times. Epoch
// stamping makes the per-sample reset O(1) instead of O(nodes): a slot
// whose stamp is stale reads as the zero the reference path would see.
type replayScratch struct {
	epoch  uint32
	start  []float64
	startE []uint32
	ready  []float64
	readyE []uint32
}

func newReplayScratch(n int) *replayScratch {
	return &replayScratch{
		start:  make([]float64, n),
		startE: make([]uint32, n),
		ready:  make([]float64, n),
		readyE: make([]uint32, n),
	}
}

func (sc *replayScratch) getStart(i int) float64 {
	if sc.startE[i] != sc.epoch {
		return 0
	}
	return sc.start[i]
}

func (sc *replayScratch) setStart(i int, v float64) {
	sc.start[i] = v
	sc.startE[i] = sc.epoch
}

func (sc *replayScratch) getReady(i int) float64 {
	if sc.readyE[i] != sc.epoch {
		return 0
	}
	return sc.ready[i]
}

func (sc *replayScratch) setReady(i int, v float64) {
	sc.ready[i] = v
	sc.readyE[i] = sc.epoch
}

// estimateTaped mirrors estimateUntaped's batched stopping rule but
// replays pre-compiled samples instead of drawing them, extending the
// hour's shared tape only as far as this plan's convergence requires.
func (s *Snapshot) estimateTaped(assign []int, h int) (*Estimate, error) {
	t := s.tapes[h]
	sc := newReplayScratch(s.nodes.Len())
	inten := s.intensity[h]
	var acc seriesAcc
	for acc.samples() < MaxSamples {
		need := acc.samples() + BatchSize
		td := t.ensure(s, h, need)
		for i := acc.samples(); i < need; i++ {
			smp, err := s.replaySample(td, i, assign, inten, sc)
			if err != nil {
				return nil, err
			}
			acc.add(smp)
		}
		if acc.converged() {
			break
		}
	}
	s.tel.estimates.Inc()
	s.tel.samples.Add(int64(acc.samples()))
	s.tel.tapeReplays.Add(int64(acc.samples()))
	return acc.summarize()
}

// replaySample evaluates recorded sample i under the dense assignment.
// The arithmetic — every addition, comparison, and their order — matches
// sampleOnce exactly; only the draws are read from the tape.
func (s *Snapshot) replaySample(td *tapeData, i int, assign []int, inten []float64, sc *replayScratch) (sample, error) {
	sc.epoch++
	var smp sample
	home := s.home
	nR := s.nR

	txCarbon := func(from, to int, bytes float64) {
		smp.txCarbon += s.tx.Carbon(inten[from], inten[to], from == to, bytes)
		if bytes > 0 {
			smp.cost += bytes / 1e9 * s.egressPerGB[from*nR+to]
		}
	}
	transfer := func(from, to int, bytes float64) float64 {
		if bytes < 0 {
			bytes = 0
		}
		return s.txBase[from*nR+to] + bytes*s.txPerByte[from*nR+to]
	}

	entry := s.start
	entryRegion := assign[entry]
	entryBytes := td.entry[i]
	smp.cost += s.dynReadUSD
	smp.cost += s.snsUSD[home]
	txCarbon(home, entryRegion, entryBytes)
	sc.setStart(entry, s.kvAccess[home]+s.msgOverhead+transfer(home, entryRegion, entryBytes))

	for si := td.stepOff[i]; si < td.stepOff[i+1]; si++ {
		st := &td.steps[si]
		n := int(st.node)
		r := assign[n]
		var startN float64
		if st.flags&stepSync != 0 {
			staged := st.staged
			smp.cost += s.snsUSD[home]
			txCarbon(home, r, controlBytes)
			arrive := sc.getReady(n) + s.msgOverhead + transfer(home, r, controlBytes)
			load := s.kvAccess[r] + transfer(home, r, staged)
			smp.cost += s.dynReadUSD
			txCarbon(home, r, staged)
			startN = arrive + load
		} else {
			startN = sc.getStart(n)
		}

		if err := s.execErr[n*nR+r]; err != nil {
			return smp, err
		}
		dur := stats.SampleSorted(s.exec[n*nR+r], st.u)
		mem := s.memoryMB[n]
		finish := startN + dur
		if finish > smp.latency {
			smp.latency = finish
		}
		smp.execCarbon += carbon.ExecutionCarbonFromFactors(inten[r], s.execMemKW[n], s.execProcKW[n], dur)
		if mem >= 0 && dur >= 0 {
			smp.cost += mem/1024*dur*s.gbSecUSD[r] + s.reqUSD[r]
		}

		if st.flags&stepOutput != 0 {
			txCarbon(r, home, st.out)
			continue
		}
		for ei := st.edgeOff; ei < st.edgeEnd; ei++ {
			e := &td.edges[ei]
			to := int(e.to)
			switch e.kind {
			case tapeEdgeSkip:
				for k := e.skipOff; k < e.skipEnd; k++ {
					sn := int(td.skipSyncs[k])
					if finish > sc.getReady(sn) {
						sc.setReady(sn, finish)
					}
				}
				smp.cost += s.dynWriteUSD // skip annotation
			case tapeEdgeStage:
				smp.cost += s.dynWriteUSD
				smp.cost += s.dynWriteUSD
				txCarbon(r, home, e.bytes)
				ready := finish + transfer(r, home, e.bytes) + s.kvAccess[r]
				if ready > sc.getReady(to) {
					sc.setReady(to, ready)
				}
			case tapeEdgeDirect:
				smp.cost += s.snsUSD[r]
				total := e.bytes + controlBytes
				txCarbon(r, assign[to], total)
				arrive := finish + s.msgOverhead + transfer(r, assign[to], total)
				if arrive > sc.getStart(to) {
					sc.setStart(to, arrive)
				}
			}
		}
	}
	return smp, nil
}
