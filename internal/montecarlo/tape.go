package montecarlo

import (
	"sync"
	"sync/atomic"

	"caribou/internal/carbon"
	"caribou/internal/simclock"
	"caribou/internal/stats"
)

// Sample tapes: common-random-number compilation of the Monte Carlo hot
// path.
//
// Snapshot.Estimate derives its RNG stream from (seed, workflow, hour)
// only, and every uniform draw inside sampleOnce — entry bytes, the
// conditional-edge coin flips, edge/output payload bytes, and the
// exec-duration quantiles — is consumed in an order decided solely by
// those draws, never by the plan under evaluation. The realized control
// flow (which nodes execute, which edges are taken, which sync nodes
// fire, where skips propagate) is therefore a pure function of (seed,
// workflow, hour) too: a plan changes *where* a stage runs, not *what
// the invocation does*.
//
// A tape exploits that: per hour it records, per sample, the resolved
// skeleton — executed nodes in loop order, each with its pre-drawn
// exec-duration quantile, per-edge outcomes with pre-drawn payload
// bytes, pre-summed sync staging totals, and the ordered sync targets of
// every skip propagation. Replaying a plan against the tape performs no
// RNG calls, no stream derivation, no conditional-probability branching,
// and no recursive skip walks — only the region-dependent lookups
// (duration quantile resolution, transfer/egress coefficients,
// intensity-weighted carbon) and the exact arithmetic of the reference
// path, in the exact same order, so replayed estimates are bit-identical
// to untaped ones by construction (pinned by the tape parity tests).
//
// Tapes are compiled lazily in BatchSize increments up to MaxSamples:
// the first Estimate that needs samples [0,200) builds them, a later
// plan that converges slower extends the tape, and the extension rule
// means one tape per hour serves every candidate plan the solver
// evaluates — HBSS rounds, exhaustive enumeration, and all hourly
// solves amortize the drawing work that the untaped path repeats per
// plan. Memory is bounded by MaxSamples × (nodes + edges) records per
// hour.

// tapeStep flags.
const (
	stepSync   uint8 = 1 << iota // step executes as a fired sync node
	stepOutput                   // terminal step with a write-back draw
)

// tapeEdge kinds.
const (
	tapeEdgeSkip   uint8 = iota // conditional edge not taken: skip annotation
	tapeEdgeStage               // taken edge into a sync node: KV staging
	tapeEdgeDirect              // taken pub/sub edge
)

// tapeStep is one executed node of one recorded sample.
type tapeStep struct {
	node             int32
	flags            uint8
	u                float64 // pre-drawn exec-duration quantile
	staged           float64 // sync steps: staged bytes, pre-summed in edge order
	out              float64 // stepOutput steps: pre-drawn write-back bytes
	edgeOff, edgeEnd int32   // [edgeOff,edgeEnd) into tapeData.edges
}

// tapeEdge is one out-edge outcome of an executed node.
type tapeEdge struct {
	to               int32
	kind             uint8
	bytes            float64 // pre-drawn payload (0 for unobserved edges)
	skipOff, skipEnd int32   // tapeEdgeSkip: [skipOff,skipEnd) into skipSyncs
}

// tapeData is an immutable compiled prefix of one hour's sample stream.
// Extensions append past every published header's length and publish a
// new header, so a reader holding an old header only ever touches the
// prefix that was complete when it loaded — no locking on the read side.
//
// Two layouts exist. The array-of-structs steps/edges slices are the
// reference layout the compiler emits; with SoA replay enabled (the
// default) the published header instead carries transposed dense columns
// (soaCols) and leaves steps/edges nil. Both layouts replay bit-identically
// (pinned by the tape parity tests); the column form exists because replay
// is the solver's hot loop and streams far fewer bytes per step.
type tapeData struct {
	n         int       // samples compiled
	entry     []float64 // per sample: entry payload incl. control bytes
	stepOff   []int32   // len n+1: sample i occupies steps[stepOff[i]:stepOff[i+1]]
	steps     []tapeStep
	edges     []tapeEdge
	skipSyncs []int32 // sync nodes advanced by skip propagations, in DFS order
	soa       *soaCols
}

// soaCols is the structure-of-arrays layout of one compiled tape prefix:
// one dense column per record field, plus per-(step, region) columns that
// bake every plan-independent quantile and coefficient the replay loop
// would otherwise recompute per candidate plan. Offsets are cumulative
// (edges of step si span edgeOff[si:si+1], skip targets of edge ei span
// skipOff[ei:ei+1]), which the compiler's contiguous emission order
// guarantees. All float64 columns of one extension are carved from a
// single arena block (see transposeSoA).
type soaCols struct {
	// Per step.
	node    []int32
	flags   []uint8
	staged  []float64 // sync steps: staged bytes
	out     []float64 // stepOutput steps: write-back bytes
	edgeOff []int32   // len(node)+1
	// Per (step, region) triples at (si*nR+r)*3: the resolved
	// exec-duration quantile, the execution energy intermediate
	// memKW·h+procKW·h of carbon.ExecutionCarbonFromFactors (so replay
	// multiplies by intensity and PUE only), and the execution cost term
	// (0 when the reference guard mem>=0 && dur>=0 fails — adding +0 to
	// the non-negative cost accumulator is exact). Interleaving the three
	// keeps a step's whole lookup on one cache line.
	drc []float64
	// aux9 holds the sync step's staged total divided by 1e9 (gigabytes).
	// The quotient is plan-independent, and float division is the single
	// longest-latency operation the replay loop would otherwise perform
	// per step, so it is baked once at transpose time — same operands,
	// same operation, bit-identical result.
	aux9 []float64
	// out9 is the output step's write-back draw divided by 1e9. It is a
	// separate column from aux9 because a terminal sync node with an
	// output distribution carries both flags and needs both quotients
	// (e.g. Text2Speech's final censoring stage).
	out9 []float64
	// entry9 is the per-sample entry payload divided by 1e9.
	entry9 []float64
	// Per edge.
	to      []int32
	kind    []uint8
	bytes   []float64
	skipOff []int32 // len(to)+1, cumulative into tapeData.skipSyncs
	// e9 is the edge's transmitted payload in gigabytes: bytes/1e9 for
	// staging edges, (bytes+controlBytes)/1e9 for direct edges (the
	// reference adds the control envelope before converting), 0 for skips.
	e9 []float64
	// Pruning-bound columns (bounds.go), present only when the snapshot's
	// coefficient minima are valid: bndStep holds per-step minimum triples
	// at si*3 {duration, energy contribution, exec cost}, and
	// preLat/preCost/preCarb are per-sample metric-floor prefix sums (len
	// nSamples+1). bndOK latches false — disabling pruning for the tape,
	// never changing a result — when a per-sample floor goes negative.
	bndStep                  []float64
	preLat, preCost, preCarb []float64
	bndOK                    bool
}

// hourTape owns one hour's lazily extended tape. The mutex serializes
// extensions (the RNG stream must advance sequentially); readers load the
// latest immutable prefix through the atomic pointer. ref is the growing
// AoS master the compiler appends to; in SoA mode it stays private and
// each extension is transposed into fresh column headers before
// publication. The anchor fields cache one delta-replay anchor per hour
// (delta.go), invalidated whenever the base plan changes.
type hourTape struct {
	mu   sync.Mutex
	rng  *simclock.Rand // positioned after the last compiled sample
	bld  *tapeBuilder
	ref  *tapeData // AoS master; only published directly in AoS mode
	data atomic.Pointer[tapeData]

	// anchorMu serializes anchor recording (TryLock: contenders replay
	// plain rather than queue); anchor publishes the result.
	anchorMu sync.Mutex
	anchor   atomic.Pointer[deltaAnchor]
}

// ensure returns a tape prefix holding at least n samples (capped at
// MaxSamples), compiling missing batches under the extension lock. The
// fast path is a single atomic load.
func (t *hourTape) ensure(s *Snapshot, h, n int) *tapeData {
	if d := t.data.Load(); d != nil && d.n >= n {
		return d
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.data.Load()
	if d == nil {
		t.rng = simclock.NewRand(s.hourSeed[h])
		t.bld = newTapeBuilder(s.nodes.Len())
		t.ref = &tapeData{stepOff: []int32{0}}
		d = t.ref
	}
	if d.n >= n {
		return d
	}
	ref := t.ref
	oldSteps, oldEdges := len(ref.steps), len(ref.edges)
	for ref.n < n && ref.n < MaxSamples {
		for i := 0; i < BatchSize; i++ {
			s.compileSample(t.bld, t.rng, ref)
		}
		s.tel.tapeBatches.Inc()
		s.tel.tapeSamples.Add(BatchSize)
	}
	nd := &tapeData{n: ref.n, entry: ref.entry, stepOff: ref.stepOff, skipSyncs: ref.skipSyncs}
	if s.soaTapes {
		nd.soa = s.transposeSoA(d.soa, ref, oldSteps, oldEdges, h)
	} else {
		nd.steps = ref.steps
		nd.edges = ref.edges
	}
	t.data.Store(nd)
	return nd
}

// transposeSoA extends the published columns with the AoS records the
// compiler just appended (steps[oldSteps:], edges[oldEdges:]). Columns are
// immutable once published: each extension allocates exact-size arrays —
// every float64 column carved from one arena block per extension — copies
// the prior prefix, and fills the new span, so readers holding an old
// header never observe growth.
func (s *Snapshot) transposeSoA(prev *soaCols, ref *tapeData, oldSteps, oldEdges, h int) *soaCols {
	nR := s.nR
	nS, nE := len(ref.steps), len(ref.edges)
	c := &soaCols{
		node:    make([]int32, nS),
		flags:   make([]uint8, nS),
		edgeOff: make([]int32, nS+1),
		to:      make([]int32, nE),
		kind:    make([]uint8, nE),
		skipOff: make([]int32, nE+1),
	}
	nSamp := ref.n
	size := nS*4 + nE*2 + nSamp + nS*nR*3
	if s.bnd.ok {
		size += nS*3 + 3*(nSamp+1)
	}
	arena := make([]float64, size)
	c.staged, arena = arena[:nS:nS], arena[nS:]
	c.out, arena = arena[:nS:nS], arena[nS:]
	c.aux9, arena = arena[:nS:nS], arena[nS:]
	c.out9, arena = arena[:nS:nS], arena[nS:]
	c.bytes, arena = arena[:nE:nE], arena[nE:]
	c.e9, arena = arena[:nE:nE], arena[nE:]
	c.entry9, arena = arena[:nSamp:nSamp], arena[nSamp:]
	drcLen := nS * nR * 3
	c.drc, arena = arena[:drcLen:drcLen], arena[drcLen:]
	if s.bnd.ok {
		bs := nS * 3
		c.bndStep, arena = arena[:bs:bs], arena[bs:]
		c.preLat, arena = arena[:nSamp+1:nSamp+1], arena[nSamp+1:]
		c.preCost, arena = arena[:nSamp+1:nSamp+1], arena[nSamp+1:]
		c.preCarb = arena
		c.bndOK = prev == nil || prev.bndOK
	}
	if prev != nil {
		copy(c.node, prev.node)
		copy(c.flags, prev.flags)
		copy(c.staged, prev.staged)
		copy(c.out, prev.out)
		copy(c.aux9, prev.aux9)
		copy(c.out9, prev.out9)
		copy(c.edgeOff, prev.edgeOff)
		copy(c.drc, prev.drc)
		copy(c.to, prev.to)
		copy(c.kind, prev.kind)
		copy(c.bytes, prev.bytes)
		copy(c.e9, prev.e9)
		copy(c.skipOff, prev.skipOff)
		copy(c.entry9, prev.entry9)
		if prev.bndStep != nil {
			copy(c.bndStep, prev.bndStep)
			copy(c.preLat, prev.preLat)
			copy(c.preCost, prev.preCost)
			copy(c.preCarb, prev.preCarb)
		}
	}
	oldSamp := 0
	if prev != nil {
		oldSamp = len(prev.entry9)
	}
	for i := oldSamp; i < nSamp; i++ {
		c.entry9[i] = ref.entry[i] / 1e9
	}
	for i := oldSteps; i < nS; i++ {
		st := &ref.steps[i]
		c.node[i] = st.node
		c.flags[i] = st.flags
		c.staged[i] = st.staged
		c.out[i] = st.out
		if st.flags&stepSync != 0 {
			c.aux9[i] = st.staged / 1e9
		}
		if st.flags&stepOutput != 0 {
			c.out9[i] = st.out / 1e9
		}
		c.edgeOff[i] = st.edgeOff
		s.bakeStepCols(int(st.node), st.u, c.drc[i*nR*3:(i+1)*nR*3])
	}
	c.edgeOff[nS] = int32(nE)
	skips := int32(0)
	if prev != nil {
		skips = prev.skipOff[oldEdges]
	}
	for e := oldEdges; e < nE; e++ {
		te := &ref.edges[e]
		c.to[e] = te.to
		c.kind[e] = te.kind
		c.bytes[e] = te.bytes
		switch te.kind {
		case tapeEdgeStage:
			c.e9[e] = te.bytes / 1e9
		case tapeEdgeDirect:
			// The reference adds the control envelope first, then
			// converts: (bytes+controlBytes)/1e9 with that exact sum.
			c.e9[e] = (te.bytes + controlBytes) / 1e9
		}
		c.skipOff[e] = skips
		if te.kind == tapeEdgeSkip {
			skips = te.skipEnd
		}
	}
	c.skipOff[nE] = skips
	if c.bndOK {
		s.bakeBoundSteps(c, h, oldSteps, nS)
		s.bakeBoundSamples(ref, c, h, oldSamp, nSamp)
	}
	return c
}

// bakeStepCols resolves one step's region-dependent terms for every
// region into the interleaved drc triples: the duration quantile, the
// energy intermediate of carbon.ExecutionCarbonFromFactors (its exact
// parenthesized subterm, so intensity·kwh·PUE at replay reproduces the
// reference bit for bit), and the guarded execution cost. Regions with a
// deferred exec error keep zero columns — replay raises the error before
// reading them.
func (s *Snapshot) bakeStepCols(n int, u float64, drc []float64) {
	nR := s.nR
	mem := s.memoryMB[n]
	memKW, procKW := s.execMemKW[n], s.execProcKW[n]
	for r := 0; r < nR; r++ {
		if s.execErr[n*nR+r] != nil {
			continue
		}
		d := stats.SampleSorted(s.exec[n*nR+r], u)
		drc[r*3] = d
		cd := d
		if cd < 0 {
			cd = 0
		}
		hours := cd / 3600
		drc[r*3+1] = memKW*hours + procKW*hours
		if mem >= 0 && d >= 0 {
			drc[r*3+2] = mem/1024*d*s.gbSecUSD[r] + s.reqUSD[r]
		}
	}
}

// tapeBuilder holds the plan-invariant scratch flags the compiler needs
// to resolve one sample's control flow, reused across samples.
type tapeBuilder struct {
	executed    []bool
	skipped     []bool
	syncReached []bool
	staged      []float64
	stack       []snapEdge // explicit DFS stack for skip propagation
}

func newTapeBuilder(n int) *tapeBuilder {
	return &tapeBuilder{
		executed:    make([]bool, n),
		skipped:     make([]bool, n),
		syncReached: make([]bool, n),
		staged:      make([]float64, n),
	}
}

func (b *tapeBuilder) reset() {
	for i := range b.executed {
		b.executed[i] = false
		b.skipped[i] = false
		b.syncReached[i] = false
		b.staged[i] = 0
	}
}

// compileSample resolves one sample's skeleton, consuming RNG draws in
// exactly the order of the reference sampleOnce, and appends the records
// to nd. Only plan-invariant state is tracked; everything region-dependent
// is deferred to replay.
func (s *Snapshot) compileSample(b *tapeBuilder, rng *simclock.Rand, nd *tapeData) {
	b.reset()
	entryBytes := stats.SampleSorted(s.entryBytes, rng.Float64()) + controlBytes
	entry := s.start
	b.executed[entry] = true

	for n := 0; n < len(b.executed); n++ {
		if b.skipped[n] {
			continue
		}
		var flags uint8
		if s.isSync[n] {
			if !b.syncReached[n] {
				b.skipped[n] = true
				continue
			}
			flags |= stepSync
		} else if n != entry {
			if !b.executed[n] {
				continue
			}
		}

		st := tapeStep{node: int32(n), flags: flags, staged: b.staged[n]}
		st.u = rng.Float64()
		st.edgeOff = int32(len(nd.edges))
		out := s.outEdges[n]
		if len(out) == 0 {
			if ob := s.output[n]; ob != nil {
				st.flags |= stepOutput
				st.out = stats.SampleSorted(ob, rng.Float64())
			}
		} else {
			for _, edge := range out {
				taken := !edge.conditional || rng.Bool(edge.prob)
				te := tapeEdge{to: int32(edge.to)}
				if !taken {
					te.kind = tapeEdgeSkip
					te.skipOff = int32(len(nd.skipSyncs))
					nd.skipSyncs = b.propagateSkip(s, edge, nd.skipSyncs)
					te.skipEnd = int32(len(nd.skipSyncs))
				} else {
					if edge.bytes != nil {
						te.bytes = stats.SampleSorted(edge.bytes, rng.Float64())
					}
					if edge.toSync {
						te.kind = tapeEdgeStage
						b.staged[edge.to] += te.bytes
						b.syncReached[edge.to] = true
					} else {
						te.kind = tapeEdgeDirect
						b.executed[edge.to] = true
					}
				}
				nd.edges = append(nd.edges, te)
			}
		}
		st.edgeEnd = int32(len(nd.edges))
		nd.steps = append(nd.steps, st)
	}

	nd.entry = append(nd.entry, entryBytes)
	nd.stepOff = append(nd.stepOff, int32(len(nd.steps)))
	nd.n++
}

// propagateSkip walks the untaken edge's downstream closure iteratively
// in the same DFS preorder as the recursive reference, marking skipped
// nodes and recording — in visit order — each sync node that was already
// reached at that moment (replay decides whether its readiness actually
// advances, since that comparison is region-dependent).
func (b *tapeBuilder) propagateSkip(s *Snapshot, edge snapEdge, syncs []int32) []int32 {
	stack := append(b.stack[:0], edge)
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.toSync {
			if b.syncReached[e.to] {
				syncs = append(syncs, int32(e.to))
			}
			continue
		}
		if b.skipped[e.to] {
			continue
		}
		b.skipped[e.to] = true
		out := s.outEdges[e.to]
		for i := len(out) - 1; i >= 0; i-- {
			stack = append(stack, out[i])
		}
	}
	b.stack = stack[:0]
	return syncs
}

// replayScratch holds the region-dependent per-sample times. Slots hold
// real zeros between samples (reset is a pair of small memclears), so
// every access is a plain indexed load/store with no per-access staleness
// branch — measurably cheaper in the replay loop than the former epoch
// stamping for the node counts real DAGs have.
type replayScratch struct {
	start []float64
	ready []float64
}

func newReplayScratch(n int) *replayScratch {
	return &replayScratch{
		start: make([]float64, n),
		ready: make([]float64, n),
	}
}

// reset zeroes all slots, the state the reference path starts a sample
// with. The fused loop stays an open-coded store sequence — a
// single-slice clear loop would compile to a runtime memclr call, whose
// fixed overhead dwarfs the handful of stores at real DAG sizes and
// shows up at the hundreds of thousands of per-sample resets one solve
// performs.
func (sc *replayScratch) reset() {
	st, rd := sc.start, sc.ready
	for i := range st {
		st[i] = 0
		rd[i] = 0
	}
}

func (sc *replayScratch) getStart(i int) float64 { return sc.start[i] }

func (sc *replayScratch) setStart(i int, v float64) { sc.start[i] = v }

func (sc *replayScratch) getReady(i int) float64 { return sc.ready[i] }

func (sc *replayScratch) setReady(i int, v float64) { sc.ready[i] = v }

// estimateTaped mirrors estimateUntaped's batched stopping rule but
// replays pre-compiled samples instead of drawing them, extending the
// hour's shared tape only as far as this plan's convergence requires.
func (s *Snapshot) estimateTaped(assign []int, h int) (*Estimate, error) {
	t := s.tapes[h]
	sc := s.getScratch()
	defer s.putScratch(sc)
	inten := s.intensity[h]
	acc := s.getAcc()
	defer s.putAcc(acc)
	var sc2 *replayScratch
	defer func() {
		if sc2 != nil {
			s.putScratch(sc2)
		}
	}()
	for acc.samples() < MaxSamples {
		need := acc.samples() + BatchSize
		td := t.ensure(s, h, need)
		i := acc.samples()
		if td.soa != nil && !s.anyExecErr {
			// Pairwise interleaved replay: two samples per iteration so
			// their serial float chains overlap (see replaySoAPair). Only
			// when no exec error can fire — error replays take the
			// sequential path so failures surface at the reference step.
			if sc2 == nil {
				sc2 = s.getScratch()
			}
			for ; i+1 < need; i += 2 {
				a, b, err := s.replaySoAPair(td, i, h, assign, sc, sc2)
				if err != nil {
					return nil, err
				}
				acc.add(a)
				acc.add(b)
			}
		}
		for ; i < need; i++ {
			var smp sample
			var err error
			if td.soa != nil {
				smp, err = s.replaySoA(td, i, h, assign, sc, nil)
			} else {
				smp, err = s.replaySample(td, i, assign, inten, sc)
			}
			if err != nil {
				return nil, err
			}
			acc.add(smp)
		}
		if acc.converged() {
			break
		}
	}
	s.tel.estimates.Inc()
	s.tel.samples.Add(int64(acc.samples()))
	s.tel.tapeReplays.Add(int64(acc.samples()))
	return acc.summarize()
}

// replaySoA evaluates recorded sample i against the column layout. The
// arithmetic and its order match replaySample — and hence sampleOnce —
// exactly; the duration quantile, energy intermediate, and execution cost
// are read from the baked columns instead of being recomputed (identical
// values by construction, see bakeStepCols). A non-nil rec captures
// per-step checkpoints for delta replay (delta.go).
func (s *Snapshot) replaySoA(td *tapeData, i, h int, assign []int, sc *replayScratch, rec *deltaAnchor) (sample, error) {
	sc.reset()
	var smp sample
	home := s.home
	nR := s.nR
	rf := s.txRF[h]

	entry := s.start
	entryRegion := assign[entry]
	entryBytes := td.entry[i]
	smp.cost += s.dynReadUSD
	smp.cost += s.snsUSD[home]
	if entryBytes > 0 {
		// txRF*entry9 is the reference's route*factor*(bytes/1e9) grouping
		// with the quotient baked at transpose time.
		q := td.soa.entry9[i]
		smp.txCarbon += rf[home*nR+entryRegion] * q
		smp.cost += q * s.egressPerGB[home*nR+entryRegion]
	}
	eb := entryBytes
	if eb < 0 {
		eb = 0
	}
	// Parenthesized so the transfer term is summed before being added to
	// the access+overhead prefix, exactly as the reference's helper call.
	sc.setStart(entry, s.kvAccess[home]+s.msgOverhead+(s.txBase[home*nR+entryRegion]+eb*s.txPerByte[home*nR+entryRegion]))

	return s.runSoASteps(td, td.stepOff[i], td.stepOff[i+1], h, assign, sc, smp, rec)
}

// runSoASteps replays the step span [lo, hi) on top of smp and the
// current scratch state. It is shared by full replay (span = whole
// sample) and delta resume (span = the dirty suffix, state restored from
// an anchor checkpoint). The body is deliberately closure-free — the
// transfer-latency and transmission-carbon helpers of the reference path
// are inlined against hoisted table slices — so the per-step accumulators
// stay in registers; every addition still happens in the reference order.
func (s *Snapshot) runSoASteps(td *tapeData, lo, hi int32, h int, assign []int, sc *replayScratch, smp sample, rec *deltaAnchor) (sample, error) {
	c := td.soa
	home := s.home
	nR := s.nR
	inten := s.intensity[h]
	rf := s.txRF[h]
	txBase, txPerByte := s.txBase, s.txPerByte
	egress := s.egressPerGB
	msgOverhead := s.msgOverhead
	snsHome := s.snsUSD[home]
	hasErr := s.anyExecErr
	// Column headers hoisted into locals so the loop indexes registers
	// instead of re-loading slice headers through the *soaCols pointer.
	nodeC, flagsC, stagedC, outC, drcC, aux9C, out9C := c.node, c.flags, c.staged, c.out, c.drc, c.aux9, c.out9
	edgeOffC, toC, kindC, bytesC, skipOffC, e9C := c.edgeOff, c.to, c.kind, c.bytes, c.skipOff, c.e9

	for si := lo; si < hi; si++ {
		n := int(nodeC[si])
		if rec != nil {
			// Checkpoint the state in force before this step executes;
			// reading the step's node first does not alter it.
			rec.record(si, int32(n), sc, &smp)
		}
		r := assign[n]
		flags := flagsC[si]
		var startN float64
		if flags&stepSync != 0 {
			staged := stagedC[si]
			hr := home*nR + r
			smp.cost += snsHome
			smp.txCarbon += rf[hr] * (controlBytes / 1e9)
			smp.cost += controlBytes / 1e9 * egress[hr]
			arrive := sc.getReady(n) + msgOverhead + (txBase[hr] + controlBytes*txPerByte[hr])
			ld := staged
			if ld < 0 {
				ld = 0
			}
			load := s.kvAccess[r] + (txBase[hr] + ld*txPerByte[hr])
			smp.cost += s.dynReadUSD
			if staged > 0 {
				q := aux9C[si]
				smp.txCarbon += rf[hr] * q
				smp.cost += q * egress[hr]
			}
			startN = arrive + load
		} else {
			startN = sc.getStart(n)
		}

		if hasErr {
			if err := s.execErr[n*nR+r]; err != nil {
				return smp, err
			}
		}
		base := (int(si)*nR + r) * 3
		dur := drcC[base]
		finish := startN + dur
		if finish > smp.latency {
			smp.latency = finish
		}
		smp.execCarbon += inten[r] * drcC[base+1] * carbon.PUE
		smp.cost += drcC[base+2]

		if flags&stepOutput != 0 {
			out := outC[si]
			if out > 0 {
				q := out9C[si]
				rh := r*nR + home
				smp.txCarbon += rf[rh] * q
				smp.cost += q * egress[rh]
			}
			continue
		}
		eHi := edgeOffC[si+1]
		for ei := edgeOffC[si]; ei < eHi; ei++ {
			to := int(toC[ei])
			switch kindC[ei] {
			case tapeEdgeSkip:
				for k := skipOffC[ei]; k < skipOffC[ei+1]; k++ {
					sn := int(td.skipSyncs[k])
					if finish > sc.getReady(sn) {
						sc.setReady(sn, finish)
					}
				}
				smp.cost += s.dynWriteUSD // skip annotation
			case tapeEdgeStage:
				b := bytesC[ei]
				rh := r*nR + home
				smp.cost += s.dynWriteUSD
				smp.cost += s.dynWriteUSD
				tb := b
				if tb < 0 {
					tb = 0
				}
				if b > 0 {
					q := e9C[ei]
					smp.txCarbon += rf[rh] * q
					smp.cost += q * egress[rh]
				}
				ready := finish + (txBase[rh] + tb*txPerByte[rh]) + s.kvAccess[r]
				if ready > sc.getReady(to) {
					sc.setReady(to, ready)
				}
			case tapeEdgeDirect:
				smp.cost += s.snsUSD[r]
				total := bytesC[ei] + controlBytes
				rt := r*nR + assign[to]
				if total > 0 {
					q := e9C[ei]
					smp.txCarbon += rf[rt] * q
					smp.cost += q * egress[rt]
				}
				tb := total
				if tb < 0 {
					tb = 0
				}
				arrive := finish + msgOverhead + (txBase[rt] + tb*txPerByte[rt])
				if arrive > sc.getStart(to) {
					sc.setStart(to, arrive)
				}
			}
		}
	}
	return smp, nil
}

// replaySoAPair replays recorded samples i and i+1 together, executing one
// step of each per loop iteration. Every addition, comparison, and their
// order within each sample is exactly replaySoA's — the two samples are
// data-independent, so interleaving their instruction streams changes no
// result bit. It exists because the replay loop is bound by the latency of
// its serial accumulator chains, not by issue width; overlapping two
// independent chains recovers much of the stalled pipeline. Tails beyond
// the common step count drain through runSoASteps. Callers must guarantee
// no exec errors exist (s.anyExecErr false): the pair body omits the
// per-step error check, so error surfacing stays on the sequential path.
func (s *Snapshot) replaySoAPair(td *tapeData, i, h int, assign []int, scA, scB *replayScratch) (sample, sample, error) {
	scA.reset()
	scB.reset()
	var smpA, smpB sample
	home := s.home
	nR := s.nR
	rf := s.txRF[h]
	txBase, txPerByte := s.txBase, s.txPerByte
	egress := s.egressPerGB
	msgOverhead := s.msgOverhead
	snsHome := s.snsUSD[home]
	kvAccess := s.kvAccess
	dynRead := s.dynReadUSD
	c := td.soa

	entry := s.start
	entryRegion := assign[entry]
	he := home*nR + entryRegion
	entryA, entryB := td.entry[i], td.entry[i+1]
	smpA.cost += dynRead
	smpA.cost += snsHome
	smpB.cost += dynRead
	smpB.cost += snsHome
	if entryA > 0 {
		q := c.entry9[i]
		smpA.txCarbon += rf[he] * q
		smpA.cost += q * egress[he]
	}
	if entryB > 0 {
		q := c.entry9[i+1]
		smpB.txCarbon += rf[he] * q
		smpB.cost += q * egress[he]
	}
	ebA, ebB := entryA, entryB
	if ebA < 0 {
		ebA = 0
	}
	if ebB < 0 {
		ebB = 0
	}
	scA.setStart(entry, kvAccess[home]+msgOverhead+(txBase[he]+ebA*txPerByte[he]))
	scB.setStart(entry, kvAccess[home]+msgOverhead+(txBase[he]+ebB*txPerByte[he]))

	return s.runSoAStepsPair(td, td.stepOff[i], td.stepOff[i+1], td.stepOff[i+1], td.stepOff[i+2], h, assign, scA, scB, smpA, smpB)
}

// runSoAStepsPair is runSoASteps for two independent spans at once: one
// step of each per iteration, each span's arithmetic in exactly the
// sequential order. Shared by pair replay (full spans) and pair resume
// (dirty suffixes). Tails beyond the common step count drain through
// runSoASteps. Callers must guarantee no exec errors exist.
func (s *Snapshot) runSoAStepsPair(td *tapeData, siA, hiA, siB, hiB int32, h int, assign []int, scA, scB *replayScratch, smpA, smpB sample) (sample, sample, error) {
	home := s.home
	nR := s.nR
	inten := s.intensity[h]
	rf := s.txRF[h]
	txBase, txPerByte := s.txBase, s.txPerByte
	egress := s.egressPerGB
	msgOverhead := s.msgOverhead
	snsHome := s.snsUSD[home]
	kvAccess := s.kvAccess
	dynRead, dynWrite := s.dynReadUSD, s.dynWriteUSD
	snsUSD := s.snsUSD
	c := td.soa
	nodeC, flagsC, stagedC, outC, drcC, aux9C, out9C := c.node, c.flags, c.staged, c.out, c.drc, c.aux9, c.out9
	edgeOffC, toC, kindC, bytesC, skipOffC, e9C := c.edgeOff, c.to, c.kind, c.bytes, c.skipOff, c.e9
	skipS := td.skipSyncs

	for siA < hiA && siB < hiB {
		{ // one step of sample A
			n := int(nodeC[siA])
			r := assign[n]
			flags := flagsC[siA]
			var startN float64
			if flags&stepSync != 0 {
				staged := stagedC[siA]
				hr := home*nR + r
				smpA.cost += snsHome
				smpA.txCarbon += rf[hr] * (controlBytes / 1e9)
				smpA.cost += controlBytes / 1e9 * egress[hr]
				arrive := scA.getReady(n) + msgOverhead + (txBase[hr] + controlBytes*txPerByte[hr])
				ld := staged
				if ld < 0 {
					ld = 0
				}
				load := kvAccess[r] + (txBase[hr] + ld*txPerByte[hr])
				smpA.cost += dynRead
				if staged > 0 {
					q := aux9C[siA]
					smpA.txCarbon += rf[hr] * q
					smpA.cost += q * egress[hr]
				}
				startN = arrive + load
			} else {
				startN = scA.getStart(n)
			}
			base := (int(siA)*nR + r) * 3
			finish := startN + drcC[base]
			if finish > smpA.latency {
				smpA.latency = finish
			}
			smpA.execCarbon += inten[r] * drcC[base+1] * carbon.PUE
			smpA.cost += drcC[base+2]
			if flags&stepOutput != 0 {
				out := outC[siA]
				if out > 0 {
					q := out9C[siA]
					rh := r*nR + home
					smpA.txCarbon += rf[rh] * q
					smpA.cost += q * egress[rh]
				}
			} else {
				eHi := edgeOffC[siA+1]
				for ei := edgeOffC[siA]; ei < eHi; ei++ {
					to := int(toC[ei])
					switch kindC[ei] {
					case tapeEdgeSkip:
						for k := skipOffC[ei]; k < skipOffC[ei+1]; k++ {
							sn := int(skipS[k])
							if finish > scA.getReady(sn) {
								scA.setReady(sn, finish)
							}
						}
						smpA.cost += dynWrite // skip annotation
					case tapeEdgeStage:
						b := bytesC[ei]
						rh := r*nR + home
						smpA.cost += dynWrite
						smpA.cost += dynWrite
						tb := b
						if tb < 0 {
							tb = 0
						}
						if b > 0 {
							q := e9C[ei]
							smpA.txCarbon += rf[rh] * q
							smpA.cost += q * egress[rh]
						}
						ready := finish + (txBase[rh] + tb*txPerByte[rh]) + kvAccess[r]
						if ready > scA.getReady(to) {
							scA.setReady(to, ready)
						}
					case tapeEdgeDirect:
						smpA.cost += snsUSD[r]
						total := bytesC[ei] + controlBytes
						rt := r*nR + assign[to]
						if total > 0 {
							q := e9C[ei]
							smpA.txCarbon += rf[rt] * q
							smpA.cost += q * egress[rt]
						}
						tb := total
						if tb < 0 {
							tb = 0
						}
						arrive := finish + msgOverhead + (txBase[rt] + tb*txPerByte[rt])
						if arrive > scA.getStart(to) {
							scA.setStart(to, arrive)
						}
					}
				}
			}
			siA++
		}
		{ // one step of sample B — mirror of the block above
			n := int(nodeC[siB])
			r := assign[n]
			flags := flagsC[siB]
			var startN float64
			if flags&stepSync != 0 {
				staged := stagedC[siB]
				hr := home*nR + r
				smpB.cost += snsHome
				smpB.txCarbon += rf[hr] * (controlBytes / 1e9)
				smpB.cost += controlBytes / 1e9 * egress[hr]
				arrive := scB.getReady(n) + msgOverhead + (txBase[hr] + controlBytes*txPerByte[hr])
				ld := staged
				if ld < 0 {
					ld = 0
				}
				load := kvAccess[r] + (txBase[hr] + ld*txPerByte[hr])
				smpB.cost += dynRead
				if staged > 0 {
					q := aux9C[siB]
					smpB.txCarbon += rf[hr] * q
					smpB.cost += q * egress[hr]
				}
				startN = arrive + load
			} else {
				startN = scB.getStart(n)
			}
			base := (int(siB)*nR + r) * 3
			finish := startN + drcC[base]
			if finish > smpB.latency {
				smpB.latency = finish
			}
			smpB.execCarbon += inten[r] * drcC[base+1] * carbon.PUE
			smpB.cost += drcC[base+2]
			if flags&stepOutput != 0 {
				out := outC[siB]
				if out > 0 {
					q := out9C[siB]
					rh := r*nR + home
					smpB.txCarbon += rf[rh] * q
					smpB.cost += q * egress[rh]
				}
			} else {
				eHi := edgeOffC[siB+1]
				for ei := edgeOffC[siB]; ei < eHi; ei++ {
					to := int(toC[ei])
					switch kindC[ei] {
					case tapeEdgeSkip:
						for k := skipOffC[ei]; k < skipOffC[ei+1]; k++ {
							sn := int(skipS[k])
							if finish > scB.getReady(sn) {
								scB.setReady(sn, finish)
							}
						}
						smpB.cost += dynWrite // skip annotation
					case tapeEdgeStage:
						b := bytesC[ei]
						rh := r*nR + home
						smpB.cost += dynWrite
						smpB.cost += dynWrite
						tb := b
						if tb < 0 {
							tb = 0
						}
						if b > 0 {
							q := e9C[ei]
							smpB.txCarbon += rf[rh] * q
							smpB.cost += q * egress[rh]
						}
						ready := finish + (txBase[rh] + tb*txPerByte[rh]) + kvAccess[r]
						if ready > scB.getReady(to) {
							scB.setReady(to, ready)
						}
					case tapeEdgeDirect:
						smpB.cost += snsUSD[r]
						total := bytesC[ei] + controlBytes
						rt := r*nR + assign[to]
						if total > 0 {
							q := e9C[ei]
							smpB.txCarbon += rf[rt] * q
							smpB.cost += q * egress[rt]
						}
						tb := total
						if tb < 0 {
							tb = 0
						}
						arrive := finish + msgOverhead + (txBase[rt] + tb*txPerByte[rt])
						if arrive > scB.getStart(to) {
							scB.setStart(to, arrive)
						}
					}
				}
			}
			siB++
		}
	}
	var err error
	if siA < hiA {
		if smpA, err = s.runSoASteps(td, siA, hiA, h, assign, scA, smpA, nil); err != nil {
			return smpA, smpB, err
		}
	}
	if siB < hiB {
		if smpB, err = s.runSoASteps(td, siB, hiB, h, assign, scB, smpB, nil); err != nil {
			return smpA, smpB, err
		}
	}
	return smpA, smpB, nil
}

// replaySample evaluates recorded sample i under the dense assignment.
// The arithmetic — every addition, comparison, and their order — matches
// sampleOnce exactly; only the draws are read from the tape.
func (s *Snapshot) replaySample(td *tapeData, i int, assign []int, inten []float64, sc *replayScratch) (sample, error) {
	sc.reset()
	var smp sample
	home := s.home
	nR := s.nR

	txCarbon := func(from, to int, bytes float64) {
		smp.txCarbon += s.tx.Carbon(inten[from], inten[to], from == to, bytes)
		if bytes > 0 {
			smp.cost += bytes / 1e9 * s.egressPerGB[from*nR+to]
		}
	}
	transfer := func(from, to int, bytes float64) float64 {
		if bytes < 0 {
			bytes = 0
		}
		return s.txBase[from*nR+to] + bytes*s.txPerByte[from*nR+to]
	}

	entry := s.start
	entryRegion := assign[entry]
	entryBytes := td.entry[i]
	smp.cost += s.dynReadUSD
	smp.cost += s.snsUSD[home]
	txCarbon(home, entryRegion, entryBytes)
	sc.setStart(entry, s.kvAccess[home]+s.msgOverhead+transfer(home, entryRegion, entryBytes))

	for si := td.stepOff[i]; si < td.stepOff[i+1]; si++ {
		st := &td.steps[si]
		n := int(st.node)
		r := assign[n]
		var startN float64
		if st.flags&stepSync != 0 {
			staged := st.staged
			smp.cost += s.snsUSD[home]
			txCarbon(home, r, controlBytes)
			arrive := sc.getReady(n) + s.msgOverhead + transfer(home, r, controlBytes)
			load := s.kvAccess[r] + transfer(home, r, staged)
			smp.cost += s.dynReadUSD
			txCarbon(home, r, staged)
			startN = arrive + load
		} else {
			startN = sc.getStart(n)
		}

		if err := s.execErr[n*nR+r]; err != nil {
			return smp, err
		}
		dur := stats.SampleSorted(s.exec[n*nR+r], st.u)
		mem := s.memoryMB[n]
		finish := startN + dur
		if finish > smp.latency {
			smp.latency = finish
		}
		smp.execCarbon += carbon.ExecutionCarbonFromFactors(inten[r], s.execMemKW[n], s.execProcKW[n], dur)
		if mem >= 0 && dur >= 0 {
			smp.cost += mem/1024*dur*s.gbSecUSD[r] + s.reqUSD[r]
		}

		if st.flags&stepOutput != 0 {
			txCarbon(r, home, st.out)
			continue
		}
		for ei := st.edgeOff; ei < st.edgeEnd; ei++ {
			e := &td.edges[ei]
			to := int(e.to)
			switch e.kind {
			case tapeEdgeSkip:
				for k := e.skipOff; k < e.skipEnd; k++ {
					sn := int(td.skipSyncs[k])
					if finish > sc.getReady(sn) {
						sc.setReady(sn, finish)
					}
				}
				smp.cost += s.dynWriteUSD // skip annotation
			case tapeEdgeStage:
				smp.cost += s.dynWriteUSD
				smp.cost += s.dynWriteUSD
				txCarbon(r, home, e.bytes)
				ready := finish + transfer(r, home, e.bytes) + s.kvAccess[r]
				if ready > sc.getReady(to) {
					sc.setReady(to, ready)
				}
			case tapeEdgeDirect:
				smp.cost += s.snsUSD[r]
				total := e.bytes + controlBytes
				txCarbon(r, assign[to], total)
				arrive := finish + s.msgOverhead + transfer(r, assign[to], total)
				if arrive > sc.getStart(to) {
					sc.setStart(to, arrive)
				}
			}
		}
	}
	return smp, nil
}
