package montecarlo

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/region"
	"caribou/internal/stats"
)

// assertTapeParity pins the tape replay to the untaped reference path:
// every Estimate field — means, tails, carbon split, AND the converged
// sample count — must be bit-identical, not merely close.
func assertTapeParity(t *testing.T, snap *Snapshot, plan dag.Plan, h int) *Estimate {
	t.Helper()
	assign, err := snap.Assign(plan)
	if err != nil {
		t.Fatal(err)
	}
	taped, err := snap.Estimate(assign, h)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := snap.EstimateUntaped(assign, h)
	if err != nil {
		t.Fatal(err)
	}
	if *taped != *ref {
		t.Errorf("hour %d plan %v: taped %+v != reference %+v", h, plan, taped, ref)
	}
	return taped
}

// TestTapeMatchesReferenceBitIdentical covers two workloads — the
// branch+sync rich workflow and the linear chain — across hours and
// plans. Struct equality asserts bit-identical floats and identical
// sample counts.
func TestTapeMatchesReferenceBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		in    *fakeInputs
		plans func(d *dag.DAG) []dag.Plan
	}{
		{
			name: "rich",
			in:   richInputs(t),
			plans: func(d *dag.DAG) []dag.Plan {
				return []dag.Plan{
					dag.NewHomePlan(d, region.USEast1),
					{"start": region.USEast1, "left": region.CACentral1, "right": region.USWest2,
						"join": region.CACentral1, "tail": region.USEast1},
					{"start": region.CACentral1, "left": region.USWest2, "right": region.CACentral1,
						"join": region.USEast1, "tail": region.CACentral1},
				}
			},
		},
		{
			name: "chain",
			in:   chainInputs(t),
			plans: func(d *dag.DAG) []dag.Plan {
				return []dag.Plan{
					dag.NewHomePlan(d, region.USEast1),
					dag.NewHomePlan(d, region.CACentral1),
					{"a": region.USEast1, "b": region.CACentral1},
				}
			},
		},
	}
	hours := []time.Time{t0, t0.Add(time.Hour), t0.Add(7 * time.Hour)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			est := New(tc.in, carbon.BestCase(), 11)
			snap, err := est.Compile(nil, hours, t0)
			if err != nil {
				t.Fatal(err)
			}
			for _, plan := range tc.plans(tc.in.d) {
				for h := range hours {
					assertTapeParity(t, snap, plan, h)
				}
			}
		})
	}
}

// heavyTailInputs makes exec durations so skewed that the CV stopping
// rule never fires and every estimate runs the full MaxSamples — which
// forces the lazy tape to extend batch by batch to its cap.
type heavyTailInputs struct {
	*fakeInputs
}

func (h *heavyTailInputs) ExecDuration(dag.NodeID, region.ID) (*stats.Distribution, error) {
	// sd/mean ≈ 3.8 per draw keeps the standard error of the latency mean
	// above TargetCV even at MaxSamples (0.05·√2000 ≈ 2.24 would suffice).
	d := stats.NewDistribution(12)
	for i := 0; i < 11; i++ {
		d.Add(1)
	}
	d.Add(1e6)
	return d, nil
}

// TestTapeLazyExtension checks the compile-on-demand contract: a
// fast-converging plan builds only the first batch; a slow one extends
// the same hour's tape to MaxSamples; a second hour stays untouched until
// used.
func TestTapeLazyExtension(t *testing.T) {
	tapeLen := func(s *Snapshot, h int) int {
		d := s.tapes[h].data.Load()
		if d == nil {
			return 0
		}
		return d.n
	}

	in := chainInputs(t)
	est := New(in, carbon.BestCase(), 5)
	snap, err := est.Compile(nil, []time.Time{t0, t0.Add(time.Hour)}, t0)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := snap.Assign(dag.NewHomePlan(in.d, region.USEast1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := snap.Estimate(assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Samples != BatchSize {
		t.Fatalf("constant inputs should converge in one batch, got %d samples", e.Samples)
	}
	if got := tapeLen(snap, 0); got != BatchSize {
		t.Errorf("hour 0 tape holds %d samples, want exactly one batch (%d)", got, BatchSize)
	}
	if got := tapeLen(snap, 1); got != 0 {
		t.Errorf("hour 1 tape compiled %d samples without any estimate", got)
	}

	heavy := &heavyTailInputs{fakeInputs: chainInputs(t)}
	hest := New(heavy, carbon.BestCase(), 5)
	hsnap, err := hest.Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	hassign, err := hsnap.Assign(dag.NewHomePlan(heavy.d, region.USEast1))
	if err != nil {
		t.Fatal(err)
	}
	he, err := hsnap.Estimate(hassign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if he.Samples != MaxSamples || he.Converged {
		t.Fatalf("heavy-tail inputs should exhaust MaxSamples unconverged, got %d converged=%v",
			he.Samples, he.Converged)
	}
	if got := tapeLen(hsnap, 0); got != MaxSamples {
		t.Errorf("tape extended to %d samples, want %d", got, MaxSamples)
	}
	// Extension must not perturb results: parity after the tape is full.
	assertTapeParity(t, hsnap, dag.NewHomePlan(heavy.d, region.CACentral1), 0)
}

// TestTapeConcurrentLazyBuildDeterministic races many goroutines into
// the first build and later extensions of a shared tape (run with -race
// via `make verify`): every concurrent estimate must equal its serial
// counterpart from a fresh snapshot.
func TestTapeConcurrentLazyBuildDeterministic(t *testing.T) {
	in := richInputs(t)
	plans := []dag.Plan{
		dag.NewHomePlan(in.d, region.USEast1),
		{"start": region.USEast1, "left": region.CACentral1, "right": region.USWest2,
			"join": region.CACentral1, "tail": region.USEast1},
		{"start": region.CACentral1, "left": region.USWest2, "right": region.CACentral1,
			"join": region.USEast1, "tail": region.CACentral1},
		dag.NewHomePlan(in.d, region.USWest2),
	}

	serialSnap, err := New(in, carbon.BestCase(), 9).Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Estimate, len(plans))
	for i, p := range plans {
		if want[i], err = serialSnap.EstimatePlan(p, 0); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := New(in, carbon.BestCase(), 9).Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	got := make([][]*Estimate, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]*Estimate, len(plans))
			for i, p := range plans {
				e, err := snap.EstimatePlan(p, 0)
				if err != nil {
					errs[g] = err
					return
				}
				got[g][i] = e
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		for i := range plans {
			if *got[g][i] != *want[i] {
				t.Errorf("goroutine %d plan %d diverged from serial: %+v vs %+v",
					g, i, got[g][i], want[i])
			}
		}
	}
}

// deepChainInputs builds start →(p=0) c0 → c1 → … → c<depth-1>: the
// untaken conditional head makes every sample skip-propagate down the
// full chain, so recursion depth would scale with the workflow size.
func deepChainInputs(t *testing.T, depth int) *fakeInputs {
	t.Helper()
	b := dag.NewBuilder("deepchain").AddNode(dag.Node{ID: "start"})
	prev := dag.NodeID("start")
	for i := 0; i < depth; i++ {
		id := dag.NodeID(fmt.Sprintf("c%d", i))
		b.AddNode(dag.Node{ID: id})
		if i == 0 {
			b.AddConditionalEdge(prev, id, 0)
		} else {
			b.AddEdge(prev, id)
		}
		prev = id
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &fakeInputs{
		d:         d,
		cat:       region.NorthAmerica(),
		durations: map[dag.NodeID]float64{"start": 1},
		bytes:     map[[2]dag.NodeID]float64{},
		probs:     map[[2]dag.NodeID]float64{{"start", "c0"}: 0},
		intensity: map[region.ID]float64{region.USEast1: 400, region.CACentral1: 35},
		output:    map[dag.NodeID]float64{},
	}
}

// TestDeepConditionalChainSkipPropagation is the regression test for the
// iterative (explicit-stack) skip propagation: a 30,000-node linear
// chain of skipped stages must evaluate without growing the goroutine
// stack per node, on the tape compiler, the untaped snapshot path, and
// the Inputs-path estimator alike — and all three must agree.
func TestDeepConditionalChainSkipPropagation(t *testing.T) {
	const depth = 30000
	in := deepChainInputs(t, depth)
	est := New(in, carbon.BestCase(), 13)
	snap, err := est.Compile([]region.ID{region.USEast1, region.CACentral1}, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	plan := dag.NewHomePlan(in.d, region.USEast1)
	taped := assertTapeParity(t, snap, plan, 0)
	// Only "start" runs (≈1 s exec plus entry overheads): the whole chain
	// was skipped in every sample.
	if taped.LatencyMean < 1 || taped.LatencyMean > 2 {
		t.Errorf("latency %v, want ~1.1 s with the chain skipped", taped.LatencyMean)
	}
	want, err := est.Estimate(plan, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if taped.Samples != want.Samples || relDiff(taped.LatencyMean, want.LatencyMean) > 1e-9 {
		t.Errorf("snapshot %+v disagrees with estimator %+v", taped, want)
	}
}
