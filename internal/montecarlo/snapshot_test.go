package montecarlo

import (
	"math"
	"sync"
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/pricing"
	"caribou/internal/region"
	"caribou/internal/stats"
)

// richInputs builds a workflow exercising every estimator code path:
// conditional branches, synchronization nodes, and terminal write-back on
// a node that is itself a sync node ("tail" has two predecessors and an
// output distribution, like Text2Speech's final censoring stage) — the
// combination carries both the sync and output step flags through the
// tape compiler, so every parity test covers it.
func richInputs(t *testing.T) *fakeInputs {
	t.Helper()
	d, err := dag.NewBuilder("rich").
		AddNode(dag.Node{ID: "start"}).
		AddNode(dag.Node{ID: "left"}).
		AddNode(dag.Node{ID: "right"}).
		AddNode(dag.Node{ID: "join"}).
		AddNode(dag.Node{ID: "tail"}).
		AddConditionalEdge("start", "left", 0.7).
		AddEdge("start", "right").
		AddEdge("left", "join").
		AddEdge("right", "join").
		AddEdge("join", "tail").
		AddEdge("right", "tail").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return &fakeInputs{
		d:   d,
		cat: region.NorthAmerica(),
		durations: map[dag.NodeID]float64{
			"start": 1, "left": 2, "right": 3, "join": 1.5, "tail": 0.5,
		},
		bytes: map[[2]dag.NodeID]float64{
			{"start", "left"}: 2e6, {"start", "right"}: 1e6,
			{"left", "join"}: 3e6, {"right", "join"}: 5e5,
			{"right", "tail"}: 7e5,
		},
		probs:     map[[2]dag.NodeID]float64{{"start", "left"}: 0.7},
		intensity: map[region.ID]float64{region.USEast1: 400, region.USWest2: 250, region.CACentral1: 35},
		output:    map[dag.NodeID]float64{"tail": 4e5},
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestSnapshotMatchesEstimator pins the snapshot path to the Inputs path:
// same seed, same solve instant, same plan must produce the same estimate
// up to the affine transfer-time approximation (≤ relative 1e-9).
func TestSnapshotMatchesEstimator(t *testing.T) {
	in := richInputs(t)
	est := New(in, carbon.BestCase(), 7)
	hours := []time.Time{t0, t0.Add(time.Hour)}
	snap, err := est.Compile(nil, hours, t0)
	if err != nil {
		t.Fatal(err)
	}
	plans := []dag.Plan{
		dag.NewHomePlan(in.d, region.USEast1),
		{"start": region.USEast1, "left": region.CACentral1, "right": region.USWest2,
			"join": region.CACentral1, "tail": region.USEast1},
	}
	for _, plan := range plans {
		for h, at := range hours {
			want, err := est.Estimate(plan, at, t0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := snap.EstimatePlan(plan, h)
			if err != nil {
				t.Fatal(err)
			}
			if got.Samples != want.Samples || got.Converged != want.Converged {
				t.Fatalf("plan %v hour %d: samples/converged %d/%v vs %d/%v",
					plan, h, got.Samples, got.Converged, want.Samples, want.Converged)
			}
			pairs := [][2]float64{
				{got.LatencyMean, want.LatencyMean}, {got.LatencyP95, want.LatencyP95},
				{got.CostMean, want.CostMean}, {got.CostP95, want.CostP95},
				{got.CarbonMean, want.CarbonMean}, {got.CarbonP95, want.CarbonP95},
				{got.ExecCarbonMean, want.ExecCarbonMean}, {got.TxCarbonMean, want.TxCarbonMean},
			}
			for i, p := range pairs {
				if relDiff(p[0], p[1]) > 1e-9 {
					t.Errorf("plan %v hour %d metric %d: snapshot %v vs estimator %v", plan, h, i, p[0], p[1])
				}
			}
		}
	}
}

// countingInputs wraps an Inputs and counts every interface-method call.
type countingInputs struct {
	in    Inputs
	calls int
}

func (c *countingInputs) DAG() *dag.DAG                { c.calls++; return c.in.DAG() }
func (c *countingInputs) Home() region.ID              { c.calls++; return c.in.Home() }
func (c *countingInputs) Catalogue() *region.Catalogue { c.calls++; return c.in.Catalogue() }
func (c *countingInputs) ExecDuration(n dag.NodeID, r region.ID) (*stats.Distribution, error) {
	c.calls++
	return c.in.ExecDuration(n, r)
}
func (c *countingInputs) CPUUtil(n dag.NodeID) float64  { c.calls++; return c.in.CPUUtil(n) }
func (c *countingInputs) MemoryMB(n dag.NodeID) float64 { c.calls++; return c.in.MemoryMB(n) }
func (c *countingInputs) EdgeBytes(from, to dag.NodeID) *stats.Distribution {
	c.calls++
	return c.in.EdgeBytes(from, to)
}
func (c *countingInputs) EntryBytes() *stats.Distribution { c.calls++; return c.in.EntryBytes() }
func (c *countingInputs) OutputBytes(n dag.NodeID) *stats.Distribution {
	c.calls++
	return c.in.OutputBytes(n)
}
func (c *countingInputs) EdgeProbability(e dag.Edge) float64 {
	c.calls++
	return c.in.EdgeProbability(e)
}
func (c *countingInputs) TransferSeconds(a, b region.ID, bytes float64) float64 {
	c.calls++
	return c.in.TransferSeconds(a, b, bytes)
}
func (c *countingInputs) MessageOverheadSeconds() float64 {
	c.calls++
	return c.in.MessageOverheadSeconds()
}
func (c *countingInputs) KVAccessSeconds(r region.ID) float64 {
	c.calls++
	return c.in.KVAccessSeconds(r)
}
func (c *countingInputs) CostBook() *pricing.Book { c.calls++; return c.in.CostBook() }
func (c *countingInputs) IntensityAt(r region.ID, at, now time.Time) (float64, error) {
	c.calls++
	return c.in.IntensityAt(r, at, now)
}

// TestSnapshotEliminatesInterfaceCallsFromSampling verifies the
// compile-once contract: after Compile, evaluating plans makes zero
// Inputs method calls — the inner sampling loop reads only baked slices.
func TestSnapshotEliminatesInterfaceCallsFromSampling(t *testing.T) {
	counting := &countingInputs{in: richInputs(t)}
	snap, err := Compile(counting, carbon.BestCase(), 1, nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if counting.calls == 0 {
		t.Fatal("compile should consult the Inputs")
	}
	counting.calls = 0
	plan := dag.Plan{"start": region.USEast1, "left": region.CACentral1, "right": region.USWest2,
		"join": region.CACentral1, "tail": region.USEast1}
	if _, err := snap.EstimatePlan(plan, 0); err != nil {
		t.Fatal(err)
	}
	if counting.calls != 0 {
		t.Errorf("snapshot estimate made %d Inputs calls, want 0", counting.calls)
	}
}

// TestSnapshotConcurrentEstimatesAgree drives the same snapshot from many
// goroutines (run with -race in `make verify`): estimates must be
// identical regardless of interleaving, unlike the Inputs path whose
// lazily-sorted distributions forbid sharing.
func TestSnapshotConcurrentEstimatesAgree(t *testing.T) {
	in := richInputs(t)
	est := New(in, carbon.BestCase(), 3)
	snap, err := est.Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := snap.Assign(dag.NewHomePlan(in.d, region.USEast1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := snap.Estimate(assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]*Estimate, 8)
	errs := make([]error, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = snap.Estimate(assign, 0)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if *got[i] != *want {
			t.Errorf("goroutine %d estimate diverged: %+v vs %+v", i, got[i], want)
		}
	}
}

func TestSnapshotValidation(t *testing.T) {
	in := richInputs(t)
	est := New(in, carbon.BestCase(), 1)
	if _, err := est.Compile(nil, nil, t0); err == nil {
		t.Error("want error for empty solve window")
	}
	snap, err := est.Compile([]region.ID{region.USEast1, region.CACentral1}, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Estimate([]int{0}, 0); err == nil {
		t.Error("want error for short assignment")
	}
	if _, err := snap.Estimate(snap.HomeAssign(), 5); err == nil {
		t.Error("want error for out-of-window hour")
	}
	bad := snap.HomeAssign()
	bad[0] = 99
	if _, err := snap.Estimate(bad, 0); err == nil {
		t.Error("want error for out-of-range region index")
	}
	if _, err := snap.Assign(dag.Plan{"start": "nope"}); err == nil {
		t.Error("want error for plan missing stages")
	}
	if _, err := snap.EstimatePlan(dag.NewHomePlan(in.d, region.USWest2), 0); err == nil {
		t.Error("want error for region outside the interned set")
	}
	// Round trip: PlanOf(Assign(p)) == p.
	p := dag.Plan{"start": region.USEast1, "left": region.CACentral1, "right": region.USEast1,
		"join": region.CACentral1, "tail": region.USEast1}
	assign, err := snap.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.PlanOf(assign).Equal(p) {
		t.Errorf("round trip mangled plan: %v", snap.PlanOf(assign))
	}
}
