package montecarlo

import (
	"sync"
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/region"
	"caribou/internal/telemetry"
)

// enableTelemetry installs a fresh process recorder for the test so the
// delta counters (captured at Estimator construction) are live, and
// restores the disabled default afterwards.
func enableTelemetry(t *testing.T) {
	t.Helper()
	telemetry.Enable(telemetry.Options{})
	t.Cleanup(telemetry.Disable)
}

// deltaPair runs EstimateDelta(base→assign) and full Estimate(assign) on
// the same snapshot and requires bit-identical results (struct equality
// covers every float field and the sample count).
func deltaPair(t *testing.T, snap *Snapshot, basePlan, plan dag.Plan, h int) {
	t.Helper()
	baseAssign, err := snap.Assign(basePlan)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := snap.Assign(plan)
	if err != nil {
		t.Fatal(err)
	}
	base, err := snap.Estimate(baseAssign, h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := snap.EstimateDelta(base, baseAssign, assign, h)
	if err != nil {
		t.Fatal(err)
	}
	want, err := snap.Estimate(assign, h)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("hour %d: delta %v→%v = %+v, full replay %+v", h, basePlan, plan, got, want)
	}
}

// TestEstimateDeltaBitIdenticalToFull sweeps base→neighbor pairs that
// land on every EstimateDelta path — single-node diffs resumable from a
// boundary checkpoint, diffs at the entry node (cone covers the tape:
// structural fallback), multi-node diffs both inside and ahead of the
// cone, and the identical-plan shortcut — across hours, on the sync-rich
// workflow. Results must be bit-identical to full replay in every case.
func TestEstimateDeltaBitIdenticalToFull(t *testing.T) {
	in := richInputs(t)
	hours := []time.Time{t0, t0.Add(time.Hour), t0.Add(7 * time.Hour)}
	snap, err := New(in, carbon.BestCase(), 11).Compile(nil, hours, t0)
	if err != nil {
		t.Fatal(err)
	}
	home := dag.NewHomePlan(in.d, region.USEast1)
	mut := func(over dag.Plan) dag.Plan {
		p := dag.Plan{}
		for k, v := range home {
			p[k] = v
		}
		for k, v := range over {
			p[k] = v
		}
		return p
	}
	pairs := []struct {
		name       string
		base, plan dag.Plan
	}{
		{"late-single", home, mut(dag.Plan{"tail": region.CACentral1})},
		{"mid-single", home, mut(dag.Plan{"join": region.USWest2})},
		{"entry-diff", home, mut(dag.Plan{"start": region.CACentral1})},
		{"multi-late", home, mut(dag.Plan{"join": region.CACentral1, "tail": region.USWest2})},
		{"multi-spanning", home, mut(dag.Plan{"left": region.USWest2, "tail": region.CACentral1})},
		{"base-offloaded", mut(dag.Plan{"join": region.USWest2}), mut(dag.Plan{"join": region.USWest2, "tail": region.CACentral1})},
		{"identical", home, home},
	}
	for _, pc := range pairs {
		t.Run(pc.name, func(t *testing.T) {
			for h := range hours {
				deltaPair(t, snap, pc.base, pc.plan, h)
			}
		})
	}
}

// TestEstimateDeltaIdenticalPlanReturnsBase pins the no-diff shortcut:
// when the plans match and a base estimate is supplied, EstimateDelta
// returns that pointer without replaying anything.
func TestEstimateDeltaIdenticalPlanReturnsBase(t *testing.T) {
	in := richInputs(t)
	snap, err := New(in, carbon.BestCase(), 3).Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := snap.Assign(dag.NewHomePlan(in.d, region.USEast1))
	if err != nil {
		t.Fatal(err)
	}
	base, err := snap.Estimate(assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := snap.EstimateDelta(base, assign, assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("identical plans should return the base estimate pointer, got %p want %p", got, base)
	}
}

// TestDeltaAnchorPiggybackedOnFallback pins the anchor build strategy:
// the first eligible request of an episode records its own full replay
// (no dedicated replay of the incumbent), later neighbors resume from it,
// and an entry-node diff never builds an anchor at all.
func TestDeltaAnchorPiggybackedOnFallback(t *testing.T) {
	enableTelemetry(t)
	in := richInputs(t)
	snap, err := New(in, carbon.BestCase(), 11).Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	home := dag.NewHomePlan(in.d, region.USEast1)
	baseAssign, err := snap.Assign(home)
	if err != nil {
		t.Fatal(err)
	}
	base, err := snap.Estimate(baseAssign, 0)
	if err != nil {
		t.Fatal(err)
	}
	neighbor := dag.Plan{}
	for k, v := range home {
		neighbor[k] = v
	}
	neighbor["tail"] = region.CACentral1
	assign, err := snap.Assign(neighbor)
	if err != nil {
		t.Fatal(err)
	}

	// Entry-node diff: structural fallback, must not build an anchor.
	early := dag.Plan{}
	for k, v := range home {
		early[k] = v
	}
	early["start"] = region.CACentral1
	earlyAssign, err := snap.Assign(early)
	if err != nil {
		t.Fatal(err)
	}
	fb0 := snap.tel.deltaFallbacks.Value()
	if _, err := snap.EstimateDelta(base, baseAssign, earlyAssign, 0); err != nil {
		t.Fatal(err)
	}
	if snap.deltaAnchorLoaded(0) {
		t.Fatal("entry-node diff must not record an anchor (its cone covers the whole tape)")
	}
	if got := snap.tel.deltaFallbacks.Value(); got != fb0+1 {
		t.Errorf("entry-node diff: fallbacks %d, want %d", got, fb0+1)
	}

	// First eligible request: builds the anchor as a side effect of its
	// own (full, bit-identical) replay.
	anchors0 := snap.tel.deltaAnchors.Value()
	got, err := snap.EstimateDelta(base, baseAssign, assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := snap.Estimate(assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("recording estimate diverged from full replay: %+v vs %+v", got, want)
	}
	if !snap.deltaAnchorLoaded(0) {
		t.Fatal("first eligible request should have recorded an anchor")
	}
	if snap.tel.deltaAnchors.Value() != anchors0+1 {
		t.Errorf("anchors %d, want %d", snap.tel.deltaAnchors.Value(), anchors0+1)
	}

	// Second neighbor: must resume from the recorded checkpoints.
	resumed0 := snap.tel.deltaResumed.Value()
	neighbor2 := dag.Plan{}
	for k, v := range home {
		neighbor2[k] = v
	}
	neighbor2["tail"] = region.USWest2
	deltaPair(t, snap, home, neighbor2, 0)
	if snap.tel.deltaResumed.Value() == resumed0 {
		t.Error("second eligible neighbor should resume from the anchor, not replay in full")
	}
}

// TestDeltaSkipConeCrossesSync exercises resume checkpoints whose suffix
// contains both a conditionally-skipped branch (start→left has p=0.7, so
// some samples skip-propagate into the join) and the join's sync wait:
// restoring only the cone slots must still reproduce full replay exactly,
// for every plan diff at or past the join.
func TestDeltaSkipConeCrossesSync(t *testing.T) {
	in := richInputs(t)
	hours := []time.Time{t0, t0.Add(3 * time.Hour)}
	snap, err := New(in, carbon.BestCase(), 29).Compile(nil, hours, t0)
	if err != nil {
		t.Fatal(err)
	}
	home := dag.NewHomePlan(in.d, region.USEast1)
	for _, tail := range []region.ID{region.CACentral1, region.USWest2} {
		for _, join := range []region.ID{region.USEast1, region.CACentral1} {
			p := dag.Plan{}
			for k, v := range home {
				p[k] = v
			}
			p["join"] = join
			p["tail"] = tail
			for h := range hours {
				deltaPair(t, snap, home, p, h)
			}
		}
	}
}

// TestDeltaHeavyTailConcurrentParity drives delta replay past the anchor
// horizon: heavy-tail exec durations keep every estimate running far
// beyond the checkpointed sample count, so resumes hand over to full
// replay mid-estimate (both legs of estimateFromAnchor).
// Eight goroutines share one snapshot (put under -race by `make verify`)
// and each must match the serial full replay bit for bit; worker count 1
// is the plain deltaPair call before the fan-out.
func TestDeltaHeavyTailConcurrentParity(t *testing.T) {
	in := &heavyTailInputs{fakeInputs: richInputs(t)}
	snap, err := New(in, carbon.BestCase(), 17).Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	home := dag.NewHomePlan(in.d, region.USEast1)
	neighbor := dag.Plan{}
	for k, v := range home {
		neighbor[k] = v
	}
	neighbor["tail"] = region.CACentral1

	baseAssign, err := snap.Assign(home)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := snap.Assign(neighbor)
	if err != nil {
		t.Fatal(err)
	}
	base, err := snap.Estimate(baseAssign, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := snap.Estimate(assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want.Samples <= deltaAnchorSamples {
		t.Fatalf("heavy-tail fixture must outrun the anchor horizon (%d), converged at %d samples",
			deltaAnchorSamples, want.Samples)
	}

	// Serial (worker count 1).
	deltaPair(t, snap, home, neighbor, 0)

	// Concurrent (worker count 8), all through EstimateDelta.
	const goroutines = 8
	errs := make([]error, goroutines)
	got := make([]*Estimate, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g], errs[g] = snap.EstimateDelta(base, baseAssign, assign, 0)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if *got[g] != *want {
			t.Errorf("goroutine %d diverged from full replay: %+v vs %+v", g, got[g], want)
		}
	}
}

// TestEstimateDeltaFallsBackWithoutSoA pins the escape hatches: with the
// AoS layout or no tapes at all, EstimateDelta degrades to the
// corresponding full path, still bit-identical.
func TestEstimateDeltaFallsBackWithoutSoA(t *testing.T) {
	enableTelemetry(t)
	in := richInputs(t)
	home := dag.NewHomePlan(in.d, region.USEast1)
	neighbor := dag.Plan{}
	for k, v := range home {
		neighbor[k] = v
	}
	neighbor["tail"] = region.CACentral1
	for _, mode := range []string{"aos", "untaped"} {
		t.Run(mode, func(t *testing.T) {
			snap, err := New(in, carbon.BestCase(), 11).Compile(nil, []time.Time{t0}, t0)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "aos":
				snap.SetSoA(false)
			case "untaped":
				snap.SetTapes(false)
			}
			fb0 := snap.tel.deltaFallbacks.Value()
			deltaPair(t, snap, home, neighbor, 0)
			if snap.tel.deltaFallbacks.Value() == fb0 {
				t.Errorf("%s mode should count a delta fallback", mode)
			}
			if snap.deltaAnchorLoaded(0) {
				t.Errorf("%s mode must not record anchors", mode)
			}
		})
	}
}
