// Package montecarlo estimates end-to-end latency, cost, and carbon of a
// deployment plan for a (possibly conditional) workflow DAG by Monte Carlo
// simulation (§7.1): edge invocation probabilities are sampled to decide
// which branches run, node execution times and transmission latencies are
// drawn from learned distributions, and the critical path of the realized
// partial DAG yields the end-to-end time. Sampling proceeds in batches of
// 200 until the coefficients of variation of latency, cost, and carbon all
// drop below 0.05, or 2,000 samples are reached. The distribution means
// are the "average case" used for plan ordering; the 95th percentiles are
// the "tail case" checked against QoS tolerances.
package montecarlo

import (
	"fmt"
	"math"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/pricing"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/stats"
	"caribou/internal/telemetry"
)

// Stopping rule constants from §7.1.
const (
	BatchSize  = 200
	MaxSamples = 2000
	TargetCV   = 0.05
)

// controlBytes is the fixed size of orchestration messages (invoke
// notifications, annotations) added on top of payload bytes. Shared by
// the Inputs path, the snapshot path, and the tape compiler so all three
// model the same wire traffic.
const controlBytes = 2e3

// Inputs supplies the learned and external metrics the estimator samples
// from; *metrics.Manager implements it.
type Inputs interface {
	DAG() *dag.DAG
	Home() region.ID
	Catalogue() *region.Catalogue
	ExecDuration(node dag.NodeID, r region.ID) (*stats.Distribution, error)
	CPUUtil(node dag.NodeID) float64
	MemoryMB(node dag.NodeID) float64
	EdgeBytes(from, to dag.NodeID) *stats.Distribution
	EntryBytes() *stats.Distribution
	OutputBytes(node dag.NodeID) *stats.Distribution
	EdgeProbability(e dag.Edge) float64
	TransferSeconds(from, to region.ID, bytes float64) float64
	MessageOverheadSeconds() float64
	KVAccessSeconds(from region.ID) float64
	CostBook() *pricing.Book
	// IntensityAt returns the measured or forecast grid intensity of
	// region r at t, given the solve time now.
	IntensityAt(r region.ID, t time.Time, now time.Time) (float64, error)
}

// Estimate summarizes the sampled distributions.
type Estimate struct {
	Samples int
	// Latency in seconds, cost in USD, carbon in grams CO2-eq per
	// invocation.
	LatencyMean, LatencyP95 float64
	CostMean, CostP95       float64
	CarbonMean, CarbonP95   float64
	// ExecCarbonMean and TxCarbonMean split the carbon mean into
	// execution and transmission components (Fig 8).
	ExecCarbonMean, TxCarbonMean float64
	Converged                    bool
}

// Estimator runs plan evaluations against fixed inputs.
type Estimator struct {
	in   Inputs
	tx   carbon.TransmissionModel
	seed int64
	tel  mcTelemetry
}

// mcTelemetry holds the sampling counters, captured at construction
// (Estimator.New or Compile); nil-safe no-ops when telemetry is off. The
// counters are bumped once per Estimate call — never inside the sampling
// loop — so the instrumented hot path is unchanged.
type mcTelemetry struct {
	estimates *telemetry.Counter
	samples   *telemetry.Counter
	// Tape accounting (tape.go): batches/samples compiled onto per-hour
	// tapes, and samples evaluated by replay. tapeSamples counts drawing
	// work done once per hour; tapeReplays counts evaluations served from
	// it — their ratio is the common-random-number amortization factor.
	tapeBatches *telemetry.Counter
	tapeSamples *telemetry.Counter
	tapeReplays *telemetry.Counter
	// Delta-replay accounting (delta.go): anchors built, samples resumed
	// from an anchor checkpoint (the incremental win), and EstimateDelta
	// calls that fell back to full replay (multi-node diff, entry-node
	// diff, oversized DAG, or non-SoA tapes).
	deltaAnchors   *telemetry.Counter
	deltaResumed   *telemetry.Counter
	deltaFallbacks *telemetry.Counter
	// Batch-replay accounting (batch.go): shared sweeps run, candidate
	// plans evaluated through them, and candidates abandoned mid-sweep by
	// the exact bound-based pruning rule.
	batchSweeps      *telemetry.Counter
	batchPlans       *telemetry.Counter
	prunedCandidates *telemetry.Counter
}

func newMCTelemetry() mcTelemetry {
	rec := telemetry.Default()
	return mcTelemetry{
		estimates:        rec.Counter("montecarlo.estimates"),
		samples:          rec.Counter("montecarlo.samples"),
		tapeBatches:      rec.Counter("montecarlo.tape_batches"),
		tapeSamples:      rec.Counter("montecarlo.tape_samples"),
		tapeReplays:      rec.Counter("montecarlo.tape_replays"),
		deltaAnchors:     rec.Counter("montecarlo.delta_anchors"),
		deltaResumed:     rec.Counter("montecarlo.delta_resumed"),
		deltaFallbacks:   rec.Counter("montecarlo.delta_fallbacks"),
		batchSweeps:      rec.Counter("montecarlo.batch_sweeps"),
		batchPlans:       rec.Counter("montecarlo.batch_plans"),
		prunedCandidates: rec.Counter("montecarlo.pruned_candidates"),
	}
}

// New returns an estimator using the given transmission-carbon model.
func New(in Inputs, tx carbon.TransmissionModel, seed int64) *Estimator {
	return &Estimator{in: in, tx: tx, seed: seed, tel: newMCTelemetry()}
}

// SetTransmissionModel swaps the transmission-carbon model (§9.3 sweeps).
func (e *Estimator) SetTransmissionModel(tx carbon.TransmissionModel) { e.tx = tx }

// Estimate evaluates plan as if in effect at `at`, solving at `now`
// (carbon beyond now comes from forecasts).
func (e *Estimator) Estimate(plan dag.Plan, at, now time.Time) (*Estimate, error) {
	d := e.in.DAG()
	if len(plan) != d.Len() {
		return nil, fmt.Errorf("montecarlo: plan covers %d of %d stages", len(plan), d.Len())
	}
	intensity := make(map[region.ID]float64, len(plan)+1)
	need := append(plan.Regions(), e.in.Home())
	for _, r := range need {
		if _, ok := intensity[r]; ok {
			continue
		}
		v, err := e.in.IntensityAt(r, at, now)
		if err != nil {
			return nil, err
		}
		intensity[r] = v
	}

	rng := simclock.DeriveRand(e.seed, fmt.Sprintf("mc/%s/%d", d.Name(), at.Unix()))
	var acc seriesAcc
	for acc.samples() < MaxSamples {
		for i := 0; i < BatchSize; i++ {
			s, err := e.sampleOnce(plan, intensity, rng)
			if err != nil {
				return nil, err
			}
			acc.add(s)
		}
		if acc.converged() {
			break
		}
	}
	e.tel.estimates.Inc()
	e.tel.samples.Add(int64(acc.samples()))
	return acc.summarize()
}

// seriesAcc accumulates the per-sample series and applies the batched
// stopping rule. The interface-backed Estimator and the compiled Snapshot
// share it so both paths summarize with identical arithmetic.
type seriesAcc struct {
	lat, cost, carb, execC, txC []float64
	done                        bool
	// Means computed by the last converged() call, valid while the series
	// still holds meanAt samples. summarize reuses them instead of
	// re-averaging the three largest series: stats.Mean is deterministic,
	// so the cached values are bit-identical to a recomputation.
	latMean, costMean, carbMean float64
	meanAt                      int
}

func (a *seriesAcc) samples() int { return len(a.lat) }

// reset clears the accumulator for reuse, keeping the slice capacity so a
// pooled accumulator stops allocating after its first estimate.
func (a *seriesAcc) reset() {
	a.lat = a.lat[:0]
	a.cost = a.cost[:0]
	a.carb = a.carb[:0]
	a.execC = a.execC[:0]
	a.txC = a.txC[:0]
	a.done = false
	a.meanAt = 0
}

func (a *seriesAcc) add(s sample) {
	if a.lat == nil {
		// Most estimates converge within the first batch; reserving it up
		// front avoids regrowing five slices through the hot loop.
		a.lat = make([]float64, 0, BatchSize)
		a.cost = make([]float64, 0, BatchSize)
		a.carb = make([]float64, 0, BatchSize)
		a.execC = make([]float64, 0, BatchSize)
		a.txC = make([]float64, 0, BatchSize)
	}
	a.lat = append(a.lat, s.latency)
	a.cost = append(a.cost, s.cost)
	a.carb = append(a.carb, s.execCarbon+s.txCarbon)
	a.execC = append(a.execC, s.execCarbon)
	a.txC = append(a.txC, s.txCarbon)
}

func (a *seriesAcc) converged() bool {
	var latCV, costCV, carbCV float64
	a.latMean, latCV = meanCV(a.lat)
	a.costMean, costCV = meanCV(a.cost)
	a.carbMean, carbCV = meanCV(a.carb)
	a.meanAt = len(a.lat)
	if latCV < TargetCV && costCV < TargetCV && carbCV < TargetCV {
		a.done = true
	}
	return a.done
}

func (a *seriesAcc) summarize() (*Estimate, error) {
	est := &Estimate{
		Samples:        len(a.lat),
		Converged:      a.done,
		ExecCarbonMean: stats.Mean(a.execC),
		TxCarbonMean:   stats.Mean(a.txC),
	}
	if a.meanAt == len(a.lat) {
		est.LatencyMean, est.CostMean, est.CarbonMean = a.latMean, a.costMean, a.carbMean
	} else {
		est.LatencyMean = stats.Mean(a.lat)
		est.CostMean = stats.Mean(a.cost)
		est.CarbonMean = stats.Mean(a.carb)
	}
	// summarize is the accumulator's last read before reset, so the
	// in-place percentile (identical values, permuted storage) is safe.
	var err error
	if est.LatencyP95, err = stats.PercentileInPlace(a.lat, 95); err != nil {
		return nil, err
	}
	if est.CostP95, err = stats.PercentileInPlace(a.cost, 95); err != nil {
		return nil, err
	}
	if est.CarbonP95, err = stats.PercentileInPlace(a.carb, 95); err != nil {
		return nil, err
	}
	return est, nil
}

// meanCV returns the series mean and the coefficient of variation of the
// *estimated mean* (standard error over mean): the convergence criterion
// for the batched sampling. The mean is returned so callers can cache it
// for the summary instead of averaging the series again.
func meanCV(xs []float64) (mean, cv float64) {
	m, v := stats.MeanVariance(xs)
	if m == 0 {
		return m, 0
	}
	se := math.Sqrt(v) / math.Sqrt(float64(len(xs)))
	return m, math.Abs(se / m)
}

type sample struct {
	latency    float64
	cost       float64
	execCarbon float64
	txCarbon   float64
}

// sampleOnce simulates one invocation under the plan. It mirrors the
// executor's structure: entry routing, direct pub/sub edges,
// KV staging and join for synchronization nodes, terminal write-back.
func (e *Estimator) sampleOnce(plan dag.Plan, intensity map[region.ID]float64, rng *simclock.Rand) (sample, error) {
	d := e.in.DAG()
	home := e.in.Home()
	book := e.in.CostBook()
	msgOverhead := e.in.MessageOverheadSeconds()
	var s sample

	txCarbon := func(from, to region.ID, bytes float64) {
		s.txCarbon += e.tx.Carbon(intensity[from], intensity[to], from == to, bytes)
		s.cost += book.EgressCost(from, to, bytes)
	}
	sns := func(r region.ID) { s.cost += book.SNSCost(r, 1) }
	kvRead := func() { s.cost += book.DynamoCost(home, 1, 0) }
	kvWrite := func() { s.cost += book.DynamoCost(home, 0, 1) }

	// executed[n] true → finish[n] holds its completion time.
	executed := make(map[dag.NodeID]bool, d.Len())
	finish := make(map[dag.NodeID]float64, d.Len())
	// For sync nodes: latest data-ready time among reached edges and
	// total staged bytes.
	syncReady := make(map[dag.NodeID]float64)
	syncStaged := make(map[dag.NodeID]float64)
	syncReached := make(map[dag.NodeID]bool)
	skipped := make(map[dag.NodeID]bool)

	// Entry: DP fetch at home plus routed entry payload.
	entry := d.Start()
	entryRegion := plan[entry]
	entryBytes := e.in.EntryBytes().Sample(rng.Float64()) + controlBytes
	kvRead()
	sns(home)
	txCarbon(home, entryRegion, entryBytes)
	entryLatency := e.in.KVAccessSeconds(home) + msgOverhead + e.in.TransferSeconds(home, entryRegion, entryBytes)

	start := make(map[dag.NodeID]float64, d.Len())
	start[entry] = entryLatency
	executed[entry] = true

	for _, n := range d.Nodes() {
		if skipped[n] {
			continue
		}
		if d.IsSync(n) {
			if !syncReached[n] {
				skipped[n] = true
				continue
			}
			r := plan[n]
			staged := syncStaged[n]
			// The completing predecessor sends the invoke message
			// (approximated as originating at home, where the
			// annotation table lives); the sync node then loads its
			// staged data from home.
			sns(home)
			txCarbon(home, r, controlBytes)
			arrive := syncReady[n] + msgOverhead + e.in.TransferSeconds(home, r, controlBytes)
			load := e.in.KVAccessSeconds(r) + e.in.TransferSeconds(home, r, staged)
			kvRead()
			txCarbon(home, r, staged)
			start[n] = arrive + load
			executed[n] = true
		} else if n != entry {
			if !executed[n] {
				continue
			}
		}

		r := plan[n]
		dist, err := e.in.ExecDuration(n, r)
		if err != nil {
			return s, err
		}
		dur := dist.Sample(rng.Float64())
		util := e.in.CPUUtil(n)
		mem := e.in.MemoryMB(n)
		finish[n] = start[n] + dur
		if finish[n] > s.latency {
			s.latency = finish[n]
		}
		s.execCarbon += carbon.ExecutionCarbon(intensity[r], mem, dur, util)
		s.cost += book.ExecutionCost(r, mem, dur)

		out := d.Out(n)
		if len(out) == 0 {
			if ob := e.in.OutputBytes(n); ob != nil {
				txCarbon(r, home, ob.Sample(rng.Float64()))
			}
			continue
		}
		for _, edge := range out {
			taken := !edge.Conditional || rng.Bool(e.in.EdgeProbability(edge))
			if !taken {
				e.propagateSkip(edge, skipped, syncReached, syncReady, finish[n])
				kvWrite() // skip annotation
				continue
			}
			var bytes float64
			if bd := e.in.EdgeBytes(edge.From, edge.To); bd != nil {
				bytes = bd.Sample(rng.Float64())
			}
			if d.IsSync(edge.To) {
				// Stage data at home and annotate.
				kvWrite()
				kvWrite()
				txCarbon(r, home, bytes)
				ready := finish[n] + e.in.TransferSeconds(r, home, bytes) + e.in.KVAccessSeconds(r)
				if ready > syncReady[edge.To] {
					syncReady[edge.To] = ready
				}
				syncStaged[edge.To] += bytes
				syncReached[edge.To] = true
			} else {
				sns(r)
				total := bytes + controlBytes
				txCarbon(r, plan[edge.To], total)
				arrive := finish[n] + msgOverhead + e.in.TransferSeconds(r, plan[edge.To], total)
				if arrive > start[edge.To] {
					start[edge.To] = arrive
				}
				executed[edge.To] = true
			}
		}
	}
	return s, nil
}

// propagateSkip marks the downstream effect of an untaken edge: non-sync
// descendants are skipped; edges into sync nodes count as annotated
// skipped, which here simply means they do not contribute to readiness.
// The walk is iterative with an explicit stack in the recursive form's
// DFS preorder — recursion depth on a long chain of conditional edges is
// bounded only by the DAG size, so a pathological workflow could
// otherwise exhaust the goroutine stack.
func (e *Estimator) propagateSkip(edge dag.Edge, skipped map[dag.NodeID]bool, syncReached map[dag.NodeID]bool, syncReady map[dag.NodeID]float64, at float64) {
	d := e.in.DAG()
	stack := make([]dag.Edge, 0, 16)
	stack = append(stack, edge)
	for len(stack) > 0 {
		ed := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.IsSync(ed.To) {
			// Annotation time could delay firing when the skip arrives
			// last; model by advancing readiness without marking reached.
			if at > syncReady[ed.To] && syncReached[ed.To] {
				syncReady[ed.To] = at
			}
			continue
		}
		if skipped[ed.To] {
			continue
		}
		skipped[ed.To] = true
		out := d.Out(ed.To)
		for i := len(out) - 1; i >= 0; i-- {
			stack = append(stack, out[i])
		}
	}
}
