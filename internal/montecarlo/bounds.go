package montecarlo

// Exact pruning bounds: plan-independent per-sample metric floors.
//
// The batch evaluator (batch.go) abandons a candidate plan mid-sweep once
// no completion of its replay can bring its final mean metric below the
// solver-supplied threshold. That requires, for every compiled sample, a
// lower bound on the metric contribution the sample makes under *any*
// assignment. Because the tape fixes the event skeleton, such a bound is
// computable once per sample at transpose time by replaying the sample
// with every region-dependent coefficient replaced by its minimum over
// the choices a plan could make:
//
//   - per (step, region) terms — the duration quantile, the
//     intensity-weighted energy product, and the execution cost — take
//     their per-step minimum over regions (baked into bndStep triples);
//   - transfer/egress/transmission-factor coefficients take the minimum
//     over the region pairs the event can touch (home-row for entry and
//     sync loads, home-column for staging and write-back, all pairs for
//     direct edges);
//   - KV access and SNS publish take the minimum over regions.
//
// Every operation in the replay — addition, multiplication by a
// non-negative operand, and max — is monotone in each input, and IEEE-754
// round-to-nearest is itself monotone, so the bound replay's float result
// is ≤ the real replay's float result for every plan, sample by sample:
// the bound is exact at the float level, not just in real arithmetic.
// Per-sample bounds are accumulated into prefix-sum columns
// (soaCols.preLat/preCost/preCarb) so the remaining-sample floor of any
// span is two loads and a subtraction at prune-check time. The only slack
// the consumer must absorb is prefix-sum reassociation (≤ n·ε relative),
// which the solver's threshold margin covers by many orders of magnitude.
//
// Bounds are only valid as *floors of a mean* when per-sample values are
// non-negative: samples past the compiled tape prefix contribute an
// implicit 0 to the floor (they are unknown at prune time). If any baked
// bound ever goes negative — possible only with pathological negative
// duration or transfer inputs — bndOK latches false and pruning is
// disabled for the tape; results are unaffected because pruning is an
// optimization, never a semantic change.

import "caribou/internal/carbon"

// boundTables holds the snapshot-level coefficient minima the bound
// replay substitutes for region-dependent lookups. Baked once at Compile;
// rf minima are per hour because transmission factors fold the hour's
// intensities.
type boundTables struct {
	ok                                             bool
	txBaseHomeRow, txPerByteHomeRow, egressHomeRow float64
	txBaseHomeCol, txPerByteHomeCol, egressHomeCol float64
	txBaseAll, txPerByteAll, egressAll             float64
	kv, sns                                        float64
	rfHomeRow, rfHomeCol, rfAll                    []float64 // [hour]
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// bakeBoundTables fills the snapshot's coefficient minima. Skipped when a
// deferred exec error exists: the batch evaluator falls back to the
// sequential path in that case, so bounds would never be read.
func (s *Snapshot) bakeBoundTables() {
	if s.anyExecErr {
		return
	}
	nR, home := s.nR, s.home
	rowMin := func(tab []float64, fixedFrom int) float64 {
		m := tab[fixedFrom*nR]
		for r := 1; r < nR; r++ {
			if v := tab[fixedFrom*nR+r]; v < m {
				m = v
			}
		}
		return m
	}
	colMin := func(tab []float64, fixedTo int) float64 {
		m := tab[fixedTo]
		for r := 1; r < nR; r++ {
			if v := tab[r*nR+fixedTo]; v < m {
				m = v
			}
		}
		return m
	}
	s.bnd.txBaseHomeRow = rowMin(s.txBase, home)
	s.bnd.txPerByteHomeRow = rowMin(s.txPerByte, home)
	s.bnd.egressHomeRow = rowMin(s.egressPerGB, home)
	s.bnd.txBaseHomeCol = colMin(s.txBase, home)
	s.bnd.txPerByteHomeCol = colMin(s.txPerByte, home)
	s.bnd.egressHomeCol = colMin(s.egressPerGB, home)
	s.bnd.txBaseAll = minOf(s.txBase)
	s.bnd.txPerByteAll = minOf(s.txPerByte)
	s.bnd.egressAll = minOf(s.egressPerGB)
	s.bnd.kv = minOf(s.kvAccess)
	s.bnd.sns = minOf(s.snsUSD)
	s.bnd.rfHomeRow = make([]float64, len(s.hours))
	s.bnd.rfHomeCol = make([]float64, len(s.hours))
	s.bnd.rfAll = make([]float64, len(s.hours))
	for h := range s.hours {
		rf := s.txRF[h]
		s.bnd.rfHomeRow[h] = rowMin(rf, home)
		s.bnd.rfHomeCol[h] = colMin(rf, home)
		s.bnd.rfAll[h] = minOf(rf)
	}
	s.bnd.ok = true
}

// bakeBoundSteps fills the per-step bound triples for steps
// [oldSteps, nS): the minimum over regions of each drc entry, with the
// energy intermediate folded against the hour's intensities and PUE in
// the replay's exact expression shape (inten[r]*drc*PUE).
func (s *Snapshot) bakeBoundSteps(c *soaCols, h, oldSteps, nS int) {
	nR := s.nR
	inten := s.intensity[h]
	for i := oldSteps; i < nS; i++ {
		base := i * nR * 3
		minD := c.drc[base]
		minE := inten[0] * c.drc[base+1] * carbon.PUE
		minC := c.drc[base+2]
		for r := 1; r < nR; r++ {
			if d := c.drc[base+r*3]; d < minD {
				minD = d
			}
			if e := inten[r] * c.drc[base+r*3+1] * carbon.PUE; e < minE {
				minE = e
			}
			if cc := c.drc[base+r*3+2]; cc < minC {
				minC = cc
			}
		}
		o := i * 3
		c.bndStep[o] = minD
		c.bndStep[o+1] = minE
		c.bndStep[o+2] = minC
	}
}

// boundReplay replays recorded sample i with every region-dependent
// coefficient at its minimum, returning per-sample floors for the three
// convergence metrics. The control flow mirrors replaySoA/runSoASteps
// expression for expression so float monotonicity applies term-wise.
func (s *Snapshot) boundReplay(ref *tapeData, c *soaCols, i, h int, sc *replayScratch) (lat, cost, carb float64) {
	sc.reset()
	var smp sample
	b := &s.bnd
	rfHR, rfHC, rfAll := b.rfHomeRow[h], b.rfHomeCol[h], b.rfAll[h]
	msgOverhead := s.msgOverhead
	snsHome := s.snsUSD[s.home]
	dynRead, dynWrite := s.dynReadUSD, s.dynWriteUSD

	entryBytes := ref.entry[i]
	smp.cost += dynRead
	smp.cost += snsHome
	if entryBytes > 0 {
		q := c.entry9[i]
		smp.txCarbon += rfHR * q
		smp.cost += q * b.egressHomeRow
	}
	eb := entryBytes
	if eb < 0 {
		eb = 0
	}
	sc.setStart(s.start, s.kvAccess[s.home]+msgOverhead+(b.txBaseHomeRow+eb*b.txPerByteHomeRow))

	for si := ref.stepOff[i]; si < ref.stepOff[i+1]; si++ {
		n := int(c.node[si])
		flags := c.flags[si]
		var startN float64
		if flags&stepSync != 0 {
			staged := c.staged[si]
			smp.cost += snsHome
			smp.txCarbon += rfHR * (controlBytes / 1e9)
			smp.cost += controlBytes / 1e9 * b.egressHomeRow
			arrive := sc.getReady(n) + msgOverhead + (b.txBaseHomeRow + controlBytes*b.txPerByteHomeRow)
			ld := staged
			if ld < 0 {
				ld = 0
			}
			load := b.kv + (b.txBaseHomeRow + ld*b.txPerByteHomeRow)
			smp.cost += dynRead
			if staged > 0 {
				q := c.aux9[si]
				smp.txCarbon += rfHR * q
				smp.cost += q * b.egressHomeRow
			}
			startN = arrive + load
		} else {
			startN = sc.getStart(n)
		}

		o := int(si) * 3
		finish := startN + c.bndStep[o]
		if finish > smp.latency {
			smp.latency = finish
		}
		smp.execCarbon += c.bndStep[o+1]
		smp.cost += c.bndStep[o+2]

		if flags&stepOutput != 0 {
			if c.out[si] > 0 {
				q := c.out9[si]
				smp.txCarbon += rfHC * q
				smp.cost += q * b.egressHomeCol
			}
			continue
		}
		eHi := c.edgeOff[si+1]
		for ei := c.edgeOff[si]; ei < eHi; ei++ {
			to := int(c.to[ei])
			switch c.kind[ei] {
			case tapeEdgeSkip:
				for k := c.skipOff[ei]; k < c.skipOff[ei+1]; k++ {
					sn := int(ref.skipSyncs[k])
					if finish > sc.getReady(sn) {
						sc.setReady(sn, finish)
					}
				}
				smp.cost += dynWrite
			case tapeEdgeStage:
				bb := c.bytes[ei]
				smp.cost += dynWrite
				smp.cost += dynWrite
				tb := bb
				if tb < 0 {
					tb = 0
				}
				if bb > 0 {
					q := c.e9[ei]
					smp.txCarbon += rfHC * q
					smp.cost += q * b.egressHomeCol
				}
				ready := finish + (b.txBaseHomeCol + tb*b.txPerByteHomeCol) + b.kv
				if ready > sc.getReady(to) {
					sc.setReady(to, ready)
				}
			case tapeEdgeDirect:
				smp.cost += b.sns
				total := c.bytes[ei] + controlBytes
				if total > 0 {
					q := c.e9[ei]
					smp.txCarbon += rfAll * q
					smp.cost += q * b.egressAll
				}
				tb := total
				if tb < 0 {
					tb = 0
				}
				arrive := finish + msgOverhead + (b.txBaseAll + tb*b.txPerByteAll)
				if arrive > sc.getStart(to) {
					sc.setStart(to, arrive)
				}
			}
		}
	}
	return smp.latency, smp.cost, smp.execCarbon + smp.txCarbon
}

// bakeBoundSamples extends the metric prefix-sum columns over samples
// [oldSamp, nSamp), latching bndOK false if any per-sample floor is
// negative (see package comment above).
func (s *Snapshot) bakeBoundSamples(ref *tapeData, c *soaCols, h, oldSamp, nSamp int) {
	sc := s.getScratch()
	defer s.putScratch(sc)
	for i := oldSamp; i < nSamp; i++ {
		lat, cost, carb := s.boundReplay(ref, c, i, h, sc)
		if lat < 0 || cost < 0 || carb < 0 {
			c.bndOK = false
		}
		c.preLat[i+1] = c.preLat[i] + lat
		c.preCost[i+1] = c.preCost[i] + cost
		c.preCarb[i+1] = c.preCarb[i] + carb
	}
}
