package montecarlo

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/region"
	"caribou/internal/simclock"
	"caribou/internal/stats"
)

// Snapshot is a compiled, immutable view of an Inputs for a fixed solve
// window: node and region IDs interned to dense ints, execution-duration
// and payload distributions baked into sorted index-addressed slices,
// pricing and network coefficients pre-resolved per region (pair), and
// carbon intensities pre-resolved per (hour, region). The solver compiles
// one Snapshot per solve and evaluates every candidate plan against it,
// so the inner sampling loop performs no interface-method calls and no
// map lookups — it reads only dense slices. Because compilation copies
// everything it needs, a Snapshot is safe for concurrent use by any
// number of goroutines, unlike the Inputs path whose lazily-sorted
// Distributions are not.
//
// Transfer time is modeled as affine in payload size: the compiler probes
// Inputs.TransferSeconds at 0 and 1 GB to recover the intercept and slope
// per region pair. This is exact for the netmodel grid (propagation +
// serialization at fixed bandwidth) and every Inputs implementation in
// the repository.
type Snapshot struct {
	name  string
	seed  int64
	tx    carbon.TransmissionModel
	nodes *dag.Interner

	regions   []region.ID
	regionIdx map[region.ID]int
	nR        int
	home      int
	start     int

	hours    []time.Time
	hourUnix []int64
	// hourSeed[h] is DeriveSeed(seed, "mc/<workflow>/<hourUnix>"),
	// precomputed at compile so no Estimate formats a stream label in the
	// hot loop.
	hourSeed []int64

	// tapes[h] is the hour's lazily compiled sample tape (tape.go); nil
	// when tape replay is disabled and every Estimate takes the untaped
	// reference path.
	tapes []*hourTape
	// soaTapes selects the structure-of-arrays tape layout (the default);
	// false keeps the array-of-structs reference layout. Flipped only via
	// SetSoA, which drops any tapes compiled in the other layout.
	soaTapes bool

	// firstUse[n] is the smallest node index whose step reads assign[n]:
	// n itself, lowered to the smallest direct-edge predecessor (staging
	// and skip edges never read the target's assignment). The entry node
	// is -1 — its assignment is read before the step loop. Delta replay
	// (delta.go) resumes a neighbor differing at node k from the anchor
	// checkpoint at boundary firstUse[k]. fuBounds lists the distinct
	// values ≥ 1 ascending — the only possible resume boundaries, and the
	// points anchors checkpoint.
	firstUse []int32
	fuBounds []int32

	// scratchPool, snapPool, and accPool recycle the per-Estimate replay
	// scratch, the untaped path's sampling scratch, and series accumulators
	// across the thousands of evaluations one solve performs; all hold
	// state that is fully reset on reuse, so pooling cannot leak one plan's
	// numbers into another's.
	scratchPool sync.Pool
	snapPool    sync.Pool
	accPool     sync.Pool

	// bnd holds the snapshot-level coefficient minima the exact-pruning
	// bound replay substitutes for region-dependent lookups (bounds.go).
	bnd boundTables

	// Per node (dense index).
	cpuUtil  []float64
	memoryMB []float64
	// execMemKW/execProcKW are the node's carbon.ExecutionFactors — the
	// duration-independent coefficients of the energy model, hoisted so
	// tape replay skips the clamps and divisions of ExecutionEnergyKWh
	// while staying bit-identical to it.
	execMemKW  []float64
	execProcKW []float64
	isSync     []bool
	outEdges   [][]snapEdge
	output     [][]float64 // sorted terminal write-back samples; nil when unobserved

	entryBytes []float64 // sorted entry payload samples

	// Per (node, region): exec[n*nR+r] holds sorted duration samples;
	// execErr[n*nR+r] defers a missing-data error to first use, matching
	// the lazy failure of the Inputs path.
	exec    [][]float64
	execErr []error
	// anyExecErr is true when at least one execErr entry is non-nil; the
	// tape replay loop hoists the per-step error check behind it.
	anyExecErr bool

	// Per region.
	kvAccess []float64
	snsUSD   []float64
	gbSecUSD []float64
	reqUSD   []float64

	// Per region pair [from*nR+to].
	txBase      []float64
	txPerByte   []float64
	egressPerGB []float64

	dynReadUSD  float64 // one read unit against the home table
	dynWriteUSD float64 // one write unit against the home table
	msgOverhead float64

	intensity [][]float64 // [hour][region]
	// txRF bakes the intensity-dependent half of the transmission-carbon
	// model per hour: txRF[h][from*nR+to] = route(from,to) * factor(from,to)
	// exactly as TransmissionModel.Carbon computes it, so a replay edge adds
	// txRF * (bytes/1e9) — the reference's route*factor*gb grouping — without
	// touching the intensity vectors.
	txRF [][]float64 // [hour][from*nR+to]

	tel mcTelemetry
}

// snapEdge is a compiled out-edge.
type snapEdge struct {
	to          int
	toSync      bool
	conditional bool
	prob        float64
	bytes       []float64 // sorted payload samples; nil → zero-byte edge
}

// Compile flattens the Estimator's Inputs into a Snapshot covering the
// given solve instants (carbon beyond now comes from forecasts, exactly
// as in Estimate). regions restricts the interned region set — plans may
// only assign interned regions — and defaults to the full catalogue; the
// home region is always interned.
func (e *Estimator) Compile(regions []region.ID, hours []time.Time, now time.Time) (*Snapshot, error) {
	return Compile(e.in, e.tx, e.seed, regions, hours, now)
}

// Compile builds a Snapshot from any Inputs; see Estimator.Compile.
func Compile(in Inputs, tx carbon.TransmissionModel, seed int64, regions []region.ID, hours []time.Time, now time.Time) (*Snapshot, error) {
	if len(hours) == 0 {
		return nil, fmt.Errorf("montecarlo: snapshot needs at least one solve instant")
	}
	d := in.DAG()
	cat := in.Catalogue()
	if len(regions) == 0 {
		regions = cat.IDs()
	}
	s := &Snapshot{
		name:        d.Name(),
		seed:        seed,
		tx:          tx,
		nodes:       dag.NewInterner(d),
		regionIdx:   make(map[region.ID]int, len(regions)+1),
		hours:       append([]time.Time(nil), hours...),
		msgOverhead: in.MessageOverheadSeconds(),
		tel:         newMCTelemetry(),
	}
	for _, id := range regions {
		if _, dup := s.regionIdx[id]; dup {
			continue
		}
		s.regionIdx[id] = len(s.regions)
		s.regions = append(s.regions, id)
	}
	if _, ok := s.regionIdx[in.Home()]; !ok {
		s.regionIdx[in.Home()] = len(s.regions)
		s.regions = append(s.regions, in.Home())
	}
	s.nR = len(s.regions)
	s.home = s.regionIdx[in.Home()]

	for _, t := range s.hours {
		s.hourUnix = append(s.hourUnix, t.Unix())
	}
	s.hourSeed = make([]int64, len(s.hours))
	for h, u := range s.hourUnix {
		s.hourSeed[h] = simclock.DeriveSeed(seed, fmt.Sprintf("mc/%s/%d", s.name, u)) //caribou:allow hotsprintf runs once per hour at snapshot compile, never in the sampling loop
	}
	s.soaTapes = true
	s.SetTapes(true)

	n := s.nodes.Len()
	s.scratchPool.New = func() any { return newReplayScratch(n) }
	s.snapPool.New = func() any { return newSnapScratch(n) }
	s.accPool.New = func() any { return new(seriesAcc) }
	startIdx, _ := s.nodes.Index(d.Start())
	s.start = startIdx
	s.cpuUtil = make([]float64, n)
	s.memoryMB = make([]float64, n)
	s.execMemKW = make([]float64, n)
	s.execProcKW = make([]float64, n)
	s.isSync = make([]bool, n)
	s.outEdges = make([][]snapEdge, n)
	s.output = make([][]float64, n)
	s.exec = make([][]float64, n*s.nR)
	s.execErr = make([]error, n*s.nR)
	for i := 0; i < n; i++ {
		id := s.nodes.Node(i)
		s.cpuUtil[i] = in.CPUUtil(id)
		s.memoryMB[i] = in.MemoryMB(id)
		s.execMemKW[i], s.execProcKW[i] = carbon.ExecutionFactors(s.memoryMB[i], s.cpuUtil[i])
		s.isSync[i] = d.IsSync(id)
		if len(d.Out(id)) == 0 {
			if ob := in.OutputBytes(id); ob != nil {
				s.output[i] = ob.SortedValues()
			}
		}
		for _, edge := range d.Out(id) {
			to, _ := s.nodes.Index(edge.To)
			se := snapEdge{
				to:          to,
				toSync:      d.IsSync(edge.To),
				conditional: edge.Conditional,
				prob:        in.EdgeProbability(edge),
			}
			if bd := in.EdgeBytes(edge.From, edge.To); bd != nil {
				se.bytes = bd.SortedValues()
			}
			s.outEdges[i] = append(s.outEdges[i], se)
		}
		for r := 0; r < s.nR; r++ {
			dist, err := in.ExecDuration(id, s.regions[r])
			if err != nil {
				s.execErr[i*s.nR+r] = err
				s.anyExecErr = true
				continue
			}
			s.exec[i*s.nR+r] = dist.SortedValues()
		}
	}
	s.entryBytes = in.EntryBytes().SortedValues()

	s.firstUse = make([]int32, n)
	for i := range s.firstUse {
		s.firstUse[i] = int32(i)
	}
	s.firstUse[s.start] = -1
	for p := 0; p < n; p++ {
		for _, e := range s.outEdges[p] {
			if !e.toSync && int32(p) < s.firstUse[e.to] {
				s.firstUse[e.to] = int32(p)
			}
		}
	}
	seen := make(map[int32]bool, n)
	for _, f := range s.firstUse {
		if f >= 1 && !seen[f] {
			seen[f] = true
			s.fuBounds = append(s.fuBounds, f)
		}
	}
	sort.Slice(s.fuBounds, func(a, b int) bool { return s.fuBounds[a] < s.fuBounds[b] })

	book := in.CostBook()
	s.kvAccess = make([]float64, s.nR)
	s.snsUSD = make([]float64, s.nR)
	s.gbSecUSD = make([]float64, s.nR)
	s.reqUSD = make([]float64, s.nR)
	s.txBase = make([]float64, s.nR*s.nR)
	s.txPerByte = make([]float64, s.nR*s.nR)
	s.egressPerGB = make([]float64, s.nR*s.nR)
	for f := 0; f < s.nR; f++ {
		from := s.regions[f]
		s.kvAccess[f] = in.KVAccessSeconds(from)
		s.snsUSD[f] = book.SNSCost(from, 1)
		p := book.Prices(from)
		s.gbSecUSD[f] = p.LambdaGBSecondUSD
		s.reqUSD[f] = p.LambdaRequestUSD
		for t := 0; t < s.nR; t++ {
			to := s.regions[t]
			base := in.TransferSeconds(from, to, 0)
			s.txBase[f*s.nR+t] = base
			s.txPerByte[f*s.nR+t] = (in.TransferSeconds(from, to, 1e9) - base) / 1e9
			s.egressPerGB[f*s.nR+t] = book.EgressCost(from, to, 1e9)
		}
	}
	s.dynReadUSD = book.DynamoCost(in.Home(), 1, 0)
	s.dynWriteUSD = book.DynamoCost(in.Home(), 0, 1)

	s.intensity = make([][]float64, len(s.hours))
	batch, hasBatch := in.(interface {
		IntensitySeries(r region.ID, hours []time.Time, now time.Time) ([]float64, error)
	})
	for h := range s.hours {
		s.intensity[h] = make([]float64, s.nR)
	}
	for r := 0; r < s.nR; r++ {
		if hasBatch {
			series, err := batch.IntensitySeries(s.regions[r], s.hours, now)
			if err != nil {
				return nil, err
			}
			for h := range s.hours {
				s.intensity[h][r] = series[h]
			}
			continue
		}
		for h, t := range s.hours {
			v, err := in.IntensityAt(s.regions[r], t, now)
			if err != nil {
				return nil, err
			}
			s.intensity[h][r] = v
		}
	}
	s.txRF = make([][]float64, len(s.hours))
	for h := range s.hours {
		rf := make([]float64, s.nR*s.nR)
		inten := s.intensity[h]
		for f := 0; f < s.nR; f++ {
			for t := 0; t < s.nR; t++ {
				factor := tx.InterRegionKWhPerGB
				route := (inten[f] + inten[t]) / 2
				if f == t {
					factor = tx.IntraRegionKWhPerGB
					route = inten[f]
				}
				rf[f*s.nR+t] = route * factor
			}
		}
		s.txRF[h] = rf
	}
	s.bakeBoundTables()
	return s, nil
}

// --- Accessors used by the solver's dense search layer ---

// NumNodes reports the number of interned stages.
func (s *Snapshot) NumNodes() int { return s.nodes.Len() }

// NumRegions reports the number of interned regions.
func (s *Snapshot) NumRegions() int { return s.nR }

// HomeIndex returns the dense index of the home region.
func (s *Snapshot) HomeIndex() int { return s.home }

// Hours returns a copy of the solve instants the snapshot was compiled
// for. Callers that only need the count should use NumHours, which does
// not allocate.
func (s *Snapshot) Hours() []time.Time { return append([]time.Time(nil), s.hours...) }

// NumHours reports the number of compiled solve instants.
func (s *Snapshot) NumHours() int { return len(s.hours) }

// SetTapes enables or disables sample-tape replay (tape.go). Compile
// enables tapes; disabling routes every Estimate through the untaped
// reference path (the two are bit-identical — the toggle exists for
// benchmarks and ablations). Not safe to call concurrently with Estimate:
// flip it before sharing the snapshot.
func (s *Snapshot) SetTapes(on bool) {
	switch {
	case on && s.tapes == nil:
		s.tapes = make([]*hourTape, len(s.hours))
		for i := range s.tapes {
			s.tapes[i] = &hourTape{}
		}
	case !on:
		s.tapes = nil
	}
}

// SetSoA selects the tape layout: true (the default) replays
// structure-of-arrays columns, false the array-of-structs reference
// records. Results are bit-identical either way (pinned by the tape
// parity tests); the toggle exists for benchmarks and ablations. Tapes
// already compiled in the other layout are dropped and recompiled
// lazily. Like SetTapes, not safe to call concurrently with Estimate.
func (s *Snapshot) SetSoA(on bool) {
	if s.soaTapes == on {
		return
	}
	s.soaTapes = on
	if s.tapes != nil {
		s.tapes = nil
		s.SetTapes(true)
	}
}

func (s *Snapshot) getScratch() *replayScratch { return s.scratchPool.Get().(*replayScratch) }

func (s *Snapshot) putScratch(sc *replayScratch) { s.scratchPool.Put(sc) }

func (s *Snapshot) getSnapScratch() *snapScratch { return s.snapPool.Get().(*snapScratch) }

func (s *Snapshot) putSnapScratch(sc *snapScratch) { s.snapPool.Put(sc) }

func (s *Snapshot) getAcc() *seriesAcc {
	a := s.accPool.Get().(*seriesAcc)
	a.reset()
	return a
}

func (s *Snapshot) putAcc(a *seriesAcc) { s.accPool.Put(a) }

// HourTime returns the solve instant at hour index h.
func (s *Snapshot) HourTime(h int) time.Time { return s.hours[h] }

// RegionIndex returns the dense index of a region.
func (s *Snapshot) RegionIndex(id region.ID) (int, bool) {
	i, ok := s.regionIdx[id]
	return i, ok
}

// RegionID returns the region at dense index i.
func (s *Snapshot) RegionID(i int) region.ID { return s.regions[i] }

// NodeIndex returns the dense index of a stage.
func (s *Snapshot) NodeIndex(n dag.NodeID) (int, bool) { return s.nodes.Index(n) }

// NodeID returns the stage at dense index i.
func (s *Snapshot) NodeID(i int) dag.NodeID { return s.nodes.Node(i) }

// IntensityIdx returns the pre-resolved grid intensity of region index r
// at hour index h.
func (s *Snapshot) IntensityIdx(h, r int) float64 { return s.intensity[h][r] }

// Regions returns the number of candidate regions in the snapshot; dense
// assignment values range over [0, Regions()).
func (s *Snapshot) Regions() int { return s.nR }

// HomeAssign returns a dense assignment deploying every stage to home.
func (s *Snapshot) HomeAssign() []int {
	out := make([]int, s.nodes.Len())
	for i := range out {
		out[i] = s.home
	}
	return out
}

// PlanOf materializes a dense assignment as a dag.Plan.
func (s *Snapshot) PlanOf(assign []int) dag.Plan {
	p := make(dag.Plan, len(assign))
	for i, r := range assign {
		p[s.nodes.Node(i)] = s.regions[r]
	}
	return p
}

// Assign converts a dag.Plan to a dense assignment.
func (s *Snapshot) Assign(plan dag.Plan) ([]int, error) {
	if len(plan) != s.nodes.Len() {
		return nil, fmt.Errorf("montecarlo: plan covers %d of %d stages", len(plan), s.nodes.Len())
	}
	out := make([]int, s.nodes.Len())
	for i := range out {
		rid, ok := plan[s.nodes.Node(i)]
		if !ok {
			return nil, fmt.Errorf("montecarlo: plan missing stage %q", s.nodes.Node(i))
		}
		r, ok := s.regionIdx[rid]
		if !ok {
			return nil, fmt.Errorf("montecarlo: region %q not interned in snapshot", rid)
		}
		out[i] = r
	}
	return out, nil
}

// Estimate evaluates a dense assignment at hour index h. It mirrors
// Estimator.Estimate draw for draw — the RNG stream, the batched stopping
// rule, and the sampled event sequence are identical — but the sampling
// loop touches only the snapshot's baked slices, so estimates are pure
// functions of (assign, h) and safe to compute concurrently. With tapes
// enabled (the default) the plan is replayed against the hour's compiled
// sample tape; the result is bit-identical to the untaped path either
// way.
func (s *Snapshot) Estimate(assign []int, h int) (*Estimate, error) {
	if err := s.checkArgs(assign, h); err != nil {
		return nil, err
	}
	if s.tapes != nil {
		return s.estimateTaped(assign, h)
	}
	return s.estimateUntaped(assign, h)
}

// EstimateUntaped evaluates a dense assignment through the reference
// draw-per-sample path regardless of the tape setting. It is the parity
// oracle the tape tests pin replay against.
func (s *Snapshot) EstimateUntaped(assign []int, h int) (*Estimate, error) {
	if err := s.checkArgs(assign, h); err != nil {
		return nil, err
	}
	return s.estimateUntaped(assign, h)
}

func (s *Snapshot) checkArgs(assign []int, h int) error {
	if len(assign) != s.nodes.Len() {
		return fmt.Errorf("montecarlo: assignment covers %d of %d stages", len(assign), s.nodes.Len())
	}
	if h < 0 || h >= len(s.hours) {
		return fmt.Errorf("montecarlo: hour index %d outside compiled window [0,%d)", h, len(s.hours))
	}
	for _, r := range assign {
		if r < 0 || r >= s.nR {
			return fmt.Errorf("montecarlo: region index %d outside snapshot", r)
		}
	}
	return nil
}

func (s *Snapshot) estimateUntaped(assign []int, h int) (*Estimate, error) {
	rng := simclock.AcquireRand(s.hourSeed[h])
	defer rng.Release()
	// RNG, scratch, and accumulator come from pools: the untaped
	// reference path is itself called thousands of times per solve in
	// untaped mode, and per-call allocation of the RNG register and the
	// eight scratch slices was its largest constant cost. All are fully
	// reset on reuse (Seed resets the register; sampleOnce resets the
	// scratch per sample; getAcc resets the series), so the arithmetic is
	// unchanged.
	sc := s.getSnapScratch()
	defer s.putSnapScratch(sc)
	acc := s.getAcc()
	defer s.putAcc(acc)
	for acc.samples() < MaxSamples {
		for i := 0; i < BatchSize; i++ {
			smp, err := s.sampleOnce(assign, s.intensity[h], rng, sc)
			if err != nil {
				return nil, err
			}
			acc.add(smp)
		}
		if acc.converged() {
			break
		}
	}
	s.tel.estimates.Inc()
	s.tel.samples.Add(int64(acc.samples()))
	return acc.summarize()
}

// EstimatePlan evaluates a dag.Plan at hour index h.
func (s *Snapshot) EstimatePlan(plan dag.Plan, h int) (*Estimate, error) {
	assign, err := s.Assign(plan)
	if err != nil {
		return nil, err
	}
	return s.Estimate(assign, h)
}

// snapScratch holds per-sample working state, reused across the (up to)
// 2,000 samples of one Estimate call to avoid map and slice churn.
type snapScratch struct {
	executed    []bool
	skipped     []bool
	syncReached []bool
	start       []float64
	finish      []float64
	syncReady   []float64
	syncStaged  []float64
	skipStack   []snapEdge
}

func newSnapScratch(n int) *snapScratch {
	return &snapScratch{
		executed:    make([]bool, n),
		skipped:     make([]bool, n),
		syncReached: make([]bool, n),
		start:       make([]float64, n),
		finish:      make([]float64, n),
		syncReady:   make([]float64, n),
		syncStaged:  make([]float64, n),
	}
}

func (sc *snapScratch) reset() {
	for i := range sc.executed {
		sc.executed[i] = false
		sc.skipped[i] = false
		sc.syncReached[i] = false
		sc.start[i] = 0
		sc.finish[i] = 0
		sc.syncReady[i] = 0
		sc.syncStaged[i] = 0
	}
}

// sampleOnce simulates one invocation under the dense assignment. The
// event sequence and RNG draw order replicate Estimator.sampleOnce
// exactly; only the data representation differs.
func (s *Snapshot) sampleOnce(assign []int, inten []float64, rng *simclock.Rand, sc *snapScratch) (sample, error) {
	sc.reset()
	var smp sample
	home := s.home

	txCarbon := func(from, to int, bytes float64) {
		smp.txCarbon += s.tx.Carbon(inten[from], inten[to], from == to, bytes)
		if bytes > 0 {
			smp.cost += bytes / 1e9 * s.egressPerGB[from*s.nR+to]
		}
	}
	transfer := func(from, to int, bytes float64) float64 {
		if bytes < 0 {
			bytes = 0
		}
		return s.txBase[from*s.nR+to] + bytes*s.txPerByte[from*s.nR+to]
	}

	// Entry: DP fetch at home plus routed entry payload.
	entry := s.start
	entryRegion := assign[entry]
	entryBytes := stats.SampleSorted(s.entryBytes, rng.Float64()) + controlBytes
	smp.cost += s.dynReadUSD
	smp.cost += s.snsUSD[home]
	txCarbon(home, entryRegion, entryBytes)
	entryLatency := s.kvAccess[home] + s.msgOverhead + transfer(home, entryRegion, entryBytes)

	sc.start[entry] = entryLatency
	sc.executed[entry] = true

	for n := 0; n < len(sc.executed); n++ {
		if sc.skipped[n] {
			continue
		}
		if s.isSync[n] {
			if !sc.syncReached[n] {
				sc.skipped[n] = true
				continue
			}
			r := assign[n]
			staged := sc.syncStaged[n]
			// The completing predecessor sends the invoke message
			// (approximated as originating at home, where the
			// annotation table lives); the sync node then loads its
			// staged data from home.
			smp.cost += s.snsUSD[home]
			txCarbon(home, r, controlBytes)
			arrive := sc.syncReady[n] + s.msgOverhead + transfer(home, r, controlBytes)
			load := s.kvAccess[r] + transfer(home, r, staged)
			smp.cost += s.dynReadUSD
			txCarbon(home, r, staged)
			sc.start[n] = arrive + load
			sc.executed[n] = true
		} else if n != entry {
			if !sc.executed[n] {
				continue
			}
		}

		r := assign[n]
		if err := s.execErr[n*s.nR+r]; err != nil {
			return smp, err
		}
		dur := stats.SampleSorted(s.exec[n*s.nR+r], rng.Float64())
		mem := s.memoryMB[n]
		sc.finish[n] = sc.start[n] + dur
		if sc.finish[n] > smp.latency {
			smp.latency = sc.finish[n]
		}
		smp.execCarbon += carbon.ExecutionCarbon(inten[r], mem, dur, s.cpuUtil[n])
		if mem >= 0 && dur >= 0 {
			smp.cost += mem/1024*dur*s.gbSecUSD[r] + s.reqUSD[r]
		}

		out := s.outEdges[n]
		if len(out) == 0 {
			if ob := s.output[n]; ob != nil {
				txCarbon(r, home, stats.SampleSorted(ob, rng.Float64()))
			}
			continue
		}
		for _, edge := range out {
			taken := !edge.conditional || rng.Bool(edge.prob)
			if !taken {
				s.propagateSkip(edge, sc, sc.finish[n])
				smp.cost += s.dynWriteUSD // skip annotation
				continue
			}
			var bytes float64
			if edge.bytes != nil {
				bytes = stats.SampleSorted(edge.bytes, rng.Float64())
			}
			if edge.toSync {
				// Stage data at home and annotate (two writes, added
				// separately to match the Inputs path's rounding).
				smp.cost += s.dynWriteUSD
				smp.cost += s.dynWriteUSD
				txCarbon(r, home, bytes)
				ready := sc.finish[n] + transfer(r, home, bytes) + s.kvAccess[r]
				if ready > sc.syncReady[edge.to] {
					sc.syncReady[edge.to] = ready
				}
				sc.syncStaged[edge.to] += bytes
				sc.syncReached[edge.to] = true
			} else {
				smp.cost += s.snsUSD[r]
				total := bytes + controlBytes
				txCarbon(r, assign[edge.to], total)
				arrive := sc.finish[n] + s.msgOverhead + transfer(r, assign[edge.to], total)
				if arrive > sc.start[edge.to] {
					sc.start[edge.to] = arrive
				}
				sc.executed[edge.to] = true
			}
		}
	}
	return smp, nil
}

// propagateSkip mirrors Estimator.propagateSkip on dense indices. It
// walks the downstream closure iteratively with an explicit stack in the
// same DFS preorder the recursive form visited — recursion depth on a
// long chain of conditional edges is bounded only by the DAG size, so a
// pathological workflow could otherwise exhaust the goroutine stack.
func (s *Snapshot) propagateSkip(edge snapEdge, sc *snapScratch, at float64) {
	stack := append(sc.skipStack[:0], edge)
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.toSync {
			if at > sc.syncReady[e.to] && sc.syncReached[e.to] {
				sc.syncReady[e.to] = at
			}
			continue
		}
		if sc.skipped[e.to] {
			continue
		}
		sc.skipped[e.to] = true
		out := s.outEdges[e.to]
		for i := len(out) - 1; i >= 0; i-- {
			stack = append(stack, out[i])
		}
	}
	sc.skipStack = stack[:0]
}
