package montecarlo

// Batched multi-plan replay: one sweep over the tape, K candidate plans.
//
// The solver evaluates candidate plans in groups — an HBSS proposal round,
// a chunk of the exhaustive enumeration — and every plan in a group
// replays the *same* per-hour tape. Plan-at-a-time replay therefore
// streams the plan-independent columns (node ids, flags, payload bytes,
// baked quantile triples, edge records) K times per group. EstimateBatch
// restructures the loop: steps outermost, lanes innermost, so each
// column load is fetched once per sweep and reused K ways, while each
// lane keeps its own scratch vectors and accumulator. A lane's
// additions, comparisons, and their order are exactly replaySoA's — the
// lanes are data-independent, so interleaving their instruction streams
// changes no result bit (the same argument as replaySoAPair, generalized
// from 2 fixed samples to K plans of one sample).
//
// On top of the shared sweep sits exact pruning. The solver knows, per
// candidate, a metric threshold above which the candidate cannot be
// chosen (hbss.go: the inverted acceptWorse cutoff; exhaustive: the
// incumbent metric). At every batch boundary — after the convergence
// check, which must see exactly the states the reference path sees — a
// lane that has not converged is abandoned once the bound columns
// (bounds.go) prove its final mean metric exceeds its threshold for
// every sample count it could still stop at. Abandoned lanes return a
// nil Estimate; survivors finish the full stopping rule, so every field
// of every returned Estimate is bit-identical to the plan-at-a-time
// path. Pruning is gated on the tape's bndOK latch and each lane's
// threshold being finite; disabling it (Config.NoBatchEval routes around
// this file entirely) changes cost, never results.
//
// Lane scratch (start/ready vectors) is carved from a single arena per
// batch; accumulators come from the snapshot's pool. Both live only for
// the duration of one EstimateBatch call — lanes never escape, and the
// returned Estimates are plain values.

import (
	"math"

	"caribou/internal/carbon"
)

// BatchMetric selects which metric mean a batch's prune thresholds bound.
// It mirrors the solver's optimization priority.
type BatchMetric int

const (
	BatchCarbonMean BatchMetric = iota
	BatchCostMean
	BatchLatencyMean
)

// BatchPrune carries per-candidate abandonment thresholds: candidate i
// may be abandoned once its final Metric mean provably exceeds
// Threshold[i]. A nil BatchPrune (or +Inf entries) disables pruning for
// the call (or candidate); thresholds must already include whatever
// slack the caller needs for the bound's prefix-sum reassociation error
// (see bounds.go).
type BatchPrune struct {
	Metric    BatchMetric
	Threshold []float64
}

func (p *BatchPrune) threshold(i int) float64 {
	if p == nil || i >= len(p.Threshold) {
		return math.Inf(1)
	}
	return p.Threshold[i]
}

func pruneMetric(p *BatchPrune) BatchMetric {
	if p == nil {
		return BatchCarbonMean
	}
	return p.Metric
}

// batchLane is one candidate plan's state through a shared sweep: its
// scratch vectors (carved from the batch arena), running sample, pooled
// accumulator, prune threshold, and — once finished — its estimate.
type batchLane struct {
	assign []int
	out    int // index into the caller's assigns/results
	thr    float64
	acc    *seriesAcc
	smp    sample
	start  []float64
	ready  []float64
	est    *Estimate
	pruned bool
}

// newBatchLanes builds one lane per candidate, all scratch vectors carved
// from a single arena allocation.
func (s *Snapshot) newBatchLanes(assigns [][]int, prune *BatchPrune) []*batchLane {
	n := s.nodes.Len()
	arena := make([]float64, 2*len(assigns)*n)
	ls := make([]batchLane, len(assigns))
	lanes := make([]*batchLane, len(assigns))
	for i, a := range assigns {
		ln := &ls[i]
		ln.assign = a
		ln.out = i
		ln.thr = prune.threshold(i)
		ln.acc = s.getAcc()
		ln.start, arena = arena[:n:n], arena[n:]
		ln.ready, arena = arena[:n:n], arena[n:]
		lanes[i] = ln
	}
	return lanes
}

func (s *Snapshot) releaseLanes(lanes []*batchLane) {
	for _, ln := range lanes {
		s.putAcc(ln.acc)
		ln.acc = nil
	}
}

// EstimateBatch evaluates all candidate plans at hour h through shared
// sweeps over the hour's tape. Results align with assigns; an entry is
// nil exactly when pruning proved that candidate's Metric mean exceeds
// its threshold, and otherwise bit-identical to Estimate(assigns[i], h).
// Snapshots without SoA tapes (or with deferred exec errors) fall back
// to sequential evaluation with pruning disabled.
func (s *Snapshot) EstimateBatch(assigns [][]int, h int, prune *BatchPrune) ([]*Estimate, error) {
	for _, a := range assigns {
		if err := s.checkArgs(a, h); err != nil {
			return nil, err
		}
	}
	out := make([]*Estimate, len(assigns))
	if len(assigns) == 0 {
		return out, nil
	}
	if s.tapes == nil || !s.soaTapes || s.anyExecErr {
		for i, a := range assigns {
			est, err := s.Estimate(a, h)
			if err != nil {
				return nil, err
			}
			out[i] = est
		}
		return out, nil
	}
	if len(assigns) == 1 {
		est, err := s.estimateTaped(assigns[0], h)
		if err != nil {
			return nil, err
		}
		out[0] = est
		return out, nil
	}
	lanes := s.newBatchLanes(assigns, prune)
	defer s.releaseLanes(lanes)
	if err := s.batchSweepFull(s.tapes[h], lanes, h, pruneMetric(prune)); err != nil {
		return nil, err
	}
	for _, ln := range lanes {
		out[ln.out] = ln.est
	}
	return out, nil
}

// batchSweepFull runs the batched stopping rule from sample 0: per batch,
// replay BatchSize samples across all live lanes, then settle each lane at
// the boundary (converged/exhausted → summarize, bound-beaten → prune).
func (s *Snapshot) batchSweepFull(t *hourTape, lanes []*batchLane, h int, metric BatchMetric) error {
	s.tel.batchSweeps.Inc()
	s.tel.batchPlans.Add(int64(len(lanes)))
	// Boundary filtering compacts in place, so work on a copy and leave
	// the caller's slice (its result index) untouched.
	active := append([]*batchLane(nil), lanes...)
	n := 0
	for n < MaxSamples && len(active) > 0 {
		td := t.ensure(s, h, n+BatchSize)
		for i := n; i < n+BatchSize; i++ {
			s.batchInitSample(td, i, h, active)
			s.batchRunSteps(td, td.stepOff[i], td.stepOff[i+1], h, active)
			for _, ln := range active {
				ln.acc.add(ln.smp)
			}
		}
		n += BatchSize
		var err error
		if active, err = s.batchBoundary(td, active, n, metric); err != nil {
			return err
		}
	}
	return nil
}

// batchInitSample resets every lane's scratch and replays recorded sample
// i's entry block for each lane, mirroring replaySoA's prologue exactly.
func (s *Snapshot) batchInitSample(td *tapeData, i, h int, lanes []*batchLane) {
	home := s.home
	nR := s.nR
	rf := s.txRF[h]
	txBase, txPerByte := s.txBase, s.txPerByte
	egress := s.egressPerGB
	entry := s.start
	entryBytes := td.entry[i]
	q := td.soa.entry9[i]
	eb := entryBytes
	if eb < 0 {
		eb = 0
	}
	kvHome := s.kvAccess[home]
	msgOverhead := s.msgOverhead
	snsHome := s.snsUSD[home]
	dynRead := s.dynReadUSD
	for _, ln := range lanes {
		st, rd := ln.start, ln.ready
		for k := range st {
			st[k] = 0
			rd[k] = 0
		}
		var smp sample
		he := home*nR + ln.assign[entry]
		smp.cost += dynRead
		smp.cost += snsHome
		if entryBytes > 0 {
			smp.txCarbon += rf[he] * q
			smp.cost += q * egress[he]
		}
		st[entry] = kvHome + msgOverhead + (txBase[he] + eb*txPerByte[he])
		ln.smp = smp
	}
}

// batchRunSteps replays the step span [lo, hi) for every lane: steps
// outermost so each plan-independent column load is shared, lanes
// innermost with each lane executing the exact runSoASteps body against
// its own scratch and accumulators. Callers must guarantee no exec
// errors exist (s.anyExecErr false) — like the pair replayers, the batch
// body omits the per-step error check.
func (s *Snapshot) batchRunSteps(td *tapeData, lo, hi int32, h int, lanes []*batchLane) {
	c := td.soa
	home := s.home
	nR := s.nR
	inten := s.intensity[h]
	rf := s.txRF[h]
	txBase, txPerByte := s.txBase, s.txPerByte
	egress := s.egressPerGB
	msgOverhead := s.msgOverhead
	snsHome := s.snsUSD[home]
	kvAccess := s.kvAccess
	dynRead, dynWrite := s.dynReadUSD, s.dynWriteUSD
	snsUSD := s.snsUSD
	nodeC, flagsC, stagedC, outC, drcC, aux9C, out9C := c.node, c.flags, c.staged, c.out, c.drc, c.aux9, c.out9
	edgeOffC, toC, kindC, bytesC, skipOffC, e9C := c.edgeOff, c.to, c.kind, c.bytes, c.skipOff, c.e9
	skipS := td.skipSyncs

	for si := lo; si < hi; si++ {
		n := int(nodeC[si])
		flags := flagsC[si]
		staged := stagedC[si]
		aux9v := aux9C[si]
		drcRow := drcC[int(si)*nR*3 : (int(si)+1)*nR*3]
		isSync := flags&stepSync != 0
		isOut := flags&stepOutput != 0
		var outV, out9v float64
		var eLo, eHi int32
		if isOut {
			outV = outC[si]
			out9v = out9C[si]
		} else {
			eLo, eHi = edgeOffC[si], edgeOffC[si+1]
		}
		for _, ln := range lanes {
			smp := ln.smp
			r := ln.assign[n]
			var startN float64
			if isSync {
				hr := home*nR + r
				smp.cost += snsHome
				smp.txCarbon += rf[hr] * (controlBytes / 1e9)
				smp.cost += controlBytes / 1e9 * egress[hr]
				arrive := ln.ready[n] + msgOverhead + (txBase[hr] + controlBytes*txPerByte[hr])
				ld := staged
				if ld < 0 {
					ld = 0
				}
				load := kvAccess[r] + (txBase[hr] + ld*txPerByte[hr])
				smp.cost += dynRead
				if staged > 0 {
					smp.txCarbon += rf[hr] * aux9v
					smp.cost += aux9v * egress[hr]
				}
				startN = arrive + load
			} else {
				startN = ln.start[n]
			}
			base := r * 3
			finish := startN + drcRow[base]
			if finish > smp.latency {
				smp.latency = finish
			}
			smp.execCarbon += inten[r] * drcRow[base+1] * carbon.PUE
			smp.cost += drcRow[base+2]
			if isOut {
				if outV > 0 {
					rh := r*nR + home
					smp.txCarbon += rf[rh] * out9v
					smp.cost += out9v * egress[rh]
				}
			} else {
				for ei := eLo; ei < eHi; ei++ {
					to := int(toC[ei])
					switch kindC[ei] {
					case tapeEdgeSkip:
						for k := skipOffC[ei]; k < skipOffC[ei+1]; k++ {
							sn := int(skipS[k])
							if finish > ln.ready[sn] {
								ln.ready[sn] = finish
							}
						}
						smp.cost += dynWrite // skip annotation
					case tapeEdgeStage:
						b := bytesC[ei]
						rh := r*nR + home
						smp.cost += dynWrite
						smp.cost += dynWrite
						tb := b
						if tb < 0 {
							tb = 0
						}
						if b > 0 {
							q := e9C[ei]
							smp.txCarbon += rf[rh] * q
							smp.cost += q * egress[rh]
						}
						ready := finish + (txBase[rh] + tb*txPerByte[rh]) + kvAccess[r]
						if ready > ln.ready[to] {
							ln.ready[to] = ready
						}
					case tapeEdgeDirect:
						smp.cost += snsUSD[r]
						total := bytesC[ei] + controlBytes
						rt := r*nR + ln.assign[to]
						if total > 0 {
							q := e9C[ei]
							smp.txCarbon += rf[rt] * q
							smp.cost += q * egress[rt]
						}
						tb := total
						if tb < 0 {
							tb = 0
						}
						arrive := finish + msgOverhead + (txBase[rt] + tb*txPerByte[rt])
						if arrive > ln.start[to] {
							ln.start[to] = arrive
						}
					}
				}
			}
			ln.smp = smp
		}
	}
}

// batchBoundary settles every live lane at sample count n: lanes that
// converged (the check runs for every lane at every boundary, exactly as
// the reference loop calls it) or exhausted the tape are summarized;
// unconverged lanes whose bound proves their final mean must exceed
// their threshold are abandoned; the rest stay live. Returns the
// compacted live set (filtering active in place — callers pass a copy).
func (s *Snapshot) batchBoundary(td *tapeData, active []*batchLane, n int, metric BatchMetric) ([]*batchLane, error) {
	live := active[:0]
	c := td.soa
	for _, ln := range active {
		if ln.acc.converged() || n >= MaxSamples {
			est, err := ln.acc.summarize()
			if err != nil {
				return nil, err
			}
			ln.est = est
			s.tel.estimates.Inc()
			s.tel.samples.Add(int64(n))
			s.tel.tapeReplays.Add(int64(n))
			continue
		}
		if c.bndOK && !math.IsInf(ln.thr, 1) && batchLowerBound(c, ln, n, td.n, metric) > ln.thr {
			ln.pruned = true
			s.tel.prunedCandidates.Inc()
			continue
		}
		live = append(live, ln)
	}
	return live, nil
}

// batchLowerBound returns a lower bound on the lane's final mean of the
// pruning metric over every sample count the stopping rule could still
// halt at. The lane's partial sum is re-accumulated left-to-right — the
// exact float prefix of the summation stats.Mean would perform — and the
// remaining samples contribute their prefix-sum floors (bounds.go);
// samples past the compiled tape contribute an implicit 0, valid because
// the floors are non-negative whenever bndOK holds.
func batchLowerBound(c *soaCols, ln *batchLane, n, compiled int, metric BatchMetric) float64 {
	var series, pre []float64
	switch metric {
	case BatchCostMean:
		series, pre = ln.acc.cost, c.preCost
	case BatchLatencyMean:
		series, pre = ln.acc.lat, c.preLat
	default:
		series, pre = ln.acc.carb, c.preCarb
	}
	var partial float64
	for _, v := range series {
		partial += v
	}
	low := math.Inf(1)
	for nf := n + BatchSize; nf <= MaxSamples; nf += BatchSize {
		known := nf
		if known > compiled {
			known = compiled
		}
		b := (partial + (pre[known] - pre[n])) / float64(nf)
		if b < low {
			low = b
		}
	}
	return low
}

// EstimateBatchDelta is EstimateBatch composed with delta anchors: lanes
// whose dirty cone against the cached anchor opens at the same firstUse
// boundary share one checkpoint restore per sample and sweep the dirty
// suffix together. Per-lane semantics match EstimateDelta exactly — the
// trivial no-diff shortcut, the fallback conditions (each counted), and
// the anchor lifecycle are evaluated lane by lane — with nil results for
// pruned lanes, as in EstimateBatch.
func (s *Snapshot) EstimateBatchDelta(base *Estimate, baseAssign []int, assigns [][]int, h int, prune *BatchPrune) ([]*Estimate, error) {
	for _, a := range assigns {
		if err := s.checkArgs(a, h); err != nil {
			return nil, err
		}
	}
	out := make([]*Estimate, len(assigns))
	if len(assigns) == 0 {
		return out, nil
	}
	if s.tapes == nil || !s.soaTapes || s.anyExecErr {
		for i, a := range assigns {
			est, err := s.EstimateDelta(base, baseAssign, a, h)
			if err != nil {
				return nil, err
			}
			out[i] = est
		}
		return out, nil
	}
	if err := s.checkArgs(baseAssign, h); err != nil {
		return nil, err
	}
	if s.nodes.Len() > deltaMaxNodes || len(s.fuBounds) == 0 {
		s.tel.deltaFallbacks.Add(int64(len(assigns)))
		return s.EstimateBatch(assigns, h, prune)
	}
	lanes := s.newBatchLanes(assigns, prune)
	defer s.releaseLanes(lanes)
	metric := pruneMetric(prune)
	t := s.tapes[h]

	// Partition lanes by how they evaluate. Trivial no-diff lanes take the
	// incumbent's estimate; lanes that cannot resume (entry-node cone,
	// anchor unavailable) replay in full together; the rest group by their
	// resume boundary so each group shares one checkpoint restore.
	pending := make([]*batchLane, 0, len(lanes))
	full := make([]*batchLane, 0, len(lanes))
	for _, ln := range lanes {
		fInc := coneBoundary(s.firstUse, baseAssign, ln.assign)
		switch {
		case fInc == math.MaxInt32 && base != nil:
			ln.est = base
		case fInc < 1:
			s.tel.deltaFallbacks.Inc()
			full = append(full, ln)
		default:
			pending = append(pending, ln)
		}
	}

	min := reanchorBoundary(s.nodes.Len())
	an := t.anchor.Load()
	if len(pending) > 0 && (an == nil || coneBoundary(s.firstUse, an.assign, baseAssign) < min) {
		// No usable anchor. As in EstimateDelta, the first anchor-eligible
		// lane (cone vs the incumbent ≥ 1, so an anchor at its plan stays
		// fresh) records its own full replay as the new anchor; TryLock
		// keeps concurrent workers moving — losers replay their whole
		// group in full.
		if t.anchorMu.TryLock() {
			a2 := t.anchor.Load()
			if a2 == nil || coneBoundary(s.firstUse, a2.assign, baseAssign) < min {
				est, a, err := s.estimateRecordingAnchor(t, h, pending[0].assign)
				if err != nil {
					t.anchorMu.Unlock()
					return nil, err
				}
				t.anchor.Store(a)
				t.anchorMu.Unlock()
				pending[0].est = est
				pending = pending[1:]
				an = a
			} else {
				t.anchorMu.Unlock()
				an = a2
			}
		} else {
			s.tel.deltaFallbacks.Add(int64(len(pending)))
			full = append(full, pending...)
			pending = nil
		}
	}

	// groups is indexed by resume-boundary position in fuBounds, so group
	// execution order is deterministic regardless of lane order or anchor
	// races.
	groups := make([][]*batchLane, len(s.fuBounds))
	for _, ln := range pending {
		f := coneBoundary(s.firstUse, an.assign, ln.assign)
		switch {
		case f < 1:
			s.tel.deltaFallbacks.Inc()
			full = append(full, ln)
		case f == math.MaxInt32:
			// The lane is the anchor plan itself; a full replay is cheaper
			// than resuming every sample at its last boundary.
			full = append(full, ln)
		default:
			b := 0
			for an.bounds[b] != f {
				b++
			}
			groups[b] = append(groups[b], ln)
		}
	}

	if len(full) == 1 {
		est, err := s.estimateTaped(full[0].assign, h)
		if err != nil {
			return nil, err
		}
		full[0].est = est
	} else if len(full) > 1 {
		if err := s.batchSweepFull(t, full, h, metric); err != nil {
			return nil, err
		}
	}
	for b, g := range groups {
		switch {
		case len(g) == 0:
		case len(g) == 1:
			est, err := s.estimateFromAnchor(an, g[0].assign, h, an.bounds[b], b)
			if err != nil {
				return nil, err
			}
			g[0].est = est
		default:
			if err := s.batchSweepResume(t, an, g, h, an.bounds[b], b, metric); err != nil {
				return nil, err
			}
		}
	}
	for _, ln := range lanes {
		out[ln.out] = ln.est
	}
	return out, nil
}

// batchSweepResume is batchSweepFull with per-sample anchor resume: all
// lanes in the group share the boundary, so checkpointed samples restore
// one recorded cone block (per lane) and sweep only the dirty suffix;
// samples the anchor never checkpointed replay in full.
func (s *Snapshot) batchSweepResume(t *hourTape, an *deltaAnchor, lanes []*batchLane, h int, f int32, b int, metric BatchMetric) error {
	s.tel.batchSweeps.Inc()
	s.tel.batchPlans.Add(int64(len(lanes)))
	active := append([]*batchLane(nil), lanes...)
	nB := len(an.bounds)
	resumed := 0
	n := 0
	for n < MaxSamples && len(active) > 0 {
		td := t.ensure(s, h, n+BatchSize)
		for i := n; i < n+BatchSize; i++ {
			if i < an.n {
				resumed += len(active)
				j := an.jump[i*nB+b]
				if j < 0 {
					// No step reads a changed assignment: the anchor's
					// result holds for every lane in the group.
					o := i * 4
					smp := sample{
						latency:    an.final[o],
						cost:       an.final[o+1],
						execCarbon: an.final[o+2],
						txCarbon:   an.final[o+3],
					}
					for _, ln := range active {
						ln.acc.add(smp)
					}
					continue
				}
				o := (i*nB + b) * 4
				smp := sample{
					latency:    an.acc[o],
					cost:       an.acc[o+1],
					execCarbon: an.acc[o+2],
					txCarbon:   an.acc[o+3],
				}
				nN := an.nNodes
				off0 := int(an.base[b]) + i*int(an.stride[b])
				for _, ln := range active {
					off := off0
					for v := int(f); v < nN; v++ {
						ln.start[v] = an.start[off]
						ln.ready[v] = an.ready[off]
						off++
					}
					ln.smp = smp
				}
				s.batchRunSteps(td, j, td.stepOff[i+1], h, active)
			} else {
				s.batchInitSample(td, i, h, active)
				s.batchRunSteps(td, td.stepOff[i], td.stepOff[i+1], h, active)
			}
			for _, ln := range active {
				ln.acc.add(ln.smp)
			}
		}
		n += BatchSize
		var err error
		if active, err = s.batchBoundary(td, active, n, metric); err != nil {
			return err
		}
	}
	s.tel.deltaResumed.Add(int64(resumed))
	return nil
}
