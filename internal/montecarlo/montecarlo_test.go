package montecarlo

import (
	"math"
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/pricing"
	"caribou/internal/region"
	"caribou/internal/stats"
)

var t0 = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

// fakeInputs is a deterministic Inputs implementation with fixed
// durations, sizes, and intensities — no learned data needed.
type fakeInputs struct {
	d         *dag.DAG
	cat       *region.Catalogue
	durations map[dag.NodeID]float64
	bytes     map[[2]dag.NodeID]float64
	probs     map[[2]dag.NodeID]float64
	intensity map[region.ID]float64
	output    map[dag.NodeID]float64
}

func (f *fakeInputs) DAG() *dag.DAG                { return f.d }
func (f *fakeInputs) Home() region.ID              { return region.USEast1 }
func (f *fakeInputs) Catalogue() *region.Catalogue { return f.cat }

func constDist(v float64) *stats.Distribution {
	d := stats.NewDistribution(4)
	d.Add(v)
	return d
}

func (f *fakeInputs) ExecDuration(n dag.NodeID, _ region.ID) (*stats.Distribution, error) {
	return constDist(f.durations[n]), nil
}
func (f *fakeInputs) CPUUtil(dag.NodeID) float64      { return 0.8 }
func (f *fakeInputs) MemoryMB(dag.NodeID) float64     { return 1769 }
func (f *fakeInputs) EntryBytes() *stats.Distribution { return constDist(1000) }
func (f *fakeInputs) EdgeBytes(from, to dag.NodeID) *stats.Distribution {
	if b, ok := f.bytes[[2]dag.NodeID{from, to}]; ok {
		return constDist(b)
	}
	return nil
}
func (f *fakeInputs) OutputBytes(n dag.NodeID) *stats.Distribution {
	if b, ok := f.output[n]; ok {
		return constDist(b)
	}
	return nil
}
func (f *fakeInputs) EdgeProbability(e dag.Edge) float64 {
	if p, ok := f.probs[[2]dag.NodeID{e.From, e.To}]; ok {
		return p
	}
	return 1
}
func (f *fakeInputs) TransferSeconds(a, b region.ID, bytes float64) float64 {
	if a == b {
		return 0.001
	}
	return 0.03 + bytes/80e6
}
func (f *fakeInputs) MessageOverheadSeconds() float64   { return 0.1 }
func (f *fakeInputs) KVAccessSeconds(region.ID) float64 { return 0.005 }
func (f *fakeInputs) CostBook() *pricing.Book           { return pricing.DefaultBook() }
func (f *fakeInputs) IntensityAt(r region.ID, _, _ time.Time) (float64, error) {
	return f.intensity[r], nil
}

func chainInputs(t *testing.T) *fakeInputs {
	t.Helper()
	d, err := dag.NewBuilder("chain").
		AddNode(dag.Node{ID: "a"}).
		AddNode(dag.Node{ID: "b"}).
		AddEdge("a", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return &fakeInputs{
		d:         d,
		cat:       region.NorthAmerica(),
		durations: map[dag.NodeID]float64{"a": 2, "b": 3},
		bytes:     map[[2]dag.NodeID]float64{{"a", "b"}: 1e6},
		intensity: map[region.ID]float64{region.USEast1: 400, region.CACentral1: 35},
		output:    map[dag.NodeID]float64{"b": 5e5},
	}
}

func TestChainLatencyMatchesAnalytic(t *testing.T) {
	in := chainInputs(t)
	est := New(in, carbon.BestCase(), 1)
	plan := dag.NewHomePlan(in.d, region.USEast1)
	e, err := est.Estimate(plan, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	// entry: kv 0.005 + overhead 0.1 + transfer 0.001 = 0.106
	// a: 2, edge: 0.1 + 0.001 = 0.101, b: 3 → total ≈ 5.207
	want := 0.106 + 2 + 0.101 + 3
	if math.Abs(e.LatencyMean-want) > 0.01 {
		t.Errorf("latency = %v, want ~%v", e.LatencyMean, want)
	}
	// Deterministic inputs: p95 equals mean.
	if math.Abs(e.LatencyP95-e.LatencyMean) > 1e-9 {
		t.Errorf("p95 %v != mean %v for deterministic inputs", e.LatencyP95, e.LatencyMean)
	}
	if !e.Converged || e.Samples != BatchSize {
		t.Errorf("converged=%v samples=%d", e.Converged, e.Samples)
	}
}

func TestCarbonComponentsAndRegionSensitivity(t *testing.T) {
	in := chainInputs(t)
	est := New(in, carbon.BestCase(), 1)
	home := dag.NewHomePlan(in.d, region.USEast1)
	eHome, err := est.Estimate(home, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	green := dag.NewHomePlan(in.d, region.CACentral1)
	eGreen, err := est.Estimate(green, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if eGreen.ExecCarbonMean >= eHome.ExecCarbonMean {
		t.Errorf("green exec carbon %v >= home %v", eGreen.ExecCarbonMean, eHome.ExecCarbonMean)
	}
	// Analytic execution carbon at home: two stages, 5 s total.
	wantExec := carbon.ExecutionCarbon(400, 1769, 2, 0.8) + carbon.ExecutionCarbon(400, 1769, 3, 0.8)
	if math.Abs(eHome.ExecCarbonMean-wantExec)/wantExec > 0.01 {
		t.Errorf("exec carbon = %v, want %v", eHome.ExecCarbonMean, wantExec)
	}
	if eHome.TxCarbonMean <= 0 {
		t.Error("transmission carbon missing")
	}
	if eHome.CostMean <= 0 {
		t.Error("cost missing")
	}
}

func TestWorstCaseChargesOffloadedPlanMore(t *testing.T) {
	in := chainInputs(t)
	plan := dag.NewHomePlan(in.d, region.CACentral1) // all transfers cross-region (entry/output/KV home)
	best := New(in, carbon.BestCase(), 1)
	worst := New(in, carbon.WorstCase(), 1)
	eb, err := best.Estimate(plan, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := worst.Estimate(plan, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if ew.TxCarbonMean <= eb.TxCarbonMean {
		t.Errorf("worst tx %v should exceed best tx %v for offloaded plan", ew.TxCarbonMean, eb.TxCarbonMean)
	}
}

func TestConditionalBranchProbabilityScalesLatency(t *testing.T) {
	d, err := dag.NewBuilder("cond").
		AddNode(dag.Node{ID: "a"}).
		AddNode(dag.Node{ID: "slow"}).
		AddConditionalEdge("a", "slow", 0.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	in := chainInputs(t)
	in.d = d
	in.durations = map[dag.NodeID]float64{"a": 1, "slow": 9}
	in.bytes = map[[2]dag.NodeID]float64{}
	in.output = map[dag.NodeID]float64{}

	run := func(p float64) float64 {
		in.probs = map[[2]dag.NodeID]float64{{"a", "slow"}: p}
		est := New(in, carbon.BestCase(), 1)
		e, err := est.Estimate(dag.NewHomePlan(d, region.USEast1), t0, t0)
		if err != nil {
			t.Fatal(err)
		}
		return e.LatencyMean
	}
	never, half, always := run(0), run(0.5), run(1)
	if !(never < half && half < always) {
		t.Errorf("latency not monotone in branch probability: %v %v %v", never, half, always)
	}
	// With p=0 the slow node never runs: latency ~1.1s; with p=1 ~10.2s.
	if never > 2 || always < 9 {
		t.Errorf("bounds: never=%v always=%v", never, always)
	}
	if math.Abs(half-(never+always)/2) > 1 {
		t.Errorf("half = %v, want near midpoint of %v and %v", half, never, always)
	}
}

func TestSyncNodeWaitsForSlowestBranch(t *testing.T) {
	d, err := dag.NewBuilder("join").
		AddNode(dag.Node{ID: "s"}).
		AddNode(dag.Node{ID: "fast"}).
		AddNode(dag.Node{ID: "slow"}).
		AddNode(dag.Node{ID: "join"}).
		AddEdge("s", "fast").
		AddEdge("s", "slow").
		AddEdge("fast", "join").
		AddEdge("slow", "join").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	in := chainInputs(t)
	in.d = d
	in.durations = map[dag.NodeID]float64{"s": 1, "fast": 1, "slow": 6, "join": 1}
	in.bytes = map[[2]dag.NodeID]float64{
		{"fast", "join"}: 1e4,
		{"slow", "join"}: 1e4,
	}
	in.output = map[dag.NodeID]float64{}
	est := New(in, carbon.BestCase(), 1)
	e, err := est.Estimate(dag.NewHomePlan(d, region.USEast1), t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	// Critical path through slow: ≥ 1 + 6 + 1 = 8 s plus overheads.
	if e.LatencyMean < 8 || e.LatencyMean > 10 {
		t.Errorf("join latency = %v, want ~8.5", e.LatencyMean)
	}
}

func TestPlanCoverageValidation(t *testing.T) {
	in := chainInputs(t)
	est := New(in, carbon.BestCase(), 1)
	if _, err := est.Estimate(dag.Plan{"a": region.USEast1}, t0, t0); err == nil {
		t.Error("want error for incomplete plan")
	}
}

func TestEstimateDeterministicForSeed(t *testing.T) {
	in := chainInputs(t)
	plan := dag.NewHomePlan(in.d, region.USEast1)
	a, err := New(in, carbon.BestCase(), 7).Estimate(plan, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(in, carbon.BestCase(), 7).Estimate(plan, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if a.LatencyMean != b.LatencyMean || a.CarbonMean != b.CarbonMean {
		t.Error("same seed diverged")
	}
}

func TestSetTransmissionModel(t *testing.T) {
	in := chainInputs(t)
	est := New(in, carbon.BestCase(), 1)
	plan := dag.NewHomePlan(in.d, region.CACentral1)
	before, err := est.Estimate(plan, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	est.SetTransmissionModel(carbon.WorstCase())
	after, err := est.Estimate(plan, t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if after.TxCarbonMean <= before.TxCarbonMean {
		t.Error("transmission model swap had no effect")
	}
}

func TestSamplesBoundedByMax(t *testing.T) {
	in := chainInputs(t)
	est := New(in, carbon.BestCase(), 1)
	e, err := est.Estimate(dag.NewHomePlan(in.d, region.USEast1), t0, t0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Samples > MaxSamples {
		t.Errorf("samples = %d exceeds max %d", e.Samples, MaxSamples)
	}
}

func TestConditionalEdgeIntoSyncNode(t *testing.T) {
	// start -> always -> join; start ->(p) maybe -> join. With p=0 the
	// join must still fire (skip annotation semantics) and latency must
	// track only the unconditional branch.
	d, err := dag.NewBuilder("condsync").
		AddNode(dag.Node{ID: "start"}).
		AddNode(dag.Node{ID: "always"}).
		AddNode(dag.Node{ID: "maybe"}).
		AddNode(dag.Node{ID: "join"}).
		AddEdge("start", "always").
		AddConditionalEdge("start", "maybe", 0.5).
		AddEdge("always", "join").
		AddEdge("maybe", "join").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	in := chainInputs(t)
	in.d = d
	in.durations = map[dag.NodeID]float64{"start": 1, "always": 1, "maybe": 8, "join": 1}
	in.bytes = map[[2]dag.NodeID]float64{
		{"always", "join"}: 1e4,
		{"maybe", "join"}:  1e4,
	}
	in.output = map[dag.NodeID]float64{}

	run := func(p float64) *Estimate {
		in.probs = map[[2]dag.NodeID]float64{{"start", "maybe"}: p}
		est := New(in, carbon.BestCase(), 1)
		e, err := est.Estimate(dag.NewHomePlan(d, region.USEast1), t0, t0)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	never := run(0)
	always := run(1)
	if never.LatencyMean > 4 {
		t.Errorf("p=0 latency %v; join should not wait for the skipped branch", never.LatencyMean)
	}
	if always.LatencyMean < 10 {
		t.Errorf("p=1 latency %v; join must wait for the slow branch", always.LatencyMean)
	}
	if never.CarbonMean >= always.CarbonMean {
		t.Errorf("skipped branch should save carbon: %v vs %v", never.CarbonMean, always.CarbonMean)
	}
}
