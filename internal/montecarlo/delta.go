package montecarlo

// Delta replay: incremental plan evaluation against a cached anchor.
//
// HBSS neighbors differ from the incumbent in a handful of nodes, yet
// full replay re-walks every step of every sample. Float addition is
// order-sensitive, so a bit-identical incremental evaluation cannot
// subtract the old contribution and add the new one — instead it must
// reuse an untouched *prefix* of the exact reference computation and
// recompute the suffix in the original order.
//
// Steps are recorded in ascending node order, and the assignment of node
// k is first read at the step of node firstUse[k] = min(k, smallest
// direct-edge predecessor of k): only direct pub/sub edges read their
// target's region (staging and skip edges route through home), and a
// node's own step reads its region on execution. For a plan differing
// from the anchor plan at nodes K, every step before the dirty-cone
// boundary f = min over k∈K of firstUse[k] is therefore bit-identical to
// the anchor's replay, and every step at or after it is recomputed
// verbatim.
//
// The only boundaries a resume can ever start at are the distinct
// firstUse values ≥ 1 (Snapshot.fuBounds) — at most one per node, and
// far fewer in practice. An anchor therefore checkpoints, during one
// full replay of its plan, the accumulators and scratch vectors at
// exactly those crossing points of each sample (not at every step), plus
// each sample's final metrics. Resuming a neighbor is a direct lookup:
// jump to the sample's recorded crossing step for the cone's boundary,
// restore that checkpoint, and run the remaining steps through the same
// runSoASteps loop full replay uses. Samples that never cross the
// boundary return the anchor's final metrics untouched.
//
// One anchor is cached per hour and deliberately kept while the search's
// incumbent drifts away from it — resume boundaries shrink as the drift
// grows, but every resumed estimate still amortizes the recorded replay.
// The anchor is declared stale when the incumbent's own cone against it
// starts before reanchorBoundary, the point at which resumes save almost
// nothing. A replacement is never built by a dedicated replay: the next
// eligible request (whose cone vs the incumbent is ≥ 1, so an anchor at
// its plan stays fresh) records its own full-replay estimate as the new
// anchor, making the build cost recording overhead only.
//
// Fallbacks (counted by montecarlo.delta_fallbacks): plans whose cone
// covers the whole tape (f < 1 — e.g. any diff at the entry node), DAGs
// above deltaMaxNodes (checkpoint memory grows with nodes·boundaries·
// samples), and non-SoA or untaped snapshots.

import "math"

// deltaMaxNodes bounds the DAG size for which anchors are recorded: one
// checkpoint holds 2·nodes floats and a sample has up to one checkpoint
// per distinct boundary, so anchor memory grows quadratically with the
// node count.
const deltaMaxNodes = 64

// deltaAnchorSamples caps how many samples an anchor checkpoints. Most
// plans converge within the first batch; neighbors that need more
// samples replay the excess in full.
const deltaAnchorSamples = BatchSize

// reanchorBoundary is the minimum usable resume boundary: once the
// incumbent's dirty cone against the cached anchor starts before node
// max(1, nodes/4), neighbor resumes reuse almost no prefix and the
// anchor is rebuilt at the incumbent.
func reanchorBoundary(nodes int) int32 {
	b := int32(nodes / 4)
	if b < 1 {
		b = 1
	}
	return b
}

// coneBoundary returns the dirty-cone boundary of evaluating assign
// against an anchor at base: the smallest firstUse over differing nodes,
// or math.MaxInt32 when the plans are identical.
func coneBoundary(firstUse []int32, base, assign []int) int32 {
	f := int32(math.MaxInt32)
	for i := range assign {
		if assign[i] != base[i] && firstUse[i] < f {
			f = firstUse[i]
		}
	}
	return f
}

// deltaAnchor caches boundary checkpoints of one full replay of its plan
// at one hour. Checkpoint slot k = i*len(bounds)+b holds the state in
// force just before sample i's first step with node ≥ bounds[b] (jump[k]
// is that step's absolute tape index, -1 when the sample never crosses);
// final holds each checkpointed sample's end metrics.
type deltaAnchor struct {
	assign []int // anchor plan
	nNodes int
	bounds []int32 // Snapshot.fuBounds at build time
	n      int     // samples checkpointed (≤ deltaAnchorSamples)
	jump   []int32
	// start and ready hold, per checkpoint, only the cone slots
	// [bounds[b], nNodes) that resuming at boundary b restores — steps past
	// the boundary never read earlier nodes' state. Boundary b's block for
	// sample i lives at base[b]+i*stride[b], stride[b] = nNodes-bounds[b];
	// the compact layout keeps anchor allocation (and its zeroing, which
	// showed up as a top GC cost at hundreds of anchors per solve) at the
	// few slots actually used instead of nNodes per checkpoint.
	start  []float64
	ready  []float64
	stride []int32
	base   []int32
	acc    []float64 // [k*4+j]: latency, cost, execCarbon, txCarbon at checkpoint k=i*len(bounds)+b
	final  []float64 // [i*4+j]: sample i's final metrics

	// Build cursor, valid only during estimateRecordingAnchor (single
	// goroutine under the hour's anchorMu).
	cur  int // next boundary index awaiting its crossing in this sample
	slot int // base checkpoint slot of the sample being recorded
	smpl int // sample index being recorded
}

// record is called by runSoASteps before step si (node v) executes, and
// captures a checkpoint for every boundary this step crosses. Only the
// cone slots [bound, nNodes) are copied: resumeSample restores exactly
// that range (steps past the boundary never read state of earlier nodes),
// so the slots below it would be dead weight.
func (a *deltaAnchor) record(si, v int32, sc *replayScratch, smp *sample) {
	for a.cur < len(a.bounds) && a.bounds[a.cur] <= v {
		b := a.cur
		k := a.slot + b
		a.jump[k] = si
		f := int(a.bounds[b])
		off := int(a.base[b]) + a.smpl*int(a.stride[b])
		// Open-coded: cone blocks are a handful of slots, below the size
		// where a copy call pays for itself.
		for v := f; v < a.nNodes; v++ {
			a.start[off] = sc.start[v]
			a.ready[off] = sc.ready[v]
			off++
		}
		o := k * 4
		a.acc[o] = smp.latency
		a.acc[o+1] = smp.cost
		a.acc[o+2] = smp.execCarbon
		a.acc[o+3] = smp.txCarbon
		a.cur++
	}
}

// EstimateDelta evaluates assign at hour h incrementally, given that the
// search's incumbent plan baseAssign has estimate base (base may be nil;
// it only serves the trivial no-diff shortcut). Results are bit-identical
// to Estimate(assign, h) in every case — delta replay is a prefix-reuse
// of the exact reference arithmetic, and every condition it cannot honor
// falls back to full replay.
func (s *Snapshot) EstimateDelta(base *Estimate, baseAssign, assign []int, h int) (*Estimate, error) {
	if err := s.checkArgs(assign, h); err != nil {
		return nil, err
	}
	if s.tapes == nil || !s.soaTapes {
		s.tel.deltaFallbacks.Inc()
		return s.Estimate(assign, h)
	}
	if err := s.checkArgs(baseAssign, h); err != nil {
		return nil, err
	}
	if s.nodes.Len() > deltaMaxNodes || len(s.fuBounds) == 0 {
		s.tel.deltaFallbacks.Inc()
		return s.estimateTaped(assign, h)
	}
	fInc := coneBoundary(s.firstUse, baseAssign, assign)
	if fInc == math.MaxInt32 && base != nil {
		return base, nil
	}
	// Anchors track the incumbent (up to reanchorBoundary drift), so a
	// plan whose cone against the incumbent opens at the tape start
	// cannot resume from any anchor this call could produce: the
	// incumbent and the anchor agree on every node below the rebuild
	// threshold. Skip the anchor machinery entirely.
	if fInc < 1 {
		s.tel.deltaFallbacks.Inc()
		return s.estimateTaped(assign, h)
	}
	t := s.tapes[h]
	min := reanchorBoundary(s.nodes.Len())
	an := t.anchor.Load()
	if an == nil || coneBoundary(s.firstUse, an.assign, baseAssign) < min {
		// No usable anchor. This request must replay in full either way
		// (nothing to resume from), so record its own replay as the new
		// anchor: assign's cone against the incumbent is ≥ 1 (checked
		// above), hence an anchor at assign stays fresh for the episode
		// and the build costs only recording overhead instead of a
		// dedicated extra replay of the incumbent. TryLock keeps
		// concurrent workers moving — losers replay plain; which worker
		// records cannot change any estimate (resume is exact).
		if t.anchorMu.TryLock() {
			a2 := t.anchor.Load()
			if a2 == nil || coneBoundary(s.firstUse, a2.assign, baseAssign) < min {
				est, a, err := s.estimateRecordingAnchor(t, h, assign)
				if err == nil {
					t.anchor.Store(a)
				}
				t.anchorMu.Unlock()
				return est, err
			}
			t.anchorMu.Unlock()
			an = a2
		} else {
			s.tel.deltaFallbacks.Inc()
			return s.estimateTaped(assign, h)
		}
	}
	f := coneBoundary(s.firstUse, an.assign, assign)
	if f < 1 {
		s.tel.deltaFallbacks.Inc()
		return s.estimateTaped(assign, h)
	}
	if f == math.MaxInt32 {
		// assign is the anchor plan itself (possible when the incumbent
		// drifted back onto it); a full replay is cheaper than resuming
		// every sample at its last boundary.
		return s.estimateTaped(assign, h)
	}
	// f is the minimum of firstUse values ≥ 1, so it is one of fuBounds.
	b := 0
	for an.bounds[b] != f {
		b++
	}
	return s.estimateFromAnchor(an, assign, h, f, b)
}

// estimateRecordingAnchor evaluates plan at hour h in full — exactly the
// arithmetic of estimateTaped, so the returned estimate is bit-identical —
// while recording boundary checkpoints of its first deltaAnchorSamples
// samples into a fresh anchor. Anchors are built this way, piggybacked on
// a request that had to replay in full anyway, so a build costs only the
// recording overhead (the checkpointed leg forgoes pair interleaving; its
// per-sample values are unchanged) instead of a dedicated replay of the
// incumbent. Neighbors that converge slower than the anchor's horizon
// replay their excess samples in full (estimateFromAnchor).
func (s *Snapshot) estimateRecordingAnchor(t *hourTape, h int, plan []int) (*Estimate, *deltaAnchor, error) {
	sc := s.getScratch()
	defer s.putScratch(sc)
	var sc2 *replayScratch
	defer func() {
		if sc2 != nil {
			s.putScratch(sc2)
		}
	}()
	acc := s.getAcc()
	defer s.putAcc(acc)
	nNodes := s.nodes.Len()
	nB := len(s.fuBounds)
	ck := deltaAnchorSamples
	if ck > MaxSamples {
		ck = MaxSamples
	}
	td := t.ensure(s, h, ck)
	if td.n < ck {
		ck = td.n
	}
	an := &deltaAnchor{
		assign: append([]int(nil), plan...),
		nNodes: nNodes,
		bounds: s.fuBounds,
		jump:   make([]int32, ck*nB),
		stride: make([]int32, nB),
		base:   make([]int32, nB),
		acc:    make([]float64, ck*nB*4),
		final:  make([]float64, ck*4),
	}
	slots := 0
	for b, f := range s.fuBounds {
		an.stride[b] = int32(nNodes) - f
		an.base[b] = int32(slots)
		slots += ck * int(an.stride[b])
	}
	an.start = make([]float64, slots)
	an.ready = make([]float64, slots)
	for i := range an.jump {
		an.jump[i] = -1
	}
	for acc.samples() < MaxSamples {
		need := acc.samples() + BatchSize
		td = t.ensure(s, h, need)
		i := acc.samples()
		for ; i < need && i < ck; i++ {
			an.cur = 0
			an.slot = i * nB
			an.smpl = i
			smp, err := s.replaySoA(td, i, h, an.assign, sc, an)
			if err != nil {
				return nil, nil, err
			}
			o := i * 4
			an.final[o] = smp.latency
			an.final[o+1] = smp.cost
			an.final[o+2] = smp.execCarbon
			an.final[o+3] = smp.txCarbon
			an.n = i + 1
			acc.add(smp)
		}
		if !s.anyExecErr {
			if sc2 == nil {
				sc2 = s.getScratch()
			}
			for ; i+1 < need; i += 2 {
				a, b, err := s.replaySoAPair(td, i, h, an.assign, sc, sc2)
				if err != nil {
					return nil, nil, err
				}
				acc.add(a)
				acc.add(b)
			}
		}
		for ; i < need; i++ {
			smp, err := s.replaySoA(td, i, h, an.assign, sc, nil)
			if err != nil {
				return nil, nil, err
			}
			acc.add(smp)
		}
		if acc.converged() {
			break
		}
	}
	s.tel.estimates.Inc()
	s.tel.samples.Add(int64(acc.samples()))
	s.tel.tapeReplays.Add(int64(acc.samples()))
	s.tel.deltaAnchors.Inc()
	est, err := acc.summarize()
	return est, an, err
}

// estimateFromAnchor runs the stopping-rule loop with per-sample resume:
// checkpointed samples restart at dirty-cone boundary f (= bounds[b]),
// later samples replay in full.
func (s *Snapshot) estimateFromAnchor(an *deltaAnchor, assign []int, h int, f int32, b int) (*Estimate, error) {
	t := s.tapes[h]
	sc := s.getScratch()
	defer s.putScratch(sc)
	var sc2 *replayScratch
	defer func() {
		if sc2 != nil {
			s.putScratch(sc2)
		}
	}()
	acc := s.getAcc()
	defer s.putAcc(acc)
	resumed := 0
	for acc.samples() < MaxSamples {
		need := acc.samples() + BatchSize
		td := t.ensure(s, h, need)
		i := acc.samples()
		if !s.anyExecErr {
			// Resume and replay pairwise (same interleaving rationale as
			// estimateTaped's pair loop; bit-identical per sample).
			if sc2 == nil {
				sc2 = s.getScratch()
			}
			for ; i+1 < need && i+1 < an.n; i += 2 {
				a, bs, err := s.resumeSamplePair(td, an, i, h, assign, sc, sc2, f, b)
				if err != nil {
					return nil, err
				}
				acc.add(a)
				acc.add(bs)
				resumed += 2
			}
			for ; i+1 < need && i >= an.n; i += 2 {
				a, bs, err := s.replaySoAPair(td, i, h, assign, sc, sc2)
				if err != nil {
					return nil, err
				}
				acc.add(a)
				acc.add(bs)
			}
		}
		for ; i < need; i++ {
			var smp sample
			var err error
			if i < an.n {
				smp, err = s.resumeSample(td, an, i, h, assign, sc, f, b)
				resumed++
			} else {
				smp, err = s.replaySoA(td, i, h, assign, sc, nil)
			}
			if err != nil {
				return nil, err
			}
			acc.add(smp)
		}
		if acc.converged() {
			break
		}
	}
	s.tel.estimates.Inc()
	s.tel.samples.Add(int64(acc.samples()))
	s.tel.tapeReplays.Add(int64(acc.samples()))
	s.tel.deltaResumed.Add(int64(resumed))
	return acc.summarize()
}

// resumeSample evaluates checkpointed sample i under a plan whose
// differences from the anchor are all first read at or after node
// boundary f = an.bounds[b] ≥ 1.
func (s *Snapshot) resumeSample(td *tapeData, an *deltaAnchor, i, h int, assign []int, sc *replayScratch, f int32, b int) (sample, error) {
	k := i*len(an.bounds) + b
	j := an.jump[k]
	if j < 0 {
		// No step reads a changed assignment: the anchor's result holds.
		o := i * 4
		return sample{
			latency:    an.final[o],
			cost:       an.final[o+1],
			execCarbon: an.final[o+2],
			txCarbon:   an.final[o+3],
		}, nil
	}
	// Steps ≥ j only read and write state of nodes ≥ f (their own node
	// and forward edge/skip targets), so restoring the cone suffices —
	// slots below f keep whatever the previous sample left, unread.
	n := an.nNodes
	off := int(an.base[b]) + i*int(an.stride[b])
	for v := int(f); v < n; v++ {
		sc.start[v] = an.start[off]
		sc.ready[v] = an.ready[off]
		off++
	}
	o := k * 4
	smp := sample{
		latency:    an.acc[o],
		cost:       an.acc[o+1],
		execCarbon: an.acc[o+2],
		txCarbon:   an.acc[o+3],
	}
	return s.runSoASteps(td, j, td.stepOff[i+1], h, assign, sc, smp, nil)
}

// resumeSamplePair resumes checkpointed samples i and i+1 together so the
// two suffix replays interleave through runSoAStepsPair (the samples are
// data-independent; each one's instruction order is unchanged, so results
// are bit-identical to two resumeSample calls). Samples that never cross
// the boundary short-circuit to the anchor's finals as in resumeSample.
func (s *Snapshot) resumeSamplePair(td *tapeData, an *deltaAnchor, i, h int, assign []int, scA, scB *replayScratch, f int32, b int) (sample, sample, error) {
	nB := len(an.bounds)
	jA := an.jump[i*nB+b]
	jB := an.jump[(i+1)*nB+b]
	if jA < 0 || jB < 0 {
		var smpA, smpB sample
		var err error
		if jA < 0 {
			o := i * 4
			smpA = sample{latency: an.final[o], cost: an.final[o+1], execCarbon: an.final[o+2], txCarbon: an.final[o+3]}
		} else {
			smpA, err = s.resumeSample(td, an, i, h, assign, scA, f, b)
			if err != nil {
				return sample{}, sample{}, err
			}
		}
		if jB < 0 {
			o := (i + 1) * 4
			smpB = sample{latency: an.final[o], cost: an.final[o+1], execCarbon: an.final[o+2], txCarbon: an.final[o+3]}
		} else {
			smpB, err = s.resumeSample(td, an, i+1, h, assign, scB, f, b)
			if err != nil {
				return sample{}, sample{}, err
			}
		}
		return smpA, smpB, nil
	}
	n := an.nNodes
	offA := int(an.base[b]) + i*int(an.stride[b])
	offB := offA + int(an.stride[b])
	for v := int(f); v < n; v++ {
		scA.start[v] = an.start[offA]
		scA.ready[v] = an.ready[offA]
		scB.start[v] = an.start[offB]
		scB.ready[v] = an.ready[offB]
		offA++
		offB++
	}
	oA := (i*nB + b) * 4
	smpA := sample{latency: an.acc[oA], cost: an.acc[oA+1], execCarbon: an.acc[oA+2], txCarbon: an.acc[oA+3]}
	oB := ((i+1)*nB + b) * 4
	smpB := sample{latency: an.acc[oB], cost: an.acc[oB+1], execCarbon: an.acc[oB+2], txCarbon: an.acc[oB+3]}
	return s.runSoAStepsPair(td, jA, td.stepOff[i+1], jB, td.stepOff[i+2], h, assign, scA, scB, smpA, smpB)
}

// deltaAnchorLoaded reports whether hour h currently caches an anchor
// (test hook).
func (s *Snapshot) deltaAnchorLoaded(h int) bool {
	if s.tapes == nil {
		return false
	}
	return s.tapes[h].anchor.Load() != nil
}
