package montecarlo

import (
	"math"
	"testing"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/dag"
	"caribou/internal/region"
	"caribou/internal/stats"
)

// noisyInputs overlays moderately skewed exec durations (sd/mean ≈ 1.6
// per draw) on a fakeInputs workflow: estimates converge, but only after
// several batch boundaries, and different plans converge at different
// boundaries — the batch sweep must retire lanes independently while the
// survivors keep replaying.
type noisyInputs struct {
	*fakeInputs
}

func (n *noisyInputs) ExecDuration(id dag.NodeID, _ region.ID) (*stats.Distribution, error) {
	base := n.durations[id]
	d := stats.NewDistribution(12)
	for i := 0; i < 9; i++ {
		d.Add(base)
	}
	d.Add(12 * base)
	return d, nil
}

// batchPlans builds a spread of candidate plans over the workflow: the
// home deployment, the all-green deployment, and mixed assignments.
func batchPlanSet(d *dag.DAG) []dag.Plan {
	home := dag.NewHomePlan(d, region.USEast1)
	green := dag.NewHomePlan(d, region.CACentral1)
	mixed := dag.Plan{}
	flip := false
	for k := range home {
		if flip {
			mixed[k] = region.USWest2
		} else {
			mixed[k] = region.USEast1
		}
		flip = !flip
	}
	return []dag.Plan{home, green, mixed}
}

// assertBatchParity runs EstimateBatch over the plan set and requires
// every returned estimate to be bit-identical to a standalone Estimate
// of the same assignment.
func assertBatchParity(t *testing.T, snap *Snapshot, plans []dag.Plan, h int) {
	t.Helper()
	assigns := make([][]int, len(plans))
	for i, p := range plans {
		a, err := snap.Assign(p)
		if err != nil {
			t.Fatal(err)
		}
		assigns[i] = a
	}
	got, err := snap.EstimateBatch(assigns, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(plans) {
		t.Fatalf("hour %d: %d estimates for %d plans", h, len(got), len(plans))
	}
	for i, est := range got {
		want, err := snap.Estimate(assigns[i], h)
		if err != nil {
			t.Fatal(err)
		}
		if est == nil {
			t.Fatalf("hour %d plan %d: nil estimate without pruning", h, i)
		}
		if *est != *want {
			t.Errorf("hour %d plan %v: batch %+v, full %+v", h, plans[i], est, want)
		}
	}
}

// TestEstimateBatchBitIdenticalToFull is the core contract of the shared
// sweep: replaying one tape pass for K plans at once must reproduce the
// per-plan estimates bit for bit — on the sync-rich workflow with both
// instantly converging (constant) and slowly converging (noisy)
// durations, across hours.
func TestEstimateBatchBitIdenticalToFull(t *testing.T) {
	hours := []time.Time{t0, t0.Add(time.Hour), t0.Add(2 * time.Hour)}
	base := richInputs(t)
	for _, tc := range []struct {
		name string
		in   Inputs
	}{
		{"const", base},
		{"noisy", &noisyInputs{base}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snap, err := New(tc.in, carbon.BestCase(), 42).Compile(nil, hours, t0)
			if err != nil {
				t.Fatal(err)
			}
			plans := batchPlanSet(base.d)
			for h := range hours {
				assertBatchParity(t, snap, plans, h)
			}
		})
	}
}

// TestEstimateBatchSingleAndEmpty pins the degenerate shapes: an empty
// batch returns an empty slice, a one-plan batch routes through the
// single-plan tape path and still matches Estimate.
func TestEstimateBatchSingleAndEmpty(t *testing.T) {
	rin := richInputs(t)
	snap, err := New(rin, carbon.BestCase(), 42).Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := snap.EstimateBatch(nil, 0, nil); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
	a, err := snap.Assign(dag.NewHomePlan(rin.d, region.USEast1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := snap.EstimateBatch([][]int{a}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := snap.Estimate(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if *got[0] != *want {
		t.Errorf("single-plan batch diverges: %+v vs %+v", got[0], want)
	}
}

// TestEstimateBatchPruningExact drives the exact-bound abandonment: on a
// heavy-tailed workload (no lane converges at the first boundary, so the
// prune check runs), a threshold of 0 is below any reachable metric floor
// and must prune the lane to nil, while +Inf thresholds must never prune
// and the survivors must stay bit-identical to standalone estimates.
func TestEstimateBatchPruningExact(t *testing.T) {
	enableTelemetry(t)
	in := &heavyTailInputs{richInputs(t)}
	snap, err := New(in, carbon.BestCase(), 42).Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.bnd.ok {
		t.Fatal("bound tables not baked on a clean compile")
	}
	plans := batchPlanSet(in.d)
	assigns := make([][]int, len(plans))
	for i, p := range plans {
		if assigns[i], err = snap.Assign(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, metric := range []BatchMetric{BatchCarbonMean, BatchCostMean, BatchLatencyMean} {
		prune := &BatchPrune{
			Metric:    metric,
			Threshold: []float64{math.Inf(1), 0, math.Inf(1)},
		}
		p0 := snap.tel.prunedCandidates.Value()
		got, err := snap.EstimateBatch(assigns, 0, prune)
		if err != nil {
			t.Fatal(err)
		}
		if got[1] != nil {
			t.Errorf("metric %d: threshold 0 should prune, got %+v", metric, got[1])
		}
		if snap.tel.prunedCandidates.Value() != p0+1 {
			t.Errorf("metric %d: pruned_candidates %d → %d, want +1", metric, p0, snap.tel.prunedCandidates.Value())
		}
		for _, i := range []int{0, 2} {
			want, err := snap.Estimate(assigns[i], 0)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] == nil {
				t.Fatalf("metric %d plan %d: +Inf threshold must never prune", metric, i)
			}
			if *got[i] != *want {
				t.Errorf("metric %d plan %d: survivor diverges after sibling pruned", metric, i)
			}
		}
	}
}

// TestEstimateBatchLowerBoundNeverExceedsMetric is the soundness half of
// the pruning proof at the API level: a threshold set exactly at the
// plan's true final metric must never prune it, because every
// intermediate lower bound is ≤ the true mean by construction.
func TestEstimateBatchLowerBoundNeverExceedsMetric(t *testing.T) {
	in := &noisyInputs{richInputs(t)}
	snap, err := New(in, carbon.BestCase(), 42).Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	plans := batchPlanSet(in.d)
	assigns := make([][]int, len(plans))
	full := make([]*Estimate, len(plans))
	for i, p := range plans {
		if assigns[i], err = snap.Assign(p); err != nil {
			t.Fatal(err)
		}
		if full[i], err = snap.Estimate(assigns[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		metric BatchMetric
		of     func(*Estimate) float64
	}{
		{BatchCarbonMean, func(e *Estimate) float64 { return e.CarbonMean }},
		{BatchCostMean, func(e *Estimate) float64 { return e.CostMean }},
		{BatchLatencyMean, func(e *Estimate) float64 { return e.LatencyMean }},
	} {
		thr := make([]float64, len(plans))
		for i := range thr {
			thr[i] = tc.of(full[i])
		}
		got, err := snap.EstimateBatch(assigns, 0, &BatchPrune{Metric: tc.metric, Threshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		for i, est := range got {
			if est == nil {
				t.Errorf("metric %d plan %d: pruned at its own true metric — bound not a lower bound", tc.metric, i)
				continue
			}
			if *est != *full[i] {
				t.Errorf("metric %d plan %d: estimate diverges under active thresholds", tc.metric, i)
			}
		}
	}
}

// TestEstimateBatchDeltaBitIdenticalToFull covers the composed path:
// anchored resumes for single-node diffs (grouped by shared firstUse
// boundary), structural fallbacks for entry-node and multi-node diffs,
// and the identical-plan shortcut — each bit-identical to full replay.
func TestEstimateBatchDeltaBitIdenticalToFull(t *testing.T) {
	in := richInputs(t)
	snap, err := New(in, carbon.BestCase(), 42).Compile(nil, []time.Time{t0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	home := dag.NewHomePlan(in.d, region.USEast1)
	neighbor := func(changes map[dag.NodeID]region.ID) dag.Plan {
		p := dag.Plan{}
		for k, v := range home {
			p[k] = v
		}
		for k, v := range changes {
			p[k] = v
		}
		return p
	}
	plans := []dag.Plan{
		neighbor(map[dag.NodeID]region.ID{"tail": region.CACentral1}),
		neighbor(map[dag.NodeID]region.ID{"tail": region.USWest2}),
		neighbor(map[dag.NodeID]region.ID{"join": region.CACentral1}),
		neighbor(map[dag.NodeID]region.ID{"start": region.CACentral1}),
		neighbor(map[dag.NodeID]region.ID{"left": region.USWest2, "tail": region.CACentral1}),
		neighbor(nil), // identical plan
	}
	baseAssign, err := snap.Assign(home)
	if err != nil {
		t.Fatal(err)
	}
	base, err := snap.Estimate(baseAssign, 0)
	if err != nil {
		t.Fatal(err)
	}
	assigns := make([][]int, len(plans))
	for i, p := range plans {
		if assigns[i], err = snap.Assign(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := snap.EstimateBatchDelta(base, baseAssign, assigns, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, est := range got {
		want, err := snap.Estimate(assigns[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		if est == nil {
			t.Fatalf("plan %d: nil without pruning", i)
		}
		if *est != *want {
			t.Errorf("plan %v: batch delta %+v, full %+v", plans[i], est, want)
		}
	}
}

// TestEstimateBatchFallsBackWithoutSoA pins the escape hatches: with the
// AoS tape layout or no tapes at all there are no SoA columns to sweep,
// so EstimateBatch must degrade to sequential full estimates — still
// bit-identical, never pruned (the bound needs the columns).
func TestEstimateBatchFallsBackWithoutSoA(t *testing.T) {
	in := richInputs(t)
	for _, mode := range []string{"aos", "untaped"} {
		t.Run(mode, func(t *testing.T) {
			snap, err := New(in, carbon.BestCase(), 11).Compile(nil, []time.Time{t0}, t0)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "aos":
				snap.SetSoA(false)
			case "untaped":
				snap.SetTapes(false)
			}
			plans := batchPlanSet(in.d)
			assigns := make([][]int, len(plans))
			for i, p := range plans {
				if assigns[i], err = snap.Assign(p); err != nil {
					t.Fatal(err)
				}
			}
			got, err := snap.EstimateBatch(assigns, 0, &BatchPrune{Threshold: []float64{0, 0, 0}})
			if err != nil {
				t.Fatal(err)
			}
			for i, est := range got {
				want, err := snap.Estimate(assigns[i], 0)
				if err != nil {
					t.Fatal(err)
				}
				if est == nil || *est != *want {
					t.Errorf("%s plan %d: fallback diverges (%+v vs %+v)", mode, i, est, want)
				}
			}
		})
	}
}
