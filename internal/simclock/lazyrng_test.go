package simclock

import (
	"math/rand"
	"testing"
)

// TestLazySourceMatchesMathRand pins lazySource to math/rand draw by
// draw: every stream the simulator ever sees must be bit-identical to
// rand.NewSource's. Long runs (3× the register length) cross the
// tap/feed wraparound and the fully-mutated-register regime; the seed
// set covers negative values, zero, the modulus edge cases, and the
// FNV-derived seeds DeriveRand produces.
func TestLazySourceMatchesMathRand(t *testing.T) {
	seeds := []int64{
		0, 1, -1, 42, -42, 89482311,
		1<<31 - 1, 1<<31 - 2, 1 << 31, -(1<<31 - 1),
		1<<62 + 12345, -(1<<62 + 12345),
		DeriveSeed(42, "solver/1697328000/0"),
		DeriveSeed(7, "mc/rich/1697331600"),
	}
	for _, seed := range seeds {
		ref := rand.NewSource(seed).(rand.Source64)
		lz := newLazySource(seed)
		for i := 0; i < 3*lzLen; i++ {
			if got, want := lz.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: lazy %d != math/rand %d", seed, i, got, want)
			}
		}
	}
}

// TestLazySourceReseed checks that reseeding fully resets the lazy
// register: a reused source must restart the stream exactly, with no
// stale materialized entries leaking from the previous seed.
func TestLazySourceReseed(t *testing.T) {
	lz := newLazySource(1)
	for i := 0; i < lzLen+5; i++ {
		lz.Uint64()
	}
	lz.Seed(2)
	ref := rand.NewSource(2).(rand.Source64)
	for i := 0; i < 2*lzLen; i++ {
		if got, want := lz.Uint64(), ref.Uint64(); got != want {
			t.Fatalf("after reseed, draw %d: lazy %d != math/rand %d", i, got, want)
		}
	}
}

// TestRandMethodsMatchMathRand pins the full Rand wrapper — Float64,
// Intn, Perm, Normal, Exponential — against rand.New(rand.NewSource):
// the wrapper must stay a pure re-sourcing, never a reimplementation.
func TestRandMethodsMatchMathRand(t *testing.T) {
	ref := rand.New(rand.NewSource(99))
	r := NewRand(99)
	for i := 0; i < 200; i++ {
		if got, want := r.Float64(), ref.Float64(); got != want {
			t.Fatalf("Float64 draw %d: %v != %v", i, got, want)
		}
	}
	for i := 0; i < 50; i++ {
		if got, want := r.Intn(1000), ref.Intn(1000); got != want {
			t.Fatalf("Intn draw %d: %d != %d", i, got, want)
		}
	}
	gotPerm, wantPerm := r.Perm(20), ref.Perm(20)
	for i := range wantPerm {
		if gotPerm[i] != wantPerm[i] {
			t.Fatalf("Perm[%d]: %d != %d", i, gotPerm[i], wantPerm[i])
		}
	}
	for i := 0; i < 50; i++ {
		if got, want := r.Normal(0, 1), ref.NormFloat64(); got != want {
			t.Fatalf("Normal draw %d: %v != %v", i, got, want)
		}
		if got, want := r.Exponential(1), ref.ExpFloat64(); got != want {
			t.Fatalf("Exponential draw %d: %v != %v", i, got, want)
		}
	}
}
