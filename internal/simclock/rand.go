package simclock

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
)

// Rand is a deterministic random stream used throughout the simulator.
// Distinct components derive independent streams from a root seed and a
// label, so adding a new consumer never perturbs existing streams.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a stream seeded with seed. The source is lazySource —
// bit-identical to rand.NewSource(seed) for every seed (pinned by
// TestLazySourceMatchesMathRand) but with O(draws) seeding cost, which
// matters because hot paths derive thousands of short-lived streams.
func NewRand(seed int64) *Rand {
	return &Rand{src: rand.New(newLazySource(seed))}
}

// DeriveSeed returns the child seed DeriveRand would seed its stream with
// for (seed, label). It is exposed so hot paths that derive many sibling
// streams — e.g. the solver's per-iteration proposal streams — can compute
// or compare stream identities without constructing a Rand.
func DeriveSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return int64(h.Sum64())
}

// DeriveRand returns an independent stream derived from a root seed and a
// label. The derivation is a stable hash, so the same (seed, label) pair
// always yields the same stream.
func DeriveRand(seed int64, label string) *Rand {
	return NewRand(DeriveSeed(seed, label))
}

// randPool recycles Rand streams. A lazySource register is ~5.6 KB, and
// the hot paths (one stream per HBSS proposal, one per untaped estimate)
// derive thousands of short-lived streams per solve — re-seeding a
// pooled register produces the bit-identical stream (Seed fully resets
// x0, tap, feed, and the presence bitmap) without the allocation.
var randPool = sync.Pool{New: func() any { return NewRand(0) }}

// AcquireRand returns a pooled stream seeded with seed — bit-identical
// to NewRand(seed). Pair with Release when the stream is done; never use
// a stream after releasing it.
func AcquireRand(seed int64) *Rand {
	r := randPool.Get().(*Rand)
	r.src.Seed(seed)
	return r
}

// AcquireDerived is the pooled DeriveRand: a stream for (seed, label)
// that Release returns for reuse.
func AcquireDerived(seed int64, label string) *Rand {
	return AcquireRand(DeriveSeed(seed, label))
}

// Release returns a stream obtained from AcquireRand or AcquireDerived
// to the pool.
func (r *Rand) Release() { randPool.Put(r) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a normally distributed value.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal (mu, sigma).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the given
// mean.
func (r *Rand) Exponential(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 64.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.src.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }
