package simclock

import "testing"

func TestDeriveSeedStableAndLabelSensitive(t *testing.T) {
	a := DeriveSeed(7, "solver/0/1")
	if a != DeriveSeed(7, "solver/0/1") {
		t.Error("same (seed, label) must derive the same seed")
	}
	if a == DeriveSeed(7, "solver/0/2") {
		t.Error("sibling labels must derive distinct seeds")
	}
	if a == DeriveSeed(8, "solver/0/1") {
		t.Error("distinct root seeds must derive distinct seeds")
	}
}

func TestDeriveRandMatchesDeriveSeed(t *testing.T) {
	// DeriveRand is defined as NewRand(DeriveSeed(...)): the two
	// constructions must yield identical streams.
	a := DeriveRand(42, "mc/wf/100")
	b := NewRand(DeriveSeed(42, "mc/wf/100"))
	for i := 0; i < 16; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}
