// Package simclock provides a deterministic discrete-event scheduler with a
// virtual clock. All Caribou substrates run on virtual time so that
// week-long experiments execute in milliseconds and are exactly
// reproducible from a seed.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Scheduler is a single-threaded discrete-event scheduler. Events fire in
// timestamp order; ties break in scheduling order, which keeps runs
// deterministic. Scheduler is not safe for concurrent use: the simulation
// model is cooperative, with every event handler running to completion on
// the caller's goroutine.
type Scheduler struct {
	now    time.Time
	queue  eventHeap
	seq    uint64
	fired  uint64
	halted bool
}

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// New returns a scheduler whose clock starts at start.
func New(start time.Time) *Scheduler {
	return &Scheduler{now: start}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Pending reports the number of events not yet fired.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired reports the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at the given virtual time. Scheduling in the past
// is a programming error and panics, since it would silently reorder the
// causal event stream.
func (s *Scheduler) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		panic(fmt.Sprintf("simclock: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative
// durations are clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was fired.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 || s.halted {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	s.fired++
	ev.fn()
	return true
}

// Run fires events until the queue drains or Halt is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
	s.halted = false
}

// RunUntil fires events with timestamps not after deadline, then advances
// the clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Time) {
	for len(s.queue) > 0 && !s.halted && !s.queue[0].at.After(deadline) {
		s.Step()
	}
	s.halted = false
	if s.now.Before(deadline) {
		s.now = deadline
	}
}

// Halt stops the currently running Run/RunUntil loop after the in-flight
// event handler returns. It is intended to be called from inside an event.
func (s *Scheduler) Halt() { s.halted = true }
