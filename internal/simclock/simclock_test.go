package simclock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC)

func TestEventsFireInTimestampOrder(t *testing.T) {
	s := New(t0)
	var fired []int
	s.After(3*time.Second, func() { fired = append(fired, 3) })
	s.After(1*time.Second, func() { fired = append(fired, 1) })
	s.After(2*time.Second, func() { fired = append(fired, 2) })
	s.Run()
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired order %v", fired)
	}
	if s.Now() != t0.Add(3*time.Second) {
		t.Fatalf("clock at %v", s.Now())
	}
}

func TestTiesBreakInSchedulingOrder(t *testing.T) {
	s := New(t0)
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { fired = append(fired, i) })
	}
	s.Run()
	for i, v := range fired {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, fired)
		}
	}
}

func TestNestedSchedulingDuringRun(t *testing.T) {
	s := New(t0)
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 5 {
			s.After(time.Second, recur)
		}
	}
	s.After(time.Second, recur)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if s.Now() != t0.Add(5*time.Second) {
		t.Fatalf("clock at %v", s.Now())
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	s := New(t0)
	early, late := false, false
	s.After(time.Hour, func() { early = true })
	s.After(3*time.Hour, func() { late = true })
	s.RunUntil(t0.Add(2 * time.Hour))
	if !early || late {
		t.Fatalf("early=%v late=%v", early, late)
	}
	if s.Now() != t0.Add(2*time.Hour) {
		t.Fatalf("clock at %v, want deadline", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d", s.Pending())
	}
	s.Run()
	if !late {
		t.Fatal("late event never fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(t0)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on past scheduling")
		}
	}()
	s.At(t0.Add(-time.Second), func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New(t0)
	ran := false
	s.After(-time.Hour, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if s.Now() != t0 {
		t.Fatalf("clock moved to %v", s.Now())
	}
}

func TestHaltStopsRun(t *testing.T) {
	s := New(t0)
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		s.After(time.Duration(i)*time.Second, func() {
			count++
			if i == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d after halt", count)
	}
	// Run resumes after a halt.
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d after resume", count)
	}
}

func TestQuickEventOrderInvariant(t *testing.T) {
	// Property: for any set of offsets, firing times observed by
	// handlers are non-decreasing.
	f := func(offsets []uint16) bool {
		s := New(t0)
		last := t0
		ok := true
		for _, off := range offsets {
			s.After(time.Duration(off)*time.Millisecond, func() {
				if s.Now().Before(last) {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok && s.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveRandIndependentStreams(t *testing.T) {
	a := DeriveRand(1, "a")
	b := DeriveRand(1, "b")
	a2 := DeriveRand(1, "a")
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		va, vb, va2 := a.Float64(), b.Float64(), a2.Float64()
		if va == va2 {
			same++
		}
		if va != vb {
			diff++
		}
	}
	if same != 100 {
		t.Errorf("same-label streams diverged: %d/100 equal", same)
	}
	if diff < 95 {
		t.Errorf("different labels look correlated: only %d/100 differ", diff)
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(7)
	const n = 20000

	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if m := sum / n; math.Abs(m-10) > 0.1 {
		t.Errorf("normal mean %.3f, want ~10", m)
	}

	sum = 0
	for i := 0; i < n; i++ {
		sum += r.Exponential(3)
	}
	if m := sum / n; math.Abs(m-3) > 0.15 {
		t.Errorf("exponential mean %.3f, want ~3", m)
	}

	sum = 0
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(4.5))
	}
	if m := sum / n; math.Abs(m-4.5) > 0.15 {
		t.Errorf("poisson mean %.3f, want ~4.5", m)
	}

	// Large-mean Poisson uses the normal approximation.
	sum = 0
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(200))
	}
	if m := sum / n; math.Abs(m-200) > 2 {
		t.Errorf("large poisson mean %.3f, want ~200", m)
	}

	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive mean must yield 0")
	}
}

func TestLogNormalMeanMatchesFormula(t *testing.T) {
	r := NewRand(3)
	const n = 50000
	mu, sigma := 1.0, 0.25
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.LogNormal(mu, sigma)
	}
	want := math.Exp(mu + sigma*sigma/2)
	if m := sum / n; math.Abs(m-want)/want > 0.03 {
		t.Errorf("lognormal mean %.3f, want ~%.3f", m, want)
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}
