package simclock

// lazySource is a drop-in replacement for math/rand's generator (the
// additive lagged Fibonacci register of Mitchell & Reeds) producing the
// bit-identical stream for every seed, but with O(draws) instead of
// O(register) seeding cost.
//
// math/rand's Seed fills all 607 register entries eagerly, walking a
// 31-bit LCG chain x[t+1] = 48271·x[t] mod 2³¹−1 for 1841 sequential
// steps — ~20× more arithmetic than a consumer of a few draws ever reads
// back out. The simulator derives a fresh stream per (seed, label) for
// every HBSS iteration, so short-lived streams dominate: a proposal
// consumes ~15 draws, touching ~30 register entries.
//
// lazySource exploits that entry i is a pure function of the seed:
//
//	vec[i] = x[21+3i]<<40 ^ x[22+3i]<<20 ^ x[23+3i] ^ lzCooked[i]
//
// and the LCG admits O(1) jump-ahead, x[t] = 48271^t·x[0] mod 2³¹−1,
// with the powers precomputed once at package init. Seeding therefore
// only records x[0] and clears a presence bitmap; entries materialize on
// first read. Streams that do run long simply end up materializing (and
// then mutating) the whole register, identical to the eager generator.
const (
	lzLen      = 607
	lzTap      = 273
	lzMask     = 1<<63 - 1
	lzM        = 1<<31 - 1 // modulus of the seeding LCG (prime)
	lzA        = 48271     // multiplier of the seeding LCG
	lzChainLen = 21 + 3*lzLen
)

// lzPow[t] = lzA^t mod lzM.
var lzPow [lzChainLen]uint64

func init() {
	p := uint64(1)
	for t := range lzPow {
		lzPow[t] = p
		p = p * lzA % lzM
	}
}

type lazySource struct {
	x0   uint64 // normalized seed: start of the LCG seeding chain
	tap  int
	feed int
	vec  [lzLen]int64
	have [lzLen]bool
}

func newLazySource(seed int64) *lazySource {
	s := &lazySource{}
	s.Seed(seed)
	return s
}

// Seed resets the stream. Same normalization as math/rand: reduce into
// [1, 2³¹−1), mapping 0 to an arbitrary fixed nonzero value.
func (s *lazySource) Seed(seed int64) {
	seed %= lzM
	if seed < 0 {
		seed += lzM
	}
	if seed == 0 {
		seed = 89482311
	}
	s.x0 = uint64(seed)
	s.tap = 0
	s.feed = lzLen - lzTap
	s.have = [lzLen]bool{}
}

// at returns the current value of register entry i, materializing it
// from the seed chain on first access. All operands stay well under 64
// bits: lzPow[t], x0 < 2³¹ and lzA < 2¹⁶.
func (s *lazySource) at(i int) int64 {
	if !s.have[i] {
		x := lzPow[21+3*i] * s.x0 % lzM
		u := int64(x) << 40
		x = x * lzA % lzM
		u ^= int64(x) << 20
		x = x * lzA % lzM
		u ^= int64(x)
		s.vec[i] = u ^ lzCooked[i]
		s.have[i] = true
	}
	return s.vec[i]
}

func (s *lazySource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += lzLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += lzLen
	}
	x := s.at(s.feed) + s.at(s.tap)
	s.vec[s.feed] = x
	return uint64(x)
}

func (s *lazySource) Int63() int64 {
	return int64(s.Uint64() & lzMask)
}
