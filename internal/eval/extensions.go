package eval

import (
	"fmt"
	"io"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/core"
	"caribou/internal/dag"
	"caribou/internal/executor"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/stats"
	"caribou/internal/workloads"
)

// Extension experiments beyond the paper's evaluation, exercising the
// directions its discussion motivates: global region sets (§2.1), temporal
// versus geospatial shifting (§2.2), and the ACI-versus-MCI signal choice
// (§7.1).

// learnedApp builds an environment, runs one home-only learning day, and
// returns the app ready for solving.
func learnedApp(wl *workloads.Workload, regions []region.ID, seed int64, perDay int) (*core.Env, *core.App, error) {
	env, err := core.NewEnv(core.EnvConfig{
		Seed:    seed,
		Start:   EvalStart,
		End:     EvalStart.Add(48 * time.Hour),
		Regions: regions,
	})
	if err != nil {
		return nil, nil, err
	}
	app, err := env.NewApp(core.AppConfig{
		Workload: wl,
		Home:     region.USEast1,
		Mode:     executor.ModeCaribou,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
		Regions: regions,
		Seed:    seed,
	})
	if err != nil {
		return nil, nil, err
	}
	gap := 24 * time.Hour / time.Duration(perDay)
	app.ScheduleUniform(EvalStart, perDay, gap, workloads.Small)
	env.RunUntil(EvalStart.Add(24 * time.Hour))
	if err := app.Metrics.RefreshForecasts(env.Sched.Now()); err != nil {
		return nil, nil, err
	}
	return env, app, nil
}

// --- Global shifting ---

// ExtGlobalRow compares fine-grained shifting over the NA evaluation set
// against the global catalogue for one workload.
type ExtGlobalRow struct {
	Workload         string
	NANormalized     float64 // solver-estimated carbon / home, 4 NA regions
	GlobalNormalized float64 // same with 10 global regions
}

// ExtGlobal estimates the additional headroom global region sets unlock.
// It compares solver-estimated plan carbon (normalized to the home plan)
// because executing against far regions is dominated by the same model
// terms; the NA numbers cross-check against Fig 7's measured runs. The
// per-(workload, region set) learning runs execute concurrently on the
// pool (nil uses a private default-width pool).
func ExtGlobal(p *Pool, wls []*workloads.Workload, seed int64, perDay int) ([]ExtGlobalRow, error) {
	if len(wls) == 0 {
		wls = workloads.All()
	}
	if perDay == 0 {
		perDay = 192
	}
	regionSets := [][]region.ID{region.EvaluationFour(), region.Global().IDs()}
	norms := make([]float64, len(wls)*len(regionSets))
	err := p.orDefault().Do(len(norms), func(i int) error {
		wl, regs := wls[i/len(regionSets)], regionSets[i%len(regionSets)]
		_, app, err := learnedApp(wl, regs, seed, perDay)
		if err != nil {
			return fmt.Errorf("ext-global %s: %w", wl.Name, err)
		}
		now := EvalStart.Add(24 * time.Hour)
		home := dag.NewHomePlan(wl.DAG, region.USEast1)
		homeEst, err := app.Estimator.Estimate(home, now, now)
		if err != nil {
			return err
		}
		res, err := app.Solver.SolveOne(now, now)
		if err != nil {
			return err
		}
		norms[i] = res.Estimate.CarbonMean / homeEst.CarbonMean
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []ExtGlobalRow
	for i, wl := range wls {
		rows = append(rows, ExtGlobalRow{
			Workload:         wl.Name,
			NANormalized:     norms[i*len(regionSets)],
			GlobalNormalized: norms[i*len(regionSets)+1],
		})
	}
	return rows, nil
}

// PrintExtGlobal renders the comparison.
func PrintExtGlobal(w io.Writer, rows []ExtGlobalRow) {
	fmt.Fprintf(w, "Extension — global region sets vs North America (solver-estimated, best-case tx)\n")
	fmt.Fprintf(w, "%-24s %14s %14s\n", "workload", "NA (4 regions)", "global (10)")
	var na, gl []float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %14.3f %14.3f\n", r.Workload, r.NANormalized, r.GlobalNormalized)
		na = append(na, r.NANormalized)
		gl = append(gl, r.GlobalNormalized)
	}
	gna, err1 := stats.GeometricMean(na)
	ggl, err2 := stats.GeometricMean(gl)
	if err1 == nil && err2 == nil {
		fmt.Fprintf(w, "geomean: NA %.3f, global %.3f\n", gna, ggl)
	}
}

// --- Temporal vs geospatial shifting ---

// ExtTemporalRow compares shifting strategies for one workload: carbon
// normalized to executing at home at the arrival hour, averaged over all
// 24 arrival hours.
type ExtTemporalRow struct {
	Workload string
	// Temporal defers execution to the best hour of day, staying home
	// (deadline ≤ 24 h).
	Temporal float64
	// Geospatial executes at the arrival hour under the solved plan.
	Geospatial float64
	// Combined defers and shifts.
	Combined float64
}

// ExtTemporal quantifies §2.2's contrast on the same modeling substrate.
// Workloads are scored concurrently on the pool (nil uses a private
// default-width pool).
func ExtTemporal(p *Pool, wls []*workloads.Workload, seed int64, perDay int) ([]ExtTemporalRow, error) {
	if len(wls) == 0 {
		wls = workloads.All()
	}
	if perDay == 0 {
		perDay = 192
	}
	rows := make([]ExtTemporalRow, len(wls))
	err := p.orDefault().Do(len(wls), func(i int) error {
		wl := wls[i]
		_, app, err := learnedApp(wl, region.EvaluationFour(), seed, perDay)
		if err != nil {
			return fmt.Errorf("ext-temporal %s: %w", wl.Name, err)
		}
		now := EvalStart.Add(24 * time.Hour)
		home := dag.NewHomePlan(wl.DAG, region.USEast1)

		homeByHour := make([]float64, 24)
		solvedByHour := make([]float64, 24)
		for h := 0; h < 24; h++ {
			at := now.Add(time.Duration(h) * time.Hour)
			he, err := app.Estimator.Estimate(home, at, now)
			if err != nil {
				return err
			}
			homeByHour[h] = he.CarbonMean
			res, err := app.Solver.SolveOne(at, now)
			if err != nil {
				return err
			}
			solvedByHour[h] = res.Estimate.CarbonMean
		}
		bestHome := min24(homeByHour)
		bestSolved := min24(solvedByHour)
		var tSum, gSum, cSum, base float64
		for h := 0; h < 24; h++ {
			base += homeByHour[h]
			tSum += bestHome
			gSum += solvedByHour[h]
			cSum += bestSolved
		}
		rows[i] = ExtTemporalRow{
			Workload:   wl.Name,
			Temporal:   tSum / base,
			Geospatial: gSum / base,
			Combined:   cSum / base,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func min24(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// PrintExtTemporal renders the comparison.
func PrintExtTemporal(w io.Writer, rows []ExtTemporalRow) {
	fmt.Fprintf(w, "Extension — temporal vs geospatial shifting (carbon normalized to home at arrival hour)\n")
	fmt.Fprintf(w, "%-24s %10s %12s %10s\n", "workload", "temporal", "geospatial", "combined")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %10.3f %12.3f %10.3f\n", r.Workload, r.Temporal, r.Geospatial, r.Combined)
	}
}

// --- ACI vs MCI signal ---

// ExtSignalRow reports how plan decisions change when the solver
// optimizes against a marginal- instead of average-carbon signal.
type ExtSignalRow struct {
	Workload string
	// DivergentAssignments is the fraction of (hour, stage) assignments
	// that differ between ACI- and MCI-driven plans.
	DivergentAssignments float64
	// MCIPlanACICarbon is the ACI-accounted carbon of the MCI-chosen
	// plans normalized to the ACI-chosen plans: > 1 means optimizing
	// for MCI costs average-carbon performance.
	MCIPlanACICarbon float64
}

// ExtSignal runs the sensitivity study the §7.1 discussion calls for.
// Workloads are scored concurrently on the pool (nil uses a private
// default-width pool).
func ExtSignal(p *Pool, wls []*workloads.Workload, seed int64, perDay int) ([]ExtSignalRow, error) {
	if len(wls) == 0 {
		wls = []*workloads.Workload{workloads.Text2SpeechCensoring(), workloads.VideoAnalytics()}
	}
	if perDay == 0 {
		perDay = 192
	}
	rows := make([]ExtSignalRow, len(wls))
	err := p.orDefault().Do(len(wls), func(i int) error {
		wl := wls[i]
		env, app, err := learnedApp(wl, region.EvaluationFour(), seed, perDay)
		if err != nil {
			return fmt.Errorf("ext-signal %s: %w", wl.Name, err)
		}
		now := EvalStart.Add(24 * time.Hour)
		aciPlans, _, err := app.Solver.SolveHourly(now, now)
		if err != nil {
			return err
		}

		// A second app whose Metric Manager reads the MCI signal.
		mci := carbon.NewMarginalSource(env.Carbon, seed)
		env2, err := core.NewEnv(core.EnvConfig{
			Seed: seed, Start: EvalStart, End: EvalStart.Add(48 * time.Hour),
			Regions: region.EvaluationFour(),
		})
		if err != nil {
			return err
		}
		app2, err := env2.NewAppWithCarbon(core.AppConfig{
			Workload: wl,
			Home:     region.USEast1,
			Mode:     executor.ModeCaribou,
			Objective: solver.Objective{
				Priority:   solver.PriorityCarbon,
				Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
			},
			Seed: seed,
		}, mci)
		if err != nil {
			return err
		}
		gap := 24 * time.Hour / time.Duration(perDay)
		app2.ScheduleUniform(EvalStart, perDay, gap, workloads.Small)
		env2.RunUntil(EvalStart.Add(24 * time.Hour))
		if err := app2.Metrics.RefreshForecasts(now); err != nil {
			return err
		}
		mciPlans, _, err := app2.Solver.SolveHourly(now, now)
		if err != nil {
			return err
		}

		// Divergence and re-accounting of MCI plans under ACI.
		diverge, total := 0, 0
		var aciSum, mciSum float64
		for h := 0; h < 24; h++ {
			at := now.Add(time.Duration(h) * time.Hour)
			for n, r := range aciPlans[at.Hour()] {
				total++
				if mciPlans[at.Hour()][n] != r {
					diverge++
				}
			}
			ae, err := app.Estimator.Estimate(aciPlans[at.Hour()], at, now)
			if err != nil {
				return err
			}
			me, err := app.Estimator.Estimate(mciPlans[at.Hour()], at, now)
			if err != nil {
				return err
			}
			aciSum += ae.CarbonMean
			mciSum += me.CarbonMean
		}
		rows[i] = ExtSignalRow{
			Workload:             wl.Name,
			DivergentAssignments: float64(diverge) / float64(total),
			MCIPlanACICarbon:     mciSum / aciSum,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintExtSignal renders the study.
func PrintExtSignal(w io.Writer, rows []ExtSignalRow) {
	fmt.Fprintf(w, "Extension — ACI vs MCI signal sensitivity\n")
	fmt.Fprintf(w, "%-24s %12s %18s\n", "workload", "divergence", "MCI plan ACI cost")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %11.1f%% %18.3f\n", r.Workload, r.DivergentAssignments*100, r.MCIPlanACICarbon)
	}
}
