package eval

import (
	"fmt"
	"io"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/core"
	"caribou/internal/executor"
	"caribou/internal/metrics"
	"caribou/internal/netmodel"
	"caribou/internal/pricing"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/trace"
	"caribou/internal/workloads"
)

// Fig 13: (a) total carbon per invocation — execution, transmission, and
// framework overhead — as the fixed deployment-solve frequency sweeps
// from once to seven times per week (dynamic triggering disabled, §9.7);
// (b) carbon-forecast quality versus the forecast window implied by each
// frequency.

// Fig13aRow is one stacked bar of the frequency sweep.
type Fig13aRow struct {
	SolvesPerWeek int
	Scenario      string
	ExecGrams     float64 // per invocation
	TxGrams       float64
	OverheadGrams float64 // per invocation (solve cost amortized)
	TotalGrams    float64
}

// Fig13bRow is one forecast-quality sample.
type Fig13bRow struct {
	SolvesPerWeek int
	HorizonHours  int
	Region        region.ID
	MAPEPct       float64
}

// Fig13Options scales the experiment.
type Fig13Options struct {
	Frequencies []int
	PerDay      float64
	Days        int
	Seed        int64
	// Pool bounds the sweep's concurrency; nil uses a private
	// default-width pool. Fig 13a's fixed-period solve runs are not
	// RunConfig-shaped, so they ride the pool's generic job lane.
	Pool *Pool
}

// Fig13 runs both sub-figures. The workload is Text2Speech Censoring with
// the small input, per §9.7.
func Fig13(opt Fig13Options) ([]Fig13aRow, []Fig13bRow, error) {
	if len(opt.Frequencies) == 0 {
		opt.Frequencies = []int{1, 2, 3, 4, 5, 6, 7}
	}
	if opt.PerDay == 0 {
		opt.PerDay = 1600 // Azure 5th-percentile DAG (§9.7)
	}
	if opt.Days == 0 {
		opt.Days = 7
	}
	if opt.Seed == 0 {
		opt.Seed = 17
	}

	scens := scenarios()
	aRows := make([]Fig13aRow, len(opt.Frequencies)*len(scens))
	err := opt.Pool.orDefault().Do(len(aRows), func(i int) error {
		freq := opt.Frequencies[i/len(scens)]
		sc := scens[i%len(scens)]
		row, err := fig13aRun(freq, sc.Name, sc.Tx, opt)
		if err != nil {
			return fmt.Errorf("fig13a f=%d %s: %w", freq, sc.Name, err)
		}
		aRows[i] = *row
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	bRows, err := fig13b(opt)
	if err != nil {
		return nil, nil, err
	}
	return aRows, bRows, nil
}

// fig13aRun executes one week with solves at a fixed period.
func fig13aRun(freq int, scenario string, tx carbon.TransmissionModel, opt Fig13Options) (*Fig13aRow, error) {
	wl := workloads.Text2SpeechCensoring()
	start := EvalStart
	end := start.Add(time.Duration(opt.Days) * 24 * time.Hour)
	env, err := core.NewEnv(core.EnvConfig{
		Seed: opt.Seed, Start: start, End: end, Regions: region.EvaluationFour(),
	})
	if err != nil {
		return nil, err
	}
	app, err := env.NewApp(core.AppConfig{
		Workload: wl,
		Home:     region.USEast1,
		Mode:     executor.ModeCaribou,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
		Tx:   tx,
		Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}

	profile := trace.Uniform(opt.PerDay)
	events, err := trace.Generate(profile, start, end, opt.Seed)
	if err != nil {
		return nil, err
	}
	app.ScheduleTrace(events)

	// Fixed-period solving: the solver runs in ca-central-1 (as in the
	// paper's cost accounting), producing 24-hour granular plans.
	period := time.Duration(opt.Days) * 24 * time.Hour / time.Duration(freq)
	var overhead float64
	for i := 0; i < freq; i++ {
		at := start.Add(time.Duration(i)*period + time.Hour) // after some data exists
		env.Sched.At(at, func() {
			now := env.Sched.Now()
			if err := app.Metrics.RefreshForecasts(now); err != nil {
				return
			}
			plans, _, err := app.Solver.SolveHourly(now, now)
			if err != nil {
				return
			}
			if _, err := app.DeployPlanRegions(plans); err != nil {
				return
			}
			app.SetStaticPlans(plans)
			overhead += fig13SolveCost(env, now)
		})
	}
	env.Run()

	sum, err := env.Summarize(app.Records, tx)
	if err != nil {
		return nil, err
	}
	perInv := overhead / float64(sum.Invocations)
	return &Fig13aRow{
		SolvesPerWeek: freq,
		Scenario:      scenario,
		ExecGrams:     sum.MeanExecCarbonG,
		TxGrams:       sum.MeanTxCarbonG,
		OverheadGrams: perInv,
		TotalGrams:    sum.MeanCarbonG + perInv,
	}, nil
}

// fig13SolveCost prices one 24-solve DP generation executed in
// ca-central-1 (§9.7 reports ~1.98e-2 gCO2eq for the Python engine; the
// Go Monte Carlo engine halves the solver runtime).
func fig13SolveCost(env *core.Env, now time.Time) float64 {
	const solveSeconds = 276 // Go engine, 24-hour granularity (§9.7)
	r, _ := env.Cat.Get(region.CACentral1)
	intensity, err := env.Carbon.At(r.GridZone, now)
	if err != nil {
		intensity = 35
	}
	return carbon.ExecutionCarbon(intensity, 1769, solveSeconds, 0.95)
}

// fig13b scores forecast MAPE at the horizon implied by each frequency:
// solving f times per week means plans rely on forecasts up to 7/f days
// old.
func fig13b(opt Fig13Options) ([]Fig13bRow, error) {
	src, err := carbon.SharedSource(opt.Seed, EvalStart.Add(-8*24*time.Hour), EvalStart.Add(9*24*time.Hour))
	if err != nil {
		return nil, err
	}
	cat := region.NorthAmerica()
	four, err := cat.Subset(region.EvaluationFour())
	if err != nil {
		return nil, err
	}
	wl := workloads.Text2SpeechCensoring()
	mm := metrics.New(wl.DAG, region.USEast1, four, netmodel.New(four), src, pricing.DefaultBook())

	var rows []Fig13bRow
	for _, freq := range opt.Frequencies {
		horizon := 7 * 24 / freq
		for _, id := range region.EvaluationFour() {
			mape, err := mm.ForecastMAPE(id, EvalStart, horizon)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig13bRow{
				SolvesPerWeek: freq, HorizonHours: horizon, Region: id, MAPEPct: mape,
			})
		}
	}
	return rows, nil
}

// PrintFig13 renders both sub-figures.
func PrintFig13(w io.Writer, a []Fig13aRow, b []Fig13bRow) {
	fmt.Fprintf(w, "Fig 13a — carbon per invocation vs deployment-solve frequency\n")
	fmt.Fprintf(w, "%8s %-6s %10s %10s %10s %10s\n", "f/week", "scen", "exec(g)", "tx(g)", "ovhd(g)", "total(g)")
	for _, r := range a {
		fmt.Fprintf(w, "%8d %-6s %10.5f %10.5f %10.6f %10.5f\n",
			r.SolvesPerWeek, r.Scenario, r.ExecGrams, r.TxGrams, r.OverheadGrams, r.TotalGrams)
	}
	fmt.Fprintf(w, "\nFig 13b — carbon forecast MAPE vs forecast window\n")
	fmt.Fprintf(w, "%8s %8s %-18s %10s\n", "f/week", "horizon", "region", "MAPE(%)")
	for _, r := range b {
		fmt.Fprintf(w, "%8d %7dh %-18s %10.2f\n", r.SolvesPerWeek, r.HorizonHours, shortRegion(r.Region), r.MAPEPct)
	}
}
