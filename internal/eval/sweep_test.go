package eval

import (
	"encoding/json"
	"testing"

	"caribou/internal/solver"
	"caribou/internal/workloads"
)

// TestRunSpecRoundTrip pins that SpecOf → JSON → Config preserves the
// canonical key for the configuration shapes the figures produce.
func TestRunSpecRoundTrip(t *testing.T) {
	cfgs := []RunConfig{
		{Workload: workloads.Text2SpeechCensoring(), Class: workloads.Small,
			Strategy: CoarseIn("aws:us-west-2")},
		{Workload: workloads.DNAVisualization(), Class: workloads.Large,
			Strategy: Fine, EvalDays: 2,
			Tolerances: &solver.Tolerances{Latency: solver.Tol(5)}},
		// Explicitly unconstrained (distinct from nil = default slack).
		{Workload: workloads.ImageProcessing(), Class: workloads.Small,
			Strategy: Fine, Tolerances: &solver.Tolerances{}},
		// A zero-percent limit is set, not absent.
		{Workload: workloads.ImageProcessing(), Class: workloads.Small,
			Strategy: Fine, Tolerances: &solver.Tolerances{Latency: solver.Tol(0)}},
	}
	for i, cfg := range cfgs {
		spec := SpecOf(cfg)
		buf, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		var back RunSpec
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		got, err := back.Config()
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		if got.CanonicalKey() != cfg.CanonicalKey() {
			t.Errorf("cfg %d key drifted through JSON:\n was %s\n now %s",
				i, cfg.CanonicalKey(), got.CanonicalKey())
		}
	}
}

// TestExpandSweepCoversFigures is the sweep↔figure parity contract: the
// fig7–fig10 presets must expand to exactly the canonical keys the
// figure drivers submit, so a sweep-populated store serves a warm figure
// run with zero executions.
func TestExpandSweepCoversFigures(t *testing.T) {
	const seed = int64(17)
	runs, err := ExpandSweep(SweepSpec{
		Figures: FigurePresets(),
		Quick:   true,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, r := range runs {
		have[r.Cfg.CanonicalKey()] = true
	}

	quickWLs := []*workloads.Workload{workloads.Text2SpeechCensoring(), workloads.ImageProcessing()}
	quickClasses := []workloads.InputClass{workloads.Small}
	var want []RunConfig
	f7, _, _ := fig7Plan(fig7Defaults(Fig7Options{Seed: seed, Workloads: quickWLs, Classes: quickClasses}))
	want = append(want, f7...)
	want = append(want, fig8Configs(fig8Defaults(Fig8Options{Seed: seed, Workloads: quickWLs, Classes: quickClasses}))...)
	want = append(want, fig9Configs(fig9Defaults(Fig9Options{Seed: seed, Workloads: quickWLs, Classes: quickClasses,
		Factors: []float64{1e-4, 1e-3, 1e-2}}))...)
	want = append(want, fig10Configs(fig10Defaults(Fig10Options{Seed: seed,
		Tolerances: []float64{0, 5, 10}}))...)

	for _, cfg := range want {
		if !have[cfg.CanonicalKey()] {
			t.Errorf("figure run missing from sweep expansion: %s", cfg.CanonicalKey())
		}
	}
}

// TestExpandSweepDedupes pins that duplicate configurations across
// sources collapse to one run, keeping first-occurrence order.
func TestExpandSweepDedupes(t *testing.T) {
	spec := SweepSpec{
		Figures: []string{"fig8", "fig8"},
		Quick:   true,
		Seed:    17,
	}
	runs, err := ExpandSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range runs {
		key := r.Cfg.CanonicalKey()
		if seen[key] {
			t.Fatalf("duplicate run in expansion: %s", key)
		}
		seen[key] = true
		if r.Name != key {
			t.Fatalf("run name %q is not its canonical key %q", r.Name, key)
		}
	}
	// fig8 quick: 2 workloads × 1 class × 2 scenarios × (home, fine) = 8
	// configs, minus the scenario-collapsed coarse home baselines = 6.
	if len(runs) != 6 {
		t.Fatalf("expanded %d runs, want 6", len(runs))
	}
}

// TestExpandSweepGridAndRuns exercises the custom grid and explicit-run
// sources, including validation of unknown workloads and presets.
func TestExpandSweepGridAndRuns(t *testing.T) {
	runs, err := ExpandSweep(SweepSpec{
		Seed: 23,
		Grid: &GridSpec{
			Workloads:  []string{"text2speech-censoring"},
			Classes:    []string{"small"},
			Strategies: []string{"fine", "aws:us-east-1"},
		},
		Runs: []RunSpec{{Workload: "image-processing", Class: "small", Seed: 29}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("expanded %d runs, want 3", len(runs))
	}
	if runs[0].Cfg.Seed != 23 || runs[0].Cfg.Strategy.Coarse != "" || runs[1].Cfg.Strategy.Coarse == "" {
		t.Fatalf("grid expansion order unexpected: %+v", runs)
	}
	if _, err := ExpandSweep(SweepSpec{Figures: []string{"fig99"}}); err == nil {
		t.Fatal("unknown figure preset accepted")
	}
	if _, err := ExpandSweep(SweepSpec{Grid: &GridSpec{Workloads: []string{"nope"}}}); err == nil {
		t.Fatal("unknown grid workload accepted")
	}
}
