package eval

import (
	"strings"
	"testing"
	"time"

	"caribou/internal/region"
	"caribou/internal/workloads"
)

func TestPlotFig2(t *testing.T) {
	series := []Fig2Series{
		{Region: region.USEast1, Values: []float64{400, 410, 420}},
		{Region: region.CACentral1, Values: []float64{30, 32, 31}},
	}
	var sb strings.Builder
	PlotFig2(&sb, series)
	out := sb.String()
	if !strings.Contains(out, "us-east-1") || !strings.Contains(out, "ca-central-1") {
		t.Errorf("legend missing: %q", out)
	}
}

func TestPlotFig7GroupsByWorkload(t *testing.T) {
	rows := []Fig7Row{
		{Workload: "a", Class: workloads.Small, Strategy: "coarse(us-east-1)", Scenario: "best", Normalized: 1},
		{Workload: "a", Class: workloads.Small, Strategy: "fine(all)", Scenario: "best", Normalized: 0.3},
		{Workload: "b", Class: workloads.Large, Strategy: "coarse(us-east-1)", Scenario: "worst", Normalized: 1},
	}
	var sb strings.Builder
	PlotFig7(&sb, rows)
	out := sb.String()
	if strings.Count(out, "Fig 7 —") != 2 {
		t.Errorf("want two group charts:\n%s", out)
	}
	if !strings.Contains(out, "fine(all)") {
		t.Error("strategy label missing")
	}
}

func TestPlotFig9AndFig13b(t *testing.T) {
	var sb strings.Builder
	PlotFig9(&sb, []Fig9Point{
		{Scenario: "equal", Class: workloads.Small, FactorKWh: 1e-4, Geomean: 0.2},
		{Scenario: "equal", Class: workloads.Small, FactorKWh: 1e-3, Geomean: 0.3},
		{Scenario: "free-intra", Class: workloads.Small, FactorKWh: 1e-4, Geomean: 0.25},
	})
	if !strings.Contains(sb.String(), "equal/small") {
		t.Errorf("series legend missing: %q", sb.String())
	}

	sb.Reset()
	PlotFig13b(&sb, []Fig13bRow{
		{SolvesPerWeek: 1, HorizonHours: 168, Region: region.USEast1, MAPEPct: 8},
		{SolvesPerWeek: 7, HorizonHours: 24, Region: region.USEast1, MAPEPct: 5},
	})
	if !strings.Contains(sb.String(), "us-east-1") {
		t.Errorf("region legend missing: %q", sb.String())
	}
}

func TestPlotFig11Sparklines(t *testing.T) {
	res := []Fig11Result{{
		Scenario: "best",
		Bins: []Fig11Bin{
			{Start: time.Now(), RelCarbon: map[string]float64{"caribou": 0.4, "us-west-1": 1.0, "us-west-2": 1.1}},
			{Start: time.Now(), RelCarbon: map[string]float64{"caribou": 0.3, "us-west-1": 0.9, "us-west-2": 1.0}},
		},
	}}
	var sb strings.Builder
	PlotFig11(&sb, res)
	out := sb.String()
	if !strings.Contains(out, "caribou") || !strings.Contains(out, "▁") && !strings.Contains(out, "█") {
		t.Errorf("sparklines missing: %q", out)
	}
}
