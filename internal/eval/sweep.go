package eval

import (
	"fmt"

	"caribou/internal/carbon"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/workloads"
)

// This file is the sweep-manifest side of the durable run cache: a
// SweepSpec expands into the exact RunConfigs the figure drivers submit
// (figure presets reuse the figNConfigs planners), so a sweep-populated
// store serves a later figure run entirely from disk. RunSpec is the
// JSON-stable form of a RunConfig used in sweep manifests — workloads
// travel by name, the planning inputs by value.

// Scenario is one of the paper's transmission-carbon accounting
// scenarios (the two bar styles of Fig 7).
type Scenario struct {
	Name string
	Tx   carbon.TransmissionModel
}

// Scenarios lists the accounting scenarios in figure legend order, for
// callers (caribou-sweep export) that re-account cached results the way
// the figure drivers do.
func Scenarios() []Scenario {
	var out []Scenario
	for _, sc := range scenarios() {
		out = append(out, Scenario{Name: sc.Name, Tx: sc.Tx})
	}
	return out
}

// TolSpec is the JSON form of solver.Tolerances: each non-nil field is a
// set limit in percent. The distinction between an absent tolerances
// object and an empty one is meaningful — absent means the run uses the
// default 25 % latency slack, empty means explicitly unconstrained — and
// both survive the round trip.
type TolSpec struct {
	Latency *float64 `json:"latency,omitempty"`
	Cost    *float64 `json:"cost,omitempty"`
	Carbon  *float64 `json:"carbon,omitempty"`
}

// RunSpec is the JSON form of one RunConfig.
type RunSpec struct {
	Workload      string   `json:"workload"`
	Class         string   `json:"class,omitempty"`
	Regions       []string `json:"regions,omitempty"`
	Home          string   `json:"home,omitempty"`
	Coarse        string   `json:"coarse,omitempty"`
	PlanTxInter   float64  `json:"plan_tx_inter,omitempty"`
	PlanTxIntra   float64  `json:"plan_tx_intra,omitempty"`
	Tolerances    *TolSpec `json:"tolerances,omitempty"`
	PerDay        int      `json:"per_day,omitempty"`
	BenchFraction float64  `json:"bench_fraction,omitempty"`
	WarmupDays    int      `json:"warmup_days,omitempty"`
	EvalDays      int      `json:"eval_days,omitempty"`
	Seed          int64    `json:"seed,omitempty"`
}

// SpecOf serializes cfg (defaulted first, so the spec is explicit about
// every parameter that enters the canonical key).
func SpecOf(cfg RunConfig) RunSpec {
	cfg = cfg.withDefaults()
	s := RunSpec{
		Class:         string(cfg.Class),
		Home:          string(cfg.Home),
		Coarse:        string(cfg.Strategy.Coarse),
		PlanTxInter:   cfg.PlanTx.InterRegionKWhPerGB,
		PlanTxIntra:   cfg.PlanTx.IntraRegionKWhPerGB,
		PerDay:        cfg.PerDay,
		BenchFraction: cfg.BenchFraction,
		WarmupDays:    cfg.WarmupDays,
		EvalDays:      cfg.EvalDays,
		Seed:          cfg.Seed,
	}
	if cfg.Workload != nil {
		s.Workload = cfg.Workload.Name
	}
	for _, r := range cfg.Regions {
		s.Regions = append(s.Regions, string(r))
	}
	if cfg.Tolerances != nil {
		s.Tolerances = &TolSpec{
			Latency: limitSpec(cfg.Tolerances.Latency),
			Cost:    limitSpec(cfg.Tolerances.Cost),
			Carbon:  limitSpec(cfg.Tolerances.Carbon),
		}
	}
	return s
}

func limitSpec(l solver.Limit) *float64 {
	if !l.Set {
		return nil
	}
	pct := l.Pct
	return &pct
}

func specLimit(p *float64) solver.Limit {
	if p == nil {
		return solver.Limit{}
	}
	return solver.Tol(*p)
}

// Config reconstructs the RunConfig a spec describes. The workload is
// resolved by name; SpecOf followed by Config preserves the canonical
// key exactly.
func (s RunSpec) Config() (RunConfig, error) {
	wl, err := workloads.ByName(s.Workload)
	if err != nil {
		return RunConfig{}, fmt.Errorf("eval: run spec: %w", err)
	}
	cfg := RunConfig{
		Workload: wl,
		Class:    workloads.InputClass(s.Class),
		Home:     region.ID(s.Home),
		Strategy: Strategy{Coarse: region.ID(s.Coarse)},
		PlanTx: carbon.TransmissionModel{
			InterRegionKWhPerGB: s.PlanTxInter,
			IntraRegionKWhPerGB: s.PlanTxIntra,
		},
		PerDay:        s.PerDay,
		BenchFraction: s.BenchFraction,
		WarmupDays:    s.WarmupDays,
		EvalDays:      s.EvalDays,
		Seed:          s.Seed,
	}
	for _, r := range s.Regions {
		cfg.Regions = append(cfg.Regions, region.ID(r))
	}
	if s.Tolerances != nil {
		cfg.Tolerances = &solver.Tolerances{
			Latency: specLimit(s.Tolerances.Latency),
			Cost:    specLimit(s.Tolerances.Cost),
			Carbon:  specLimit(s.Tolerances.Carbon),
		}
	}
	return cfg, nil
}

// SweepSpec describes a sweep to submit: any combination of figure
// presets, a cross-product grid, and explicit runs. Expansion dedupes by
// canonical key, so overlapping sources (e.g. fig8 and fig9 sharing home
// baselines) cost one run each.
type SweepSpec struct {
	// Figures lists figure presets ("fig7" … "fig10"); each expands to
	// exactly the runs the corresponding caribou-eval experiment submits.
	Figures []string `json:"figures,omitempty"`
	// Quick mirrors caribou-eval -quick: the reduced workload set and
	// swept parameter lists.
	Quick bool  `json:"quick,omitempty"`
	Seed  int64 `json:"seed,omitempty"`
	// Grid expands a cross product of workloads × classes × strategies ×
	// seeds.
	Grid *GridSpec `json:"grid,omitempty"`
	// Runs are explicit additional runs.
	Runs []RunSpec `json:"runs,omitempty"`
}

// GridSpec is a cross-product sweep: every combination of the listed
// axes becomes one run. Strategies entries are "fine" or a coarse region
// ID (e.g. "aws:us-west-2").
type GridSpec struct {
	Workloads  []string `json:"workloads"`
	Classes    []string `json:"classes,omitempty"`    // default: small, large
	Strategies []string `json:"strategies,omitempty"` // default: fine
	Seeds      []int64  `json:"seeds,omitempty"`      // default: the spec seed
	PerDay     int      `json:"per_day,omitempty"`
	EvalDays   int      `json:"eval_days,omitempty"`
}

// SweepRun is one expanded run: its manifest label (the canonical
// configuration serialization, which is also what its storage key
// hashes) and the configuration itself.
type SweepRun struct {
	Name string
	Cfg  RunConfig
}

// ExpandSweep expands a spec into its deduplicated run list in
// deterministic first-occurrence order.
func ExpandSweep(spec SweepSpec) ([]SweepRun, error) {
	var cfgs []RunConfig
	for _, fig := range spec.Figures {
		fc, err := figureConfigs(fig, spec.Quick, spec.Seed)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, fc...)
	}
	if spec.Grid != nil {
		gc, err := spec.Grid.configs(spec.Seed)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, gc...)
	}
	for _, rs := range spec.Runs {
		cfg, err := rs.Config()
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	seen := map[string]bool{}
	var out []SweepRun
	for _, cfg := range cfgs {
		key := cfg.CanonicalKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, SweepRun{Name: key, Cfg: cfg.withDefaults()})
	}
	return out, nil
}

// FigurePresets lists the figure names ExpandSweep accepts.
func FigurePresets() []string { return []string{"fig7", "fig8", "fig9", "fig10"} }

// figureConfigs expands one figure preset into the same configurations
// the caribou-eval experiment of that name submits (including its -quick
// reductions), via the figNConfigs planners the drivers themselves use.
func figureConfigs(fig string, quick bool, seed int64) ([]RunConfig, error) {
	var wls []*workloads.Workload
	var classes []workloads.InputClass
	if quick {
		wls = []*workloads.Workload{workloads.Text2SpeechCensoring(), workloads.ImageProcessing()}
		classes = []workloads.InputClass{workloads.Small}
	}
	switch fig {
	case "fig7":
		cfgs, _, _ := fig7Plan(fig7Defaults(Fig7Options{Seed: seed, Workloads: wls, Classes: classes}))
		return cfgs, nil
	case "fig8":
		return fig8Configs(fig8Defaults(Fig8Options{Seed: seed, Workloads: wls, Classes: classes})), nil
	case "fig9":
		opt := Fig9Options{Seed: seed, Workloads: wls, Classes: classes}
		if quick {
			opt.Factors = []float64{1e-4, 1e-3, 1e-2}
		}
		return fig9Configs(fig9Defaults(opt)), nil
	case "fig10":
		opt := Fig10Options{Seed: seed}
		if quick {
			opt.Tolerances = []float64{0, 5, 10}
		}
		return fig10Configs(fig10Defaults(opt)), nil
	}
	return nil, fmt.Errorf("eval: unknown figure preset %q (want one of %v)", fig, FigurePresets())
}

// configs expands the grid's cross product in axis order.
func (g *GridSpec) configs(specSeed int64) ([]RunConfig, error) {
	if len(g.Workloads) == 0 {
		return nil, fmt.Errorf("eval: grid spec needs at least one workload")
	}
	classes := g.Classes
	if len(classes) == 0 {
		classes = []string{string(workloads.Small), string(workloads.Large)}
	}
	strategies := g.Strategies
	if len(strategies) == 0 {
		strategies = []string{"fine"}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{specSeed}
	}
	var cfgs []RunConfig
	for _, name := range g.Workloads {
		wl, err := workloads.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("eval: grid spec: %w", err)
		}
		for _, class := range classes {
			for _, strat := range strategies {
				strategy := Fine
				if strat != "fine" {
					strategy = CoarseIn(region.ID(strat))
				}
				for _, seed := range seeds {
					cfgs = append(cfgs, RunConfig{
						Workload: wl,
						Class:    workloads.InputClass(class),
						Strategy: strategy,
						PerDay:   g.PerDay,
						EvalDays: g.EvalDays,
						Seed:     seed,
					})
				}
			}
		}
	}
	return cfgs, nil
}
