package eval

import (
	"fmt"
	"io"
	"sort"
	"time"

	"caribou/internal/core"
	"caribou/internal/executor"
	"caribou/internal/region"
	"caribou/internal/stats"
	"caribou/internal/workloads"
)

// Fig 12: workflow execution time under AWS Step Functions, plain SNS
// chaining, and Caribou, isolating orchestration overhead (§9.6). All
// three run the same workloads with common random numbers in the home
// region.

// Fig12Row is one bar group member.
type Fig12Row struct {
	Workload    string
	Class       workloads.InputClass
	Mode        string
	MeanSeconds float64
	P95Seconds  float64
}

// Fig12Options scales the experiment.
type Fig12Options struct {
	Workloads   []*workloads.Workload
	Classes     []workloads.InputClass
	Invocations int
	Seed        int64
	// Pool bounds the measurements' concurrency; nil uses a private
	// default-width pool. Fig 12's single-day orchestrator measurements
	// are not RunConfig-shaped, so they ride the pool's generic job lane.
	Pool *Pool
}

// Fig12 measures all mode/workload/class combinations concurrently.
func Fig12(opt Fig12Options) ([]Fig12Row, error) {
	if len(opt.Workloads) == 0 {
		opt.Workloads = workloads.All()
	}
	if len(opt.Classes) == 0 {
		opt.Classes = workloads.Classes()
	}
	if opt.Invocations == 0 {
		opt.Invocations = 60
	}
	if opt.Seed == 0 {
		opt.Seed = 17
	}
	modes := []executor.Mode{executor.ModeStepFunctions, executor.ModePlainSNS, executor.ModeCaribou}

	type combo struct {
		wl    *workloads.Workload
		class workloads.InputClass
		mode  executor.Mode
	}
	var combos []combo
	for _, wl := range opt.Workloads {
		for _, class := range opt.Classes {
			for _, mode := range modes {
				combos = append(combos, combo{wl, class, mode})
			}
		}
	}
	rows := make([]Fig12Row, len(combos))
	err := opt.Pool.orDefault().Do(len(combos), func(i int) error {
		c := combos[i]
		mean, p95, err := fig12Run(c.wl, c.class, c.mode, opt)
		if err != nil {
			return fmt.Errorf("fig12 %s/%s/%s: %w", c.wl.Name, c.class, c.mode, err)
		}
		rows[i] = Fig12Row{
			Workload: c.wl.Name, Class: c.class, Mode: c.mode.String(),
			MeanSeconds: mean, P95Seconds: p95,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func fig12Run(wl *workloads.Workload, class workloads.InputClass, mode executor.Mode, opt Fig12Options) (mean, p95 float64, err error) {
	env, err := core.NewEnv(core.EnvConfig{
		Seed:    opt.Seed,
		Start:   EvalStart,
		End:     EvalStart.Add(24 * time.Hour),
		Regions: region.EvaluationFour(),
	})
	if err != nil {
		return 0, 0, err
	}
	app, err := env.NewApp(core.AppConfig{
		Workload:      wl,
		Home:          region.USEast1,
		Mode:          mode,
		Seed:          opt.Seed,
		BenchFraction: -1, // pure home execution in all modes
	})
	if err != nil {
		return 0, 0, err
	}
	gap := 24 * time.Hour / time.Duration(opt.Invocations)
	app.ScheduleUniform(EvalStart, opt.Invocations, gap, class)
	env.Run()
	if len(app.Records) < opt.Invocations {
		return 0, 0, fmt.Errorf("completed %d of %d", len(app.Records), opt.Invocations)
	}
	var svc []float64
	for _, r := range app.Records {
		svc = append(svc, r.ServiceTime().Seconds())
	}
	p, err := stats.Percentile(svc, 95)
	if err != nil {
		return 0, 0, err
	}
	return stats.Mean(svc), p, nil
}

// Fig12Overheads summarizes the §9.6 headline percentages per class:
// Step Functions' speedup over SNS, and Caribou's overhead over SNS and
// over Step Functions (all geometric means across workloads).
type Fig12Overheads struct {
	Class              workloads.InputClass
	SFFasterThanSNSPct float64
	CaribouOverSNSPct  float64
	CaribouOverSFPct   float64
}

// SummarizeFig12 derives the overhead percentages.
func SummarizeFig12(rows []Fig12Row) []Fig12Overheads {
	type key struct {
		wl    string
		class workloads.InputClass
	}
	means := map[key]map[string]float64{}
	classes := map[workloads.InputClass]bool{}
	for _, r := range rows {
		k := key{r.Workload, r.Class}
		if means[k] == nil {
			means[k] = map[string]float64{}
		}
		means[k][r.Mode] = r.MeanSeconds
		classes[r.Class] = true
	}
	var out []Fig12Overheads
	for _, class := range workloads.Classes() {
		if !classes[class] {
			continue
		}
		// Sorted workload order keeps the geometric means independent of
		// map iteration order (log-sums are order-sensitive in the low
		// bits).
		var wls []string
		for k := range means {
			if k.class == class {
				wls = append(wls, k.wl)
			}
		}
		sort.Strings(wls)
		var snsOverSF, cbOverSNS, cbOverSF []float64
		for _, wl := range wls {
			m := means[key{wl, class}]
			sf, sns, cb := m["stepfunctions"], m["sns"], m["caribou"]
			if sf <= 0 || sns <= 0 || cb <= 0 {
				continue
			}
			snsOverSF = append(snsOverSF, sns/sf)
			cbOverSNS = append(cbOverSNS, cb/sns)
			cbOverSF = append(cbOverSF, cb/sf)
		}
		g1, err1 := stats.GeometricMean(snsOverSF)
		g2, err2 := stats.GeometricMean(cbOverSNS)
		g3, err3 := stats.GeometricMean(cbOverSF)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		out = append(out, Fig12Overheads{
			Class:              class,
			SFFasterThanSNSPct: (1 - 1/g1) * 100,
			CaribouOverSNSPct:  (g2 - 1) * 100,
			CaribouOverSFPct:   (g3 - 1) * 100,
		})
	}
	return out
}

// PrintFig12 renders the comparison and headline overheads.
func PrintFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintf(w, "Fig 12 — workflow execution time by orchestrator\n")
	fmt.Fprintf(w, "%-24s %-6s %-14s %10s %10s\n", "workload", "class", "orchestrator", "mean(s)", "p95(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %-6s %-14s %10.3f %10.3f\n", r.Workload, r.Class, r.Mode, r.MeanSeconds, r.P95Seconds)
	}
	for _, o := range SummarizeFig12(rows) {
		fmt.Fprintf(w, "\n%s inputs: Step Functions %.1f%% faster than SNS; Caribou +%.2f%% over SNS; +%.2f%% over Step Functions\n",
			o.Class, o.SFFasterThanSNSPct, o.CaribouOverSNSPct, o.CaribouOverSFPct)
	}
}
