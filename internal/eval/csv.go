package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"time"
)

// WriteCSV serializes a slice of flat structs (the figure row types) as
// CSV with a header derived from the field names, so results can be fed
// to external plotting tools. Supported field kinds: strings, booleans,
// integers, floats, time.Time, and types with those underlying kinds;
// map- or slice-valued fields are skipped.
func WriteCSV(w io.Writer, rows interface{}) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("eval: WriteCSV wants a slice, got %T", rows)
	}
	if v.Len() == 0 {
		return fmt.Errorf("eval: WriteCSV got an empty slice")
	}
	elem := v.Index(0).Type()
	if elem.Kind() != reflect.Struct {
		return fmt.Errorf("eval: WriteCSV wants a slice of structs, got %s", elem)
	}

	var cols []int
	var header []string
	for i := 0; i < elem.NumField(); i++ {
		f := elem.Field(i)
		if f.PkgPath != "" { // unexported
			continue
		}
		switch f.Type.Kind() {
		case reflect.Map, reflect.Slice, reflect.Array, reflect.Ptr, reflect.Interface:
			continue
		}
		cols = append(cols, i)
		header = append(header, f.Name)
	}
	if len(cols) == 0 {
		return fmt.Errorf("eval: %s has no encodable fields", elem)
	}

	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for r := 0; r < v.Len(); r++ {
		row := make([]string, 0, len(cols))
		for _, i := range cols {
			row = append(row, formatField(v.Index(r).Field(i)))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatField(f reflect.Value) string {
	if t, ok := f.Interface().(time.Time); ok {
		return t.UTC().Format(time.RFC3339)
	}
	switch f.Kind() {
	case reflect.String:
		return f.String()
	case reflect.Bool:
		return strconv.FormatBool(f.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(f.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(f.Uint(), 10)
	case reflect.Float32, reflect.Float64:
		return strconv.FormatFloat(f.Float(), 'g', -1, 64)
	default:
		return fmt.Sprintf("%v", f.Interface())
	}
}
