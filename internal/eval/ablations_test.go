package eval

import (
	"strings"
	"testing"
)

// TestPrintAblationSolverSeparatesTimings pins the output contract of the
// ablate-solver experiment: the primary writer gets only deterministic
// columns (byte-comparable across runs and machines), and the wall-clock
// milliseconds land exclusively on the timings writer.
func TestPrintAblationSolverSeparatesTimings(t *testing.T) {
	rows := []AblationSolverRow{
		{Workload: "dna_visualization", Strategy: "hbss/exhaustive", Normalized: 0.42, SolveMillis: 137},
		{Workload: "dna_visualization", Strategy: "coarse", Normalized: 0.58, SolveMillis: 9},
	}
	var out, timings strings.Builder
	PrintAblationSolver(&out, &timings, rows)
	if strings.Contains(out.String(), "ms") || strings.Contains(out.String(), "137") {
		t.Errorf("stdout table must not carry wall-clock timings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0.420") || !strings.Contains(out.String(), "coarse") {
		t.Errorf("stdout table missing deterministic columns:\n%s", out.String())
	}
	if !strings.Contains(timings.String(), "137") || !strings.Contains(timings.String(), "ms") {
		t.Errorf("timings writer should carry the ms column:\n%s", timings.String())
	}

	// A second identical invocation with different timings must produce
	// byte-identical primary output.
	rows[0].SolveMillis = 999
	var out2 strings.Builder
	PrintAblationSolver(&out2, nil, rows)
	if out.String() != out2.String() {
		t.Error("primary output varies with wall-clock timings")
	}
}
