package eval

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"caribou/internal/telemetry"
)

// TestTelemetryInertFig7 pins the telemetry subsystem's core contract:
// enabling the recorder must not change a single bit of figure output, at
// any worker count. Telemetry only reads simulation state — it never
// draws from RNG streams or perturbs scheduling — so the reduced Fig 7
// rows must be deeply equal with the recorder on and off.
func TestTelemetryInertFig7(t *testing.T) {
	if telemetry.Enabled() {
		t.Fatal("telemetry unexpectedly enabled at test entry")
	}
	for _, workers := range []int{1, 8} {
		off, err := Fig7(fig7TestOptions(NewPool(workers)))
		if err != nil {
			t.Fatal(err)
		}
		telemetry.Enable(telemetry.Options{})
		on, err := Fig7(fig7TestOptions(NewPool(workers)))
		telemetry.Disable()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(off, on) {
			t.Fatalf("workers=%d: rows differ with telemetry on vs off:\n%+v\nvs\n%+v", workers, off, on)
		}
	}
}

// TestTelemetryTraceCoversLayers checks the NDJSON export after a real
// figure run: every line is valid JSON, and the trace carries records or
// instruments from the platform, solver, and pool layers.
func TestTelemetryTraceCoversLayers(t *testing.T) {
	telemetry.Enable(telemetry.Options{})
	defer telemetry.Disable()
	if _, err := Fig7(fig7TestOptions(NewPool(2))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := telemetry.Default().WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	layers := map[string]bool{}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var rec struct {
			Type string `json:"type"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if i := strings.IndexByte(rec.Name, '.'); i > 0 {
			layers[rec.Name[:i]] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("empty trace")
	}
	for _, want := range []string{"platform", "solver", "montecarlo", "executor", "pool"} {
		if !layers[want] {
			t.Errorf("trace has no records or instruments from the %s layer (saw %v)", want, layers)
		}
	}
}

// TestPoolCountersMatchStats checks that the registry counters shadow the
// programmatic PoolStats exactly.
func TestPoolCountersMatchStats(t *testing.T) {
	rec := telemetry.Enable(telemetry.Options{})
	defer telemetry.Disable()
	pool := NewPool(2)
	if _, err := Fig7(fig7TestOptions(pool)); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	counters := map[string]int{
		"pool.submitted": st.Submitted,
		"pool.executed":  st.Executed,
		"pool.memo_hits": st.Hits,
	}
	for name, want := range counters {
		if got := rec.Counter(name).Value(); got != int64(want) {
			t.Errorf("%s = %d, want %d (PoolStats %+v)", name, got, want, st)
		}
	}
}
