package eval

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"caribou/internal/region"
	"caribou/internal/runstore"
	"caribou/internal/solver"
	"caribou/internal/telemetry"
)

// Pool is the evaluation harness's experiment runner: a bounded worker
// pool with run memoization. Every run already owns an isolated Env, so
// independent RunConfigs execute concurrently; results are returned in
// submission order regardless of worker count, and each run's determinism
// comes from its own seed, so figure output is bit-identical at any
// Workers setting.
//
// Submissions are memoized by a canonical serialization of the defaulted
// RunConfig: identical configurations — within one figure and across
// figures sharing a Pool — execute exactly once, and callers re-account
// the cached Result under whichever transmission model they need
// (Result.Summarize is read-only, so a memoized Result can be summarized
// any number of times).
//
// Jobs submitted through Run/RunAll/Do must not themselves submit to the
// same Pool: worker slots are held for a job's full duration, so nested
// submission can deadlock once all slots hold waiting parents.
type Pool struct {
	sem chan struct{}

	mu   sync.Mutex
	memo map[string]*memoEntry

	// store is the optional durable memo tier (AttachStore): misses in the
	// in-memory memo consult it before executing, and fresh executions
	// publish their results to it.
	store *runstore.Store

	submitted  int
	executed   int
	hits       int
	diskHits   int
	diskWrites int

	tel poolTelemetry
}

// poolTelemetry holds instrument handles captured at NewPool; all fields
// are nil-safe no-ops when telemetry is off. The counters shadow the
// PoolStats fields (which drivers keep using programmatically) so pool
// activity shows up in trace exports alongside the other layers.
type poolTelemetry struct {
	rec        *telemetry.Recorder
	submitted  *telemetry.Counter
	executed   *telemetry.Counter
	memoHits   *telemetry.Counter
	diskHits   *telemetry.Counter
	diskWrites *telemetry.Counter
	runSeconds *telemetry.Histogram
}

func newPoolTelemetry() poolTelemetry {
	rec := telemetry.Default()
	return poolTelemetry{
		rec:        rec,
		submitted:  rec.Counter("pool.submitted"),
		executed:   rec.Counter("pool.executed"),
		memoHits:   rec.Counter("pool.memo_hits"),
		diskHits:   rec.Counter("pool.disk_hits"),
		diskWrites: rec.Counter("pool.disk_writes"),
		runSeconds: rec.Histogram("pool.run_seconds", []float64{0.5, 1, 2, 5, 10, 30, 60, 120}),
	}
}

// memoEntry singleflights one canonical configuration: concurrent
// duplicate submissions block on the first execution and share its
// Result.
type memoEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// PoolStats counts pool activity. Hits is the number of submissions
// served from the in-memory memo (including waits on an in-flight
// duplicate); DiskHits counts memo misses served from the attached
// durable store without executing: Submitted == Executed + Hits +
// DiskHits once all submissions have returned, and a fully warm cache
// shows Executed == 0.
type PoolStats struct {
	Submitted  int
	Executed   int
	Hits       int
	DiskHits   int
	DiskWrites int
}

// NewPool builds a runner executing at most workers runs concurrently;
// workers <= 0 defaults to GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		sem:  make(chan struct{}, workers),
		memo: make(map[string]*memoEntry),
		tel:  newPoolTelemetry(),
	}
}

// orDefault lets every driver accept a nil Pool (each then runs on its
// own default-width pool).
func (p *Pool) orDefault() *Pool {
	if p != nil {
		return p
	}
	return NewPool(0)
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// AttachStore adds a durable memo tier: in-memory memo misses consult
// the store (runstore.KeyOf of the canonical configuration, ResultSchema
// payloads) before executing, and fresh executions publish their results
// to it. Attach before submitting runs; a nil store detaches. The store
// is best-effort — corrupt or unreadable blobs fall through to a normal
// execution, and a failed publish never fails the run.
func (p *Pool) AttachStore(s *runstore.Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.store = s
}

// Stats snapshots the activity counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Submitted:  p.submitted,
		Executed:   p.executed,
		Hits:       p.hits,
		DiskHits:   p.diskHits,
		DiskWrites: p.diskWrites,
	}
}

// Run executes cfg through the pool and blocks until its Result is
// available, either freshly executed on a worker slot or served from the
// memo. Safe for concurrent use.
func (p *Pool) Run(cfg RunConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	key := cfg.canonicalKey()

	p.mu.Lock()
	e, ok := p.memo[key]
	if !ok {
		e = &memoEntry{}
		p.memo[key] = e
	}
	p.submitted++
	p.tel.submitted.Inc()
	if ok {
		p.hits++
		p.tel.memoHits.Inc()
	}
	p.mu.Unlock()

	e.once.Do(func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		p.mu.Lock()
		store := p.store
		p.mu.Unlock()
		// Durable tier: a valid blob under this key replaces the execution
		// outright. A corrupt blob was already classified as a miss by the
		// store; a blob that fails to decode (schema drift inside a valid
		// frame) falls through to a recompute whose Put overwrites it.
		if store != nil {
			if payload, ok, _ := store.Get(runstore.KeyOf(key), ResultSchema); ok {
				if res, derr := DecodeResult(cfg, payload); derr == nil {
					p.mu.Lock()
					p.diskHits++
					p.mu.Unlock()
					p.tel.diskHits.Inc()
					e.res = res
					return
				}
			}
		}
		p.mu.Lock()
		p.executed++
		p.mu.Unlock()
		p.tel.executed.Inc()
		name := "<nil>"
		if cfg.Workload != nil {
			name = cfg.Workload.Name
		}
		sp := p.tel.rec.StartSpan("pool.run",
			telemetry.String("workload", name),
			telemetry.String("class", string(cfg.Class)),
			telemetry.String("strategy", cfg.Strategy.String()))
		var start time.Time
		if sp != nil {
			//caribou:allow dettaint wall-clock span of the real experiment feeds only the run_seconds histogram, never simulated results
			start = time.Now() //caribou:allow wallclock times the real experiment run for the run_seconds histogram, not simulated time
		}
		e.res, e.err = Run(cfg)
		if sp != nil {
			//caribou:allow dettaint wall-clock span of the real experiment feeds only the run_seconds histogram, never simulated results
			p.tel.runSeconds.Observe(time.Since(start).Seconds()) //caribou:allow wallclock times the real experiment run for the run_seconds histogram, not simulated time
		}
		sp.End()
		if store != nil && e.err == nil {
			if payload, perr := EncodeResult(cfg, e.res); perr == nil {
				if store.Put(runstore.KeyOf(key), ResultSchema, payload) == nil {
					p.mu.Lock()
					p.diskWrites++
					p.mu.Unlock()
					p.tel.diskWrites.Inc()
				}
			}
		}
	})
	return e.res, e.err
}

// RunAll executes all configurations concurrently (bounded by the worker
// count) and returns results aligned with cfgs. On failure it reports the
// first error in submission order — not completion order — so error
// behavior is independent of scheduling.
func (p *Pool) RunAll(cfgs []RunConfig) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p.Run(cfgs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c := cfgs[i].withDefaults()
			name := "<nil>"
			if c.Workload != nil {
				name = c.Workload.Name
			}
			return nil, fmt.Errorf("run %d (%s/%s %s): %w", i, name, c.Class, c.Strategy, err)
		}
	}
	return results, nil
}

// Do runs n independent jobs concurrently on the pool's worker slots and
// returns the first error in submission order. It is the escape hatch for
// drivers whose experiments are not RunConfig-shaped (bespoke Env loops);
// jobs index into caller-owned slices, which keeps assembly order
// deterministic. Do jobs bypass the memo.
func (p *Pool) Do(n int, job func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.sem <- struct{}{}
			defer func() { <-p.sem }()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// canonicalKey serializes a defaulted RunConfig into the memo key. Two
// configurations with equal keys produce bit-identical Results:
//
//   - The workload is identified by name (workload definitions are static
//     per name; bespoke workloads must use distinct names).
//   - Region order is preserved — it seeds per-region derivations.
//   - Coarse runs never consult the solver or estimator, so the planning
//     inputs that only exist for fine runs (PlanTx, Tolerances,
//     BenchFraction — forced to "none" for coarse) are excluded from
//     coarse keys. This is what lets one coarse execution serve every
//     transmission scenario and planning model that re-accounts it.
func (c RunConfig) canonicalKey() string {
	var b strings.Builder
	name := "<nil>"
	if c.Workload != nil {
		name = c.Workload.Name
	}
	fmt.Fprintf(&b, "wl=%s|class=%s|regions=%s|home=%s|strategy=%s|perday=%d|warmup=%d|eval=%d|seed=%d",
		name, c.Class, joinRegions(c.Regions), c.Home, c.Strategy, c.PerDay, c.WarmupDays, c.EvalDays, c.Seed)
	if c.Strategy.Coarse == "" {
		tol := solver.Tolerances{Latency: solver.Tol(25)}
		if c.Tolerances != nil {
			tol = *c.Tolerances
		}
		fmt.Fprintf(&b, "|plantx=%v/%v|tol=%s,%s,%s|bench=%v",
			c.PlanTx.InterRegionKWhPerGB, c.PlanTx.IntraRegionKWhPerGB,
			limitKey(tol.Latency), limitKey(tol.Cost), limitKey(tol.Carbon),
			c.BenchFraction)
	}
	return b.String()
}

func limitKey(l solver.Limit) string {
	if !l.Set {
		return "-"
	}
	return fmt.Sprintf("%v", l.Pct)
}

func joinRegions(ids []region.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ",")
}
