package eval

import (
	"fmt"
	"io"
	"time"

	"caribou/internal/carbon"
	"caribou/internal/core"
	"caribou/internal/dag"
	"caribou/internal/executor"
	"caribou/internal/platform"
	"caribou/internal/region"
	"caribou/internal/solver"
	"caribou/internal/trace"
	"caribou/internal/workloads"
)

// Fig 11: week-long adaptive operation of Caribou on Text2Speech
// Censoring with the large input under an Azure-style invocation trace:
// the Deployment Manager's plan generations over time, the region hosting
// most workflow stages per hour, and Caribou's carbon relative to coarse
// single-region deployments.

// Fig11Bin is one time bin of the week-long series.
type Fig11Bin struct {
	Start time.Time
	// MajorityRegion hosts the most stage executions in this bin under
	// Caribou.
	MajorityRegion region.ID
	// RelCarbon maps each treatment ("caribou", "us-west-1", ...) to
	// carbon relative to coarse us-east-1 within this bin.
	RelCarbon map[string]float64
	// Invocations counts Caribou invocations completing in the bin.
	Invocations int
}

// Fig11Result is the figure's content for one transmission scenario.
type Fig11Result struct {
	Scenario   string
	Bins       []Fig11Bin
	SolveTimes []time.Time
	Overhead   float64 // framework carbon, grams
}

// Fig11Options scales the experiment.
type Fig11Options struct {
	Days    int // default 6, matching the figure's span
	PerDay  float64
	BinHrs  int
	Seed    int64
	PerDayP trace.Profile // optional full profile override
	// Pool bounds the treatments' concurrency; nil uses a private
	// default-width pool. Fig 11's bespoke trace-driven runs are not
	// RunConfig-shaped, so they ride the pool's generic job lane.
	Pool *Pool
}

// Fig11 runs the continuous evaluation for both transmission scenarios.
func Fig11(opt Fig11Options) ([]Fig11Result, error) {
	if opt.Days == 0 {
		opt.Days = 6
	}
	if opt.PerDay == 0 {
		opt.PerDay = 800 // half the Azure P5 rate keeps the run fast while preserving shape
	}
	if opt.BinHrs == 0 {
		opt.BinHrs = 6
	}
	if opt.Seed == 0 {
		opt.Seed = 17
	}
	profile := trace.AzureP5()
	profile.DailyInvocations = opt.PerDay
	profile.LargeFraction = 1 // the figure uses the large input size
	if opt.PerDayP.DailyInvocations > 0 {
		profile = opt.PerDayP
	}

	wl := workloads.Text2SpeechCensoring()
	start := EvalStart
	end := start.Add(time.Duration(opt.Days) * 24 * time.Hour)
	events, err := trace.Generate(profile, start, end, opt.Seed)
	if err != nil {
		return nil, err
	}

	// All treatments run concurrently on the pool: the three coarse
	// baselines (scenario-independent, run once each) plus one adaptive
	// Caribou run per scenario. Each job owns an isolated Env; the trace
	// events slice is shared read-only.
	pool := opt.Pool.orDefault()
	coarseRegions := []region.ID{region.USEast1, region.USWest1, region.USWest2}
	scens := scenarios()
	outs := make([]*fig11Out, len(coarseRegions)+len(scens))
	err = pool.Do(len(outs), func(i int) error {
		if i < len(coarseRegions) {
			out, err := fig11Run(wl, events, start, end, opt.Seed, nil, coarseRegions[i])
			if err != nil {
				return fmt.Errorf("fig11 coarse %s: %w", coarseRegions[i], err)
			}
			outs[i] = out
			return nil
		}
		sc := scens[i-len(coarseRegions)]
		tx := sc.Tx
		out, err := fig11Run(wl, events, start, end, opt.Seed, &tx, "")
		if err != nil {
			return fmt.Errorf("fig11 caribou %s: %w", sc.Name, err)
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	coarse := map[string]*fig11Out{}
	for i, r := range coarseRegions {
		coarse[string(r)[4:]] = outs[i]
	}

	var results []Fig11Result
	for si, sc := range scens {
		tx := sc.Tx
		caribouOut := outs[len(coarseRegions)+si]
		res := Fig11Result{Scenario: sc.Name, SolveTimes: caribouOut.solves, Overhead: caribouOut.overhead}

		for t := start; t.Before(end); t = t.Add(time.Duration(opt.BinHrs) * time.Hour) {
			binEnd := t.Add(time.Duration(opt.BinHrs) * time.Hour)
			bin := Fig11Bin{Start: t, RelCarbon: map[string]float64{}}

			baseMean, baseN := binCarbon(coarse["us-east-1"], t, binEnd, tx)
			if baseN == 0 || baseMean == 0 {
				continue
			}
			for name, out := range coarse {
				if name == "us-east-1" {
					continue
				}
				m, n := binCarbon(out, t, binEnd, tx)
				if n > 0 {
					bin.RelCarbon[name] = m / baseMean
				}
			}
			cm, cn := binCarbon(caribouOut, t, binEnd, tx)
			if cn > 0 {
				bin.RelCarbon["caribou"] = cm / baseMean
			}
			bin.Invocations = cn
			bin.MajorityRegion = majorityRegion(caribouOut.records, t, binEnd)
			res.Bins = append(res.Bins, bin)
		}
		results = append(results, res)
	}
	return results, nil
}

// fig11Run executes the trace either adaptively (tx != nil) or coarse in
// region r.
// fig11Out carries one treatment's run.
type fig11Out struct {
	records  []*platform.InvocationRecord
	env      *core.Env
	overhead float64
	solves   []time.Time
}

func fig11Run(wl *workloads.Workload, events []trace.Event, start, end time.Time, seed int64, tx *carbon.TransmissionModel, coarse region.ID) (*fig11Out, error) {
	env, err := core.NewEnv(core.EnvConfig{
		Seed: seed, Start: start, End: end, Regions: region.EvaluationFour(),
	})
	if err != nil {
		return nil, err
	}
	cfg := core.AppConfig{
		Workload: wl,
		Home:     region.USEast1,
		Mode:     executor.ModeCaribou,
		Objective: solver.Objective{
			Priority:   solver.PriorityCarbon,
			Tolerances: solver.Tolerances{Latency: solver.Tol(25)},
		},
		Seed: seed,
	}
	adaptive := coarse == ""
	if adaptive {
		cfg.Adaptive = true
		cfg.Tx = *tx
	} else {
		cfg.BenchFraction = -1
	}
	app, err := env.NewApp(cfg)
	if err != nil {
		return nil, err
	}
	var solves []time.Time
	if adaptive {
		app.Manager.OnSolve = func(now time.Time, _ dag.HourlyPlans, _ []solver.Result) {
			solves = append(solves, now)
		}
		app.ScheduleManagerTicks(time.Hour)
	} else {
		plans := dag.Uniform(dag.NewHomePlan(wl.DAG, coarse))
		if _, err := app.DeployPlanRegions(plans); err != nil {
			return nil, err
		}
		app.SetStaticPlans(plans)
	}
	app.ScheduleTrace(events)
	env.Run()
	out := &fig11Out{records: app.Records, env: env, solves: solves}
	if app.Manager != nil {
		out.overhead = app.Manager.OverheadGrams
	}
	return out, nil
}

func binCarbon(out *fig11Out, from, to time.Time, tx carbon.TransmissionModel) (mean float64, n int) {
	var sum float64
	for _, r := range out.records {
		if r.End.Before(from) || !r.End.Before(to) {
			continue
		}
		e, t, err := r.CarbonGrams(out.env.Carbon, out.env.Cat, tx)
		if err != nil {
			continue
		}
		sum += e + t
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

func majorityRegion(records []*platform.InvocationRecord, from, to time.Time) region.ID {
	counts := map[region.ID]int{}
	for _, r := range records {
		if r.End.Before(from) || !r.End.Before(to) {
			continue
		}
		for _, e := range r.Executions {
			counts[e.Region]++
		}
	}
	var best region.ID
	bestN := -1
	for r, n := range counts {
		if n > bestN || (n == bestN && r < best) {
			best, bestN = r, n
		}
	}
	return best
}

// PrintFig11 renders the decision/relative-carbon series.
func PrintFig11(w io.Writer, results []Fig11Result) {
	for _, res := range results {
		fmt.Fprintf(w, "Fig 11 — adaptive week, %s-case scenario (framework overhead %.2f g)\n", res.Scenario, res.Overhead)
		fmt.Fprintf(w, "DP generations at:")
		for _, t := range res.SolveTimes {
			fmt.Fprintf(w, " %s", t.Format("01-02 15:04"))
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-18s %-16s %6s %10s %10s %10s\n",
			"bin", "majority-region", "inv", "caribou", "us-west-1", "us-west-2")
		for _, b := range res.Bins {
			fmt.Fprintf(w, "%-18s %-16s %6d %10.3f %10.3f %10.3f\n",
				b.Start.Format("01-02 15:04"), shortRegion(b.MajorityRegion), b.Invocations,
				b.RelCarbon["caribou"], b.RelCarbon["us-west-1"], b.RelCarbon["us-west-2"])
		}
		fmt.Fprintln(w)
	}
}

func shortRegion(r region.ID) string {
	if len(r) > 4 {
		return string(r)[4:]
	}
	return string(r)
}
